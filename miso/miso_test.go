package miso_test

import (
	"testing"

	"miso/miso"
)

func TestOpenAndRun(t *testing.T) {
	sys, err := miso.Open(miso.DefaultConfig(miso.MSMiso), miso.SmallData())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(`SELECT hashtag, COUNT(*) AS n FROM tweets
		WHERE lang = 'en' GROUP BY hashtag ORDER BY n DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResultRows == 0 || rep.ResultRows > 3 {
		t.Errorf("rows = %d", rep.ResultRows)
	}
	if rep.Total() <= 0 {
		t.Error("no simulated time charged")
	}
	m := sys.Metrics()
	if m.Queries != 1 || m.TTI() <= 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestOpenAppliesDefaultBudgets(t *testing.T) {
	cfg := miso.DefaultConfig(miso.MSMiso)
	sys, err := miso.Open(cfg, miso.SmallData())
	if err != nil {
		t.Fatal(err)
	}
	// Budgets were zero in cfg; Open must have applied paper defaults, so
	// running the workload with reorganizations must not fail.
	for _, sql := range []string{
		"SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang",
		"SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > 10 GROUP BY lang",
	} {
		if _, err := sys.Run(sql); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVariantConstantsRoundtrip(t *testing.T) {
	for _, v := range []miso.Variant{
		miso.HVOnly, miso.DWOnly, miso.MSBasic, miso.HVOp,
		miso.MSMiso, miso.MSOff, miso.MSLru, miso.MSOra,
	} {
		if _, err := miso.Open(miso.DefaultConfig(v), miso.SmallData()); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
}

package miso_test

import (
	"fmt"
	"log"

	"miso/miso"
)

// ExampleOpen runs one exploratory query through the full MISO system and
// reports where it executed. Reported times are simulated seconds.
func ExampleOpen() {
	sys, err := miso.Open(miso.DefaultConfig(miso.MSMiso), miso.SmallData())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run(`
		SELECT lang, COUNT(*) AS n FROM tweets
		WHERE retweets > 400 GROUP BY lang ORDER BY n DESC LIMIT 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", rep.ResultRows)
	fmt.Println("ran entirely in HV:", rep.HVOnly)
	// Output:
	// rows: 2
	// ran entirely in HV: false
}

// ExampleSystem_Explain shows the multistore plan chosen for a query under
// the current physical design.
func ExampleSystem_Explain() {
	sys, err := miso.Open(miso.DefaultConfig(miso.MSBasic), miso.SmallData())
	if err != nil {
		log.Fatal(err)
	}
	text, err := sys.Explain("SELECT COUNT(*) AS n FROM checkins")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(text) > 0)
	// Output:
	// true
}

// Package miso is the public facade of the MISO multistore system: a big
// data store (HV) and a parallel warehouse (DW) coupled by a multistore
// query optimizer, with the MISO online tuner placing opportunistic
// materialized views across the two stores.
//
// A minimal session:
//
//	sys, err := miso.Open(miso.DefaultConfig(miso.MSMiso), miso.DefaultData())
//	rep, err := sys.Run("SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag")
//	fmt.Println(rep.ResultRows, rep.Total())
//
// The system executes queries for real over synthetic JSON logs; reported
// times are simulated seconds from calibrated cost models (see DESIGN.md).
package miso

import (
	"miso/internal/audit"
	"miso/internal/core"
	"miso/internal/data"
	"miso/internal/durability"
	"miso/internal/exec"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/storage"
)

// Variant selects a system behavior; see the constants below.
type Variant = multistore.Variant

// The system variants evaluated in the paper.
const (
	// HVOnly executes everything in the big data store.
	HVOnly = multistore.VariantHVOnly
	// DWOnly ETLs the workload-relevant data up-front and serves queries
	// from the warehouse.
	DWOnly = multistore.VariantDWOnly
	// MSBasic splits queries across both stores without any tuning.
	MSBasic = multistore.VariantMSBasic
	// HVOp reuses opportunistic views inside HV only (LRU retention).
	HVOp = multistore.VariantHVOp
	// MSMiso is the full system: multistore execution plus the MISO
	// online tuner.
	MSMiso = multistore.VariantMSMiso
	// MSOff tunes once, offline, with the whole workload known up-front.
	MSOff = multistore.VariantMSOff
	// MSLru retains transferred working sets passively under LRU.
	MSLru = multistore.VariantMSLru
	// MSOra is the MISO tuner driven by the actual future workload.
	MSOra = multistore.VariantMSOra
)

// Config is the full system configuration.
type Config = multistore.Config

// TunerConfig holds the MISO tuner's budgets and knobs (Config.Tuner).
// TunerConfig.TuneWorkers bounds the worker pool the tuner fans what-if
// cost probes across during reorganization; any worker count — including
// the serial default — produces byte-identical designs, only tuning
// wall-clock changes.
type TunerConfig = core.Config

// System is a running multistore instance.
type System = multistore.System

// ExecStats accumulates per-operator wall-clock counters for the data
// path. Attach one with System.SetExecStats and render it with
// WriteBreakdown; safe for concurrent use.
type ExecStats = exec.Stats

// ExecOpStat is one operator's row in an ExecStats breakdown.
type ExecOpStat = exec.OpStat

// SerialWorkers, assigned to Config.ExecWorkers, selects the legacy
// row-at-a-time serial engine instead of the morsel-driven engine. The
// default (0) runs the morsel engine with GOMAXPROCS workers; any n >= 1
// runs it with n workers. Results are byte-identical at every setting.
const SerialWorkers = exec.SerialWorkers

// Metrics is the TTI breakdown.
type Metrics = multistore.Metrics

// QueryReport describes one query's execution.
type QueryReport = multistore.QueryReport

// ReorgRecord summarizes one reorganization phase.
type ReorgRecord = multistore.ReorgRecord

// DataConfig controls the synthetic log generator.
type DataConfig = data.Config

// FaultProfile sets per-site failure rates for the deterministic fault
// injector (Config.Faults). The zero value disables the fault plane.
type FaultProfile = faults.Profile

// RetryPolicy bounds fault recovery: attempts and capped exponential
// backoff, charged to simulated time (Config.Retry).
type RetryPolicy = faults.RetryPolicy

// UniformFaults builds a profile that fails every injection site with the
// same probability. A rate of 0 disables injection entirely.
func UniformFaults(rate float64) FaultProfile { return faults.Uniform(rate) }

// DefaultRetry returns the default recovery policy (6 attempts, 5 s base
// backoff doubling to a 60 s cap).
func DefaultRetry() RetryPolicy { return faults.DefaultRetry() }

// DefaultConfig returns the paper's configuration for a variant. Budgets
// default to the paper's 2x storage multiples with a 10 GB transfer budget
// once Open generates the data (override with Config.SetBudgets).
func DefaultConfig(v Variant) Config { return multistore.DefaultConfig(v) }

// DefaultData returns the paper-scale dataset configuration (~2 TB logical).
func DefaultData() DataConfig { return data.DefaultConfig() }

// SmallData returns a small dataset for quick experiments.
func SmallData() DataConfig { return data.SmallConfig() }

// ServeConfig tunes the concurrent serving frontend: worker pool size,
// admission queue depth, per-query deadline, drain timeout for online
// reorganization, and the DW circuit breaker.
type ServeConfig = serve.Config

// BreakerConfig tunes the DW circuit breaker inside ServeConfig.
type BreakerConfig = serve.BreakerConfig

// QuotaConfig tunes per-tenant weighted-fair admission quotas inside
// ServeConfig; the zero value disables them.
type QuotaConfig = serve.QuotaConfig

// TenantConfig sets one tenant's quota weight and burst inside
// QuotaConfig.
type TenantConfig = serve.TenantConfig

// TenantStats is one tenant's admission outcome counters
// (Server.TenantStats).
type TenantStats = serve.TenantStats

// AdaptiveConfig tunes the AIMD concurrency limiter inside ServeConfig;
// the zero value disables it.
type AdaptiveConfig = serve.AdaptiveConfig

// HedgeConfig tunes hedged DW execution inside Config (Config.Hedge);
// the zero value disables it.
type HedgeConfig = multistore.HedgeConfig

// ReuseConfig enables the cross-query reuse plane inside Config
// (Config.Reuse): the content-fingerprinted semantic result cache and
// the single-flight registry that lets concurrent identical queries
// piggyback on one execution. The zero value disables the plane and is
// byte-identical to a build without it.
type ReuseConfig = multistore.ReuseConfig

// ReuseStats is a point-in-time snapshot of the reuse plane's cache and
// in-flight registry counters (System.ReuseStats).
type ReuseStats = multistore.ReuseStats

// Server is the concurrent query-serving frontend: a bounded worker pool
// with admission control, per-query deadlines, a DW circuit breaker that
// degrades to HV-only service, and drain-barrier online reorganization.
//
//	srv := miso.NewServer(miso.ServeConfig{Workers: 4, QueryTimeout: time.Minute}, sys)
//	defer srv.Close()
//	rep, err := srv.Do(ctx, "SELECT ...")
type Server = serve.Server

// ServeMetrics counts the serving plane's outcomes (completions, sheds,
// timeouts, breaker trips, degraded queries, reorganizations).
type ServeMetrics = serve.Metrics

// ErrShed marks a query rejected at admission because the serving queue
// was full; match it with errors.Is.
var ErrShed = serve.ErrShed

// ErrQuotaShed marks a query shed by its tenant's admission quota; it
// wraps as a shed (errors.Is(err, ErrShed) also holds).
var ErrQuotaShed = serve.ErrQuotaShed

// NewServer starts a serving frontend over a running system.
func NewServer(cfg ServeConfig, sys *System) *Server { return serve.NewServer(cfg, sys) }

// Open generates the dataset and boots a system. If the config's budgets
// are unset, the paper defaults (2x multiples, Bt = 10 GB) are applied.
func Open(cfg Config, dataCfg DataConfig) (*System, error) {
	cat, err := data.Generate(dataCfg)
	if err != nil {
		return nil, err
	}
	if cfg.Tuner.Bh == 0 && cfg.Tuner.Bd == 0 {
		cfg.SetBudgets(cat, 2.0, 10<<30)
	}
	return multistore.New(cfg, cat), nil
}

// OpenWithCatalog boots a system over an existing catalog (advanced use:
// custom logs registered by the caller).
func OpenWithCatalog(cfg Config, cat *storage.Catalog) *System {
	return multistore.New(cfg, cat)
}

// DurabilityManager owns a system's write-ahead log and checkpoint cadence;
// enable it with Config.CheckpointEvery and reach it via System.Durability.
type DurabilityManager = durability.Manager

// WAL is the append-only log of every catalog and design mutation, plus the
// durable copies of admitted view bytes.
type WAL = durability.WAL

// Checkpoint is a full-state snapshot at a WAL position.
type Checkpoint = durability.Checkpoint

// RecoveryReport summarizes one Recover run: records replayed, torn bytes
// discarded, in-flight work rolled back, views quarantined, and the
// simulated recovery time charged.
type RecoveryReport = durability.RecoveryReport

// Crash and corruption sites for FaultProfile.With. UniformFaults leaves
// these at zero because surviving them requires the recovery path: arm them
// explicitly and pair with Config.CheckpointEvery and Recover.
const (
	// SiteCrashReorg kills the process mid-reorganization.
	SiteCrashReorg = faults.SiteCrashReorg
	// SiteCrashTransfer kills the process mid-transfer.
	SiteCrashTransfer = faults.SiteCrashTransfer
	// SiteCrashServe kills the process while serving a query.
	SiteCrashServe = faults.SiteCrashServe
	// SiteWALWrite tears a WAL append partway through, then crashes.
	SiteWALWrite = faults.SiteWALWrite
	// SiteViewCorrupt silently flips stored view bytes, caught later by
	// checksum verification.
	SiteViewCorrupt = faults.SiteViewCorrupt
	// SiteViewRot silently flips bits inside a resident materialized
	// view between queries — the bit-rot fault the audit plane exists to
	// catch and self-heal online (pair with NewScrubber or Audit).
	SiteViewRot = faults.SiteViewRot
)

// Exec-plane governance sites for FaultProfile.With: they exercise the
// resource-governance plane (contained panics, memory-budget aborts,
// bounded cancellation latency) rather than the crash-recovery path.
const (
	// SiteExecPanic panics inside a morsel worker; the engine converts it
	// to an ErrInternal failure of that query alone.
	SiteExecPanic = faults.SiteExecPanic
	// SiteMemPressure injects a memory-budget denial at an exec
	// reservation point, surfacing as ErrMemLimit.
	SiteMemPressure = faults.SiteMemPressure
	// SiteSlowMorsel stalls a morsel for up to 2ms of wall clock,
	// stretching queries so cancellation latency is measurable.
	SiteSlowMorsel = faults.SiteSlowMorsel
)

// ErrMemLimit marks a query aborted over its memory budget
// (Config.MemLimitBytes / Config.MemPoolBytes); match with errors.Is.
var ErrMemLimit = govern.ErrMemLimit

// ErrInternal marks a query failed by a worker panic that was contained to
// this typed error instead of terminating the process.
var ErrInternal = govern.ErrInternal

// ErrCrash marks a simulated process crash (an armed crash site fired, or a
// WAL append tore); match it with errors.Is, then call Recover.
var ErrCrash = faults.ErrCrash

// ErrCorrupt marks a content-checksum mismatch on stored view bytes.
var ErrCorrupt = faults.ErrCorrupt

// ErrAuditViolation is the sentinel wrapped by every integrity violation
// the audit plane reports; match it with errors.Is.
var ErrAuditViolation = audit.ErrAuditViolation

// AuditViolation describes one integrity violation found by an audit
// pass: the invariant family, the view and store involved, and whether
// it was repaired or quarantined.
type AuditViolation = multistore.AuditViolation

// AuditConfig tunes the background integrity scrubber: chunk size, scrub
// interval, repair mode, and the serving plane's drain-barrier hook
// (Server.Quiesce).
type AuditConfig = audit.Config

// AuditReport is a snapshot of a scrubber's counters and retained
// violations.
type AuditReport = audit.Report

// Scrubber is the background integrity scrubber: it incrementally walks
// the view catalogs under live serving, verifies checksums, freshness,
// design disjointness, budget conservation, and WAL consistency, and —
// in repair mode — self-heals corrupt views by recomputation through the
// HV fallback path.
//
//	sc := miso.NewScrubber(sys, miso.AuditConfig{Repair: true, Quiesce: srv.Quiesce})
//	sc.Start()
//	defer sc.Stop()
type Scrubber = audit.Scrubber

// NewScrubber builds a scrubber over a running system; call Start for
// background scrubbing or RunOnce for a synchronous full pass.
func NewScrubber(sys *System, cfg AuditConfig) *Scrubber { return audit.New(sys, cfg) }

// Audit runs one synchronous full integrity pass (every view plus the
// system invariants) and returns the violations found. With repair set,
// corrupt views are recomputed or quarantined in place.
func Audit(sys *System, repair bool) ([]AuditViolation, error) {
	return audit.RunOnce(sys, repair)
}

// AuditFamilies lists the invariant families a full audit pass
// verifies, in reporting order.
func AuditFamilies() []string { return audit.Families() }

// Recover rebuilds a system after a crash from its last checkpoint and WAL:
// replay, rollback of uncommitted reorganizations and transfers, checksum
// and generation verification with quarantine, all charged to RECOVERY. If
// the config's budgets are unset, the paper defaults are applied, matching
// Open. The returned system is fully operational:
//
//	sys2, rep, err := miso.Recover(cfg, sys.Catalog(), sys.Durability().Latest(), sys.Durability().WAL())
func Recover(cfg Config, cat *storage.Catalog, ckpt *Checkpoint, wal *WAL) (*System, *RecoveryReport, error) {
	if cfg.Tuner.Bh == 0 && cfg.Tuner.Bd == 0 {
		cfg.SetBudgets(cat, 2.0, 10<<30)
	}
	return multistore.Recover(cfg, cat, ckpt, wal)
}

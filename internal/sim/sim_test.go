package sim

import (
	"testing"
)

func timeline() []Event {
	return []Event{
		{Kind: EventHV, Seconds: 1000},
		{Kind: EventReorg, Seconds: 50},
		{Kind: EventHV, Seconds: 500},
		{Kind: EventTransfer, Seconds: 30},
		{Kind: EventDW, Seconds: 20},
	}
}

func TestNoBackgroundNoSlowdown(t *testing.T) {
	bg := Background{Name: "idle", IOShare: 0, CPUShare: 0, BaseLatency: 1}
	o := Simulate(timeline(), bg, 10)
	if o.BgSlowdownPct != 0 || o.MsSlowdownPct != 0 {
		t.Errorf("idle DW still slowed: bg=%.2f ms=%.2f", o.BgSlowdownPct, o.MsSlowdownPct)
	}
	if o.AvgBgLatency != 1 {
		t.Errorf("avg latency = %v", o.AvgBgLatency)
	}
}

func TestContentionOnlyDuringDWPhases(t *testing.T) {
	bg := Scenarios()[0] // 40% spare IO
	o := Simulate(timeline(), bg, 5)
	for _, s := range o.Samples {
		if s.Kind == EventHV && s.BgLatency != bg.BaseLatency {
			t.Fatalf("HV phase affected the DW background: %+v", s)
		}
	}
	// Transfers must spike the background latency.
	sawSpike := false
	for _, s := range o.Samples {
		if (s.Kind == EventTransfer || s.Kind == EventReorg) && s.BgLatency > bg.BaseLatency {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Error("no latency spike during transfers")
	}
	if o.PeakBgLatency <= bg.BaseLatency {
		t.Error("peak latency not above base")
	}
}

func TestTighterSpareCapacityHurtsMore(t *testing.T) {
	ev := timeline()
	io40 := Simulate(ev, Scenarios()[0], 10)
	io20 := Simulate(ev, Scenarios()[1], 10)
	if io20.BgSlowdownPct <= io40.BgSlowdownPct {
		t.Errorf("20%% spare (%.2f%%) should hurt more than 40%% (%.2f%%)",
			io20.BgSlowdownPct, io40.BgSlowdownPct)
	}
	if io20.MsSlowdownPct <= io40.MsSlowdownPct {
		t.Errorf("multistore slowdown should grow with contention")
	}
}

func TestSlowdownsStaySmall(t *testing.T) {
	// The Table 2 claim: both directions of interference remain small
	// because DW-heavy phases are a small fraction of the run.
	for _, bg := range Scenarios() {
		o := Simulate(timeline(), bg, 10)
		if o.BgSlowdownPct > 10 {
			t.Errorf("%s: DW slowdown %.1f%% too large", bg.Name, o.BgSlowdownPct)
		}
		if o.MsSlowdownPct > 10 {
			t.Errorf("%s: MS slowdown %.1f%% too large", bg.Name, o.MsSlowdownPct)
		}
	}
}

func TestSamplesCoverTimeline(t *testing.T) {
	o := Simulate(timeline(), Scenarios()[0], 10)
	if len(o.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i := 1; i < len(o.Samples); i++ {
		if o.Samples[i].T < o.Samples[i-1].T {
			t.Fatal("samples not in time order")
		}
	}
	total := TotalSeconds(timeline())
	last := o.Samples[len(o.Samples)-1].T
	if last < total*0.9 {
		t.Errorf("samples end at %.0f, timeline is %.0f", last, total)
	}
}

func TestDemandProfile(t *testing.T) {
	for _, k := range []EventKind{EventHV, EventIdle} {
		if io, cpu := (Event{Kind: k}).Demand(); io != 0 || cpu != 0 {
			t.Errorf("%v should have no DW demand", k)
		}
	}
	tio, _ := (Event{Kind: EventTransfer}).Demand()
	dio, dcpu := (Event{Kind: EventDW}).Demand()
	if tio <= dio {
		t.Error("transfers should press IO harder than query execution")
	}
	if dcpu <= 0 {
		t.Error("DW execution needs CPU")
	}
}

// Package sim models the Section 5.4 scenario: a DW cluster with limited
// spare capacity, running a background workload of reporting queries while
// the multistore system uses it as an accelerator. A fluid resource model
// shares each resource (IO, CPU) proportionally among consumers: when total
// demand exceeds capacity, every consumer stretches by the overload factor.
// The simulator replays a multistore run's event timeline (HV execution,
// working-set transfers T, reorganization transfers R, DW query execution
// Q) against a configurable background load and reports both directions of
// interference: the slowdown of the background reporting queries and the
// slowdown of the multistore workload.
package sim

import "math"

// EventKind classifies timeline events by their DW resource demand.
type EventKind int

// Event kinds.
const (
	// EventHV is query processing inside the big data store: no DW
	// demand.
	EventHV EventKind = iota
	// EventTransfer is an on-the-fly working-set migration (T in the
	// paper's Figure 9): the DW bulk load saturates IO briefly.
	EventTransfer
	// EventReorg is a reorganization-phase view movement (R): same IO
	// pressure as a transfer.
	EventReorg
	// EventDW is multistore query execution inside DW (Q): modest IO and
	// CPU demand.
	EventDW
	// EventIdle is time with no multistore activity.
	EventIdle
	// EventRecovery is time spent in fault recovery (retry backoff,
	// re-executed HV stages, fallback re-runs): the injected faults stall
	// the multistore side, so DW sees no demand.
	EventRecovery
	// EventDegraded is query processing on the forced HV-only path while
	// the serving layer's DW circuit breaker is open: by construction it
	// places no demand on DW — that is the point of degrading.
	EventDegraded
)

// Event is one phase of the multistore run.
type Event struct {
	Kind EventKind
	// Seconds is the phase duration under an idle DW.
	Seconds float64
}

// Demand returns the (IO, CPU) demand fractions this event places on DW.
// Bulk loads are admission-controlled by the warehouse, so a transfer
// does not saturate IO outright; it still presses well beyond typical
// spare capacity, producing the brief latency spikes of Figure 9.
func (e Event) Demand() (io, cpu float64) {
	switch e.Kind {
	case EventTransfer, EventReorg:
		return 0.60, 0.25
	case EventDW:
		return 0.25, 0.45
	default:
		return 0, 0
	}
}

// Background describes the DW's own reporting workload.
type Background struct {
	// Name labels the scenario (e.g. "40% spare IO").
	Name string
	// IOShare / CPUShare are the fractions of each resource the
	// reporting queries consume when unimpeded (0.6 leaves 40% spare).
	IOShare, CPUShare float64
	// BaseLatency is the reporting query's latency on an otherwise idle
	// DW (1.06 s for the paper's q3).
	BaseLatency float64
}

// Scenarios returns the four spare-capacity configurations of Table 2 with
// the paper's published base latencies (q3 = 1.06 s on an idle DW).
// IO-bound scenarios use the q3 profile, CPU-bound use q83.
func Scenarios() []Background {
	return ScenariosWithLatencies(1.06, 0.94)
}

// ScenariosWithLatencies builds the four configurations from measured
// reporting-query latencies: q3Lat for the IO-bound scenarios, q83Lat for
// the CPU-bound ones. Running extra query instances to consume more
// capacity also lengthens each instance (the 20%-spare scenarios run three
// concurrent instances instead of one, sharing the same resources).
func ScenariosWithLatencies(q3Lat, q83Lat float64) []Background {
	return []Background{
		{Name: "IO 40% spare", IOShare: 0.60, CPUShare: 0.20, BaseLatency: q3Lat},
		{Name: "IO 20% spare", IOShare: 0.80, CPUShare: 0.25, BaseLatency: q3Lat * 1.24},
		{Name: "CPU 40% spare", IOShare: 0.20, CPUShare: 0.60, BaseLatency: q83Lat},
		{Name: "CPU 20% spare", IOShare: 0.25, CPUShare: 0.80, BaseLatency: q83Lat * 1.26},
	}
}

// Sample is one point of the Figure 9 timelines.
type Sample struct {
	// T is simulated seconds since the start of the run.
	T float64
	// IO and CPU are total resource consumption fractions (capped at 1).
	IO, CPU float64
	// BgLatency is the background query latency at this instant.
	BgLatency float64
	// Kind is the active multistore phase.
	Kind EventKind
}

// Outcome aggregates one scenario's simulation.
type Outcome struct {
	Background Background
	Samples    []Sample
	// BgSlowdownPct is the percent increase of the background queries'
	// average latency caused by the multistore workload.
	BgSlowdownPct float64
	// MsSlowdownPct is the percent increase of the multistore workload's
	// total time (TTI) caused by the background workload; only the
	// DW-dependent phases stretch, so this stays small.
	MsSlowdownPct float64
	// AvgBgLatency is the overall average background latency during the
	// run.
	AvgBgLatency float64
	// PeakBgLatency is the worst instantaneous background latency.
	PeakBgLatency float64
}

// overload returns the stretch factor for a resource: total demand beyond
// capacity slows every consumer proportionally.
func overload(total float64) float64 {
	if total <= 1 {
		return 1
	}
	return total
}

// Simulate replays the event timeline against the background load.
// sampleEvery controls the Figure 9 sampling granularity in simulated
// seconds (the paper samples every 10 s).
func Simulate(events []Event, bg Background, sampleEvery float64) *Outcome {
	if sampleEvery <= 0 {
		sampleEvery = 10
	}
	out := &Outcome{Background: bg}

	var now float64
	var bgWeighted float64 // integral of bg latency over time
	var msExtra, totalBase float64

	for _, e := range events {
		io, cpu := e.Demand()
		totalIO := bg.IOShare + io
		totalCPU := bg.CPUShare + cpu
		// The background query's latency stretches by the worst
		// contended resource.
		stretch := math.Max(overload(totalIO), overload(totalCPU))
		lat := bg.BaseLatency * stretch

		// The multistore phase itself also stretches when it depends
		// on DW resources.
		dur := e.Seconds
		totalBase += e.Seconds
		if io > 0 || cpu > 0 {
			dur = e.Seconds * stretch
			msExtra += dur - e.Seconds
		}

		// Emit samples across the (possibly stretched) phase.
		for t := 0.0; t < dur; t += sampleEvery {
			out.Samples = append(out.Samples, Sample{
				T:         now + t,
				IO:        math.Min(totalIO, 1),
				CPU:       math.Min(totalCPU, 1),
				BgLatency: lat,
				Kind:      e.Kind,
			})
		}
		bgWeighted += lat * dur
		if lat > out.PeakBgLatency {
			out.PeakBgLatency = lat
		}
		now += dur
	}
	if now > 0 {
		out.AvgBgLatency = bgWeighted / now
		out.BgSlowdownPct = 100 * (out.AvgBgLatency - bg.BaseLatency) / bg.BaseLatency
		if out.BgSlowdownPct < 0 {
			out.BgSlowdownPct = 0
		}
	}
	if totalBase > 0 {
		out.MsSlowdownPct = 100 * msExtra / totalBase
	}
	return out
}

// TotalSeconds returns the timeline's duration under an idle DW.
func TotalSeconds(events []Event) float64 {
	var s float64
	for _, e := range events {
		s += e.Seconds
	}
	return s
}

package mqo

import (
	"sync"

	"miso/internal/govern"
	"miso/internal/storage"
)

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Hits          int // Get served a digest-verified entry
	Misses        int // Get found nothing usable
	Puts          int // entries admitted
	Rejected      int // entries refused admission (too large, or ledger denied)
	Evictions     int // entries displaced by LRU pressure
	Invalidations int // entries dropped by Clear (generation bump, reorg, quarantine, ...)
	Corrupt       int // entries dropped because the stored digest no longer matched
	Entries       int // current entry count
	Bytes         int64
}

type cacheEntry struct {
	fp         Fingerprint
	table      *storage.Table
	digest     uint64
	bytes      int64
	prev, next *cacheEntry
}

// Cache is a bounded, content-hashed semantic result cache: fingerprint ->
// materialized table + digest. Admission reserves the entry's bytes against
// a govern ledger (evicting least-recently-used entries to make room), so
// cached results are charged to the same memory pool as live queries.
// Every Get re-verifies the stored digest before serving; an entry whose
// table no longer hashes to its admission-time digest is dropped, never
// served. A nil *Cache is a disabled cache: every operation is a no-op.
type Cache struct {
	mu       sync.Mutex
	capBytes int64
	ledger   *govern.Ledger
	entries  map[Fingerprint]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	bytes    int64
	stats    CacheStats
}

// NewCache returns a cache bounded to capBytes of materialized results,
// accounted against pool (which may be nil for standalone accounting).
// capBytes <= 0 returns nil — the disabled cache.
func NewCache(capBytes int64, pool *govern.Pool) *Cache {
	if capBytes <= 0 {
		return nil
	}
	return &Cache{
		capBytes: capBytes,
		ledger:   govern.NewLedger(capBytes, pool),
		entries:  make(map[Fingerprint]*cacheEntry),
	}
}

// Get returns the cached table for fp after re-verifying its digest.
// A verified hit refreshes the entry's LRU position. A digest mismatch
// (the stored table was mutated behind our back) drops the entry and
// reports a miss: a wrong answer is never served.
func (c *Cache) Get(fp Fingerprint) (*storage.Table, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if storage.ChecksumData(e.table) != e.digest {
		c.stats.Corrupt++
		c.stats.Misses++
		c.removeLocked(e)
		return nil, false
	}
	c.moveToFrontLocked(e)
	c.stats.Hits++
	return e.table, true
}

// Contains reports whether fp has a cached entry, without touching LRU
// order or hit/miss counters. The optimizer's reuse probe uses this to
// discount cut costs without perturbing cache statistics.
func (c *Cache) Contains(fp Fingerprint) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[fp]
	return ok
}

// Put admits a materialized result under fp, computing its digest at
// admission time. Least-recently-used entries are evicted until the new
// entry fits the byte bound; an entry larger than the whole cache is
// rejected. Re-putting an existing fingerprint refreshes the entry.
func (c *Cache) Put(fp Fingerprint, t *storage.Table) {
	if c == nil || t == nil {
		return
	}
	bytes := tableBytes(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[fp]; ok {
		c.removeLocked(old)
	}
	if bytes > c.capBytes {
		c.stats.Rejected++
		return
	}
	for c.bytes+bytes > c.capBytes && c.tail != nil {
		c.stats.Evictions++
		c.removeLocked(c.tail)
	}
	if err := c.ledger.Reserve(bytes); err != nil {
		// The shared pool is under live-query pressure; cede to it.
		c.stats.Rejected++
		return
	}
	e := &cacheEntry{fp: fp, table: t, digest: storage.ChecksumData(t), bytes: bytes}
	c.entries[fp] = e
	c.pushFrontLocked(e)
	c.bytes += bytes
	c.stats.Puts++
}

// Clear drops every entry and releases their ledger reservations. It is
// the invalidation hammer: called on log generation bumps, at the start
// of every reorganization, and when audit quarantines a view.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	for c.tail != nil {
		c.removeLocked(c.tail)
	}
	c.stats.Invalidations += n
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	return s
}

func (c *Cache) removeLocked(e *cacheEntry) {
	delete(c.entries, e.fp)
	c.unlinkLocked(e)
	c.bytes -= e.bytes
	c.ledger.Release(e.bytes)
}

func (c *Cache) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) pushFrontLocked(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveToFrontLocked(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// tableBytes estimates the resident size of a materialized table: encoded
// value bytes plus per-row and per-entry bookkeeping overhead.
func tableBytes(t *storage.Table) int64 {
	var b int64 = 256 // entry + header overhead
	for _, r := range t.Rows {
		b += 48 // row slice header + map/ptr overhead
		for _, v := range r {
			b += int64(v.EncodedSize()) + 16
		}
	}
	return b
}

package mqo

import (
	"context"
	"sync"

	"miso/internal/storage"
)

// FlightStats is a point-in-time snapshot of single-flight activity.
type FlightStats struct {
	Leaders   int // calls that executed on behalf of a fingerprint
	Followers int // calls that joined an in-flight leader
	Shared    int // followers that received the leader's result
	Fallbacks int // followers whose leader failed; they re-executed cold
}

// Call is one in-flight execution of a fingerprinted plan. The leader
// executes and Completes it; followers Wait on it.
type Call struct {
	done   chan struct{}
	table  *storage.Table
	digest uint64
	err    error
}

// Registry is the single-flight table for shared-scan piggybacking: the
// first query to Join a fingerprint becomes the leader and executes;
// concurrent queries with the same fingerprint become followers and
// receive the leader's materialized result without re-executing. A nil
// *Registry is the disabled registry.
type Registry struct {
	mu    sync.Mutex
	calls map[Fingerprint]*Call
	stats FlightStats
}

// NewRegistry returns an empty single-flight registry.
func NewRegistry() *Registry {
	return &Registry{calls: make(map[Fingerprint]*Call)}
}

// Join registers interest in fp. leader is true when this caller must
// execute the plan and later call Complete; otherwise the returned Call
// is the in-flight leader's, to Wait on. A nil registry always elects
// the caller leader with a nil Call (Complete on it is a no-op).
func (r *Registry) Join(fp Fingerprint) (c *Call, leader bool) {
	if r == nil {
		return nil, true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.calls[fp]; ok {
		r.stats.Followers++
		return c, false
	}
	c = &Call{done: make(chan struct{})}
	r.calls[fp] = c
	r.stats.Leaders++
	return c, true
}

// Complete publishes the leader's outcome for fp and releases the
// fingerprint so later queries start a fresh flight. A failed leader
// (err != nil) publishes no result; its followers fall back to cold
// execution. digest is the result's content hash, recorded so followers
// can verify what they were handed.
func (r *Registry) Complete(fp Fingerprint, c *Call, table *storage.Table, digest uint64, err error) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	if r.calls[fp] == c {
		delete(r.calls, fp)
	}
	r.mu.Unlock()
	c.table = table
	c.digest = digest
	c.err = err
	close(c.done)
}

// Wait blocks until the leader Completes or ctx is done. shared is true
// only when the leader succeeded and the result's digest still matches —
// the caller may book the table as its own answer. On shared=false the
// caller must execute cold (checking ctx.Err() first).
func (r *Registry) Wait(ctx context.Context, c *Call) (table *storage.Table, shared bool) {
	if c == nil {
		return nil, false
	}
	select {
	case <-ctx.Done():
		return nil, false
	case <-c.done:
	}
	if c.err != nil || c.table == nil || storage.ChecksumData(c.table) != c.digest {
		if r != nil {
			r.mu.Lock()
			r.stats.Fallbacks++
			r.mu.Unlock()
		}
		return nil, false
	}
	if r != nil {
		r.mu.Lock()
		r.stats.Shared++
		r.mu.Unlock()
	}
	return c.table, true
}

// Stats returns a snapshot of single-flight counters.
func (r *Registry) Stats() FlightStats {
	if r == nil {
		return FlightStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Package mqo is the cross-query reuse plane: multi-query optimization
// primitives that let concurrent and repeated queries share work instead
// of re-scanning the same logs and recomputing the same subplans.
//
// It provides three pieces, all keyed by a canonical plan fingerprint:
//
//   - HashPlan folds a normalized logical plan's structural signature and
//     the content version of every base log it scans into one FNV-64a
//     fingerprint. Two plans with equal fingerprints compute the same
//     relation over the same data, so their results are interchangeable.
//   - Registry is a single-flight table of in-flight executions: the first
//     query with a fingerprint becomes the leader and executes; concurrent
//     identical queries become followers and piggyback on the leader's
//     materialized result instead of re-executing.
//   - Cache is a bounded, generation-aware, content-hashed semantic result
//     cache: fingerprint -> materialized table + digest. Every hit
//     re-verifies the stored digest before serving, so a cached answer is
//     byte-identical to cold execution or it is not served at all.
//
// The package is a leaf below multistore: it imports only logical, storage,
// and govern. Every method is nil-receiver safe — a nil *Registry or
// *Cache is the disabled reuse plane and costs one branch per call.
package mqo

import (
	"miso/internal/logical"
)

// Fingerprint identifies a canonical plan over specific base-log content.
// The zero fingerprint is never produced by HashPlan.
type Fingerprint uint64

// VersionSource reports the content version of a base log: its reset
// generation and its current line count. Logs are append-only within a
// generation (Reset clears and bumps the generation), so the (gen, lines)
// pair uniquely identifies a log's content over the process lifetime.
type VersionSource interface {
	LogVersion(name string) (gen, lines int, ok bool)
}

// FNV-64a parameters, inlined so fingerprinting allocates nothing.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ 0xff) * fnvPrime64 // terminator so "ab","c" != "a","bc"
}

func hashUint(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (u >> (8 * i) & 0xff)) * fnvPrime64
	}
	return h
}

// HashPlan returns the canonical fingerprint of a plan: an FNV-64a fold of
// the root's structural signature (canonical — sorted conjuncts, sorted
// join keys; see logical.Node.Signature) and the (name, generation, lines)
// content version of every base log the plan scans. ok is false when the
// plan is not fingerprintable — it reads a view (whose content is not
// identified by base-log versions alone) or scans a log the source does
// not know — and such plans must not be cached or deduplicated.
//
// HashPlan allocates nothing once the plan's signatures are memoized
// (logical.Node.PrewarmSignatures, or any prior Signature call).
func HashPlan(root *logical.Node, src VersionSource) (Fingerprint, bool) {
	if root == nil || src == nil {
		return 0, false
	}
	h := hashString(fnvOffset64, root.Signature())
	h, ok := foldScans(h, root, src)
	if !ok {
		return 0, false
	}
	if h == 0 {
		h = fnvPrime64 // keep the zero fingerprint unreachable
	}
	return Fingerprint(h), true
}

// foldScans folds every Scan leaf's content version into h, pre-order.
// A ViewScan anywhere makes the plan unfingerprintable.
func foldScans(h uint64, n *logical.Node, src VersionSource) (uint64, bool) {
	switch n.Kind {
	case logical.KindViewScan:
		return h, false
	case logical.KindScan:
		gen, lines, ok := src.LogVersion(n.LogName)
		if !ok {
			return h, false
		}
		h = hashString(h, n.LogName)
		h = hashUint(h, uint64(gen))
		h = hashUint(h, uint64(lines))
	}
	for _, c := range n.Children {
		var ok bool
		h, ok = foldScans(h, c, src)
		if !ok {
			return h, false
		}
	}
	return h, true
}

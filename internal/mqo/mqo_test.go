package mqo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"miso/internal/logical"
	"miso/internal/storage"
)

// mapSource is a test VersionSource over a fixed version table.
type mapSource map[string][2]int

func (m mapSource) LogVersion(name string) (gen, lines int, ok bool) {
	v, ok := m[name]
	return v[0], v[1], ok
}

// testPlan builds Limit(Distinct(Extract(Scan(log)))) by hand — enough
// operator variety to exercise signature folding without a catalog.
func testPlan(log string) *logical.Node {
	scan := &logical.Node{Kind: logical.KindScan, LogName: log}
	ext := &logical.Node{
		Kind:     logical.KindExtract,
		Children: []*logical.Node{scan},
		Fields: []logical.ExtractField{
			{LogField: "user", OutName: "user", Type: storage.KindString},
			{LogField: "bytes", OutName: "bytes", Type: storage.KindInt},
		},
	}
	dist := &logical.Node{Kind: logical.KindDistinct, Children: []*logical.Node{ext}}
	return &logical.Node{Kind: logical.KindLimit, LimitN: 10, Children: []*logical.Node{dist}}
}

func TestHashPlanDeterministicAndVersionAware(t *testing.T) {
	src := mapSource{"logs_a": {0, 100}, "logs_b": {0, 50}}
	fp1, ok := HashPlan(testPlan("logs_a"), src)
	if !ok || fp1 == 0 {
		t.Fatalf("HashPlan = (%v, %v), want fingerprint", fp1, ok)
	}
	fp2, ok := HashPlan(testPlan("logs_a"), src)
	if !ok || fp2 != fp1 {
		t.Fatalf("identical plans hashed to %v and %v", fp1, fp2)
	}
	if fpB, _ := HashPlan(testPlan("logs_b"), src); fpB == fp1 {
		t.Fatal("different scans collided")
	}
	// Appends within a generation change the fingerprint.
	if fp, _ := HashPlan(testPlan("logs_a"), mapSource{"logs_a": {0, 101}}); fp == fp1 {
		t.Fatal("line-count change did not change the fingerprint")
	}
	// Generation bumps change the fingerprint.
	if fp, _ := HashPlan(testPlan("logs_a"), mapSource{"logs_a": {1, 100}}); fp == fp1 {
		t.Fatal("generation bump did not change the fingerprint")
	}
}

func TestHashPlanRejectsViewsAndUnknownLogs(t *testing.T) {
	src := mapSource{"logs_a": {0, 100}}
	if _, ok := HashPlan(testPlan("logs_zzz"), src); ok {
		t.Fatal("unknown log must not fingerprint")
	}
	vs := &logical.Node{Kind: logical.KindViewScan, ViewName: "v1"}
	root := &logical.Node{Kind: logical.KindDistinct, Children: []*logical.Node{vs}}
	if _, ok := HashPlan(root, src); ok {
		t.Fatal("a plan reading a view must not fingerprint")
	}
	if _, ok := HashPlan(nil, src); ok {
		t.Fatal("nil plan must not fingerprint")
	}
}

// TestPlanHashZeroAlloc is the fingerprint counterpart of the exec
// package's TestBatchHashZeroAlloc: once the plan's signatures are
// memoized, hashing must not allocate — it runs on the hot serving path
// for every query and every cut probe.
func TestPlanHashZeroAlloc(t *testing.T) {
	plan := testPlan("logs_a")
	var src VersionSource = mapSource{"logs_a": {3, 12345}}
	plan.PrewarmSignatures()
	if _, ok := HashPlan(plan, src); !ok {
		t.Fatal("warmup hash failed")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := HashPlan(plan, src); !ok {
			t.Fatal("hash failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("HashPlan allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkPlanHash(b *testing.B) {
	plan := testPlan("logs_a")
	var src VersionSource = mapSource{"logs_a": {3, 12345}}
	plan.PrewarmSignatures()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := HashPlan(plan, src); !ok {
			b.Fatal("hash failed")
		}
	}
}

func tbl(name string, n int) *storage.Table {
	sch, err := storage.NewSchema(storage.Column{Name: "v", Type: storage.KindInt})
	if err != nil {
		panic(err)
	}
	t := storage.NewTable(name, sch)
	for i := 0; i < n; i++ {
		if err := t.Append(storage.Row{storage.IntValue(int64(i))}); err != nil {
			panic(err)
		}
	}
	return t
}

func TestCacheHitMissAndDigestVerify(t *testing.T) {
	c := NewCache(1<<20, nil)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	want := tbl("r", 10)
	c.Put(1, want)
	got, ok := c.Get(1)
	if !ok || got != want {
		t.Fatalf("Get = (%v, %v), want the cached table", got, ok)
	}
	// Mutating the cached table behind the cache's back must be caught by
	// digest verification: the entry is dropped, never served.
	want.Rows[0][0] = storage.IntValue(999)
	if _, ok := c.Get(1); ok {
		t.Fatal("served a corrupted entry")
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	one := tbl("a", 100)
	per := tableBytes(one)
	c := NewCache(3*per, nil)
	c.Put(1, one)
	c.Put(2, tbl("b", 100))
	c.Put(3, tbl("c", 100))
	c.Get(1) // refresh 1; 2 becomes LRU
	c.Put(4, tbl("d", 100))
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, fp := range []Fingerprint{1, 3, 4} {
		if _, ok := c.Get(fp); !ok {
			t.Fatalf("entry %d evicted, want resident", fp)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// An entry larger than the whole cache is rejected outright.
	c.Put(5, tbl("huge", 10000))
	if _, ok := c.Get(5); ok {
		t.Fatal("oversized entry admitted")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache(1<<20, nil)
	c.Put(1, tbl("a", 5))
	c.Put(2, tbl("b", 5))
	c.Clear()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 2 {
		t.Fatalf("after Clear: %+v", st)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("entry survived Clear")
	}
}

func TestNilCacheAndRegistryAreSafe(t *testing.T) {
	var c *Cache
	c.Put(1, tbl("a", 1))
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache hit")
	}
	c.Clear()
	if c.Contains(1) {
		t.Fatal("nil cache contains")
	}
	_ = c.Stats()
	if NewCache(0, nil) != nil {
		t.Fatal("zero-cap cache must be nil")
	}

	var r *Registry
	call, leader := r.Join(1)
	if !leader || call != nil {
		t.Fatal("nil registry must elect the caller leader with a nil call")
	}
	r.Complete(1, call, nil, 0, nil)
	if _, shared := r.Wait(context.Background(), call); shared {
		t.Fatal("nil call shared a result")
	}
	_ = r.Stats()
}

func TestFlightPiggyback(t *testing.T) {
	r := NewRegistry()
	res := tbl("r", 7)
	dig := storage.ChecksumData(res)

	lead, leader := r.Join(42)
	if !leader {
		t.Fatal("first join must lead")
	}
	const followers = 8
	var wg sync.WaitGroup
	shared := make([]bool, followers)
	for i := 0; i < followers; i++ {
		c, l := r.Join(42)
		if l {
			t.Fatal("second join led")
		}
		wg.Add(1)
		go func(i int, c *Call) {
			defer wg.Done()
			_, shared[i] = r.Wait(context.Background(), c)
		}(i, c)
	}
	r.Complete(42, lead, res, dig, nil)
	wg.Wait()
	for i, s := range shared {
		if !s {
			t.Fatalf("follower %d did not share", i)
		}
	}
	st := r.Stats()
	if st.Leaders != 1 || st.Followers != followers || st.Shared != followers {
		t.Fatalf("stats: %+v", st)
	}
	// The fingerprint is released: the next join leads again.
	if _, leader := r.Join(42); !leader {
		t.Fatal("fingerprint not released after Complete")
	}
}

func TestFlightLeaderFailureFallsThrough(t *testing.T) {
	r := NewRegistry()
	lead, _ := r.Join(7)
	fol, _ := r.Join(7)
	r.Complete(7, lead, nil, 0, errors.New("boom"))
	if _, shared := r.Wait(context.Background(), fol); shared {
		t.Fatal("shared a failed leader's result")
	}
	if st := r.Stats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Fallbacks)
	}
}

func TestFlightWaitRespectsContext(t *testing.T) {
	r := NewRegistry()
	_, _ = r.Join(9) // leader never completes
	fol, _ := r.Join(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, shared := r.Wait(ctx, fol); shared {
		t.Fatal("shared after context cancellation")
	}
}

func TestFlightDigestMismatchNotShared(t *testing.T) {
	r := NewRegistry()
	lead, _ := r.Join(11)
	fol, _ := r.Join(11)
	res := tbl("r", 3)
	r.Complete(11, lead, res, storage.ChecksumData(res)+1, nil)
	if _, shared := r.Wait(context.Background(), fol); shared {
		t.Fatal("shared a result whose digest does not verify")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1<<20, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := Fingerprint(i % 10)
				if i%3 == 0 {
					c.Put(fp, tbl(fmt.Sprintf("t%d", fp), 5))
				} else {
					c.Get(fp)
				}
			}
		}(g)
	}
	wg.Wait()
}

package logical

import (
	"strings"
	"testing"

	"miso/internal/data"
	"miso/internal/expr"
	"miso/internal/storage"
)

func testCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func build(t *testing.T, sql string) *Node {
	t.Helper()
	n, err := NewBuilder(testCatalog(t)).BuildSQL(sql)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return n
}

func kinds(n *Node) []Kind {
	var out []Kind
	n.Walk(func(m *Node) { out = append(out, m.Kind) })
	return out
}

func hasKind(n *Node, k Kind) bool {
	for _, got := range kinds(n) {
		if got == k {
			return true
		}
	}
	return false
}

func TestBuildShapeSimple(t *testing.T) {
	n := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	// Project -> Filter(pushed) -> Extract -> Scan.
	want := []Kind{KindProject, KindFilter, KindExtract, KindScan}
	got := kinds(n)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
	if n.Schema().Len() != 1 || n.Schema().Columns[0].Name != "tweet_id" {
		t.Errorf("schema = %s", n.Schema())
	}
}

func TestBuildExtractIsWide(t *testing.T) {
	// The extract always pulls every declared field, regardless of what
	// the query references (schema-on-read parses the whole record).
	n := build(t, "SELECT tweet_id FROM tweets")
	var extract *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindExtract {
			extract = m
		}
	})
	if extract == nil {
		t.Fatal("no extract")
	}
	if len(extract.Fields) != 8 {
		t.Errorf("extract fields = %d, want all 8", len(extract.Fields))
	}
	// Fields are sorted by log field for canonical signatures.
	for i := 1; i < len(extract.Fields); i++ {
		if extract.Fields[i].LogField < extract.Fields[i-1].LogField {
			t.Error("extract fields not sorted")
		}
	}
}

func TestBuildPushdownSingleTablePredicates(t *testing.T) {
	n := build(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE c.category = 'restaurant' AND l.rating >= 3.0`)
	// Each single-table conjunct must sit below the join.
	var join *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindJoin {
			join = m
		}
	})
	if join == nil {
		t.Fatal("no join")
	}
	for i, child := range join.Children {
		if child.Kind != KindFilter {
			t.Errorf("join child %d is %v, want pushed filter", i, child.Kind)
		}
	}
	// Nothing left above the join but the projection.
	if n.Kind != KindProject || n.Children[0].Kind != KindJoin {
		t.Errorf("residual filter above join: %v", kinds(n))
	}
}

func TestBuildJoinKeys(t *testing.T) {
	n := build(t, `SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id`)
	var join *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindJoin {
			join = m
		}
	})
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.LeftKeys) != 1 || join.LeftKeys[0] != "tweets.user_id" ||
		join.RightKeys[0] != "checkins.user_id" {
		t.Errorf("keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
}

func TestBuildQualifiersUseLogNames(t *testing.T) {
	// Views must match across queries regardless of the SQL alias used.
	a := build(t, "SELECT t.tweet_id FROM tweets t WHERE t.lang = 'en'")
	b := build(t, "SELECT tw.tweet_id FROM tweets tw WHERE tw.lang = 'en'")
	if a.Signature() != b.Signature() {
		t.Errorf("alias changed signature:\n%s\nvs\n%s", a.Signature(), b.Signature())
	}
}

func TestBuildAggregateAndHaving(t *testing.T) {
	n := build(t, `SELECT lang, COUNT(*) AS n, AVG(retweets) AS ar FROM tweets
		GROUP BY lang HAVING COUNT(*) > 5`)
	if !hasKind(n, KindAggregate) {
		t.Fatal("no aggregate")
	}
	// HAVING becomes a filter above the aggregate.
	var agg *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindAggregate {
			agg = m
		}
	})
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Errorf("agg: groups=%d aggs=%d", len(agg.GroupBy), len(agg.Aggs))
	}
	foundHaving := false
	n.Walk(func(m *Node) {
		if m.Kind == KindFilter && m.Children[0].Kind == KindAggregate {
			foundHaving = true
		}
	})
	if !foundHaving {
		t.Error("HAVING filter not above aggregate")
	}
	if got := n.Schema().Names(); got[0] != "lang" || got[1] != "n" || got[2] != "ar" {
		t.Errorf("output schema = %v", got)
	}
}

func TestBuildUDFHoisting(t *testing.T) {
	n := build(t, `SELECT tweet_id FROM tweets WHERE SENTIMENT(text) > 0`)
	var extract *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindExtract {
			extract = m
		}
	})
	// The UDF becomes a computed extract field...
	var udfField *ExtractField
	for i := range extract.Fields {
		if extract.Fields[i].UDF != nil {
			udfField = &extract.Fields[i]
		}
	}
	if udfField == nil {
		t.Fatal("UDF not hoisted into extract")
	}
	if !strings.HasPrefix(udfField.OutName, "tweets.__sentiment_") {
		t.Errorf("udf column name = %q", udfField.OutName)
	}
	if !extract.UsesUDFHere() || !extract.UsesUDF() {
		t.Error("extract with UDF field not flagged")
	}
	// ...and every node above the extract is UDF-free.
	n.Walk(func(m *Node) {
		if m.Kind != KindExtract && m.UsesUDFHere() {
			t.Errorf("%v node still uses a UDF", m.Kind)
		}
	})
}

func TestBuildErrors(t *testing.T) {
	cat := testCatalog(t)
	b := NewBuilder(cat)
	bad := map[string]string{
		"unknown table":      "SELECT a FROM nonexistent",
		"unknown column":     "SELECT nope FROM tweets",
		"ambiguous column":   "SELECT user_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id",
		"aggregate in where": "SELECT tweet_id FROM tweets WHERE COUNT(*) > 1",
		"cross join":         "SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.lang = 'en'",
		"ungrouped column":   "SELECT lang, retweets FROM tweets GROUP BY lang",
		"duplicate alias":    "SELECT x.tweet_id FROM tweets x JOIN checkins x ON x.user_id = x.user_id",
	}
	for name, sql := range bad {
		if _, err := b.BuildSQL(sql); err == nil {
			t.Errorf("%s: accepted %q", name, sql)
		}
	}
}

func TestSignatureStability(t *testing.T) {
	// AND order and comparison direction do not change the signature.
	a := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 10")
	b := build(t, "SELECT tweet_id FROM tweets WHERE 10 < retweets AND 'en' = lang")
	if a.Signature() != b.Signature() {
		t.Errorf("signatures differ:\n%s\n%s", a.Signature(), b.Signature())
	}
	// Different constants DO change it.
	c := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 11")
	if a.Signature() == c.Signature() {
		t.Error("different predicate collided")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	c1 := n.Clone()
	if c1.Signature() != n.Signature() {
		t.Error("clone signature differs")
	}
	// Mutate a fresh clone before its signature is memoized: the change
	// must be reflected, and the original must be unaffected.
	c2 := n.Clone()
	c2.Children[0] = c2.Children[0].Children[0] // drop the filter
	if c2.Signature() == n.Signature() {
		t.Error("mutated clone kept the original signature")
	}
	if n.Signature() != c1.Signature() {
		t.Error("original signature changed")
	}
}

func TestDescribeSimpleChain(t *testing.T) {
	n := build(t, `SELECT c.checkin_id, c.user_id FROM checkins c WHERE c.category = 'bar'`)
	// Descriptor of the filter node (below the projection).
	d := Describe(n.Children[0])
	if !d.Simple {
		t.Fatal("filter chain not Simple")
	}
	if d.SourceSig != "extract(checkins)" {
		t.Errorf("source = %q", d.SourceSig)
	}
	if len(d.Conjuncts) != 1 {
		t.Errorf("conjuncts = %d", len(d.Conjuncts))
	}
	if !d.Columns["checkins.category"] || !d.Columns["checkins.user_id"] {
		t.Errorf("columns missing: %v", d.Columns)
	}
}

func TestDescribeJoinAndSubsumptionHelpers(t *testing.T) {
	n1 := build(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id WHERE c.category = 'bar'`)
	n2 := build(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE c.category = 'bar' AND l.rating >= 4.0`)
	d1 := Describe(findJoinTop(n1))
	d2 := Describe(findJoinTop(n2))
	if !d1.Simple || !d2.Simple {
		t.Fatal("join chains not Simple")
	}
	if d1.SourceSig != d2.SourceSig {
		t.Errorf("source sigs differ:\n%s\n%s", d1.SourceSig, d2.SourceSig)
	}
	if !d1.ConjunctsSubsetOf(d2) {
		t.Error("d1 should subsume into d2")
	}
	if d2.ConjunctsSubsetOf(d1) {
		t.Error("d2 should not be a subset of d1")
	}
	res := d2.ResidualConjuncts(d1)
	if len(res) != 1 || !strings.Contains(res[0].Canon(), "rating") {
		t.Errorf("residual = %v", res)
	}
}

// findJoinTop returns the highest node at or below which the plan is the
// SPJ core (the node right below the final projection).
func findJoinTop(n *Node) *Node {
	for n.Kind == KindProject || n.Kind == KindSort || n.Kind == KindLimit ||
		n.Kind == KindAggregate || n.Kind == KindDistinct {
		n = n.Children[0]
	}
	return n
}

func TestDescribeAggregateNotSimple(t *testing.T) {
	n := build(t, "SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang")
	var agg *Node
	n.Walk(func(m *Node) {
		if m.Kind == KindAggregate {
			agg = m
		}
	})
	if Describe(agg).Simple {
		t.Error("aggregate marked Simple")
	}
}

func TestNormalizeCollapsesStackedFilters(t *testing.T) {
	// Build Filter(retweets>10, Filter(lang='en', Extract)) manually and
	// check it normalizes to the builder's single-filter shape with the
	// same signature.
	combined := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 10")
	single := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	inner := single.Children[0] // Filter(lang='en')
	outer, err := NewFilterNode(inner, &expr.BinOp{
		Op: ">",
		L:  &expr.ColRef{Name: "tweets.retweets"},
		R:  &expr.Const{Val: storage.IntValue(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	norm := Normalize(outer)
	if norm.Kind != KindFilter || norm.Children[0].Kind != KindExtract {
		t.Fatalf("normalize shape: %v", kinds(norm))
	}
	if norm.Signature() != combined.Children[0].Signature() {
		t.Errorf("normalized signature differs: %s vs %s",
			norm.Signature(), combined.Children[0].Signature())
	}
}

func TestNormalizeDropsIdentityProjection(t *testing.T) {
	n := build(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	child := n.Children[0] // the filter
	projs := make([]Proj, child.Schema().Len())
	for i, c := range child.Schema().Columns {
		projs[i] = Proj{Expr: &expr.ColRef{Name: c.Name}, Name: c.Name}
	}
	ident, err := NewProjectNode(child, projs)
	if err != nil {
		t.Fatal(err)
	}
	norm := Normalize(ident)
	if norm.Kind != KindFilter {
		t.Errorf("identity projection survived: %v", norm.Kind)
	}
	// A reordering projection must NOT be dropped.
	if child.Schema().Len() >= 2 {
		swapped := append([]Proj(nil), projs...)
		swapped[0], swapped[1] = swapped[1], swapped[0]
		reorder, err := NewProjectNode(child, swapped)
		if err != nil {
			t.Fatal(err)
		}
		if Normalize(reorder).Kind != KindProject {
			t.Error("reordering projection dropped")
		}
	}
}

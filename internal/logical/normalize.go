package logical

import (
	"miso/internal/expr"
)

// Normalize rewrites a plan into a canonical shape without changing its
// result: adjacent filters collapse into one (their conjunct sets union,
// and Signature already sorts conjuncts), and identity projections — pass-
// through columns in exactly the child's order — are dropped. Expanded view
// definitions (ViewScan leaves replaced by their base-data subtrees)
// acquire exactly the signature a raw plan for the same relation would
// have, which is what makes opportunistic views created from rewritten
// plans matchable by future raw queries.
func Normalize(n *Node) *Node {
	c := *n
	c.sig = ""
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = Normalize(ch)
	}
	switch c.Kind {
	case KindFilter:
		child := c.Children[0]
		if child.Kind == KindFilter {
			merged := append(expr.Conjuncts(child.Pred), expr.Conjuncts(c.Pred)...)
			c.Pred = expr.AndAll(merged)
			c.Children = []*Node{child.Children[0]}
		}
	case KindProject:
		child := c.Children[0]
		if isIdentityProjection(c.Projs, child.Schema()) {
			return child
		}
	}
	return &c
}

func isIdentityProjection(projs []Proj, childSchema interface {
	Len() int
	Index(string) int
}) bool {
	if len(projs) != childSchema.Len() {
		return false
	}
	for i, p := range projs {
		col, ok := p.Expr.(*expr.ColRef)
		if !ok || col.Name != p.Name || childSchema.Index(p.Name) != i {
			return false
		}
	}
	return true
}

package logical

import (
	"fmt"
	"math/rand"
	"testing"

	"miso/internal/data"
)

// TestBuilderRobustOnGeneratedSQL generates a few thousand structured
// pseudo-random queries over the real catalog. Every input must either
// fail with an error or produce a plan whose schema is fully resolved —
// never a panic.
func TestBuilderRobustOnGeneratedSQL(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(cat)
	rng := rand.New(rand.NewSource(5))

	tables := []string{"tweets", "checkins", "landmarks"}
	cols := map[string][]string{
		"tweets":    {"tweet_id", "user_id", "ts", "text", "hashtag", "lang", "retweets", "followers"},
		"checkins":  {"checkin_id", "user_id", "ts", "venue_id", "lat", "lon", "category"},
		"landmarks": {"venue_id", "name", "city", "category", "rating"},
	}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	genPred := func(alias, table string) string {
		c := alias + "." + pick(cols[table])
		switch rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%s > %d", c, rng.Intn(1000))
		case 1:
			return fmt.Sprintf("%s = 'x%d'", c, rng.Intn(5))
		case 2:
			return fmt.Sprintf("%s IS NOT NULL", c)
		case 3:
			return fmt.Sprintf("%s IN (1, 2, %d)", c, rng.Intn(9))
		default:
			return fmt.Sprintf("SENTIMENT(%s.text) > 0", alias) // may not resolve; errors are fine
		}
	}

	built, failed := 0, 0
	for trial := 0; trial < 3000; trial++ {
		ta := pick(tables)
		sql := fmt.Sprintf("SELECT a.%s FROM %s a", pick(cols[ta]), ta)
		if rng.Intn(2) == 0 {
			tb := pick(tables)
			sql += fmt.Sprintf(" JOIN %s b ON a.%s = b.%s",
				tb, pick(cols[ta]), pick(cols[tb]))
		}
		if rng.Intn(2) == 0 {
			sql += " WHERE " + genPred("a", ta)
			if rng.Intn(2) == 0 {
				sql += " AND " + genPred("a", ta)
			}
		}
		if rng.Intn(3) == 0 {
			sql = fmt.Sprintf("SELECT a.%s, COUNT(*) AS n FROM %s a GROUP BY a.%s",
				pick(cols[ta]), ta, pick(cols[ta]))
			if rng.Intn(2) == 0 {
				sql += " HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5"
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", sql, r)
				}
			}()
			plan, err := b.BuildSQL(sql)
			if err != nil {
				failed++
				return
			}
			built++
			// A successful build must yield a resolved schema everywhere.
			plan.Walk(func(n *Node) {
				if n.Schema() == nil {
					t.Fatalf("nil schema in plan for %q", sql)
				}
			})
			// The signature must be computable and stable.
			if plan.Signature() != plan.Clone().Signature() {
				t.Fatalf("unstable signature for %q", sql)
			}
		}()
	}
	if built == 0 {
		t.Fatal("generator produced no valid queries")
	}
	t.Logf("built %d plans, rejected %d queries", built, failed)
}

package logical

import (
	"fmt"
	"sort"
	"strings"

	"miso/internal/expr"
)

// Descriptor summarizes what a subtree computes in a form that supports
// subsumption-based view matching for SPJ (select-project-join) shapes:
// a source skeleton (which logs are extracted and how they are joined,
// ignoring filters), the set of filter conjuncts applied, and the columns
// available. Non-SPJ subtrees (aggregates, sorts, limits) get Simple=false
// and only match views by exact signature.
type Descriptor struct {
	// Simple is true when the subtree is a chain of Extract, Filter,
	// Join, and pass-through Project operators.
	Simple bool
	// SourceSig identifies the join/extract skeleton with filters and
	// field sets stripped, so views extracting a superset of fields can
	// still serve the node.
	SourceSig string
	// Conjuncts maps canonical form to the filter conjuncts applied
	// anywhere in the subtree.
	Conjuncts map[string]expr.Expr
	// Columns is the set of output column names.
	Columns map[string]bool
	// ColOrder is the output column order (matching the schema).
	ColOrder []string
	// HasUDF reports whether any expression in the subtree calls a UDF.
	HasUDF bool
}

// HasAllColumns reports whether every name in cols is available.
func (d *Descriptor) HasAllColumns(cols []string) bool {
	for _, c := range cols {
		if !d.Columns[c] {
			return false
		}
	}
	return true
}

// ConjunctsSubsetOf reports whether d's conjuncts are a subset of other's.
func (d *Descriptor) ConjunctsSubsetOf(other *Descriptor) bool {
	for c := range d.Conjuncts {
		if _, ok := other.Conjuncts[c]; !ok {
			return false
		}
	}
	return true
}

// ResidualConjuncts returns the conjuncts of d that are absent from view,
// sorted by canonical form for determinism.
func (d *Descriptor) ResidualConjuncts(view *Descriptor) []expr.Expr {
	keys := make([]string, 0, len(d.Conjuncts))
	for c := range d.Conjuncts {
		if _, ok := view.Conjuncts[c]; !ok {
			keys = append(keys, c)
		}
	}
	sort.Strings(keys)
	out := make([]expr.Expr, len(keys))
	for i, k := range keys {
		out[i] = d.Conjuncts[k]
	}
	return out
}

// Describe computes the descriptor of a subtree.
func Describe(n *Node) *Descriptor {
	d := &Descriptor{
		Conjuncts: map[string]expr.Expr{},
		Columns:   map[string]bool{},
		HasUDF:    n.UsesUDF(),
	}
	for _, c := range n.Schema().Columns {
		d.Columns[c.Name] = true
		d.ColOrder = append(d.ColOrder, c.Name)
	}
	switch n.Kind {
	case KindExtract:
		d.Simple = true
		d.SourceSig = fmt.Sprintf("extract(%s)", n.Children[0].LogName)
	case KindFilter:
		cd := Describe(n.Children[0])
		d.Simple = cd.Simple
		d.SourceSig = cd.SourceSig
		for k, v := range cd.Conjuncts {
			d.Conjuncts[k] = v
		}
		for _, c := range expr.Conjuncts(n.Pred) {
			d.Conjuncts[c.Canon()] = c
		}
	case KindJoin:
		ld := Describe(n.Children[0])
		rd := Describe(n.Children[1])
		d.Simple = ld.Simple && rd.Simple
		keys := make([]string, len(n.LeftKeys))
		for i := range n.LeftKeys {
			keys[i] = n.LeftKeys[i] + "=" + n.RightKeys[i]
		}
		sort.Strings(keys)
		d.SourceSig = fmt.Sprintf("join(%s,%s,%s,[%s])",
			n.JoinType, ld.SourceSig, rd.SourceSig, strings.Join(keys, ","))
		for k, v := range ld.Conjuncts {
			d.Conjuncts[k] = v
		}
		for k, v := range rd.Conjuncts {
			d.Conjuncts[k] = v
		}
	case KindProject:
		cd := Describe(n.Children[0])
		passThrough := true
		for _, p := range n.Projs {
			c, ok := p.Expr.(*expr.ColRef)
			if !ok || c.Name != p.Name {
				passThrough = false
				break
			}
		}
		if passThrough && cd.Simple {
			d.Simple = true
			d.SourceSig = cd.SourceSig
			for k, v := range cd.Conjuncts {
				d.Conjuncts[k] = v
			}
		} else {
			d.Simple = false
			d.SourceSig = n.Signature()
		}
	case KindViewScan:
		// A view scan is opaque: only exact signature matching applies.
		d.Simple = false
		d.SourceSig = n.Signature()
	default:
		d.Simple = false
		d.SourceSig = n.Signature()
	}
	return d
}

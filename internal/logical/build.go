package logical

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"miso/internal/expr"
	"miso/internal/sqlparser"
	"miso/internal/storage"
)

// Builder turns parsed queries into typed logical plans against a catalog.
type Builder struct {
	cat *storage.Catalog
}

// NewBuilder returns a Builder over the catalog.
func NewBuilder(cat *storage.Catalog) *Builder { return &Builder{cat: cat} }

// BuildSQL parses and plans a query in one step.
func (b *Builder) BuildSQL(sql string) (*Node, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return b.Build(q)
}

// Build plans a parsed query. The plan is normalized (stacked filters
// collapsed, identity projections dropped) so that semantically equal
// queries written differently share canonical signatures.
func (b *Builder) Build(q *sqlparser.Query) (*Node, error) {
	n, err := b.buildQuery(q)
	if err != nil {
		return nil, err
	}
	return Normalize(n), nil
}

// tableEntry tracks one FROM-clause relation during planning.
type tableEntry struct {
	alias     string
	qual      string // column-name qualifier: the log name for base logs
	isLog     bool
	log       *storage.LogFile
	subPlan   *Node                // for derived tables, already qualified
	available map[string]bool      // base column names visible under this alias
	needed    map[string]bool      // base columns actually referenced
	udfCols   map[string]expr.Expr // hoisted UDF columns: out name -> expr
	leaf      *Node                // built leaf plan
	rightOfLJ bool                 // appears as the right side of a LEFT JOIN
}

// qualified names a column. Base-log columns are qualified by the log name
// (not the query's alias) so that views created by one query match plans of
// other queries that alias the same log differently.
func (t *tableEntry) qualified(base string) string { return t.qual + "." + base }

func (b *Builder) buildQuery(q *sqlparser.Query) (*Node, error) {
	// 1. Register FROM-clause relations.
	entries := []*tableEntry{}
	byAlias := map[string]*tableEntry{}
	addRef := func(ref sqlparser.TableRef, rightOfLJ bool) error {
		alias := ref.EffectiveName()
		if alias == "" {
			return fmt.Errorf("logical: table reference without a name")
		}
		if _, dup := byAlias[alias]; dup {
			return fmt.Errorf("logical: duplicate table alias %q", alias)
		}
		e := &tableEntry{
			alias:     alias,
			qual:      alias,
			available: map[string]bool{},
			needed:    map[string]bool{},
			udfCols:   map[string]expr.Expr{},
			rightOfLJ: rightOfLJ,
		}
		if ref.Subquery != nil {
			sub, err := b.buildQuery(ref.Subquery)
			if err != nil {
				return fmt.Errorf("logical: in derived table %q: %w", alias, err)
			}
			// Qualify the subquery's output columns with the alias.
			projs := make([]Proj, sub.Schema().Len())
			for i, c := range sub.Schema().Columns {
				projs[i] = Proj{Expr: &expr.ColRef{Name: c.Name}, Name: alias + "." + c.Name}
				e.available[c.Name] = true
			}
			ren, err := newProject(sub, projs)
			if err != nil {
				return err
			}
			e.subPlan = ren
		} else {
			log, err := b.cat.Log(ref.Name)
			if err != nil {
				return err
			}
			e.isLog = true
			e.log = log
			for _, c := range log.FieldTypes.Columns {
				e.available[c.Name] = true
			}
		}
		entries = append(entries, e)
		byAlias[alias] = e
		return nil
	}
	if err := addRef(q.From, false); err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		if err := addRef(j.Table, j.Type == sqlparser.LeftJoin); err != nil {
			return nil, err
		}
	}
	// Base logs are qualified by log name so view signatures are stable
	// across queries with different aliases — unless the same log appears
	// twice (self-join), in which case aliases disambiguate.
	logCount := map[string]int{}
	for _, e := range entries {
		if e.isLog {
			logCount[e.log.Name]++
		}
	}
	byQual := map[string]*tableEntry{}
	for _, e := range entries {
		if e.isLog && logCount[e.log.Name] == 1 {
			e.qual = e.log.Name
		}
		byQual[e.qual] = e
	}

	// 2. Resolve an AST identifier to its qualified name, recording need.
	resolveIdent := func(id *sqlparser.Ident) (string, error) {
		if id.Qualifier != "" {
			e, ok := byAlias[id.Qualifier]
			if !ok {
				return "", fmt.Errorf("logical: unknown table %q in %s", id.Qualifier, id.SQL())
			}
			if !e.available[id.Name] {
				return "", fmt.Errorf("logical: table %q has no column %q", id.Qualifier, id.Name)
			}
			e.needed[id.Name] = true
			return e.qualified(id.Name), nil
		}
		var found *tableEntry
		for _, e := range entries {
			if e.available[id.Name] {
				if found != nil {
					return "", fmt.Errorf("logical: ambiguous column %q (in %q and %q)",
						id.Name, found.alias, e.alias)
				}
				found = e
			}
		}
		if found == nil {
			return "", fmt.Errorf("logical: unknown column %q", id.Name)
		}
		found.needed[id.Name] = true
		return found.qualified(id.Name), nil
	}

	// 3. Convert AST expressions to resolved logical expressions.
	var convert func(e sqlparser.Expr, allowAgg bool) (expr.Expr, error)
	convert = func(e sqlparser.Expr, allowAgg bool) (expr.Expr, error) {
		switch v := e.(type) {
		case *sqlparser.Ident:
			name, err := resolveIdent(v)
			if err != nil {
				return nil, err
			}
			return &expr.ColRef{Name: name}, nil
		case *sqlparser.Literal:
			return &expr.Const{Val: literalValue(v)}, nil
		case *sqlparser.Binary:
			l, err := convert(v.Left, allowAgg)
			if err != nil {
				return nil, err
			}
			r, err := convert(v.Right, allowAgg)
			if err != nil {
				return nil, err
			}
			return &expr.BinOp{Op: v.Op, L: l, R: r}, nil
		case *sqlparser.Unary:
			in, err := convert(v.Expr, allowAgg)
			if err != nil {
				return nil, err
			}
			if v.Op == "NOT" {
				return &expr.Not{E: in}, nil
			}
			return &expr.Neg{E: in}, nil
		case *sqlparser.IsNull:
			in, err := convert(v.Expr, allowAgg)
			if err != nil {
				return nil, err
			}
			return &expr.IsNull{E: in, Neg: v.Negate}, nil
		case *sqlparser.InList:
			in, err := convert(v.Expr, allowAgg)
			if err != nil {
				return nil, err
			}
			items := make([]expr.Expr, len(v.Items))
			for i, it := range v.Items {
				c, err := convert(it, allowAgg)
				if err != nil {
					return nil, err
				}
				items[i] = c
			}
			return &expr.In{E: in, Items: items, Neg: v.Negate}, nil
		case *sqlparser.Call:
			isAgg := expr.IsAggregateName(v.Name)
			if isAgg && !allowAgg {
				return nil, fmt.Errorf("logical: aggregate %s not allowed here", v.Name)
			}
			if v.Star {
				if v.Name != "COUNT" {
					return nil, fmt.Errorf("logical: only COUNT supports (*)")
				}
				// Placeholder with the AggSpec canonical encoding; it
				// is always substituted by the aggregate output column.
				return &expr.Func{Name: "COUNT_STAR"}, nil
			}
			args := make([]expr.Expr, len(v.Args))
			for i, a := range v.Args {
				c, err := convert(a, allowAgg)
				if err != nil {
					return nil, err
				}
				args[i] = c
			}
			name := v.Name
			if isAgg && v.Distinct {
				name += "_DISTINCT"
			}
			return &expr.Func{Name: name, Args: args}, nil
		default:
			return nil, fmt.Errorf("logical: unsupported expression %T", e)
		}
	}

	// SELECT * forces every available column to be needed.
	hasStar := false
	for _, s := range q.Select {
		if s.Star {
			hasStar = true
		}
	}
	if hasStar {
		for _, e := range entries {
			for c := range e.available {
				e.needed[c] = true
			}
		}
	}

	// 4. First pass over all expressions purely to mark needed columns and
	// surface resolution errors. Aggregates are allowed where legal.
	type converted struct {
		where  expr.Expr
		ons    []expr.Expr
		group  []expr.Expr
		having expr.Expr
		sel    []expr.Expr
		order  []expr.Expr
	}
	var cv converted
	var err error
	if q.Where != nil {
		if cv.where, err = convert(q.Where, false); err != nil {
			return nil, err
		}
	}
	for _, j := range q.Joins {
		on, err := convert(j.On, false)
		if err != nil {
			return nil, err
		}
		cv.ons = append(cv.ons, on)
	}
	for _, g := range q.GroupBy {
		ge, err := convert(g, false)
		if err != nil {
			return nil, err
		}
		cv.group = append(cv.group, ge)
	}
	if q.Having != nil {
		if cv.having, err = convert(q.Having, true); err != nil {
			return nil, err
		}
	}
	for _, s := range q.Select {
		if s.Star {
			cv.sel = append(cv.sel, nil)
			continue
		}
		se, err := convert(s.Expr, true)
		if err != nil {
			return nil, err
		}
		cv.sel = append(cv.sel, se)
	}
	selectAliases := map[string]bool{}
	for _, s := range q.Select {
		if s.Alias != "" {
			selectAliases[s.Alias] = true
		}
	}
	for _, o := range q.OrderBy {
		// A bare identifier naming a select alias is resolved against the
		// projected output later; leave it nil here.
		if id, ok := o.Expr.(*sqlparser.Ident); ok && id.Qualifier == "" && selectAliases[id.Name] {
			cv.order = append(cv.order, nil)
			continue
		}
		oe, err := convert(o.Expr, true)
		if err != nil {
			return nil, err
		}
		cv.order = append(cv.order, oe)
	}

	// 4b. Hoist UDF calls whose inputs come from a single base log into
	// that log's extract as computed SerDe fields, replacing the calls by
	// column references. This normalizes UDF use so that (a) matching
	// views can satisfy UDF-derived expressions as plain data, and (b)
	// everything above the extract is UDF-free and so eligible for DW.
	hoist := func(e expr.Expr) expr.Expr { return hoistUDFs(e, entries, byQual) }
	if cv.where != nil {
		cv.where = hoist(cv.where)
	}
	for i := range cv.ons {
		cv.ons[i] = hoist(cv.ons[i])
	}
	for i := range cv.group {
		cv.group[i] = hoist(cv.group[i])
	}
	if cv.having != nil {
		cv.having = hoist(cv.having)
	}
	for i := range cv.sel {
		if cv.sel[i] != nil {
			cv.sel[i] = hoist(cv.sel[i])
		}
	}
	for i := range cv.order {
		if cv.order[i] != nil {
			cv.order[i] = hoist(cv.order[i])
		}
	}

	// 5. Build leaf plans now that needed columns are known.
	for _, e := range entries {
		if e.isLog {
			leaf, err := buildLogLeaf(e)
			if err != nil {
				return nil, err
			}
			e.leaf = leaf
		} else {
			// Prune the qualifying projection to needed columns.
			leaf, err := pruneColumns(e.subPlan, e, hasStar)
			if err != nil {
				return nil, err
			}
			e.leaf = leaf
		}
	}

	// 6. Partition WHERE into pushable single-table conjuncts and the rest.
	var residualWhere []expr.Expr
	if cv.where != nil {
		for _, c := range expr.Conjuncts(cv.where) {
			e := singleAliasOf(c, byQual)
			if e != nil && !e.rightOfLJ && !expr.UsesUDF(c) {
				f, err := newFilter(e.leaf, c)
				if err != nil {
					return nil, err
				}
				e.leaf = f
			} else if e != nil && !e.rightOfLJ {
				// UDF predicates still push down (they must run in
				// HV anyway and reduce data early).
				f, err := newFilter(e.leaf, c)
				if err != nil {
					return nil, err
				}
				e.leaf = f
			} else {
				residualWhere = append(residualWhere, c)
			}
		}
	}

	// 7. Left-deep join tree in FROM order.
	plan := entries[0].leaf
	joined := map[string]bool{entries[0].qual: true}
	for i, j := range q.Joins {
		right := entries[i+1]
		var leftKeys, rightKeys []string
		var extra []expr.Expr
		for _, c := range expr.Conjuncts(cv.ons[i]) {
			lk, rk, ok := equiKey(c, joined, right.qual)
			if ok {
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
			} else {
				extra = append(extra, c)
			}
		}
		if len(leftKeys) == 0 {
			return nil, fmt.Errorf("logical: join with %q has no equi-join key", right.alias)
		}
		jt := JoinInner
		if j.Type == sqlparser.LeftJoin {
			jt = JoinLeft
		}
		plan, err = newJoin(plan, right.leaf, jt, leftKeys, rightKeys)
		if err != nil {
			return nil, err
		}
		if len(extra) > 0 {
			plan, err = newFilter(plan, expr.AndAll(extra))
			if err != nil {
				return nil, err
			}
		}
		joined[right.qual] = true
	}
	if len(residualWhere) > 0 {
		plan, err = newFilter(plan, expr.AndAll(residualWhere))
		if err != nil {
			return nil, err
		}
	}

	// 8. Aggregation.
	aggCalls := collectAggCalls(q)
	grouped := len(cv.group) > 0 || len(aggCalls) > 0
	aliasByCanon := map[string]string{} // canonical pre-agg expr -> output column
	if grouped {
		var groupProjs []Proj
		for gi, ge := range cv.group {
			name := groupName(ge, gi)
			groupProjs = append(groupProjs, Proj{Expr: ge, Name: name})
			aliasByCanon[ge.Canon()] = name
		}
		var aggSpecs []AggSpec
		seen := map[string]string{}
		for _, call := range aggCalls {
			spec, err := makeAggSpec(call, convert)
			if err != nil {
				return nil, err
			}
			if spec.Arg != nil {
				// Keep the canonical key aligned with the hoisted
				// select/having expressions.
				spec.Arg = hoist(spec.Arg)
			}
			canon := spec.Canon()
			if _, dup := seen[canon]; dup {
				continue
			}
			spec.Name = fmt.Sprintf("agg_%d", len(aggSpecs))
			seen[canon] = spec.Name
			aliasByCanon[canon] = spec.Name
			aggSpecs = append(aggSpecs, spec)
		}
		plan, err = newAggregate(plan, groupProjs, aggSpecs)
		if err != nil {
			return nil, err
		}
		if cv.having != nil {
			h, err := replaceAgg(cv.having, aliasByCanon, plan.Schema())
			if err != nil {
				return nil, fmt.Errorf("logical: HAVING: %w", err)
			}
			plan, err = newFilter(plan, h)
			if err != nil {
				return nil, err
			}
		}
	}

	// 9. Final projection.
	var projs []Proj
	usedNames := map[string]int{}
	uniqueName := func(base string) string {
		if base == "" {
			base = "col"
		}
		n := usedNames[base]
		usedNames[base] = n + 1
		if n == 0 {
			return base
		}
		return fmt.Sprintf("%s_%d", base, n)
	}
	for i, s := range q.Select {
		if s.Star {
			for _, c := range plan.Schema().Columns {
				projs = append(projs, Proj{
					Expr: &expr.ColRef{Name: c.Name},
					Name: uniqueName(baseName(c.Name)),
				})
			}
			continue
		}
		se := cv.sel[i]
		if grouped {
			se, err = replaceAgg(se, aliasByCanon, plan.Schema())
			if err != nil {
				return nil, fmt.Errorf("logical: SELECT item %d: %w", i+1, err)
			}
		}
		name := s.Alias
		if name == "" {
			if id, ok := s.Expr.(*sqlparser.Ident); ok {
				name = id.Name
			} else {
				name = fmt.Sprintf("col_%d", i)
			}
		}
		projs = append(projs, Proj{Expr: se, Name: uniqueName(name)})
	}
	plan, err = newProject(plan, projs)
	if err != nil {
		return nil, err
	}

	if q.Distinct {
		plan = newUnary(KindDistinct, plan, plan.Schema().Clone())
	}

	// 10. ORDER BY over the projected schema.
	if len(q.OrderBy) > 0 {
		var keys []SortKey
		for i, o := range q.OrderBy {
			oe := cv.order[i]
			if oe == nil {
				// Select-alias reference.
				name := o.Expr.(*sqlparser.Ident).Name
				if !plan.Schema().Has(name) {
					return nil, fmt.Errorf("logical: ORDER BY alias %q not in output", name)
				}
				keys = append(keys, SortKey{Expr: &expr.ColRef{Name: name}, Desc: o.Desc})
				continue
			}
			if grouped {
				oe, err = replaceAgg(oe, aliasByCanon, nil)
				if err != nil {
					return nil, fmt.Errorf("logical: ORDER BY: %w", err)
				}
			}
			key, err := resolveOrderKey(oe, o, projs, plan.Schema())
			if err != nil {
				return nil, err
			}
			keys = append(keys, SortKey{Expr: key, Desc: o.Desc})
		}
		sorted := newUnary(KindSort, plan, plan.Schema().Clone())
		sorted.SortKeys = keys
		plan = sorted
	}

	if q.Limit >= 0 {
		lim := newUnary(KindLimit, plan, plan.Schema().Clone())
		lim.LimitN = q.Limit
		plan = lim
	}
	return plan, nil
}

func literalValue(l *sqlparser.Literal) storage.Value {
	switch v := l.Value.(type) {
	case nil:
		return storage.Null
	case int64:
		return storage.IntValue(v)
	case float64:
		return storage.FloatValue(v)
	case string:
		return storage.StringValue(v)
	case bool:
		return storage.BoolValue(v)
	default:
		return storage.Null
	}
}

// buildLogLeaf makes Scan -> Extract for a base log with all of the log's
// fields in sorted order, followed by any hoisted UDF fields. Extraction is
// deliberately wide: the SerDe parses the whole JSON record regardless, so
// extracting every declared field costs little — and it keeps extract
// signatures identical across queries, which is what lets opportunistic
// views from one query version answer the next version's plan even when it
// references fields the earlier query did not.
func buildLogLeaf(e *tableEntry) (*Node, error) {
	fields := make([]string, 0, e.log.FieldTypes.Len())
	for _, c := range e.log.FieldTypes.Columns {
		fields = append(fields, c.Name)
	}
	sort.Strings(fields)
	scan := &Node{Kind: KindScan, LogName: e.log.Name}
	scan.SetSchema(storage.MustSchema(storage.Column{Name: "_raw", Type: storage.KindString}))
	ex := &Node{Kind: KindExtract, Children: []*Node{scan}}
	cols := make([]storage.Column, 0, len(fields)+len(e.udfCols))
	for _, f := range fields {
		i := e.log.FieldTypes.Index(f)
		if i < 0 {
			return nil, fmt.Errorf("logical: log %q has no field %q", e.log.Name, f)
		}
		out := e.qualified(f)
		ex.Fields = append(ex.Fields, ExtractField{
			LogField: f, OutName: out, Type: e.log.FieldTypes.Columns[i].Type,
		})
		cols = append(cols, storage.Column{Name: out, Type: e.log.FieldTypes.Columns[i].Type})
	}
	plainSchema, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	udfNames := make([]string, 0, len(e.udfCols))
	for n := range e.udfCols {
		udfNames = append(udfNames, n)
	}
	sort.Strings(udfNames)
	for _, name := range udfNames {
		f := e.udfCols[name]
		t, err := expr.TypeOf(f, plainSchema)
		if err != nil {
			return nil, fmt.Errorf("logical: UDF column %q: %w", name, err)
		}
		ex.Fields = append(ex.Fields, ExtractField{OutName: name, Type: t, UDF: f})
		cols = append(cols, storage.Column{Name: name, Type: t})
	}
	sch, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	ex.SetSchema(sch)
	return ex, nil
}

// hoistUDFs rewrites UDF calls whose column inputs all come from one base
// log into column references over that log's extract, registering the
// computed field on the entry. Calls that span tables, reference derived
// tables, or reference no columns are left in place (they stay pinned to
// HV).
func hoistUDFs(e expr.Expr, entries []*tableEntry, byQual map[string]*tableEntry) expr.Expr {
	switch v := e.(type) {
	case *expr.ColRef, *expr.Const:
		return e
	case *expr.BinOp:
		return &expr.BinOp{Op: v.Op,
			L: hoistUDFs(v.L, entries, byQual), R: hoistUDFs(v.R, entries, byQual)}
	case *expr.Not:
		return &expr.Not{E: hoistUDFs(v.E, entries, byQual)}
	case *expr.Neg:
		return &expr.Neg{E: hoistUDFs(v.E, entries, byQual)}
	case *expr.IsNull:
		return &expr.IsNull{E: hoistUDFs(v.E, entries, byQual), Neg: v.Neg}
	case *expr.In:
		items := make([]expr.Expr, len(v.Items))
		for i, it := range v.Items {
			items[i] = hoistUDFs(it, entries, byQual)
		}
		return &expr.In{E: hoistUDFs(v.E, entries, byQual), Items: items, Neg: v.Neg}
	case *expr.Func:
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = hoistUDFs(a, entries, byQual)
		}
		f := &expr.Func{Name: v.Name, Args: args}
		if !f.IsUDF() {
			return f
		}
		ent := singleLogEntryOf(f, byQual)
		if ent == nil {
			return f
		}
		name := ent.qual + ".__" + strings.ToLower(f.Name) + "_" + shortHash(f.Canon())
		ent.udfCols[name] = f
		return &expr.ColRef{Name: name}
	default:
		return e
	}
}

// singleLogEntryOf returns the base-log entry owning every column the
// expression references, or nil.
func singleLogEntryOf(e expr.Expr, byQual map[string]*tableEntry) *tableEntry {
	cols := expr.Columns(e)
	if len(cols) == 0 {
		return nil
	}
	var ent *tableEntry
	for _, col := range cols {
		qual, _, ok := strings.Cut(col, ".")
		if !ok {
			return nil
		}
		q, found := byQual[qual]
		if !found || !q.isLog {
			return nil
		}
		if ent == nil {
			ent = q
		} else if ent != q {
			return nil
		}
	}
	return ent
}

func shortHash(s string) string {
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%08x", h.Sum32())
}

// pruneColumns narrows a derived table's qualifying projection to the
// columns the outer query needs.
func pruneColumns(plan *Node, e *tableEntry, keepAll bool) (*Node, error) {
	if keepAll || plan.Kind != KindProject {
		return plan, nil
	}
	var kept []Proj
	for _, p := range plan.Projs {
		if e.needed[strings.TrimPrefix(p.Name, e.alias+".")] {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 || len(kept) == len(plan.Projs) {
		return plan, nil
	}
	return newProject(plan.Children[0], kept)
}

// singleAliasOf returns the entry if every column in c belongs to exactly
// one alias, else nil.
func singleAliasOf(c expr.Expr, byAlias map[string]*tableEntry) *tableEntry {
	cols := expr.Columns(c)
	if len(cols) == 0 {
		return nil
	}
	var e *tableEntry
	for _, col := range cols {
		alias, _, ok := strings.Cut(col, ".")
		if !ok {
			return nil
		}
		ent, found := byAlias[alias]
		if !found {
			return nil
		}
		if e == nil {
			e = ent
		} else if e != ent {
			return nil
		}
	}
	return e
}

// equiKey matches "leftCol = rightCol" conjuncts for the join of the
// accumulated left side against rightAlias.
func equiKey(c expr.Expr, joined map[string]bool, rightAlias string) (string, string, bool) {
	b, ok := c.(*expr.BinOp)
	if !ok || b.Op != "=" {
		return "", "", false
	}
	lc, lok := b.L.(*expr.ColRef)
	rc, rok := b.R.(*expr.ColRef)
	if !lok || !rok {
		return "", "", false
	}
	side := func(name string) (string, bool) {
		alias, _, ok := strings.Cut(name, ".")
		if !ok {
			return "", false
		}
		return alias, true
	}
	la, ok1 := side(lc.Name)
	ra, ok2 := side(rc.Name)
	if !ok1 || !ok2 {
		return "", "", false
	}
	switch {
	case joined[la] && ra == rightAlias:
		return lc.Name, rc.Name, true
	case joined[ra] && la == rightAlias:
		return rc.Name, lc.Name, true
	default:
		return "", "", false
	}
}

// collectAggCalls gathers aggregate calls from SELECT, HAVING and ORDER BY.
func collectAggCalls(q *sqlparser.Query) []*sqlparser.Call {
	var out []*sqlparser.Call
	grab := func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		var walk func(sqlparser.Expr)
		walk = func(x sqlparser.Expr) {
			switch v := x.(type) {
			case *sqlparser.Call:
				if expr.IsAggregateName(v.Name) {
					out = append(out, v)
					return // no nested aggregates
				}
				for _, a := range v.Args {
					walk(a)
				}
			case *sqlparser.Binary:
				walk(v.Left)
				walk(v.Right)
			case *sqlparser.Unary:
				walk(v.Expr)
			case *sqlparser.IsNull:
				walk(v.Expr)
			case *sqlparser.InList:
				walk(v.Expr)
				for _, it := range v.Items {
					walk(it)
				}
			}
		}
		walk(e)
	}
	for _, s := range q.Select {
		grab(s.Expr)
	}
	grab(q.Having)
	for _, o := range q.OrderBy {
		grab(o.Expr)
	}
	return out
}

func makeAggSpec(call *sqlparser.Call, convert func(sqlparser.Expr, bool) (expr.Expr, error)) (AggSpec, error) {
	spec := AggSpec{Func: call.Name, Star: call.Star, Distinct: call.Distinct}
	if call.Star {
		return spec, nil
	}
	if len(call.Args) != 1 {
		return AggSpec{}, fmt.Errorf("logical: %s takes one argument", call.Name)
	}
	arg, err := convert(call.Args[0], false)
	if err != nil {
		return AggSpec{}, err
	}
	spec.Arg = arg
	return spec, nil
}

func groupName(ge expr.Expr, idx int) string {
	if c, ok := ge.(*expr.ColRef); ok {
		return c.Name
	}
	return fmt.Sprintf("grp_%d", idx)
}

func baseName(qualified string) string {
	if _, b, ok := strings.Cut(qualified, "."); ok {
		return b
	}
	return qualified
}

// replaceAgg rewrites a pre-aggregation expression into one over the
// aggregate's output schema, substituting aggregate calls and grouping
// expressions by their output columns. aliasByCanon maps canonical pre-agg
// expressions to output column names. If sch is non-nil, any leftover
// column reference must exist in it.
func replaceAgg(e expr.Expr, aliasByCanon map[string]string, sch *storage.Schema) (expr.Expr, error) {
	if name, ok := aliasByCanon[e.Canon()]; ok {
		return &expr.ColRef{Name: name}, nil
	}
	switch v := e.(type) {
	case *expr.ColRef:
		if sch != nil && !sch.Has(v.Name) {
			return nil, fmt.Errorf("column %q is neither grouped nor aggregated", v.Name)
		}
		return v, nil
	case *expr.Const:
		return v, nil
	case *expr.BinOp:
		l, err := replaceAgg(v.L, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		r, err := replaceAgg(v.R, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		return &expr.BinOp{Op: v.Op, L: l, R: r}, nil
	case *expr.Not:
		in, err := replaceAgg(v.E, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: in}, nil
	case *expr.Neg:
		in, err := replaceAgg(v.E, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		return &expr.Neg{E: in}, nil
	case *expr.IsNull:
		in, err := replaceAgg(v.E, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: in, Neg: v.Neg}, nil
	case *expr.In:
		in, err := replaceAgg(v.E, aliasByCanon, sch)
		if err != nil {
			return nil, err
		}
		items := make([]expr.Expr, len(v.Items))
		for i, it := range v.Items {
			items[i], err = replaceAgg(it, aliasByCanon, sch)
			if err != nil {
				return nil, err
			}
		}
		return &expr.In{E: in, Items: items, Neg: v.Neg}, nil
	case *expr.Func:
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			na, err := replaceAgg(a, aliasByCanon, sch)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &expr.Func{Name: v.Name, Args: args}, nil
	default:
		return e, nil
	}
}

// resolveOrderKey maps an ORDER BY expression onto the projected output
// schema: by alias, by projected expression identity, or directly if its
// columns already exist in the output.
func resolveOrderKey(oe expr.Expr, o sqlparser.OrderItem, projs []Proj, sch *storage.Schema) (expr.Expr, error) {
	// Direct alias reference?
	if id, ok := o.Expr.(*sqlparser.Ident); ok && id.Qualifier == "" && sch.Has(id.Name) {
		return &expr.ColRef{Name: id.Name}, nil
	}
	// Matches a projected expression?
	canon := oe.Canon()
	for _, p := range projs {
		if p.Expr.Canon() == canon {
			return &expr.ColRef{Name: p.Name}, nil
		}
	}
	// Usable as-is over the output schema?
	ok := true
	for _, c := range expr.Columns(oe) {
		if !sch.Has(c) {
			ok = false
			break
		}
	}
	if ok {
		return oe, nil
	}
	return nil, fmt.Errorf("logical: ORDER BY expression %s not derivable from the select list", o.Expr.SQL())
}

// --- Node constructors with schema computation ---

func newUnary(k Kind, child *Node, sch *storage.Schema) *Node {
	n := &Node{Kind: k, Children: []*Node{child}}
	n.SetSchema(sch)
	return n
}

func newFilter(child *Node, pred expr.Expr) (*Node, error) {
	if _, err := expr.TypeOf(pred, child.Schema()); err != nil {
		return nil, err
	}
	n := &Node{Kind: KindFilter, Children: []*Node{child}, Pred: pred}
	n.SetSchema(child.Schema().Clone())
	return n, nil
}

func newProject(child *Node, projs []Proj) (*Node, error) {
	cols := make([]storage.Column, len(projs))
	for i, p := range projs {
		t, err := expr.TypeOf(p.Expr, child.Schema())
		if err != nil {
			return nil, err
		}
		cols[i] = storage.Column{Name: p.Name, Type: t}
	}
	sch, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	n := &Node{Kind: KindProject, Children: []*Node{child}, Projs: projs}
	n.SetSchema(sch)
	return n, nil
}

func newJoin(l, r *Node, jt JoinType, leftKeys, rightKeys []string) (*Node, error) {
	for _, k := range leftKeys {
		if !l.Schema().Has(k) {
			return nil, fmt.Errorf("logical: join key %q not in left schema %s", k, l.Schema())
		}
	}
	for _, k := range rightKeys {
		if !r.Schema().Has(k) {
			return nil, fmt.Errorf("logical: join key %q not in right schema %s", k, r.Schema())
		}
	}
	sch, err := l.Schema().Concat(r.Schema(), "r_")
	if err != nil {
		return nil, err
	}
	n := &Node{
		Kind: KindJoin, Children: []*Node{l, r},
		JoinType: jt, LeftKeys: leftKeys, RightKeys: rightKeys,
	}
	n.SetSchema(sch)
	return n, nil
}

func newAggregate(child *Node, groups []Proj, aggs []AggSpec) (*Node, error) {
	cols := make([]storage.Column, 0, len(groups)+len(aggs))
	for _, g := range groups {
		t, err := expr.TypeOf(g.Expr, child.Schema())
		if err != nil {
			return nil, err
		}
		cols = append(cols, storage.Column{Name: g.Name, Type: t})
	}
	for _, a := range aggs {
		var t storage.Kind
		switch a.Func {
		case "COUNT":
			t = storage.KindInt
		case "AVG":
			t = storage.KindFloat
		case "SUM", "MIN", "MAX":
			var err error
			if a.Star {
				return nil, fmt.Errorf("logical: %s(*) is not valid", a.Func)
			}
			t, err = expr.TypeOf(a.Arg, child.Schema())
			if err != nil {
				return nil, err
			}
			if a.Func == "SUM" && t == storage.KindBool {
				t = storage.KindInt
			}
		default:
			return nil, fmt.Errorf("logical: unknown aggregate %q", a.Func)
		}
		if !a.Star {
			if _, err := expr.TypeOf(a.Arg, child.Schema()); err != nil {
				return nil, err
			}
		}
		cols = append(cols, storage.Column{Name: a.Name, Type: t})
	}
	sch, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	n := &Node{Kind: KindAggregate, Children: []*Node{child}, GroupBy: groups, Aggs: aggs}
	n.SetSchema(sch)
	return n, nil
}

// NewViewScan builds a leaf that reads a materialized view.
func NewViewScan(name string, sch *storage.Schema) *Node {
	n := &Node{Kind: KindViewScan, ViewName: name, ViewSchema: sch}
	n.SetSchema(sch.Clone())
	return n
}

// NewFilterNode exposes filter construction for plan rewrites.
func NewFilterNode(child *Node, pred expr.Expr) (*Node, error) { return newFilter(child, pred) }

// NewProjectNode exposes projection construction for plan rewrites.
func NewProjectNode(child *Node, projs []Proj) (*Node, error) { return newProject(child, projs) }

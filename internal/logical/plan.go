// Package logical defines the logical query plan: a DAG of relational
// operators built from the parsed HiveQL AST. Plans carry canonical
// signatures used to identify opportunistic materialized views, and
// descriptors that support subsumption-based view matching. The package is
// store-agnostic; the hv and dw engines execute (sub)plans, and the
// multistore optimizer chooses where each part runs.
package logical

import (
	"fmt"
	"sort"
	"strings"

	"miso/internal/expr"
	"miso/internal/storage"
)

// Kind enumerates logical operator kinds.
type Kind int

// Operator kinds.
const (
	KindScan Kind = iota
	KindExtract
	KindFilter
	KindProject
	KindJoin
	KindAggregate
	KindDistinct
	KindSort
	KindLimit
	KindViewScan
)

// String returns the lower-case operator name.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindExtract:
		return "extract"
	case KindFilter:
		return "filter"
	case KindProject:
		return "project"
	case KindJoin:
		return "join"
	case KindAggregate:
		return "aggregate"
	case KindDistinct:
		return "distinct"
	case KindSort:
		return "sort"
	case KindLimit:
		return "limit"
	case KindViewScan:
		return "viewscan"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// JoinType distinguishes inner from left outer joins.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
)

func (t JoinType) String() string {
	if t == JoinLeft {
		return "left"
	}
	return "inner"
}

// ExtractField maps one raw log field — or a UDF computed over this log's
// fields — to an output column. UDF fields model Hive's map-phase UDF
// application: the SerDe extracts the raw fields and the user code runs in
// the same pass. A view materialized from such an extract carries the UDF
// results as plain data, which is how DW can answer UDF-derived predicates
// without ever executing user code.
type ExtractField struct {
	LogField string
	OutName  string
	Type     storage.Kind
	// UDF, when non-nil, is the computed expression (over this extract's
	// plain fields) instead of a raw log field.
	UDF expr.Expr
}

// Proj is one computed output column.
type Proj struct {
	Expr expr.Expr
	Name string
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     string // COUNT, SUM, AVG, MIN, MAX
	Arg      expr.Expr
	Star     bool
	Distinct bool
	Name     string
}

// Canon returns the canonical form of the aggregate. The encoding matches
// what the builder produces for aggregate calls in scalar position
// (FUNC[_STAR][_DISTINCT](args)) so substitution by canonical identity works.
func (a AggSpec) Canon() string {
	name := a.Func
	if a.Star {
		name += "_STAR"
	}
	if a.Distinct {
		name += "_DISTINCT"
	}
	if a.Star {
		return name + "()"
	}
	return name + "(" + a.Arg.Canon() + ")"
}

// SortKey is one ORDER BY key over the child's output columns.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Node is one logical operator. Exactly the fields for its Kind are set.
type Node struct {
	Kind     Kind
	Children []*Node

	LogName string         // Scan
	Fields  []ExtractField // Extract

	Pred expr.Expr // Filter

	Projs []Proj // Project

	JoinType  JoinType // Join
	LeftKeys  []string
	RightKeys []string

	GroupBy []Proj    // Aggregate: grouping expressions with output names
	Aggs    []AggSpec // Aggregate: aggregate outputs

	SortKeys []SortKey // Sort
	LimitN   int       // Limit

	ViewName   string // ViewScan: name of the materialized view
	ViewSchema *storage.Schema

	schema *storage.Schema // computed output schema
	sig    string          // memoized signature
}

// Child returns the i-th child.
func (n *Node) Child(i int) *Node { return n.Children[i] }

// Schema returns the node's output schema (computed by the builder).
func (n *Node) Schema() *storage.Schema { return n.schema }

// SetSchema installs the output schema; used by the builder and by rewrites.
func (n *Node) SetSchema(s *storage.Schema) { n.schema = s }

// Walk visits the node and all descendants pre-order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Nodes returns all nodes in the subtree, pre-order.
func (n *Node) Nodes() []*Node {
	var out []*Node
	n.Walk(func(m *Node) { out = append(out, m) })
	return out
}

// PrewarmSignatures computes and memoizes the signature of every node in
// the subtree. Signature caches lazily into the node on first call, which
// is a benign write on a single goroutine but a data race when multiple
// goroutines first touch a shared plan concurrently — the tuner prewarms
// its window's plans serially before fanning what-if probes out to a
// worker pool.
func (n *Node) PrewarmSignatures() {
	n.Walk(func(m *Node) { m.Signature() })
}

// UsesUDFHere reports whether this node's own expressions call a UDF.
func (n *Node) UsesUDFHere() bool {
	check := func(e expr.Expr) bool { return e != nil && expr.UsesUDF(e) }
	switch n.Kind {
	case KindExtract:
		for _, f := range n.Fields {
			if f.UDF != nil {
				return true
			}
		}
	case KindFilter:
		return check(n.Pred)
	case KindProject:
		for _, p := range n.Projs {
			if check(p.Expr) {
				return true
			}
		}
	case KindAggregate:
		for _, g := range n.GroupBy {
			if check(g.Expr) {
				return true
			}
		}
		for _, a := range n.Aggs {
			if !a.Star && check(a.Arg) {
				return true
			}
		}
	case KindSort:
		for _, k := range n.SortKeys {
			if check(k.Expr) {
				return true
			}
		}
	}
	return false
}

// UsesUDF reports whether any node in the subtree calls a UDF. Such
// subtrees are pinned to HV by the multistore optimizer.
func (n *Node) UsesUDF() bool {
	found := false
	n.Walk(func(m *Node) {
		if m.UsesUDFHere() {
			found = true
		}
	})
	return found
}

// Signature returns the canonical structural signature of the subtree.
// Conjuncts of filters are sorted so AND order does not matter; extract
// fields are sorted by the builder. Two subtrees with equal signatures
// compute the same relation with the same column set.
func (n *Node) Signature() string {
	if n.sig != "" {
		return n.sig
	}
	var b strings.Builder
	switch n.Kind {
	case KindScan:
		fmt.Fprintf(&b, "scan(%s)", n.LogName)
	case KindExtract:
		fields := make([]string, len(n.Fields))
		for i, f := range n.Fields {
			if f.UDF != nil {
				fields[i] = "udf:" + f.UDF.Canon() + ">" + f.OutName
			} else {
				fields[i] = f.LogField + ">" + f.OutName
			}
		}
		fmt.Fprintf(&b, "extract(%s,[%s])", n.Children[0].Signature(), strings.Join(fields, ","))
	case KindFilter:
		cs := expr.Conjuncts(n.Pred)
		canon := make([]string, len(cs))
		for i, c := range cs {
			canon[i] = c.Canon()
		}
		sort.Strings(canon)
		fmt.Fprintf(&b, "filter(%s,[%s])", n.Children[0].Signature(), strings.Join(canon, "&"))
	case KindProject:
		ps := make([]string, len(n.Projs))
		for i, p := range n.Projs {
			ps[i] = p.Expr.Canon() + ">" + p.Name
		}
		fmt.Fprintf(&b, "project(%s,[%s])", n.Children[0].Signature(), strings.Join(ps, ","))
	case KindJoin:
		keys := make([]string, len(n.LeftKeys))
		for i := range n.LeftKeys {
			keys[i] = n.LeftKeys[i] + "=" + n.RightKeys[i]
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "join(%s,%s,%s,[%s])", n.JoinType,
			n.Children[0].Signature(), n.Children[1].Signature(), strings.Join(keys, ","))
	case KindAggregate:
		gs := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			gs[i] = g.Expr.Canon() + ">" + g.Name
		}
		as := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			as[i] = a.Canon() + ">" + a.Name
		}
		fmt.Fprintf(&b, "agg(%s,gb=[%s],aggs=[%s])", n.Children[0].Signature(),
			strings.Join(gs, ","), strings.Join(as, ","))
	case KindDistinct:
		fmt.Fprintf(&b, "distinct(%s)", n.Children[0].Signature())
	case KindSort:
		ks := make([]string, len(n.SortKeys))
		for i, k := range n.SortKeys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			ks[i] = k.Expr.Canon() + ":" + dir
		}
		fmt.Fprintf(&b, "sort(%s,[%s])", n.Children[0].Signature(), strings.Join(ks, ","))
	case KindLimit:
		fmt.Fprintf(&b, "limit(%s,%d)", n.Children[0].Signature(), n.LimitN)
	case KindViewScan:
		fmt.Fprintf(&b, "viewscan(%s)", n.ViewName)
	}
	n.sig = b.String()
	return n.sig
}

// String renders an indented operator tree for debugging.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch n.Kind {
	case KindScan:
		fmt.Fprintf(b, "Scan %s", n.LogName)
	case KindExtract:
		names := make([]string, len(n.Fields))
		for i, f := range n.Fields {
			names[i] = f.OutName
		}
		fmt.Fprintf(b, "Extract [%s]", strings.Join(names, ", "))
	case KindFilter:
		fmt.Fprintf(b, "Filter %s", n.Pred.Canon())
	case KindProject:
		names := make([]string, len(n.Projs))
		for i, p := range n.Projs {
			names[i] = p.Name
		}
		fmt.Fprintf(b, "Project [%s]", strings.Join(names, ", "))
	case KindJoin:
		keys := make([]string, len(n.LeftKeys))
		for i := range n.LeftKeys {
			keys[i] = n.LeftKeys[i] + "=" + n.RightKeys[i]
		}
		fmt.Fprintf(b, "Join(%s) on %s", n.JoinType, strings.Join(keys, " AND "))
	case KindAggregate:
		fmt.Fprintf(b, "Aggregate groups=%d aggs=%d", len(n.GroupBy), len(n.Aggs))
	case KindDistinct:
		b.WriteString("Distinct")
	case KindSort:
		fmt.Fprintf(b, "Sort keys=%d", len(n.SortKeys))
	case KindLimit:
		fmt.Fprintf(b, "Limit %d", n.LimitN)
	case KindViewScan:
		fmt.Fprintf(b, "ViewScan %s", n.ViewName)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Clone deep-copies the plan tree. Expressions and schemas are shared
// (both are immutable once built).
func (n *Node) Clone() *Node {
	c := *n
	c.sig = ""
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	// The schema pointer is shared: schemas are immutable once built —
	// every rewrite installs a freshly constructed schema via SetSchema —
	// so the deep copy was pure overhead on the optimizer's clone-heavy
	// plan enumeration path.
	return &c
}

// CloneShallow copies only the node itself: the schema pointer is shared
// (as in Clone) and Children is a fresh slice still holding the original
// child pointers. Rewrites that overwrite every child slot use it to
// avoid cloning subtrees that are about to be replaced; unchanged
// subtrees are then shared between the original and rewritten plans,
// which is safe because plan nodes are never mutated after construction.
func (n *Node) CloneShallow() *Node {
	c := *n
	c.sig = ""
	c.Children = append([]*Node(nil), n.Children...)
	return &c
}

// CloneDeep clones like Clone but deep-copies each node's schema, as
// Clone originally did. The optimizer's baseline costing path uses it so
// the benchmark pipeline can record the speedup baseline in-repo.
func (n *Node) CloneDeep() *Node {
	c := *n
	c.sig = ""
	if n.schema != nil {
		c.schema = n.schema.Clone()
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.CloneDeep()
	}
	return &c
}

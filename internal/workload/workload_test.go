package workload

import (
	"strings"
	"testing"

	"miso/internal/data"
	"miso/internal/logical"
)

func TestThirtyTwoQueries(t *testing.T) {
	qs := Evolving()
	if len(qs) != 32 {
		t.Fatalf("queries = %d, want 32", len(qs))
	}
	seen := map[string]bool{}
	for i, q := range qs {
		if q.Analyst != i/4+1 || q.Version != i%4+1 {
			t.Errorf("query %d mislabeled: %s", i, q.Name)
		}
		if seen[q.Name] {
			t.Errorf("duplicate name %s", q.Name)
		}
		seen[q.Name] = true
		if strings.Contains(q.SQL, "$TS") {
			t.Errorf("%s: unexpanded window placeholder", q.Name)
		}
	}
}

func TestAllQueriesBuild(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(cat)
	for _, q := range Evolving() {
		if _, err := b.BuildSQL(q.SQL); err != nil {
			t.Errorf("%s does not plan: %v", q.Name, err)
		}
	}
}

func TestWindowsStableWithinAnalyst(t *testing.T) {
	for a := 1; a <= 8; a++ {
		s, e := windowStart(a), windowEnd(a)
		if e <= s {
			t.Errorf("analyst %d: empty window", a)
		}
		if e-s != 3*day {
			t.Errorf("analyst %d: window length %d days", a, (e-s)/day)
		}
		if e > logStart+90*day {
			t.Errorf("analyst %d: window beyond the generated 90-day range", a)
		}
	}
}

func TestWindowSharingStructure(t *testing.T) {
	// A1, A2 and A7 investigate the same period (cross-analyst reuse);
	// A3 and A4 share another.
	if windowStart(1) != windowStart(2) || windowStart(1) != windowStart(7) {
		t.Error("A1/A2/A7 windows diverged")
	}
	if windowStart(3) != windowStart(4) {
		t.Error("A3/A4 windows diverged")
	}
	if windowStart(1) == windowStart(3) || windowStart(5) == windowStart(6) {
		t.Error("independent analysts should use different windows")
	}
}

func TestConsecutiveVersionsOverlap(t *testing.T) {
	// Each version shares its FROM clause (modulo whitespace) with the
	// previous one for at least one log — the evolutionary property the
	// tuner exploits. A cheap proxy: consecutive versions always
	// reference at least one common log name.
	logs := []string{"tweets", "checkins", "landmarks"}
	qs := Evolving()
	for i := 1; i < len(qs); i++ {
		if qs[i].Analyst != qs[i-1].Analyst {
			continue
		}
		common := false
		for _, l := range logs {
			if strings.Contains(qs[i].SQL, l) && strings.Contains(qs[i-1].SQL, l) {
				common = true
			}
		}
		if !common {
			t.Errorf("%s and %s share no log", qs[i-1].Name, qs[i].Name)
		}
	}
}

func TestByName(t *testing.T) {
	q, ok := ByName("A3v2")
	if !ok || q.Analyst != 3 || q.Version != 2 {
		t.Errorf("ByName(A3v2) = %+v, %v", q, ok)
	}
	if _, ok := ByName("A9v1"); ok {
		t.Error("nonexistent query found")
	}
}

func TestSQLsOrder(t *testing.T) {
	sqls := SQLs()
	qs := Evolving()
	if len(sqls) != len(qs) {
		t.Fatal("length mismatch")
	}
	for i := range sqls {
		if sqls[i] != qs[i].SQL {
			t.Fatalf("SQLs()[%d] out of order", i)
		}
	}
}

func TestUDFCoverage(t *testing.T) {
	// The workload must exercise every registered UDF (the paper's
	// queries mix relational operators and arbitrary user code).
	all := strings.Join(SQLs(), " ")
	for _, u := range []string{"SENTIMENT", "TOPIC", "INFLUENCE", "GEO_CELL", "IS_WEEKEND"} {
		if !strings.Contains(all, u) {
			t.Errorf("UDF %s unused by the workload", u)
		}
	}
}

// Package workload defines the evaluation workload: 32 complex analytical
// queries over the social-media logs, modeling eight analysts (A1..A8) who
// each pose a query and iteratively refine it through four versions
// (Aiv1..Aiv4), after the evolutionary-analytics workload of LeFevre et al.
// (DanaC 2013) used by the paper. Version mutations follow that workload's
// classes — predicate drift, added joins, added/changed aggregation — so
// consecutive versions overlap and opportunistic views pay off. Queries mix
// relational operators with UDFs (sentiment, topic, influence, geo cells,
// weekend detection), which only HV can execute.
package workload

import (
	"fmt"
	"strings"
)

// Each analyst explores a bounded time window of the 90-day log range —
// exploratory analysis drills into a period of interest — which keeps each
// session's working sets a small slice of the base data, as in the paper's
// workload. Windows are stable across an analyst's query versions so that
// opportunistic views keep matching as the query evolves.
const (
	logStart = 1356998400 // 2013-01-01T00:00:00Z
	day      = 86400
)

// analystWindow maps each analyst to a 3-day window. Several analysts
// investigate the same period — the paper's analysts all explore the same
// marketing scenarios, so their relevant data slices overlap, and that
// overlap is what makes views created for one analyst useful to another:
// A1, A2 and A7 share one window; A3 and A4 another; A5, A6 and A8 work
// alone.
// Window offsets are chosen so every window that weekend-sensitive queries
// use actually contains weekend days (the logs start on Tuesday,
// 2013-01-01): day 3 is Fri-Sun, day 39 is Sat-Mon.
var analystWindow = map[int]int64{
	1: 3, 2: 3, 7: 3,
	3: 20, 4: 20,
	5: 39,
	6: 60,
	8: 75,
}

func windowStart(analyst int) int64 { return logStart + analystWindow[analyst]*day }
func windowEnd(analyst int) int64   { return windowStart(analyst) + 3*day }

// tsPred renders the analyst's window predicate for column col.
func tsPred(analyst int, col string) string {
	return fmt.Sprintf("%s >= %d AND %s < %d", col, windowStart(analyst), col, windowEnd(analyst))
}

// Query is one workload entry.
type Query struct {
	// Analyst is 1..8; Version is 1..4.
	Analyst int
	Version int
	// Name is the paper-style id, e.g. "A1v2".
	Name string
	SQL  string
}

// q builds a workload entry, expanding the window placeholders $TSt / $TSc
// / $TS into the analyst's time predicate on t.ts, c.ts, or a bare ts.
func q(analyst, version int, sql string) Query {
	sql = strings.ReplaceAll(sql, "$TSt", tsPred(analyst, "t.ts"))
	sql = strings.ReplaceAll(sql, "$TSc", tsPred(analyst, "c.ts"))
	sql = strings.ReplaceAll(sql, "$TS", tsPred(analyst, "ts"))
	return Query{
		Analyst: analyst,
		Version: version,
		Name:    fmt.Sprintf("A%dv%d", analyst, version),
		SQL:     sql,
	}
}

// Evolving returns the 32 queries in submission order: each analyst's four
// versions are consecutive (an analyst iterates on their query before
// moving on), matching the locality the sliding tuning window exploits.
func Evolving() []Query {
	return []Query{
		// A1: restaurant marketing — sentiment of diners' tweets by city.
		q(1, 1, `
			SELECT l.city, COUNT(*) AS n, AVG(SENTIMENT(t.text)) AS sentiment
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND l.category = 'restaurant' AND $TSt AND $TSc
			GROUP BY l.city ORDER BY sentiment DESC`),
		q(1, 2, `
			SELECT l.city, COUNT(*) AS n, AVG(SENTIMENT(t.text)) AS sentiment
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND l.category = 'restaurant' AND t.retweets > 50 AND $TSt AND $TSc
			GROUP BY l.city ORDER BY sentiment DESC`),
		q(1, 3, `
			SELECT l.city, l.category, COUNT(*) AS n, AVG(SENTIMENT(t.text)) AS sentiment
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND l.category = 'restaurant' AND t.retweets > 50 AND $TSt AND $TSc
			GROUP BY l.city, l.category
			HAVING COUNT(*) > 5 ORDER BY sentiment DESC`),
		q(1, 4, `
			SELECT l.city, COUNT(*) AS n, AVG(SENTIMENT(t.text)) AS sentiment,
			       MAX(t.retweets) AS peak
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND l.category = 'restaurant' AND t.retweets > 50 AND $TSt AND $TSc
			      AND l.rating >= 3.0
			GROUP BY l.city ORDER BY sentiment DESC LIMIT 20`),

		// A2: venue traffic by category and rating.
		q(2, 1, `
			SELECT l.category, COUNT(*) AS visits
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE $TSc
			GROUP BY l.category ORDER BY visits DESC`),
		q(2, 2, `
			SELECT l.category, COUNT(*) AS visits, AVG(l.rating) AS rating
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE l.rating >= 3.5 AND $TSc
			GROUP BY l.category ORDER BY visits DESC`),
		q(2, 3, `
			SELECT l.category, l.city, COUNT(*) AS visits, AVG(l.rating) AS rating
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE l.rating >= 3.5 AND IS_WEEKEND(c.ts) AND $TSc
			GROUP BY l.category, l.city ORDER BY visits DESC`),
		q(2, 4, `
			SELECT l.city, COUNT(*) AS visits, COUNT(DISTINCT c.user_id) AS uniques
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE l.rating >= 3.5 AND IS_WEEKEND(c.ts) AND l.category = 'restaurant' AND $TSc
			GROUP BY l.city ORDER BY uniques DESC LIMIT 10`),

		// A3: hashtag/topic trends in the tweet stream.
		q(3, 1, `
			SELECT TOPIC(t.text) AS topic, COUNT(*) AS n
			FROM tweets t
			WHERE $TSt
			GROUP BY TOPIC(t.text) ORDER BY n DESC`),
		q(3, 2, `
			SELECT TOPIC(t.text) AS topic, COUNT(*) AS n, AVG(t.retweets) AS reach
			FROM tweets t
			WHERE t.lang = 'en' AND t.retweets > 100 AND $TSt
			GROUP BY TOPIC(t.text) ORDER BY reach DESC`),
		q(3, 3, `
			SELECT t.hashtag, TOPIC(t.text) AS topic, COUNT(*) AS n
			FROM tweets t
			WHERE t.lang = 'en' AND t.retweets > 100 AND $TSt
			GROUP BY t.hashtag, TOPIC(t.text)
			HAVING COUNT(*) > 10 ORDER BY n DESC`),
		q(3, 4, `
			SELECT TOPIC(t.text) AS topic, l.city, COUNT(*) AS n
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND t.retweets > 100 AND $TSt AND $TSc
			GROUP BY TOPIC(t.text), l.city ORDER BY n DESC LIMIT 25`),

		// A4: influencer scoring.
		q(4, 1, `
			SELECT t.user_id, AVG(INFLUENCE(t.retweets, t.followers)) AS score
			FROM tweets t
			WHERE $TSt
			GROUP BY t.user_id ORDER BY score DESC LIMIT 50`),
		q(4, 2, `
			SELECT t.user_id, AVG(INFLUENCE(t.retweets, t.followers)) AS score,
			       COUNT(*) AS tweets
			FROM tweets t
			WHERE t.lang = 'en' AND $TSt
			GROUP BY t.user_id
			HAVING COUNT(*) > 3 ORDER BY score DESC LIMIT 50`),
		q(4, 3, `
			SELECT t.user_id, AVG(INFLUENCE(t.retweets, t.followers)) AS score,
			       COUNT(DISTINCT c.venue_id) AS places
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			WHERE t.lang = 'en' AND $TSt AND $TSc
			GROUP BY t.user_id
			HAVING COUNT(*) > 3 ORDER BY score DESC LIMIT 50`),
		q(4, 4, `
			SELECT l.city, AVG(INFLUENCE(t.retweets, t.followers)) AS score, COUNT(*) AS n
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND $TSt AND $TSc
			GROUP BY l.city ORDER BY score DESC`),

		// A5: geographic hotspots of check-in activity.
		q(5, 1, `
			SELECT GEO_CELL(c.lat, c.lon) AS cell, COUNT(*) AS n
			FROM checkins c
			WHERE $TSc
			GROUP BY GEO_CELL(c.lat, c.lon) ORDER BY n DESC LIMIT 40`),
		q(5, 2, `
			SELECT GEO_CELL(c.lat, c.lon) AS cell, COUNT(*) AS n,
			       COUNT(DISTINCT c.user_id) AS uniques
			FROM checkins c
			WHERE c.category = 'restaurant' AND $TSc
			GROUP BY GEO_CELL(c.lat, c.lon) ORDER BY n DESC LIMIT 40`),
		q(5, 3, `
			SELECT GEO_CELL(c.lat, c.lon) AS cell, l.city, COUNT(*) AS n
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE c.category = 'restaurant' AND l.rating >= 4.0 AND $TSc
			GROUP BY GEO_CELL(c.lat, c.lon), l.city ORDER BY n DESC LIMIT 40`),
		q(5, 4, `
			SELECT l.city, COUNT(*) AS n, AVG(l.rating) AS rating
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE c.category = 'restaurant' AND l.rating >= 4.0 AND IS_WEEKEND(c.ts) AND $TSc
			GROUP BY l.city ORDER BY n DESC`),

		// A6: campaign reach by month for targeted hashtags.
		q(6, 1, `
			SELECT MONTH(t.ts) AS m, COUNT(*) AS n
			FROM tweets t
			WHERE t.lang = 'en' AND t.hashtag IN ('deal', 'launch') AND $TSt
			GROUP BY MONTH(t.ts) ORDER BY m`),
		q(6, 2, `
			SELECT MONTH(t.ts) AS m, t.hashtag, COUNT(*) AS n, AVG(t.retweets) AS reach
			FROM tweets t
			WHERE t.lang = 'en' AND t.hashtag IN ('deal', 'launch', 'food') AND $TSt
			GROUP BY MONTH(t.ts), t.hashtag ORDER BY m`),
		q(6, 3, `
			SELECT MONTH(t.ts) AS m, COUNT(DISTINCT t.user_id) AS uniques
			FROM tweets t
			WHERE t.lang = 'en' AND t.hashtag IN ('deal', 'launch', 'food') AND $TSt
			      AND t.followers > 10000
			GROUP BY MONTH(t.ts) ORDER BY m`),
		q(6, 4, `
			SELECT MONTH(t.ts) AS m, l.city, COUNT(*) AS n
			FROM tweets t
			JOIN checkins c ON t.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE t.lang = 'en' AND t.hashtag IN ('deal', 'launch', 'food') AND $TSt AND $TSc
			      AND t.followers > 10000
			GROUP BY MONTH(t.ts), l.city ORDER BY n DESC`),

		// A7: weekend vs weekday dining behavior.
		q(7, 1, `
			SELECT c.category, COUNT(*) AS n
			FROM checkins c
			WHERE IS_WEEKEND(c.ts) AND $TSc
			GROUP BY c.category ORDER BY n DESC`),
		q(7, 2, `
			SELECT c.category, COUNT(*) AS weekend_visits, COUNT(DISTINCT c.user_id) AS uniques
			FROM checkins c
			WHERE IS_WEEKEND(c.ts) AND c.category IN ('restaurant', 'cafe', 'bar') AND $TSc
			GROUP BY c.category ORDER BY weekend_visits DESC`),
		q(7, 3, `
			SELECT l.city, c.category, COUNT(*) AS weekend_visits
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE IS_WEEKEND(c.ts) AND c.category IN ('restaurant', 'cafe', 'bar') AND $TSc
			GROUP BY l.city, c.category ORDER BY weekend_visits DESC`),
		q(7, 4, `
			SELECT l.city, COUNT(*) AS weekend_visits, AVG(l.rating) AS rating
			FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE IS_WEEKEND(c.ts) AND c.category IN ('restaurant', 'cafe', 'bar') AND $TSc
			      AND l.rating >= 3.0
			GROUP BY l.city
			HAVING COUNT(*) > 8 ORDER BY weekend_visits DESC`),

		// A8: discovering potential customers from active users.
		q(8, 1, `
			SELECT u.user_id, u.n, c.venue_id
			FROM (SELECT user_id, COUNT(*) AS n FROM tweets WHERE $TS GROUP BY user_id) u
			JOIN checkins c ON u.user_id = c.user_id
			WHERE u.n > 5 AND $TSc`),
		q(8, 2, `
			SELECT u.user_id, u.n, l.city
			FROM (SELECT user_id, COUNT(*) AS n FROM tweets WHERE $TS GROUP BY user_id) u
			JOIN checkins c ON u.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE u.n > 5 AND l.category = 'restaurant' AND $TSc`),
		q(8, 3, `
			SELECT l.city, COUNT(DISTINCT u.user_id) AS prospects
			FROM (SELECT user_id, COUNT(*) AS n FROM tweets WHERE $TS GROUP BY user_id) u
			JOIN checkins c ON u.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE u.n > 5 AND l.category = 'restaurant' AND $TSc
			GROUP BY l.city ORDER BY prospects DESC`),
		q(8, 4, `
			SELECT l.city, COUNT(DISTINCT u.user_id) AS prospects, AVG(u.s) AS sentiment
			FROM (SELECT user_id, COUNT(*) AS n, AVG(SENTIMENT(text)) AS s
			      FROM tweets WHERE $TS GROUP BY user_id) u
			JOIN checkins c ON u.user_id = c.user_id
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE u.n > 5 AND l.category = 'restaurant' AND $TSc
			GROUP BY l.city ORDER BY prospects DESC LIMIT 15`),
	}
}

// Interleaved returns the 32 queries in round-robin analyst order
// (A1v1, A2v1, ..., A8v1, A1v2, ...): the adversarial submission order for
// a locality-based tuner, used by the order-sensitivity experiment.
func Interleaved() []Query {
	qs := Evolving()
	out := make([]Query, 0, len(qs))
	for v := 0; v < 4; v++ {
		for a := 0; a < 8; a++ {
			out = append(out, qs[a*4+v])
		}
	}
	return out
}

// SQLs returns just the SQL strings in submission order.
func SQLs() []string {
	qs := Evolving()
	out := make([]string, len(qs))
	for i, w := range qs {
		out[i] = w.SQL
	}
	return out
}

// ByName finds a query by its paper-style id (e.g. "A1v1").
func ByName(name string) (Query, bool) {
	for _, w := range Evolving() {
		if w.Name == name {
			return w, true
		}
	}
	return Query{}, false
}

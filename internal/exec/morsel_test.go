package exec_test

import (
	"strings"
	"testing"
	"time"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/storage"
	"miso/internal/workload"
)

// operatorQueries exercises every operator the engines implement: extract
// (with and without UDF columns), filter, project, inner and left-ish
// joins, grouped/global/distinct aggregation with float sums, distinct,
// sort (asc/desc with heavy key ties), and limit.
var operatorQueries = []string{
	"SELECT tweet_id, user_id, ts, text, hashtag, lang, retweets, followers FROM tweets",
	"SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 10",
	"SELECT retweets * 2 AS dbl, UPPER(lang) AS lg, SENTIMENT(text) AS s FROM tweets",
	"SELECT t.tweet_id, u.lat FROM tweets t JOIN checkins u ON t.user_id = u.user_id WHERE u.lat > 40.0",
	"SELECT l.category, COUNT(*) AS visits, AVG(l.rating) AS rating FROM checkins c JOIN landmarks l ON c.venue_id = l.venue_id GROUP BY l.category ORDER BY visits DESC",
	"SELECT COUNT(*) AS n, SUM(lat) AS slat, MIN(lon) AS mn, MAX(lon) AS mx, AVG(lat) AS avglat FROM checkins",
	"SELECT COUNT(DISTINCT user_id) AS uniques, SUM(rating) AS r FROM checkins c JOIN landmarks l ON c.venue_id = l.venue_id",
	"SELECT DISTINCT lang, hashtag FROM tweets",
	"SELECT lang, retweets FROM tweets ORDER BY lang",
	"SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag ORDER BY n DESC LIMIT 5",
	"SELECT lang FROM tweets WHERE retweets < 0", // empty result
	"SELECT COUNT(*) AS n FROM tweets WHERE retweets < 0",
}

func runWorkers(t *testing.T, cat *storage.Catalog, sql string, workers, morselRows int) *storage.Table {
	t.Helper()
	env := &exec.Env{
		ReadLog:    func(name string) (*storage.LogFile, error) { return cat.Log(name) },
		Workers:    workers,
		MorselRows: morselRows,
	}
	return run(t, cat, env, sql)
}

// TestMorselEngineByteIdenticalToSerial is the core determinism contract:
// for every operator, the morsel engine's output table must be digest-equal
// to the legacy serial engine's at worker counts 1/2/4/8 and at morsel
// sizes that do and do not divide the input evenly.
func TestMorselEngineByteIdenticalToSerial(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for qi, sql := range operatorQueries {
		serial := runWorkers(t, cat, sql, exec.SerialWorkers, 0)
		want := storage.ChecksumTable(serial)
		for _, workers := range []int{1, 2, 4, 8} {
			for _, mr := range []int{0, 7, 997} {
				got := runWorkers(t, cat, sql, workers, mr)
				if g := storage.ChecksumTable(got); g != want {
					t.Errorf("query %d (%s): workers=%d morselRows=%d digest %x, serial %x (%d vs %d rows)",
						qi, strings.TrimSpace(sql)[:40], workers, mr, g, want, got.NumRows(), serial.NumRows())
				}
			}
		}
	}
}

// TestMorselEngineFullWorkloadDigest runs the paper's full 32-query
// workload through both engines on raw logs and compares per-query output
// digests.
func TestMorselEngineFullWorkloadDigest(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for i, q := range workload.Evolving() {
		serial := runWorkers(t, cat, q.SQL, exec.SerialWorkers, 0)
		parallel := runWorkers(t, cat, q.SQL, 4, 512)
		if storage.ChecksumTable(serial) != storage.ChecksumTable(parallel) {
			t.Errorf("workload query %d (%s): parallel output diverged from serial", i, q.Name)
		}
	}
}

// TestSortFullRowTieBreak is the runSort determinism regression: rows with
// equal sort keys must come out ordered by the full row in both engines,
// so equal-key orderings cannot drift with engine or worker count.
func TestSortFullRowTieBreak(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	const sql = "SELECT lang, retweets FROM tweets ORDER BY lang"
	serial := runWorkers(t, cat, sql, exec.SerialWorkers, 0)
	for prev, i := (storage.Row)(nil), 0; i < len(serial.Rows); i++ {
		row := serial.Rows[i]
		if prev != nil && prev[0].S == row[0].S && prev[1].I > row[1].I {
			t.Fatalf("row %d: equal-key rows not full-row ordered: %v then %v", i, prev, row)
		}
		prev = row
	}
	for _, workers := range []int{1, 8} {
		got := runWorkers(t, cat, sql, workers, 64)
		if storage.ChecksumTable(got) != storage.ChecksumTable(serial) {
			t.Fatalf("sort output diverged at workers=%d", workers)
		}
	}
}

// TestExecStatsBreakdown checks the per-operator timing collector counts
// every operator of a query exactly once and is concurrency-safe enough to
// share across Envs.
func TestExecStatsBreakdown(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	st := &exec.Stats{}
	env := &exec.Env{
		ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) },
		Stats:   st,
	}
	run(t, cat, env, "SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > 5 GROUP BY lang ORDER BY n DESC LIMIT 3")
	want := map[string]int64{"extract": 1, "filter": 1, "aggregate": 1, "sort": 1, "limit": 1}
	got := map[string]int64{}
	var total time.Duration
	for _, row := range st.Breakdown() {
		got[row.Op] = row.Calls
		total += row.Time
	}
	for op, calls := range want {
		if got[op] != calls {
			t.Errorf("op %s: %d calls, want %d (got %v)", op, got[op], calls, got)
		}
	}
	if total <= 0 {
		t.Errorf("total recorded time = %v, want > 0", total)
	}
	st.Reset()
	if len(st.Breakdown()) != 0 {
		t.Errorf("breakdown non-empty after Reset")
	}
}

// TestMorselEngineScaleFactorPropagation mirrors the serial engine's
// ScaleFactor handling through the morsel paths.
func TestMorselEngineScaleFactorPropagation(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	log, _ := cat.Log(data.TweetsLog)
	for _, workers := range []int{exec.SerialWorkers, 4} {
		out := runWorkers(t, cat, "SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang", workers, 0)
		if out.ScaleFactor != log.ScaleFactor {
			t.Fatalf("workers=%d: ScaleFactor %v, want %v", workers, out.ScaleFactor, log.ScaleFactor)
		}
	}
}


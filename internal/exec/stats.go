package exec

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"miso/internal/logical"
)

const numKinds = int(logical.KindViewScan) + 1

// Stats accumulates per-operator execution counters. All methods are safe
// for concurrent use; one Stats can be shared by every Env in a system so
// interactive tools can print where query wall-clock actually goes.
type Stats struct {
	ops [numKinds]opCounters
}

type opCounters struct {
	calls atomic.Int64
	rows  atomic.Int64
	nanos atomic.Int64
}

func (s *Stats) record(k logical.Kind, rows int, d time.Duration) {
	if s == nil || int(k) >= numKinds {
		return
	}
	c := &s.ops[k]
	c.calls.Add(1)
	c.rows.Add(int64(rows))
	c.nanos.Add(d.Nanoseconds())
}

// OpStat is one operator's aggregate timings.
type OpStat struct {
	// Op is the operator name (extract, filter, join, ...).
	Op string
	// Calls is how many operator instances ran.
	Calls int64
	// Rows is the total output rows across those calls.
	Rows int64
	// Time is the summed wall clock across those calls.
	Time time.Duration
}

// Breakdown returns the non-empty operator rows in fixed kind order.
func (s *Stats) Breakdown() []OpStat {
	if s == nil {
		return nil
	}
	var out []OpStat
	for k := 0; k < numKinds; k++ {
		c := &s.ops[k]
		calls := c.calls.Load()
		if calls == 0 {
			continue
		}
		out = append(out, OpStat{
			Op:    logical.Kind(k).String(),
			Calls: calls,
			Rows:  c.rows.Load(),
			Time:  time.Duration(c.nanos.Load()),
		})
	}
	return out
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for k := range s.ops {
		s.ops[k].calls.Store(0)
		s.ops[k].rows.Store(0)
		s.ops[k].nanos.Store(0)
	}
}

// WriteBreakdown renders the breakdown as an aligned table.
func (s *Stats) WriteBreakdown(w io.Writer) {
	rows := s.Breakdown()
	if len(rows) == 0 {
		return
	}
	var total time.Duration
	for _, r := range rows {
		total += r.Time
	}
	fmt.Fprintf(w, "  %-10s %7s %10s %12s %6s\n", "operator", "calls", "rows", "time", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = float64(r.Time) / float64(total) * 100
		}
		fmt.Fprintf(w, "  %-10s %7d %10d %12s %5.1f%%\n", r.Op, r.Calls, r.Rows, r.Time.Round(time.Microsecond), share)
	}
}

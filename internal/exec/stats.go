package exec

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"miso/internal/logical"
)

const numKinds = int(logical.KindViewScan) + 1

// Stats accumulates per-operator execution counters. All methods are safe
// for concurrent use; one Stats can be shared by every Env in a system so
// interactive tools can print where query wall-clock actually goes.
type Stats struct {
	ops [numKinds]opCounters
}

type opCounters struct {
	calls   atomic.Int64
	rows    atomic.Int64
	nanos   atomic.Int64
	batches atomic.Int64
	rowsIn  atomic.Int64
}

func (s *Stats) record(k logical.Kind, rows int, d time.Duration) {
	if s == nil || int(k) >= numKinds {
		return
	}
	c := &s.ops[k]
	c.calls.Add(1)
	c.rows.Add(int64(rows))
	c.nanos.Add(d.Nanoseconds())
}

// recordColumnar adds batch-path counters for one operator run: how many
// column batches (morsels) it processed and how many input rows they held.
// Together with the output row counter this exposes per-operator
// selectivity — Rows/RowsIn — without touching the hot loops.
func (s *Stats) recordColumnar(k logical.Kind, batches, rowsIn int64) {
	if s == nil || int(k) >= numKinds {
		return
	}
	c := &s.ops[k]
	c.batches.Add(batches)
	c.rowsIn.Add(rowsIn)
}

// recordColumnar forwards batch counters to the Env's Stats (nil-safe).
func (env *Env) recordColumnar(k logical.Kind, batches, rowsIn int64) {
	env.Stats.recordColumnar(k, batches, rowsIn)
}

// OpStat is one operator's aggregate timings.
type OpStat struct {
	// Op is the operator name (extract, filter, join, ...).
	Op string
	// Calls is how many operator instances ran.
	Calls int64
	// Rows is the total output rows across those calls.
	Rows int64
	// Time is the summed wall clock across those calls.
	Time time.Duration
	// Batches is the number of column batches (morsels) the columnar path
	// processed; zero when the operator ran serially.
	Batches int64
	// RowsIn is the total input rows those batches held.
	RowsIn int64
}

// Selectivity returns output rows per input row for the columnar path, or
// 0 when no input rows were counted.
func (o OpStat) Selectivity() float64 {
	if o.RowsIn == 0 {
		return 0
	}
	return float64(o.Rows) / float64(o.RowsIn)
}

// Breakdown returns the non-empty operator rows in fixed kind order.
func (s *Stats) Breakdown() []OpStat {
	if s == nil {
		return nil
	}
	var out []OpStat
	for k := 0; k < numKinds; k++ {
		c := &s.ops[k]
		calls := c.calls.Load()
		if calls == 0 {
			continue
		}
		out = append(out, OpStat{
			Op:      logical.Kind(k).String(),
			Calls:   calls,
			Rows:    c.rows.Load(),
			Time:    time.Duration(c.nanos.Load()),
			Batches: c.batches.Load(),
			RowsIn:  c.rowsIn.Load(),
		})
	}
	return out
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for k := range s.ops {
		s.ops[k].calls.Store(0)
		s.ops[k].rows.Store(0)
		s.ops[k].nanos.Store(0)
		s.ops[k].batches.Store(0)
		s.ops[k].rowsIn.Store(0)
	}
}

// WriteBreakdown renders the breakdown as an aligned table.
func (s *Stats) WriteBreakdown(w io.Writer) {
	rows := s.Breakdown()
	if len(rows) == 0 {
		return
	}
	var total time.Duration
	for _, r := range rows {
		total += r.Time
	}
	fmt.Fprintf(w, "  %-10s %7s %10s %12s %6s %8s %10s %6s\n",
		"operator", "calls", "rows", "time", "share", "batches", "rows_in", "sel")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = float64(r.Time) / float64(total) * 100
		}
		sel := "-"
		if r.RowsIn > 0 {
			sel = fmt.Sprintf("%.2f", r.Selectivity())
		}
		fmt.Fprintf(w, "  %-10s %7d %10d %12s %5.1f%% %8d %10d %6s\n",
			r.Op, r.Calls, r.Rows, r.Time.Round(time.Microsecond), share, r.Batches, r.RowsIn, sel)
	}
}

package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// TestGroupCountsPartitionRows: for any grouping column, the group counts
// must sum to the filtered row count — a conservation property across the
// filter and aggregate operators.
func TestGroupCountsPartitionRows(t *testing.T) {
	cat, env := testEnv(t)
	rng := rand.New(rand.NewSource(11))
	groupCols := []string{"lang", "hashtag", "user_id"}
	for trial := 0; trial < 10; trial++ {
		col := groupCols[rng.Intn(len(groupCols))]
		threshold := rng.Intn(400)
		grouped := run(t, cat, env, fmt.Sprintf(
			"SELECT %s, COUNT(*) AS n FROM tweets WHERE retweets > %d GROUP BY %s",
			col, threshold, col))
		flat := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d", threshold))
		var sum int64
		for _, r := range grouped.Rows {
			sum += r[1].I
		}
		if sum != int64(flat.NumRows()) {
			t.Fatalf("col=%s thr=%d: group counts sum to %d, rows = %d",
				col, threshold, sum, flat.NumRows())
		}
	}
}

// TestJoinCountMatchesKeyHistogram: |A join B on k| must equal the sum over
// key values of countA(k)*countB(k).
func TestJoinCountMatchesKeyHistogram(t *testing.T) {
	cat, env := testEnv(t)
	joined := run(t, cat, env,
		"SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id")
	ta := run(t, cat, env, "SELECT user_id, COUNT(*) AS n FROM tweets GROUP BY user_id")
	tb := run(t, cat, env, "SELECT user_id, COUNT(*) AS n FROM checkins GROUP BY user_id")
	counts := map[int64]int64{}
	for _, r := range tb.Rows {
		counts[r[0].I] = r[1].I
	}
	var want int64
	for _, r := range ta.Rows {
		want += r[1].I * counts[r[0].I]
	}
	if int64(joined.NumRows()) != want {
		t.Fatalf("join rows = %d, histogram product = %d", joined.NumRows(), want)
	}
}

// TestFilterMonotone: strengthening a predicate never adds rows.
func TestFilterMonotone(t *testing.T) {
	cat, env := testEnv(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		lo := rng.Intn(300)
		hi := lo + rng.Intn(200)
		weak := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d", lo))
		strong := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d AND lang = 'en'", lo))
		stronger := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d AND lang = 'en'", hi))
		if strong.NumRows() > weak.NumRows() {
			t.Fatalf("adding a conjunct added rows (%d > %d)", strong.NumRows(), weak.NumRows())
		}
		if stronger.NumRows() > strong.NumRows() {
			t.Fatalf("raising the threshold added rows")
		}
	}
}

// TestLimitAndSortAgree: LIMIT k after ORDER BY returns the true top-k.
func TestLimitAndSortAgree(t *testing.T) {
	cat, env := testEnv(t)
	full := run(t, cat, env,
		"SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC, tweet_id ASC")
	top := run(t, cat, env,
		"SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC, tweet_id ASC LIMIT 7")
	if top.NumRows() != 7 {
		t.Fatalf("limit rows = %d", top.NumRows())
	}
	for i := range top.Rows {
		if !storage.Equal(top.Rows[i][0], full.Rows[i][0]) {
			t.Fatalf("row %d: limit gave %v, full order gives %v",
				i, top.Rows[i][0], full.Rows[i][0])
		}
	}
}

// TestAvgConsistentWithSumCount: AVG == SUM/COUNT per group.
func TestAvgConsistentWithSumCount(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, `SELECT lang, AVG(retweets) AS a, SUM(retweets) AS s,
		COUNT(retweets) AS c FROM tweets GROUP BY lang`)
	for _, r := range out.Rows {
		avg := r[1].F
		sum, _ := r[2].AsFloat()
		cnt := float64(r[3].I)
		if cnt == 0 {
			continue
		}
		if diff := avg - sum/cnt; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("lang %v: AVG %.6f != SUM/COUNT %.6f", r[0], avg, sum/cnt)
		}
	}
}

// TestViewRewriteEquivalenceOverWorkloadPrefix executes query pairs with
// and without view rewriting at the engine level: the hv store's rewrite
// path is covered by package hv; here we assert plain plan execution is
// deterministic across runs.
func TestExecutionDeterminism(t *testing.T) {
	cat, env := testEnv(t)
	sql := `SELECT l.city, COUNT(*) AS n FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		GROUP BY l.city ORDER BY n DESC, city ASC`
	a := run(t, cat, env, sql)
	b := run(t, cat, env, sql)
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across identical runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !storage.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

// --- Columnar-vs-serial randomized equivalence ------------------------------
//
// The columnar batch path (typed vectors, selection vectors, fused
// Filter/Project/Aggregate chains) must be digest-identical to the serial
// row-at-a-time engine for EVERY operator over arbitrary data: random
// schemas, random null density, off-kind values that degrade vectors to
// generic storage, every batch size. These tests are the enforcement of
// that contract.

var propKinds = []storage.Kind{storage.KindInt, storage.KindFloat, storage.KindString, storage.KindBool}

// propValue draws a random value of kind k, NULL with probability nullDen,
// and (in mixed mode) occasionally an off-kind value — the serial engine is
// dynamically typed, so the columnar path must tolerate values that do not
// match the declared column type.
func propValue(rng *rand.Rand, k storage.Kind, nullDen float64, mixed bool) storage.Value {
	if rng.Float64() < nullDen {
		return storage.Null
	}
	if mixed && rng.Intn(12) == 0 {
		k = propKinds[rng.Intn(len(propKinds))]
	}
	switch k {
	case storage.KindInt:
		return storage.IntValue(int64(rng.Intn(200) - 100))
	case storage.KindFloat:
		switch rng.Intn(10) {
		case 0:
			return storage.FloatValue(0.0 * float64(1-2*rng.Intn(2))) // ±0.0
		default:
			return storage.FloatValue(float64(rng.Intn(2000)-1000) / 8)
		}
	case storage.KindString:
		words := []string{"a", "ab", "abc", "7", "-3.5", "en", "fr", "", "zz"}
		return storage.StringValue(words[rng.Intn(len(words))])
	default:
		return storage.BoolValue(rng.Intn(2) == 0)
	}
}

// propTable builds a random table: 2-5 columns of random kinds, up to ~400
// rows, a drawn null density, and (half the time) off-kind values.
func propTable(rng *rand.Rand, name, colPrefix string) *storage.Table {
	nCols := 2 + rng.Intn(4)
	cols := make([]storage.Column, nCols)
	for i := range cols {
		cols[i] = storage.Column{
			Name: fmt.Sprintf("%s%d", colPrefix, i),
			Type: propKinds[rng.Intn(len(propKinds))],
		}
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	nullDen := []float64{0, 0.05, 0.25, 0.6}[rng.Intn(4)]
	mixed := rng.Intn(2) == 0
	nRows := rng.Intn(400)
	t := storage.NewTable(name, schema)
	for i := 0; i < nRows; i++ {
		row := make(storage.Row, nCols)
		for c := range row {
			row[c] = propValue(rng, cols[c].Type, nullDen, mixed)
		}
		t.MustAppend(row)
	}
	return t
}

func propCol(rng *rand.Rand, s *storage.Schema) storage.Column {
	return s.Columns[rng.Intn(len(s.Columns))]
}

// propScalar draws a random scalar expression over s's columns.
func propScalar(rng *rand.Rand, s *storage.Schema, depth int) expr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(3) > 0 {
			return &expr.ColRef{Name: propCol(rng, s).Name}
		}
		return &expr.Const{Val: propValue(rng, propKinds[rng.Intn(len(propKinds))], 0.15, false)}
	}
	switch rng.Intn(4) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%"}
		return &expr.BinOp{Op: ops[rng.Intn(len(ops))],
			L: propScalar(rng, s, depth-1), R: propScalar(rng, s, depth-1)}
	case 1:
		return &expr.Neg{E: propScalar(rng, s, depth-1)}
	default:
		return propPred(rng, s, depth-1)
	}
}

// propPred draws a random predicate covering every batch kernel family:
// comparisons (including const-side specializations), 3-valued AND/OR, NOT,
// IS [NOT] NULL, [NOT] IN, LIKE, and bare scalars used as truth values.
func propPred(rng *rand.Rand, s *storage.Schema, depth int) expr.Expr {
	if depth <= 0 {
		return &expr.BinOp{Op: ">", L: propScalar(rng, s, 0), R: propScalar(rng, s, 0)}
	}
	switch rng.Intn(7) {
	case 0:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return &expr.BinOp{Op: ops[rng.Intn(len(ops))],
			L: propScalar(rng, s, depth-1), R: propScalar(rng, s, depth-1)}
	case 1:
		ops := []string{"AND", "OR"}
		return &expr.BinOp{Op: ops[rng.Intn(2)],
			L: propPred(rng, s, depth-1), R: propPred(rng, s, depth-1)}
	case 2:
		return &expr.Not{E: propPred(rng, s, depth-1)}
	case 3:
		return &expr.IsNull{E: propScalar(rng, s, depth-1), Neg: rng.Intn(2) == 0}
	case 4:
		items := make([]expr.Expr, 1+rng.Intn(3))
		for i := range items {
			items[i] = &expr.Const{Val: propValue(rng, propKinds[rng.Intn(len(propKinds))], 0.1, false)}
		}
		return &expr.In{E: propScalar(rng, s, depth-1), Items: items, Neg: rng.Intn(2) == 0}
	case 5:
		pats := []string{"%a%", "a%", "%b", "_b%", "%", "abc"}
		return &expr.BinOp{Op: "LIKE", L: propScalar(rng, s, depth-1),
			R: &expr.Const{Val: storage.StringValue(pats[rng.Intn(len(pats))])}}
	default:
		return propScalar(rng, s, depth-1) // bare scalar truthiness
	}
}

// propProjs draws n random projections with declared output types.
func propProjs(rng *rand.Rand, s *storage.Schema, prefix string, n int) ([]logical.Proj, *storage.Schema) {
	projs := make([]logical.Proj, n)
	cols := make([]storage.Column, n)
	for i := range projs {
		e := propScalar(rng, s, 2)
		projs[i] = logical.Proj{Expr: e, Name: fmt.Sprintf("%s%d", prefix, i)}
		k, err := expr.TypeOf(e, s)
		if err != nil {
			k = storage.KindNull
		}
		cols[i] = storage.Column{Name: projs[i].Name, Type: k}
	}
	return projs, &storage.Schema{Columns: cols}
}

// propAggregate builds a random Aggregate node (possibly global) over child.
func propAggregate(rng *rand.Rand, child *logical.Node) *logical.Node {
	s := child.Schema()
	var groupBy []logical.Proj
	var cols []storage.Column
	for i := 0; i < rng.Intn(3); i++ {
		name := fmt.Sprintf("g%d", i)
		var ge expr.Expr
		var k storage.Kind
		if rng.Intn(3) == 0 {
			// Expression group key: exercises the non-ColRef aggregation
			// path, where keys are batch-evaluated and scattered into the
			// key cache rather than read straight from input rows.
			ge = propScalar(rng, s, 1)
			var err error
			if k, err = expr.TypeOf(ge, s); err != nil {
				k = storage.KindNull
			}
		} else {
			c := propCol(rng, s)
			ge = &expr.ColRef{Name: c.Name}
			k = c.Type
		}
		groupBy = append(groupBy, logical.Proj{Expr: ge, Name: name})
		cols = append(cols, storage.Column{Name: name, Type: k})
	}
	funcs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
	aggs := make([]logical.AggSpec, 1+rng.Intn(3))
	for i := range aggs {
		f := funcs[rng.Intn(len(funcs))]
		name := fmt.Sprintf("a%d", i)
		spec := logical.AggSpec{Func: f, Name: name}
		if f == "COUNT" && rng.Intn(2) == 0 {
			spec.Star = true
		} else {
			spec.Arg = propScalar(rng, s, 1)
			spec.Distinct = rng.Intn(4) == 0
		}
		aggs[i] = spec
		k := storage.KindFloat
		if f == "COUNT" {
			k = storage.KindInt
		}
		cols = append(cols, storage.Column{Name: name, Type: k})
	}
	n := &logical.Node{Kind: logical.KindAggregate, Children: []*logical.Node{child},
		GroupBy: groupBy, Aggs: aggs}
	n.SetSchema(&storage.Schema{Columns: cols})
	return n
}

// propEnv wires an Env that resolves the given tables as views.
func propEnv(tables map[string]*storage.Table, workers, morselRows int) *exec.Env {
	return &exec.Env{
		ReadView: func(name string) (*storage.Table, error) {
			t, ok := tables[name]
			if !ok {
				return nil, fmt.Errorf("no view %q", name)
			}
			return t, nil
		},
		Workers:    workers,
		MorselRows: morselRows,
	}
}

// TestColumnarMatchesSerialRandomized is the seeded equivalence fuzz for
// the columnar batch path: for every operator (and fused chains), random
// plans over random tables must produce digest-identical outputs across
// the serial engine and the morsel engine at several worker counts and
// batch sizes.
func TestColumnarMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 20; trial++ {
		left := propTable(rng, "L", "a")
		right := propTable(rng, "R", "b")
		tables := map[string]*storage.Table{"L": left, "R": right}
		scanL := func() *logical.Node { return logical.NewViewScan("L", left.Schema) }
		scanR := func() *logical.Node { return logical.NewViewScan("R", right.Schema) }

		var plans []*logical.Node

		// Filter.
		f := &logical.Node{Kind: logical.KindFilter, Children: []*logical.Node{scanL()},
			Pred: propPred(rng, left.Schema, 3)}
		f.SetSchema(left.Schema.Clone())
		plans = append(plans, f)

		// Project.
		projs, ps := propProjs(rng, left.Schema, "p", 1+rng.Intn(3))
		p := &logical.Node{Kind: logical.KindProject, Children: []*logical.Node{scanL()}, Projs: projs}
		p.SetSchema(ps)
		plans = append(plans, p)

		// Aggregate (grouped or global).
		plans = append(plans, propAggregate(rng, scanL()))

		// Distinct.
		d := &logical.Node{Kind: logical.KindDistinct, Children: []*logical.Node{scanL()}}
		d.SetSchema(left.Schema.Clone())
		plans = append(plans, d)

		// Sort (full-row tie-break makes any key set deterministic).
		nk := 1 + rng.Intn(2)
		keys := make([]logical.SortKey, nk)
		for i := range keys {
			keys[i] = logical.SortKey{Expr: &expr.ColRef{Name: propCol(rng, left.Schema).Name},
				Desc: rng.Intn(2) == 0}
		}
		srt := &logical.Node{Kind: logical.KindSort, Children: []*logical.Node{scanL()}, SortKeys: keys}
		srt.SetSchema(left.Schema.Clone())
		plans = append(plans, srt)

		// Join on same-kind key columns when the tables share one.
		for _, lc := range left.Schema.Columns {
			var rKey string
			for _, rc := range right.Schema.Columns {
				if rc.Type == lc.Type {
					rKey = rc.Name
					break
				}
			}
			if rKey == "" {
				continue
			}
			jt := logical.JoinInner
			if rng.Intn(3) == 0 {
				jt = logical.JoinLeft
			}
			j := &logical.Node{Kind: logical.KindJoin,
				Children: []*logical.Node{scanL(), scanR()},
				JoinType: jt, LeftKeys: []string{lc.Name}, RightKeys: []string{rKey}}
			j.SetSchema(&storage.Schema{Columns: append(
				append([]storage.Column{}, left.Schema.Columns...), right.Schema.Columns...)})
			plans = append(plans, j)
			break
		}

		// Fused chain: Filter → Project → Filter (→ Aggregate half the time),
		// exercised through exec.Run's fusion hook.
		cf := &logical.Node{Kind: logical.KindFilter, Children: []*logical.Node{scanL()},
			Pred: propPred(rng, left.Schema, 2)}
		cf.SetSchema(left.Schema.Clone())
		cprojs, cps := propProjs(rng, left.Schema, "q", 2)
		cp := &logical.Node{Kind: logical.KindProject, Children: []*logical.Node{cf}, Projs: cprojs}
		cp.SetSchema(cps)
		chain := &logical.Node{Kind: logical.KindFilter, Children: []*logical.Node{cp},
			Pred: propPred(rng, cps, 2)}
		chain.SetSchema(cps.Clone())
		if rng.Intn(2) == 0 {
			plans = append(plans, propAggregate(rng, chain))
		} else {
			plans = append(plans, chain)
		}

		for pi, plan := range plans {
			serial, err := exec.Run(plan, propEnv(tables, exec.SerialWorkers, 0))
			if err != nil {
				t.Fatalf("trial %d plan %d (%s): serial: %v", trial, pi, plan.Kind, err)
			}
			want := storage.ChecksumTable(serial)
			for _, workers := range []int{1, 3, 4} {
				for _, mr := range []int{0, 1, 13, 256} {
					got, err := exec.Run(plan, propEnv(tables, workers, mr))
					if err != nil {
						t.Fatalf("trial %d plan %d (%s) w=%d mr=%d: %v",
							trial, pi, plan.Kind, workers, mr, err)
					}
					if g := storage.ChecksumTable(got); g != want {
						t.Fatalf("trial %d plan %d (%s) w=%d mr=%d: digest %x != serial %x (rows %d vs %d)",
							trial, pi, plan.Kind, workers, mr, g, want, got.NumRows(), serial.NumRows())
					}
				}
			}
		}
	}
}

// TestMalformedRecordsSkipped: the SerDe tolerates broken JSON lines.
func TestMalformedRecordsSkipped(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	log, _ := cat.Log(data.TweetsLog)
	before := log.NumLines()
	log.AppendLine("{not json at all")
	log.AppendLine(`{"tweet_id": "also-not-an-int"}`)
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	plan, err := logical.NewBuilder(cat).BuildSQL("SELECT tweet_id FROM tweets")
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	// The broken JSON line is skipped; the mistyped record extracts with
	// a NULL tweet_id.
	if out.NumRows() != before+1 {
		t.Fatalf("rows = %d, want %d", out.NumRows(), before+1)
	}
	sawNull := false
	for _, r := range out.Rows {
		if r[0].IsNull() {
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("mistyped field should extract as NULL")
	}
}

package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/logical"
	"miso/internal/storage"
)

// TestGroupCountsPartitionRows: for any grouping column, the group counts
// must sum to the filtered row count — a conservation property across the
// filter and aggregate operators.
func TestGroupCountsPartitionRows(t *testing.T) {
	cat, env := testEnv(t)
	rng := rand.New(rand.NewSource(11))
	groupCols := []string{"lang", "hashtag", "user_id"}
	for trial := 0; trial < 10; trial++ {
		col := groupCols[rng.Intn(len(groupCols))]
		threshold := rng.Intn(400)
		grouped := run(t, cat, env, fmt.Sprintf(
			"SELECT %s, COUNT(*) AS n FROM tweets WHERE retweets > %d GROUP BY %s",
			col, threshold, col))
		flat := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d", threshold))
		var sum int64
		for _, r := range grouped.Rows {
			sum += r[1].I
		}
		if sum != int64(flat.NumRows()) {
			t.Fatalf("col=%s thr=%d: group counts sum to %d, rows = %d",
				col, threshold, sum, flat.NumRows())
		}
	}
}

// TestJoinCountMatchesKeyHistogram: |A join B on k| must equal the sum over
// key values of countA(k)*countB(k).
func TestJoinCountMatchesKeyHistogram(t *testing.T) {
	cat, env := testEnv(t)
	joined := run(t, cat, env,
		"SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id")
	ta := run(t, cat, env, "SELECT user_id, COUNT(*) AS n FROM tweets GROUP BY user_id")
	tb := run(t, cat, env, "SELECT user_id, COUNT(*) AS n FROM checkins GROUP BY user_id")
	counts := map[int64]int64{}
	for _, r := range tb.Rows {
		counts[r[0].I] = r[1].I
	}
	var want int64
	for _, r := range ta.Rows {
		want += r[1].I * counts[r[0].I]
	}
	if int64(joined.NumRows()) != want {
		t.Fatalf("join rows = %d, histogram product = %d", joined.NumRows(), want)
	}
}

// TestFilterMonotone: strengthening a predicate never adds rows.
func TestFilterMonotone(t *testing.T) {
	cat, env := testEnv(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		lo := rng.Intn(300)
		hi := lo + rng.Intn(200)
		weak := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d", lo))
		strong := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d AND lang = 'en'", lo))
		stronger := run(t, cat, env, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d AND lang = 'en'", hi))
		if strong.NumRows() > weak.NumRows() {
			t.Fatalf("adding a conjunct added rows (%d > %d)", strong.NumRows(), weak.NumRows())
		}
		if stronger.NumRows() > strong.NumRows() {
			t.Fatalf("raising the threshold added rows")
		}
	}
}

// TestLimitAndSortAgree: LIMIT k after ORDER BY returns the true top-k.
func TestLimitAndSortAgree(t *testing.T) {
	cat, env := testEnv(t)
	full := run(t, cat, env,
		"SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC, tweet_id ASC")
	top := run(t, cat, env,
		"SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC, tweet_id ASC LIMIT 7")
	if top.NumRows() != 7 {
		t.Fatalf("limit rows = %d", top.NumRows())
	}
	for i := range top.Rows {
		if !storage.Equal(top.Rows[i][0], full.Rows[i][0]) {
			t.Fatalf("row %d: limit gave %v, full order gives %v",
				i, top.Rows[i][0], full.Rows[i][0])
		}
	}
}

// TestAvgConsistentWithSumCount: AVG == SUM/COUNT per group.
func TestAvgConsistentWithSumCount(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, `SELECT lang, AVG(retweets) AS a, SUM(retweets) AS s,
		COUNT(retweets) AS c FROM tweets GROUP BY lang`)
	for _, r := range out.Rows {
		avg := r[1].F
		sum, _ := r[2].AsFloat()
		cnt := float64(r[3].I)
		if cnt == 0 {
			continue
		}
		if diff := avg - sum/cnt; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("lang %v: AVG %.6f != SUM/COUNT %.6f", r[0], avg, sum/cnt)
		}
	}
}

// TestViewRewriteEquivalenceOverWorkloadPrefix executes query pairs with
// and without view rewriting at the engine level: the hv store's rewrite
// path is covered by package hv; here we assert plain plan execution is
// deterministic across runs.
func TestExecutionDeterminism(t *testing.T) {
	cat, env := testEnv(t)
	sql := `SELECT l.city, COUNT(*) AS n FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		GROUP BY l.city ORDER BY n DESC, city ASC`
	a := run(t, cat, env, sql)
	b := run(t, cat, env, sql)
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ across identical runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !storage.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

// TestMalformedRecordsSkipped: the SerDe tolerates broken JSON lines.
func TestMalformedRecordsSkipped(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	log, _ := cat.Log(data.TweetsLog)
	before := log.NumLines()
	log.AppendLine("{not json at all")
	log.AppendLine(`{"tweet_id": "also-not-an-int"}`)
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	plan, err := logical.NewBuilder(cat).BuildSQL("SELECT tweet_id FROM tweets")
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	// The broken JSON line is skipped; the mistyped record extracts with
	// a NULL tweet_id.
	if out.NumRows() != before+1 {
		t.Fatalf("rows = %d, want %d", out.NumRows(), before+1)
	}
	sawNull := false
	for _, r := range out.Rows {
		if r[0].IsNull() {
			sawNull = true
		}
	}
	if !sawNull {
		t.Error("mistyped field should extract as NULL")
	}
}

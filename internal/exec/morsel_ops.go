// Morsel-engine operators. Every operator here carries the same
// determinism contract: its output is byte-identical to the legacy serial
// operator at any worker count and any morsel size. Filter/Project merge
// per-morsel buffers in morsel order; Join partitions its build side by key
// hash but keeps every per-key row list in build-input order; Distinct and
// Sort recover the serial order from recorded input positions.
package exec

import (
	"sort"
	"strconv"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// partitions is the fixed fan-out of the partitioned hash Join, Aggregate
// and Distinct. It is a power of two so partition assignment is a mask, and
// it is independent of the worker count so results cannot drift with
// parallelism.
const partitions = 16

// compileWorkers compiles e once per worker (Compiled evaluators are
// single-goroutine).
func compileWorkers(e expr.Expr, schema *storage.Schema, workers int) ([]expr.Compiled, error) {
	out := make([]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		c, err := expr.Compile(e, schema)
		if err != nil {
			return nil, err
		}
		out[w] = c
	}
	return out, nil
}

func appendChunks(out *storage.Table, chunks [][]storage.Row) *storage.Table {
	for _, c := range chunks {
		for _, r := range c {
			out.MustAppend(r)
		}
	}
	return out
}

func runFilterMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	preds, err := compileWorkers(n.Pred, in.Schema, workers)
	if err != nil {
		return nil, err
	}
	chunks := make([][]storage.Row, morselCount(len(in.Rows), env.morselRows()))
	forEachMorsel(workers, len(in.Rows), env.morselRows(), func(w, m, start, end int) {
		pred := preds[w]
		var buf []storage.Row
		for _, row := range in.Rows[start:end] {
			if v := pred(row); !v.IsNull() && v.Bool() {
				buf = append(buf, row)
			}
		}
		chunks[m] = buf
	})
	return appendChunks(newOutput(n, in), chunks), nil
}

func runProjectMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	workerEvals := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, len(n.Projs))
		for i, p := range n.Projs {
			c, err := expr.Compile(p.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			evals[i] = c
		}
		workerEvals[w] = evals
	}
	chunks := make([][]storage.Row, morselCount(len(in.Rows), env.morselRows()))
	forEachMorsel(workers, len(in.Rows), env.morselRows(), func(w, m, start, end int) {
		evals := workerEvals[w]
		buf := make([]storage.Row, 0, end-start)
		for _, row := range in.Rows[start:end] {
			nr := make(storage.Row, len(evals))
			for i, e := range evals {
				nr[i] = e(row)
			}
			buf = append(buf, nr)
		}
		chunks[m] = buf
	})
	return appendChunks(newOutput(n, in), chunks), nil
}

// rowBuckets records, per morsel, which row indexes land in each hash
// partition. Concatenating one partition's lists across morsels (morsels
// are input-ordered) visits that partition's rows in global input order.
type rowBuckets [partitions][]int32

func runJoinMorsel(n *logical.Node, env *Env, left, right *storage.Table) (*storage.Table, error) {
	lIdx, rIdx, err := joinKeyIndexes(n, left, right)
	if err != nil {
		return nil, err
	}
	workers := env.workerCount()
	mr := env.morselRows()

	// Phase 1: hash both sides in parallel, bucketing the build side.
	rHash := make([]uint64, len(right.Rows))
	rBuckets := make([]rowBuckets, morselCount(len(right.Rows), mr))
	forEachMorsel(workers, len(right.Rows), mr, func(_, m, start, end int) {
		var b rowBuckets
		for i := start; i < end; i++ {
			h, ok := hashKeys(right.Rows[i], rIdx)
			if !ok {
				continue // NULL keys never match
			}
			rHash[i] = h
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		rBuckets[m] = b
	})
	lHash := make([]uint64, len(left.Rows))
	lOK := make([]bool, len(left.Rows))
	forEachMorsel(workers, len(left.Rows), mr, func(_, _, start, end int) {
		for i := start; i < end; i++ {
			lHash[i], lOK[i] = hashKeys(left.Rows[i], lIdx)
		}
	})

	// Phase 2: per-partition builds. Each partition walks its bucket lists
	// in morsel order, so every per-key row list is in build-input order —
	// exactly the order the serial build produces.
	builds := make([]map[uint64][]storage.Row, partitions)
	forEachTask(workers, partitions, func(_, p int) {
		m := make(map[uint64][]storage.Row)
		for _, b := range rBuckets {
			for _, i := range b[p] {
				h := rHash[i]
				m[h] = append(m[h], right.Rows[i])
			}
		}
		builds[p] = m
	})

	// Phase 3: probe morsels over the left side, merged in morsel order.
	rWidth := right.Schema.Len()
	leftJoin := n.JoinType == logical.JoinLeft
	chunks := make([][]storage.Row, morselCount(len(left.Rows), mr))
	forEachMorsel(workers, len(left.Rows), mr, func(_, m, start, end int) {
		var buf []storage.Row
		for i := start; i < end; i++ {
			lrow := left.Rows[i]
			matched := false
			if lOK[i] {
				h := lHash[i]
				for _, rrow := range builds[h&(partitions-1)][h] {
					if keysEqual(lrow, rrow, lIdx, rIdx) {
						matched = true
						nr := make(storage.Row, 0, len(lrow)+rWidth)
						nr = append(nr, lrow...)
						nr = append(nr, rrow...)
						buf = append(buf, nr)
					}
				}
			}
			if !matched && leftJoin {
				nr := make(storage.Row, 0, len(lrow)+rWidth)
				nr = append(nr, lrow...)
				for j := 0; j < rWidth; j++ {
					nr = append(nr, storage.Null)
				}
				buf = append(buf, nr)
			}
		}
		chunks[m] = buf
	})
	return appendChunks(newOutput(n, left, right), chunks), nil
}

// appendValueKey appends exactly the bytes of v.String(); the byte-buffer
// form lets group/distinct keys be built and looked up without per-row
// string allocations (map reads on string(buf) do not allocate).
func appendValueKey(b []byte, v storage.Value) []byte {
	switch v.Kind {
	case storage.KindInt:
		return strconv.AppendInt(b, v.I, 10)
	case storage.KindFloat:
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case storage.KindString:
		return append(b, v.S...)
	case storage.KindBool:
		if v.I != 0 {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	default:
		return append(b, "NULL"...)
	}
}

func runDistinctMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	mr := env.morselRows()
	// Phase 1: hash whole rows, bucketing by partition.
	buckets := make([]rowBuckets, morselCount(len(in.Rows), mr))
	hashes := make([]uint64, len(in.Rows))
	forEachMorsel(workers, len(in.Rows), mr, func(_, m, start, end int) {
		var b rowBuckets
		for i := start; i < end; i++ {
			h := storage.HashSeed
			for _, v := range in.Rows[i] {
				h = v.HashInto(h)
			}
			hashes[i] = h
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		buckets[m] = b
	})
	// Phase 2: per-partition first-seen dedup over input-ordered buckets.
	kept := make([][]int32, partitions)
	forEachTask(workers, partitions, func(_, p int) {
		seen := make(map[string]struct{})
		var keyBuf []byte
		var local []int32
		for _, b := range buckets {
			for _, i := range b[p] {
				keyBuf = keyBuf[:0]
				for _, v := range in.Rows[i] {
					keyBuf = appendValueKey(keyBuf, v)
					keyBuf = append(keyBuf, 0)
				}
				if _, ok := seen[string(keyBuf)]; ok {
					continue
				}
				seen[string(keyBuf)] = struct{}{}
				local = append(local, i)
			}
		}
		kept[p] = local
	})
	// Phase 3: merge survivors by input position — global first-seen order.
	var all []int32
	for _, k := range kept {
		all = append(all, k...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	out := newOutput(n, in)
	for _, i := range all {
		out.MustAppend(in.Rows[i])
	}
	return out, nil
}

func runSortMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	nK := len(n.SortKeys)
	workerKeys := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, nK)
		for i, k := range n.SortKeys {
			c, err := expr.Compile(k.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			evals[i] = c
		}
		workerKeys[w] = evals
	}
	// Precompute sort keys in parallel: n evaluations instead of the
	// comparator's n·log n.
	keys := make([]storage.Value, len(in.Rows)*nK)
	forEachMorsel(workers, len(in.Rows), env.morselRows(), func(w, _, start, end int) {
		evals := workerKeys[w]
		for i := start; i < end; i++ {
			kv := keys[i*nK : i*nK+nK]
			for k, ev := range evals {
				kv[k] = ev(in.Rows[i])
			}
		}
	})
	idx := make([]int32, len(in.Rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for k := range n.SortKeys {
			c := storage.Compare(keys[int(ia)*nK+k], keys[int(ib)*nK+k])
			if n.SortKeys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		// Same full-row tie-break as the serial engine; beyond it the
		// stable sort preserves input order, matching serial exactly.
		return compareRowsFull(in.Rows[ia], in.Rows[ib]) < 0
	})
	out := newOutput(n, in)
	for _, i := range idx {
		out.MustAppend(in.Rows[i])
	}
	return out, nil
}

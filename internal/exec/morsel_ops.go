// Morsel-engine operators. Every operator here carries the same
// determinism contract: its output is byte-identical to the legacy serial
// operator at any worker count and any morsel size. Filter/Project merge
// per-morsel buffers in morsel order; Join partitions its build side by key
// hash but keeps every per-key row list in build-input order; Distinct and
// Sort recover the serial order from recorded input positions.
//
// Governance contract: operators charge the query's memory ledger (when
// one is attached) as their transient state grows — chunk buffers, hash
// partitions, precomputed key arrays — and release it once the output is
// materialized; a reservation over the limit aborts the operator with
// govern.ErrMemLimit. Merge loops poll cancellation every cancelPollRows
// rows. With governance disabled every charge and poll is a nil no-op and
// results are byte-identical to the ungoverned engine.
package exec

import (
	"math"
	"sort"
	"strconv"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// partitions is the fixed fan-out of the partitioned hash Join, Aggregate
// and Distinct. It is a power of two so partition assignment is a mask, and
// it is independent of the worker count so results cannot drift with
// parallelism.
const partitions = 16

// Ledger charge approximations for transient operator state. Referenced
// rows are charged per retained reference (the rows themselves belong to
// the input table); newly built rows are charged at their encoded size.
const (
	refRowCost = 8  // bytes per retained row reference
	idxCost    = 4  // bytes per int32 row index
	hashCost   = 8  // bytes per uint64 row hash
	valueCost  = 24 // bytes per precomputed storage.Value (keys)
	vecKeyCost = 16 // bytes per typed key-vector element (sort columns)
	groupCost  = 64 // fixed overhead per hash-table group entry
)

// rowsEncodedSize sums the encoded size of newly materialized rows.
func rowsEncodedSize(rows []storage.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.EncodedSize()
	}
	return n
}

// compileWorkers compiles e once per worker (Compiled evaluators are
// single-goroutine).
func compileWorkers(e expr.Expr, schema *storage.Schema, workers int) ([]expr.Compiled, error) {
	out := make([]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		c, err := expr.Compile(e, schema)
		if err != nil {
			return nil, err
		}
		out[w] = c
	}
	return out, nil
}

// compileBatchWorkers compiles a batch evaluator once per worker
// (BatchCompiled evaluators own scratch vectors and are single-goroutine).
func compileBatchWorkers(e expr.Expr, schema *storage.Schema, workers int) ([]expr.BatchCompiled, error) {
	out := make([]expr.BatchCompiled, workers)
	for w := 0; w < workers; w++ {
		c, err := expr.CompileBatch(e, schema)
		if err != nil {
			return nil, err
		}
		out[w] = c
	}
	return out, nil
}

// newBatchWorkers allocates one Batch per worker over the given schema.
func newBatchWorkers(schema *storage.Schema, workers int) []*expr.Batch {
	out := make([]*expr.Batch, workers)
	for w := range out {
		out[w] = expr.NewBatch(schema)
	}
	return out
}

// opWorkers clamps the worker count to the morsel count so per-worker
// compilation and scratch are not paid for workers that would never claim a
// morsel (forEachMorsel applies the same clamp when scheduling).
func opWorkers(env *Env, nRows int) int {
	workers := env.workerCount()
	if mc := morselCount(nRows, env.morselRows()); workers > mc {
		workers = mc
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// appendChunks merges per-morsel buffers in morsel order, polling
// cancellation as it goes.
func appendChunks(env *Env, out *storage.Table, chunks [][]storage.Row) (*storage.Table, error) {
	sincePoll := 0
	for _, c := range chunks {
		for _, r := range c {
			out.MustAppend(r)
		}
		sincePoll += len(c)
		if sincePoll >= cancelPollRows {
			sincePoll = 0
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// appendBlocks merges per-morsel buffers whose encoded byte sizes were
// already computed for the ledger reservation, bulk-appending each block
// into a presized output — no per-row append and no repeat of the per-row
// size walk — and polling cancellation between blocks.
func appendBlocks(env *Env, out *storage.Table, chunks [][]storage.Row, sizes []int64) (*storage.Table, error) {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out.Rows = make([]storage.Row, 0, total)
	sincePoll := 0
	for m, c := range chunks {
		out.AppendBlock(c, sizes[m])
		if sincePoll += len(c); sincePoll >= cancelPollRows {
			sincePoll = 0
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// runFilterMorsel is the columnar filter: each morsel evaluates the
// predicate batch-at-a-time over lazily transposed column vectors and marks
// survivors in a selection vector instead of copying rows. All morsels
// share one preallocated selection buffer — morsel m's survivors land in
// selBuf[start:start+counts[m]], disjoint by construction — so no
// per-morsel buffer is allocated or grown, which is what removed the
// partition-merge allocation regression. Survivors are appended as row
// references in morsel order, byte-identical to the serial engine.
func runFilterMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	nRows := len(in.Rows)
	mr := env.morselRows()
	workers := opWorkers(env, nRows)
	preds, err := compileBatchWorkers(n.Pred, in.Schema, workers)
	if err != nil {
		return nil, err
	}
	batches := newBatchWorkers(in.Schema, workers)
	sc := env.scope()
	defer sc.Release()
	if err := env.reserve(sc, idxCost*int64(nRows)); err != nil {
		return nil, err
	}
	selBuf := make([]int32, nRows)
	counts := make([]int, morselCount(nRows, mr))
	err = forEachMorsel(env, "filter", workers, nRows, mr, func(w, m, start, end int) error {
		b := batches[w]
		b.Reset(in.Rows[start:end])
		vec := preds[w](b, nil)
		sel := vec.TruesInto(selBuf[start:start:end], int32(start))
		counts[m] = len(sel)
		return env.reserve(sc, refRowCost*int64(len(sel)))
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	env.recordColumnar(logical.KindFilter, int64(len(counts)), int64(nRows))
	out := newOutput(n, in)
	out.Rows = make([]storage.Row, 0, total)
	sincePoll := 0
	for m, c := range counts {
		start := m * mr
		for _, i := range selBuf[start : start+c] {
			out.MustAppend(in.Rows[i])
		}
		if sincePoll += c; sincePoll >= cancelPollRows {
			sincePoll = 0
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// runProjectMorsel is the columnar projection: each morsel batch-evaluates
// every projection (vectorized kernels where possible, row fallback for
// UDFs) and materializes the output rows into one flat value arena per
// morsel — two allocations per morsel instead of one per row.
func runProjectMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	nRows := len(in.Rows)
	mr := env.morselRows()
	workers := opWorkers(env, nRows)
	workerEvals := make([][]projEval, workers)
	for w := 0; w < workers; w++ {
		evals, err := compileProjEvals(n.Projs, in.Schema)
		if err != nil {
			return nil, err
		}
		workerEvals[w] = evals
	}
	batches := newBatchWorkers(in.Schema, workers)
	width := len(n.Projs)
	sc := env.scope()
	defer sc.Release()
	chunks := make([][]storage.Row, morselCount(nRows, mr))
	sizes := make([]int64, len(chunks))
	err := forEachMorsel(env, "project", workers, nRows, mr, func(w, m, start, end int) error {
		b := batches[w]
		b.Reset(in.Rows[start:end])
		buf := materializeBatch(b, nil, workerEvals[w], width)
		sz := rowsEncodedSize(buf)
		if err := env.reserve(sc, sz); err != nil {
			return err
		}
		chunks[m], sizes[m] = buf, sz
		return nil
	})
	if err != nil {
		return nil, err
	}
	env.recordColumnar(logical.KindProject, int64(len(chunks)), int64(nRows))
	return appendBlocks(env, newOutput(n, in), chunks, sizes)
}

// projEval is one projection column's evaluator. Expressions that compile
// to batch kernels end-to-end evaluate vectorized; expressions containing
// a function call evaluate row-at-a-time directly into the output — for
// them a vector round-trip would only add copying on top of the same
// per-row work.
type projEval struct {
	batch expr.BatchCompiled
	row   expr.Compiled
}

// compileProjEvals compiles one projection list for one worker.
func compileProjEvals(projs []logical.Proj, schema *storage.Schema) ([]projEval, error) {
	evals := make([]projEval, len(projs))
	for i, p := range projs {
		if expr.HasFunc(p.Expr) {
			c, err := expr.Compile(p.Expr, schema)
			if err != nil {
				return nil, err
			}
			evals[i].row = c
			continue
		}
		c, err := expr.CompileBatch(p.Expr, schema)
		if err != nil {
			return nil, err
		}
		evals[i].batch = c
	}
	return evals, nil
}

// materializeBatch evaluates the projection list over (b, sel) and carves
// the output rows out of one flat value slice. The rows alias the slice;
// they are immutable once returned, like every materialized row.
func materializeBatch(b *expr.Batch, sel []int32, evals []projEval, width int) []storage.Row {
	nOut := b.Len()
	if sel != nil {
		nOut = len(sel)
	}
	flat := make([]storage.Value, nOut*width)
	inRows := b.Rows()
	for k := range evals {
		if ev := evals[k].batch; ev != nil {
			vec := ev(b, sel)
			for j := 0; j < nOut; j++ {
				flat[j*width+k] = vec.Value(j)
			}
		} else if sel == nil {
			for j := 0; j < nOut; j++ {
				flat[j*width+k] = evals[k].row(inRows[j])
			}
		} else {
			for j, i := range sel {
				flat[j*width+k] = evals[k].row(inRows[i])
			}
		}
	}
	rows := make([]storage.Row, nOut)
	for j := range rows {
		rows[j] = storage.Row(flat[j*width : (j+1)*width : (j+1)*width])
	}
	return rows
}

// rowBuckets records, per morsel, which row indexes land in each hash
// partition. Concatenating one partition's lists across morsels (morsels
// are input-ordered) visits that partition's rows in global input order.
type rowBuckets [partitions][]int32

func runJoinMorsel(n *logical.Node, env *Env, left, right *storage.Table) (*storage.Table, error) {
	lIdx, rIdx, err := joinKeyIndexes(n, left, right)
	if err != nil {
		return nil, err
	}
	workers := env.workerCount()
	mr := env.morselRows()
	sc := env.scope()
	defer sc.Release()

	// Phase 1: hash both sides in parallel, bucketing the build side. Key
	// hashing is column-wise: each morsel transposes its key columns into
	// typed vectors and folds them into one Value.HashInto chain per row
	// (keyHasher), which is byte-equivalent to the serial per-row chain.
	if err := env.reserve(sc, int64(len(right.Rows))*(hashCost+idxCost)+int64(len(left.Rows))*(hashCost+1)); err != nil {
		return nil, err
	}
	hashers := make([]keyHasher, workers)
	rHash := make([]uint64, len(right.Rows))
	rBuckets := make([]rowBuckets, morselCount(len(right.Rows), mr))
	err = forEachMorsel(env, "join-hash", workers, len(right.Rows), mr, func(w, m, start, end int) error {
		hs, ok := hashers[w].hashWindow(right.Rows[start:end], right.Schema, rIdx)
		var b rowBuckets
		for j, h := range hs {
			if !ok[j] {
				continue // NULL keys never match
			}
			i := start + j
			rHash[i] = h
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		rBuckets[m] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	lHash := make([]uint64, len(left.Rows))
	lOK := make([]bool, len(left.Rows))
	err = forEachMorsel(env, "join-hash", workers, len(left.Rows), mr, func(w, _, start, end int) error {
		hs, ok := hashers[w].hashWindow(left.Rows[start:end], left.Schema, lIdx)
		// Hash slots of NULL-keyed rows hold unspecified values; the probe
		// only reads lHash[i] when lOK[i] is true.
		copy(lHash[start:end], hs)
		copy(lOK[start:end], ok)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: per-partition builds. Each partition walks its bucket lists
	// in morsel order, so every per-key row list is in build-input order —
	// exactly the order the serial build produces.
	builds := make([]map[uint64][]storage.Row, partitions)
	err = forEachTask(env, "join-build", workers, partitions, func(_, p int) error {
		m := make(map[uint64][]storage.Row)
		count := 0
		for _, b := range rBuckets {
			for _, i := range b[p] {
				h := rHash[i]
				m[h] = append(m[h], right.Rows[i])
				count++
			}
		}
		if err := env.reserve(sc, refRowCost*int64(count)); err != nil {
			return err
		}
		builds[p] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: probe morsels over the left side, merged in morsel order.
	// Output rows are carved out of per-worker arenas — one value-block
	// allocation per ~hundreds of rows instead of one per match — which is
	// where the join's GC pressure went.
	rWidth := right.Schema.Len()
	leftJoin := n.JoinType == logical.JoinLeft
	arenas := make([]rowArena, workers)
	chunks := make([][]storage.Row, morselCount(len(left.Rows), mr))
	sizes := make([]int64, len(chunks))
	err = forEachMorsel(env, "join-probe", workers, len(left.Rows), mr, func(w, m, start, end int) error {
		arena := &arenas[w]
		var buf []storage.Row
		for i := start; i < end; i++ {
			lrow := left.Rows[i]
			matched := false
			if lOK[i] {
				h := lHash[i]
				for _, rrow := range builds[h&(partitions-1)][h] {
					if keysEqual(lrow, rrow, lIdx, rIdx) {
						matched = true
						nr := arena.alloc(len(lrow) + rWidth)
						nr = append(nr, lrow...)
						nr = append(nr, rrow...)
						buf = append(buf, nr)
					}
				}
			}
			if !matched && leftJoin {
				nr := arena.alloc(len(lrow) + rWidth)
				nr = append(nr, lrow...)
				for j := 0; j < rWidth; j++ {
					nr = append(nr, storage.Null)
				}
				buf = append(buf, nr)
			}
		}
		sz := rowsEncodedSize(buf)
		if err := env.reserve(sc, sz); err != nil {
			return err
		}
		chunks[m], sizes[m] = buf, sz
		return nil
	})
	if err != nil {
		return nil, err
	}
	env.recordColumnar(logical.KindJoin,
		int64(morselCount(len(right.Rows), mr)+2*morselCount(len(left.Rows), mr)),
		int64(len(left.Rows)+len(right.Rows)))
	return appendBlocks(env, newOutput(n, left, right), chunks, sizes)
}

// appendTaggedKey appends a kind tag byte then the value's bytes, so
// values of different kinds — NULL vs the literal string "NULL", the int 1
// vs the string "1" — never collide in a distinct or group key. Both
// engines key through it, which keeps them byte-identical on the edge
// where the morsel engine's kind-tagged hash partitioning would otherwise
// split rows an untagged key conflates.
func appendTaggedKey(b []byte, v storage.Value) []byte {
	return appendValueKey(append(b, byte(v.Kind)), v)
}

// appendValueKey appends exactly the bytes of v.String(); the byte-buffer
// form lets group/distinct keys be built and looked up without per-row
// string allocations (map reads on string(buf) do not allocate).
func appendValueKey(b []byte, v storage.Value) []byte {
	switch v.Kind {
	case storage.KindInt:
		return strconv.AppendInt(b, v.I, 10)
	case storage.KindFloat:
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case storage.KindString:
		return append(b, v.S...)
	case storage.KindBool:
		if v.I != 0 {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	default:
		return append(b, "NULL"...)
	}
}

// distinctRowsEqual reports whether two rows are the same distinct key.
// It is value-wise kind-tagged equality — exactly the relation induced by
// the serial engine's appendTaggedKey strings (kind byte + exact value
// representation): numerics never equal strings, Int 1 never equals Float
// 1.0, floats compare by bit pattern except that every NaN is one key, and
// ±0.0 are distinct keys (their decimal forms differ).
func distinctRowsEqual(a, b storage.Row) bool {
	for i := range a {
		if !valueKeyEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// valueKeyEqual is the per-value leg of distinctRowsEqual: same tagged key.
func valueKeyEqual(va, vb storage.Value) bool {
	if va.Kind != vb.Kind {
		return false
	}
	switch va.Kind {
	case storage.KindInt, storage.KindBool:
		return va.I == vb.I
	case storage.KindString:
		return va.S == vb.S
	case storage.KindFloat:
		return math.Float64bits(va.F) == math.Float64bits(vb.F) ||
			(math.IsNaN(va.F) && math.IsNaN(vb.F))
	}
	return true
}

func runDistinctMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	nRows := len(in.Rows)
	workers := opWorkers(env, nRows)
	mr := env.morselRows()
	sc := env.scope()
	defer sc.Release()
	// Phase 1: hash whole rows in parallel morsels with the fast internal
	// mix hash (Value.MixInto) — row-major, since every column participates
	// and a transpose would only add copying. NULL values fold in like any
	// other (a NULL is a real distinct key), and the dedup pass verifies
	// hash collisions value-wise, so the hash needs no other property than
	// "tagged-key-equal rows hash equal".
	if err := env.reserve(sc, hashCost*int64(nRows)); err != nil {
		return nil, err
	}
	hashes := make([]uint64, nRows)
	err := forEachMorsel(env, "distinct-hash", workers, nRows, mr, func(_, _, start, end int) error {
		for i := start; i < end; i++ {
			h := storage.HashSeed
			for _, v := range in.Rows[i] {
				h = v.MixInto(h)
			}
			hashes[i] = h
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	env.recordColumnar(logical.KindDistinct, int64(morselCount(nRows, mr)), int64(nRows))
	// Phase 2: one ordered dedup pass keyed by the precomputed 64-bit
	// hashes — first-seen order IS input order, so no partition merge or
	// position sort is needed. Rows that collide on the full hash are
	// verified value-wise; the overflow map stays empty in practice, so the
	// common path is a single integer-keyed probe per row, with no per-row
	// key strings. That is strictly less per-row work than the serial
	// engine's tagged-key build, which is where the distinct speedup on
	// low-core machines comes from (hashing still parallelizes above).
	first := make(map[uint64]int32, nRows/4+16)
	var overflow map[uint64][]int32
	out := newOutput(n, in)
	kept := 0
	for i, row := range in.Rows {
		if i%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
			if err := env.reserve(sc, (hashCost+idxCost)*int64(kept)); err != nil {
				return nil, err
			}
			kept = 0
		}
		h := hashes[i]
		if r0, ok := first[h]; ok {
			if distinctRowsEqual(row, in.Rows[r0]) {
				continue
			}
			dup := false
			for _, r := range overflow[h] {
				if distinctRowsEqual(row, in.Rows[r]) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if overflow == nil {
				overflow = make(map[uint64][]int32)
			}
			overflow[h] = append(overflow[h], int32(i))
		} else {
			first[h] = int32(i)
		}
		kept++
		out.MustAppend(row)
	}
	return out, nil
}

func runSortMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	nK := len(n.SortKeys)
	workerKeys := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, nK)
		for i, k := range n.SortKeys {
			c, err := expr.Compile(k.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			evals[i] = c
		}
		workerKeys[w] = evals
	}
	sc := env.scope()
	defer sc.Release()
	// Precompute sort keys in parallel: n evaluations instead of the
	// comparator's n·log n.
	if err := env.reserve(sc, int64(len(in.Rows))*(valueCost*int64(nK)+idxCost)); err != nil {
		return nil, err
	}
	keys := make([]storage.Value, len(in.Rows)*nK)
	err := forEachMorsel(env, "sort-keys", workers, len(in.Rows), env.morselRows(), func(w, _, start, end int) error {
		evals := workerKeys[w]
		for i := start; i < end; i++ {
			kv := keys[i*nK : i*nK+nK]
			for k, ev := range evals {
				kv[k] = ev(in.Rows[i])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Transpose the precomputed keys into one typed vector per key column:
	// the comparator then runs tight per-kind loops (CompareAt) instead of
	// switching on Value.Kind at every comparison. A mixed-kind column
	// degrades to generic storage, whose CompareAt falls back to
	// storage.Compare — orderings are digest-identical to the serial
	// comparator either way.
	if err := env.reserve(sc, int64(len(in.Rows))*vecKeyCost*int64(nK)); err != nil {
		return nil, err
	}
	keyCols := make([]*storage.Vector, nK)
	for k := 0; k < nK; k++ {
		kind := storage.KindInt
		for i := 0; i < len(in.Rows); i++ {
			if kv := keys[i*nK+k]; kv.Kind != storage.KindNull {
				kind = kv.Kind
				break
			}
		}
		vec := storage.NewVector(kind)
		for i := 0; i < len(in.Rows); i++ {
			if i%cancelPollRows == cancelPollRows-1 {
				if err := env.cancelErr(); err != nil {
					return nil, err
				}
			}
			vec.Append(keys[i*nK+k])
		}
		keyCols[k] = vec
	}
	idx := make([]int32, len(in.Rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	// The comparator polls cancellation every cancelPollRows comparisons:
	// the sort itself is the one phase that cannot stop at a morsel
	// boundary, so this bounds its residual work after a cancel.
	polled := 0
	var cancelled error
	sort.SliceStable(idx, func(a, b int) bool {
		if polled++; polled >= cancelPollRows && cancelled == nil {
			polled = 0
			cancelled = env.cancelErr()
		}
		ia, ib := idx[a], idx[b]
		for k := range n.SortKeys {
			c := keyCols[k].CompareAt(int(ia), int(ib))
			if n.SortKeys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		// Same full-row tie-break as the serial engine; beyond it the
		// stable sort preserves input order, matching serial exactly.
		return compareRowsFull(in.Rows[ia], in.Rows[ib]) < 0
	})
	if cancelled != nil {
		return nil, cancelled
	}
	out := newOutput(n, in)
	for j, i := range idx {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		out.MustAppend(in.Rows[i])
	}
	return out, nil
}

// Morsel-engine operators. Every operator here carries the same
// determinism contract: its output is byte-identical to the legacy serial
// operator at any worker count and any morsel size. Filter/Project merge
// per-morsel buffers in morsel order; Join partitions its build side by key
// hash but keeps every per-key row list in build-input order; Distinct and
// Sort recover the serial order from recorded input positions.
//
// Governance contract: operators charge the query's memory ledger (when
// one is attached) as their transient state grows — chunk buffers, hash
// partitions, precomputed key arrays — and release it once the output is
// materialized; a reservation over the limit aborts the operator with
// govern.ErrMemLimit. Merge loops poll cancellation every cancelPollRows
// rows. With governance disabled every charge and poll is a nil no-op and
// results are byte-identical to the ungoverned engine.
package exec

import (
	"sort"
	"strconv"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// partitions is the fixed fan-out of the partitioned hash Join, Aggregate
// and Distinct. It is a power of two so partition assignment is a mask, and
// it is independent of the worker count so results cannot drift with
// parallelism.
const partitions = 16

// Ledger charge approximations for transient operator state. Referenced
// rows are charged per retained reference (the rows themselves belong to
// the input table); newly built rows are charged at their encoded size.
const (
	refRowCost = 8  // bytes per retained row reference
	idxCost    = 4  // bytes per int32 row index
	hashCost   = 8  // bytes per uint64 row hash
	valueCost  = 24 // bytes per precomputed storage.Value (keys)
	groupCost  = 64 // fixed overhead per hash-table group entry
)

// rowsEncodedSize sums the encoded size of newly materialized rows.
func rowsEncodedSize(rows []storage.Row) int64 {
	var n int64
	for _, r := range rows {
		n += r.EncodedSize()
	}
	return n
}

// compileWorkers compiles e once per worker (Compiled evaluators are
// single-goroutine).
func compileWorkers(e expr.Expr, schema *storage.Schema, workers int) ([]expr.Compiled, error) {
	out := make([]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		c, err := expr.Compile(e, schema)
		if err != nil {
			return nil, err
		}
		out[w] = c
	}
	return out, nil
}

// appendChunks merges per-morsel buffers in morsel order, polling
// cancellation as it goes.
func appendChunks(env *Env, out *storage.Table, chunks [][]storage.Row) (*storage.Table, error) {
	sincePoll := 0
	for _, c := range chunks {
		for _, r := range c {
			out.MustAppend(r)
		}
		sincePoll += len(c)
		if sincePoll >= cancelPollRows {
			sincePoll = 0
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func runFilterMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	preds, err := compileWorkers(n.Pred, in.Schema, workers)
	if err != nil {
		return nil, err
	}
	sc := env.scope()
	defer sc.Release()
	chunks := make([][]storage.Row, morselCount(len(in.Rows), env.morselRows()))
	err = forEachMorsel(env, "filter", workers, len(in.Rows), env.morselRows(), func(w, m, start, end int) error {
		pred := preds[w]
		var buf []storage.Row
		for _, row := range in.Rows[start:end] {
			if v := pred(row); !v.IsNull() && v.Bool() {
				buf = append(buf, row)
			}
		}
		if err := env.reserve(sc, refRowCost*int64(len(buf))); err != nil {
			return err
		}
		chunks[m] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return appendChunks(env, newOutput(n, in), chunks)
}

func runProjectMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	workerEvals := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, len(n.Projs))
		for i, p := range n.Projs {
			c, err := expr.Compile(p.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			evals[i] = c
		}
		workerEvals[w] = evals
	}
	sc := env.scope()
	defer sc.Release()
	chunks := make([][]storage.Row, morselCount(len(in.Rows), env.morselRows()))
	err := forEachMorsel(env, "project", workers, len(in.Rows), env.morselRows(), func(w, m, start, end int) error {
		evals := workerEvals[w]
		buf := make([]storage.Row, 0, end-start)
		for _, row := range in.Rows[start:end] {
			nr := make(storage.Row, len(evals))
			for i, e := range evals {
				nr[i] = e(row)
			}
			buf = append(buf, nr)
		}
		if err := env.reserve(sc, rowsEncodedSize(buf)); err != nil {
			return err
		}
		chunks[m] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return appendChunks(env, newOutput(n, in), chunks)
}

// rowBuckets records, per morsel, which row indexes land in each hash
// partition. Concatenating one partition's lists across morsels (morsels
// are input-ordered) visits that partition's rows in global input order.
type rowBuckets [partitions][]int32

func runJoinMorsel(n *logical.Node, env *Env, left, right *storage.Table) (*storage.Table, error) {
	lIdx, rIdx, err := joinKeyIndexes(n, left, right)
	if err != nil {
		return nil, err
	}
	workers := env.workerCount()
	mr := env.morselRows()
	sc := env.scope()
	defer sc.Release()

	// Phase 1: hash both sides in parallel, bucketing the build side.
	if err := env.reserve(sc, int64(len(right.Rows))*(hashCost+idxCost)+int64(len(left.Rows))*(hashCost+1)); err != nil {
		return nil, err
	}
	rHash := make([]uint64, len(right.Rows))
	rBuckets := make([]rowBuckets, morselCount(len(right.Rows), mr))
	err = forEachMorsel(env, "join-hash", workers, len(right.Rows), mr, func(_, m, start, end int) error {
		var b rowBuckets
		for i := start; i < end; i++ {
			h, ok := hashKeys(right.Rows[i], rIdx)
			if !ok {
				continue // NULL keys never match
			}
			rHash[i] = h
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		rBuckets[m] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	lHash := make([]uint64, len(left.Rows))
	lOK := make([]bool, len(left.Rows))
	err = forEachMorsel(env, "join-hash", workers, len(left.Rows), mr, func(_, _, start, end int) error {
		for i := start; i < end; i++ {
			lHash[i], lOK[i] = hashKeys(left.Rows[i], lIdx)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: per-partition builds. Each partition walks its bucket lists
	// in morsel order, so every per-key row list is in build-input order —
	// exactly the order the serial build produces.
	builds := make([]map[uint64][]storage.Row, partitions)
	err = forEachTask(env, "join-build", workers, partitions, func(_, p int) error {
		m := make(map[uint64][]storage.Row)
		count := 0
		for _, b := range rBuckets {
			for _, i := range b[p] {
				h := rHash[i]
				m[h] = append(m[h], right.Rows[i])
				count++
			}
		}
		if err := env.reserve(sc, refRowCost*int64(count)); err != nil {
			return err
		}
		builds[p] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: probe morsels over the left side, merged in morsel order.
	rWidth := right.Schema.Len()
	leftJoin := n.JoinType == logical.JoinLeft
	chunks := make([][]storage.Row, morselCount(len(left.Rows), mr))
	err = forEachMorsel(env, "join-probe", workers, len(left.Rows), mr, func(_, m, start, end int) error {
		var buf []storage.Row
		for i := start; i < end; i++ {
			lrow := left.Rows[i]
			matched := false
			if lOK[i] {
				h := lHash[i]
				for _, rrow := range builds[h&(partitions-1)][h] {
					if keysEqual(lrow, rrow, lIdx, rIdx) {
						matched = true
						nr := make(storage.Row, 0, len(lrow)+rWidth)
						nr = append(nr, lrow...)
						nr = append(nr, rrow...)
						buf = append(buf, nr)
					}
				}
			}
			if !matched && leftJoin {
				nr := make(storage.Row, 0, len(lrow)+rWidth)
				nr = append(nr, lrow...)
				for j := 0; j < rWidth; j++ {
					nr = append(nr, storage.Null)
				}
				buf = append(buf, nr)
			}
		}
		if err := env.reserve(sc, rowsEncodedSize(buf)); err != nil {
			return err
		}
		chunks[m] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return appendChunks(env, newOutput(n, left, right), chunks)
}

// appendTaggedKey appends a kind tag byte then the value's bytes, so
// values of different kinds — NULL vs the literal string "NULL", the int 1
// vs the string "1" — never collide in a distinct or group key. Both
// engines key through it, which keeps them byte-identical on the edge
// where the morsel engine's kind-tagged hash partitioning would otherwise
// split rows an untagged key conflates.
func appendTaggedKey(b []byte, v storage.Value) []byte {
	return appendValueKey(append(b, byte(v.Kind)), v)
}

// appendValueKey appends exactly the bytes of v.String(); the byte-buffer
// form lets group/distinct keys be built and looked up without per-row
// string allocations (map reads on string(buf) do not allocate).
func appendValueKey(b []byte, v storage.Value) []byte {
	switch v.Kind {
	case storage.KindInt:
		return strconv.AppendInt(b, v.I, 10)
	case storage.KindFloat:
		return strconv.AppendFloat(b, v.F, 'g', -1, 64)
	case storage.KindString:
		return append(b, v.S...)
	case storage.KindBool:
		if v.I != 0 {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	default:
		return append(b, "NULL"...)
	}
}

func runDistinctMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	mr := env.morselRows()
	sc := env.scope()
	defer sc.Release()
	// Phase 1: hash whole rows, bucketing by partition.
	if err := env.reserve(sc, int64(len(in.Rows))*(hashCost+idxCost)); err != nil {
		return nil, err
	}
	buckets := make([]rowBuckets, morselCount(len(in.Rows), mr))
	hashes := make([]uint64, len(in.Rows))
	err := forEachMorsel(env, "distinct-hash", workers, len(in.Rows), mr, func(_, m, start, end int) error {
		var b rowBuckets
		for i := start; i < end; i++ {
			h := storage.HashSeed
			for _, v := range in.Rows[i] {
				h = v.HashInto(h)
			}
			hashes[i] = h
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		buckets[m] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2: per-partition first-seen dedup over input-ordered buckets.
	kept := make([][]int32, partitions)
	err = forEachTask(env, "distinct-dedup", workers, partitions, func(_, p int) error {
		seen := make(map[string]struct{})
		var keyBuf []byte
		var keyBytes int64
		var local []int32
		for _, b := range buckets {
			for _, i := range b[p] {
				keyBuf = keyBuf[:0]
				for _, v := range in.Rows[i] {
					keyBuf = appendTaggedKey(keyBuf, v)
					keyBuf = append(keyBuf, 0)
				}
				if _, ok := seen[string(keyBuf)]; ok {
					continue
				}
				seen[string(keyBuf)] = struct{}{}
				keyBytes += int64(len(keyBuf))
				local = append(local, i)
			}
		}
		if err := env.reserve(sc, keyBytes+idxCost*int64(len(local))); err != nil {
			return err
		}
		kept[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 3: merge survivors by input position — global first-seen order.
	var all []int32
	for _, k := range kept {
		all = append(all, k...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	out := newOutput(n, in)
	for j, i := range all {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		out.MustAppend(in.Rows[i])
	}
	return out, nil
}

func runSortMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	nK := len(n.SortKeys)
	workerKeys := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, nK)
		for i, k := range n.SortKeys {
			c, err := expr.Compile(k.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			evals[i] = c
		}
		workerKeys[w] = evals
	}
	sc := env.scope()
	defer sc.Release()
	// Precompute sort keys in parallel: n evaluations instead of the
	// comparator's n·log n.
	if err := env.reserve(sc, int64(len(in.Rows))*(valueCost*int64(nK)+idxCost)); err != nil {
		return nil, err
	}
	keys := make([]storage.Value, len(in.Rows)*nK)
	err := forEachMorsel(env, "sort-keys", workers, len(in.Rows), env.morselRows(), func(w, _, start, end int) error {
		evals := workerKeys[w]
		for i := start; i < end; i++ {
			kv := keys[i*nK : i*nK+nK]
			for k, ev := range evals {
				kv[k] = ev(in.Rows[i])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	idx := make([]int32, len(in.Rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	// The comparator polls cancellation every cancelPollRows comparisons:
	// the sort itself is the one phase that cannot stop at a morsel
	// boundary, so this bounds its residual work after a cancel.
	polled := 0
	var cancelled error
	sort.SliceStable(idx, func(a, b int) bool {
		if polled++; polled >= cancelPollRows && cancelled == nil {
			polled = 0
			cancelled = env.cancelErr()
		}
		ia, ib := idx[a], idx[b]
		for k := range n.SortKeys {
			c := storage.Compare(keys[int(ia)*nK+k], keys[int(ib)*nK+k])
			if n.SortKeys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		// Same full-row tie-break as the serial engine; beyond it the
		// stable sort preserves input order, matching serial exactly.
		return compareRowsFull(in.Rows[ia], in.Rows[ib]) < 0
	})
	if cancelled != nil {
		return nil, cancelled
	}
	out := newOutput(n, in)
	for j, i := range idx {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		out.MustAppend(in.Rows[i])
	}
	return out, nil
}

package exec

import (
	"testing"

	"miso/internal/logical"
	"miso/internal/storage"
)

// Throwaway review test: serial vs morsel DISTINCT when a string column
// holds both a real NULL and the literal string "NULL".
func TestReviewNullStringDistinct(t *testing.T) {
	schema := storage.NewSchema([]storage.Column{{Name: "s", Type: storage.KindString}})
	in := storage.NewTable("in", schema)
	in.MustAppend(storage.Row{storage.Null})
	in.MustAppend(storage.Row{storage.StringValue("NULL")})

	n := &logical.Node{Kind: logical.KindDistinct}

	serialOut, err := runDistinct(n, in)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Workers: 4}
	morselOut, err := runDistinctMorsel(n, env, in)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial rows=%d morsel rows=%d", len(serialOut.Rows), len(morselOut.Rows))
	if len(serialOut.Rows) != len(morselOut.Rows) {
		t.Fatalf("divergence: serial=%d morsel=%d", len(serialOut.Rows), len(morselOut.Rows))
	}
}

package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"miso/internal/data"
	"miso/internal/logical"
	"miso/internal/storage"
)

var scannerFields = []scanField{
	{name: "id", col: 0, kind: storage.KindInt},
	{name: "f", col: 1, kind: storage.KindFloat},
	{name: "s", col: 2, kind: storage.KindString},
	{name: "b", col: 3, kind: storage.KindBool},
	{name: "si", col: 4, kind: storage.KindInt}, // string-typed source coerced to int
}

// trickyLines covers everything the fast scanner must either parse exactly
// or refuse (returning false so the line goes to the real decoder).
var trickyLines = []string{
	`{"id":1,"f":2.5,"s":"plain","b":true,"si":"42"}`,
	`{ "id" : 1 , "f" : 2.5 , "s" : "ws" , "b" : false }`,
	`{}`,
	`{"id":null,"f":null,"s":null,"b":null,"si":null}`,
	`{"unrelated":"x","id":7}`,
	`{"id":1,"id":2}`,                       // duplicate key: last wins
	`{"s":"esc\"aped"}`,                     // escape: fallback
	`{"s":"uni\u00e9code"}`,                 // unicode escape: fallback
	`{"s":"caf\u00e9","id":3}`,              // escape later in line
	"{\"s\":\"caf\u00e9\"}",                 // raw multibyte UTF-8: fast path
	"{\"s\":\"bad\xff\xfe\"}",               // invalid UTF-8: fallback (U+FFFD substitution)
	`{"nested":{"a":1},"id":5}`,             // nested object: fallback
	`{"arr":[1,2,3],"id":5}`,                // array: fallback
	`{"id":9223372036854775807}`,            // max int64
	`{"id":9223372036854775808}`,            // overflows int64: float path
	`{"id":12.9}`,                           // float into int column
	`{"id":1e3,"f":1e3}`,                    // exponents
	`{"f":-0.5,"id":-7}`,                    // negatives
	`{"id":01}`,                             // invalid JSON number: malformed line
	`{"id":+1}`,                             // invalid number
	`{"id":.5}`,                             // invalid number
	`{"id":1.}`,                             // invalid number
	`{"f":1.25e-2}`,                         // frac + exp
	`{"b":"true","s":123,"si":77}`,          // mistyped fields
	`{"si":"not a number"}`,                 // failed string→int coercion
	`{"id":1}trailing garbage`,              // bytes after object: ignored
	`{"id":1} `,                             // trailing space
	`  {"id":1}`,                            // leading space
	`not json at all`,                       // malformed: skipped
	`{"id":`,                                // truncated
	`{"id"}`,                                // missing value
	`{"id":1,}`,                             // trailing comma: malformed
	`{"s":"unterminated`,                    // unterminated string
	`{"k\u0065y":1,"id":2}`,                 // escaped key: fallback
	`{"s":""}`,                              // empty string
	`{"f":0,"id":0}`,                        // zeros
	"{\"s\":\"tab\tchar\"}",                 // control char in string: fallback
	`[1,2,3]`,                               // non-object root: malformed for extract
	`{"b":true,"extra":false,"id":3,"f":7}`, // wanted fields after skipped ones
}

// TestFastScanMatchesFallback is the scanner's equivalence property: for
// every line, whenever the fast path accepts, its row must equal the
// fallback decoder's exactly; and the fast path must accept only when the
// fallback also accepts.
func TestFastScanMatchesFallback(t *testing.T) {
	for _, line := range trickyLines {
		fastRow := make(storage.Row, len(scannerFields))
		slowRow := make(storage.Row, len(scannerFields))
		fastOK := fastScanLine(line, scannerFields, fastRow)
		slowOK := fallbackScanLine(line, scannerFields, slowRow)
		if fastOK && !slowOK {
			t.Errorf("line %q: fast path accepted a line the decoder rejects", line)
			continue
		}
		if fastOK && !reflect.DeepEqual(fastRow, slowRow) {
			t.Errorf("line %q:\n fast %v\n slow %v", line, fastRow, slowRow)
		}
	}
}

// TestFastScanMatchesFallbackOnGeneratedLogs runs the same equivalence over
// every line of the real generated logs — the data the fast path exists
// for — and requires a high fast-path acceptance rate there.
func TestFastScanMatchesFallbackOnGeneratedLogs(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for _, logName := range []string{data.TweetsLog, data.CheckinsLog, data.LandmarksLog} {
		log, err := cat.Log(logName)
		if err != nil {
			t.Fatalf("log %s: %v", logName, err)
		}
		fields := make([]scanField, log.FieldTypes.Len())
		for i, c := range log.FieldTypes.Columns {
			fields[i] = scanField{name: c.Name, col: i, kind: c.Type}
		}
		accepted := 0
		for _, line := range log.Lines {
			fastRow := make(storage.Row, len(fields))
			slowRow := make(storage.Row, len(fields))
			fastOK := fastScanLine(line, fields, fastRow)
			slowOK := fallbackScanLine(line, fields, slowRow)
			if fastOK {
				accepted++
				if !slowOK || !reflect.DeepEqual(fastRow, slowRow) {
					t.Fatalf("%s line %q: fast/slow divergence", logName, line)
				}
			}
		}
		if frac := float64(accepted) / float64(len(log.Lines)); frac < 0.99 {
			t.Errorf("%s: fast path accepted only %.1f%% of generated lines", logName, frac*100)
		}
	}
}

// TestFastScanFuzzEquivalence throws seeded random mutations of valid JSON
// at both paths; acceptance implies exact agreement.
func TestFastScanFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte(`{}[]":,.\0123456789eE+-truefalsenull aé` + "\x00\xff\t")
	for i := 0; i < 5000; i++ {
		n := 1 + rng.Intn(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		line := string(buf)
		fastRow := make(storage.Row, len(scannerFields))
		slowRow := make(storage.Row, len(scannerFields))
		if fastScanLine(line, scannerFields, fastRow) {
			if !fallbackScanLine(line, scannerFields, slowRow) {
				t.Fatalf("fuzz line %q: fast accepted, decoder rejected", line)
			}
			if !reflect.DeepEqual(fastRow, slowRow) {
				t.Fatalf("fuzz line %q:\n fast %v\n slow %v", line, fastRow, slowRow)
			}
		}
	}
}

// TestHashKeysZeroAlloc is the allocs/op guard for the rewritten join-key
// hashing: folding key columns through Value.HashInto must not allocate.
func TestHashKeysZeroAlloc(t *testing.T) {
	row := storage.Row{
		storage.IntValue(12345),
		storage.StringValue("restaurant"),
		storage.FloatValue(37.775),
		storage.BoolValue(true),
	}
	idx := []int{0, 1, 2, 3}
	var h uint64
	allocs := testing.AllocsPerRun(1000, func() {
		h, _ = hashKeys(row, idx)
	})
	if allocs != 0 {
		t.Fatalf("hashKeys allocated %.1f objects/op, want 0", allocs)
	}
	if h == 0 {
		t.Fatalf("hashKeys returned 0 for non-null keys")
	}
	// NULL keys report no hash.
	if _, ok := hashKeys(storage.Row{storage.Null}, []int{0}); ok {
		t.Fatalf("NULL key hashed")
	}
}

// TestHashKeysMatchesValueHash pins hashKeys to the documented HashInto
// chain so the partitioned join's bucketing stays stable.
func TestHashKeysMatchesValueHash(t *testing.T) {
	v := storage.StringValue("abc")
	got, ok := hashKeys(storage.Row{v}, []int{0})
	if !ok || got != v.Hash() {
		t.Fatalf("single-key hash %x, want Value.Hash %x", got, v.Hash())
	}
}

// TestDistinctNullVersusLiteralNullString pins the engines' agreement on
// the edge where a string column holds both a real NULL and the literal
// string "NULL": both engines key distinct rows the same way, so their
// outputs must match row for row at any parallelism (folded from the PR 5
// review scratch test, strengthened from a row-count check to full output
// equality).
func TestDistinctNullVersusLiteralNullString(t *testing.T) {
	schema, err := storage.NewSchema(storage.Column{Name: "s", Type: storage.KindString})
	if err != nil {
		t.Fatal(err)
	}
	in := storage.NewTable("in", schema)
	in.MustAppend(storage.Row{storage.Null})
	in.MustAppend(storage.Row{storage.StringValue("NULL")})
	in.MustAppend(storage.Row{storage.StringValue("null")})
	in.MustAppend(storage.Row{storage.Null})
	in.MustAppend(storage.Row{storage.StringValue("NULL")})

	n := &logical.Node{
		Kind:     logical.KindDistinct,
		Children: []*logical.Node{{Kind: logical.KindScan, LogName: "in"}},
	}
	n.SetSchema(schema)
	serialOut, err := runDistinct(n, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		env := &Env{Workers: workers}
		morselOut, err := runDistinctMorsel(n, env, in)
		if err != nil {
			t.Fatal(err)
		}
		if len(morselOut.Rows) != len(serialOut.Rows) {
			t.Fatalf("workers=%d: serial=%d rows, morsel=%d rows", workers, len(serialOut.Rows), len(morselOut.Rows))
		}
		for i := range serialOut.Rows {
			if !reflect.DeepEqual(serialOut.Rows[i], morselOut.Rows[i]) {
				t.Fatalf("workers=%d row %d: serial=%v morsel=%v", workers, i, serialOut.Rows[i], morselOut.Rows[i])
			}
		}
	}
}

package exec_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/logical"
	"miso/internal/storage"
)

func testEnv(t *testing.T) (*storage.Catalog, *exec.Env) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	return cat, env
}

func run(t *testing.T, cat *storage.Catalog, env *exec.Env, sql string) *storage.Table {
	t.Helper()
	plan, err := logical.NewBuilder(cat).BuildSQL(sql)
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	out, err := exec.Run(plan, env)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return out
}

func TestExtractAllRows(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, "SELECT tweet_id FROM tweets")
	log, _ := cat.Log(data.TweetsLog)
	if out.NumRows() != log.NumLines() {
		t.Fatalf("got %d rows, want %d", out.NumRows(), log.NumLines())
	}
}

func TestFilterSelectivity(t *testing.T) {
	cat, env := testEnv(t)
	all := run(t, cat, env, "SELECT tweet_id FROM tweets")
	en := run(t, cat, env, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	if en.NumRows() == 0 || en.NumRows() >= all.NumRows() {
		t.Fatalf("filter not selective: %d of %d", en.NumRows(), all.NumRows())
	}
	// lang='en' appears 3 of 8 times in the generator's distribution.
	frac := float64(en.NumRows()) / float64(all.NumRows())
	if frac < 0.25 || frac > 0.5 {
		t.Errorf("lang='en' fraction %.2f outside [0.25, 0.5]", frac)
	}
}

func TestProjectionExpressions(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, "SELECT retweets * 2 AS dbl, UPPER(lang) AS lg FROM tweets LIMIT 5")
	if out.NumRows() != 5 {
		t.Fatalf("limit: got %d rows", out.NumRows())
	}
	if out.Schema.Index("dbl") != 0 || out.Schema.Index("lg") != 1 {
		t.Fatalf("schema: %s", out.Schema)
	}
	for _, r := range out.Rows {
		if r[0].Kind != storage.KindInt {
			t.Fatalf("dbl kind = %v", r[0].Kind)
		}
		s := r[1].S
		for _, c := range s {
			if c >= 'a' && c <= 'z' {
				t.Fatalf("UPPER produced %q", s)
			}
		}
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env,
		"SELECT c.checkin_id, l.city FROM checkins c JOIN landmarks l ON c.venue_id = l.venue_id")
	// Independently count matches.
	checkins := run(t, cat, env, "SELECT venue_id FROM checkins")
	marks := run(t, cat, env, "SELECT venue_id FROM landmarks")
	count := 0
	for _, cr := range checkins.Rows {
		for _, mr := range marks.Rows {
			if storage.Equal(cr[0], mr[0]) {
				count++
			}
		}
	}
	if out.NumRows() != count {
		t.Fatalf("join rows = %d, nested loop = %d", out.NumRows(), count)
	}
	if count == 0 {
		t.Fatal("join produced no matches; data generator key overlap broken")
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	cat, env := testEnv(t)
	inner := run(t, cat, env,
		"SELECT c.checkin_id FROM checkins c JOIN landmarks l ON c.venue_id = l.venue_id")
	left := run(t, cat, env,
		"SELECT c.checkin_id, l.city FROM checkins c LEFT JOIN landmarks l ON c.venue_id = l.venue_id")
	all := run(t, cat, env, "SELECT checkin_id FROM checkins")
	if left.NumRows() < all.NumRows() {
		t.Fatalf("left join lost rows: %d < %d", left.NumRows(), all.NumRows())
	}
	if left.NumRows() < inner.NumRows() {
		t.Fatalf("left join %d < inner join %d", left.NumRows(), inner.NumRows())
	}
	sawNull := false
	for _, r := range left.Rows {
		if r[1].IsNull() {
			sawNull = true
			break
		}
	}
	if !sawNull {
		t.Error("expected at least one NULL city from unmatched checkins")
	}
}

func TestAggregateGroupCount(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env,
		"SELECT lang, COUNT(*) AS n, AVG(retweets) AS ar FROM tweets GROUP BY lang")
	if out.NumRows() == 0 || out.NumRows() > 8 {
		t.Fatalf("groups = %d, want 1..8", out.NumRows())
	}
	var total int64
	for _, r := range out.Rows {
		total += r[1].I
		if r[2].Kind != storage.KindFloat {
			t.Fatalf("AVG kind = %v", r[2].Kind)
		}
		if r[2].F < 0 || r[2].F > 500 {
			t.Fatalf("AVG out of range: %v", r[2].F)
		}
	}
	log, _ := cat.Log(data.TweetsLog)
	if total != int64(log.NumLines()) {
		t.Fatalf("sum of group counts %d != %d rows", total, log.NumLines())
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	cat, env := testEnv(t)
	all := run(t, cat, env, "SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag")
	some := run(t, cat, env, "SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag HAVING COUNT(*) > 50")
	want := 0
	for _, r := range all.Rows {
		if r[1].I > 50 {
			want++
		}
	}
	if some.NumRows() != want {
		t.Fatalf("HAVING kept %d groups, want %d", some.NumRows(), want)
	}
	for _, r := range some.Rows {
		if r[1].I <= 50 {
			t.Fatalf("group with count %d survived HAVING > 50", r[1].I)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env,
		"SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag ORDER BY n DESC LIMIT 3")
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i := 1; i < out.NumRows(); i++ {
		if out.Rows[i][1].I > out.Rows[i-1][1].I {
			t.Fatalf("not sorted desc: %v then %v", out.Rows[i-1][1], out.Rows[i][1])
		}
	}
}

func TestDistinct(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, "SELECT DISTINCT lang FROM tweets")
	seen := map[string]bool{}
	for _, r := range out.Rows {
		if seen[r[0].S] {
			t.Fatalf("duplicate %q after DISTINCT", r[0].S)
		}
		seen[r[0].S] = true
	}
	if len(seen) == 0 || len(seen) > 8 {
		t.Fatalf("distinct langs = %d", len(seen))
	}
}

func TestUDFSentiment(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env,
		"SELECT tweet_id, SENTIMENT(text) AS s FROM tweets WHERE SENTIMENT(text) > 0")
	if out.NumRows() == 0 {
		t.Fatal("no positive-sentiment tweets found")
	}
	for _, r := range out.Rows {
		if r[1].F <= 0 {
			t.Fatalf("filter leaked sentiment %v", r[1].F)
		}
	}
}

func TestSubqueryJoin(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, `
		SELECT u.user_id, u.n, c.venue_id
		FROM (SELECT user_id, COUNT(*) AS n FROM tweets GROUP BY user_id) u
		JOIN checkins c ON u.user_id = c.user_id
		WHERE u.n > 2`)
	if out.NumRows() == 0 {
		t.Fatal("subquery join empty; user id overlap broken")
	}
	for _, r := range out.Rows {
		if r[1].I <= 2 {
			t.Fatalf("WHERE on subquery column leaked n=%d", r[1].I)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, "SELECT COUNT(DISTINCT user_id) AS u FROM tweets")
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	distinct := run(t, cat, env, "SELECT DISTINCT user_id FROM tweets")
	if out.Rows[0][0].I != int64(distinct.NumRows()) {
		t.Fatalf("COUNT(DISTINCT) = %d, want %d", out.Rows[0][0].I, distinct.NumRows())
	}
}

func TestThreeWayJoinWithUDF(t *testing.T) {
	cat, env := testEnv(t)
	out := run(t, cat, env, `
		SELECT l.city, COUNT(*) AS n, AVG(SENTIMENT(t.text)) AS s
		FROM tweets t
		JOIN checkins c ON t.user_id = c.user_id
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE t.lang = 'en'
		GROUP BY l.city
		ORDER BY n DESC`)
	if out.NumRows() == 0 {
		t.Fatal("three-way join produced nothing")
	}
	if got := out.Schema.Names(); got[0] != "city" || got[1] != "n" || got[2] != "s" {
		t.Fatalf("schema names = %v", got)
	}
}

// Columnar execution support: per-worker scratch for batch-at-a-time
// operators. The morsel operators in this package evaluate expressions over
// typed column vectors (storage.Vector) via expr.BatchCompiled evaluators;
// this file holds the shared glue — reusable key-hash scratch and the
// output-row arena that batches row allocations at operator output
// boundaries.
//
// Everything here is per-worker state: one instance per morsel-pool worker,
// reused across morsels, never shared between goroutines.
package exec

import (
	"miso/internal/storage"
)

// arenaBlockValues sizes the rowArena's allocation blocks. Large enough to
// amortize one make() over hundreds of output rows, small enough that a
// mostly-unused tail block wastes little.
const arenaBlockValues = 4096

// rowArena carves output rows out of shared value blocks, replacing one
// allocation per row with one per block. Blocks are never reused — output
// rows retain them — so the arena may live across morsels; alloc returns a
// zero-length slice with exactly the requested capacity, ready for append.
type rowArena struct {
	blk []storage.Value
	off int
}

func (a *rowArena) alloc(n int) storage.Row {
	if a.off+n > len(a.blk) {
		sz := arenaBlockValues
		if n > sz {
			sz = n
		}
		a.blk = make([]storage.Value, sz)
		a.off = 0
	}
	s := a.blk[a.off : a.off : a.off+n]
	a.off += n
	return s
}

// growU64 returns a length-n slice, reusing s's storage when it is big
// enough.
func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// keyHasher is per-worker scratch for column-wise key hashing: it
// transposes the key columns of a row window into vectors and folds them
// into one FNV-64a chain per row, exactly matching hashKeys' per-row
// Value.HashInto chain. Rows whose key contains a NULL get ok=false (their
// hash slot holds an unspecified value — NULL keys never match).
type keyHasher struct {
	vecs []storage.Vector
	hs   []uint64
	ok   []bool
}

// hashWindow hashes the idx key columns of rows. The returned slices are
// scratch, valid until the next call.
func (kh *keyHasher) hashWindow(rows []storage.Row, schema *storage.Schema, idx []int) ([]uint64, []bool) {
	n := len(rows)
	if kh.vecs == nil {
		kh.vecs = make([]storage.Vector, len(idx))
	}
	kh.hs = growU64(kh.hs, n)
	kh.ok = growBool(kh.ok, n)
	hs, ok := kh.hs[:n], kh.ok[:n]
	for i := range hs {
		hs[i] = storage.HashSeed
		ok[i] = true
	}
	for k, ci := range idx {
		v := &kh.vecs[k]
		v.FromRows(rows, ci, schema.Columns[ci].Type)
		v.NullsInto(ok)
		v.HashChainInto(hs)
	}
	return hs, ok
}

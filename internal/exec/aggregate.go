package exec

import (
	"fmt"
	"sort"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	isInt    bool
	min, max storage.Value
	distinct map[string]bool
	seenAny  bool
}

func newAggStates(aggs []logical.AggSpec) []*aggState {
	states := make([]*aggState, len(aggs))
	for i, a := range aggs {
		states[i] = &aggState{isInt: true}
		if a.Distinct {
			states[i].distinct = map[string]bool{}
		}
	}
	return states
}

// accumulateRow feeds one input row into a group's states. Both engines
// call it with rows in global input order, so per-group accumulation —
// including float SUM/AVG association — is identical between them.
func accumulateRow(aggs []logical.AggSpec, states []*aggState, argEvals []expr.Compiled, row storage.Row) {
	for i, a := range aggs {
		st := states[i]
		if a.Star {
			st.count++
			continue
		}
		v := argEvals[i](row)
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			dk := string(appendTaggedKey(nil, v))
			if st.distinct[dk] {
				continue
			}
			st.distinct[dk] = true
		}
		st.count++
		if f, ok := v.AsFloat(); ok {
			st.sum += f
			if i64, ok := v.AsInt(); ok && v.Kind == storage.KindInt {
				st.sumInt += i64
			} else {
				st.isInt = false
			}
		} else {
			st.isInt = false
		}
		if !st.seenAny {
			st.min, st.max = v, v
			st.seenAny = true
		} else {
			if storage.Compare(v, st.min) < 0 {
				st.min = v
			}
			if storage.Compare(v, st.max) > 0 {
				st.max = v
			}
		}
	}
}

func compileAggArgs(n *logical.Node, schema *storage.Schema) ([]expr.Compiled, error) {
	argEvals := make([]expr.Compiled, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		c, err := expr.Compile(a.Arg, schema)
		if err != nil {
			return nil, err
		}
		argEvals[i] = c
	}
	return argEvals, nil
}

// emptyGlobalAggRow handles a global aggregate over an empty input, which
// still yields one row.
func emptyGlobalAggRow(n *logical.Node, out *storage.Table) *storage.Table {
	row := make(storage.Row, n.Schema().Len())
	for i, a := range n.Aggs {
		if a.Func == "COUNT" {
			row[i] = storage.IntValue(0)
		} else {
			row[i] = storage.Null
		}
	}
	out.MustAppend(row)
	return out
}

func runAggregate(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	groupEvals := make([]expr.Compiled, len(n.GroupBy))
	for i, g := range n.GroupBy {
		c, err := expr.Compile(g.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		groupEvals[i] = c
	}
	argEvals, err := compileAggArgs(n, in.Schema)
	if err != nil {
		return nil, err
	}

	type group struct {
		key    storage.Row
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output order: first-seen
	var keyBuf []byte

	for _, row := range in.Rows {
		keyBuf = keyBuf[:0]
		keyVals := make(storage.Row, len(groupEvals))
		for i, g := range groupEvals {
			keyVals[i] = g(row)
			keyBuf = appendTaggedKey(keyBuf, keyVals[i])
			keyBuf = append(keyBuf, 0)
		}
		k := string(keyBuf)
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: keyVals, states: newAggStates(n.Aggs)}
			groups[k] = grp
			order = append(order, k)
		}
		accumulateRow(n.Aggs, grp.states, argEvals, row)
	}

	out := newOutput(n, in)
	if len(order) == 0 && len(n.GroupBy) == 0 {
		return emptyGlobalAggRow(n, out), nil
	}
	for _, k := range order {
		grp := groups[k]
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

// groupColIndexes resolves every group expression to its input column
// index when all of them are bare column references — the common case — or
// returns nil otherwise. A global aggregate (no GROUP BY) resolves to an
// empty non-nil slice and takes the fast path trivially.
func groupColIndexes(groupBy []logical.Proj, schema *storage.Schema) []int {
	idx := make([]int, 0, len(groupBy))
	for _, g := range groupBy {
		cr, ok := g.Expr.(*expr.ColRef)
		if !ok {
			return nil
		}
		c := schema.Index(cr.Name)
		if c < 0 {
			return nil
		}
		idx = append(idx, c)
	}
	return idx
}

// runAggregateMorsel is the morsel engine's hash aggregation, in three
// phases. Phase 1 computes each row's group-key mix hash in parallel
// morsels and buckets rows into a fixed number of partitions — reading key
// values straight out of the rows when every group expression is a bare
// column reference, and batch-evaluating the expressions over column
// vectors (scattering the results into a key cache) otherwise. Phase 2
// runs the partitions in parallel; each partition visits its rows in
// global input order, so every group accumulates exactly as it would
// serially — float sums associate identically. Group lookup is a single
// integer-keyed probe on the precomputed hash with value-wise collision
// verification (the same kind-tagged relation the serial engine's
// tagged-key strings induce), instead of rebuilding a key string per row.
// Phase 3 merges groups ordered by first-seen input row, recovering the
// serial engine's first-seen output order.
func runAggregateMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	nRows := len(in.Rows)
	mr := env.morselRows()
	workers := env.workerCount()
	nG := len(n.GroupBy)
	colIdx := groupColIndexes(n.GroupBy, in.Schema)

	workerArgs := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		args, err := compileAggArgs(n, in.Schema)
		if err != nil {
			return nil, err
		}
		workerArgs[w] = args
	}

	sc := env.scope()
	defer sc.Release()
	hashes := make([]uint64, nRows)
	buckets := make([]rowBuckets, morselCount(nRows, mr))
	var keyVals []storage.Value
	if colIdx != nil {
		// Fast path: group keys are input columns, so each morsel hashes
		// them row-major straight out of the rows — no batch evaluation,
		// no key cache.
		if err := env.reserve(sc, int64(nRows)*(idxCost+hashCost)); err != nil {
			return nil, err
		}
		err := forEachMorsel(env, "agg-hash", workers, nRows, mr, func(_, m, start, end int) error {
			hs := hashes[start:end]
			var bkt rowBuckets
			for j := range hs {
				row := in.Rows[start+j]
				h := storage.HashSeed
				for _, c := range colIdx {
					h = row[c].MixInto(h)
				}
				hs[j] = h
				p := int(h & (partitions - 1))
				bkt[p] = append(bkt[p], int32(start+j))
			}
			buckets[m] = bkt
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		type evalSet struct {
			groups []expr.BatchCompiled
			batch  *expr.Batch
		}
		sets := make([]evalSet, workers)
		for w := 0; w < workers; w++ {
			groups := make([]expr.BatchCompiled, nG)
			for i, g := range n.GroupBy {
				c, err := expr.CompileBatch(g.Expr, in.Schema)
				if err != nil {
					return nil, err
				}
				groups[i] = c
			}
			sets[w] = evalSet{groups: groups, batch: expr.NewBatch(in.Schema)}
		}
		if err := env.reserve(sc, int64(nRows)*(valueCost*int64(nG)+idxCost+hashCost)); err != nil {
			return nil, err
		}
		keyVals = make([]storage.Value, nRows*nG)
		err := forEachMorsel(env, "agg-hash", workers, nRows, mr, func(w, m, start, end int) error {
			set := &sets[w]
			b := set.batch
			b.Reset(in.Rows[start:end])
			nLoc := end - start
			hs := hashes[start:end]
			for j := range hs {
				hs[j] = storage.HashSeed
			}
			// Group keys are evaluated column-wise and scattered into the
			// global key cache; the partition hash chains column vectors
			// in declaration order with the fast internal mix hash (NULL
			// keys participate — grouping treats NULL as a real key
			// value). Group identity is verified value-wise in phase 2, so
			// the hash only has to place tagged-key-equal rows in one
			// partition, which MixInto guarantees.
			for g, ev := range set.groups {
				vec := ev(b, nil)
				for j := 0; j < nLoc; j++ {
					keyVals[(start+j)*nG+g] = vec.Value(j)
				}
				vec.MixHashInto(hs)
			}
			var bkt rowBuckets
			for j := 0; j < nLoc; j++ {
				p := int(hs[j] & (partitions - 1))
				bkt[p] = append(bkt[p], int32(start+j))
			}
			buckets[m] = bkt
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	env.recordColumnar(logical.KindAggregate, int64(len(buckets)), int64(nRows))

	// keyEqual and keyClone read row i's group key from wherever phase 1
	// left it: the input row itself (fast path) or the key cache. Both are
	// called concurrently by phase 2 but only read shared state.
	keyEqual := func(i int32, key storage.Row) bool {
		if colIdx != nil {
			row := in.Rows[i]
			for g, c := range colIdx {
				if !valueKeyEqual(row[c], key[g]) {
					return false
				}
			}
			return true
		}
		return distinctRowsEqual(keyVals[int(i)*nG:int(i)*nG+nG], key)
	}
	keyClone := func(i int32) storage.Row {
		key := make(storage.Row, nG)
		if colIdx != nil {
			row := in.Rows[i]
			for g, c := range colIdx {
				key[g] = row[c]
			}
		} else {
			copy(key, keyVals[int(i)*nG:int(i)*nG+nG])
		}
		return key
	}

	type group struct {
		key    storage.Row
		states []*aggState
		first  int32
	}
	parts := make([][]*group, partitions)
	err := forEachTask(env, "agg-build", workers, partitions, func(w, p int) error {
		args := workerArgs[w]
		// Hash collisions between distinct keys spill to the overflow
		// chain, which stays empty in practice.
		first := make(map[uint64]*group)
		var overflow map[uint64][]*group
		var groupBytes int64
		var local []*group
		for _, b := range buckets {
			for _, i := range b[p] {
				h := hashes[i]
				grp := first[h]
				spill := false
				if grp != nil && !keyEqual(i, grp.key) {
					grp = nil
					spill = true
					for _, g := range overflow[h] {
						if keyEqual(i, g.key) {
							grp = g
							break
						}
					}
				}
				if grp == nil {
					grp = &group{
						key:    keyClone(i),
						states: newAggStates(n.Aggs),
						first:  i,
					}
					if spill {
						if overflow == nil {
							overflow = make(map[uint64][]*group)
						}
						overflow[h] = append(overflow[h], grp)
					} else {
						first[h] = grp
					}
					local = append(local, grp)
					groupBytes += grp.key.EncodedSize() + groupCost
				}
				accumulateRow(n.Aggs, grp.states, args, in.Rows[i])
			}
		}
		if err := env.reserve(sc, groupBytes); err != nil {
			return err
		}
		parts[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []*group
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].first < all[b].first })

	out := newOutput(n, in)
	if len(all) == 0 && nG == 0 {
		return emptyGlobalAggRow(n, out), nil
	}
	for j, grp := range all {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

func finishAgg(a logical.AggSpec, st *aggState) (storage.Value, error) {
	switch a.Func {
	case "COUNT":
		return storage.IntValue(st.count), nil
	case "SUM":
		if st.count == 0 {
			return storage.Null, nil
		}
		if st.isInt {
			return storage.IntValue(st.sumInt), nil
		}
		return storage.FloatValue(st.sum), nil
	case "AVG":
		if st.count == 0 {
			return storage.Null, nil
		}
		return storage.FloatValue(st.sum / float64(st.count)), nil
	case "MIN":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.min, nil
	case "MAX":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.max, nil
	default:
		return storage.Null, fmt.Errorf("exec: unknown aggregate %q", a.Func)
	}
}

package exec

import (
	"fmt"
	"strings"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	isInt    bool
	min, max storage.Value
	distinct map[string]bool
	seenAny  bool
}

func runAggregate(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	groupEvals := make([]expr.Compiled, len(n.GroupBy))
	for i, g := range n.GroupBy {
		c, err := expr.Compile(g.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		groupEvals[i] = c
	}
	argEvals := make([]expr.Compiled, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		c, err := expr.Compile(a.Arg, in.Schema)
		if err != nil {
			return nil, err
		}
		argEvals[i] = c
	}

	type group struct {
		key    storage.Row
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output order: first-seen
	var keyBuf strings.Builder

	for _, row := range in.Rows {
		keyBuf.Reset()
		keyVals := make(storage.Row, len(groupEvals))
		for i, g := range groupEvals {
			keyVals[i] = g(row)
			keyBuf.WriteString(keyVals[i].String())
			keyBuf.WriteByte(0)
		}
		k := keyBuf.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: keyVals, states: make([]*aggState, len(n.Aggs))}
			for i, a := range n.Aggs {
				grp.states[i] = &aggState{isInt: true}
				if a.Distinct {
					grp.states[i].distinct = map[string]bool{}
				}
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i, a := range n.Aggs {
			st := grp.states[i]
			if a.Star {
				st.count++
				continue
			}
			v := argEvals[i](row)
			if v.IsNull() {
				continue
			}
			if a.Distinct {
				dk := v.String()
				if st.distinct[dk] {
					continue
				}
				st.distinct[dk] = true
			}
			st.count++
			if f, ok := v.AsFloat(); ok {
				st.sum += f
				if i64, ok := v.AsInt(); ok && v.Kind == storage.KindInt {
					st.sumInt += i64
				} else {
					st.isInt = false
				}
			} else {
				st.isInt = false
			}
			if !st.seenAny {
				st.min, st.max = v, v
				st.seenAny = true
			} else {
				if storage.Compare(v, st.min) < 0 {
					st.min = v
				}
				if storage.Compare(v, st.max) > 0 {
					st.max = v
				}
			}
		}
	}

	out := newOutput(n, in)
	// A global aggregate over an empty input still yields one row.
	if len(order) == 0 && len(n.GroupBy) == 0 {
		row := make(storage.Row, n.Schema().Len())
		for i, a := range n.Aggs {
			if a.Func == "COUNT" {
				row[i] = storage.IntValue(0)
			} else {
				row[i] = storage.Null
			}
		}
		out.MustAppend(row)
		return out, nil
	}
	for _, k := range order {
		grp := groups[k]
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

func finishAgg(a logical.AggSpec, st *aggState) (storage.Value, error) {
	switch a.Func {
	case "COUNT":
		return storage.IntValue(st.count), nil
	case "SUM":
		if st.count == 0 {
			return storage.Null, nil
		}
		if st.isInt {
			return storage.IntValue(st.sumInt), nil
		}
		return storage.FloatValue(st.sum), nil
	case "AVG":
		if st.count == 0 {
			return storage.Null, nil
		}
		return storage.FloatValue(st.sum / float64(st.count)), nil
	case "MIN":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.min, nil
	case "MAX":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.max, nil
	default:
		return storage.Null, fmt.Errorf("exec: unknown aggregate %q", a.Func)
	}
}

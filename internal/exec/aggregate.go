package exec

import (
	"fmt"
	"sort"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	count    int64
	sum      float64
	sumInt   int64
	isInt    bool
	min, max storage.Value
	distinct map[string]bool
	seenAny  bool
}

func newAggStates(aggs []logical.AggSpec) []*aggState {
	states := make([]*aggState, len(aggs))
	for i, a := range aggs {
		states[i] = &aggState{isInt: true}
		if a.Distinct {
			states[i].distinct = map[string]bool{}
		}
	}
	return states
}

// accumulateRow feeds one input row into a group's states. Both engines
// call it with rows in global input order, so per-group accumulation —
// including float SUM/AVG association — is identical between them.
func accumulateRow(aggs []logical.AggSpec, states []*aggState, argEvals []expr.Compiled, row storage.Row) {
	for i, a := range aggs {
		st := states[i]
		if a.Star {
			st.count++
			continue
		}
		v := argEvals[i](row)
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			dk := string(appendTaggedKey(nil, v))
			if st.distinct[dk] {
				continue
			}
			st.distinct[dk] = true
		}
		st.count++
		if f, ok := v.AsFloat(); ok {
			st.sum += f
			if i64, ok := v.AsInt(); ok && v.Kind == storage.KindInt {
				st.sumInt += i64
			} else {
				st.isInt = false
			}
		} else {
			st.isInt = false
		}
		if !st.seenAny {
			st.min, st.max = v, v
			st.seenAny = true
		} else {
			if storage.Compare(v, st.min) < 0 {
				st.min = v
			}
			if storage.Compare(v, st.max) > 0 {
				st.max = v
			}
		}
	}
}

func compileAggArgs(n *logical.Node, schema *storage.Schema) ([]expr.Compiled, error) {
	argEvals := make([]expr.Compiled, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		c, err := expr.Compile(a.Arg, schema)
		if err != nil {
			return nil, err
		}
		argEvals[i] = c
	}
	return argEvals, nil
}

// emptyGlobalAggRow handles a global aggregate over an empty input, which
// still yields one row.
func emptyGlobalAggRow(n *logical.Node, out *storage.Table) *storage.Table {
	row := make(storage.Row, n.Schema().Len())
	for i, a := range n.Aggs {
		if a.Func == "COUNT" {
			row[i] = storage.IntValue(0)
		} else {
			row[i] = storage.Null
		}
	}
	out.MustAppend(row)
	return out
}

func runAggregate(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	groupEvals := make([]expr.Compiled, len(n.GroupBy))
	for i, g := range n.GroupBy {
		c, err := expr.Compile(g.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		groupEvals[i] = c
	}
	argEvals, err := compileAggArgs(n, in.Schema)
	if err != nil {
		return nil, err
	}

	type group struct {
		key    storage.Row
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic output order: first-seen
	var keyBuf []byte

	for _, row := range in.Rows {
		keyBuf = keyBuf[:0]
		keyVals := make(storage.Row, len(groupEvals))
		for i, g := range groupEvals {
			keyVals[i] = g(row)
			keyBuf = appendTaggedKey(keyBuf, keyVals[i])
			keyBuf = append(keyBuf, 0)
		}
		k := string(keyBuf)
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: keyVals, states: newAggStates(n.Aggs)}
			groups[k] = grp
			order = append(order, k)
		}
		accumulateRow(n.Aggs, grp.states, argEvals, row)
	}

	out := newOutput(n, in)
	if len(order) == 0 && len(n.GroupBy) == 0 {
		return emptyGlobalAggRow(n, out), nil
	}
	for _, k := range order {
		grp := groups[k]
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

// runAggregateMorsel is the morsel engine's hash aggregation, in three
// phases. Phase 1 evaluates the group expressions once per row (in
// parallel morsels), caching key values and bucketing rows by key hash
// into a fixed number of partitions. Phase 2 runs the partitions in
// parallel; each partition visits its rows in global input order, so every
// group accumulates exactly as it would serially — float sums associate
// identically. Phase 3 merges groups ordered by first-seen input row,
// recovering the serial engine's first-seen output order.
func runAggregateMorsel(n *logical.Node, env *Env, in *storage.Table) (*storage.Table, error) {
	workers := env.workerCount()
	mr := env.morselRows()
	nG := len(n.GroupBy)

	type evalSet struct {
		groups []expr.Compiled
		args   []expr.Compiled
	}
	sets := make([]evalSet, workers)
	for w := 0; w < workers; w++ {
		groups := make([]expr.Compiled, nG)
		for i, g := range n.GroupBy {
			c, err := expr.Compile(g.Expr, in.Schema)
			if err != nil {
				return nil, err
			}
			groups[i] = c
		}
		args, err := compileAggArgs(n, in.Schema)
		if err != nil {
			return nil, err
		}
		sets[w] = evalSet{groups: groups, args: args}
	}

	nRows := len(in.Rows)
	sc := env.scope()
	defer sc.Release()
	if err := env.reserve(sc, int64(nRows)*(valueCost*int64(nG)+idxCost)); err != nil {
		return nil, err
	}
	keyVals := make([]storage.Value, nRows*nG)
	buckets := make([]rowBuckets, morselCount(nRows, mr))
	err := forEachMorsel(env, "agg-hash", workers, nRows, mr, func(w, m, start, end int) error {
		evals := sets[w].groups
		var b rowBuckets
		for i := start; i < end; i++ {
			h := storage.HashSeed
			kv := keyVals[i*nG : i*nG+nG]
			for g, ev := range evals {
				kv[g] = ev(in.Rows[i])
				h = kv[g].HashInto(h)
			}
			p := int(h & (partitions - 1))
			b[p] = append(b[p], int32(i))
		}
		buckets[m] = b
		return nil
	})
	if err != nil {
		return nil, err
	}

	type group struct {
		key    storage.Row
		states []*aggState
		first  int32
	}
	parts := make([][]*group, partitions)
	err = forEachTask(env, "agg-build", workers, partitions, func(w, p int) error {
		args := sets[w].args
		m := make(map[string]*group)
		var keyBuf []byte
		var groupBytes int64
		var local []*group
		for _, b := range buckets {
			for _, i := range b[p] {
				row := in.Rows[i]
				kv := keyVals[int(i)*nG : int(i)*nG+nG]
				keyBuf = keyBuf[:0]
				for _, v := range kv {
					keyBuf = appendTaggedKey(keyBuf, v)
					keyBuf = append(keyBuf, 0)
				}
				grp := m[string(keyBuf)]
				if grp == nil {
					grp = &group{
						key:    append(storage.Row(nil), kv...),
						states: newAggStates(n.Aggs),
						first:  i,
					}
					m[string(keyBuf)] = grp
					local = append(local, grp)
					groupBytes += grp.key.EncodedSize() + groupCost
				}
				accumulateRow(n.Aggs, grp.states, args, row)
			}
		}
		if err := env.reserve(sc, groupBytes); err != nil {
			return err
		}
		parts[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []*group
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].first < all[b].first })

	out := newOutput(n, in)
	if len(all) == 0 && nG == 0 {
		return emptyGlobalAggRow(n, out), nil
	}
	for j, grp := range all {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

func finishAgg(a logical.AggSpec, st *aggState) (storage.Value, error) {
	switch a.Func {
	case "COUNT":
		return storage.IntValue(st.count), nil
	case "SUM":
		if st.count == 0 {
			return storage.Null, nil
		}
		if st.isInt {
			return storage.IntValue(st.sumInt), nil
		}
		return storage.FloatValue(st.sum), nil
	case "AVG":
		if st.count == 0 {
			return storage.Null, nil
		}
		return storage.FloatValue(st.sum / float64(st.count)), nil
	case "MIN":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.min, nil
	case "MAX":
		if !st.seenAny {
			return storage.Null, nil
		}
		return st.max, nil
	default:
		return storage.Null, fmt.Errorf("exec: unknown aggregate %q", a.Func)
	}
}

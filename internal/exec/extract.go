// Parallel Extract: morsels of raw log lines are parsed by a hand-rolled
// scanner for flat JSON objects, with a per-line fallback to the standard
// streaming decoder whenever the fast path cannot prove it would produce
// the exact same values (escapes, nested values, nonstandard numbers,
// invalid UTF-8). The fallback *is* the legacy SerDe, so the morsel
// engine's extract output is byte-identical to the serial engine's by
// construction.
package exec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// scanField is one plain (non-UDF) extract field: raw log field name, its
// output column, and the declared type to coerce to.
type scanField struct {
	name string
	col  int
	kind storage.Kind
}

// fastScanLine parses one flat JSON object into the wanted columns of row.
// It returns false — leaving row in an undefined state — whenever the line
// needs the exact fallback decoder: string escapes, control characters,
// invalid UTF-8 in a wanted string, nested objects/arrays, numbers outside
// the JSON grammar, or malformed structure. Duplicate keys are last-wins
// and bytes after the closing brace are ignored, matching the streaming
// decoder's behavior.
func fastScanLine(line string, fields []scanField, row storage.Row) bool {
	i := skipWS(line, 0)
	if i >= len(line) || line[i] != '{' {
		return false
	}
	i = skipWS(line, i+1)
	if i < len(line) && line[i] == '}' {
		return true
	}
	for {
		if i >= len(line) || line[i] != '"' {
			return false
		}
		keyStart := i + 1
		j := keyStart
		for j < len(line) && line[j] != '"' {
			if line[j] == '\\' || line[j] < 0x20 {
				return false
			}
			j++
		}
		if j >= len(line) {
			return false
		}
		key := line[keyStart:j]
		want := -1
		for fi := range fields {
			if fields[fi].name == key {
				want = fi
				break
			}
		}
		i = skipWS(line, j+1)
		if i >= len(line) || line[i] != ':' {
			return false
		}
		i = skipWS(line, i+1)
		if i >= len(line) {
			return false
		}
		switch c := line[i]; {
		case c == '"':
			vs := i + 1
			j := vs
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' || line[j] < 0x20 {
					return false
				}
				j++
			}
			if j >= len(line) {
				return false
			}
			if want >= 0 {
				val := line[vs:j]
				if !utf8.ValidString(val) {
					return false // decoder would substitute U+FFFD
				}
				row[fields[want].col] = coerceScannedString(val, fields[want].kind)
			}
			i = j + 1
		case c == 't':
			if !strings.HasPrefix(line[i:], "true") {
				return false
			}
			if want >= 0 {
				row[fields[want].col] = coerceScannedBool(true, fields[want].kind)
			}
			i += 4
		case c == 'f':
			if !strings.HasPrefix(line[i:], "false") {
				return false
			}
			if want >= 0 {
				row[fields[want].col] = coerceScannedBool(false, fields[want].kind)
			}
			i += 5
		case c == 'n':
			if !strings.HasPrefix(line[i:], "null") {
				return false
			}
			if want >= 0 {
				row[fields[want].col] = storage.Null
			}
			i += 4
		case c == '-' || (c >= '0' && c <= '9'):
			end, ok := scanJSONNumber(line, i)
			if !ok {
				return false
			}
			if want >= 0 {
				row[fields[want].col] = coerceScannedNumber(line[i:end], fields[want].kind)
			}
			i = end
		default:
			return false // nested object/array or garbage
		}
		i = skipWS(line, i)
		if i >= len(line) {
			return false
		}
		switch line[i] {
		case ',':
			i = skipWS(line, i+1)
		case '}':
			return true
		default:
			return false
		}
	}
}

func skipWS(s string, i int) int {
	for i < len(s) {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// scanJSONNumber validates the strict JSON number grammar starting at i and
// returns the index one past the literal.
func scanJSONNumber(s string, i int) (int, bool) {
	j := i
	if j < len(s) && s[j] == '-' {
		j++
	}
	switch {
	case j < len(s) && s[j] == '0':
		j++
	case j < len(s) && s[j] >= '1' && s[j] <= '9':
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	default:
		return 0, false
	}
	if j < len(s) && s[j] == '.' {
		j++
		if j >= len(s) || s[j] < '0' || s[j] > '9' {
			return 0, false
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	}
	if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
		j++
		if j < len(s) && (s[j] == '+' || s[j] == '-') {
			j++
		}
		if j >= len(s) || s[j] < '0' || s[j] > '9' {
			return 0, false
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	}
	return j, true
}

// The coerceScanned* helpers mirror coerceJSON exactly: a scanned string is
// what the decoder yields for an escape-free string, a scanned number
// literal is the json.Number the decoder yields under UseNumber (whose
// Int64/Float64 are strconv.ParseInt/ParseFloat on the literal).

func coerceScannedString(s string, want storage.Kind) storage.Value {
	switch want {
	case storage.KindString:
		return storage.StringValue(s)
	case storage.KindInt:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return storage.IntValue(i)
		}
	case storage.KindFloat:
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return storage.FloatValue(f)
		}
	}
	return storage.Null
}

func coerceScannedNumber(lit string, want storage.Kind) storage.Value {
	switch want {
	case storage.KindInt:
		if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return storage.IntValue(i)
		}
		if f, err := strconv.ParseFloat(lit, 64); err == nil {
			return storage.IntValue(int64(f))
		}
	case storage.KindFloat:
		if f, err := strconv.ParseFloat(lit, 64); err == nil {
			return storage.FloatValue(f)
		}
	case storage.KindString:
		return storage.StringValue(lit)
	}
	return storage.Null
}

func coerceScannedBool(b bool, want storage.Kind) storage.Value {
	if want == storage.KindBool {
		return storage.BoolValue(b)
	}
	return storage.Null
}

// fallbackScanLine is the legacy SerDe for one line: the streaming decoder
// with UseNumber into a generic map, then coerceJSON per field. Returns
// false for malformed records, which the SerDe skips.
func fallbackScanLine(line string, fields []scanField, row storage.Row) bool {
	dec := json.NewDecoder(strings.NewReader(line))
	dec.UseNumber()
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		return false
	}
	for _, f := range fields {
		row[f.col] = coerceJSON(rec[f.name], f.kind)
	}
	return true
}

// runExtractMorsel is the morsel engine's Extract: lines are scanned per
// morsel with fastScanLine (falling back per line to the exact legacy
// decoder), UDF columns are computed with per-worker compiled evaluators,
// and per-morsel row buffers are appended in morsel order.
func runExtractMorsel(n *logical.Node, env *Env) (*storage.Table, error) {
	if env.ReadLog == nil {
		return nil, fmt.Errorf("exec: no log resolver")
	}
	log, err := env.ReadLog(n.Children[0].LogName)
	if err != nil {
		return nil, err
	}
	schema := n.Schema()
	fields := make([]scanField, 0, len(n.Fields))
	for i, f := range n.Fields {
		if f.UDF == nil {
			fields = append(fields, scanField{name: f.LogField, col: i, kind: f.Type})
		}
	}
	workers := env.workerCount()
	// Compiled evaluators reuse scratch state between rows, so each worker
	// gets its own set.
	hasUDF := false
	workerUDFs := make([][]expr.Compiled, workers)
	for w := 0; w < workers; w++ {
		evals := make([]expr.Compiled, len(n.Fields))
		for i, f := range n.Fields {
			if f.UDF == nil {
				continue
			}
			hasUDF = true
			c, err := expr.Compile(f.UDF, schema)
			if err != nil {
				return nil, fmt.Errorf("exec: extract UDF field %q: %w", f.OutName, err)
			}
			evals[i] = c
		}
		workerUDFs[w] = evals
	}
	lines := log.Lines
	width := len(n.Fields)
	sc := env.scope()
	defer sc.Release()
	chunks := make([][]storage.Row, morselCount(len(lines), env.morselRows()))
	err = forEachMorsel(env, "extract", workers, len(lines), env.morselRows(), func(w, m, start, end int) error {
		evals := workerUDFs[w]
		buf := make([]storage.Row, 0, end-start)
		for _, line := range lines[start:end] {
			row := make(storage.Row, width)
			if !fastScanLine(line, fields, row) {
				for i := range row {
					row[i] = storage.Null // clear partial fast-path writes
				}
				if !fallbackScanLine(line, fields, row) {
					continue // malformed record: skipped by the SerDe
				}
			}
			if hasUDF {
				for i, eval := range evals {
					if eval != nil {
						row[i] = eval(row)
					}
				}
			}
			buf = append(buf, row)
		}
		if err := env.reserve(sc, rowsEncodedSize(buf)); err != nil {
			return err
		}
		chunks[m] = buf
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := storage.NewTable(n.Signature(), schema.Clone())
	out.ScaleFactor = log.ScaleFactor
	return appendChunks(env, out, chunks)
}

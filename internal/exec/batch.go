// Fused columnar pipelines. When the morsel engine executes a subtree via
// Run, maximal Filter/Project chains (optionally topped by an Aggregate)
// are fused into one morsel pass over the chain's materialized input: each
// morsel refines a selection vector through the filters, materializes
// projected rows only for survivors, and feeds the aggregate's hash phase
// directly — no intermediate Table per operator. Outputs stay
// byte-identical to running the operators one at a time (and therefore to
// the serial engine): morsel boundaries are fixed by the source input,
// survivors keep global input order, and the aggregate's partitions visit
// rows in that order.
//
// Fusion applies only inside Run. RunNode executes exactly one operator —
// hv and dw drive plans node by node (hv retains intermediates for
// opportunistic view capture) and are unaffected.
package exec

import (
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"miso/internal/expr"
	"miso/internal/govern"
	"miso/internal/logical"
	"miso/internal/storage"
)

// fusableChain returns the chain [n, child, ...] of fusable stages ending
// at n — Filter/Project nodes, plus Aggregate at the top only — or nil if
// fewer than two stages would fuse.
func fusableChain(n *logical.Node) []*logical.Node {
	switch n.Kind {
	case logical.KindFilter, logical.KindProject, logical.KindAggregate:
	default:
		return nil
	}
	chain := []*logical.Node{n}
	cur := n
	for len(cur.Children) == 1 {
		c := cur.Children[0]
		if c.Kind != logical.KindFilter && c.Kind != logical.KindProject {
			break
		}
		chain = append(chain, c)
		cur = c
	}
	if len(chain) < 2 {
		return nil
	}
	return chain
}

// runFusedSafe wraps the fused pipeline with the same node-boundary
// governance as runNodeSafe: cancellation checked up front, panics
// converted to typed internal errors naming the top operator.
func runFusedSafe(chain []*logical.Node, env *Env, src *storage.Table) (t *storage.Table, err error) {
	if cerr := env.cancelErr(); cerr != nil {
		return nil, cerr
	}
	defer func() {
		if v := recover(); v != nil {
			t = nil
			err = govern.NewPanicError(chain[0].Kind.String(), v, debug.Stack())
		}
	}()
	return runFusedChain(chain, env, src)
}

// fusedStage is one operator of a fused pipeline, bottom-up, bound to the
// schema segment it reads (segments change at each Project).
type fusedStage struct {
	node *logical.Node
	seg  int
}

// fusedWorker holds one worker's compiled evaluators and scratch: one
// Batch per schema segment, batch evaluators per stage, and reusable
// selection/hash buffers. Everything obeys the expr single-goroutine
// contract — one fusedWorker per pool worker.
type fusedWorker struct {
	batches []*expr.Batch
	preds   []expr.BatchCompiled // by stage index; nil unless Filter
	projs   [][]projEval         // by stage index; nil unless Project
	groups  []expr.BatchCompiled // aggregate group keys (top stage only)
	sel     []int32
	hs      []uint64
}

func newFusedWorker(stages []fusedStage, segs []*storage.Schema, morselRows int) (*fusedWorker, error) {
	fw := &fusedWorker{
		batches: make([]*expr.Batch, len(segs)),
		preds:   make([]expr.BatchCompiled, len(stages)),
		projs:   make([][]projEval, len(stages)),
		sel:     make([]int32, 0, morselRows),
	}
	for i, s := range segs {
		fw.batches[i] = expr.NewBatch(s)
	}
	for si, st := range stages {
		in := segs[st.seg]
		switch st.node.Kind {
		case logical.KindFilter:
			c, err := expr.CompileBatch(st.node.Pred, in)
			if err != nil {
				return nil, err
			}
			fw.preds[si] = c
		case logical.KindProject:
			evals, err := compileProjEvals(st.node.Projs, in)
			if err != nil {
				return nil, err
			}
			fw.projs[si] = evals
		case logical.KindAggregate:
			groups := make([]expr.BatchCompiled, len(st.node.GroupBy))
			for k, g := range st.node.GroupBy {
				c, err := expr.CompileBatch(g.Expr, in)
				if err != nil {
					return nil, err
				}
				groups[k] = c
			}
			fw.groups = groups
		}
	}
	return fw, nil
}

// fusedMorselAgg is one morsel's contribution to a fused aggregate: the
// aggregate's input rows (post filter/project, in input order), their
// cached group-key values, and the partition buckets of local row indices.
type fusedMorselAgg struct {
	rows    []storage.Row
	keys    []storage.Value
	buckets rowBuckets
}

// stageMeters accumulates per-stage stats across morsel workers.
type stageMeters struct {
	nanos   []atomic.Int64
	rows    []atomic.Int64
	rowsIn  []atomic.Int64
	batches []atomic.Int64
}

func newStageMeters(n int) *stageMeters {
	return &stageMeters{
		nanos:   make([]atomic.Int64, n),
		rows:    make([]atomic.Int64, n),
		rowsIn:  make([]atomic.Int64, n),
		batches: make([]atomic.Int64, n),
	}
}

func runFusedChain(chain []*logical.Node, env *Env, src *storage.Table) (*storage.Table, error) {
	// Stages bottom-up; schema segments start at the source schema and
	// advance at every Project.
	segs := []*storage.Schema{src.Schema}
	stages := make([]fusedStage, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		n := chain[i]
		stages = append(stages, fusedStage{node: n, seg: len(segs) - 1})
		if n.Kind == logical.KindProject {
			segs = append(segs, n.Schema())
		}
	}
	top := stages[len(stages)-1].node
	aggTop := top.Kind == logical.KindAggregate

	nRows := len(src.Rows)
	mr := env.morselRows()
	workers := opWorkers(env, nRows)
	fws := make([]*fusedWorker, workers)
	for w := range fws {
		fw, err := newFusedWorker(stages, segs, mr)
		if err != nil {
			return nil, err
		}
		fws[w] = fw
	}

	sc := env.scope()
	defer sc.Release()
	meters := newStageMeters(len(stages))
	timed := env.Stats != nil
	nMorsels := morselCount(nRows, mr)
	var chunks [][]storage.Row
	var aggParts []fusedMorselAgg
	nG := 0
	if aggTop {
		nG = len(top.GroupBy)
		aggParts = make([]fusedMorselAgg, nMorsels)
	} else {
		chunks = make([][]storage.Row, nMorsels)
	}

	err := forEachMorsel(env, "fused", workers, nRows, mr, func(w, m, start, end int) error {
		fw := fws[w]
		rows := src.Rows[start:end]
		b := fw.batches[0]
		b.Reset(rows)
		seg := 0
		var sel []int32 // nil = all rows of the current segment
		for si := range stages {
			st := &stages[si]
			rowsIn := len(rows)
			if sel != nil {
				rowsIn = len(sel)
			}
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			var rowsOut int
			switch st.node.Kind {
			case logical.KindFilter:
				vec := fw.preds[si](b, sel)
				if sel == nil {
					sel = vec.TruesInto(fw.sel[:0], 0)
				} else {
					sel = expr.RefineSelection(sel, vec)
				}
				if err := env.reserve(sc, refRowCost*int64(len(sel))); err != nil {
					return err
				}
				rowsOut = len(sel)
			case logical.KindProject:
				out := materializeBatch(b, sel, fw.projs[si], len(st.node.Projs))
				if err := env.reserve(sc, rowsEncodedSize(out)); err != nil {
					return err
				}
				rows = out
				sel = nil
				seg++
				b = fw.batches[seg]
				b.Reset(rows)
				rowsOut = len(rows)
			case logical.KindAggregate:
				nOut := len(rows)
				aggRows := rows
				if sel != nil {
					nOut = len(sel)
					aggRows = make([]storage.Row, nOut)
					for j, i := range sel {
						aggRows[j] = rows[i]
					}
				}
				keys := make([]storage.Value, nOut*nG)
				fw.hs = growU64(fw.hs, nOut)
				hs := fw.hs[:nOut]
				for j := range hs {
					hs[j] = storage.HashSeed
				}
				for g, ev := range fw.groups {
					vec := ev(b, sel)
					for j := 0; j < nOut; j++ {
						keys[j*nG+g] = vec.Value(j)
					}
					vec.MixHashInto(hs)
				}
				var bkt rowBuckets
				for j := 0; j < nOut; j++ {
					p := int(hs[j] & (partitions - 1))
					bkt[p] = append(bkt[p], int32(j))
				}
				if err := env.reserve(sc, int64(nOut)*(refRowCost+valueCost*int64(nG)+idxCost)); err != nil {
					return err
				}
				aggParts[m] = fusedMorselAgg{rows: aggRows, keys: keys, buckets: bkt}
				rowsOut = nOut
			}
			if timed {
				meters.nanos[si].Add(time.Since(t0).Nanoseconds())
			}
			meters.rows[si].Add(int64(rowsOut))
			meters.rowsIn[si].Add(int64(rowsIn))
			meters.batches[si].Add(1)
		}
		if !aggTop {
			// Materialize the morsel's output chunk: projected rows are
			// already dense; a trailing filter leaves a selection to gather.
			if sel != nil {
				chunk := make([]storage.Row, len(sel))
				for j, i := range sel {
					chunk[j] = rows[i]
				}
				chunks[m] = chunk
			} else {
				chunks[m] = rows
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out *storage.Table
	var aggExtra time.Duration
	if aggTop {
		t0 := time.Now()
		out, err = finishFusedAggregate(top, env, sc, src, aggParts, nG)
		if err != nil {
			return nil, err
		}
		aggExtra = time.Since(t0)
		// The meter counted the aggregate's phase-1 consumed rows as its
		// output; the real output is the merged group rows.
		meters.rows[len(stages)-1].Store(int64(len(out.Rows)))
	} else {
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		out = newOutput(top, src)
		out.Rows = make([]storage.Row, 0, total)
		if out, err = appendChunks(env, out, chunks); err != nil {
			return nil, err
		}
	}

	if timed {
		for si, st := range stages {
			d := time.Duration(meters.nanos[si].Load())
			if si == len(stages)-1 {
				d += aggExtra
			}
			env.Stats.record(st.node.Kind, int(meters.rows[si].Load()), d)
			env.Stats.recordColumnar(st.node.Kind, meters.batches[si].Load(), meters.rowsIn[si].Load())
		}
	}
	return out, nil
}

// finishFusedAggregate runs phases 2 and 3 of the fused aggregate: per-
// partition accumulation in global input order (ordinals are morsel-major,
// matching the serial engine's row order exactly), then a first-seen merge.
func finishFusedAggregate(n *logical.Node, env *Env, sc *govern.Scope, src *storage.Table, parts []fusedMorselAgg, nG int) (*storage.Table, error) {
	// Global ordinal base of each morsel's aggregate input.
	bases := make([]int64, len(parts)+1)
	for m := range parts {
		bases[m+1] = bases[m] + int64(len(parts[m].rows))
	}

	workers := env.workerCount()
	argSets := make([][]expr.Compiled, workers)
	var aggInSchema *storage.Schema
	if len(n.Children) == 1 && n.Children[0].Schema() != nil {
		aggInSchema = n.Children[0].Schema()
	}
	for w := range argSets {
		args, err := compileAggArgs(n, aggInSchema)
		if err != nil {
			return nil, err
		}
		argSets[w] = args
	}

	type group struct {
		key    storage.Row
		states []*aggState
		first  int64
	}
	partGroups := make([][]*group, partitions)
	err := forEachTask(env, "agg-build", workers, partitions, func(w, p int) error {
		args := argSets[w]
		m := make(map[string]*group)
		var keyBuf []byte
		var groupBytes int64
		var local []*group
		for mi := range parts {
			part := &parts[mi]
			for _, j := range part.buckets[p] {
				row := part.rows[j]
				kv := part.keys[int(j)*nG : int(j)*nG+nG]
				keyBuf = keyBuf[:0]
				for _, v := range kv {
					keyBuf = appendTaggedKey(keyBuf, v)
					keyBuf = append(keyBuf, 0)
				}
				grp := m[string(keyBuf)]
				if grp == nil {
					grp = &group{
						key:    append(storage.Row(nil), kv...),
						states: newAggStates(n.Aggs),
						first:  bases[mi] + int64(j),
					}
					m[string(keyBuf)] = grp
					local = append(local, grp)
					groupBytes += grp.key.EncodedSize() + groupCost
				}
				accumulateRow(n.Aggs, grp.states, args, row)
			}
		}
		if err := env.reserve(sc, groupBytes); err != nil {
			return err
		}
		partGroups[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []*group
	for _, p := range partGroups {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].first < all[b].first })

	out := newOutput(n, src)
	if len(all) == 0 && nG == 0 {
		return emptyGlobalAggRow(n, out), nil
	}
	for j, grp := range all {
		if j%cancelPollRows == cancelPollRows-1 {
			if err := env.cancelErr(); err != nil {
				return nil, err
			}
		}
		row := make(storage.Row, 0, n.Schema().Len())
		row = append(row, grp.key...)
		for i, a := range n.Aggs {
			v, err := finishAgg(a, grp.states[i])
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.MustAppend(row)
	}
	return out, nil
}

// Morsel-driven scheduling: operator inputs are partitioned into fixed-size
// row-range morsels that a bounded worker pool pulls off a shared atomic
// counter (work stealing at morsel granularity). Morsel boundaries depend
// only on the input size and the configured morsel size — never on the
// worker count — so per-morsel partial results can be merged in a fixed
// order and the engine's output is byte-identical at any parallelism.
//
// The pool is also where the governance plane bites: every worker checks
// the query's context at each morsel claim (so a canceled query releases
// its workers within one morsel of work), and every morsel body runs under
// govern.Capture (so a panicking operator fails only its own query). Both
// are no-ops when Env.Ctx and the fault injector are nil.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"miso/internal/faults"
	"miso/internal/govern"
)

// SerialWorkers is the Env.Workers setting that selects the legacy
// row-at-a-time serial engine. It is the in-repo baseline the benchmark
// pipeline measures the morsel engine against.
const SerialWorkers = -1

// DefaultMorselRows is the fixed morsel size: large enough that the atomic
// fetch and goroutine handoff amortize to nothing, small enough that a
// skewed morsel cannot stall the pool at the end of an operator — which
// also bounds how much work a worker does between cancellation checks.
const DefaultMorselRows = 1024

// stragglerStallMax bounds the wall-clock sleep a SiteSlowMorsel injection
// adds to one morsel (scaled by the injector's frac draw). Small enough to
// keep chaos runs fast, large enough to make cancellation latency visible.
const stragglerStallMax = 2 * time.Millisecond

// cancelPollRows is how many rows a serial merge or sort loop processes
// between cancellation polls.
const cancelPollRows = 4096

// workerCount resolves Env.Workers to a pool size (0 means GOMAXPROCS).
// Only meaningful when the morsel engine is selected (Workers >= 0).
func (env *Env) workerCount() int {
	w := env.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (env *Env) morselRows() int {
	if env.MorselRows > 0 {
		return env.MorselRows
	}
	return DefaultMorselRows
}

// parallel reports whether the morsel engine is selected.
func (env *Env) parallel() bool { return env.Workers >= 0 }

// cancelErr returns the query's cancellation error, or nil. Workers call
// it at every morsel claim; merge loops poll it every cancelPollRows rows.
func (env *Env) cancelErr() error {
	if env.Ctx == nil {
		return nil
	}
	if err := env.Ctx.Err(); err != nil {
		return fmt.Errorf("exec: canceled: %w", err)
	}
	return nil
}

// scope opens a reservation scope for one operator's transient memory
// (chunk buffers, hash partitions, sort keys). Nil when no ledger is set.
func (env *Env) scope() *govern.Scope { return env.Mem.NewScope() }

// reserve charges transient operator memory to the scope, first giving the
// mem-pressure fault site a chance to fail the reservation as if the
// ledger were exhausted. Nil scope and nil injector are both no-ops.
func (env *Env) reserve(sc *govern.Scope, bytes int64) error {
	if failed, _ := env.Inj.Check(faults.SiteMemPressure); failed {
		return fmt.Errorf("exec: injected memory pressure (%d B requested): %w", bytes, govern.ErrMemLimit)
	}
	return sc.Reserve(bytes)
}

// morselCount returns how many morsels cover n rows.
func morselCount(n, morselRows int) int {
	return (n + morselRows - 1) / morselRows
}

// failFirst keeps the first error a pool worker hit and tells the other
// workers to stop claiming work.
type failFirst struct {
	failed atomic.Bool
	mu     sync.Mutex
	e      error
}

func (f *failFirst) set(err error) {
	f.mu.Lock()
	if f.e == nil {
		f.e = err
	}
	f.mu.Unlock()
	f.failed.Store(true)
}

func (f *failFirst) aborted() bool { return f.failed.Load() }

func (f *failFirst) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.e
}

// runMorsel executes one morsel body under panic capture, with the
// exec-plane fault sites (injected worker panic, straggler stall) applied
// first. Both injections happen inside the capture so an injected panic
// exercises exactly the containment path a real one would.
func runMorsel(env *Env, op string, m int, fn func() error) error {
	return govern.Capture(op, func() error {
		if failed, _ := env.Inj.Check(faults.SiteExecPanic); failed {
			panic(fmt.Sprintf("injected exec worker panic: %s morsel %d", op, m))
		}
		if failed, frac := env.Inj.Check(faults.SiteSlowMorsel); failed {
			time.Sleep(time.Duration(frac * float64(stragglerStallMax)))
		}
		return fn()
	})
}

// forEachMorsel partitions [0, n) into fixed-size row ranges and fans them
// out over the worker pool. fn receives the worker index (so callers can
// keep per-worker scratch state such as compiled evaluators), the morsel
// index, and the half-open row range. With one worker — or one morsel —
// everything runs inline on the calling goroutine.
//
// Governance: each worker checks cancellation before every claim and stops
// claiming once any worker fails; a panic in fn fails the operator with a
// typed govern.ErrInternal instead of killing the process. The first error
// wins and is returned after all workers have parked.
func forEachMorsel(env *Env, op string, workers, n, morselRows int, fn func(w, m, start, end int) error) error {
	morsels := morselCount(n, morselRows)
	if morsels == 0 {
		return nil
	}
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			if err := env.cancelErr(); err != nil {
				return err
			}
			start, end := morselRange(m, n, morselRows)
			if err := runMorsel(env, op, m, func() error { return fn(0, m, start, end) }); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var fail failFirst
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if fail.aborted() {
					return
				}
				if err := env.cancelErr(); err != nil {
					fail.set(err)
					return
				}
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				start, end := morselRange(m, n, morselRows)
				if err := runMorsel(env, op, m, func() error { return fn(w, m, start, end) }); err != nil {
					fail.set(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return fail.err()
}

func morselRange(m, n, morselRows int) (start, end int) {
	start = m * morselRows
	end = start + morselRows
	if end > n {
		end = n
	}
	return start, end
}

// forEachTask runs n independent tasks (hash-partition builds, partition
// accumulation) over the worker pool with the same governance contract as
// forEachMorsel: cancellation checked at every claim, panics contained.
func forEachTask(env *Env, op string, workers, n int, fn func(w, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := env.cancelErr(); err != nil {
				return err
			}
			if err := runMorsel(env, op, i, func() error { return fn(0, i) }); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var fail failFirst
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if fail.aborted() {
					return
				}
				if err := env.cancelErr(); err != nil {
					fail.set(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runMorsel(env, op, i, func() error { return fn(w, i) }); err != nil {
					fail.set(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return fail.err()
}

// Morsel-driven scheduling: operator inputs are partitioned into fixed-size
// row-range morsels that a bounded worker pool pulls off a shared atomic
// counter (work stealing at morsel granularity). Morsel boundaries depend
// only on the input size and the configured morsel size — never on the
// worker count — so per-morsel partial results can be merged in a fixed
// order and the engine's output is byte-identical at any parallelism.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SerialWorkers is the Env.Workers setting that selects the legacy
// row-at-a-time serial engine. It is the in-repo baseline the benchmark
// pipeline measures the morsel engine against.
const SerialWorkers = -1

// DefaultMorselRows is the fixed morsel size: large enough that the atomic
// fetch and goroutine handoff amortize to nothing, small enough that a
// skewed morsel cannot stall the pool at the end of an operator.
const DefaultMorselRows = 1024

// workerCount resolves Env.Workers to a pool size (0 means GOMAXPROCS).
// Only meaningful when the morsel engine is selected (Workers >= 0).
func (env *Env) workerCount() int {
	w := env.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (env *Env) morselRows() int {
	if env.MorselRows > 0 {
		return env.MorselRows
	}
	return DefaultMorselRows
}

// parallel reports whether the morsel engine is selected.
func (env *Env) parallel() bool { return env.Workers >= 0 }

// morselCount returns how many morsels cover n rows.
func morselCount(n, morselRows int) int {
	return (n + morselRows - 1) / morselRows
}

// forEachMorsel partitions [0, n) into fixed-size row ranges and fans them
// out over the worker pool. fn receives the worker index (so callers can
// keep per-worker scratch state such as compiled evaluators), the morsel
// index, and the half-open row range. With one worker — or one morsel —
// everything runs inline on the calling goroutine.
func forEachMorsel(workers, n, morselRows int, fn func(w, m, start, end int)) {
	morsels := morselCount(n, morselRows)
	if morsels == 0 {
		return
	}
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			start, end := morselRange(m, n, morselRows)
			fn(0, m, start, end)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				start, end := morselRange(m, n, morselRows)
				fn(w, m, start, end)
			}
		}(w)
	}
	wg.Wait()
}

func morselRange(m, n, morselRows int) (start, end int) {
	start = m * morselRows
	end = start + morselRows
	if end > n {
		end = n
	}
	return start, end
}

// forEachTask runs n independent tasks (hash-partition builds, partition
// accumulation) over the worker pool. fn receives the worker index and the
// task index.
func forEachTask(workers, n int, fn func(w, i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

package exec_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

func benchEnv(b *testing.B) (*storage.Catalog, *exec.Env, *logical.Builder) {
	b.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	return cat, env, logical.NewBuilder(cat)
}

func benchQuery(b *testing.B, sql string) {
	b.Helper()
	_, env, builder := benchEnv(b)
	plan, err := builder.BuildSQL(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpExtract measures the SerDe path: JSON parsing plus field
// coercion over the whole tweets log.
func BenchmarkOpExtract(b *testing.B) {
	benchQuery(b, "SELECT tweet_id FROM tweets")
}

// BenchmarkOpExtractWithUDF adds a hoisted map-phase UDF to the SerDe pass.
func BenchmarkOpExtractWithUDF(b *testing.B) {
	benchQuery(b, "SELECT tweet_id, SENTIMENT(text) AS s FROM tweets")
}

// BenchmarkOpFilter measures predicate evaluation over the extracted rows.
func BenchmarkOpFilter(b *testing.B) {
	benchQuery(b, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
}

// BenchmarkOpHashJoin measures the equi-join build/probe.
func BenchmarkOpHashJoin(b *testing.B) {
	benchQuery(b, "SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id")
}

// BenchmarkOpHashAggregate measures grouped aggregation with three
// aggregate states per group.
func BenchmarkOpHashAggregate(b *testing.B) {
	benchQuery(b, `SELECT lang, COUNT(*) AS n, AVG(retweets) AS ar, MAX(followers) AS mf
		FROM tweets GROUP BY lang`)
}

// BenchmarkOpSort measures the sort operator over the full log.
func BenchmarkOpSort(b *testing.B) {
	benchQuery(b, "SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC")
}

// BenchmarkOpDistinct measures row-level deduplication.
func BenchmarkOpDistinct(b *testing.B) {
	benchQuery(b, "SELECT DISTINCT user_id FROM tweets")
}

// columnarBenchInput builds a schema, a morsel of rows, and a compiled
// batch predicate (retweets > 100 AND lang = 'en') for the columnar kernel
// guards below.
func columnarBenchInput(tb testing.TB, n int) (*storage.Schema, []storage.Row, expr.BatchCompiled) {
	tb.Helper()
	schema, err := storage.NewSchema(
		storage.Column{Name: "retweets", Type: storage.KindInt},
		storage.Column{Name: "lang", Type: storage.KindString},
	)
	if err != nil {
		tb.Fatal(err)
	}
	langs := []string{"en", "es", "fr", "de"}
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			storage.IntValue(int64(i * 37 % 500)),
			storage.StringValue(langs[i%len(langs)]),
		}
	}
	pred, err := expr.CompileBatch(&expr.BinOp{
		Op: "AND",
		L:  &expr.BinOp{Op: ">", L: &expr.ColRef{Name: "retweets"}, R: &expr.Const{Val: storage.IntValue(100)}},
		R:  &expr.BinOp{Op: "=", L: &expr.ColRef{Name: "lang"}, R: &expr.Const{Val: storage.StringValue("en")}},
	}, schema)
	if err != nil {
		tb.Fatal(err)
	}
	return schema, rows, pred
}

// TestFilterSelectionZeroAlloc is the allocs/op guard for the columnar
// filter kernel: once the per-worker scratch (batch column vectors, the
// evaluator's result vector, the selection buffer) is warm, evaluating a
// predicate over a morsel and compacting survivors into a selection vector
// must not allocate — this is what keeps parallel Filter's allocs/op at
// the serial engine's level instead of the pre-columnar 4x regression.
func TestFilterSelectionZeroAlloc(t *testing.T) {
	schema, rows, pred := columnarBenchInput(t, 1024)
	batch := expr.NewBatch(schema)
	sel := make([]int32, 0, len(rows))
	run := func() int {
		batch.Reset(rows)
		vec := pred(batch, nil)
		return len(vec.TruesInto(sel[:0], 0))
	}
	survivors := run() // warm scratch before measuring
	if survivors == 0 || survivors == len(rows) {
		t.Fatalf("degenerate selectivity %d/%d", survivors, len(rows))
	}
	if allocs := testing.AllocsPerRun(1000, func() { run() }); allocs != 0 {
		t.Fatalf("filter selection allocated %.1f objects/op, want 0", allocs)
	}
}

// TestBatchHashZeroAlloc is the allocs/op guard for column-wise key
// hashing: chaining key vectors through Vector.HashChainInto over a reused
// hash buffer must not allocate (this is the join/aggregate partitioning
// hot loop).
func TestBatchHashZeroAlloc(t *testing.T) {
	_, rows, _ := columnarBenchInput(t, 1024)
	var rv, lv storage.Vector
	hs := make([]uint64, len(rows))
	run := func() {
		rv.FromRows(rows, 0, storage.KindInt)
		lv.FromRows(rows, 1, storage.KindString)
		for i := range hs {
			hs[i] = storage.HashSeed
		}
		rv.HashChainInto(hs)
		lv.HashChainInto(hs)
	}
	run() // warm the transpose vectors
	if allocs := testing.AllocsPerRun(1000, run); allocs != 0 {
		t.Fatalf("batch hash allocated %.1f objects/op, want 0", allocs)
	}
	if hs[0] == storage.HashSeed {
		t.Fatal("hash chain did not mix")
	}
}

// BenchmarkColumnarFilterSelection measures the fused filter kernel in
// isolation: batch transpose + predicate eval + selection compaction over
// one 1024-row morsel.
func BenchmarkColumnarFilterSelection(b *testing.B) {
	schema, rows, pred := columnarBenchInput(b, 1024)
	batch := expr.NewBatch(schema)
	sel := make([]int32, 0, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(rows)
		vec := pred(batch, nil)
		sel = vec.TruesInto(sel[:0], 0)
	}
	_ = sel
}

// BenchmarkColumnarBatchHash measures column-wise key hashing over one
// 1024-row morsel (two key columns: int + string).
func BenchmarkColumnarBatchHash(b *testing.B) {
	_, rows, _ := columnarBenchInput(b, 1024)
	var rv, lv storage.Vector
	hs := make([]uint64, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rv.FromRows(rows, 0, storage.KindInt)
		lv.FromRows(rows, 1, storage.KindString)
		for j := range hs {
			hs[j] = storage.HashSeed
		}
		rv.HashChainInto(hs)
		lv.HashChainInto(hs)
	}
}

// BenchmarkThreeWayJoinAggregate is the workload's characteristic shape:
// extract x3, join x2, aggregate, sort.
func BenchmarkThreeWayJoinAggregate(b *testing.B) {
	benchQuery(b, `SELECT l.city, COUNT(*) AS n
		FROM tweets t
		JOIN checkins c ON t.user_id = c.user_id
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE t.lang = 'en'
		GROUP BY l.city ORDER BY n DESC`)
}

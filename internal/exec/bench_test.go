package exec_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/logical"
	"miso/internal/storage"
)

func benchEnv(b *testing.B) (*storage.Catalog, *exec.Env, *logical.Builder) {
	b.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	return cat, env, logical.NewBuilder(cat)
}

func benchQuery(b *testing.B, sql string) {
	b.Helper()
	_, env, builder := benchEnv(b)
	plan, err := builder.BuildSQL(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpExtract measures the SerDe path: JSON parsing plus field
// coercion over the whole tweets log.
func BenchmarkOpExtract(b *testing.B) {
	benchQuery(b, "SELECT tweet_id FROM tweets")
}

// BenchmarkOpExtractWithUDF adds a hoisted map-phase UDF to the SerDe pass.
func BenchmarkOpExtractWithUDF(b *testing.B) {
	benchQuery(b, "SELECT tweet_id, SENTIMENT(text) AS s FROM tweets")
}

// BenchmarkOpFilter measures predicate evaluation over the extracted rows.
func BenchmarkOpFilter(b *testing.B) {
	benchQuery(b, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
}

// BenchmarkOpHashJoin measures the equi-join build/probe.
func BenchmarkOpHashJoin(b *testing.B) {
	benchQuery(b, "SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id")
}

// BenchmarkOpHashAggregate measures grouped aggregation with three
// aggregate states per group.
func BenchmarkOpHashAggregate(b *testing.B) {
	benchQuery(b, `SELECT lang, COUNT(*) AS n, AVG(retweets) AS ar, MAX(followers) AS mf
		FROM tweets GROUP BY lang`)
}

// BenchmarkOpSort measures the sort operator over the full log.
func BenchmarkOpSort(b *testing.B) {
	benchQuery(b, "SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC")
}

// BenchmarkOpDistinct measures row-level deduplication.
func BenchmarkOpDistinct(b *testing.B) {
	benchQuery(b, "SELECT DISTINCT user_id FROM tweets")
}

// BenchmarkThreeWayJoinAggregate is the workload's characteristic shape:
// extract x3, join x2, aggregate, sort.
func BenchmarkThreeWayJoinAggregate(b *testing.B) {
	benchQuery(b, `SELECT l.city, COUNT(*) AS n
		FROM tweets t
		JOIN checkins c ON t.user_id = c.user_id
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE t.lang = 'en'
		GROUP BY l.city ORDER BY n DESC`)
}

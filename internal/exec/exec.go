// Package exec implements the physical operators shared by both stores:
// SerDe extraction over raw JSON logs, filter, project, hash join, hash
// aggregation, distinct, sort, and limit. The hv engine drives these
// operators stage by stage (materializing intermediates); the dw engine
// pipelines whole subtrees. Both produce real result tables — simulated
// time is layered on top by each store's cost model, not here.
package exec

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"miso/internal/expr"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/logical"
	"miso/internal/storage"
)

// Env resolves plan leaves to stored data and selects the execution
// engine.
type Env struct {
	// ReadLog returns the raw log for a Scan leaf.
	ReadLog func(name string) (*storage.LogFile, error)
	// ReadView returns the materialized table for a ViewScan leaf.
	ReadView func(name string) (*storage.Table, error)
	// Workers selects the engine and its parallelism:
	//
	//	< 0 (SerialWorkers) — the legacy row-at-a-time serial engine,
	//	      kept as the benchmark baseline;
	//	  0 — the morsel engine with GOMAXPROCS workers (the default);
	//	  n — the morsel engine with n workers.
	//
	// Outputs are byte-identical across every setting.
	Workers int
	// MorselRows overrides the fixed morsel size (DefaultMorselRows when
	// zero). Morsel boundaries affect scheduling only, never results.
	MorselRows int
	// Stats, when non-nil, accumulates per-operator wall-clock timings
	// across every node this Env runs.
	Stats *Stats
	// Ctx, when non-nil, is the query's cancellation context. Morsel
	// workers check it at every morsel claim and merge loops poll it
	// periodically, so a canceled query releases its workers within a
	// bounded amount of residual work. Nil disables the checks.
	Ctx context.Context
	// Mem, when non-nil, is the query's memory reservation ledger:
	// operators charge it as extract buffers, hash partitions, and sort
	// keys grow, and a reservation over the limit aborts the query with
	// an error wrapping govern.ErrMemLimit. Nil disables accounting.
	Mem *govern.Ledger
	// Inj, when non-nil, is the exec-plane fault injector (worker panics,
	// memory pressure, slow-morsel stragglers). It must be a separate
	// injector from the store-level one so concurrent morsel draws never
	// perturb the serialized stage/transfer sequence (see
	// faults.Profile.ExecOnly). Nil disables injection.
	Inj *faults.Injector
}

// Run executes the whole subtree and returns its result. Under the morsel
// engine, maximal Filter/Project chains (optionally topped by an
// Aggregate) are fused into a single columnar pass over their input — see
// batch.go. Fused or not, results are byte-identical; per-operator Stats
// are still recorded once per fused stage.
func Run(n *logical.Node, env *Env) (*storage.Table, error) {
	if env.parallel() {
		if chain := fusableChain(n); chain != nil {
			src, err := Run(chain[len(chain)-1].Children[0], env)
			if err != nil {
				return nil, err
			}
			return runFusedSafe(chain, env, src)
		}
	}
	inputs := make([]*storage.Table, 0, len(n.Children))
	switch n.Kind {
	case logical.KindExtract, logical.KindViewScan, logical.KindScan:
		// Leaf-like: children resolved inside RunNode.
	default:
		for _, c := range n.Children {
			t, err := Run(c, env)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, t)
		}
	}
	return RunNode(n, env, inputs)
}

// RunNode executes a single operator given its children's outputs. Extract
// and ViewScan resolve their data through env and ignore inputs.
//
// Governance applies at the node boundary for every engine: a canceled
// Env.Ctx fails the node before work starts, and a panic anywhere in the
// operator — including the serial engine's inline path — is converted to
// a typed govern.ErrInternal carrying the operator name, so one bad node
// cannot kill the process or other in-flight queries.
func RunNode(n *logical.Node, env *Env, inputs []*storage.Table) (*storage.Table, error) {
	if env.Stats == nil {
		return runNodeSafe(n, env, inputs)
	}
	start := time.Now()
	t, err := runNodeSafe(n, env, inputs)
	rows := 0
	if t != nil {
		rows = len(t.Rows)
	}
	env.Stats.record(n.Kind, rows, time.Since(start))
	return t, err
}

func runNodeSafe(n *logical.Node, env *Env, inputs []*storage.Table) (t *storage.Table, err error) {
	if cerr := env.cancelErr(); cerr != nil {
		return nil, cerr
	}
	defer func() {
		if v := recover(); v != nil {
			t = nil
			err = govern.NewPanicError(n.Kind.String(), v, debug.Stack())
		}
	}()
	return runNode(n, env, inputs)
}

func runNode(n *logical.Node, env *Env, inputs []*storage.Table) (*storage.Table, error) {
	par := env.parallel()
	switch n.Kind {
	case logical.KindScan:
		return nil, fmt.Errorf("exec: bare Scan cannot execute; it is consumed by Extract")
	case logical.KindExtract:
		if par {
			return runExtractMorsel(n, env)
		}
		return runExtract(n, env)
	case logical.KindViewScan:
		if env.ReadView == nil {
			return nil, fmt.Errorf("exec: no view resolver for view %q", n.ViewName)
		}
		return env.ReadView(n.ViewName)
	case logical.KindFilter:
		if par {
			return runFilterMorsel(n, env, inputs[0])
		}
		return runFilter(n, inputs[0])
	case logical.KindProject:
		if par {
			return runProjectMorsel(n, env, inputs[0])
		}
		return runProject(n, inputs[0])
	case logical.KindJoin:
		if par {
			return runJoinMorsel(n, env, inputs[0], inputs[1])
		}
		return runJoin(n, inputs[0], inputs[1])
	case logical.KindAggregate:
		if par {
			return runAggregateMorsel(n, env, inputs[0])
		}
		return runAggregate(n, inputs[0])
	case logical.KindDistinct:
		if par {
			return runDistinctMorsel(n, env, inputs[0])
		}
		return runDistinct(n, inputs[0])
	case logical.KindSort:
		if par {
			return runSortMorsel(n, env, inputs[0])
		}
		return runSort(n, inputs[0])
	case logical.KindLimit:
		return runLimit(n, inputs[0]), nil
	default:
		return nil, fmt.Errorf("exec: unknown node kind %v", n.Kind)
	}
}

func newOutput(n *logical.Node, inputs ...*storage.Table) *storage.Table {
	t := storage.NewTable(n.Signature(), n.Schema().Clone())
	for _, in := range inputs {
		if in != nil && in.ScaleFactor > t.ScaleFactor {
			t.ScaleFactor = in.ScaleFactor
		}
	}
	return t
}

// runExtract applies the SerDe: it parses each JSON line and extracts the
// declared fields with their declared types. Missing or mistyped fields
// yield NULL, as a permissive SerDe does.
func runExtract(n *logical.Node, env *Env) (*storage.Table, error) {
	if env.ReadLog == nil {
		return nil, fmt.Errorf("exec: no log resolver")
	}
	scan := n.Children[0]
	log, err := env.ReadLog(scan.LogName)
	if err != nil {
		return nil, err
	}
	out := storage.NewTable(n.Signature(), n.Schema().Clone())
	out.ScaleFactor = log.ScaleFactor
	// Precompile computed (UDF) fields against the extract schema; they
	// reference plain fields, which come first.
	udfEvals := make([]expr.Compiled, len(n.Fields))
	for i, f := range n.Fields {
		if f.UDF == nil {
			continue
		}
		c, err := expr.Compile(f.UDF, n.Schema())
		if err != nil {
			return nil, fmt.Errorf("exec: extract UDF field %q: %w", f.OutName, err)
		}
		udfEvals[i] = c
	}
	for _, line := range log.Lines {
		dec := json.NewDecoder(strings.NewReader(line))
		dec.UseNumber()
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			continue // malformed record: skipped by the SerDe
		}
		row := make(storage.Row, len(n.Fields))
		for i, f := range n.Fields {
			if f.UDF == nil {
				row[i] = coerceJSON(rec[f.LogField], f.Type)
			}
		}
		for i, eval := range udfEvals {
			if eval != nil {
				row[i] = eval(row)
			}
		}
		out.MustAppend(row)
	}
	return out, nil
}

func coerceJSON(v any, want storage.Kind) storage.Value {
	switch x := v.(type) {
	case nil:
		return storage.Null
	case json.Number:
		switch want {
		case storage.KindInt:
			if i, err := x.Int64(); err == nil {
				return storage.IntValue(i)
			}
			if f, err := x.Float64(); err == nil {
				return storage.IntValue(int64(f))
			}
		case storage.KindFloat:
			if f, err := x.Float64(); err == nil {
				return storage.FloatValue(f)
			}
		case storage.KindString:
			return storage.StringValue(x.String())
		}
		return storage.Null
	case string:
		switch want {
		case storage.KindString:
			return storage.StringValue(x)
		case storage.KindInt:
			v := storage.StringValue(x)
			if i, ok := v.AsInt(); ok {
				return storage.IntValue(i)
			}
		case storage.KindFloat:
			v := storage.StringValue(x)
			if f, ok := v.AsFloat(); ok {
				return storage.FloatValue(f)
			}
		}
		return storage.Null
	case bool:
		if want == storage.KindBool {
			return storage.BoolValue(x)
		}
		return storage.Null
	default:
		return storage.Null
	}
}

func runFilter(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	pred, err := expr.Compile(n.Pred, in.Schema)
	if err != nil {
		return nil, err
	}
	out := newOutput(n, in)
	for _, row := range in.Rows {
		v := pred(row)
		if !v.IsNull() && v.Bool() {
			out.MustAppend(row)
		}
	}
	return out, nil
}

func runProject(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	evals := make([]expr.Compiled, len(n.Projs))
	for i, p := range n.Projs {
		c, err := expr.Compile(p.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		evals[i] = c
	}
	out := newOutput(n, in)
	for _, row := range in.Rows {
		nr := make(storage.Row, len(evals))
		for i, e := range evals {
			nr[i] = e(row)
		}
		out.MustAppend(nr)
	}
	return out, nil
}

func joinKeyIndexes(n *logical.Node, left, right *storage.Table) (lIdx, rIdx []int, err error) {
	lIdx = make([]int, len(n.LeftKeys))
	for i, k := range n.LeftKeys {
		lIdx[i] = left.Schema.Index(k)
		if lIdx[i] < 0 {
			return nil, nil, fmt.Errorf("exec: left join key %q missing from %s", k, left.Schema)
		}
	}
	rIdx = make([]int, len(n.RightKeys))
	for i, k := range n.RightKeys {
		rIdx[i] = right.Schema.Index(k)
		if rIdx[i] < 0 {
			return nil, nil, fmt.Errorf("exec: right join key %q missing from %s", k, right.Schema)
		}
	}
	return lIdx, rIdx, nil
}

func runJoin(n *logical.Node, left, right *storage.Table) (*storage.Table, error) {
	lIdx, rIdx, err := joinKeyIndexes(n, left, right)
	if err != nil {
		return nil, err
	}
	// Build on the right input.
	build := make(map[uint64][]storage.Row, len(right.Rows))
	for _, row := range right.Rows {
		h, ok := hashKeys(row, rIdx)
		if !ok {
			continue // NULL keys never match
		}
		build[h] = append(build[h], row)
	}
	out := newOutput(n, left, right)
	rWidth := right.Schema.Len()
	for _, lrow := range left.Rows {
		matched := false
		if h, ok := hashKeys(lrow, lIdx); ok {
			for _, rrow := range build[h] {
				if keysEqual(lrow, rrow, lIdx, rIdx) {
					matched = true
					nr := make(storage.Row, 0, len(lrow)+rWidth)
					nr = append(nr, lrow...)
					nr = append(nr, rrow...)
					out.MustAppend(nr)
				}
			}
		}
		if !matched && n.JoinType == logical.JoinLeft {
			nr := make(storage.Row, 0, len(lrow)+rWidth)
			nr = append(nr, lrow...)
			for i := 0; i < rWidth; i++ {
				nr = append(nr, storage.Null)
			}
			out.MustAppend(nr)
		}
	}
	return out, nil
}

// hashKeys folds the key columns into one running FNV-64a state via
// Value.HashInto — no per-row string formatting or allocations. Rows with a
// NULL key return false: NULL keys never match.
func hashKeys(row storage.Row, idx []int) (uint64, bool) {
	h := storage.HashSeed
	for _, i := range idx {
		if row[i].IsNull() {
			return 0, false
		}
		h = row[i].HashInto(h)
	}
	return h, true
}

func keysEqual(l, r storage.Row, lIdx, rIdx []int) bool {
	for i := range lIdx {
		if !storage.Equal(l[lIdx[i]], r[rIdx[i]]) {
			return false
		}
	}
	return true
}

func runDistinct(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	out := newOutput(n, in)
	seen := make(map[string]bool, len(in.Rows))
	var keyBuf []byte
	for _, row := range in.Rows {
		keyBuf = keyBuf[:0]
		for _, v := range row {
			keyBuf = appendTaggedKey(keyBuf, v)
			keyBuf = append(keyBuf, 0)
		}
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out.MustAppend(row)
		}
	}
	return out, nil
}

func runSort(n *logical.Node, in *storage.Table) (*storage.Table, error) {
	keys := make([]expr.Compiled, len(n.SortKeys))
	for i, k := range n.SortKeys {
		c, err := expr.Compile(k.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		keys[i] = c
	}
	out := newOutput(n, in)
	out.Rows = make([]storage.Row, len(in.Rows))
	copy(out.Rows, in.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool {
		for k, key := range keys {
			c := storage.Compare(key(out.Rows[i]), key(out.Rows[j]))
			if n.SortKeys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		// Full-row tie-break: equal-key orderings must not depend on how
		// rows happened to arrive, or they would drift between engines.
		// Fully identical rows fall through to stable input order.
		return compareRowsFull(out.Rows[i], out.Rows[j]) < 0
	})
	// Rows were copied, not appended; recompute the byte accounting.
	rebuilt := newOutput(n, in)
	for _, r := range out.Rows {
		rebuilt.MustAppend(r)
	}
	return rebuilt, nil
}

// compareRowsFull orders two rows of the same schema column-wise; it is the
// sort tie-break shared by both engines.
func compareRowsFull(a, b storage.Row) int {
	for i := range a {
		if c := storage.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func runLimit(n *logical.Node, in *storage.Table) *storage.Table {
	out := newOutput(n, in)
	limit := n.LimitN
	if limit > len(in.Rows) {
		limit = len(in.Rows)
	}
	for _, row := range in.Rows[:limit] {
		out.MustAppend(row)
	}
	return out
}

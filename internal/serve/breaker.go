// Circuit breaker for the DW-backed multistore path. The serving layer
// counts consecutive queries whose multistore plan collapsed onto the HV
// fallback because DW retries were exhausted; once the count reaches the
// threshold the breaker opens and queries are routed onto the forced
// HV-only path (multistore.System.RunDegraded) instead of burning retry
// budget against a store that is down. After a cooldown the breaker
// half-opens and lets exactly one probe query through the normal path:
// success closes the breaker, another DW exhaustion re-opens it.
package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed is normal service: queries take the multistore path.
	BreakerClosed BreakerState = iota
	// BreakerOpen routes every query onto the degraded HV-only path.
	BreakerOpen
	// BreakerHalfOpen lets a single probe query try the multistore path.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the DW circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive DW-exhaustion fallbacks that
	// trips the breaker. Zero means DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening.
	// Zero means DefaultBreakerCooldown.
	Cooldown time.Duration
}

// Breaker defaults: three consecutive DW exhaustions trip the breaker,
// which then half-opens after one second of wall time.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = time.Second
)

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	return c
}

// breaker is the state machine. The clock is injected so tests can drive
// the cooldown deterministically.
type breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time

	state    BreakerState
	failures int       // consecutive DW exhaustions while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int
	probes   int
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow decides the path for the next query: true means the multistore
// path, false means the degraded HV-only path. In the half-open state the
// first caller claims the probe slot (and must later report a verdict or
// release the slot); everyone else stays degraded until the probe
// resolves.
func (b *breaker) allow() (normal bool, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		fallthrough
	case BreakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		b.probes++
		return true, true
	}
	return true, false
}

// recordSuccess reports a query that exercised DW and came back clean.
func (b *breaker) recordSuccess(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	b.state = BreakerClosed
	b.failures = 0
}

// recordFailure reports a DW-exhaustion fallback. While closed it counts
// toward the threshold; a failed half-open probe re-opens immediately.
func (b *breaker) recordFailure(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		b.trip()
		return
	}
	if b.state != BreakerClosed {
		return
	}
	b.failures++
	if b.failures >= b.cfg.Threshold {
		b.trip()
	}
}

// releaseProbe returns an unused probe slot: the probe query never
// reached a DW verdict (it was HV-only by plan, shed, or abandoned), so
// the breaker stays half-open for the next caller.
func (b *breaker) releaseProbe(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.trips++
}

// snapshot returns the current state and counters.
func (b *breaker) snapshot() (state BreakerState, trips, probes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.probes
}

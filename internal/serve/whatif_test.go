package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/serve"
	"miso/internal/workload"
)

// TestConcurrentWhatIfCostingDuringSoak hammers the optimizer's what-if
// interface from 16 goroutines while a zero-fault serving soak (queries
// plus online reorganizations) runs against the same system. Under the
// race detector this regresses the costing path's concurrency contract:
// optimizer.Cost is a pure read of the stores, the estimator, and the
// design, so concurrent costing must neither race with live execution
// and reorganization nor perturb them.
func TestConcurrentWhatIfCostingDuringSoak(t *testing.T) {
	const costers = 16
	sys := newSoakSystem(t, 0)
	srv := serve.NewServer(serve.Config{
		Workers:      4,
		QueueDepth:   costers,
		DrainTimeout: 10 * time.Second,
	}, sys)

	// Private prewarmed plans for the cost hammer: the serving plane
	// builds its own, so the only state shared with live traffic is the
	// stores, the estimator, and the live design.
	builder := logical.NewBuilder(sys.Catalog())
	var plans []*logical.Node
	for _, q := range workload.Evolving()[:8] {
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			t.Fatalf("build %s: %v", q.Name, err)
		}
		plan.PrewarmSignatures()
		plans = append(plans, plan)
	}

	stop := make(chan struct{})
	var costWG sync.WaitGroup
	for g := 0; g < costers; g++ {
		costWG.Add(1)
		go func(g int) {
			defer costWG.Done()
			opt := sys.Optimizer()
			live := sys.Design()
			empty := optimizer.EmptyDesign()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				plan := plans[(g+i)%len(plans)]
				d := live
				if i%2 == 1 {
					d = empty
				}
				if c := opt.Cost(plan, d); c < 0 {
					t.Errorf("coster %d: negative cost %f", g, c)
					return
				}
			}
		}(g)
	}

	// The soak: two sessions replay the workload's first 12 queries
	// (enough to cover both reorganizations) while the drain barrier
	// cycles, swapping both stores' designs under the costers' feet.
	sqls := workload.SQLs()[:12]
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, sql := range sqls {
				if _, err := srv.Do(context.Background(), sql); err != nil &&
					!errors.Is(err, serve.ErrShed) {
					t.Errorf("query %d: %v", i, err)
				}
			}
		}()
	}
	reorgDone := make(chan struct{})
	go func() {
		defer close(reorgDone)
		for i := 0; i < 2; i++ {
			time.Sleep(20 * time.Millisecond)
			if err := srv.Reorganize(); err != nil {
				t.Errorf("online reorg %d: %v", i, err)
			}
		}
	}()

	wg.Wait()
	<-reorgDone
	close(stop)
	costWG.Wait()
	srv.Close()

	if err := srv.Metrics().Check(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

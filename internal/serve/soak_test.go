package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

func newSoakSystem(t *testing.T, faultRate float64) *multistore.System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	if faultRate > 0 {
		cfg.Faults = faults.Uniform(faultRate)
		cfg.FaultSeed = 42
	}
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys
}

// TestServeSoak is the acceptance soak: eight concurrent sessions each
// replay the full 32-query workload through one server over a faulty
// (5%) MS-MISO system while a background goroutine forces online
// reorganizations. The run must terminate (no deadlock), account every
// submission, keep the serving metrics consistent with the system
// metrics, and leave the catalog invariants intact.
func TestServeSoak(t *testing.T) {
	const sessions = 8
	sys := newSoakSystem(t, 0.05)
	srv := serve.NewServer(serve.Config{
		Workers:      4,
		QueueDepth:   sessions,
		QueryTimeout: 30 * time.Second, // generous: wall time per query is milliseconds
		DrainTimeout: 10 * time.Second,
	}, sys)

	sqls := workload.SQLs()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var sheds, failures int
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, sql := range sqls {
				_, err := srv.Do(context.Background(), sql)
				switch {
				case err == nil:
				case errors.Is(err, serve.ErrShed):
					mu.Lock()
					sheds++
					mu.Unlock()
				default:
					mu.Lock()
					failures++
					mu.Unlock()
					t.Errorf("query %d: %v", i, err)
				}
			}
		}()
	}

	// Exercise the drain barrier concurrently with live traffic.
	reorgDone := make(chan struct{})
	go func() {
		defer close(reorgDone)
		for i := 0; i < 3; i++ {
			time.Sleep(50 * time.Millisecond)
			if err := srv.Reorganize(); err != nil {
				t.Errorf("online reorg %d: %v", i, err)
			}
		}
	}()

	wg.Wait()
	<-reorgDone
	srv.Close()

	m := srv.Metrics()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != sessions*len(sqls) {
		t.Fatalf("submitted %d, want %d", m.Submitted, sessions*len(sqls))
	}
	if m.Sheds != sheds {
		t.Fatalf("server counted %d sheds, sessions saw %d", m.Sheds, sheds)
	}
	if m.Reorgs != 3 {
		t.Fatalf("reorgs = %d, want 3", m.Reorgs)
	}
	if failures != 0 {
		t.Fatalf("%d queries failed outright", failures)
	}

	sm := sys.Metrics()
	if sm.Queries != m.Completed {
		t.Fatalf("system completed %d queries, server counted %d", sm.Queries, m.Completed)
	}
	if sm.Canceled != m.Timeouts+m.Canceled {
		t.Fatalf("system canceled %d, server booked %d timeouts + %d cancels",
			sm.Canceled, m.Timeouts, m.Canceled)
	}
	if sm.Degraded != m.Degraded {
		t.Fatalf("system degraded %d, server counted %d", sm.Degraded, m.Degraded)
	}
	if sm.Recovery <= 0 {
		t.Error("expected nonzero recovery time at a 5% fault rate")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServeMatchesSequentialRun checks the serving layer is a strict
// no-op around a healthy system: one session, zero faults, no deadline —
// the TTI breakdown must be byte-identical to calling System.Run in a
// loop.
func TestServeMatchesSequentialRun(t *testing.T) {
	sqls := workload.SQLs()

	seq := newSoakSystem(t, 0)
	for i, sql := range sqls {
		if _, err := seq.Run(sql); err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
	}

	served := newSoakSystem(t, 0)
	srv := serve.NewServer(serve.Config{Workers: 1}, served)
	for i, sql := range sqls {
		if _, err := srv.Do(context.Background(), sql); err != nil {
			t.Fatalf("served query %d: %v", i, err)
		}
	}
	srv.Close()

	if sm, qm := seq.Metrics(), served.Metrics(); sm != qm {
		t.Fatalf("served metrics diverge from sequential run:\nseq:    %+v\nserved: %+v", sm, qm)
	}
	if st := srv.BreakerState(); st != serve.BreakerClosed {
		t.Fatalf("breaker %s after a healthy run, want closed", st)
	}
	if err := srv.Metrics().Check(); err != nil {
		t.Fatal(err)
	}
}

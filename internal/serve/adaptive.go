package serve

import (
	"sort"
	"sync"
	"time"
)

// AdaptiveConfig tunes the AIMD concurrency limiter: when the p99 of
// served-query latencies over a window exceeds TargetP99, the effective
// worker limit halves (multiplicative decrease — brownout); while p99
// stays under target, it creeps back up one slot per window (additive
// increase) toward Config.Workers. The zero value disables the limiter.
type AdaptiveConfig struct {
	// TargetP99 is the latency objective for served queries. Zero
	// disables adaptive limiting.
	TargetP99 time.Duration
	// Window is how many served latencies feed one adjustment decision.
	// Zero means 32.
	Window int
	// Min floors the limit so the server always makes some progress.
	// Zero means 1.
	Min int
}

// limiter is the AIMD gate workers pass through before executing. A nil
// limiter is a no-op (adaptive limiting disabled).
type limiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  AdaptiveConfig
	max  int // Config.Workers: the additive-increase ceiling
	lim  int
	busy int
	lats []time.Duration
	incs int
	decs int
}

func newLimiter(cfg AdaptiveConfig, workers int) *limiter {
	if cfg.TargetP99 <= 0 {
		return nil
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Min <= 0 {
		cfg.Min = 1
	}
	l := &limiter{cfg: cfg, max: workers, lim: workers,
		lats: make([]time.Duration, 0, cfg.Window)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// acquire blocks until a concurrency slot is free. Workers call it
// *before* taking the drain barrier so a squeezed limit can never hold
// read locks that Reorganize's write lock is waiting behind.
func (l *limiter) acquire() {
	if l == nil {
		return
	}
	l.mu.Lock()
	for l.busy >= l.lim {
		l.cond.Wait()
	}
	l.busy++
	l.mu.Unlock()
}

func (l *limiter) release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.busy--
	l.mu.Unlock()
	l.cond.Signal()
}

// observe feeds one served-query latency; every full window adjusts the
// limit (AIMD) and wakes any waiters the new limit admits.
func (l *limiter) observe(d time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.lats = append(l.lats, d)
	if len(l.lats) >= l.cfg.Window {
		sorted := append([]time.Duration(nil), l.lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p99 := sorted[(len(sorted)*99)/100]
		if p99 > l.cfg.TargetP99 {
			l.lim /= 2
			if l.lim < l.cfg.Min {
				l.lim = l.cfg.Min
			}
			l.decs++
		} else if l.lim < l.max {
			l.lim++
			l.incs++
		}
		l.lats = l.lats[:0]
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// snapshot returns the current limit and the adjustment counts.
func (l *limiter) snapshot() (lim, incs, decs int) {
	if l == nil {
		return 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lim, l.incs, l.decs
}

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenContention hammers a cooled-down breaker from many
// goroutines: exactly one caller may claim the half-open probe slot, and
// the open→half-open transition must happen exactly once — run with -race
// this is the double-probe regression.
func TestBreakerHalfOpenContention(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond}, clk.Now)
	b.recordFailure(false) // threshold 1: trips immediately
	if st, trips, _ := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("expected open after one failure, got %v with %d trips", st, trips)
	}
	clk.Advance(2 * time.Millisecond) // past cooldown: next allow half-opens

	const contenders = 64
	var probes, normals atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			normal, probe := b.allow()
			if probe {
				probes.Add(1)
			}
			if normal {
				normals.Add(1)
			}
			if normal != probe {
				t.Errorf("half-open allow() returned normal=%v probe=%v; they must agree", normal, probe)
			}
		}()
	}
	wg.Wait()
	if got := probes.Load(); got != 1 {
		t.Fatalf("%d contenders claimed the probe slot, want exactly 1", got)
	}
	if got := normals.Load(); got != 1 {
		t.Fatalf("%d contenders took the normal path, want exactly 1 (the probe)", got)
	}
	if st, _, p := b.snapshot(); st != BreakerHalfOpen || p != 1 {
		t.Fatalf("expected half-open with 1 probe admitted, got %v with %d", st, p)
	}

	// The probe's verdict resolves the contention exactly once: success
	// closes, and a fresh storm of callers all pass without probing.
	b.recordSuccess(true)
	if st, trips, _ := b.snapshot(); st != BreakerClosed || trips != 1 {
		t.Fatalf("expected closed after probe success, got %v with %d trips", st, trips)
	}
	for i := 0; i < 8; i++ {
		if normal, probe := b.allow(); !normal || probe {
			t.Fatalf("closed breaker returned normal=%v probe=%v", normal, probe)
		}
	}

	// A failed probe re-opens exactly once even after the contention round.
	b.recordFailure(false)
	clk.Advance(2 * time.Millisecond)
	if _, probe := b.allow(); !probe {
		t.Fatalf("expected to claim the probe after second cooldown")
	}
	b.recordFailure(true)
	if st, trips, _ := b.snapshot(); st != BreakerOpen || trips != 3 {
		t.Fatalf("expected re-opened breaker after failed probe (trips: initial, re-trip, probe), got %v with %d trips", st, trips)
	}
}

// TestBreakerProbeRelease: a probe that never reaches a DW verdict
// returns its slot, so the next caller can probe instead of the breaker
// wedging half-open forever.
func TestBreakerProbeRelease(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond}, clk.Now)
	b.recordFailure(false)
	clk.Advance(2 * time.Millisecond)
	if _, probe := b.allow(); !probe {
		t.Fatal("expected first caller to claim the probe")
	}
	if normal, probe := b.allow(); normal || probe {
		t.Fatal("second caller must stay degraded while the probe is in flight")
	}
	b.releaseProbe(true)
	if _, probe := b.allow(); !probe {
		t.Fatal("released probe slot must be claimable again")
	}
}

// TestQuotaWeightedFairness drives the token buckets with a fake clock:
// tokens refill proportional to weight, a hot tenant drains only its own
// bucket, and a cold tenant's admission is untouched by the hot tenant's
// storm.
func TestQuotaWeightedFairness(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	q := newQuotas(QuotaConfig{
		RatePerSec: 8,
		Burst:      2,
		Tenants: map[string]TenantConfig{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		},
	}, clk.Now)

	// First sight creates full buckets: each tenant gets its burst, then
	// sheds with the clock frozen (no refill).
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < 2; i++ {
			if !q.admit(tenant) {
				t.Fatalf("%s admission %d rejected within burst", tenant, i)
			}
		}
		if q.admit(tenant) {
			t.Fatalf("%s admitted past its burst with a frozen clock", tenant)
		}
	}

	// Refill is weight-proportional: over 0.5s at 8/s with weights 3:1,
	// heavy accrues 3 tokens (capped at burst 2) and light exactly 1.
	clk.Advance(500 * time.Millisecond)
	heavy, light := 0, 0
	for q.admit("heavy") {
		heavy++
	}
	for q.admit("light") {
		light++
	}
	if heavy != 2 || light != 1 {
		t.Fatalf("after 0.5s refill: heavy admitted %d (want 2, burst-capped), light %d (want 1)", heavy, light)
	}

	// Isolation: a hot tenant hammering its empty bucket doesn't consume
	// anything the cold tenant is owed.
	for i := 0; i < 1000; i++ {
		q.admit("heavy")
	}
	clk.Advance(500 * time.Millisecond)
	if !q.admit("light") {
		t.Fatal("cold tenant starved by the hot tenant's shed storm")
	}
}

// TestAdaptiveLimiterAIMD: a window of latencies over target halves the
// limit (repeatedly, floored at Min); windows under target creep it back
// up one slot at a time to the worker ceiling.
func TestAdaptiveLimiterAIMD(t *testing.T) {
	l := newLimiter(AdaptiveConfig{TargetP99: 100 * time.Millisecond, Window: 4, Min: 1}, 8)
	feed := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			l.observe(d)
		}
	}

	if lim, _, _ := l.snapshot(); lim != 8 {
		t.Fatalf("initial limit %d, want the worker ceiling 8", lim)
	}
	feed(200*time.Millisecond, 4) // one slow window: 8 -> 4
	feed(200*time.Millisecond, 4) // 4 -> 2
	feed(200*time.Millisecond, 4) // 2 -> 1
	feed(200*time.Millisecond, 4) // floored at Min
	if lim, _, decs := l.snapshot(); lim != 1 || decs != 4 {
		t.Fatalf("after 4 slow windows: limit %d (want 1), decreases %d (want 4)", lim, decs)
	}
	feed(time.Millisecond, 4*10) // fast windows: 1 -> 8, then saturates at max
	if lim, incs, _ := l.snapshot(); lim != 8 || incs != 7 {
		t.Fatalf("after recovery: limit %d (want 8), increases %d (want 7)", lim, incs)
	}
}

// TestAdaptiveLimiterBlocksAtLimit: with the limit squeezed to one, a
// second acquire blocks until the first slot is released.
func TestAdaptiveLimiterBlocksAtLimit(t *testing.T) {
	l := newLimiter(AdaptiveConfig{TargetP99: time.Millisecond, Window: 1, Min: 1}, 2)
	l.observe(time.Second) // one slow window: limit 2 -> 1

	l.acquire()
	entered := make(chan struct{})
	go func() {
		l.acquire()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("second acquire proceeded past a limit of 1")
	case <-time.After(20 * time.Millisecond):
	}
	l.release()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never woke after release")
	}
	l.release()
}

// TestOverloadPlaneDisabledIsNoOp: the zero-value Quota/Adaptive configs
// must leave the serving plane exactly as before — full worker
// concurrency, no quota sheds, no limit adjustments — while per-tenant
// accounting still works.
func TestOverloadPlaneDisabledIsNoOp(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 8}, &stubBackend{})
	defer srv.Close()

	if lim := srv.ConcurrencyLimit(); lim != 2 {
		t.Fatalf("disabled limiter reports concurrency %d, want the worker count 2", lim)
	}
	for i := 0; i < 6; i++ {
		if _, err := srv.DoAs(context.Background(), "t0", "q"); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	m := srv.Metrics()
	if m.QuotaSheds != 0 || m.LimitIncreases != 0 || m.LimitDecreases != 0 {
		t.Fatalf("disabled overload plane touched its counters: %+v", m)
	}
	ts := srv.TenantStats()
	if len(ts) != 1 || ts[0].Tenant != "t0" || ts[0].Served != 6 || ts[0].Shed != 0 {
		t.Fatalf("tenant accounting off: %+v", ts)
	}
}

// TestQuotaShedsAreTenantScoped: with quotas on, a tenant whose bucket is
// empty sheds with ErrQuotaShed (which also matches ErrShed), the serve
// metrics count it under both Sheds and QuotaSheds, and other tenants
// keep being served.
func TestQuotaShedsAreTenantScoped(t *testing.T) {
	srv := NewServer(Config{
		Workers: 2, QueueDepth: 8,
		Quota: QuotaConfig{RatePerSec: 0.001, Burst: 1},
	}, &stubBackend{})
	defer srv.Close()

	if _, err := srv.DoAs(context.Background(), "hot", "q"); err != nil {
		t.Fatalf("first query within burst: %v", err)
	}
	_, err := srv.DoAs(context.Background(), "hot", "q")
	if !errors.Is(err, ErrQuotaShed) {
		t.Fatalf("second query should shed on quota, got %v", err)
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("a quota shed must also match ErrShed, got %v", err)
	}
	if _, err := srv.DoAs(context.Background(), "cold", "q"); err != nil {
		t.Fatalf("cold tenant must be unaffected: %v", err)
	}
	m := srv.Metrics()
	if m.QuotaSheds != 1 || m.Sheds != 1 {
		t.Fatalf("expected 1 quota shed counted as a shed, got %+v", m)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range srv.TenantStats() {
		switch ts.Tenant {
		case "hot":
			if ts.Served != 1 || ts.Shed != 1 {
				t.Fatalf("hot tenant ledger off: %+v", ts)
			}
		case "cold":
			if ts.Served != 1 || ts.Shed != 0 {
				t.Fatalf("cold tenant ledger off: %+v", ts)
			}
		}
	}
}

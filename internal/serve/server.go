// Package serve is the concurrent query-serving frontend over the
// multistore system. It adds the operational plane a shared deployment
// needs on top of multistore.System's serialized execution core: a
// bounded worker pool fed by an admission queue that sheds load when
// full, per-query deadlines that abandon work mid-plan through
// context.Context, a circuit breaker that routes queries onto the
// degraded HV-only path while DW is unhealthy, and online
// reorganization that quiesces in-flight queries behind a drain barrier
// before mutating the physical design.
//
// Queries still execute one at a time inside the backend (the paper's
// single-stream model); concurrency here is about admission, deadline
// enforcement, and health-based routing, not parallel plan execution.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
)

// Typed errors callers match with errors.Is.
var (
	// ErrShed marks a query rejected at admission because the queue was
	// full: no work was started and nothing was charged.
	ErrShed = errors.New("serve: admission queue full, query shed")
	// ErrClosed marks a submission to a server that has been closed.
	ErrClosed = errors.New("serve: server closed")
)

// Backend is the execution engine the server drives. *multistore.System
// implements it; tests substitute stubs to exercise the serving plane in
// isolation.
type Backend interface {
	// RunContext executes one query on the normal (multistore) path.
	RunContext(ctx context.Context, sql string) (*multistore.QueryReport, error)
	// RunDegraded executes one query on the forced HV-only path.
	RunDegraded(ctx context.Context, sql string) (*multistore.QueryReport, error)
	// Reorganize runs one reorganization phase. The server guarantees no
	// query is in flight when it is called.
	Reorganize() error
}

// Config tunes the serving frontend. The zero value is usable: 4
// workers, a queue twice the worker count, no per-query deadline, a 30s
// drain timeout, and default breaker thresholds.
type Config struct {
	// Workers is the number of concurrent serving workers: how many
	// queries run at once. It is independent of the data-path parallelism
	// inside each query, which the backend system sets via
	// multistore.Config.ExecWorkers (the exec morsel engine).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond
	// Workers+QueueDepth in flight are shed with ErrShed.
	QueueDepth int
	// QueryTimeout is the per-query deadline applied at admission; zero
	// disables it. The deadline covers queue wait plus execution.
	QueryTimeout time.Duration
	// DrainTimeout bounds how long Reorganize waits for in-flight queries
	// to finish before canceling them.
	DrainTimeout time.Duration
	// Breaker tunes the DW circuit breaker.
	Breaker BreakerConfig
	// Quota gates admission per tenant with weighted-fair token buckets
	// (the zero value admits everything, as before).
	Quota QuotaConfig
	// Adaptive squeezes the effective worker count when served p99
	// exceeds a target (the zero value leaves all Workers available).
	Adaptive AdaptiveConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Metrics counts what the serving plane did. Every submission lands in
// exactly one of Completed, Sheds, Timeouts, Canceled, Aborted,
// PanicsContained, or Failed, so Submitted always equals their sum.
type Metrics struct {
	// Submitted counts calls to Do that passed the closed check.
	Submitted int
	// Completed counts queries that returned a report (including
	// degraded ones).
	Completed int
	// Sheds counts queries rejected at admission (ErrShed), whether by a
	// full queue or an empty tenant bucket.
	Sheds int
	// QuotaSheds counts the subset of Sheds rejected by a tenant quota
	// (ErrQuotaShed) rather than the shared queue.
	QuotaSheds int
	// Timeouts counts queries abandoned because their deadline fired.
	Timeouts int
	// Canceled counts queries abandoned by caller- or drain-initiated
	// cancellation.
	Canceled int
	// Aborted counts queries killed for exceeding their memory budget
	// (the backend error wraps govern.ErrMemLimit).
	Aborted int
	// PanicsContained counts queries that failed because a worker panic —
	// in the exec engine or the serving worker itself — was caught and
	// converted to a typed error (wrapping govern.ErrInternal) instead of
	// crashing the process.
	PanicsContained int
	// Failed counts queries that errored for any other reason.
	Failed int
	// Degraded counts completed queries served on the forced HV-only
	// path while the breaker was open.
	Degraded int
	// BreakerTrips counts closed→open (and half-open→open) transitions.
	BreakerTrips int
	// BreakerProbes counts half-open probe queries admitted to the
	// normal path.
	BreakerProbes int
	// Reorgs counts completed online reorganizations.
	Reorgs int
	// ReorgCancels counts in-flight queries canceled by a drain barrier
	// that hit its timeout.
	ReorgCancels int
	// LimitIncreases and LimitDecreases count the adaptive limiter's
	// AIMD adjustments (additive recoveries and multiplicative
	// brownouts).
	LimitIncreases int
	LimitDecreases int
}

// Check verifies the accounting invariant.
func (m Metrics) Check() error {
	sum := m.Completed + m.Sheds + m.Timeouts + m.Canceled + m.Aborted + m.PanicsContained + m.Failed
	if sum != m.Submitted {
		return fmt.Errorf("serve: %d submissions but outcomes sum to %d", m.Submitted, sum)
	}
	return nil
}

type jobResult struct {
	rep *multistore.QueryReport
	err error
}

type job struct {
	ctx    context.Context
	sql    string
	tenant string
	done   chan jobResult
	// canceledAt is the wall-clock nanosecond the job's context was
	// canceled (stamped by a context.AfterFunc), or 0 while live. The
	// worker reads it after the backend returns to measure cancel-to-idle
	// latency: how long a canceled query kept its worker busy.
	canceledAt atomic.Int64
}

// Server is the serving frontend. Create it with NewServer; Do submits
// queries from any goroutine; Close drains the workers.
//
// Reorganize quiesces the serving plane behind the drain barrier before
// the backend tunes, so the tuner's parallel what-if workers (which only
// read stores and estimator state) never overlap live queries' fault
// injector draws or WAL appends.
type Server struct {
	cfg     Config
	backend Backend
	br      *breaker
	lim     *limiter
	jobs    chan *job
	wg      sync.WaitGroup

	// gate is the drain barrier: every executing query holds it for
	// read, Reorganize holds it for write.
	gate sync.RWMutex

	mu        sync.Mutex // guards closed, metrics, inflight, nextID, cancelLat, quo, tstats, reorgHook
	closed    bool
	metrics   Metrics
	inflight  map[int]context.CancelFunc
	nextID    int
	cancelLat []time.Duration
	quo       *quotas
	tstats    map[string]*TenantStats
	reorgHook func()
}

// NewServer starts the worker pool over the backend.
func NewServer(cfg Config, backend Backend) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		backend:  backend,
		br:       newBreaker(cfg.Breaker, nil),
		lim:      newLimiter(cfg.Adaptive, cfg.Workers),
		jobs:     make(chan *job, cfg.QueueDepth),
		inflight: map[int]context.CancelFunc{},
		quo:      newQuotas(cfg.Quota, nil),
		tstats:   map[string]*TenantStats{},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Do submits one query and blocks until it resolves. The returned error
// is ErrShed when the queue was full, ErrClosed after Close, a
// context error (possibly wrapped by the backend) when the deadline
// fired or ctx was canceled, or the backend's execution error.
// Queries submitted via Do belong to the empty ("") tenant.
func (s *Server) Do(ctx context.Context, sql string) (*multistore.QueryReport, error) {
	return s.DoAs(ctx, "", sql)
}

// DoAs is Do with a tenant ID: the query is admitted against the
// tenant's quota bucket (when quotas are configured) and counted in its
// TenantStats either way. An empty bucket sheds with ErrQuotaShed, which
// wraps ErrShed.
func (s *Server) DoAs(ctx context.Context, tenant, sql string) (*multistore.QueryReport, error) {
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	j := &job{ctx: ctx, sql: sql, tenant: tenant, done: make(chan jobResult, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.metrics.Submitted++
	t := s.tenant(tenant)
	t.Submitted++
	// Per-tenant admission runs before the shared queue: a hot tenant
	// exhausts its own bucket and sheds there, leaving queue space for
	// the tenants still inside their budgets.
	if s.quo != nil && !s.quo.admit(tenant) {
		s.metrics.Sheds++
		s.metrics.QuotaSheds++
		t.Shed++
		s.mu.Unlock()
		return nil, fmt.Errorf("tenant %q: %w (%w)", tenant, ErrQuotaShed, ErrShed)
	}
	// Admission: non-blocking send under s.mu, which also excludes Close,
	// so the channel cannot be closed under the send.
	select {
	case s.jobs <- j:
	default:
		s.metrics.Sheds++
		t.Shed++
		s.mu.Unlock()
		return nil, ErrShed
	}
	id := s.nextID
	s.nextID++
	s.inflight[id] = cancel
	s.mu.Unlock()

	res := <-j.done

	s.mu.Lock()
	delete(s.inflight, id)
	switch {
	case res.err == nil:
		s.metrics.Completed++
		t.Served++
		if res.rep != nil && res.rep.Degraded {
			s.metrics.Degraded++
		}
	case errors.Is(res.err, context.DeadlineExceeded):
		s.metrics.Timeouts++
		t.Failed++
	case errors.Is(res.err, context.Canceled):
		s.metrics.Canceled++
		t.Failed++
	case errors.Is(res.err, govern.ErrMemLimit):
		s.metrics.Aborted++
		t.Failed++
	case errors.Is(res.err, govern.ErrInternal):
		s.metrics.PanicsContained++
		t.Failed++
	default:
		s.metrics.Failed++
		t.Failed++
	}
	s.mu.Unlock()
	return res.rep, res.err
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		// The adaptive limit is taken before the drain barrier: a worker
		// parked by a brownout holds no read lock, so Reorganize can
		// always drain regardless of how far the limit has been squeezed.
		s.lim.acquire()
		start := time.Now()
		s.gate.RLock()
		// Stamp the moment the job's context dies so cancel-to-idle
		// latency can be measured when the backend hands the worker back.
		stop := context.AfterFunc(j.ctx, func() {
			j.canceledAt.Store(time.Now().UnixNano())
		})
		var res jobResult
		// Last-resort containment: a panic that escapes the backend's own
		// recovery (or lives in the serving plane itself) fails this query
		// with a typed error instead of crashing the whole server.
		if err := govern.Capture("serve worker", func() error {
			res = s.execute(j)
			return nil
		}); err != nil {
			res = jobResult{err: err}
		}
		stop()
		if at := j.canceledAt.Load(); at != 0 && isCancelErr(res.err) {
			lat := time.Since(time.Unix(0, at))
			s.mu.Lock()
			s.cancelLat = append(s.cancelLat, lat)
			s.mu.Unlock()
		}
		s.gate.RUnlock()
		s.lim.release()
		if res.err == nil {
			s.lim.observe(time.Since(start))
		}
		j.done <- res
	}
}

// isCancelErr reports whether err is how a canceled or timed-out query
// surfaces from the backend.
func isCancelErr(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// execute routes one query through the breaker and records the verdict.
func (s *Server) execute(j *job) jobResult {
	normal, probe := s.br.allow()
	if !normal {
		rep, err := s.backend.RunDegraded(j.ctx, j.sql)
		return jobResult{rep: rep, err: err}
	}
	rep, err := s.backend.RunContext(j.ctx, j.sql)
	switch {
	case err != nil:
		// Abandoned or hard-failed before a DW verdict: the probe slot (if
		// held) goes back so the next query can try.
		s.br.releaseProbe(probe)
	case rep.FellBackToHV && errors.Is(rep.FallbackCause, faults.ErrExhausted):
		s.br.recordFailure(probe)
	case !rep.HVOnly:
		// DW was actually exercised and the query completed.
		s.br.recordSuccess(probe)
	default:
		// An HV-only plan proves nothing about DW health.
		s.br.releaseProbe(probe)
	}
	return jobResult{rep: rep, err: err}
}

// Reorganize quiesces the serving plane and runs one reorganization.
// It blocks new executions behind the drain barrier, waits up to
// DrainTimeout for in-flight queries to finish, cancels the stragglers
// (their partial work is charged to RECOVERY by the backend), and then
// reorganizes with exclusive access. Queued queries resume afterwards.
// The barrier cannot deadlock: every query reaches a cancellation
// checkpoint in bounded work, so a canceled straggler always releases
// its read lock.
func (s *Server) Reorganize() error {
	acquired := make(chan struct{})
	go func() {
		s.gate.Lock()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(s.cfg.DrainTimeout):
		// Drain timed out: cancel everything in flight and wait for the
		// barrier. (sync.RWMutex is not goroutine-affine, so unlocking
		// here a lock acquired in the helper goroutine is well-defined.)
		s.mu.Lock()
		for _, cancel := range s.inflight {
			cancel()
			s.metrics.ReorgCancels++
		}
		s.mu.Unlock()
		<-acquired
	}
	defer s.gate.Unlock()

	s.mu.Lock()
	hook := s.reorgHook
	s.mu.Unlock()
	if hook != nil {
		hook()
	}
	err := s.backend.Reorganize()
	s.mu.Lock()
	s.metrics.Reorgs++
	s.mu.Unlock()
	return err
}

// SetReorgHook registers fn to run inside the drain barrier — write gate
// held, no query in flight — immediately before every online
// reorganization. The reuse plane registers its cache invalidation here:
// clearing between the drain and the design change means no in-flight
// query can repopulate the cache with pre-reorg results. A nil fn clears
// the hook.
func (s *Server) SetReorgHook(fn func()) {
	s.mu.Lock()
	s.reorgHook = fn
	s.mu.Unlock()
}

// Quiesce registers background work (the integrity scrubber) with the
// drain barrier and returns its release function. The caller may then
// touch backend state knowing Reorganize is not mid-flight: the barrier
// is held for read, exactly as an executing query holds it, so scrub
// chunks and reorganizations strictly alternate — a scrub pass observes
// the catalog entirely before or entirely after a reorg, never during.
// Unlike Do, Quiesce does not occupy a worker or an adaptive-limit slot;
// the scrubber must not compete with queries for admission.
func (s *Server) Quiesce() (release func()) {
	s.gate.RLock()
	return s.gate.RUnlock
}

// Close stops admission, waits for queued and in-flight queries to
// finish, and returns. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// Metrics returns a snapshot of the serving counters, including the
// breaker's trip and probe counts.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	_, m.BreakerTrips, m.BreakerProbes = s.br.snapshot()
	_, m.LimitIncreases, m.LimitDecreases = s.lim.snapshot()
	return m
}

// ConcurrencyLimit returns the adaptive limiter's current effective
// worker limit, or Config.Workers when adaptive limiting is disabled.
func (s *Server) ConcurrencyLimit() int {
	if s.lim == nil {
		return s.cfg.Workers
	}
	lim, _, _ := s.lim.snapshot()
	return lim
}

// CancelLatencies returns the cancel-to-idle latency of every canceled or
// timed-out query served so far: the real time between the query's context
// dying and its worker becoming free again. The governance plane's promise
// is that these stay bounded — a canceled query cannot hold a worker
// hostage past the next morsel claim or merge poll.
func (s *Server) CancelLatencies() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.cancelLat...)
}

// BreakerState returns the breaker's current position.
func (s *Server) BreakerState() BreakerState {
	st, _, _ := s.br.snapshot()
	return st
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBreakerStateMachine walks the breaker through every transition with
// a table of event sequences.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 10 * time.Second
	type step struct {
		op         string // "fail" | "failProbe" | "success" | "successProbe" | "allow" | "release" | "advance"
		wantState  BreakerState
		wantNormal bool // for "allow"
		wantProbe  bool // for "allow"
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "closed to open after threshold consecutive failures",
			steps: []step{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerOpen, wantNormal: false, wantProbe: false},
			},
		},
		{
			name: "success resets the consecutive failure count",
			steps: []step{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "success", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "success", wantState: BreakerClosed},
			},
		},
		{
			name: "open to half-open after cooldown, probe success closes",
			steps: []step{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerOpen, wantNormal: false},
				{op: "advance", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: true, wantProbe: true},
				// Only one probe flies at a time.
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: false},
				{op: "successProbe", wantState: BreakerClosed},
				{op: "allow", wantState: BreakerClosed, wantNormal: true},
			},
		},
		{
			name: "failed probe re-opens and a later probe may retry",
			steps: []step{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: true, wantProbe: true},
				{op: "failProbe", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerOpen, wantNormal: false},
				{op: "advance", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: true, wantProbe: true},
			},
		},
		{
			name: "released probe keeps the breaker half-open for the next query",
			steps: []step{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", wantState: BreakerOpen},
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: true, wantProbe: true},
				{op: "release", wantState: BreakerHalfOpen},
				{op: "allow", wantState: BreakerHalfOpen, wantNormal: true, wantProbe: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := &fakeClock{now: time.Unix(1000, 0)}
			b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: cooldown}, clock.Now)
			for i, st := range tc.steps {
				switch st.op {
				case "fail":
					b.recordFailure(false)
				case "failProbe":
					b.recordFailure(true)
				case "success":
					b.recordSuccess(false)
				case "successProbe":
					b.recordSuccess(true)
				case "release":
					b.releaseProbe(true)
				case "advance":
					clock.Advance(cooldown)
				case "allow":
					normal, probe := b.allow()
					if normal != st.wantNormal || probe != st.wantProbe {
						t.Fatalf("step %d: allow() = (%v, %v), want (%v, %v)",
							i, normal, probe, st.wantNormal, st.wantProbe)
					}
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
				if got, _, _ := b.snapshot(); got != st.wantState {
					t.Fatalf("step %d (%s): state %s, want %s", i, st.op, got, st.wantState)
				}
			}
		})
	}
}

func TestBreakerCountsTripsAndProbes(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, clock.Now)
	b.recordFailure(false) // trip 1
	clock.Advance(time.Second)
	b.allow()             // probe 1
	b.recordFailure(true) // trip 2
	clock.Advance(time.Second)
	b.allow() // probe 2
	b.recordSuccess(true)
	if _, trips, probes := b.snapshot(); trips != 2 || probes != 2 {
		t.Fatalf("trips=%d probes=%d, want 2 and 2", trips, probes)
	}
}

// stubBackend lets the serving-plane tests control execution without a
// real multistore system.
type stubBackend struct {
	mu       sync.Mutex
	started  chan string   // receives the SQL when RunContext begins
	block    chan struct{} // RunContext waits for this (or ctx) when set
	run      func(sql string) (*multistore.QueryReport, error)
	degraded int
	reorgs   int
}

func (b *stubBackend) RunContext(ctx context.Context, sql string) (*multistore.QueryReport, error) {
	if b.started != nil {
		b.started <- sql
	}
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if b.run != nil {
		return b.run(sql)
	}
	return &multistore.QueryReport{SQL: sql}, nil
}

func (b *stubBackend) RunDegraded(ctx context.Context, sql string) (*multistore.QueryReport, error) {
	b.mu.Lock()
	b.degraded++
	b.mu.Unlock()
	return &multistore.QueryReport{SQL: sql, HVOnly: true, Degraded: true}, nil
}

func (b *stubBackend) Reorganize() error {
	b.mu.Lock()
	b.reorgs++
	b.mu.Unlock()
	return nil
}

// TestAdmissionShedding fills the single worker and the one queue slot,
// then checks that the next submission is shed without touching the
// backend.
func TestAdmissionShedding(t *testing.T) {
	backend := &stubBackend{started: make(chan string, 4), block: make(chan struct{})}
	srv := NewServer(Config{Workers: 1, QueueDepth: 1}, backend)
	defer srv.Close()

	var wg sync.WaitGroup
	do := func() {
		defer wg.Done()
		if _, err := srv.Do(context.Background(), "q"); err != nil {
			t.Errorf("admitted query failed: %v", err)
		}
	}
	wg.Add(1)
	go do()
	<-backend.started // the worker is now busy

	wg.Add(1)
	go do()
	// The second submission lands in the queue slot; admission happens
	// under the server mutex, so once Submitted reaches 2 with no sheds
	// the slot is taken.
	for {
		m := srv.Metrics()
		if m.Submitted == 2 && m.Sheds == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := srv.Do(context.Background(), "q3"); !errors.Is(err, ErrShed) {
		t.Fatalf("third submission: err = %v, want ErrShed", err)
	}

	close(backend.block)
	wg.Wait()
	m := srv.Metrics()
	if m.Submitted != 3 || m.Completed != 2 || m.Sheds != 1 {
		t.Fatalf("metrics = %+v, want 3 submitted / 2 completed / 1 shed", m)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryTimeout checks the per-query deadline abandons a stuck query
// and books it as a timeout.
func TestQueryTimeout(t *testing.T) {
	backend := &stubBackend{block: make(chan struct{})}
	defer close(backend.block)
	srv := NewServer(Config{Workers: 1, QueryTimeout: 20 * time.Millisecond}, backend)
	defer srv.Close()

	_, err := srv.Do(context.Background(), "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	m := srv.Metrics()
	if m.Timeouts != 1 || m.Completed != 0 {
		t.Fatalf("metrics = %+v, want exactly one timeout", m)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerRoutesToDegradedPath drives the server's breaker open with
// DW-exhaustion fallbacks and checks queries are then served degraded.
func TestBreakerRoutesToDegradedPath(t *testing.T) {
	cause := faults.Exhausted(&faults.Fault{Site: faults.SiteDWQuery, Op: "query", Attempt: 6})
	backend := &stubBackend{
		run: func(sql string) (*multistore.QueryReport, error) {
			return &multistore.QueryReport{SQL: sql, FellBackToHV: true, FallbackCause: cause, HVOnly: true}, nil
		},
	}
	srv := NewServer(Config{Workers: 1, Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Hour}}, backend)
	defer srv.Close()

	for i := 0; i < 2; i++ {
		if _, err := srv.Do(context.Background(), "q"); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if st := srv.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker %s after threshold fallbacks, want open", st)
	}
	rep, err := srv.Do(context.Background(), "q")
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("query served while open is not marked degraded")
	}
	m := srv.Metrics()
	if m.Degraded != 1 || m.BreakerTrips != 1 {
		t.Fatalf("metrics = %+v, want 1 degraded / 1 trip", m)
	}
	if backend.degraded != 1 {
		t.Fatalf("backend saw %d degraded runs, want 1", backend.degraded)
	}
}

// TestReorganizeDrainsAndCancelsStragglers checks the drain barrier: a
// stuck in-flight query is canceled once DrainTimeout passes, the
// reorganization runs with the plane quiesced, and service resumes.
func TestReorganizeDrainsAndCancelsStragglers(t *testing.T) {
	backend := &stubBackend{started: make(chan string, 1), block: make(chan struct{})}
	defer close(backend.block)
	srv := NewServer(Config{Workers: 2, DrainTimeout: 30 * time.Millisecond}, backend)
	defer srv.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), "stuck")
		errc <- err
	}()
	<-backend.started

	if err := srv.Reorganize(); err != nil {
		t.Fatalf("reorganize: %v", err)
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("straggler err = %v, want context.Canceled", err)
	}
	if backend.reorgs != 1 {
		t.Fatalf("backend saw %d reorgs, want 1", backend.reorgs)
	}
	m := srv.Metrics()
	if m.Reorgs != 1 || m.ReorgCancels != 1 || m.Canceled != 1 {
		t.Fatalf("metrics = %+v, want 1 reorg / 1 reorg-cancel / 1 canceled", m)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}

	// The plane serves again after the barrier drops.
	backend.started = nil
	backend.block = nil
	if _, err := srv.Do(context.Background(), "after"); err != nil {
		t.Fatalf("query after reorg: %v", err)
	}
}

// TestMetricsGovernanceCounters checks the serving plane books the
// governance outcomes — memory-budget aborts, contained worker panics —
// in their own counters, keeps counting completions, and still satisfies
// the accounting invariant.
func TestMetricsGovernanceCounters(t *testing.T) {
	backend := &stubBackend{run: func(sql string) (*multistore.QueryReport, error) {
		switch sql {
		case "mem":
			return nil, fmt.Errorf("query aborted: %w", govern.ErrMemLimit)
		case "panic":
			panic("injected worker panic")
		}
		return &multistore.QueryReport{SQL: sql}, nil
	}}
	srv := NewServer(Config{Workers: 1}, backend)
	defer srv.Close()

	if _, err := srv.Do(context.Background(), "mem"); !errors.Is(err, govern.ErrMemLimit) {
		t.Fatalf("mem query: err = %v, want ErrMemLimit", err)
	}
	if _, err := srv.Do(context.Background(), "panic"); !errors.Is(err, govern.ErrInternal) {
		t.Fatalf("panic query: err = %v, want ErrInternal", err)
	}
	if _, err := srv.Do(context.Background(), "ok"); err != nil {
		t.Fatalf("ok query after a contained panic: %v", err)
	}

	m := srv.Metrics()
	if m.Aborted != 1 || m.PanicsContained != 1 || m.Completed != 1 {
		t.Fatalf("metrics = %+v, want 1 aborted / 1 panic contained / 1 completed", m)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRejectsNewWork checks post-Close submissions fail typed and
// Close is idempotent.
func TestCloseRejectsNewWork(t *testing.T) {
	srv := NewServer(Config{Workers: 1}, &stubBackend{})
	srv.Close()
	srv.Close()
	if _, err := srv.Do(context.Background(), "q"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

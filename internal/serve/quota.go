package serve

import (
	"errors"
	"sort"
	"time"
)

// ErrQuotaShed marks a query rejected because its tenant's token bucket
// was empty. It wraps ErrShed: callers that only distinguish "shed vs
// executed" keep working, callers that care can errors.Is against this.
var ErrQuotaShed = errors.New("serve: tenant admission quota exhausted")

// QuotaConfig configures weighted-fair per-tenant admission. Each tenant
// gets a token bucket refilled at RatePerSec × weight/Σweights (weights
// of tenants seen so far), so a hot tenant drains only its own bucket and
// sheds against its own budget instead of filling the shared queue and
// starving everyone. The zero value disables quotas entirely.
type QuotaConfig struct {
	// RatePerSec is the aggregate admission rate in queries per second,
	// shared across active tenants proportional to weight. Zero disables
	// quotas.
	RatePerSec float64
	// Burst is the default per-tenant bucket capacity. Zero means 8.
	Burst float64
	// Tenants overrides weight and burst per tenant ID; tenants not
	// listed get weight 1 and the default burst. The empty tenant ID
	// (untagged queries) is a tenant like any other.
	Tenants map[string]TenantConfig
}

// TenantConfig is one tenant's share of the admission rate.
type TenantConfig struct {
	// Weight is the tenant's share of RatePerSec relative to the other
	// active tenants. Zero means 1.
	Weight float64
	// Burst overrides the bucket capacity. Zero means QuotaConfig.Burst.
	Burst float64
}

// TenantStats is one tenant's admission ledger. Submitted always equals
// Served + Shed + Failed once the tenant's queries have resolved.
type TenantStats struct {
	Tenant    string
	Submitted int
	Served    int
	Shed      int
	Failed    int
}

type tenantBucket struct {
	weight float64
	burst  float64
	tokens float64
	stats  TenantStats
}

// quotas is the weighted-fair token-bucket admission gate. All methods
// are called under Server.mu; the injectable clock keeps tests
// deterministic.
type quotas struct {
	cfg     QuotaConfig
	now     func() time.Time
	last    time.Time
	total   float64 // Σ weight over buckets
	buckets map[string]*tenantBucket
}

func newQuotas(cfg QuotaConfig, now func() time.Time) *quotas {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	if now == nil {
		now = time.Now
	}
	return &quotas{cfg: cfg, now: now, last: now(), buckets: map[string]*tenantBucket{}}
}

// bucket returns the tenant's bucket, creating it full on first sight.
// A new tenant dilutes every later refill (Σweights grows), which is the
// weighted-fair part: shares rebalance as the active set changes.
func (q *quotas) bucket(tenant string) *tenantBucket {
	b, ok := q.buckets[tenant]
	if !ok {
		tc := q.cfg.Tenants[tenant]
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if tc.Burst <= 0 {
			tc.Burst = q.cfg.Burst
		}
		b = &tenantBucket{weight: tc.Weight, burst: tc.Burst, tokens: tc.Burst,
			stats: TenantStats{Tenant: tenant}}
		q.buckets[tenant] = b
		q.total += tc.Weight
	}
	return b
}

// refill credits every bucket for the time elapsed since the last call.
func (q *quotas) refill() {
	now := q.now()
	dt := now.Sub(q.last).Seconds()
	q.last = now
	if dt <= 0 || q.total <= 0 {
		return
	}
	for _, b := range q.buckets {
		b.tokens += dt * q.cfg.RatePerSec * b.weight / q.total
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
}

// admit takes one token from the tenant's bucket, reporting false (a
// quota shed) when it is empty.
func (q *quotas) admit(tenant string) bool {
	q.refill()
	b := q.bucket(tenant)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenant returns the Server-side stats record for the tenant, tracked
// whether or not quotas gate admission (tstats covers the no-quota case).
func (s *Server) tenant(id string) *TenantStats {
	t, ok := s.tstats[id]
	if !ok {
		t = &TenantStats{Tenant: id}
		s.tstats[id] = t
	}
	return t
}

// TenantStats returns a snapshot of every tenant's admission ledger,
// sorted by tenant ID.
func (s *Server) TenantStats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tstats))
	for _, t := range s.tstats {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

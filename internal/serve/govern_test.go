package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/storage"
	"miso/internal/workload"
)

func newGovernSystem(t *testing.T, v multistore.Variant, prof faults.Profile) *multistore.System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Faults = prof
	cfg.FaultSeed = 42
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys
}

// TestCancelFreesWorkersWithinBound is the cancellation regression: under
// a system where every morsel stalls (SiteSlowMorsel at rate 1), queries
// run long past the server's deadline, so the worker pool lives on
// cooperative cancellation. Every Do must return, every measured
// cancel-to-idle latency must stay under a generous bound, and a final
// uncanceled query must complete — proof that abandoned queries released
// their workers rather than wedging the pool.
func TestCancelFreesWorkersWithinBound(t *testing.T) {
	sys := newGovernSystem(t, multistore.VariantMSMiso,
		faults.Profile{}.With(faults.SiteSlowMorsel, 1))
	srv := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 8}, sys)
	defer srv.Close()

	// Deadlines ride the caller contexts, not the server config, so the
	// final worker-availability probe below runs without one.
	sqls := workload.SQLs()
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
				_, err := srv.Do(ctx, sqls[(session*2+i)%len(sqls)])
				cancel()
				switch {
				case err == nil:
				case errors.Is(err, context.DeadlineExceeded):
				case errors.Is(err, context.Canceled):
				default:
					t.Errorf("session %d query %d: unexpected outcome %v", session, i, err)
				}
			}
		}(s)
	}
	wg.Wait()

	m := srv.Metrics()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.Timeouts == 0 {
		t.Fatalf("metrics = %+v, want at least one deadline-exceeded query", m)
	}
	const bound = 3 * time.Second // generous: claims poll every morsel, stalls are <=2ms
	for _, lat := range srv.CancelLatencies() {
		if lat > bound {
			t.Fatalf("cancel-to-idle latency %s exceeds %s bound", lat, bound)
		}
	}

	// Both workers must be free again: an uncanceled query completes.
	if _, err := srv.Do(context.Background(), sqls[0]); err != nil {
		t.Fatalf("query after cancellation storm: %v (workers not released?)", err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPanicIsolation is the panic-containment regression: with
// worker panics injected into the exec plane, a panicking query must fail
// alone — wrapped in govern.ErrInternal, never terminating the process —
// while concurrent queries keep returning results byte-identical to a
// fault-free baseline. HV-ONLY retains nothing between queries, so each
// query's fault-free result is the ground truth under any interleaving.
func TestWorkerPanicIsolation(t *testing.T) {
	sqls := workload.SQLs()
	base := newGovernSystem(t, multistore.VariantHVOnly, faults.Profile{})
	baseline := make(map[string]uint64, len(sqls))
	for i, sql := range sqls {
		rep, err := base.Run(sql)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		baseline[sql] = storage.ChecksumTable(rep.Result)
	}

	sys := newGovernSystem(t, multistore.VariantHVOnly,
		faults.Profile{}.With(faults.SiteExecPanic, 0.01))
	srv := serve.NewServer(serve.Config{Workers: 4, QueueDepth: 32}, sys)
	defer srv.Close()

	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			for i := session; i < len(sqls); i += 4 {
				sql := sqls[i]
				rep, err := srv.Do(context.Background(), sql)
				switch {
				case err == nil:
					if got := storage.ChecksumTable(rep.Result); got != baseline[sql] {
						t.Errorf("query %d survived the panic storm but diverged: %016x != %016x",
							i, got, baseline[sql])
					}
				case errors.Is(err, govern.ErrInternal):
					// Contained panic: this query alone failed.
				default:
					t.Errorf("query %d: unexpected outcome %v", i, err)
				}
			}
		}(s)
	}
	wg.Wait()

	m := srv.Metrics()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.PanicsContained == 0 {
		t.Fatalf("metrics = %+v, want at least one contained panic at a 1%% morsel panic rate", m)
	}
	if m.PanicsContained+m.Completed != m.Submitted {
		t.Fatalf("metrics = %+v, every query must either complete or fail by contained panic", m)
	}
}


// Package durability is the crash-restart plane of the multistore system:
// an append-only write-ahead log of every catalog and design mutation, plus
// periodic checkpoints of full system state. The multistore journals view
// admissions and evictions (for both Vh and Vd), reorganization begin and
// commit, the transfer temp-space lifecycle, query completions, and
// log-generation resets; Recover replays the log over the last checkpoint
// to rebuild a System after a simulated process kill.
//
// The WAL is a byte buffer with the framing of an on-disk log — length
// prefix, payload, trailing FNV-64a frame checksum — so a torn tail (a
// crash mid-append, injected at faults.SiteWALWrite) is detected exactly
// the way a real recovery would detect it: the frame fails to parse or its
// checksum mismatches, and replay stops there, discarding the tail.
package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Kind enumerates the WAL record kinds.
type Kind uint8

const (
	// KindViewAdmit records a view entering a store's design. The durable
	// view payload is stored in the WAL's payload space under Name.
	KindViewAdmit Kind = iota + 1
	// KindViewEvict records a view leaving a store's design.
	KindViewEvict
	// KindQueryDone records a completed query (Seq, SQL) so replay can
	// rebuild the sliding workload window and sequence counter.
	KindQueryDone
	// KindReorgBegin opens a reorganization window. A begin without a
	// matching commit is an in-flight reorg that recovery rolls back.
	KindReorgBegin
	// KindReorgCommit closes a reorganization window and carries its
	// outcome statistics.
	KindReorgCommit
	// KindReorgAbort closes a reorganization window whose moves were
	// rolled back live (injected move failure), with budget refunds.
	KindReorgAbort
	// KindTransferBegin opens a working-set transfer into DW temp space,
	// carrying the staged bytes and their content checksum.
	KindTransferBegin
	// KindTransferCommit marks the transfer's temp load as committed.
	KindTransferCommit
	// KindTransferAbort marks the transfer as failed and rolled back.
	KindTransferAbort
	// KindLogGen records a base-log generation reset (storage.LogFile
	// Reset), so recovery can re-quarantine stale views.
	KindLogGen

	kindEnd
)

var kindNames = map[Kind]string{
	KindViewAdmit:      "view-admit",
	KindViewEvict:      "view-evict",
	KindQueryDone:      "query-done",
	KindReorgBegin:     "reorg-begin",
	KindReorgCommit:    "reorg-commit",
	KindReorgAbort:     "reorg-abort",
	KindTransferBegin:  "transfer-begin",
	KindTransferCommit: "transfer-commit",
	KindTransferAbort:  "transfer-abort",
	KindLogGen:         "log-gen",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Store tags which store a view record applies to.
const (
	StoreNone byte = 0
	StoreHV   byte = 'H'
	StoreDW   byte = 'D'
)

// Record is one WAL entry. A single struct covers every kind; unused
// fields stay zero and cost two bytes each on the wire.
type Record struct {
	Kind  Kind
	Store byte
	// Name identifies the object: view name, transfer temp name, or log
	// name, depending on Kind.
	Name string
	// SQL is the query text for KindQueryDone.
	SQL string
	// Seq is the workload sequence number the record belongs to.
	Seq int64
	// Bytes is the object's logical size (view admit, transfer begin).
	Bytes int64
	// Checksum is the FNV-64a content fingerprint of the object.
	Checksum uint64
	// Gen is the log generation for KindLogGen and view admits.
	Gen int64
	// Reorganization outcome statistics (KindReorgCommit / KindReorgAbort).
	MovedToDW     int64
	MovedToHV     int64
	Dropped       int64
	FailedMoves   int64
	RefundedBytes int64
	// Timing carried by KindQueryDone (the query's TTI contribution, so
	// replay reconstructs the breakdown) and KindReorgCommit (move time
	// in Seconds, recovery time in RecoverySeconds).
	Seconds         float64
	RecoverySeconds float64
	HVSeconds       float64
	TransferSeconds float64
	DWSeconds       float64
	// Retries and Flags complete the query-done bookkeeping; Flags is a
	// bitmask (see FlagFellBack and friends).
	Retries int64
	Flags   uint64
}

// Flags bits for KindQueryDone records.
const (
	FlagFellBack uint64 = 1 << iota
	FlagDegraded
	FlagHVOnly
	FlagBypassedHV
)

// ErrTorn marks a WAL tail that fails to parse: a torn or corrupted frame.
// Replay stops there; it is not a recovery failure.
var ErrTorn = errors.New("durability: torn WAL tail")

// encode appends the record's frame to dst: uvarint payload length, the
// payload, and an 8-byte FNV-64a checksum of the payload.
func (r *Record) encode(dst []byte) []byte {
	payload := r.encodePayload(nil)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	h := fnv.New64a()
	h.Write(payload)
	return binary.LittleEndian.AppendUint64(dst, h.Sum64())
}

func (r *Record) encodePayload(dst []byte) []byte {
	dst = append(dst, byte(r.Kind), r.Store)
	dst = appendString(dst, r.Name)
	dst = appendString(dst, r.SQL)
	dst = binary.AppendVarint(dst, r.Seq)
	dst = binary.AppendVarint(dst, r.Bytes)
	dst = binary.LittleEndian.AppendUint64(dst, r.Checksum)
	dst = binary.AppendVarint(dst, r.Gen)
	dst = binary.AppendVarint(dst, r.MovedToDW)
	dst = binary.AppendVarint(dst, r.MovedToHV)
	dst = binary.AppendVarint(dst, r.Dropped)
	dst = binary.AppendVarint(dst, r.FailedMoves)
	dst = binary.AppendVarint(dst, r.RefundedBytes)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Seconds))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.RecoverySeconds))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.HVSeconds))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.TransferSeconds))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.DWSeconds))
	dst = binary.AppendVarint(dst, r.Retries)
	dst = binary.AppendUvarint(dst, r.Flags)
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeFrame parses one frame starting at buf[off]. It returns the decoded
// record and the offset just past the frame. Any structural damage — a
// length that overruns the buffer, a checksum mismatch, an invalid payload
// — yields ErrTorn; decodeFrame never panics on arbitrary bytes.
func decodeFrame(buf []byte, off int) (*Record, int, error) {
	if off < 0 || off >= len(buf) {
		return nil, off, ErrTorn
	}
	plen, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, off, ErrTorn
	}
	start := off + n
	// Bound before converting: a huge uvarint must not overflow int.
	if plen > uint64(len(buf)) || start+int(plen)+8 > len(buf) {
		return nil, off, ErrTorn
	}
	payload := buf[start : start+int(plen)]
	sumOff := start + int(plen)
	want := binary.LittleEndian.Uint64(buf[sumOff : sumOff+8])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != want {
		return nil, off, ErrTorn
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return nil, off, ErrTorn
	}
	return rec, sumOff + 8, nil
}

func decodePayload(p []byte) (*Record, error) {
	d := &decoder{buf: p}
	r := &Record{}
	r.Kind = Kind(d.byte())
	r.Store = d.byte()
	r.Name = d.string()
	r.SQL = d.string()
	r.Seq = d.varint()
	r.Bytes = d.varint()
	r.Checksum = d.uint64()
	r.Gen = d.varint()
	r.MovedToDW = d.varint()
	r.MovedToHV = d.varint()
	r.Dropped = d.varint()
	r.FailedMoves = d.varint()
	r.RefundedBytes = d.varint()
	r.Seconds = math.Float64frombits(d.uint64())
	r.RecoverySeconds = math.Float64frombits(d.uint64())
	r.HVSeconds = math.Float64frombits(d.uint64())
	r.TransferSeconds = math.Float64frombits(d.uint64())
	r.DWSeconds = math.Float64frombits(d.uint64())
	r.Retries = d.varint()
	r.Flags = d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(p) {
		return nil, fmt.Errorf("durability: %d trailing payload bytes", len(p)-d.off)
	}
	if r.Kind == 0 || r.Kind >= kindEnd {
		return nil, fmt.Errorf("durability: invalid record kind %d", r.Kind)
	}
	return r, nil
}

// decoder is a bounds-checked cursor over a payload; the first error
// sticks and every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) uint64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) || d.off+int(n) > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("durability: truncated payload at offset %d", d.off)
	}
}

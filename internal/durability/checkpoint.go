package durability

import "sync"

// Checkpoint captures full system state at a WAL position. State is an
// opaque snapshot owned by the multistore package (design, view metadata,
// budgets, sliding workload window, TTI accounting); durability only needs
// the LSN to know where replay resumes. In a real deployment State would be
// a serialized byte image — here it is a deep-cloned in-memory snapshot,
// which keeps the same recovery semantics (the checkpoint shares no mutable
// structure with the live system) without a logical-plan serializer.
type Checkpoint struct {
	// LSN is the WAL byte offset at checkpoint time: every record at or
	// past it post-dates the checkpoint and must be replayed.
	LSN int
	// Seq is the workload sequence number at checkpoint time.
	Seq int
	// State is the multistore-owned snapshot.
	State any
}

// Manager owns one system's WAL and its checkpoint cadence: a checkpoint
// is taken every Every completed operations (queries, reorgs, updates).
type Manager struct {
	mu      sync.Mutex
	wal     *WAL
	every   int
	sinceCk int
	latest  *Checkpoint
	taken   int
}

// NewManager creates a durability manager checkpointing every `every`
// operations (minimum 1).
func NewManager(every int, wal *WAL) *Manager {
	if every < 1 {
		every = 1
	}
	return &Manager{wal: wal, every: every}
}

// WAL returns the write-ahead log.
func (m *Manager) WAL() *WAL { return m.wal }

// Every returns the checkpoint cadence.
func (m *Manager) Every() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.every
}

// Latest returns the most recent checkpoint, or nil before the first.
func (m *Manager) Latest() *Checkpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest
}

// Checkpoints returns how many checkpoints have been taken.
func (m *Manager) Checkpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.taken
}

// Checkpoint installs a new checkpoint of the given state at the current
// end of the WAL and resets the cadence counter.
func (m *Manager) Checkpoint(seq int, state any) *Checkpoint {
	ck := &Checkpoint{LSN: m.wal.LSN(), Seq: seq, State: state}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latest = ck
	m.taken++
	m.sinceCk = 0
	return ck
}

// MaybeCheckpoint counts one completed operation and, when the cadence is
// due, takes a checkpoint of state(). The snapshot closure runs only when
// a checkpoint is actually due, so off-cadence operations pay nothing.
func (m *Manager) MaybeCheckpoint(seq int, state func() any) *Checkpoint {
	m.mu.Lock()
	m.sinceCk++
	due := m.sinceCk >= m.every
	m.mu.Unlock()
	if !due {
		return nil
	}
	return m.Checkpoint(seq, state())
}

// RecoveryReport summarizes one Recover run.
type RecoveryReport struct {
	// ReplayedRecords is how many WAL records were applied over the
	// checkpoint.
	ReplayedRecords int
	// TornBytes is the size of the unreadable WAL tail that was discarded.
	TornBytes int
	// RolledBackReorgs counts in-flight reorganizations (begin without
	// commit) discarded by recovery.
	RolledBackReorgs int
	// RolledBackTransfers counts in-flight transfers rolled back, and
	// RefundedTransferBytes the temp-space budget returned.
	RolledBackTransfers   int
	RefundedTransferBytes int64
	// Quarantined names every view removed from the recovered design:
	// corrupt payloads (checksum mismatch) and stale generations.
	Quarantined []string
	// CorruptViews and StaleViews split the quarantine count by cause.
	CorruptViews int
	StaleViews   int
	// RestoredViews is how many views survived into the recovered design.
	RestoredViews int
	// ReplayedQueries is how many QueryDone records rebuilt window entries.
	ReplayedQueries int
	// Seconds is the simulated recovery time charged to RECOVERY TTI:
	// replay work plus the integrity scan over restored view bytes.
	Seconds float64
}

package durability

import (
	"sync"

	"miso/internal/faults"
	"miso/internal/storage"
	"miso/internal/views"
)

// WAL is the append-only write-ahead log plus the durable view payload
// space. Records carry the design mutations; payloads carry the view bytes
// an admit record points at, cloned so that later mutation (or injected
// corruption) of the durable copy never touches the live design.
//
// Both fault sites the WAL owns are drawn at write time, mirroring when
// real storage breaks: SiteWALWrite tears the append (only a seeded prefix
// of the frame lands, and the process is considered dead — Append returns
// faults.ErrCrash), SiteViewCorrupt flips a value inside the durable
// payload copy, to be caught by checksum verification at recovery.
type WAL struct {
	mu       sync.Mutex
	buf      []byte
	records  int
	inj      *faults.Injector
	payloads map[string]*views.View
}

// NewWAL creates an empty log armed with the injector (nil disables both
// fault sites).
func NewWAL(inj *faults.Injector) *WAL {
	return &WAL{inj: inj, payloads: map[string]*views.View{}}
}

// Append journals one record. When SiteWALWrite fires, only a seeded
// prefix of the frame is written — the record is lost, replay will stop at
// the tear — and Append reports the simulated process death by returning
// an error wrapping faults.ErrCrash.
func (w *WAL) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	frame := rec.encode(nil)
	if failed, frac := w.inj.Check(faults.SiteWALWrite); failed {
		n := int(frac * float64(len(frame)))
		if n >= len(frame) {
			n = len(frame) - 1
		}
		w.buf = append(w.buf, frame[:n]...)
		return faults.Crash(faults.SiteWALWrite)
	}
	w.buf = append(w.buf, frame...)
	w.records++
	return nil
}

// LSN returns the current end-of-log byte offset; checkpoints record it so
// replay starts past everything the checkpoint already captured.
func (w *WAL) LSN() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Records returns how many records were durably appended.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Tear truncates up to n bytes off the log tail, simulating a crash that
// lost the end of the file. Used by tests and the crash harness; injected
// tears happen organically through SiteWALWrite.
func (w *WAL) Tear(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n <= 0 {
		return
	}
	if n > len(w.buf) {
		n = len(w.buf)
	}
	w.buf = w.buf[:len(w.buf)-n]
}

// Replay decodes records starting at byte offset lsn. It stops cleanly at
// the first torn or corrupt frame — never panicking — and reports how many
// unreadable tail bytes it discarded.
func (w *WAL) Replay(lsn int) (recs []*Record, tornBytes int) {
	w.mu.Lock()
	buf := w.buf
	w.mu.Unlock()
	if lsn < 0 {
		lsn = 0
	}
	off := lsn
	for off < len(buf) {
		rec, next, err := decodeFrame(buf, off)
		if err != nil {
			return recs, len(buf) - off
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, 0
}

// PutPayload stores the durable copy of an admitted view. The copy is
// deep-cloned; when SiteViewCorrupt fires, one value inside the stored
// clone is flipped (size-preserving), so the payload's recomputed checksum
// no longer matches the admit record and recovery quarantines the view.
func (w *WAL) PutPayload(v *views.View) {
	c := v.Clone()
	if failed, frac := w.inj.Check(faults.SiteViewCorrupt); failed {
		corruptTable(c.Table, frac)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.payloads[c.Name] = c
}

// Payload fetches the durable copy of a view by name.
func (w *WAL) Payload(name string) (*views.View, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v, ok := w.payloads[name]
	return v, ok
}

// corruptTable flips one value in the table, chosen by frac, without
// changing its encoded size (so byte accounting stays intact and only the
// checksum betrays the damage). Tables with no mutable value are left
// unchanged.
func corruptTable(t *storage.Table, frac float64) {
	if t == nil || len(t.Rows) == 0 {
		return
	}
	nvals := 0
	for _, r := range t.Rows {
		nvals += len(r)
	}
	if nvals == 0 {
		return
	}
	start := int(frac * float64(nvals))
	if start >= nvals {
		start = nvals - 1
	}
	for i := 0; i < nvals; i++ {
		idx := (start + i) % nvals
		row, col := locate(t, idx)
		v := &t.Rows[row][col]
		switch v.Kind {
		case storage.KindInt:
			v.I++
			return
		case storage.KindFloat:
			v.F += 1
			return
		case storage.KindBool:
			v.I = 1 - v.I
			return
		case storage.KindString:
			if len(v.S) > 0 {
				b := []byte(v.S)
				b[0] ^= 0x01
				v.S = string(b)
				return
			}
		}
	}
}

func locate(t *storage.Table, idx int) (row, col int) {
	for r := range t.Rows {
		if idx < len(t.Rows[r]) {
			return r, idx
		}
		idx -= len(t.Rows[r])
	}
	return 0, 0
}

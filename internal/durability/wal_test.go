package durability

import (
	"errors"
	"reflect"
	"testing"

	"miso/internal/faults"
	"miso/internal/storage"
	"miso/internal/views"
)

// testRecords covers every record kind and every field group at least once.
func testRecords() []*Record {
	return []*Record{
		{Kind: KindViewAdmit, Store: StoreHV, Name: "v_0001", Seq: 3, Bytes: 1 << 20, Checksum: 0xdeadbeefcafe},
		{Kind: KindViewAdmit, Store: StoreDW, Name: "v_0002", Seq: 4, Bytes: 42, Checksum: 1, Gen: 2},
		{Kind: KindViewEvict, Store: StoreDW, Name: "v_0001", Seq: 5},
		{Kind: KindQueryDone, SQL: "SELECT hashtag FROM tweets", Seq: 6, Bytes: 7,
			HVSeconds: 1.5, TransferSeconds: 0.25, DWSeconds: 3.75, RecoverySeconds: 10,
			Retries: 2, Flags: FlagFellBack | FlagHVOnly},
		{Kind: KindReorgBegin, Seq: 8},
		{Kind: KindReorgCommit, Seq: 8, MovedToDW: 2, MovedToHV: 1, Dropped: 3,
			FailedMoves: 1, RefundedBytes: 1 << 30, Bytes: 5 << 20, Seconds: 99.5, RecoverySeconds: 2.5, Retries: 4},
		{Kind: KindReorgAbort, Seq: 9, FailedMoves: 2, RefundedBytes: -1},
		{Kind: KindTransferBegin, Name: "tmp_q7", Seq: 7, Bytes: 123456, Checksum: 77},
		{Kind: KindTransferCommit, Name: "tmp_q7", Seq: 7},
		{Kind: KindTransferAbort, Name: "tmp_q8", Seq: 8},
		{Kind: KindLogGen, Name: "tweets", Seq: 10, Gen: 3},
		{Kind: KindQueryDone, SQL: "", Seq: -1, Retries: 0, Flags: 0}, // zero-ish edge
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		frame := rec.encode(nil)
		got, next, err := decodeFrame(frame, 0)
		if err != nil {
			t.Fatalf("%s: decode failed: %v", rec.Kind, err)
		}
		if next != len(frame) {
			t.Errorf("%s: decode consumed %d of %d bytes", rec.Kind, next, len(frame))
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", rec.Kind, got, rec)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindViewAdmit.String() != "view-admit" || KindLogGen.String() != "log-gen" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("out-of-range kind name wrong")
	}
}

func TestReplayAndLSN(t *testing.T) {
	w := NewWAL(nil)
	recs := testRecords()
	var mid int
	for i, rec := range recs {
		if i == len(recs)/2 {
			mid = w.LSN()
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != len(recs) {
		t.Fatalf("Records() = %d, want %d", w.Records(), len(recs))
	}
	got, torn := w.Replay(0)
	if torn != 0 {
		t.Fatalf("clean log reports %d torn bytes", torn)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Replay from a mid-log LSN yields exactly the suffix.
	tail, torn := w.Replay(mid)
	if torn != 0 || len(tail) != len(recs)-len(recs)/2 {
		t.Fatalf("suffix replay: %d records, %d torn", len(tail), torn)
	}
	if !reflect.DeepEqual(tail[0], recs[len(recs)/2]) {
		t.Error("suffix replay starts at the wrong record")
	}
}

// TestTornTailEveryTruncation tears the log at every possible byte length
// and requires replay to stop cleanly: a prefix of intact records, correct
// torn-byte accounting, and no panic anywhere.
func TestTornTailEveryTruncation(t *testing.T) {
	recs := testRecords()[:4]
	full := NewWAL(nil)
	var bounds []int // frame end offsets
	for _, rec := range recs {
		if err := full.Append(rec); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, full.LSN())
	}
	total := full.LSN()
	for keep := 0; keep <= total; keep++ {
		w := NewWAL(nil)
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		w.Tear(total - keep)
		got, torn := w.Replay(0)
		// How many whole frames fit in keep bytes?
		want := 0
		for _, b := range bounds {
			if b <= keep {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("keep %d bytes: replayed %d records, want %d", keep, len(got), want)
		}
		wantTorn := keep
		if want > 0 {
			wantTorn = keep - bounds[want-1]
		}
		if torn != wantTorn {
			t.Fatalf("keep %d bytes: torn = %d, want %d", keep, torn, wantTorn)
		}
		for i := 0; i < want; i++ {
			if !reflect.DeepEqual(got[i], recs[i]) {
				t.Fatalf("keep %d bytes: record %d corrupted by tear", keep, i)
			}
		}
	}
}

func TestWALWriteCrashTearsAppend(t *testing.T) {
	inj := faults.NewInjector(faults.Profile{}.With(faults.SiteWALWrite, 1), 7)
	w := NewWAL(inj)
	if err := w.Append(&Record{Kind: KindQueryDone, SQL: "SELECT 1", Seq: 0}); err == nil {
		t.Fatal("armed WAL-write site did not crash the append")
	} else if !errors.Is(err, faults.ErrCrash) {
		t.Fatalf("append error %v is not an ErrCrash", err)
	}
	if w.Records() != 0 {
		t.Error("torn append counted as durable")
	}
	if w.LSN() >= len((&Record{Kind: KindQueryDone, SQL: "SELECT 1"}).encode(nil)) {
		t.Error("torn append wrote a full frame")
	}
	recs, _ := w.Replay(0)
	if len(recs) != 0 {
		t.Error("torn prefix decoded as a record")
	}
}

func testView(t *testing.T, name string) *views.View {
	t.Helper()
	sch, err := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "tag", Type: storage.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(name, sch)
	tbl.MustAppend(storage.Row{storage.IntValue(1), storage.StringValue("alpha")})
	tbl.MustAppend(storage.Row{storage.IntValue(2), storage.StringValue("beta")})
	return &views.View{Name: name, Table: tbl, Checksum: storage.ChecksumTable(tbl)}
}

func TestPayloadCloneIsolation(t *testing.T) {
	w := NewWAL(nil)
	v := testView(t, "v_payload")
	w.PutPayload(v)
	stored, ok := w.Payload("v_payload")
	if !ok {
		t.Fatal("payload missing")
	}
	if stored == v || stored.Table == v.Table {
		t.Fatal("payload shares structure with the live view")
	}
	if !stored.Verify() {
		t.Error("clean payload fails verification")
	}
}

func TestPayloadCorruption(t *testing.T) {
	inj := faults.NewInjector(faults.Profile{}.With(faults.SiteViewCorrupt, 1), 11)
	w := NewWAL(inj)
	v := testView(t, "v_corrupt")
	w.PutPayload(v)
	stored, ok := w.Payload("v_corrupt")
	if !ok {
		t.Fatal("payload missing")
	}
	if stored.Verify() {
		t.Error("corrupted payload still verifies")
	}
	if !v.Verify() {
		t.Error("corruption leaked into the live view")
	}
	if stored.Table.RawBytes() != v.Table.RawBytes() {
		t.Error("corruption changed the encoded size")
	}
}

// TestCorruptTableEveryKind drives the flip over each value kind and checks
// it is size-preserving and checksum-visible.
func TestCorruptTableEveryKind(t *testing.T) {
	sch, err := storage.NewSchema(storage.Column{Name: "c", Type: storage.KindString})
	if err != nil {
		t.Fatal(err)
	}
	cases := []storage.Value{
		storage.IntValue(7),
		storage.FloatValue(2.5),
		storage.BoolValue(true),
		storage.StringValue("x"),
	}
	for i, val := range cases {
		tbl := storage.NewTable("t", sch)
		tbl.MustAppend(storage.Row{val})
		before := storage.ChecksumTable(tbl)
		size := tbl.RawBytes()
		corruptTable(tbl, float64(i)/float64(len(cases)))
		if storage.ChecksumTable(tbl) == before {
			t.Errorf("case %d: flip not visible to checksum", i)
		}
		if tbl.RawBytes() != size {
			t.Errorf("case %d: flip changed encoded size", i)
		}
	}
	// Tables with nothing to flip are left alone.
	corruptTable(nil, 0.5)
	empty := storage.NewTable("e", sch)
	corruptTable(empty, 0.5)
}

func TestManagerCadence(t *testing.T) {
	w := NewWAL(nil)
	m := NewManager(3, w)
	if m.Every() != 3 || m.Latest() != nil || m.Checkpoints() != 0 {
		t.Fatal("fresh manager state wrong")
	}
	calls := 0
	state := func() any { calls++; return calls }
	for op := 1; op <= 7; op++ {
		m.MaybeCheckpoint(op, state)
	}
	// Cadence 3 over 7 ops: checkpoints after ops 3 and 6.
	if m.Checkpoints() != 2 || calls != 2 {
		t.Fatalf("checkpoints = %d (state calls %d), want 2", m.Checkpoints(), calls)
	}
	if ck := m.Latest(); ck == nil || ck.Seq != 6 || ck.State != 2 {
		t.Fatalf("latest checkpoint = %+v", m.Latest())
	}
	// An explicit checkpoint resets the cadence counter.
	ck := m.Checkpoint(9, "manual")
	if m.Latest() != ck || ck.LSN != w.LSN() {
		t.Error("explicit checkpoint not installed at the WAL head")
	}
	m.MaybeCheckpoint(10, state)
	m.MaybeCheckpoint(11, state)
	if m.Checkpoints() != 3 {
		t.Error("cadence not reset by explicit checkpoint")
	}
	// Cadence clamps to a minimum of 1.
	if NewManager(0, w).Every() != 1 {
		t.Error("zero cadence not clamped")
	}
}

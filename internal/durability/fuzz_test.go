package durability

import (
	"math"
	"reflect"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must never
// panic, and anything it does accept must survive a re-encode/re-decode
// round trip unchanged. (Byte-level canonicality is not promised — varint
// decoding accepts non-minimal encodings — but the record semantics are.)
func FuzzDecodeFrame(f *testing.F) {
	for _, rec := range testRecords() {
		f.Add(rec.encode(nil))
	}
	frame := (&Record{Kind: KindQueryDone, SQL: "SELECT 1", Seq: 2}).encode(nil)
	for cut := 0; cut < len(frame); cut += 3 {
		f.Add(frame[:cut])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, next, err := decodeFrame(data, 0)
		if err != nil {
			return
		}
		if next <= 0 || next > len(data) {
			t.Fatalf("accepted frame with bad end offset %d of %d", next, len(data))
		}
		if rec.Kind == 0 || rec.Kind >= kindEnd {
			t.Fatalf("accepted invalid kind %d", rec.Kind)
		}
		again, _, err := decodeFrame(rec.encode(nil), 0)
		if err != nil {
			t.Fatalf("re-encoded accepted record fails to decode: %v", err)
		}
		if !recordsEquivalent(rec, again) {
			t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", again, rec)
		}
	})
}

// recordsEquivalent compares records field-wise, treating float fields by
// their bit patterns so NaN payloads from fuzzed bytes compare stably.
func recordsEquivalent(a, b *Record) bool {
	fa, fb := *a, *b
	for _, p := range []*float64{
		&fa.Seconds, &fa.RecoverySeconds, &fa.HVSeconds, &fa.TransferSeconds, &fa.DWSeconds,
		&fb.Seconds, &fb.RecoverySeconds, &fb.HVSeconds, &fb.TransferSeconds, &fb.DWSeconds,
	} {
		*p = 0
	}
	if !reflect.DeepEqual(&fa, &fb) {
		return false
	}
	for _, pair := range [][2]float64{
		{a.Seconds, b.Seconds}, {a.RecoverySeconds, b.RecoverySeconds},
		{a.HVSeconds, b.HVSeconds}, {a.TransferSeconds, b.TransferSeconds},
		{a.DWSeconds, b.DWSeconds},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			return false
		}
	}
	return true
}

// FuzzReplayTornTail appends real records, tears an arbitrary tail length,
// and requires replay to return an intact prefix without panicking.
func FuzzReplayTornTail(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(1))
	f.Add(uint16(500))
	f.Fuzz(func(t *testing.T, tear uint16) {
		recs := testRecords()
		w := NewWAL(nil)
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		w.Tear(int(tear))
		got, torn := w.Replay(0)
		if len(got) > len(recs) {
			t.Fatal("replay invented records")
		}
		if torn < 0 || torn > w.LSN() {
			t.Fatalf("torn bytes %d out of range", torn)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], recs[i]) {
				t.Fatalf("record %d corrupted by tear", i)
			}
		}
	})
}

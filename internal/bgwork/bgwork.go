// Package bgwork implements the warehouse's own reporting workload for the
// Section 5.4 experiments: a TPC-DS-like star schema (store_sales fact,
// date_dim and item dimensions) loaded into DW permanent space, and the two
// reporting queries the paper uses to consume spare capacity — an IO-bound
// q3 analogue (scan + date filter + join + group) and a CPU-bound q83
// analogue (multi-way join with expression-heavy aggregation). Queries are
// built as logical plans over the loaded tables and executed by the DW
// engine, so their base latencies are measured, not assumed; the sim
// package's contention model then replays the multistore timeline against
// the measured profile.
package bgwork

import (
	"fmt"
	"math/rand"

	"miso/internal/dw"
	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/views"
)

// Table names in DW permanent space.
const (
	StoreSales = "bg_store_sales"
	DateDim    = "bg_date_dim"
	ItemDim    = "bg_item"
)

// Config sizes the reporting dataset.
type Config struct {
	Seed  int64
	Sales int
	Days  int
	Items int
	// ScaleFactor maps in-memory bytes to logical bytes, as for the logs.
	ScaleFactor float64
}

// DefaultConfig returns a small reporting mart whose logical size stands in
// for the paper's 1 TB TPC-DS load.
func DefaultConfig() Config {
	return Config{Seed: 13, Sales: 4000, Days: 365, Items: 200, ScaleFactor: 250000}
}

// Workload is the loaded reporting schema plus its two queries.
type Workload struct {
	store *dw.Store

	salesSchema *storage.Schema
	dateSchema  *storage.Schema
	itemSchema  *storage.Schema
}

// Load builds the star schema and installs it in DW permanent space.
func Load(cfg Config, store *dw.Store, est *stats.Estimator) (*Workload, error) {
	if cfg.Sales <= 0 || cfg.Days <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("bgwork: config must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{store: store}

	w.dateSchema = storage.MustSchema(
		storage.Column{Name: "d_date_sk", Type: storage.KindInt},
		storage.Column{Name: "d_year", Type: storage.KindInt},
		storage.Column{Name: "d_moy", Type: storage.KindInt},
	)
	dates := storage.NewTable(DateDim, w.dateSchema)
	dates.ScaleFactor = cfg.ScaleFactor
	for d := 0; d < cfg.Days; d++ {
		dates.MustAppend(storage.Row{
			storage.IntValue(int64(d)),
			storage.IntValue(int64(2012 + d/365)),
			storage.IntValue(int64(d/30%12 + 1)),
		})
	}

	w.itemSchema = storage.MustSchema(
		storage.Column{Name: "i_item_sk", Type: storage.KindInt},
		storage.Column{Name: "i_brand", Type: storage.KindString},
		storage.Column{Name: "i_category", Type: storage.KindString},
	)
	items := storage.NewTable(ItemDim, w.itemSchema)
	items.ScaleFactor = cfg.ScaleFactor
	for i := 0; i < cfg.Items; i++ {
		items.MustAppend(storage.Row{
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("brand_%02d", i%40)),
			storage.StringValue(fmt.Sprintf("cat_%d", i%10)),
		})
	}

	w.salesSchema = storage.MustSchema(
		storage.Column{Name: "ss_sold_date_sk", Type: storage.KindInt},
		storage.Column{Name: "ss_item_sk", Type: storage.KindInt},
		storage.Column{Name: "ss_quantity", Type: storage.KindInt},
		storage.Column{Name: "ss_ext_sales_price", Type: storage.KindFloat},
	)
	sales := storage.NewTable(StoreSales, w.salesSchema)
	sales.ScaleFactor = cfg.ScaleFactor
	for i := 0; i < cfg.Sales; i++ {
		sales.MustAppend(storage.Row{
			storage.IntValue(int64(rng.Intn(cfg.Days))),
			storage.IntValue(int64(rng.Intn(cfg.Items))),
			storage.IntValue(int64(1 + rng.Intn(20))),
			storage.FloatValue(rng.Float64() * 500),
		})
	}

	for _, t := range []*storage.Table{dates, items, sales} {
		// The content checksum is stamped at load so the integrity scrubber
		// can verify these tables like any opportunistic view.
		v := &views.View{
			Name:     t.Name,
			Sig:      "bgtable(" + t.Name + ")",
			Def:      logical.NewViewScan(t.Name, t.Schema),
			Desc:     nil,
			Table:    t,
			Checksum: storage.ChecksumTable(t),
		}
		v.Desc = logical.Describe(v.Def)
		store.Views.Add(v)
		est.RecordView(t.Name, stats.Stat{Rows: int64(t.NumRows()), Bytes: t.LogicalBytes()})
	}
	return w, nil
}

func colRef(n string) expr.Expr { return &expr.ColRef{Name: n} }
func intC(i int64) expr.Expr    { return &expr.Const{Val: storage.IntValue(i)} }

// Q3Plan is the IO-bound reporting query (TPC-DS q3 analogue): scan the
// fact table, filter the join to a sales month, and report revenue by year
// and brand.
func (w *Workload) Q3Plan() (*logical.Node, error) {
	salesScan := logical.NewViewScan(StoreSales, w.salesSchema)
	dateScan := logical.NewViewScan(DateDim, w.dateSchema)
	dateFilter, err := logical.NewFilterNode(dateScan, &expr.BinOp{
		Op: "=", L: colRef("d_moy"), R: intC(11),
	})
	if err != nil {
		return nil, err
	}
	join := &logical.Node{
		Kind:      logical.KindJoin,
		Children:  []*logical.Node{salesScan, dateFilter},
		JoinType:  logical.JoinInner,
		LeftKeys:  []string{"ss_sold_date_sk"},
		RightKeys: []string{"d_date_sk"},
	}
	sch, err := salesScan.Schema().Concat(dateFilter.Schema(), "r_")
	if err != nil {
		return nil, err
	}
	join.SetSchema(sch)
	return newAgg(join,
		[]logical.Proj{{Expr: colRef("d_year"), Name: "d_year"}},
		[]logical.AggSpec{
			{Func: "SUM", Arg: colRef("ss_ext_sales_price"), Name: "revenue"},
		})
}

// Q83Plan is the CPU-bound reporting query (TPC-DS q83 analogue): a
// three-way join with expression-heavy grouped aggregation.
func (w *Workload) Q83Plan() (*logical.Node, error) {
	salesScan := logical.NewViewScan(StoreSales, w.salesSchema)
	dateScan := logical.NewViewScan(DateDim, w.dateSchema)
	itemScan := logical.NewViewScan(ItemDim, w.itemSchema)
	j1 := &logical.Node{
		Kind:      logical.KindJoin,
		Children:  []*logical.Node{salesScan, dateScan},
		JoinType:  logical.JoinInner,
		LeftKeys:  []string{"ss_sold_date_sk"},
		RightKeys: []string{"d_date_sk"},
	}
	s1, err := salesScan.Schema().Concat(dateScan.Schema(), "r_")
	if err != nil {
		return nil, err
	}
	j1.SetSchema(s1)
	j2 := &logical.Node{
		Kind:      logical.KindJoin,
		Children:  []*logical.Node{j1, itemScan},
		JoinType:  logical.JoinInner,
		LeftKeys:  []string{"ss_item_sk"},
		RightKeys: []string{"i_item_sk"},
	}
	s2, err := j1.Schema().Concat(itemScan.Schema(), "r_")
	if err != nil {
		return nil, err
	}
	j2.SetSchema(s2)
	// Expression-heavy aggregate argument: quantity-weighted price.
	weighted := &expr.BinOp{Op: "*",
		L: colRef("ss_ext_sales_price"),
		R: &expr.BinOp{Op: "/", L: colRef("ss_quantity"), R: intC(10)},
	}
	return newAgg(j2,
		[]logical.Proj{
			{Expr: colRef("i_brand"), Name: "i_brand"},
			{Expr: colRef("d_moy"), Name: "d_moy"},
		},
		[]logical.AggSpec{
			{Func: "SUM", Arg: weighted, Name: "weighted_rev"},
			{Func: "AVG", Arg: colRef("ss_quantity"), Name: "avg_qty"},
		})
}

func newAgg(child *logical.Node, groups []logical.Proj, aggs []logical.AggSpec) (*logical.Node, error) {
	cols := make([]storage.Column, 0, len(groups)+len(aggs))
	for _, g := range groups {
		t, err := expr.TypeOf(g.Expr, child.Schema())
		if err != nil {
			return nil, err
		}
		cols = append(cols, storage.Column{Name: g.Name, Type: t})
	}
	for i, a := range aggs {
		t := storage.KindFloat
		if a.Func == "COUNT" {
			t = storage.KindInt
		}
		if _, err := expr.TypeOf(a.Arg, child.Schema()); err != nil {
			return nil, err
		}
		aggs[i].Name = a.Name
		cols = append(cols, storage.Column{Name: a.Name, Type: t})
	}
	sch, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	n := &logical.Node{Kind: logical.KindAggregate, Children: []*logical.Node{child},
		GroupBy: groups, Aggs: aggs}
	n.SetSchema(sch)
	return n, nil
}

// MeasureLatencies executes both reporting queries in DW and returns their
// simulated latencies in seconds.
func (w *Workload) MeasureLatencies() (q3, q83 float64, err error) {
	p3, err := w.Q3Plan()
	if err != nil {
		return 0, 0, err
	}
	r3, err := w.store.Execute(p3)
	if err != nil {
		return 0, 0, fmt.Errorf("bgwork: q3: %w", err)
	}
	p83, err := w.Q83Plan()
	if err != nil {
		return 0, 0, err
	}
	r83, err := w.store.Execute(p83)
	if err != nil {
		return 0, 0, fmt.Errorf("bgwork: q83: %w", err)
	}
	return r3.Seconds, r83.Seconds, nil
}

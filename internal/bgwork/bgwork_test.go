package bgwork_test

import (
	"testing"

	"miso/internal/bgwork"
	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/stats"
)

func load(t *testing.T) (*bgwork.Workload, *dw.Store) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	store := dw.NewStore(dw.DefaultConfig(), est)
	w, err := bgwork.Load(bgwork.DefaultConfig(), store, est)
	if err != nil {
		t.Fatal(err)
	}
	return w, store
}

func TestLoadInstallsTables(t *testing.T) {
	_, store := load(t)
	for _, name := range []string{bgwork.StoreSales, bgwork.DateDim, bgwork.ItemDim} {
		if _, ok := store.Views.Get(name); !ok {
			t.Errorf("table %s not installed", name)
		}
	}
}

func TestQ3ProducesYearlyRevenue(t *testing.T) {
	w, store := load(t)
	p, err := w.Q3Plan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("q3 returned nothing")
	}
	// One row per year with positive revenue.
	seen := map[int64]bool{}
	for _, r := range res.Table.Rows {
		if seen[r[0].I] {
			t.Errorf("duplicate year %d", r[0].I)
		}
		seen[r[0].I] = true
		if r[1].F <= 0 {
			t.Errorf("year %d: revenue %v", r[0].I, r[1])
		}
	}
}

func TestQ83GroupsByBrandAndMonth(t *testing.T) {
	w, store := load(t)
	p, err := w.Q83Plan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("q83 returned nothing")
	}
	if got := res.Table.Schema.Names(); got[0] != "i_brand" || got[1] != "d_moy" {
		t.Errorf("schema = %v", got)
	}
}

func TestMeasuredLatencyProfiles(t *testing.T) {
	w, _ := load(t)
	q3, q83, err := w.MeasureLatencies()
	if err != nil {
		t.Fatal(err)
	}
	if q3 <= 0 || q83 <= 0 {
		t.Fatalf("latencies %v %v", q3, q83)
	}
	// The three-way expression-heavy query costs at least as much as the
	// two-way scan query.
	if q83 < q3 {
		t.Errorf("q83 (%.3fs) cheaper than q3 (%.3fs)", q83, q3)
	}
}

func TestConfigValidation(t *testing.T) {
	cat, _ := data.Generate(data.SmallConfig())
	est := stats.NewEstimator(cat)
	store := dw.NewStore(dw.DefaultConfig(), est)
	bad := bgwork.DefaultConfig()
	bad.Sales = 0
	if _, err := bgwork.Load(bad, store, est); err == nil {
		t.Error("zero sales accepted")
	}
}

// Long-horizon adversarial endurance harness: closed-loop clients with
// think time across hundreds of tenants drive a served MS-MISO system
// while the SiteViewRot fault site silently corrupts resident views and
// the background integrity scrubber detects and self-heals them under
// live traffic. The run spans at least MinReorgs reorganization cycles;
// at exit the harness proves that every injected corruption was detected
// and repaired (or had legitimately left the design), that a final
// verification pass finds zero violations, and that goodput stayed
// within bound of an identical rot-free control run. Written as
// BENCH_endurance.json by misobench -mode endurance.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"miso/internal/audit"
	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

// EnduranceConfig parameterizes the endurance run.
type EnduranceConfig struct {
	Config
	// Workers / Queue configure the serving frontend.
	Workers int
	Queue   int
	// Tenants is the closed-loop client population; each client is its
	// own tenant and holds at most one query in flight.
	Tenants int
	// ThinkTime is the mean pause between a client's response and its
	// next submission (jittered ±50% per client).
	ThinkTime time.Duration
	// RotRate arms SiteViewRot at this per-operation probability.
	RotRate float64
	// MinReorgs is the horizon: the run continues until this many
	// reorganization cycles have completed (and MinQueries served).
	MinReorgs int
	// MinQueries is the minimum served-query horizon.
	MinQueries int
	// MaxDuration caps the run's wall clock; hitting it before the
	// horizon fails the run with a note.
	MaxDuration time.Duration
	// ScrubInterval / ScrubChunk rate-limit the background scrubber.
	ScrubInterval time.Duration
	ScrubChunk    int
	// Seed drives the adversarial generator's per-client choices.
	Seed int64
}

// DefaultEndurance returns the CI shape: small data, hundreds of
// tenants, a short multi-reorg horizon.
func DefaultEndurance(base Config) EnduranceConfig {
	return EnduranceConfig{
		Config:        base,
		Workers:       4,
		Queue:         16,
		Tenants:       200,
		ThinkTime:     25 * time.Millisecond,
		RotRate:       0.08,
		MinReorgs:     3,
		MinQueries:    150,
		MaxDuration:   3 * time.Minute,
		ScrubInterval: 2 * time.Millisecond,
		ScrubChunk:    4,
		Seed:          11,
	}
}

// EnduranceCheck is one acceptance criterion's verdict.
type EnduranceCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// EnduranceReport is the machine-readable endurance report
// (BENCH_endurance.json).
type EnduranceReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	Scale  string `json:"scale"`

	Tenants     int     `json:"tenants"`
	DurationSec float64 `json:"duration_sec"`
	Reorgs      int     `json:"reorgs"`

	Submitted  int     `json:"submitted"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed"`
	GoodputQPS float64 `json:"goodput_qps"`
	// ControlGoodputQPS is the rot-free control run's goodput; Ratio is
	// rot-run goodput over it.
	ControlGoodputQPS float64 `json:"control_goodput_qps"`
	GoodputRatio      float64 `json:"goodput_ratio"`

	RotInjected  int `json:"rot_injected"`
	RotDistinct  int `json:"rot_distinct_views"`
	AuditDetects int `json:"audit_violations_detected"`
	AuditRepairs int `json:"audit_violations_repaired"`
	AuditUnrep   int `json:"audit_violations_unrepaired"`
	ScrubPasses  int `json:"scrub_passes"`
	ScrubChunks  int `json:"scrub_chunks"`
	// FinalViolations counts violations found by the post-run
	// verification pass (must be zero).
	FinalViolations int     `json:"final_violations"`
	RecoverySeconds float64 `json:"recovery_seconds"`

	Checks []EnduranceCheck `json:"checks"`
	Pass   bool             `json:"pass"`
}

// WriteJSON renders the report as indented JSON.
func (r *EnduranceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as plain text.
func (r *EnduranceReport) WriteText(w io.Writer) {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fprintf(w, "endurance run [%s] (%s/%s, %d CPU, scale=%s)\n",
		verdict, r.GOOS, r.GOARCH, r.NumCPU, r.Scale)
	fprintf(w, "  %d tenants closed-loop for %.1fs, %d reorg cycles\n",
		r.Tenants, r.DurationSec, r.Reorgs)
	fprintf(w, "  served %d of %d submitted (shed %d, failed %d) — %.1f q/s vs rot-free %.1f q/s (ratio %.2f)\n",
		r.Served, r.Submitted, r.Shed, r.Failed, r.GoodputQPS, r.ControlGoodputQPS, r.GoodputRatio)
	fprintf(w, "  rot injected %d (%d distinct views); audit detected %d, repaired %d, unrepaired %d over %d passes (%d chunks)\n",
		r.RotInjected, r.RotDistinct, r.AuditDetects, r.AuditRepairs, r.AuditUnrep, r.ScrubPasses, r.ScrubChunks)
	fprintf(w, "  final verification violations %d, recovery %.1fs charged\n",
		r.FinalViolations, r.RecoverySeconds)
	for _, c := range r.Checks {
		mark := "ok  "
		if !c.Pass {
			mark = "FAIL"
		}
		fprintf(w, "  [%s] %-22s %s\n", mark, c.Name, c.Detail)
	}
}

// Passed reports whether every acceptance check held.
func (r *EnduranceReport) Passed() bool { return r.Pass }

// enduranceOutcome is what one (rot or control) run produces.
type enduranceOutcome struct {
	sys      *multistore.System
	scrub    *audit.Scrubber
	elapsed  time.Duration
	sub      int
	served   int
	shed     int
	failed   int
	timedOut bool
}

func (o *enduranceOutcome) goodput() float64 {
	if o.elapsed <= 0 {
		return 0
	}
	return float64(o.served) / o.elapsed.Seconds()
}

// adversarialSQL is the per-client query generator: mostly the evolving
// analyst rotation, salted with the workload's heavy tail — repeated
// view-hot queries that keep the catalogs populated (rot needs resident
// victims), expensive late-window shapes whose working sets exhaust
// transfer budgets, and slow multi-join shapes that trip the hedge
// threshold when hedging is armed.
func adversarialSQL(rng *rand.Rand, sqls []string, i int) string {
	switch p := rng.Float64(); {
	case p < 0.15:
		// Heavy tail: the last quarter of the evolving workload carries
		// the widest windows and largest working sets.
		return sqls[len(sqls)-1-rng.Intn(len(sqls)/4)]
	case p < 0.30:
		// Hot repeat: hammer one query so its views stay resident and
		// rot always has a victim worth repairing.
		return sqls[rng.Intn(4)]
	default:
		return sqls[(i+rng.Intn(3))%len(sqls)]
	}
}

// runEndurance executes one closed-loop run (rot armed or not) and
// leaves the system and scrubber alive for the caller's exit audits.
func (cfg EnduranceConfig) runEndurance(rotRate float64) (*enduranceOutcome, error) {
	cat, err := data.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	mc := multistore.DefaultConfig(multistore.VariantMSMiso)
	mc.SetBudgets(cat, cfg.BudgetMultiple, cfg.TransferBudget)
	mc.Faults = faults.Profile{}.With(faults.SiteViewRot, rotRate)
	mc.FaultSeed = cfg.Seed
	mc.Tuner.TuneWorkers = cfg.TuneWorkers
	mc.ExecWorkers = cfg.ExecWorkers
	mc.CheckpointEvery = 8
	// Hedge-triggering slow shapes only matter if hedging is armed.
	mc.Hedge = multistore.HedgeConfig{Enabled: true}
	sys := multistore.New(mc, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, err
	}

	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue,
		QueryTimeout: 20 * time.Second, DrainTimeout: 2 * time.Second,
	}, sys)
	scrub := audit.New(sys, audit.Config{
		Interval:   cfg.ScrubInterval,
		ChunkViews: cfg.ScrubChunk,
		Repair:     true,
		Quiesce:    srv.Quiesce,
	})
	scrub.Start()

	out := &enduranceOutcome{sys: sys, scrub: scrub}
	var (
		mu      sync.Mutex
		hardErr error
	)
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }

	// Horizon watcher: stop once the reorg-cycle and served-query
	// horizons are both met, or the wall-clock cap is hit.
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	deadline := time.Now().Add(cfg.MaxDuration)
	go func() {
		defer watchWG.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				mu.Lock()
				served := out.served
				mu.Unlock()
				if sys.Metrics().Reorgs >= cfg.MinReorgs && served >= cfg.MinQueries {
					halt()
					return
				}
				if time.Now().After(deadline) {
					mu.Lock()
					out.timedOut = true
					mu.Unlock()
					halt()
					return
				}
			}
		}
	}()

	sqls := workload.SQLs()
	start := time.Now()
	var clientWG sync.WaitGroup
	for c := 0; c < cfg.Tenants; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			tenant := fmt.Sprintf("t%03d", c)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sql := adversarialSQL(rng, sqls, c+i)
				_, err := srv.DoAs(context.Background(), tenant, sql)
				mu.Lock()
				out.sub++
				switch {
				case err == nil:
					out.served++
				case errors.Is(err, serve.ErrShed):
					out.shed++
				case errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, context.Canceled),
					errors.Is(err, govern.ErrMemLimit),
					errors.Is(err, govern.ErrInternal):
					out.failed++
				default:
					out.failed++
					if hardErr == nil {
						hardErr = fmt.Errorf("experiments: endurance tenant %s: %w", tenant, err)
					}
				}
				mu.Unlock()
				// Closed-loop think time, jittered ±50% per draw.
				think := time.Duration(float64(cfg.ThinkTime) * (0.5 + rng.Float64()))
				select {
				case <-stop:
					return
				case <-time.After(think):
				}
			}
		}(c)
	}
	clientWG.Wait()
	watchWG.Wait()
	out.elapsed = time.Since(start)
	srv.Close()
	scrub.Stop()

	mu.Lock()
	err = hardErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// distinct returns the sorted distinct strings.
func distinct(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// RunEndurance executes the adversarial endurance run plus its rot-free
// control and assembles the acceptance report.
func RunEndurance(cfg EnduranceConfig) (*EnduranceReport, error) {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 200
	}
	if cfg.MinReorgs <= 0 {
		cfg.MinReorgs = 3
	}
	if cfg.MinQueries <= 0 {
		cfg.MinQueries = 150
	}
	if cfg.MaxDuration <= 0 {
		cfg.MaxDuration = 3 * time.Minute
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 25 * time.Millisecond
	}

	rot, err := cfg.runEndurance(cfg.RotRate)
	if err != nil {
		return nil, fmt.Errorf("experiments: endurance rot run: %w", err)
	}
	// The control differs only in the rot rate: same tenants, same
	// horizon, scrubber still running (its cost is present in both).
	control, err := cfg.runEndurance(0)
	if err != nil {
		return nil, fmt.Errorf("experiments: endurance control run: %w", err)
	}

	sys := rot.sys
	// Exit audit: one more repair pass catches rot injected after the
	// scrubber's last look (or views a reorg moved mid-pass), then an
	// independent verification pass must come back clean.
	if _, err := rot.scrub.RunOnce(); err != nil {
		return nil, fmt.Errorf("experiments: endurance exit repair pass: %w", err)
	}
	finalViols, err := audit.RunOnce(sys, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: endurance verification pass: %w", err)
	}

	m := sys.Metrics()
	sr := rot.scrub.Report()
	rotNames := sys.RotLog()
	rotDistinct := distinct(rotNames)

	rep := &EnduranceReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale:   fmt.Sprintf("%d tweets", cfg.Data.NumTweets),
		Tenants: cfg.Tenants, DurationSec: rot.elapsed.Seconds(), Reorgs: m.Reorgs,
		Submitted: rot.sub, Served: rot.served, Shed: rot.shed, Failed: rot.failed,
		GoodputQPS: rot.goodput(), ControlGoodputQPS: control.goodput(),
		RotInjected: len(rotNames), RotDistinct: len(rotDistinct),
		AuditDetects: m.AuditViolations, AuditRepairs: m.AuditRepaired, AuditUnrep: m.AuditUnrepaired,
		ScrubPasses: sr.Passes, ScrubChunks: sr.Chunks,
		FinalViolations: len(finalViols), RecoverySeconds: m.Recovery,
	}
	if rep.ControlGoodputQPS > 0 {
		rep.GoodputRatio = rep.GoodputQPS / rep.ControlGoodputQPS
	}

	// Which rotted names were repaired at least once? A rotted view that
	// was never repaired must no longer be resident (evicted or dropped
	// by the tuner before a scrub chunk reached it — its corruption left
	// the system with it); anything corrupt AND resident would have
	// failed the verification pass above.
	repaired := map[string]bool{}
	for _, v := range sr.Violations {
		if v.Repaired && v.Invariant == multistore.InvChecksum {
			repaired[v.View] = true
		}
	}
	unaccounted := 0
	for _, name := range rotDistinct {
		if repaired[name] {
			continue
		}
		if sys.HV().Views.Has(name) || sys.DW().Views.Has(name) {
			unaccounted++
		}
	}

	check := func(name string, pass bool, detail string, args ...any) {
		rep.Checks = append(rep.Checks, EnduranceCheck{
			Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...),
		})
	}
	check("horizon", !rot.timedOut && m.Reorgs >= cfg.MinReorgs && rot.served >= cfg.MinQueries,
		"%d reorg cycles (need >= %d), %d served (need >= %d), timed out: %v",
		m.Reorgs, cfg.MinReorgs, rot.served, cfg.MinQueries, rot.timedOut)
	check("rot-exercised", len(rotNames) > 0,
		"%d corruptions injected across %d views", len(rotNames), len(rotDistinct))
	check("rot-repaired", unaccounted == 0,
		"%d distinct rotted views: %d repaired online, %d left the design, %d unaccounted",
		len(rotDistinct), len(repaired), len(rotDistinct)-len(repaired)-unaccounted, unaccounted)
	check("zero-unrepaired", m.AuditUnrepaired == 0 && sr.Fatal == nil,
		"%d unrepaired violations at exit", m.AuditUnrepaired)
	check("final-pass-clean", len(finalViols) == 0,
		"%d violations on the independent verification pass", len(finalViols))
	check("goodput-bound", rep.ControlGoodputQPS <= 0 || rep.GoodputRatio >= 0.5,
		"rot goodput %.1f q/s vs control %.1f q/s (need ratio >= 0.5, got %.2f)",
		rep.GoodputQPS, rep.ControlGoodputQPS, rep.GoodputRatio)
	if err := sys.CheckInvariants(); err != nil {
		check("invariants", false, "%v", err)
	} else {
		check("invariants", true, "catalog invariants hold at exit")
	}

	rep.Pass = true
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

package experiments

import (
	"os"
	"testing"
)

func TestFig7PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	r, err := Fig7(Default())
	if err != nil {
		t.Fatal(err)
	}
	r.WriteText(os.Stderr)
}

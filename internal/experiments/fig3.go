package experiments

import (
	"io"
	"sort"

	"miso/internal/data"
	"miso/internal/logical"
	"miso/internal/multistore"
	"miso/internal/transfer"
	"miso/internal/workload"
)

// Fig3Plan is one multistore plan (one unique split) for the profiled
// query, with its stacked cost components.
type Fig3Plan struct {
	// Label is H for the HV-only plan, B for the best plan, S for plans
	// at least 2x worse than HV-only (the paper's "bad plans"), blank
	// otherwise.
	Label string
	// Cuts is the number of migrated working sets.
	Cuts                       int
	HV, Dump, TransferLoad, DW float64
	TransferBytes              int64
}

// Total is the plan's end-to-end time.
func (p Fig3Plan) Total() float64 { return p.HV + p.Dump + p.TransferLoad + p.DW }

// Fig3Result is the execution-time profile of all multistore plans for a
// single complex query (A1v1) under an empty design, ordered by increasing
// total time — the paper's Figure 3.
type Fig3Result struct {
	Query string
	Plans []Fig3Plan
}

// Fig3 enumerates and costs every split plan for A1v1.
func Fig3(cfg Config) (*Fig3Result, error) {
	cat, err := data.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	mcfg := multistore.DefaultConfig(multistore.VariantMSBasic)
	mcfg.SetBudgets(cat, cfg.BudgetMultiple, cfg.TransferBudget)
	sys := multistore.New(mcfg, cat)

	q, _ := workload.ByName("A1v1")
	plan, err := logical.NewBuilder(cat).BuildSQL(q.SQL)
	if err != nil {
		return nil, err
	}
	// Warm the estimator with one real execution so plan costs reflect
	// observed intermediate sizes (the paper measured real executions).
	if _, err := sys.HV().Execute(plan, 0); err != nil {
		return nil, err
	}
	sys.HV().Views.Reset()

	res := &Fig3Result{Query: q.Name}
	plans := sys.Optimizer().EnumeratePlans(plan, emptyDesign())
	for _, mp := range plans {
		p := Fig3Plan{HV: mp.EstHV, DW: mp.EstDW, Cuts: len(mp.Cuts), TransferBytes: mp.EstTransferBytes}
		b := transfer.Cost(mcfg.Transfer, mp.EstTransferBytes)
		p.Dump = b.Dump
		p.TransferLoad = b.Network + b.Load
		if mp.HVOnly {
			p.Label = "H"
		}
		res.Plans = append(res.Plans, p)
	}
	sort.Slice(res.Plans, func(i, j int) bool { return res.Plans[i].Total() < res.Plans[j].Total() })
	// Mark the best plan and the bad plans.
	if len(res.Plans) > 0 && res.Plans[0].Label == "" {
		res.Plans[0].Label = "B"
	}
	var hvOnly float64
	for _, p := range res.Plans {
		if p.Label == "H" {
			hvOnly = p.Total()
		}
	}
	for i := range res.Plans {
		if res.Plans[i].Label == "" && hvOnly > 0 && res.Plans[i].Total() > 2*hvOnly {
			res.Plans[i].Label = "S"
		}
	}
	return res, nil
}

// WriteText renders the profile as the paper's stacked bars, one row per
// plan in increasing total order.
func (r *Fig3Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 3: execution time profile of all multistore plans for %s\n", r.Query)
	fprintf(w, "%-4s %5s %10s %10s %14s %10s %12s\n",
		"mark", "cuts", "HV(s)", "DUMP(s)", "XFER+LOAD(s)", "DW(s)", "TOTAL(s)")
	for _, p := range r.Plans {
		fprintf(w, "%-4s %5d %10.0f %10.0f %14.0f %10.1f %12.0f\n",
			p.Label, p.Cuts, p.HV, p.Dump, p.TransferLoad, p.DW, p.Total())
	}
	if len(r.Plans) > 0 {
		best := r.Plans[0].Total()
		var hv float64
		bad := 0
		for _, p := range r.Plans {
			if p.Label == "H" {
				hv = p.Total()
			}
			if p.Label == "S" {
				bad++
			}
		}
		if hv > 0 {
			fprintf(w, "best plan B is %.0f%% faster than HV-only H; %d bad plans (S)\n",
				100*(hv-best)/hv, bad)
		}
	}
}

func fig3Summary(r *Fig3Result) (bestVsHV float64, badPlans int) {
	if len(r.Plans) == 0 {
		return 0, 0
	}
	best := r.Plans[0].Total()
	var hv float64
	for _, p := range r.Plans {
		if p.Label == "H" {
			hv = p.Total()
		}
		if p.Label == "S" {
			badPlans++
		}
	}
	if hv > 0 {
		bestVsHV = (hv - best) / hv
	}
	return bestVsHV, badPlans
}

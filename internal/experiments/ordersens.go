package experiments

import (
	"io"

	"miso/internal/multistore"
	"miso/internal/workload"
)

// OrderSensResult is an experiment beyond the paper: how sensitive is each
// tuning approach to the workload's submission order? The sequential order
// (each analyst's versions consecutive) has the locality the sliding-window
// tuner exploits; the interleaved order (round-robin across analysts) is
// adversarial for it. HV-OP, whose LRU retention has no window, serves as
// the control.
type OrderSensResult struct {
	// TTIs[variant] = [sequential, interleaved].
	TTIs map[multistore.Variant][2]float64
}

// OrderSensVariants are the systems compared.
var OrderSensVariants = []multistore.Variant{
	multistore.VariantHVOp,
	multistore.VariantMSMiso,
}

// OrderSensitivity runs the workload in both submission orders.
func OrderSensitivity(cfg Config) (*OrderSensResult, error) {
	res := &OrderSensResult{TTIs: map[multistore.Variant][2]float64{}}
	orders := [][]workload.Query{workload.Evolving(), workload.Interleaved()}
	for _, v := range OrderSensVariants {
		var ttis [2]float64
		for oi, order := range orders {
			sys, err := cfg.newSystem(v)
			if err != nil {
				return nil, err
			}
			sqls := make([]string, len(order))
			for i, q := range order {
				sqls[i] = q.SQL
			}
			if err := sys.ProvideFutureWorkload(sqls); err != nil {
				return nil, err
			}
			for _, q := range order {
				if _, err := sys.Run(q.SQL); err != nil {
					return nil, err
				}
			}
			ttis[oi] = sys.Metrics().TTI()
		}
		res.TTIs[v] = ttis
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *OrderSensResult) WriteText(w io.Writer) {
	fprintf(w, "Order sensitivity (extension): sequential vs interleaved submission\n")
	fprintf(w, "%-9s %14s %14s %10s\n", "variant", "sequential(s)", "interleaved(s)", "penalty")
	for _, v := range OrderSensVariants {
		t := r.TTIs[v]
		penalty := 0.0
		if t[0] > 0 {
			penalty = 100 * (t[1] - t[0]) / t[0]
		}
		fprintf(w, "%-9s %14.0f %14.0f %9.0f%%\n", v, t[0], t[1], penalty)
	}
}

package experiments

import (
	"fmt"
	"io"

	"miso/internal/multistore"
)

// ChaosPoint is one (failure rate, variant) cell of the chaos sweep.
type ChaosPoint struct {
	Rate      float64
	Variant   multistore.Variant
	TTI       float64
	Recovery  float64
	Retries   int
	Fallbacks int
	// Completed counts queries that produced a result (all of them, if
	// recovery holds up; the sweep fails the run otherwise).
	Completed int
}

// ChaosResult is the fault-injection experiment (robustness extension, not
// in the paper): the 32-query workload replayed under increasing uniform
// failure rates, comparing the tuned system against the untuned multistore
// baseline. All runs share one seed so the sweep is reproducible.
type ChaosResult struct {
	Seed   int64
	Points []ChaosPoint
}

// ChaosRates are the uniform per-operation failure rates swept.
var ChaosRates = []float64{0, 0.01, 0.02, 0.05, 0.10}

// Chaos runs the sweep. Each point uses a fresh system; the injector seed
// is fixed so repeated invocations reproduce byte-identical tables.
func Chaos(cfg Config) (*ChaosResult, error) {
	const seed = 42
	res := &ChaosResult{Seed: seed}
	for _, rate := range ChaosRates {
		for _, v := range []multistore.Variant{multistore.VariantMSBasic, multistore.VariantMSMiso} {
			c := cfg
			c.FaultRate = rate
			c.FaultSeed = seed
			sys, err := c.runWorkload(v)
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos rate %.2f %s: %w", rate, v, err)
			}
			m := sys.Metrics()
			res.Points = append(res.Points, ChaosPoint{
				Rate:      rate,
				Variant:   v,
				TTI:       m.TTI(),
				Recovery:  m.Recovery,
				Retries:   m.Retries,
				Fallbacks: m.Fallbacks,
				Completed: len(sys.Reports()),
			})
		}
	}
	return res, nil
}

// WriteText renders the sweep as a table: TTI and its recovery share per
// failure rate, for each variant.
func (r *ChaosResult) WriteText(w io.Writer) {
	fprintf(w, "Chaos sweep: uniform failure rate vs TTI (seed %d)\n", r.Seed)
	fprintf(w, "%6s %-10s %12s %12s %8s %9s %9s\n",
		"rate", "variant", "TTI(s)", "recovery(s)", "rec%", "retries", "fallbacks")
	for _, p := range r.Points {
		pct := 0.0
		if p.TTI > 0 {
			pct = 100 * p.Recovery / p.TTI
		}
		fprintf(w, "%5.0f%% %-10s %12.1f %12.1f %7.1f%% %9d %9d\n",
			100*p.Rate, p.Variant, p.TTI, p.Recovery, pct, p.Retries, p.Fallbacks)
	}
	n := 0
	if len(r.Points) > 0 {
		n = r.Points[0].Completed
	}
	fprintf(w, "all %d-query runs completed under every rate; recovery time is the\n", n)
	fprintf(w, "price of retries, backoff and HV fallbacks charged by the fault plane\n")
}

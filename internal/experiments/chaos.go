package experiments

import (
	"fmt"
	"io"

	"miso/internal/multistore"
)

// ChaosPoint is one (failure rate, variant, mode) cell of the chaos
// sweep. Mode "seq" replays the workload single-stream through
// System.Run; mode "serve" replays it through the concurrent serving
// frontend, where the extra columns (sheds, breaker trips, degraded
// queries) become meaningful.
type ChaosPoint struct {
	Rate      float64
	Variant   multistore.Variant
	Mode      string
	TTI       float64
	Recovery  float64
	Retries   int
	Fallbacks int
	// Completed counts queries that produced a result (all of them, if
	// recovery holds up; the sweep fails the run otherwise).
	Completed int
	// Sheds / BreakerTrips / Timeouts / Degraded are the serving-plane
	// outcomes; always zero in mode "seq".
	Sheds        int
	BreakerTrips int
	Timeouts     int
	Degraded     int
}

// ChaosResult is the fault-injection experiment (robustness extension, not
// in the paper): the 32-query workload replayed under increasing uniform
// failure rates, comparing the tuned system against the untuned multistore
// baseline, sequentially and through the concurrent serving frontend. All
// runs share one seed; the sequential rows are byte-reproducible, the
// serve rows are reproducible up to worker interleaving.
type ChaosResult struct {
	Seed   int64
	Points []ChaosPoint
}

// ChaosRates are the uniform per-operation failure rates swept.
var ChaosRates = []float64{0, 0.01, 0.02, 0.05, 0.10}

// chaosServeSessions shapes the serve-mode rows: more concurrent
// sessions than worker-pool-plus-queue capacity, so admission control
// has real work to do, without drowning the sweep in wall time.
const (
	chaosServeSessions = 6
	chaosServeWorkers  = 2
	chaosServeQueue    = 2
)

// Chaos runs the sweep. Each point uses a fresh system; the injector seed
// is fixed so repeated invocations reproduce the sequential rows
// byte-identically.
func Chaos(cfg Config) (*ChaosResult, error) {
	const seed = 42
	res := &ChaosResult{Seed: seed}
	for _, rate := range ChaosRates {
		for _, v := range []multistore.Variant{multistore.VariantMSBasic, multistore.VariantMSMiso} {
			c := cfg
			c.FaultRate = rate
			c.FaultSeed = seed
			sys, err := c.runWorkload(v)
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos rate %.2f %s: %w", rate, v, err)
			}
			m := sys.Metrics()
			res.Points = append(res.Points, ChaosPoint{
				Rate:      rate,
				Variant:   v,
				Mode:      "seq",
				TTI:       m.TTI(),
				Recovery:  m.Recovery,
				Retries:   m.Retries,
				Fallbacks: m.Fallbacks,
				Completed: len(sys.Reports()),
			})
		}
		// One serve-mode row per rate: the tuned system behind the
		// concurrent frontend.
		c := cfg
		c.FaultRate = rate
		c.FaultSeed = seed
		sc := SoakConfig{
			Config:   c,
			Variant:  multistore.VariantMSMiso,
			Sessions: chaosServeSessions,
			Workers:  chaosServeWorkers,
			Queue:    chaosServeQueue,
		}
		sr, err := Soak(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos serve rate %.2f: %w", rate, err)
		}
		if sr.InvariantErr != nil {
			return nil, fmt.Errorf("experiments: chaos serve rate %.2f: %w", rate, sr.InvariantErr)
		}
		sm := sr.System
		res.Points = append(res.Points, ChaosPoint{
			Rate:         rate,
			Variant:      multistore.VariantMSMiso,
			Mode:         "serve",
			TTI:          sm.TTI(),
			Recovery:     sm.Recovery,
			Retries:      sm.Retries,
			Fallbacks:    sm.Fallbacks,
			Completed:    sr.Serve.Completed,
			Sheds:        sr.Serve.Sheds,
			BreakerTrips: sr.Serve.BreakerTrips,
			Timeouts:     sr.Serve.Timeouts,
			Degraded:     sr.Serve.Degraded,
		})
	}
	return res, nil
}

// WriteText renders the sweep as a table: TTI and its recovery share per
// failure rate, for each variant and serving mode.
func (r *ChaosResult) WriteText(w io.Writer) {
	fprintf(w, "Chaos sweep: uniform failure rate vs TTI (seed %d)\n", r.Seed)
	fprintf(w, "%6s %-10s %-6s %12s %12s %8s %8s %6s %6s %6s %9s\n",
		"rate", "variant", "mode", "TTI(s)", "recovery(s)", "rec%", "retries", "fallbk", "sheds", "trips", "degraded")
	for _, p := range r.Points {
		pct := 0.0
		if p.TTI > 0 {
			pct = 100 * p.Recovery / p.TTI
		}
		fprintf(w, "%5.0f%% %-10s %-6s %12.1f %12.1f %7.1f%% %8d %6d %6d %6d %9d\n",
			100*p.Rate, p.Variant, p.Mode, p.TTI, p.Recovery, pct,
			p.Retries, p.Fallbacks, p.Sheds, p.BreakerTrips, p.Degraded)
	}
	n := 0
	if len(r.Points) > 0 {
		n = r.Points[0].Completed
	}
	fprintf(w, "all %d-query sequential runs completed under every rate; serve rows add\n", n)
	fprintf(w, "admission sheds, DW breaker trips and degraded HV-only service on top of\n")
	fprintf(w, "the retries, backoff and HV fallbacks charged by the fault plane\n")
}

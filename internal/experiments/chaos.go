package experiments

import (
	"fmt"
	"io"
	"time"

	"miso/internal/audit"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// ChaosPoint is one (failure rate, variant, mode) cell of the chaos
// sweep. Mode "seq" replays the workload single-stream through
// System.Run; mode "serve" replays it through the concurrent serving
// frontend, where the extra columns (sheds, breaker trips, degraded
// queries) become meaningful.
type ChaosPoint struct {
	Rate      float64
	Variant   multistore.Variant
	Mode      string
	TTI       float64
	Recovery  float64
	Retries   int
	Fallbacks int
	// Completed counts queries that produced a result (all of them, if
	// recovery holds up; the sweep fails the run otherwise).
	Completed int
	// Sheds / BreakerTrips / Timeouts / Degraded are the serving-plane
	// outcomes; always zero in mode "seq".
	Sheds        int
	BreakerTrips int
	Timeouts     int
	Degraded     int
	// Recoveries / Replayed / Quarantined are the crash-plane outcomes:
	// process crashes survived via Recover, WAL records replayed across
	// those recoveries, and views quarantined (corrupt or stale) on the way
	// back. Always zero in modes "seq" and "serve", which crash nothing.
	Recoveries  int
	Replayed    int
	Quarantined int
	// Canceled / MemAborted / PanicsContained / CancelP99Ms are the
	// governance-plane outcomes (mode "govern"): queries abandoned by
	// caller cancellation, aborted over their memory budget, failed by a
	// worker panic contained to a typed error, and the 99th-percentile
	// cancel-to-idle latency in wall-clock milliseconds. Zero elsewhere.
	Canceled        int
	MemAborted      int
	PanicsContained int
	CancelP99Ms     float64
	// ViolationsDetected / ViolationsRepaired / ViolationsUnrepaired are
	// the audit-plane outcomes (mode "audit"): integrity violations found
	// by the background scrubber while SiteViewRot corrupts resident
	// views at the sweep rate, how many were self-healed online, and how
	// many could only be quarantined. Zero elsewhere.
	ViolationsDetected   int
	ViolationsRepaired   int
	ViolationsUnrepaired int
}

// ChaosResult is the fault-injection experiment (robustness extension, not
// in the paper): the 32-query workload replayed under increasing uniform
// failure rates, comparing the tuned system against the untuned multistore
// baseline, sequentially and through the concurrent serving frontend. All
// runs share one seed; the sequential rows are byte-reproducible, the
// serve rows are reproducible up to worker interleaving.
type ChaosResult struct {
	Seed   int64
	Points []ChaosPoint
}

// ChaosRates are the uniform per-operation failure rates swept.
var ChaosRates = []float64{0, 0.01, 0.02, 0.05, 0.10}

// chaosServeSessions shapes the serve-mode rows: more concurrent
// sessions than worker-pool-plus-queue capacity, so admission control
// has real work to do, without drowning the sweep in wall time.
const (
	chaosServeSessions = 6
	chaosServeWorkers  = 2
	chaosServeQueue    = 2
)

// Chaos runs the sweep. Each point uses a fresh system; the injector seed
// is fixed so repeated invocations reproduce the sequential rows
// byte-identically.
func Chaos(cfg Config) (*ChaosResult, error) {
	const seed = 42
	res := &ChaosResult{Seed: seed}
	for _, rate := range ChaosRates {
		for _, v := range []multistore.Variant{multistore.VariantMSBasic, multistore.VariantMSMiso} {
			c := cfg
			c.FaultRate = rate
			c.FaultSeed = seed
			sys, err := c.runWorkload(v)
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos rate %.2f %s: %w", rate, v, err)
			}
			m := sys.Metrics()
			res.Points = append(res.Points, ChaosPoint{
				Rate:      rate,
				Variant:   v,
				Mode:      "seq",
				TTI:       m.TTI(),
				Recovery:  m.Recovery,
				Retries:   m.Retries,
				Fallbacks: m.Fallbacks,
				Completed: len(sys.Reports()),
			})
		}
		// One serve-mode row per rate: the tuned system behind the
		// concurrent frontend.
		c := cfg
		c.FaultRate = rate
		c.FaultSeed = seed
		sc := SoakConfig{
			Config:   c,
			Variant:  multistore.VariantMSMiso,
			Sessions: chaosServeSessions,
			Workers:  chaosServeWorkers,
			Queue:    chaosServeQueue,
		}
		sr, err := Soak(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos serve rate %.2f: %w", rate, err)
		}
		if sr.InvariantErr != nil {
			return nil, fmt.Errorf("experiments: chaos serve rate %.2f: %w", rate, sr.InvariantErr)
		}
		sm := sr.System
		res.Points = append(res.Points, ChaosPoint{
			Rate:         rate,
			Variant:      multistore.VariantMSMiso,
			Mode:         "serve",
			TTI:          sm.TTI(),
			Recovery:     sm.Recovery,
			Retries:      sm.Retries,
			Fallbacks:    sm.Fallbacks,
			Completed:    sr.Serve.Completed,
			Sheds:        sr.Serve.Sheds,
			BreakerTrips: sr.Serve.BreakerTrips,
			Timeouts:     sr.Serve.Timeouts,
			Degraded:     sr.Serve.Degraded,
		})
		// One crash-mode row per rate: the tuned system with the durability
		// plane on, crash sites scaled with the rate, every death recovered
		// from checkpoint + WAL and the killed query resubmitted. The rate-0
		// row doubles as the journaling-overhead control: its TTI must equal
		// the rate-0 seq row (journaling charges no simulated time).
		p := chaosCrashProfile(rate)
		mcfg, cat, err := c.crashConfig(multistore.VariantMSMiso, p, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos crash rate %.2f: %w", rate, err)
		}
		csys, st, err := runCrashWorkload(mcfg, cat)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos crash rate %.2f: %w", rate, err)
		}
		cm := csys.Metrics()
		res.Points = append(res.Points, ChaosPoint{
			Rate:        rate,
			Variant:     multistore.VariantMSMiso,
			Mode:        "crash",
			TTI:         cm.TTI(),
			Recovery:    cm.Recovery,
			Retries:     cm.Retries,
			Fallbacks:   cm.Fallbacks,
			Completed:   len(csys.Reports()),
			Degraded:    cm.Degraded,
			Recoveries:  st.recoveries,
			Replayed:    st.replayed,
			Quarantined: st.quarantined,
		})
		// One govern-mode row per rate: the tuned system behind the
		// serving frontend with the governance plane armed — exec-plane
		// fault sites (contained panics, injected memory pressure, slow
		// morsels) plus a caller-cancellation pattern.
		gp, err := governChaosPoint(c, rate, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos govern rate %.2f: %w", rate, err)
		}
		res.Points = append(res.Points, gp)
		// One audit-mode row per rate: the tuned system with SiteViewRot
		// corrupting resident views at the sweep rate and the background
		// scrubber detecting and self-healing them under the workload.
		ap, err := auditChaosPoint(c, rate, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos audit rate %.2f: %w", rate, err)
		}
		res.Points = append(res.Points, ap)
	}
	return res, nil
}

// auditChaosPoint replays the workload with bit rot armed and the
// integrity scrubber running in repair mode. The run must end clean: a
// final verification pass with repair off may find nothing, or the
// audit plane failed to converge and the sweep errors out.
func auditChaosPoint(c Config, rate float64, seed int64) (ChaosPoint, error) {
	p := faults.Profile{}.With(faults.SiteViewRot, rate)
	mcfg, cat, err := c.crashConfig(multistore.VariantMSMiso, p, seed)
	if err != nil {
		return ChaosPoint{}, err
	}
	sys := multistore.New(mcfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return ChaosPoint{}, err
	}
	scrub := audit.New(sys, audit.Config{
		Interval: time.Millisecond, ChunkViews: 4, Repair: true,
	})
	scrub.Start()
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			scrub.Stop()
			return ChaosPoint{}, fmt.Errorf("query %d: %w", i, err)
		}
	}
	scrub.Stop()
	// Catch rot injected after the scrubber's last chunk, then verify.
	if _, err := scrub.RunOnce(); err != nil {
		return ChaosPoint{}, err
	}
	if viols, err := audit.RunOnce(sys, false); err != nil {
		return ChaosPoint{}, err
	} else if len(viols) > 0 {
		return ChaosPoint{}, fmt.Errorf("%d violations survived the repair passes (first: %s)",
			len(viols), viols[0])
	}
	m := sys.Metrics()
	return ChaosPoint{
		Rate:      rate,
		Variant:   multistore.VariantMSMiso,
		Mode:      "audit",
		TTI:       m.TTI(),
		Recovery:  m.Recovery,
		Retries:   m.Retries,
		Fallbacks: m.Fallbacks,
		Completed: len(sys.Reports()),

		ViolationsDetected:   m.AuditViolations,
		ViolationsRepaired:   m.AuditRepaired,
		ViolationsUnrepaired: m.AuditUnrepaired,
	}, nil
}

// chaosCrashProfile arms the crash-plane sites at the sweep rate: process
// kills in the serving, transfer and reorganization paths plus durable-copy
// corruption at the full rate, WAL tears at a tenth of it (appends are an
// order of magnitude more frequent than queries).
func chaosCrashProfile(rate float64) faults.Profile {
	return faults.Profile{}.
		With(faults.SiteCrashServe, rate).
		With(faults.SiteCrashTransfer, rate).
		With(faults.SiteCrashReorg, rate).
		With(faults.SiteViewCorrupt, rate).
		With(faults.SiteWALWrite, rate/10)
}

// WriteText renders the sweep as a table: TTI and its recovery share per
// failure rate, for each variant and serving mode.
func (r *ChaosResult) WriteText(w io.Writer) {
	fprintf(w, "Chaos sweep: uniform failure rate vs TTI (seed %d)\n", r.Seed)
	fprintf(w, "%6s %-10s %-6s %12s %12s %8s %8s %6s %6s %6s %9s %6s %8s %6s %6s %6s %6s %8s %6s %6s %6s\n",
		"rate", "variant", "mode", "TTI(s)", "recovery(s)", "rec%", "retries", "fallbk", "sheds", "trips", "degraded",
		"recov", "replayed", "quarn", "cancel", "memab", "panics", "cp99ms", "vdet", "vrep", "vunrep")
	for _, p := range r.Points {
		pct := 0.0
		if p.TTI > 0 {
			pct = 100 * p.Recovery / p.TTI
		}
		fprintf(w, "%5.0f%% %-10s %-6s %12.1f %12.1f %7.1f%% %8d %6d %6d %6d %9d %6d %8d %6d %6d %6d %6d %8.1f %6d %6d %6d\n",
			100*p.Rate, p.Variant, p.Mode, p.TTI, p.Recovery, pct,
			p.Retries, p.Fallbacks, p.Sheds, p.BreakerTrips, p.Degraded,
			p.Recoveries, p.Replayed, p.Quarantined,
			p.Canceled, p.MemAborted, p.PanicsContained, p.CancelP99Ms,
			p.ViolationsDetected, p.ViolationsRepaired, p.ViolationsUnrepaired)
	}
	n := 0
	if len(r.Points) > 0 {
		n = r.Points[0].Completed
	}
	fprintf(w, "all %d-query sequential runs completed under every rate; serve rows add\n", n)
	fprintf(w, "admission sheds, DW breaker trips and degraded HV-only service; crash rows\n")
	fprintf(w, "add process kills survived via checkpoint+WAL recovery (recoveries,\n")
	fprintf(w, "replayed records, quarantined views); govern rows add caller cancellation,\n")
	fprintf(w, "memory-budget aborts and contained worker panics with the p99\n")
	fprintf(w, "cancel-to-idle latency; audit rows add bit-rot corruptions detected,\n")
	fprintf(w, "self-healed and left unrepaired by the background integrity scrubber,\n")
	fprintf(w, "on top of the retries, backoff and HV fallbacks charged by the fault plane\n")
}

// Governance experiments: the query-level resource-governance plane under
// load. The cancellation storm measures cancel-to-idle latency (how long a
// canceled query keeps a serving worker busy), the panic run proves
// injected worker panics are contained to single-query failures while
// concurrent queries keep producing byte-identical results, the memory run
// exercises per-query budget aborts, and the identity check pins the
// governance plane's zero-cost-when-disabled promise: with no limits, no
// exec faults and background contexts, the 32-query workload's results and
// state digest are byte-identical whether or not a ledger is attached.
// BenchGovern writes the machine-readable report CI uploads as
// BENCH_governance.json.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/storage"
	"miso/internal/workload"
)

// governProfile arms the exec-plane fault sites for one chaos sweep rate.
// Panic and memory-pressure draws happen once per morsel/operator — two
// orders of magnitude more often than the store-level sites — so their
// rates are scaled down to keep per-query survival comparable; slow
// morsels are harmless stalls and run at the full rate.
func governProfile(rate float64) faults.Profile {
	return faults.Profile{}.
		With(faults.SiteExecPanic, rate/10).
		With(faults.SiteMemPressure, rate/10).
		With(faults.SiteSlowMorsel, rate)
}

// newGovernSystem builds a system with an explicit (exec-plane) fault
// profile and per-query memory limit, where newSystem only takes a uniform
// store-level rate.
func (c Config) newGovernSystem(v multistore.Variant, prof faults.Profile, seed int64, memLimit int64) (*multistore.System, error) {
	cat, err := data.Generate(c.Data)
	if err != nil {
		return nil, err
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, c.BudgetMultiple, c.TransferBudget)
	cfg.Faults = prof
	cfg.FaultSeed = seed
	cfg.Tuner.TuneWorkers = c.TuneWorkers
	cfg.ExecWorkers = c.ExecWorkers
	cfg.MemLimitBytes = memLimit
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, err
	}
	return sys, nil
}

// governedOutcome reports whether err is an expected governed outcome of a
// storm run rather than a hard failure.
func governedOutcome(err error) bool {
	return err == nil ||
		errors.Is(err, serve.ErrShed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, govern.ErrMemLimit) ||
		errors.Is(err, govern.ErrInternal)
}

// durPercentile returns the p-th percentile of latencies (0 when empty).
func durPercentile(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := len(s) * p / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// governStorm drives one governed serving run: sessions×queries
// submissions against srv, canceling three of every four query contexts a
// few milliseconds in. It returns the first hard (non-governed) error.
func governStorm(srv *serve.Server, sessions, queries int) error {
	sqls := workload.SQLs()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		hardErr error
	)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				k := session*queries + i
				sql := sqls[k%len(sqls)]
				ctx, cancel := context.WithCancel(context.Background())
				var timer *time.Timer
				if k%4 != 3 {
					// Staggered cancellation: mid-flight for queries
					// already executing, pre-admission for queued ones.
					timer = time.AfterFunc(time.Duration(1+k%5)*time.Millisecond, cancel)
				}
				_, err := srv.Do(ctx, sql)
				if timer != nil {
					timer.Stop()
				}
				cancel()
				if !governedOutcome(err) {
					mu.Lock()
					if hardErr == nil {
						hardErr = fmt.Errorf("experiments: govern session %d query %d: %w", session, i, err)
					}
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	srv.Close()
	return hardErr
}

// governChaosPoint is the chaos sweep's govern-mode row: MS-MISO behind
// the serving frontend with exec-plane faults armed at the sweep rate and
// the cancellation pattern of governStorm.
func governChaosPoint(c Config, rate float64, seed int64) (ChaosPoint, error) {
	sys, err := c.newGovernSystem(multistore.VariantMSMiso, governProfile(rate), seed, 0)
	if err != nil {
		return ChaosPoint{}, err
	}
	srv := serve.NewServer(serve.Config{Workers: chaosServeWorkers, QueueDepth: 64}, sys)
	if err := governStorm(srv, 4, 16); err != nil {
		return ChaosPoint{}, err
	}
	m := srv.Metrics()
	if err := m.Check(); err != nil {
		return ChaosPoint{}, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return ChaosPoint{}, err
	}
	sm := sys.Metrics()
	return ChaosPoint{
		Rate:            rate,
		Variant:         multistore.VariantMSMiso,
		Mode:            "govern",
		TTI:             sm.TTI(),
		Recovery:        sm.Recovery,
		Retries:         sm.Retries,
		Fallbacks:       sm.Fallbacks,
		Completed:       m.Completed,
		Sheds:           m.Sheds,
		BreakerTrips:    m.BreakerTrips,
		Timeouts:        m.Timeouts,
		Degraded:        m.Degraded,
		Canceled:        m.Canceled,
		MemAborted:      m.Aborted,
		PanicsContained: m.PanicsContained,
		CancelP99Ms:     float64(durPercentile(srv.CancelLatencies(), 99)) / 1e6,
	}, nil
}

// GovernReport is the machine-readable governance report
// (BENCH_governance.json in CI).
type GovernReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	Scale  string `json:"scale"`

	// Cancellation storm: submissions against a slow-morsel-stretched
	// system with three of every four query contexts canceled mid-flight,
	// and the measured cancel-to-idle latency distribution.
	StormSubmitted   int     `json:"storm_submitted"`
	StormCompleted   int     `json:"storm_completed"`
	StormCanceled    int     `json:"storm_canceled"`
	CancelP50Ms      float64 `json:"cancel_p50_ms"`
	CancelP99Ms      float64 `json:"cancel_p99_ms"`
	CancelMaxMs      float64 `json:"cancel_max_ms"`
	CancelBoundMs    float64 `json:"cancel_bound_ms"`
	CancelP99Bounded bool    `json:"cancel_p99_bounded"`

	// Panic containment: HV-ONLY workload with worker panics injected;
	// every failure must wrap govern.ErrInternal and every success must be
	// byte-identical to the fault-free baseline.
	PanicSubmitted          int  `json:"panic_submitted"`
	PanicContained          int  `json:"panic_contained"`
	PanicCompleted          int  `json:"panic_completed"`
	PanicSurvivorsIdentical bool `json:"panic_survivors_identical"`
	PanicProcessSurvived    bool `json:"panic_process_survived"`

	// Memory budget: queries run under a deliberately tiny per-query
	// limit must abort with govern.ErrMemLimit.
	MemLimitBytes int64 `json:"mem_limit_bytes"`
	MemSubmitted  int   `json:"mem_submitted"`
	MemAborted    int   `json:"mem_aborted"`

	// Governance-off identity: result + state digests of the 32-query
	// workload with no governance at all versus with a ledger attached at
	// an unreachable limit. Equal digests prove the plane is free when
	// idle.
	DigestPlain     string `json:"digest_plain"`
	DigestGoverned  string `json:"digest_governed"`
	DigestIdentical bool   `json:"digest_identical"`
}

// WriteJSON renders the report as indented JSON.
func (r *GovernReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a human-readable summary.
func (r *GovernReport) WriteText(w io.Writer) {
	fprintf(w, "governance pipeline (%s/%s, %d CPU, scale=%s)\n", r.GOOS, r.GOARCH, r.NumCPU, r.Scale)
	fprintf(w, "cancellation storm: %d submitted, %d completed, %d canceled\n",
		r.StormSubmitted, r.StormCompleted, r.StormCanceled)
	fprintf(w, "  cancel-to-idle latency p50 %.2fms  p99 %.2fms  max %.2fms  (bound %.0fms: %v)\n",
		r.CancelP50Ms, r.CancelP99Ms, r.CancelMaxMs, r.CancelBoundMs, r.CancelP99Bounded)
	fprintf(w, "panic containment: %d submitted, %d panics contained, %d completed, survivors identical %v, process survived %v\n",
		r.PanicSubmitted, r.PanicContained, r.PanicCompleted, r.PanicSurvivorsIdentical, r.PanicProcessSurvived)
	fprintf(w, "memory budget (%d B/query): %d submitted, %d aborted over budget\n",
		r.MemLimitBytes, r.MemSubmitted, r.MemAborted)
	fprintf(w, "governance-off identity: plain %s vs governed %s: identical %v\n",
		r.DigestPlain, r.DigestGoverned, r.DigestIdentical)
}

// workloadDigest runs every workload query on sys through run and folds
// the result tables and final state digest into one order-sensitive
// digest.
func workloadDigest(sys *multistore.System, run func(sql string) (*multistore.QueryReport, error)) (uint64, error) {
	d := storage.HashSeed
	for i, sql := range workload.SQLs() {
		rep, err := run(sql)
		if err != nil {
			return 0, fmt.Errorf("experiments: identity query %d: %w", i, err)
		}
		d = digestTables(d, rep.Result)
	}
	return d*1099511628211 ^ sys.StateDigest(), nil
}

// BenchGovern runs the governance pipeline: the cancellation storm, the
// panic-containment run, the memory-budget run, and the governance-off
// identity check.
func BenchGovern(c Config) (*GovernReport, error) {
	scale := "paper"
	if c.Data.NumTweets == data.SmallConfig().NumTweets {
		scale = "small"
	}
	rep := &GovernReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Scale:  scale,
	}

	// 1. Cancellation storm: every morsel stalls (up to 2ms), so queries
	// are long enough that mid-flight cancellation is the common case.
	stormSys, err := c.newGovernSystem(multistore.VariantMSMiso,
		faults.Profile{}.With(faults.SiteSlowMorsel, 1), 42, 0)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64}, stormSys)
	if err := governStorm(srv, 4, 8); err != nil {
		return nil, err
	}
	m := srv.Metrics()
	if err := m.Check(); err != nil {
		return nil, err
	}
	lat := srv.CancelLatencies()
	rep.StormSubmitted = m.Submitted
	rep.StormCompleted = m.Completed
	rep.StormCanceled = m.Canceled
	rep.CancelP50Ms = float64(durPercentile(lat, 50)) / 1e6
	rep.CancelP99Ms = float64(durPercentile(lat, 99)) / 1e6
	rep.CancelMaxMs = float64(durPercentile(lat, 100)) / 1e6
	rep.CancelBoundMs = 1000
	rep.CancelP99Bounded = rep.CancelP99Ms <= rep.CancelBoundMs

	// 2. Panic containment. HV-ONLY retains nothing between queries, so
	// every query's result is position-independent: the fault-free
	// baseline digests are the ground truth for any concurrent
	// interleaving of the faulted run.
	baseSys, err := c.newGovernSystem(multistore.VariantHVOnly, faults.Profile{}, 42, 0)
	if err != nil {
		return nil, err
	}
	baseline := map[string]uint64{}
	for _, sql := range workload.SQLs() {
		r, err := baseSys.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("experiments: panic baseline: %w", err)
		}
		baseline[sql] = storage.ChecksumTable(r.Result)
	}
	panicSys, err := c.newGovernSystem(multistore.VariantHVOnly,
		faults.Profile{}.With(faults.SiteExecPanic, 0.01), 42, 0)
	if err != nil {
		return nil, err
	}
	psrv := serve.NewServer(serve.Config{Workers: 2, QueueDepth: 64}, panicSys)
	var (
		pwg       sync.WaitGroup
		pmu       sync.Mutex
		phard     error
		identical = true
	)
	sqls := workload.SQLs()
	for s := 0; s < 2; s++ {
		pwg.Add(1)
		go func(session int) {
			defer pwg.Done()
			for i := session; i < len(sqls); i += 2 {
				sql := sqls[i]
				r, err := psrv.Do(context.Background(), sql)
				pmu.Lock()
				switch {
				case err == nil:
					if storage.ChecksumTable(r.Result) != baseline[sql] {
						identical = false
					}
				case errors.Is(err, govern.ErrInternal):
					// Contained panic: counted by the server.
				default:
					if phard == nil {
						phard = fmt.Errorf("experiments: panic run query %d: %w", i, err)
					}
				}
				pmu.Unlock()
			}
		}(s)
	}
	pwg.Wait()
	psrv.Close()
	if phard != nil {
		return nil, phard
	}
	pm := psrv.Metrics()
	if err := pm.Check(); err != nil {
		return nil, err
	}
	rep.PanicSubmitted = pm.Submitted
	rep.PanicContained = pm.PanicsContained
	rep.PanicCompleted = pm.Completed
	rep.PanicSurvivorsIdentical = identical
	rep.PanicProcessSurvived = true // reaching here means no panic escaped

	// 3. Memory budget: a limit far below any query's working set.
	memSys, err := c.newGovernSystem(multistore.VariantMSMiso, faults.Profile{}, 42, 64<<10)
	if err != nil {
		return nil, err
	}
	rep.MemLimitBytes = 64 << 10
	for i, sql := range workload.SQLs()[:8] {
		rep.MemSubmitted++
		if _, err := memSys.RunContext(context.Background(), sql); err != nil &&
			!errors.Is(err, govern.ErrMemLimit) {
			return nil, fmt.Errorf("experiments: mem run query %d: %w", i, err)
		}
	}
	rep.MemAborted = memSys.Metrics().MemAborted

	// 4. Governance-off identity.
	plainSys, err := c.newSystem(multistore.VariantMSMiso)
	if err != nil {
		return nil, err
	}
	dPlain, err := workloadDigest(plainSys, plainSys.Run)
	if err != nil {
		return nil, err
	}
	govSys, err := c.newGovernSystem(multistore.VariantMSMiso, faults.Profile{}, 42, 1<<40)
	if err != nil {
		return nil, err
	}
	dGov, err := workloadDigest(govSys, func(sql string) (*multistore.QueryReport, error) {
		return govSys.RunContext(context.Background(), sql)
	})
	if err != nil {
		return nil, err
	}
	rep.DigestPlain = fmt.Sprintf("%016x", dPlain)
	rep.DigestGoverned = fmt.Sprintf("%016x", dGov)
	rep.DigestIdentical = dPlain == dGov
	return rep, nil
}

// Exec benchmark pipeline: reproducible measurements of the data path —
// the morsel execution engine against the legacy serial engine, per
// operator and end-to-end over the paper's 32-query workload — written as
// the same machine-readable report shape as the tuner pipeline
// (BENCH_exec.json in CI). Every parallel row's outputs are digest-checked
// against the serial baseline's during measurement, so the report cannot
// record a speedup from an engine that produced different answers.
package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/logical"
	"miso/internal/storage"
	"miso/internal/workload"
)

// execWorkerCounts are the morsel-engine pool sizes the end-to-end rows
// sweep; per-operator rows measure the midpoint (4).
var execWorkerCounts = []int{1, 2, 4, 8}

type execFixture struct {
	cat   *storage.Catalog
	plans []*logical.Node
}

func newExecFixture(dcfg data.Config) (*execFixture, error) {
	cat, err := data.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	builder := logical.NewBuilder(cat)
	f := &execFixture{cat: cat}
	for _, q := range workload.Evolving() {
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("benchexec: build %s: %w", q.Name, err)
		}
		f.plans = append(f.plans, plan)
	}
	return f, nil
}

func (f *execFixture) env(workers int) *exec.Env {
	return &exec.Env{
		ReadLog: func(name string) (*storage.LogFile, error) { return f.cat.Log(name) },
		Workers: workers,
	}
}

// digestTables folds table checksums into one order-sensitive digest.
func digestTables(d uint64, t *storage.Table) uint64 {
	return d*1099511628211 ^ storage.ChecksumTable(t)
}

// runWorkload executes every workload plan over the raw logs and returns
// the combined output digest.
func (f *execFixture) runWorkload(workers int) (uint64, error) {
	env := f.env(workers)
	d := storage.HashSeed
	for i, plan := range f.plans {
		out, err := exec.Run(plan, env)
		if err != nil {
			return 0, fmt.Errorf("benchexec: workload query %d: %w", i, err)
		}
		d = digestTables(d, out)
	}
	return d, nil
}

// opCase isolates one operator: the first node of the given kind in the
// plan built from sql, benchmarked over its serially-precomputed inputs.
type opCase struct {
	name string
	sql  string
	kind logical.Kind
}

var execOpCases = []opCase{
	{"extract", "SELECT tweet_id, user_id, ts, text, hashtag, lang, retweets, followers FROM tweets", logical.KindExtract},
	{"filter", "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 10", logical.KindFilter},
	{"project", "SELECT retweets * 2 AS dbl, UPPER(lang) AS lg, SENTIMENT(text) AS s FROM tweets", logical.KindProject},
	{"join", "SELECT t.tweet_id, c.lat FROM tweets t JOIN checkins c ON t.user_id = c.user_id", logical.KindJoin},
	{"aggregate", "SELECT hashtag, COUNT(*) AS n, SUM(retweets) AS rt, AVG(followers) AS fl FROM tweets GROUP BY hashtag", logical.KindAggregate},
	{"distinct", "SELECT DISTINCT lang, hashtag FROM tweets", logical.KindDistinct},
	{"sort", "SELECT tweet_id, retweets FROM tweets ORDER BY retweets DESC", logical.KindSort},
}

func findKind(root *logical.Node, kind logical.Kind) *logical.Node {
	var found *logical.Node
	root.Walk(func(n *logical.Node) {
		if found == nil && n.Kind == kind {
			found = n
		}
	})
	return found
}

// benchNode measures RunNode on one operator with the given engine and
// returns the row plus the output digest of a representative run.
func (f *execFixture) benchNode(name string, n *logical.Node, inputs []*storage.Table, workers int) (BenchRow, uint64, error) {
	env := f.env(workers)
	out, err := exec.RunNode(n, env, inputs)
	if err != nil {
		return BenchRow{}, 0, err
	}
	digest := storage.ChecksumTable(out)
	var runErr error
	// Best-of-3: per-operator runs are sub-millisecond, so a background
	// load spike during one engine's measurement window can flip a ratio;
	// the minimum ns/op of three repetitions is the stable estimate of what
	// the operator actually costs.
	var res testing.BenchmarkResult
	for rep := 0; rep < 3; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunNode(n, env, inputs); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return BenchRow{}, 0, runErr
		}
		if rep == 0 || r.NsPerOp() < res.NsPerOp() {
			res = r
		}
	}
	return BenchRow{
		Name:        name,
		Workers:     workers,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Digest:      fmt.Sprintf("%016x", digest),
	}, digest, nil
}

// GateExec enforces the columnar performance floor on a benchexec report:
// every per-operator morsel row must match the serial digest AND run at
// least as fast as the serial baseline (speedup >= 1.0). It returns an
// error listing every violation, so a perf regression in one operator
// fails CI with the full picture rather than the first symptom.
func GateExec(rep *BenchReport) error {
	var bad []string
	checked := 0
	for _, r := range rep.Rows {
		if r.Workers != 4 || len(r.Name) < 6 || r.Name[:5] != "exec/" || r.Name == "exec/workload/workers=4" {
			continue
		}
		checked++
		if !r.DigestMatchesBaseline {
			bad = append(bad, fmt.Sprintf("%s: digest does not match serial baseline", r.Name))
		}
		if r.SpeedupVsBaseline < 1.0 {
			bad = append(bad, fmt.Sprintf("%s: speedup %.2fx < 1.0x vs serial (%.2fms vs baseline)",
				r.Name, r.SpeedupVsBaseline, float64(r.NsPerOp)/1e6))
		}
	}
	if checked == 0 {
		return fmt.Errorf("benchexec gate: no per-operator workers=4 rows in report")
	}
	if len(bad) > 0 {
		msg := "benchexec gate: columnar floor violated:"
		for _, b := range bad {
			msg += "\n  " + b
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// BenchExec runs the exec benchmark pipeline: per-operator serial-vs-
// morsel rows at 4 workers, then the full workload end-to-end at worker
// counts 1/2/4/8, all digest-checked against the serial baseline.
func BenchExec(c Config) (*BenchReport, error) {
	scale := "paper"
	if c.Data.NumTweets == data.SmallConfig().NumTweets {
		scale = "small"
	}
	rep := &BenchReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Scale:  scale,
	}
	f, err := newExecFixture(c.Data)
	if err != nil {
		return nil, err
	}

	serialEnv := f.env(exec.SerialWorkers)
	for _, oc := range execOpCases {
		built, err := logical.NewBuilder(f.cat).BuildSQL(oc.sql)
		if err != nil {
			return nil, fmt.Errorf("benchexec: build %s: %w", oc.name, err)
		}
		node := findKind(built, oc.kind)
		if node == nil {
			return nil, fmt.Errorf("benchexec: no %v node in %q", oc.kind, oc.sql)
		}
		// Precompute the operator's inputs once, serially; both engines
		// then measure exactly one operator over identical inputs.
		var inputs []*storage.Table
		if oc.kind != logical.KindExtract {
			for _, child := range node.Children {
				t, err := exec.Run(child, serialEnv)
				if err != nil {
					return nil, fmt.Errorf("benchexec: %s inputs: %w", oc.name, err)
				}
				inputs = append(inputs, t)
			}
		}
		base, baseDigest, err := f.benchNode("exec/"+oc.name+"/serial", node, inputs, exec.SerialWorkers)
		if err != nil {
			return nil, err
		}
		base.Workers = 0
		base.SpeedupVsBaseline = 1
		rep.Rows = append(rep.Rows, base)
		row, digest, err := f.benchNode(fmt.Sprintf("exec/%s/workers=4", oc.name), node, inputs, 4)
		if err != nil {
			return nil, err
		}
		if digest != baseDigest {
			return nil, fmt.Errorf("benchexec: %s: morsel output diverged from serial (digest %016x vs %016x)", oc.name, digest, baseDigest)
		}
		row.DigestMatchesBaseline = true
		if row.NsPerOp > 0 {
			row.SpeedupVsBaseline = float64(base.NsPerOp) / float64(row.NsPerOp)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// End-to-end: the full 32-query workload over raw logs.
	benchWorkload := func(name string, workers int) (BenchRow, uint64, error) {
		digest, err := f.runWorkload(workers)
		if err != nil {
			return BenchRow{}, 0, err
		}
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.runWorkload(workers); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return BenchRow{}, 0, runErr
		}
		return BenchRow{
			Name:        name,
			Workers:     workers,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Digest:      fmt.Sprintf("%016x", digest),
		}, digest, nil
	}
	base, baseDigest, err := benchWorkload("exec/workload/serial", exec.SerialWorkers)
	if err != nil {
		return nil, err
	}
	base.Workers = 0
	base.SpeedupVsBaseline = 1
	rep.Rows = append(rep.Rows, base)
	for _, w := range execWorkerCounts {
		row, digest, err := benchWorkload(fmt.Sprintf("exec/workload/workers=%d", w), w)
		if err != nil {
			return nil, err
		}
		if digest != baseDigest {
			return nil, fmt.Errorf("benchexec: workload outputs diverged from serial at workers=%d (digest %016x vs %016x)", w, digest, baseDigest)
		}
		row.DigestMatchesBaseline = true
		if row.NsPerOp > 0 {
			row.SpeedupVsBaseline = float64(base.NsPerOp) / float64(row.NsPerOp)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

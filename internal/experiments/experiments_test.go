package experiments

import (
	"bytes"
	"strings"
	"testing"

	"miso/internal/multistore"
	"miso/internal/workload"
)

func small() Config { return Small() }

func TestFig3Shape(t *testing.T) {
	r, err := Fig3(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plans) < 3 {
		t.Fatalf("only %d plans enumerated", len(r.Plans))
	}
	// Plans must come out sorted by total time.
	for i := 1; i < len(r.Plans); i++ {
		if r.Plans[i].Total() < r.Plans[i-1].Total() {
			t.Fatalf("plans not sorted at %d", i)
		}
	}
	bestVsHV, bad := fig3Summary(r)
	if bestVsHV < 0 {
		t.Errorf("best plan worse than HV-only (%.2f)", bestVsHV)
	}
	// The paper's delineation: early-split plans are far worse than
	// HV-only because they transfer large working sets.
	if bad == 0 {
		t.Error("expected at least one bad (S) plan with a large transfer")
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing header")
	}
}

func TestSec32Shape(t *testing.T) {
	r, err := Sec32(small())
	if err != nil {
		t.Fatal(err)
	}
	hv := r.Totals[multistore.VariantHVOnly]
	miso := r.Totals[multistore.VariantMSMiso]
	if miso[1] >= hv[1] {
		t.Errorf("MS-MISO q2 (%.0f) not faster than HV-ONLY q2 (%.0f)", miso[1], hv[1])
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "Section 3.2") {
		t.Error("render missing header")
	}
}

func TestFig4AndFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	r, err := Fig4(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != len(Fig4Variants) {
		t.Fatalf("outcomes = %d", len(r.Outcomes))
	}
	if r.TTI(multistore.VariantMSMiso) >= r.TTI(multistore.VariantHVOnly) {
		t.Error("MS-MISO not faster than HV-ONLY")
	}
	// Each cumulative TTI series is nondecreasing and has 32 points.
	for _, o := range r.Outcomes {
		if len(o.CumTTI) != len(workload.SQLs()) {
			t.Fatalf("%s: %d cum points", o.Variant, len(o.CumTTI))
		}
		for i := 1; i < len(o.CumTTI); i++ {
			if o.CumTTI[i] < o.CumTTI[i-1] {
				t.Fatalf("%s: cumulative TTI decreased at %d", o.Variant, i)
			}
		}
	}
	// DW-ONLY's first query carries the ETL: its first cumulative point
	// dominates everyone's.
	dwOnly := r.Outcome(multistore.VariantDWOnly)
	hvOnly := r.Outcome(multistore.VariantHVOnly)
	if dwOnly.CumTTI[0] <= hvOnly.CumTTI[0] {
		t.Error("DW-ONLY first query should include the ETL cost")
	}

	f5, err := Fig5(small(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Distributions are CDFs: nondecreasing, ending at 100%.
	for i := range f5.Base.Outcomes {
		row := f5.DistributionRow(&f5.Base.Outcomes[i])
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1] {
				t.Fatalf("distribution not monotone for %s", f5.Base.Outcomes[i].Variant)
			}
		}
	}
	// DW-ONLY has the most sub-10s queries (its post-ETL execution is
	// the paper's top curve).
	dwRow := f5.DistributionRow(dwOnly)
	hvRow := f5.DistributionRow(hvOnly)
	if dwRow[0] <= hvRow[0] {
		t.Errorf("DW-ONLY sub-10s fraction (%.0f%%) should beat HV-ONLY (%.0f%%)", dwRow[0], hvRow[0])
	}
	var buf bytes.Buffer
	f5.WriteText(&buf)
	if !strings.Contains(buf.String(), "Figure 5(b)") {
		t.Error("render missing 5(b)")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x3")
	}
	names := make([]string, 0, 32)
	for _, q := range workload.Evolving() {
		names = append(names, q.Name)
	}
	r, err := Fig6(small(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Rows are ranked by decreasing DW fraction.
	for _, s := range r.Series {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].DWFrac > s.Rows[i-1].DWFrac {
				t.Fatalf("%s: rows not ranked", s.Label)
			}
		}
	}
	// MS-MISO at 2x utilizes DW more than MS-BASIC (fewer HV seconds per
	// DW second).
	basic := r.Series[0].SecondsInHVPerDWSecond
	miso2x := r.Series[2].SecondsInHVPerDWSecond
	if miso2x >= basic {
		t.Errorf("MS-MISO 2x HV-per-DW (%.1f) should be under MS-BASIC (%.1f)", miso2x, basic)
	}
}

func TestOrderSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x4")
	}
	r, err := OrderSensitivity(small())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range OrderSensVariants {
		tt := r.TTIs[v]
		if tt[0] <= 0 || tt[1] <= 0 {
			t.Fatalf("%s: empty TTIs %v", v, tt)
		}
	}
	// HV-OP's LRU retention has no window to confuse: order changes it
	// little. MS-MISO still beats HV-OP in both orders.
	miso := r.TTIs[multistore.VariantMSMiso]
	hvop := r.TTIs[multistore.VariantHVOp]
	if miso[0] >= hvop[0] || miso[1] >= hvop[1] {
		t.Errorf("MS-MISO (%v) should beat HV-OP (%v) in both orders", miso, hvop)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if !strings.Contains(buf.String(), "Order sensitivity") {
		t.Error("render missing header")
	}
}

func TestFig9AndTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload")
	}
	f9, err := Fig9(small())
	if err != nil {
		t.Fatal(err)
	}
	o := f9.Outcome
	if len(o.Samples) == 0 {
		t.Fatal("no samples")
	}
	if o.BgSlowdownPct <= 0 || o.BgSlowdownPct > 12 {
		t.Errorf("bg slowdown %.2f%% outside (0, 12%%]", o.BgSlowdownPct)
	}
	if o.PeakBgLatency <= o.Background.BaseLatency {
		t.Error("expected latency peaks during transfers")
	}

	t2, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row.DWSlowdownPct < 0 || row.DWSlowdownPct > 12 {
			t.Errorf("%s: DW slowdown %.1f%% out of range", row.Scenario, row.DWSlowdownPct)
		}
		if row.MSSlowdownPct < 0 || row.MSSlowdownPct > 12 {
			t.Errorf("%s: MS slowdown %.1f%% out of range", row.Scenario, row.MSSlowdownPct)
		}
	}
}

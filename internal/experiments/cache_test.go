package experiments

import (
	"os"
	"testing"
)

// TestBenchCacheSmall runs the cache soak at test scale and checks the
// acceptance gate: reuse must at least double throughput on the repeated
// workload while staying digest-identical to cold execution, and the
// serve drain-barrier must clear the cache.
func TestBenchCacheSmall(t *testing.T) {
	cc := DefaultCache(Small())
	cc.Sessions = 2
	cc.Rounds = 2
	r, err := BenchCache(cc)
	if err != nil {
		t.Fatal(err)
	}
	r.WriteText(os.Stderr)
	if !r.DigestsMatch {
		t.Fatal("reuse-enabled answers diverged from cold execution")
	}
	if r.HitRate <= 0 {
		t.Fatalf("no cache hits (hit rate %.2f)", r.HitRate)
	}
	if !r.ReorgHookFired || r.EntriesPostReorg != 0 {
		t.Fatalf("drain-barrier invalidation failed: %d -> %d entries",
			r.EntriesAfterSoak, r.EntriesPostReorg)
	}
	// The 2x gate is wall-clock dependent; at test scale under -race it
	// can wobble, so the hard test bound is conservative while the gate
	// itself is enforced by the misobench cache mode in CI.
	if r.SpeedupX < 1.0 {
		t.Fatalf("reuse made the soak slower: %.2fx", r.SpeedupX)
	}
}

// Cache soak: the cross-query reuse plane under a repeated concurrent
// workload. Two identically configured MS-MISO systems serve the same
// sessions×rounds submission schedule through the serving frontend — one
// with the reuse plane disabled (every query executes cold), one with it
// enabled (repeats hit the semantic result cache, concurrent identical
// queries piggyback on the leader's flight). The report records the
// throughput gain, hit rate, and dedup ratio, and the acceptance gate
// requires every reuse-served answer to be digest-identical to the cold
// system's. BenchCache writes the machine-readable report CI uploads as
// BENCH_cache.json.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"miso/internal/data"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/storage"
	"miso/internal/workload"
)

// CacheConfig parameterizes the cache soak.
type CacheConfig struct {
	Exp Config
	// Sessions is the number of concurrent client sessions; all sessions
	// walk the workload in the same order, so identical queries overlap
	// and the single-flight path is exercised alongside the cache.
	Sessions int
	// Rounds is how many full workload passes each session submits.
	Rounds int
	// Workers and Queue configure the serving frontend.
	Workers int
	Queue   int
	// CacheBytes caps the semantic result cache (0 = the plane default).
	CacheBytes int64
}

// DefaultCache returns the cache soak defaults.
func DefaultCache(cfg Config) CacheConfig {
	return CacheConfig{Exp: cfg, Sessions: 4, Rounds: 3, Workers: 4}
}

// CacheReport is the machine-readable cache soak report
// (BENCH_cache.json in CI).
type CacheReport struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	Scale    string `json:"scale"`
	Sessions int    `json:"sessions"`
	Rounds   int    `json:"rounds"`

	// Throughput: the same submission schedule against the reuse-disabled
	// and reuse-enabled backends.
	Submitted  int     `json:"submitted"`
	OffSeconds float64 `json:"off_seconds"`
	OnSeconds  float64 `json:"on_seconds"`
	OffQPS     float64 `json:"off_qps"`
	OnQPS      float64 `json:"on_qps"`
	SpeedupX   float64 `json:"speedup_x"`

	// Reuse-plane accounting from the enabled run.
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
	Piggybacked int     `json:"piggybacked"`
	SubplanHits int     `json:"subplan_hits"`
	HitRate     float64 `json:"hit_rate"`
	DedupRatio  float64 `json:"dedup_ratio"`

	// Correctness: every answer served by the reuse-enabled run (cached,
	// piggybacked, or cold) digests identically to the cold system's
	// answer for the same SQL.
	DigestsMatch bool `json:"digests_match"`

	// Drain-barrier trigger: after the timed soak, an explicit
	// serve.Reorganize with the reorg hook wired to InvalidateReuse must
	// leave the cache empty.
	ReorgHookFired   bool `json:"reorg_hook_fired"`
	EntriesAfterSoak int  `json:"entries_after_soak"`
	EntriesPostReorg int  `json:"entries_post_reorg"`
}

// Passed reports whether the soak met the acceptance gate: reuse wins at
// least 2x throughput on the repeated workload, the cache actually served
// hits, answers are digest-identical to cold execution, and the serve
// drain-barrier invalidation trigger works.
func (r *CacheReport) Passed() bool {
	return r.SpeedupX >= 2 && r.HitRate > 0 && r.DigestsMatch &&
		r.ReorgHookFired && r.EntriesPostReorg == 0
}

// WriteJSON renders the report as indented JSON.
func (r *CacheReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a human-readable summary.
func (r *CacheReport) WriteText(w io.Writer) {
	fprintf(w, "cache soak (%s/%s, %d CPU, scale=%s): %d sessions x %d rounds, %d queries\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.Scale, r.Sessions, r.Rounds, r.Submitted)
	fprintf(w, "  reuse off: %.2fs (%.0f q/s)   reuse on: %.2fs (%.0f q/s)   speedup %.2fx\n",
		r.OffSeconds, r.OffQPS, r.OnSeconds, r.OnQPS, r.SpeedupX)
	fprintf(w, "  cache: %d hits / %d misses (hit rate %.2f)   piggybacked %d (dedup %.2f)   subplan hits %d\n",
		r.Hits, r.Misses, r.HitRate, r.Piggybacked, r.DedupRatio, r.SubplanHits)
	fprintf(w, "  digests match cold execution: %v   reorg drain-barrier cleared cache: %v (%d -> %d entries)\n",
		r.DigestsMatch, r.ReorgHookFired, r.EntriesAfterSoak, r.EntriesPostReorg)
	if r.Passed() {
		fprintf(w, "  gate: PASS (speedup >= 2x, hit rate > 0, digest-identical)\n")
	} else {
		fprintf(w, "  gate: FAIL\n")
	}
}

// newCacheSystem builds an MS-MISO backend for the soak. Automatic
// reorganization is disabled on both sides so the two runs execute the
// same schedule against a stable design (the drain-barrier invalidation
// is exercised explicitly after the timed section).
func (cc CacheConfig) newCacheSystem(enabled bool) (*multistore.System, error) {
	c := cc.Exp
	cat, err := data.Generate(c.Data)
	if err != nil {
		return nil, err
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, c.BudgetMultiple, c.TransferBudget)
	cfg.Tuner.TuneWorkers = c.TuneWorkers
	cfg.ExecWorkers = c.ExecWorkers
	cfg.ReorgEvery = 0
	cfg.Reuse = multistore.ReuseConfig{Enabled: enabled, CacheBytes: cc.CacheBytes}
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, err
	}
	return sys, nil
}

// cacheSoakRun drives sessions×rounds workload passes through srv. Every
// result is folded into digests: the first answer seen for a SQL pins the
// expected data digest (schema + rows, name-independent) and every later
// answer — from either system — must match it.
func cacheSoakRun(srv *serve.Server, sessions, rounds int, mu *sync.Mutex, digests map[string]uint64, match *bool) (time.Duration, int, error) {
	sqls := workload.SQLs()
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		hardErr error
	)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, sql := range sqls {
					rep, err := srv.Do(context.Background(), sql)
					if err != nil {
						errMu.Lock()
						if hardErr == nil {
							hardErr = fmt.Errorf("experiments: cache soak session %d round %d query %d: %w", session, r, i, err)
						}
						errMu.Unlock()
						return
					}
					d := storage.ChecksumData(rep.Result)
					mu.Lock()
					if want, ok := digests[sql]; !ok {
						digests[sql] = d
					} else if want != d {
						*match = false
					}
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	return time.Since(start), sessions * rounds * len(sqls), hardErr
}

// BenchCache runs the cache soak: the reuse-disabled baseline, the
// reuse-enabled run against the same schedule, and the explicit
// drain-barrier invalidation through the serving frontend.
func BenchCache(cc CacheConfig) (*CacheReport, error) {
	scale := "paper"
	if cc.Exp.Data.NumTweets == data.SmallConfig().NumTweets {
		scale = "small"
	}
	rep := &CacheReport{
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
		Scale:    scale,
		Sessions: cc.Sessions,
		Rounds:   cc.Rounds,
	}
	var (
		mu      sync.Mutex
		digests = map[string]uint64{}
		match   = true
	)

	offSys, err := cc.newCacheSystem(false)
	if err != nil {
		return nil, err
	}
	offSrv := serve.NewServer(serve.Config{Workers: cc.Workers, QueueDepth: cc.Queue}, offSys)
	offDur, submitted, err := cacheSoakRun(offSrv, cc.Sessions, cc.Rounds, &mu, digests, &match)
	offSrv.Close()
	if err != nil {
		return nil, err
	}

	onSys, err := cc.newCacheSystem(true)
	if err != nil {
		return nil, err
	}
	onSrv := serve.NewServer(serve.Config{Workers: cc.Workers, QueueDepth: cc.Queue}, onSys)
	onSrv.SetReorgHook(onSys.InvalidateReuse)
	onDur, _, err := cacheSoakRun(onSrv, cc.Sessions, cc.Rounds, &mu, digests, &match)
	if err != nil {
		onSrv.Close()
		return nil, err
	}

	rep.Submitted = submitted
	rep.OffSeconds = offDur.Seconds()
	rep.OnSeconds = onDur.Seconds()
	if rep.OffSeconds > 0 {
		rep.OffQPS = float64(submitted) / rep.OffSeconds
	}
	if rep.OnSeconds > 0 {
		rep.OnQPS = float64(submitted) / rep.OnSeconds
	}
	if rep.OnSeconds > 0 && rep.OffSeconds > 0 {
		rep.SpeedupX = rep.OffSeconds / rep.OnSeconds
	}

	m := onSys.Metrics()
	rep.Hits = m.CacheHits
	rep.Misses = m.CacheMisses
	rep.Piggybacked = m.Piggybacked
	rep.SubplanHits = m.SubplanHits
	if hm := m.CacheHits + m.CacheMisses; hm > 0 {
		rep.HitRate = float64(m.CacheHits) / float64(hm)
	}
	rep.DedupRatio = float64(m.Piggybacked) / float64(submitted)
	rep.DigestsMatch = match

	// Drain-barrier trigger: an explicit reorganization through the
	// frontend runs the hook under the write gate with no query in
	// flight; the cache must come out empty.
	rep.EntriesAfterSoak = onSys.ReuseStats().Cache.Entries
	if err := onSrv.Reorganize(); err != nil {
		onSrv.Close()
		return nil, fmt.Errorf("experiments: cache soak reorganize: %w", err)
	}
	onSrv.Close()
	rep.EntriesPostReorg = onSys.ReuseStats().Cache.Entries
	rep.ReorgHookFired = rep.EntriesAfterSoak > 0 && rep.EntriesPostReorg == 0

	if err := onSys.CheckInvariants(); err != nil {
		return nil, err
	}
	if err := offSys.CheckInvariants(); err != nil {
		return nil, err
	}
	return rep, nil
}

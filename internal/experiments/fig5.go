package experiments

import (
	"io"
	"sort"
)

// Fig5Buckets are the paper's query execution time distribution buckets
// (upper bounds, seconds).
var Fig5Buckets = []float64{
	10, 100, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000,
	10000, 15000, 20000, 25000, 30000, 35000, 45000,
}

// Fig5Result derives both CDFs of Figure 5 from Figure 4's runs:
// (a) cumulative TTI as a function of queries completed, and
// (b) the per-query execution time distribution.
type Fig5Result struct {
	Base *Fig4Result
}

// Fig5 reuses a Fig 4 result (running it if absent).
func Fig5(cfg Config, base *Fig4Result) (*Fig5Result, error) {
	if base == nil {
		var err error
		base, err = Fig4(cfg)
		if err != nil {
			return nil, err
		}
	}
	return &Fig5Result{Base: base}, nil
}

// DistributionRow returns, for the variant, the percentage of queries whose
// execution time is under each Fig5Bucket bound.
func (r *Fig5Result) DistributionRow(o *VariantOutcome) []float64 {
	times := append([]float64(nil), o.QueryTimes...)
	sort.Float64s(times)
	out := make([]float64, len(Fig5Buckets))
	for i, b := range Fig5Buckets {
		n := sort.SearchFloat64s(times, b)
		out[i] = 100 * float64(n) / float64(len(times))
	}
	return out
}

// WriteText renders both CDFs.
func (r *Fig5Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 5(a): cumulative TTI (s) vs queries completed\n")
	fprintf(w, "%-8s", "query")
	for _, o := range r.Base.Outcomes {
		fprintf(w, " %12s", o.Variant)
	}
	fprintf(w, "\n")
	n := 0
	for _, o := range r.Base.Outcomes {
		if len(o.CumTTI) > n {
			n = len(o.CumTTI)
		}
	}
	for i := 0; i < n; i++ {
		fprintf(w, "%-8d", i+1)
		for _, o := range r.Base.Outcomes {
			if i < len(o.CumTTI) {
				fprintf(w, " %12.0f", o.CumTTI[i])
			} else {
				fprintf(w, " %12s", "-")
			}
		}
		fprintf(w, "\n")
	}

	fprintf(w, "\nFigure 5(b): %% of queries with execution time under bound\n")
	fprintf(w, "%-9s", "bound(s)")
	for _, o := range r.Base.Outcomes {
		fprintf(w, " %9s", o.Variant)
	}
	fprintf(w, "\n")
	rows := make([][]float64, len(r.Base.Outcomes))
	for i := range r.Base.Outcomes {
		rows[i] = r.DistributionRow(&r.Base.Outcomes[i])
	}
	for bi, b := range Fig5Buckets {
		fprintf(w, "<%-8.0f", b)
		for vi := range r.Base.Outcomes {
			fprintf(w, " %8.0f%%", rows[vi][bi])
		}
		fprintf(w, "\n")
	}
}

package experiments

import (
	"io"

	"miso/internal/multistore"
	"miso/internal/sim"
)

// Table2Row is one spare-capacity configuration's mutual impact.
type Table2Row struct {
	Scenario string
	// DWSlowdownPct is the slowdown of the DW reporting queries caused
	// by the multistore workload.
	DWSlowdownPct float64
	// MSSlowdownPct is the slowdown of the multistore workload caused by
	// the DW reporting queries.
	MSSlowdownPct float64
}

// Table2Result reproduces the paper's Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs MS-MISO once and replays its timeline against all four
// spare-capacity scenarios.
func Table2(cfg Config) (*Table2Result, error) {
	sys, err := cfg.runWorkload(multistore.VariantMSMiso)
	if err != nil {
		return nil, err
	}
	scenarios, err := measuredScenarios()
	if err != nil {
		return nil, err
	}
	events := BuildTimeline(sys)
	res := &Table2Result{}
	for _, bg := range scenarios {
		o := sim.Simulate(events, bg, 10)
		res.Rows = append(res.Rows, Table2Row{
			Scenario:      bg.Name,
			DWSlowdownPct: o.BgSlowdownPct,
			MSSlowdownPct: o.MsSlowdownPct,
		})
	}
	return res, nil
}

// WriteText renders Table 2.
func (r *Table2Result) WriteText(w io.Writer) {
	fprintf(w, "Table 2: impact of multistore workload on DW queries and vice-versa\n")
	fprintf(w, "%-14s %22s %22s\n", "spare capacity", "DW queries slowdown", "multistore slowdown")
	for _, row := range r.Rows {
		fprintf(w, "%-14s %21.1f%% %21.1f%%\n", row.Scenario, row.DWSlowdownPct, row.MSSlowdownPct)
	}
}

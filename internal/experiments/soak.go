package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

// SoakConfig parameterizes the concurrent-serving soak: Sessions client
// goroutines each submit Queries queries (cycling through the 32-query
// workload) against one serve.Server over a single system.
type SoakConfig struct {
	Config
	// Variant is the system under soak (MS-MISO by default).
	Variant multistore.Variant
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// Queries is the number of queries each session submits.
	Queries int
	// Workers / Queue / Timeout configure the serving frontend; zero
	// values take the serve package defaults (Timeout zero disables the
	// per-query deadline).
	Workers int
	Queue   int
	Timeout time.Duration
	// ReorgEvery forces an online reorganization (through the drain
	// barrier) after every n completed submissions across all sessions;
	// zero disables forced reorgs.
	ReorgEvery int
}

// DefaultSoak returns the acceptance-soak shape: 8 sessions replaying
// the full workload once each.
func DefaultSoak(base Config) SoakConfig {
	return SoakConfig{
		Config:   base,
		Variant:  multistore.VariantMSMiso,
		Sessions: 8,
		Queries:  len(workload.SQLs()),
		Workers:  4,
		Queue:    8,
		Timeout:  30 * time.Second,
	}
}

// SoakResult reports one soak run: wall-clock throughput and latency of
// the serving plane plus the backend's simulated TTI accounting.
type SoakResult struct {
	Cfg      SoakConfig
	Wall     time.Duration
	QPS      float64
	P50, P99 time.Duration
	Serve    serve.Metrics
	System   multistore.Metrics
	// InvariantErr is non-nil when the backend's catalog invariants did
	// not hold at exit.
	InvariantErr error
}

// Soak runs the concurrent-serving soak. Errors other than sheds and
// deadline/cancel abandons fail the run; the serving metrics' accounting
// invariant and the backend's catalog invariants are checked at exit.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Variant == "" {
		cfg.Variant = multistore.VariantMSMiso
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.Queries <= 0 {
		cfg.Queries = len(workload.SQLs())
	}
	sys, err := cfg.Config.newSystem(cfg.Variant)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.Queue,
		QueryTimeout: cfg.Timeout,
	}, sys)

	sqls := workload.SQLs()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		submitted int
		hardErr   error
	)
	start := time.Now()
	for s := 0; s < cfg.Sessions; s++ {
		wg.Add(1)
		go func(session int) {
			defer wg.Done()
			for i := 0; i < cfg.Queries; i++ {
				sql := sqls[(session+i)%len(sqls)]
				t0 := time.Now()
				_, err := srv.Do(context.Background(), sql)
				lat := time.Since(t0)
				mu.Lock()
				submitted++
				reorgDue := cfg.ReorgEvery > 0 && submitted%cfg.ReorgEvery == 0
				switch {
				case err == nil:
					latencies = append(latencies, lat)
				case errors.Is(err, serve.ErrShed),
					errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, context.Canceled),
					errors.Is(err, govern.ErrMemLimit),
					errors.Is(err, govern.ErrInternal):
					// Expected serving outcomes — sheds, deadline/cancel
					// abandons, memory-budget aborts, contained panics —
					// counted by the server.
				default:
					if hardErr == nil {
						hardErr = fmt.Errorf("experiments: soak session %d query %d: %w", session, i, err)
					}
				}
				mu.Unlock()
				if reorgDue {
					if err := srv.Reorganize(); err != nil {
						mu.Lock()
						if hardErr == nil {
							hardErr = fmt.Errorf("experiments: soak online reorg: %w", err)
						}
						mu.Unlock()
					}
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Close()
	if hardErr != nil {
		return nil, hardErr
	}

	m := srv.Metrics()
	if err := m.Check(); err != nil {
		return nil, err
	}
	res := &SoakResult{
		Cfg:          cfg,
		Wall:         wall,
		Serve:        m,
		System:       sys.Metrics(),
		InvariantErr: sys.CheckInvariants(),
	}
	if wall > 0 {
		res.QPS = float64(m.Completed) / wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.P50 = latencies[n/2]
		res.P99 = latencies[n*99/100]
	}
	return res, nil
}

// WriteText renders the soak report.
func (r *SoakResult) WriteText(w io.Writer) {
	m := r.Serve
	fprintf(w, "Serving soak: %d sessions x %d queries, %d workers, queue %d, %s (%s)\n",
		r.Cfg.Sessions, r.Cfg.Queries, r.Cfg.Workers, r.Cfg.Queue, r.Cfg.Variant, rateLabel(r.Cfg.FaultRate))
	fprintf(w, "wall %-10s throughput %.1f q/s   latency p50 %s  p99 %s\n",
		r.Wall.Round(time.Millisecond), r.QPS,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	fprintf(w, "submitted %d: completed %d, shed %d, timed out %d, canceled %d, mem-aborted %d, panics contained %d, failed %d\n",
		m.Submitted, m.Completed, m.Sheds, m.Timeouts, m.Canceled, m.Aborted, m.PanicsContained, m.Failed)
	fprintf(w, "breaker: %d trips, %d probes; degraded %d; reorgs %d (%d drain cancels)\n",
		m.BreakerTrips, m.BreakerProbes, m.Degraded, m.Reorgs, m.ReorgCancels)
	sm := r.System
	fprintf(w, "backend TTI %.1fs (hv %.1f, dw %.1f, xfer %.1f, tune %.1f, etl %.1f, recovery %.1f)\n",
		sm.TTI(), sm.HVExe, sm.DWExe, sm.Transfer, sm.Tune, sm.ETL, sm.Recovery)
	if r.InvariantErr != nil {
		fprintf(w, "INVARIANT VIOLATION: %v\n", r.InvariantErr)
	} else {
		fprintf(w, "catalog invariants held at exit\n")
	}
}

func rateLabel(rate float64) string {
	if rate <= 0 {
		return "no faults"
	}
	return fmt.Sprintf("%.0f%% faults", 100*rate)
}

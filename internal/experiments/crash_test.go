package experiments

import (
	"bytes"
	"strings"
	"testing"

	"miso/internal/workload"
)

// TestCrashSweepShape runs the full per-site crash sweep at small scale:
// every row must complete the workload, recover every death, and pass the
// clean-shutdown byte-identity check.
func TestCrashSweepShape(t *testing.T) {
	r, err := CrashSweep(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(crashCases) {
		t.Fatalf("%d rows, want %d", len(r.Points), len(crashCases))
	}
	totalCrashes := 0
	for _, p := range r.Points {
		if p.Completed != len(workload.SQLs()) {
			t.Errorf("%s: completed %d of %d queries", p.Site, p.Completed, len(workload.SQLs()))
		}
		if p.Recoveries != p.Crashes {
			t.Errorf("%s: %d crashes but %d recoveries", p.Site, p.Crashes, p.Recoveries)
		}
		if !p.CleanMatch {
			t.Errorf("%s: clean-shutdown recovery not byte-identical", p.Site)
		}
		if p.Crashes > 0 && p.Replayed == 0 {
			t.Errorf("%s: recovered %d times but replayed nothing", p.Site, p.Crashes)
		}
		totalCrashes += p.Crashes
		switch p.Site {
		case "view-corrupt":
			if p.Quarantined == 0 {
				t.Error("corruption row quarantined no views")
			}
		case "wal-write":
			if p.Crashes > 0 && p.TornBytes == 0 {
				t.Error("WAL-write crashes left no torn bytes")
			}
		}
	}
	if totalCrashes == 0 {
		t.Fatal("sweep crashed nothing; the harness tested no recovery path")
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "Crash-recovery sweep") || !strings.Contains(out, "view-corrupt") {
		t.Error("render missing header or rows")
	}
}

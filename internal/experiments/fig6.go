package experiments

import (
	"io"
	"sort"

	"miso/internal/multistore"
)

// Fig6Row is one query's store utilization.
type Fig6Row struct {
	QueryName string
	// HVFrac, TransferFrac, DWFrac are fractions of the query's total
	// execution time spent in each component.
	HVFrac, TransferFrac, DWFrac float64
	Total                        float64
}

// Fig6Series is one system's utilization profile with queries ranked by DW
// utilization (rank 1 = highest DW fraction), as in the paper's Figure 6.
type Fig6Series struct {
	Label string
	Rows  []Fig6Row
	// SecondsInHVPerDWSecond is the store-utilization summary the paper
	// quotes ("for every second spent in DW the queries spend N seconds
	// in HV"), over the 16 highest-DW-utilization queries.
	SecondsInHVPerDWSecond float64
	// AvgHVOpFrac is the mean fraction of plan operators executed in HV
	// (the paper's closing observation for this figure reports splits as
	// operator ratios, e.g. "2/3 of the operators in HV").
	AvgHVOpFrac float64
}

// Fig6Result compares MS-BASIC against MS-MISO at two budgets.
type Fig6Result struct {
	Series []Fig6Series
}

// Fig6 runs the three configurations of the paper's Figure 6:
// (a) MS-BASIC, (b) MS-MISO with 0.125x budgets, (c) MS-MISO with 2x.
func Fig6(cfg Config, names []string) (*Fig6Result, error) {
	type spec struct {
		label    string
		variant  multistore.Variant
		multiple float64
	}
	specs := []spec{
		{"MS-BASIC", multistore.VariantMSBasic, cfg.BudgetMultiple},
		{"MS-MISO 0.125x", multistore.VariantMSMiso, 0.125},
		{"MS-MISO 2x", multistore.VariantMSMiso, 2.0},
	}
	res := &Fig6Result{}
	for _, sp := range specs {
		c := cfg
		c.BudgetMultiple = sp.multiple
		sys, err := c.runWorkload(sp.variant)
		if err != nil {
			return nil, err
		}
		series := Fig6Series{Label: sp.label}
		var hvOps, allOps int
		for i, rep := range sys.Reports() {
			total := rep.Total()
			row := Fig6Row{QueryName: names[i], Total: total}
			if total > 0 {
				row.HVFrac = rep.HVSeconds / total
				row.TransferFrac = rep.TransferSeconds / total
				row.DWFrac = rep.DWSeconds / total
			}
			hvOps += rep.HVOps
			allOps += rep.HVOps + rep.DWOps
			series.Rows = append(series.Rows, row)
		}
		if allOps > 0 {
			series.AvgHVOpFrac = float64(hvOps) / float64(allOps)
		}
		sort.SliceStable(series.Rows, func(i, j int) bool {
			return series.Rows[i].DWFrac > series.Rows[j].DWFrac
		})
		var hv, dw float64
		top := series.Rows
		if len(top) > 16 {
			top = top[:16]
		}
		for _, r := range top {
			hv += r.HVFrac * r.Total
			dw += r.DWFrac * r.Total
		}
		if dw > 0 {
			series.SecondsInHVPerDWSecond = hv / dw
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// WriteText renders the ranked utilization profiles.
func (r *Fig6Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 6: per-query store utilization, ranked by DW fraction\n")
	for _, s := range r.Series {
		fprintf(w, "\n[%s]  (HV seconds per DW second over top-16: %.2f; %.0f%% of plan operators ran in HV)\n",
			s.Label, s.SecondsInHVPerDWSecond, 100*s.AvgHVOpFrac)
		fprintf(w, "%4s %-6s %6s %6s %6s %10s\n", "rank", "query", "HV%", "XFER%", "DW%", "total(s)")
		for i, row := range s.Rows {
			fprintf(w, "%4d %-6s %5.0f%% %5.0f%% %5.0f%% %10.0f\n",
				i+1, row.QueryName, 100*row.HVFrac, 100*row.TransferFrac,
				100*row.DWFrac, row.Total)
		}
	}
}

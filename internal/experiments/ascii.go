package experiments

import (
	"io"
	"strings"
)

// asciiStackedBars renders horizontal stacked bars (one per label) scaled
// to a fixed width — a terminal rendition of the paper's stacked TTI bars.
// segNames name the stack segments; each row's values align with them.
// Zero- and negative-valued segments are skipped.
func asciiStackedBars(w io.Writer, labels []string, rows [][]float64, segNames []string) {
	const width = 58
	glyphs := []byte{'#', '=', '~', '+', '.', '*'}
	var max float64
	for _, row := range rows {
		var sum float64
		for _, v := range row {
			if v > 0 {
				sum += v
			}
		}
		if sum > max {
			max = sum
		}
	}
	if max <= 0 {
		return
	}
	fprintf(w, "  legend:")
	for i, n := range segNames {
		fprintf(w, "  %c=%s", glyphs[i%len(glyphs)], n)
	}
	fprintf(w, "\n")
	for li, label := range labels {
		var sb strings.Builder
		var total float64
		for si, v := range rows[li] {
			if v <= 0 {
				continue
			}
			total += v
			n := int(v / max * width)
			sb.Write(bytesRepeat(glyphs[si%len(glyphs)], n))
		}
		fprintf(w, "  %-9s |%-*s| %.0f\n", label, width, sb.String(), total)
	}
}

// asciiColumns renders one row of proportional bars per series — a compact
// rendition of a grouped bar chart like the paper's budget sweep.
func asciiColumns(w io.Writer, xLabels []string, seriesNames []string, values [][]float64) {
	var max float64
	for _, row := range values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		return
	}
	for si, name := range seriesNames {
		// A proportional bar per x point.
		fprintf(w, "  %-9s", name)
		for _, v := range values[si] {
			n := int(v / max * 8)
			fprintf(w, " %8s", strings.Repeat("|", n+1))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "  %-9s", "")
	for _, x := range xLabels {
		fprintf(w, " %8s", x)
	}
	fprintf(w, "\n")
}

func bytesRepeat(b byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

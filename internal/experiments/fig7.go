package experiments

import (
	"io"

	"miso/internal/multistore"
)

// Fig7Variants is the tuning-technique lineup of the paper's Figure 7.
var Fig7Variants = []multistore.Variant{
	multistore.VariantMSBasic,
	multistore.VariantMSOff,
	multistore.VariantMSLru,
	multistore.VariantMSMiso,
	multistore.VariantMSOra,
}

// Fig7Result compares multistore tuning techniques under constrained
// budgets (0.125x storage, Bt as configured).
type Fig7Result struct {
	Outcomes []VariantOutcome
}

// Fig7 runs the tuning comparison. The paper uses Bh=Bd=0.125x with
// Bt=10GB, "a more constrained environment".
func Fig7(cfg Config) (*Fig7Result, error) {
	c := cfg
	c.BudgetMultiple = 0.125
	res := &Fig7Result{}
	for _, v := range Fig7Variants {
		sys, err := c.runWorkload(v)
		if err != nil {
			return nil, err
		}
		out := VariantOutcome{
			Variant: v,
			Metrics: sys.Metrics(),
			CumTTI:  cumulativeTTI(sys),
			Reports: sys.Reports(),
		}
		for _, r := range sys.Reports() {
			out.QueryTimes = append(out.QueryTimes, r.Total())
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// TTI returns the named variant's TTI, or 0.
func (r *Fig7Result) TTI(v multistore.Variant) float64 {
	for _, o := range r.Outcomes {
		if o.Variant == v {
			return o.Metrics.TTI()
		}
	}
	return 0
}

// WriteText renders the comparison.
func (r *Fig7Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 7: TTI comparison of multistore tuning techniques (0.125x budgets)\n")
	fprintf(w, "%-9s %10s %10s %10s %10s %12s\n",
		"variant", "DW-EXE", "TRANSFER", "TUNE", "HV-EXE", "TTI")
	for _, o := range r.Outcomes {
		m := o.Metrics
		fprintf(w, "%-9s %10.0f %10.0f %10.0f %10.0f %12.0f\n",
			o.Variant, m.DWExe, m.Transfer, m.Tune, m.HVExe, m.TTI())
	}
	labels := make([]string, len(r.Outcomes))
	rows := make([][]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		labels[i] = string(o.Variant)
		m := o.Metrics
		rows[i] = []float64{m.DWExe, m.Transfer, m.Tune, m.HVExe}
	}
	asciiStackedBars(w, labels, rows, []string{"DW-EXE", "TRANSFER", "TUNE", "HV-EXE"})
	miso := r.TTI(multistore.VariantMSMiso)
	if miso > 0 {
		fprintf(w, "MS-MISO improvement: %.0f%% over MS-OFF, %.0f%% over MS-LRU; %.0f%% behind MS-ORA\n",
			100*(r.TTI(multistore.VariantMSOff)-miso)/r.TTI(multistore.VariantMSOff),
			100*(r.TTI(multistore.VariantMSLru)-miso)/r.TTI(multistore.VariantMSLru),
			100*(miso-r.TTI(multistore.VariantMSOra))/miso)
	}
}

// Benchmark pipeline: reproducible measurements of the tuner's what-if
// costing, the knapsack DP, and the serving plane, written as a
// machine-readable JSON report (BENCH_tuner.json in CI). The tuner rows
// record the BaselineCosting path first, so every speedup this repo
// claims is measured against an in-repo baseline rather than a number in
// a commit message.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"miso/internal/core"
	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/multistore"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/workload"
)

// BenchRow is one benchmark measurement.
type BenchRow struct {
	// Name identifies the benchmark (e.g. "tuner/workers=4").
	Name string `json:"name"`
	// Workers is the row's worker-pool size (tuner what-if pool for tuner
	// rows, exec engine pool for exec rows); 0 for rows without one.
	Workers int `json:"workers,omitempty"`
	// Iterations is how many times the measured op ran.
	Iterations int `json:"iterations"`
	// NsPerOp / AllocsPerOp / BytesPerOp are the standard Go benchmark
	// metrics.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// CacheHitRate is the what-if cost cache's hit fraction over one
	// Tune call (tuner rows only; the baseline row's legacy cache is not
	// instrumented).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// SpeedupVsBaseline is baseline ns/op divided by this row's ns/op
	// (tuner and exec rows).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// Digest is the combined FNV-64a digest of the measured run's output
	// tables, as hex (exec rows only): equal digests mean byte-identical
	// outputs.
	Digest string `json:"digest,omitempty"`
	// DigestMatchesBaseline reports that this row's outputs were
	// byte-identical to its serial baseline's (exec rows at workers >= 1).
	DigestMatchesBaseline bool `json:"digest_matches_baseline,omitempty"`
}

// BenchReport is the machine-readable benchmark report.
type BenchReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	Scale  string `json:"scale"`
	// CandidateViews is the size of the tuner rows' view universe.
	CandidateViews int        `json:"candidate_views"`
	Rows           []BenchRow `json:"rows"`
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a plain-text table.
func (r *BenchReport) WriteText(w io.Writer) {
	fprintf(w, "benchmark pipeline (%s/%s, %d CPU, scale=%s, %d candidate views)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.Scale, r.CandidateViews)
	fprintf(w, "%-24s %6s %12s %12s %12s %9s %9s\n",
		"name", "iters", "ns/op", "B/op", "allocs/op", "hit-rate", "speedup")
	for _, row := range r.Rows {
		hit, sp := "-", "-"
		if row.CacheHitRate > 0 {
			hit = fmt.Sprintf("%.3f", row.CacheHitRate)
		}
		if row.SpeedupVsBaseline > 0 {
			sp = fmt.Sprintf("%.2fx", row.SpeedupVsBaseline)
		}
		fprintf(w, "%-24s %6d %12d %12d %12d %9s %9s\n",
			row.Name, row.Iterations, row.NsPerOp, row.BytesPerOp,
			row.AllocsPerOp, hit, sp)
	}
}

// tunerFixture is everything one Tune call needs, built once per report.
type tunerFixture struct {
	cfg core.Config
	opt *optimizer.Optimizer
	win *history.Window
	cur optimizer.Design
}

// newTunerFixture executes a 6-query evolving window in HV so its
// opportunistic views form a realistic candidate universe (33 views at
// small scale — comfortably past the 12-view floor the acceptance bench
// requires), mirroring core's BenchmarkTunerReorganization setup.
func newTunerFixture(dcfg data.Config) (*tunerFixture, error) {
	cat, err := data.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	builder := logical.NewBuilder(cat)
	win := history.NewWindow(6, 3, 0.5)
	for i, q := range workload.Evolving()[:6] {
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			return nil, err
		}
		if _, err := h.Execute(plan, i); err != nil {
			return nil, err
		}
		win.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}
	cfg := core.DefaultConfig()
	base := cat.TotalLogicalBytes()
	cfg.Bh, cfg.Bd, cfg.Bt = 2*base, 2*base/10, 10<<30
	return &tunerFixture{
		cfg: cfg, opt: opt, win: win,
		cur: optimizer.Design{HV: h.Views, DW: d.Views},
	}, nil
}

// benchTune measures one full Tune call under the given config and
// returns the row plus the cache hit rate of a single representative run.
func (f *tunerFixture) benchTune(name string, cfg core.Config) (BenchRow, error) {
	var tuneErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh tuner per iteration: the cost cache is part of
			// the work being measured.
			tuner := core.NewTuner(cfg, f.opt)
			if _, err := tuner.Tune(f.cur, f.win); err != nil {
				tuneErr = err
				b.FailNow()
			}
		}
	})
	if tuneErr != nil {
		return BenchRow{}, tuneErr
	}
	row := BenchRow{
		Name:        name,
		Workers:     cfg.TuneWorkers,
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if !cfg.BaselineCosting {
		tuner := core.NewTuner(cfg, f.opt)
		if _, err := tuner.Tune(f.cur, f.win); err != nil {
			return BenchRow{}, err
		}
		if hits, misses := tuner.CacheStats(); hits+misses > 0 {
			row.CacheHitRate = float64(hits) / float64(hits+misses)
		}
	}
	return row, nil
}

// Bench runs the benchmark pipeline: the tuner's reorganization decision
// on the BaselineCosting path and at worker counts 1, 2, 4 and 8, the
// knapsack DP in isolation, and a short concurrent-serving soak.
func Bench(c Config) (*BenchReport, error) {
	scale := "paper"
	if c.Data.NumTweets == data.SmallConfig().NumTweets {
		scale = "small"
	}
	rep := &BenchReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Scale:  scale,
	}

	f, err := newTunerFixture(c.Data)
	if err != nil {
		return nil, err
	}
	rep.CandidateViews = f.cur.HV.Len()

	base := f.cfg
	base.BaselineCosting = true
	baseRow, err := f.benchTune("tuner/baseline", base)
	if err != nil {
		return nil, err
	}
	baseRow.SpeedupVsBaseline = 1
	rep.Rows = append(rep.Rows, baseRow)
	for _, w := range []int{1, 2, 4, 8} {
		cfg := f.cfg
		cfg.TuneWorkers = w
		row, err := f.benchTune(fmt.Sprintf("tuner/workers=%d", w), cfg)
		if err != nil {
			return nil, err
		}
		if row.NsPerOp > 0 {
			row.SpeedupVsBaseline = float64(baseRow.NsPerOp) / float64(row.NsPerOp)
		}
		rep.Rows = append(rep.Rows, row)
	}

	kn := testing.Benchmark(func(b *testing.B) {
		gb := int64(1) << 30
		items := make([]*core.Item, 48)
		for i := range items {
			size := int64(i%13+1) * gb / 4
			items[i] = &core.Item{Size: size, MoveToDW: size, BnDW: float64(100 + i*7%91)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.PackKnapsackDW(items, 400*gb, 10*gb, 0)
		}
	})
	rep.Rows = append(rep.Rows, BenchRow{
		Name:        "knapsack/48items",
		Iterations:  kn.N,
		NsPerOp:     kn.NsPerOp(),
		AllocsPerOp: kn.AllocsPerOp(),
		BytesPerOp:  kn.AllocedBytesPerOp(),
	})

	// One short serving soak: ns/op is wall clock per completed query.
	sc := DefaultSoak(c)
	sc.Variant = multistore.VariantMSMiso
	sc.Sessions = 4
	sc.Queries = 8
	sc.Timeout = 0
	start := time.Now()
	sr, err := Soak(sc)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	done := sr.Serve.Completed
	if done == 0 {
		done = 1
	}
	rep.Rows = append(rep.Rows, BenchRow{
		Name:       "serve/soak4x8",
		Workers:    sc.Workers,
		Iterations: done,
		NsPerOp:    wall.Nanoseconds() / int64(done),
	})
	return rep, nil
}

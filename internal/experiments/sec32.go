package experiments

import (
	"io"

	"miso/internal/data"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// Sec32Result is the two-query motivating experiment of Section 3.2:
// queries q1=A1v2 and q2=A1v3 (consecutive versions from the same analyst)
// under HV-ONLY, MS-BASIC, and MS-MISO with a reorganization between them.
type Sec32Result struct {
	// Totals[variant] = [q1 time, q2 time, tune time].
	Totals map[multistore.Variant][3]float64
}

// Sec32 runs the motivation experiment.
func Sec32(cfg Config) (*Sec32Result, error) {
	q1, _ := workload.ByName("A1v2")
	q2, _ := workload.ByName("A1v3")
	res := &Sec32Result{Totals: map[multistore.Variant][3]float64{}}
	for _, v := range []multistore.Variant{
		multistore.VariantHVOnly, multistore.VariantMSBasic, multistore.VariantMSMiso,
	} {
		cat, err := data.Generate(cfg.Data)
		if err != nil {
			return nil, err
		}
		mcfg := multistore.DefaultConfig(v)
		mcfg.SetBudgets(cat, cfg.BudgetMultiple, cfg.TransferBudget)
		// Trigger the reorganization phase between q1 and q2, as the
		// paper does for this experiment.
		mcfg.ReorgEvery = 1
		sys := multistore.New(mcfg, cat)
		r1, err := sys.Run(q1.SQL)
		if err != nil {
			return nil, err
		}
		r2, err := sys.Run(q2.SQL)
		if err != nil {
			return nil, err
		}
		res.Totals[v] = [3]float64{r1.Total(), r2.Total(), sys.Metrics().Tune}
	}
	return res, nil
}

// WriteText renders the stacked two-query comparison.
func (r *Sec32Result) WriteText(w io.Writer) {
	fprintf(w, "Section 3.2: q1 (A1v2) then q2 (A1v3) with a reorganization between\n")
	fprintf(w, "%-9s %10s %10s %10s %12s\n", "variant", "q1(s)", "q2(s)", "tune(s)", "total(s)")
	for _, v := range []multistore.Variant{
		multistore.VariantHVOnly, multistore.VariantMSBasic, multistore.VariantMSMiso,
	} {
		t := r.Totals[v]
		fprintf(w, "%-9s %10.0f %10.0f %10.0f %12.0f\n", v, t[0], t[1], t[2], t[0]+t[1]+t[2])
	}
	hv := r.Totals[multistore.VariantHVOnly]
	miso := r.Totals[multistore.VariantMSMiso]
	if sum := miso[0] + miso[1] + miso[2]; sum > 0 {
		fprintf(w, "MS-MISO speedup over HV-ONLY: %.1fx\n", (hv[0]+hv[1])/sum)
	}
}

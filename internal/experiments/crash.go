package experiments

import (
	"errors"
	"fmt"
	"io"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/storage"
	"miso/internal/workload"
)

// The crash-chaos sweep (durability extension, not in the paper): the
// 32-query workload replayed with the durability plane on and one crash or
// corruption site armed per row. Every simulated process death is survived
// by multistore.Recover — restore the last checkpoint, replay the WAL,
// roll back in-flight work, quarantine corrupt or stale views — and the
// query that died is resubmitted. Each row finishes with a clean-shutdown
// check: a final checkpoint, a recovery from it, and a StateDigest
// comparison that must find the twin byte-identical to the live system.

// CrashPoint is one armed-site row of the sweep.
type CrashPoint struct {
	// Site is the armed injection site and Rate its per-draw probability.
	Site string
	Rate float64
	// Crashes counts process deaths, Recoveries successful Recover calls
	// (equal when the run completes), Replayed the WAL records applied
	// across them, and TornBytes the unreadable WAL tails discarded.
	Crashes    int
	Recoveries int
	Replayed   int
	TornBytes  int
	// Quarantined counts views removed during recovery (corrupt payloads
	// plus stale generations); RolledBack counts in-flight reorgs and
	// transfers undone.
	Quarantined int
	RolledBack  int
	// RecoverySeconds is the simulated recovery time charged across all
	// recoveries; TTI the final run total; Completed the queries served.
	RecoverySeconds float64
	TTI             float64
	Completed       int
	// CleanMatch reports the clean-shutdown byte-identity check.
	CleanMatch bool
}

// CrashResult is the full sweep.
type CrashResult struct {
	Seed   int64
	Points []CrashPoint
}

// crashCheckpointEvery is the sweep's checkpoint cadence: frequent enough
// that replay tails stay short, sparse enough that replay actually happens.
const crashCheckpointEvery = 4

// maxCrashes bounds a single run; the workload is 32 queries, so dozens of
// deaths means the harness is not making progress.
const maxCrashes = 64

// crashStats aggregates the recovery telemetry of one crash-harness run.
type crashStats struct {
	crashes     int
	recoveries  int
	replayed    int
	torn        int
	quarantined int
	rolledBack  int
	seconds     float64
}

// crashConfig builds the multistore config for a crash-harness run: paper
// budgets, the given fault profile, and the durability plane enabled.
func (c Config) crashConfig(v multistore.Variant, p faults.Profile, seed int64) (multistore.Config, *storage.Catalog, error) {
	cat, err := data.Generate(c.Data)
	if err != nil {
		return multistore.Config{}, nil, err
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, c.BudgetMultiple, c.TransferBudget)
	cfg.Faults = p
	cfg.FaultSeed = seed
	cfg.CheckpointEvery = crashCheckpointEvery
	return cfg, cat, nil
}

// runCrashWorkload drives the full workload through the crash harness: on
// faults.ErrCrash the dead system is discarded, Recover rebuilds its state
// from the last checkpoint and the WAL, invariants are re-checked, and the
// killed query is resubmitted. Each recovery perturbs the seed so a
// deterministic injector cannot replay the exact crash forever.
func runCrashWorkload(cfg multistore.Config, cat *storage.Catalog) (*multistore.System, *crashStats, error) {
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, nil, err
	}
	st := &crashStats{}
	sqls := workload.SQLs()
	for i := 0; i < len(sqls); {
		_, err := sys.Run(sqls[i])
		if err == nil {
			i = len(sys.Reports())
			continue
		}
		if !errors.Is(err, faults.ErrCrash) {
			return nil, nil, err
		}
		st.crashes++
		if st.crashes > maxCrashes {
			return nil, nil, fmt.Errorf("experiments: crash harness exceeded %d deaths at query %d", maxCrashes, i)
		}
		mgr := sys.Durability()
		if mgr == nil {
			return nil, nil, fmt.Errorf("experiments: crash harness requires CheckpointEvery > 0")
		}
		rcfg := cfg
		rcfg.FaultSeed = cfg.FaultSeed + int64(st.crashes)
		recovered, rep, rerr := multistore.Recover(rcfg, sys.Catalog(), mgr.Latest(), mgr.WAL())
		if rerr != nil {
			return nil, nil, fmt.Errorf("experiments: recovering from crash %d: %w", st.crashes, rerr)
		}
		if err := recovered.CheckInvariants(); err != nil {
			return nil, nil, fmt.Errorf("experiments: recovered system after crash %d: %w", st.crashes, err)
		}
		st.recoveries++
		st.replayed += rep.ReplayedRecords
		st.torn += rep.TornBytes
		st.quarantined += len(rep.Quarantined)
		st.rolledBack += rep.RolledBackReorgs + rep.RolledBackTransfers
		st.seconds += rep.Seconds
		sys = recovered
		i = len(sys.Reports())
	}
	return sys, st, nil
}

// crashCases arms one site per row. View corruption does not kill the
// process by itself, so its row keeps a serve-crash rate alongside —
// recovery is what replays the corrupted durable copies and must
// quarantine them.
var crashCases = []struct {
	site  faults.Site
	rate  float64
	extra faults.Site
	xrate float64
}{
	{site: faults.SiteCrashServe, rate: 0.10},
	{site: faults.SiteCrashTransfer, rate: 0.05},
	{site: faults.SiteCrashReorg, rate: 0.25},
	{site: faults.SiteWALWrite, rate: 0.01},
	{site: faults.SiteViewCorrupt, rate: 0.20, extra: faults.SiteCrashServe, xrate: 0.10},
}

// CrashSweep runs the per-site crash-recovery sweep on MS-MISO.
func CrashSweep(cfg Config) (*CrashResult, error) {
	const seed = 42
	res := &CrashResult{Seed: seed}
	for _, cse := range crashCases {
		p := faults.Profile{}.With(cse.site, cse.rate)
		if cse.xrate > 0 {
			p = p.With(cse.extra, cse.xrate)
		}
		mcfg, cat, err := cfg.crashConfig(multistore.VariantMSMiso, p, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: crash sweep %s: %w", cse.site, err)
		}
		sys, st, err := runCrashWorkload(mcfg, cat)
		if err != nil {
			return nil, fmt.Errorf("experiments: crash sweep %s: %w", cse.site, err)
		}
		match, err := cleanShutdownMatches(mcfg, sys)
		if err != nil {
			return nil, fmt.Errorf("experiments: crash sweep %s clean shutdown: %w", cse.site, err)
		}
		m := sys.Metrics()
		res.Points = append(res.Points, CrashPoint{
			Site:            cse.site.String(),
			Rate:            cse.rate,
			Crashes:         st.crashes,
			Recoveries:      st.recoveries,
			Replayed:        st.replayed,
			TornBytes:       st.torn,
			Quarantined:     st.quarantined,
			RolledBack:      st.rolledBack,
			RecoverySeconds: st.seconds,
			TTI:             m.TTI(),
			Completed:       len(sys.Reports()),
			CleanMatch:      match,
		})
	}
	return res, nil
}

// cleanShutdownMatches checkpoints the live system, recovers a twin from
// that checkpoint, and compares canonical state digests: with nothing to
// replay, recovery must reproduce the live state byte-identically.
func cleanShutdownMatches(cfg multistore.Config, sys *multistore.System) (bool, error) {
	ckpt := sys.Checkpoint()
	if ckpt == nil {
		return false, fmt.Errorf("durability disabled")
	}
	twin, rep, err := multistore.Recover(cfg, sys.Catalog(), ckpt, sys.Durability().WAL())
	if err != nil {
		return false, err
	}
	if rep.ReplayedRecords != 0 || rep.TornBytes != 0 {
		return false, fmt.Errorf("clean shutdown replayed %d records, tore %d bytes", rep.ReplayedRecords, rep.TornBytes)
	}
	return twin.StateDigest() == sys.StateDigest(), nil
}

// WriteText renders the sweep.
func (r *CrashResult) WriteText(w io.Writer) {
	fprintf(w, "Crash-recovery sweep: per-site process kills on MS-MISO (seed %d, checkpoint every %d ops)\n",
		r.Seed, crashCheckpointEvery)
	fprintf(w, "%-15s %5s %7s %6s %8s %6s %6s %7s %10s %12s %6s %6s\n",
		"site", "rate", "crashes", "recov", "replayed", "torn", "quarn", "rolled", "recov(s)", "TTI(s)", "done", "clean")
	for _, p := range r.Points {
		fprintf(w, "%-15s %4.0f%% %7d %6d %8d %6d %6d %7d %10.1f %12.1f %6d %6v\n",
			p.Site, 100*p.Rate, p.Crashes, p.Recoveries, p.Replayed, p.TornBytes,
			p.Quarantined, p.RolledBack, p.RecoverySeconds, p.TTI, p.Completed, p.CleanMatch)
	}
	fprintf(w, "every kill recovered from checkpoint+WAL, the dead query resubmitted, and\n")
	fprintf(w, "invariants re-checked; 'clean' is the clean-shutdown byte-identity check\n")
	fprintf(w, "(checkpoint -> recover -> equal state digests)\n")
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the split-plan profile (Fig 3), the two-query
// motivation (Section 3.2), the five-variant TTI comparison (Fig 4), the
// TTI and query-time CDFs (Fig 5), store utilization (Fig 6), the tuning
// technique comparison (Fig 7), the storage budget sweep (Fig 8), the
// spare-capacity timelines (Fig 9), and the mutual-impact table (Table 2).
// Each experiment returns structured results and renders a plain-text
// table; absolute numbers are simulated seconds, and the comparison targets
// are the paper's shapes (who wins, by what factor, where crossovers fall).
package experiments

import (
	"fmt"
	"io"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/optimizer"
	"miso/internal/workload"
)

func emptyDesign() optimizer.Design { return optimizer.EmptyDesign() }

// Config parameterizes an experiment run.
type Config struct {
	// Data is the dataset configuration; DefaultConfig is paper scale.
	Data data.Config
	// BudgetMultiple is the view storage budget as a multiple of each
	// store's base size (2.0 in the main experiments).
	BudgetMultiple float64
	// TransferBudget is Bt in bytes (10 GB in the paper; calibrated to
	// this workload's view-size distribution, see EXPERIMENTS.md).
	TransferBudget int64
	// FaultRate applies a uniform fault-injection profile across all
	// sites; zero (the default) leaves the fault plane disabled.
	FaultRate float64
	// FaultSeed seeds the injector's deterministic RNG.
	FaultSeed int64
	// TuneWorkers bounds the tuner's what-if worker pool (core.Config.
	// TuneWorkers); <= 1 keeps costing serial. Designs are identical at
	// any worker count, only Tune wall-clock changes.
	TuneWorkers int
	// ExecWorkers selects both stores' execution engine (multistore.
	// Config.ExecWorkers / exec.Env.Workers semantics): 0 is the morsel
	// engine at GOMAXPROCS, n > 0 bounds its pool, exec.SerialWorkers is
	// the legacy serial engine. Results are byte-identical at every
	// setting.
	ExecWorkers int
}

// Default returns the paper's main configuration.
func Default() Config {
	return Config{
		Data:           data.DefaultConfig(),
		BudgetMultiple: 2.0,
		TransferBudget: 10 << 30,
	}
}

// Small returns a quick configuration for tests.
func Small() Config {
	return Config{
		Data:           data.SmallConfig(),
		BudgetMultiple: 2.0,
		TransferBudget: 10 << 30,
	}
}

// newSystem builds a system for the variant under this configuration.
func (c Config) newSystem(v multistore.Variant) (*multistore.System, error) {
	cat, err := data.Generate(c.Data)
	if err != nil {
		return nil, err
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, c.BudgetMultiple, c.TransferBudget)
	cfg.Faults = faults.Uniform(c.FaultRate)
	cfg.FaultSeed = c.FaultSeed
	cfg.Tuner.TuneWorkers = c.TuneWorkers
	cfg.ExecWorkers = c.ExecWorkers
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, err
	}
	return sys, nil
}

// runWorkload executes the full 32-query workload on a fresh system.
func (c Config) runWorkload(v multistore.Variant) (*multistore.System, error) {
	sys, err := c.newSystem(v)
	if err != nil {
		return nil, err
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			return nil, fmt.Errorf("experiments: %s query %d (%s): %w",
				v, i, workload.Evolving()[i].Name, err)
		}
	}
	return sys, nil
}

// cumulativeTTI reconstructs the per-query cumulative TTI series: ETL is
// paid before the first query, each reorganization before the query it
// precedes, then the query's own execution time.
func cumulativeTTI(sys *multistore.System) []float64 {
	reorgAt := map[int]float64{}
	for _, r := range sys.ReorgLog() {
		reorgAt[r.BeforeSeq] += r.Seconds
	}
	m := sys.Metrics()
	cum := m.ETL
	out := make([]float64, 0, len(sys.Reports()))
	for _, rep := range sys.Reports() {
		cum += reorgAt[rep.Seq]
		cum += rep.Total()
		out = append(out, cum)
	}
	return out
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

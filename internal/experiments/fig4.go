package experiments

import (
	"io"

	"miso/internal/multistore"
)

// VariantOutcome is one system's full-workload result.
type VariantOutcome struct {
	Variant multistore.Variant
	Metrics multistore.Metrics
	// CumTTI is the cumulative TTI after each completed query (Fig 5a).
	CumTTI []float64
	// QueryTimes are the per-query execution times (Fig 5b).
	QueryTimes []float64
	// Reports are the raw per-query reports (Fig 6).
	Reports []*multistore.QueryReport
}

// Fig4Result compares the five system variants of Figure 4; the same runs
// feed the CDFs of Figure 5.
type Fig4Result struct {
	Outcomes []VariantOutcome
}

// Fig4Variants is the lineup of the paper's Figure 4.
var Fig4Variants = []multistore.Variant{
	multistore.VariantHVOnly,
	multistore.VariantDWOnly,
	multistore.VariantMSBasic,
	multistore.VariantHVOp,
	multistore.VariantMSMiso,
}

// Fig4 runs the full workload on each variant.
func Fig4(cfg Config) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, v := range Fig4Variants {
		sys, err := cfg.runWorkload(v)
		if err != nil {
			return nil, err
		}
		out := VariantOutcome{
			Variant: v,
			Metrics: sys.Metrics(),
			CumTTI:  cumulativeTTI(sys),
			Reports: sys.Reports(),
		}
		for _, r := range sys.Reports() {
			out.QueryTimes = append(out.QueryTimes, r.Total())
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// TTI returns the named variant's total TTI, or 0.
func (r *Fig4Result) TTI(v multistore.Variant) float64 {
	for _, o := range r.Outcomes {
		if o.Variant == v {
			return o.Metrics.TTI()
		}
	}
	return 0
}

// Outcome returns the named variant's outcome, or nil.
func (r *Fig4Result) Outcome(v multistore.Variant) *VariantOutcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].Variant == v {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// WriteText renders the Figure 4 stacked-bar data.
func (r *Fig4Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 4: TTI for 5 system variants (simulated seconds)\n")
	fprintf(w, "%-9s %10s %10s %10s %10s %10s %12s\n",
		"variant", "DW-EXE", "TRANSFER", "TUNE", "HV-EXE", "ETL", "TTI")
	for _, o := range r.Outcomes {
		m := o.Metrics
		fprintf(w, "%-9s %10.0f %10.0f %10.0f %10.0f %10.0f %12.0f\n",
			o.Variant, m.DWExe, m.Transfer, m.Tune, m.HVExe, m.ETL, m.TTI())
	}
	base := r.TTI(multistore.VariantHVOnly)
	if base > 0 {
		fprintf(w, "speedup vs HV-ONLY:")
		for _, o := range r.Outcomes {
			fprintf(w, "  %s %.2fx", o.Variant, base/o.Metrics.TTI())
		}
		fprintf(w, "\n")
	}
	labels := make([]string, len(r.Outcomes))
	rows := make([][]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		labels[i] = string(o.Variant)
		m := o.Metrics
		rows[i] = []float64{m.DWExe, m.Transfer, m.Tune, m.HVExe, m.ETL}
	}
	asciiStackedBars(w, labels, rows, []string{"DW-EXE", "TRANSFER", "TUNE", "HV-EXE", "ETL"})
}

package experiments

import (
	"fmt"
	"io"

	"miso/internal/multistore"
)

// Fig8Multiples is the storage budget sweep of the paper's Figure 8.
var Fig8Multiples = []float64{0.125, 0.5, 1.0, 2.0, 4.0}

// Fig8Variants are the tuning methods compared across budgets.
var Fig8Variants = []multistore.Variant{
	multistore.VariantMSLru,
	multistore.VariantMSOff,
	multistore.VariantMSMiso,
}

// Fig8Result is TTI as a function of view storage budget for each method.
type Fig8Result struct {
	Multiples []float64
	// TTIs[variant][i] is the TTI at Multiples[i].
	TTIs map[multistore.Variant][]float64
}

// Fig8 sweeps the view storage budgets with Bt held constant.
func Fig8(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{
		Multiples: Fig8Multiples,
		TTIs:      map[multistore.Variant][]float64{},
	}
	for _, v := range Fig8Variants {
		for _, m := range Fig8Multiples {
			c := cfg
			c.BudgetMultiple = m
			sys, err := c.runWorkload(v)
			if err != nil {
				return nil, err
			}
			res.TTIs[v] = append(res.TTIs[v], sys.Metrics().TTI())
		}
	}
	return res, nil
}

// WriteText renders the sweep.
func (r *Fig8Result) WriteText(w io.Writer) {
	fprintf(w, "Figure 8: TTI (s) vs view storage budget (Bt fixed)\n")
	fprintf(w, "%-9s", "budget")
	for _, m := range r.Multiples {
		fprintf(w, " %9.3fx", m)
	}
	fprintf(w, "\n")
	for _, v := range Fig8Variants {
		fprintf(w, "%-9s", v)
		for _, tti := range r.TTIs[v] {
			fprintf(w, " %10.0f", tti)
		}
		fprintf(w, "\n")
	}
	xs := make([]string, len(r.Multiples))
	for i, m := range r.Multiples {
		xs[i] = fmt.Sprintf("%.3gx", m)
	}
	names := make([]string, len(Fig8Variants))
	vals := make([][]float64, len(Fig8Variants))
	for i, v := range Fig8Variants {
		names[i] = string(v)
		vals[i] = r.TTIs[v]
	}
	asciiColumns(w, xs, names, vals)
}

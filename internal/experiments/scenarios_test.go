package experiments

import (
	"bytes"
	"testing"
	"time"
)

// TestScenarioMatrixSmoke runs the full matrix at test scale: every
// scenario must complete with clean accounting and invariants, and the
// report must render. Pass verdicts are asserted individually where they
// are load-independent (structural); timing-sensitive goodput ratios are
// only asserted not to produce NaN/negative numbers, since CI machines
// vary.
func TestScenarioMatrixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix is wall-clock bound")
	}
	cfg := DefaultScenarios(Small())
	cfg.PhaseDur = 400 * time.Millisecond
	rep, err := RunScenarios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 6 {
		t.Fatalf("expected 6 scenarios, got %d", len(rep.Scenarios))
	}
	if rep.CalibratedQPS <= 0 {
		t.Fatalf("calibration produced %v q/s", rep.CalibratedQPS)
	}
	for _, s := range rep.Scenarios {
		if len(s.Phases) == 0 {
			t.Errorf("%s: no phases", s.Name)
		}
		for _, p := range s.Phases {
			if p.GoodputQPS < 0 || p.Submitted < p.Served+p.Shed {
				t.Errorf("%s/%s: inconsistent phase counts %+v", s.Name, p.Name, p)
			}
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	rep.WriteText(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty text report")
	}
	t.Logf("\n%s", buf.String())
}

package experiments

import (
	"io"

	"miso/internal/bgwork"
	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/multistore"
	"miso/internal/sim"
	"miso/internal/stats"
)

// Fig9Result is the spare-capacity experiment: the MS-MISO run replayed
// against a DW with 40% spare IO capacity.
type Fig9Result struct {
	Outcome *sim.Outcome
}

// BuildTimeline converts an MS-MISO run into the event sequence of the
// Section 5.4 experiment: reorganization transfers (R), per-query HV
// phases, working-set transfers (T), and DW execution (Q).
func BuildTimeline(sys *multistore.System) []sim.Event {
	reorgAt := map[int]float64{}
	for _, r := range sys.ReorgLog() {
		reorgAt[r.BeforeSeq] += r.Seconds
	}
	recoveryAt := map[int]float64{}
	for _, r := range sys.ReorgLog() {
		recoveryAt[r.BeforeSeq] += r.RecoverySeconds
	}
	var events []sim.Event
	for _, rep := range sys.Reports() {
		if s := reorgAt[rep.Seq]; s > 0 {
			events = append(events, sim.Event{Kind: sim.EventReorg, Seconds: s})
		}
		if s := recoveryAt[rep.Seq]; s > 0 {
			events = append(events, sim.Event{Kind: sim.EventRecovery, Seconds: s})
		}
		if rep.HVSeconds > 0 {
			kind := sim.EventHV
			if rep.Degraded {
				kind = sim.EventDegraded
			}
			events = append(events, sim.Event{Kind: kind, Seconds: rep.HVSeconds})
		}
		if rep.TransferSeconds > 0 {
			events = append(events, sim.Event{Kind: sim.EventTransfer, Seconds: rep.TransferSeconds})
		}
		if rep.DWSeconds > 0 {
			events = append(events, sim.Event{Kind: sim.EventDW, Seconds: rep.DWSeconds})
		}
		if rep.RecoverySeconds > 0 {
			events = append(events, sim.Event{Kind: sim.EventRecovery, Seconds: rep.RecoverySeconds})
		}
	}
	return events
}

// measuredScenarios loads the TPC-DS-like reporting mart into a dedicated
// DW instance (the warehouse's business data, distinct from the multistore
// design) and measures q3/q83 latencies to parameterize the contention
// scenarios.
func measuredScenarios() ([]sim.Background, error) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		return nil, err
	}
	est := stats.NewEstimator(cat)
	store := dw.NewStore(dw.DefaultConfig(), est)
	w, err := bgwork.Load(bgwork.DefaultConfig(), store, est)
	if err != nil {
		return nil, err
	}
	q3, q83, err := w.MeasureLatencies()
	if err != nil {
		return nil, err
	}
	return sim.ScenariosWithLatencies(q3, q83), nil
}

// Fig9 runs MS-MISO and simulates it against the 40%-spare-IO background,
// whose reporting-query latency is measured from the bgwork mart.
func Fig9(cfg Config) (*Fig9Result, error) {
	sys, err := cfg.runWorkload(multistore.VariantMSMiso)
	if err != nil {
		return nil, err
	}
	scenarios, err := measuredScenarios()
	if err != nil {
		return nil, err
	}
	events := BuildTimeline(sys)
	return &Fig9Result{Outcome: sim.Simulate(events, scenarios[0], 10)}, nil
}

// WriteText renders the resource and latency timelines (downsampled) and
// the summary statistics.
func (r *Fig9Result) WriteText(w io.Writer) {
	o := r.Outcome
	fprintf(w, "Figure 9: multistore workload on a DW with %s\n", o.Background.Name)
	fprintf(w, "(a) resource consumption and (b) background query latency over time\n")
	fprintf(w, "%10s %6s %6s %10s %-8s\n", "t(s)", "IO%", "CPU%", "bg lat(s)", "phase")
	phase := map[sim.EventKind]string{
		sim.EventHV: "Q(hv)", sim.EventTransfer: "T", sim.EventReorg: "R",
		sim.EventDW: "Q(dw)", sim.EventIdle: "idle", sim.EventRecovery: "rec",
		sim.EventDegraded: "Q(deg)",
	}
	// Downsample to at most ~120 rows, but always include phase changes.
	step := len(o.Samples) / 120
	if step < 1 {
		step = 1
	}
	var lastKind sim.EventKind = -1
	for i, s := range o.Samples {
		if i%step != 0 && s.Kind == lastKind {
			continue
		}
		lastKind = s.Kind
		fprintf(w, "%10.0f %5.0f%% %5.0f%% %10.2f %-8s\n",
			s.T, 100*s.IO, 100*s.CPU, s.BgLatency, phase[s.Kind])
	}
	fprintf(w, "average background latency %.2fs (base %.2fs, +%.1f%%); peak %.2fs\n",
		o.AvgBgLatency, o.Background.BaseLatency, o.BgSlowdownPct, o.PeakBgLatency)
	fprintf(w, "multistore workload slowdown vs empty DW: %.1f%%\n", o.MsSlowdownPct)
}

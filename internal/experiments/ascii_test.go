package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiStackedBars(t *testing.T) {
	var buf bytes.Buffer
	asciiStackedBars(&buf,
		[]string{"A", "B"},
		[][]float64{{10, 20}, {30, 0}},
		[]string{"x", "y"})
	out := buf.String()
	if !strings.Contains(out, "legend:") {
		t.Error("missing legend")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The A bar (30 total) and B bar (30 total) end with their totals.
	if !strings.Contains(lines[1], "30") || !strings.Contains(lines[2], "30") {
		t.Errorf("totals missing: %q", out)
	}
	// B's bar uses only the first glyph (its second segment is zero).
	if strings.Contains(lines[2], "=") {
		t.Errorf("zero segment rendered: %q", lines[2])
	}
}

func TestAsciiStackedBarsEmpty(t *testing.T) {
	var buf bytes.Buffer
	asciiStackedBars(&buf, []string{"A"}, [][]float64{{0}}, []string{"x"})
	if buf.Len() != 0 {
		t.Error("all-zero input should render nothing")
	}
}

func TestAsciiColumns(t *testing.T) {
	var buf bytes.Buffer
	asciiColumns(&buf,
		[]string{"1x", "2x"},
		[]string{"s1", "s2"},
		[][]float64{{100, 50}, {25, 25}})
	out := buf.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "2x") {
		t.Errorf("missing labels: %q", out)
	}
	// The largest value renders the longest bar.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(rows[0], "|") <= strings.Count(rows[1], "|") {
		t.Errorf("bars not proportional:\n%s", out)
	}
}

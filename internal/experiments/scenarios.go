// Overload scenario matrix: the shed/quota/breaker/hedge stack measured
// under stress instead of Figure-3–9 replays. Each scenario drives one
// serve.Server over a fresh system with an open-loop, phase-structured
// workload generator — flash-crowd ramps, Zipf tenant skew, diurnal
// curves, drift bursts forcing reorganization churn, ETL append storms,
// and a DW brownout exercising hedged execution — and reports goodput,
// shed rate, per-tenant fairness, hedge wins, and latency percentiles per
// phase, written as BENCH_scenarios.json by misobench -scenarios.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

// ScenarioConfig parameterizes the scenario matrix.
type ScenarioConfig struct {
	Config
	// Workers / Queue configure the serving frontend for every scenario.
	Workers int
	Queue   int
	// PhaseDur is the wall-clock length of one workload phase.
	PhaseDur time.Duration
	// Seed drives every random choice the generator makes.
	Seed int64
}

// DefaultScenarios returns the CI shape: small data, short phases.
func DefaultScenarios(base Config) ScenarioConfig {
	return ScenarioConfig{Config: base, Workers: 4, Queue: 8, PhaseDur: 2 * time.Second, Seed: 7}
}

// PhaseResult is one phase's aggregate outcome. Queries are attributed
// to the phase that submitted them.
type PhaseResult struct {
	Name       string  `json:"name"`
	OfferedQPS float64 `json:"offered_qps"`
	Submitted  int     `json:"submitted"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed"`
	GoodputQPS float64 `json:"goodput_qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// TenantServed / TenantShed break the phase down per tenant.
	TenantServed map[string]int `json:"tenant_served,omitempty"`
	TenantShed   map[string]int `json:"tenant_shed,omitempty"`
}

// TenantOutcome is one tenant's totals across a scenario.
type TenantOutcome struct {
	Tenant     string  `json:"tenant"`
	Submitted  int     `json:"submitted"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	GoodputQPS float64 `json:"goodput_qps"`
}

// ScenarioResult is one scenario's report plus its pass verdict.
type ScenarioResult struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Phases      []PhaseResult   `json:"phases"`
	Tenants     []TenantOutcome `json:"tenants,omitempty"`
	// FairnessRatio is max/min per-tenant goodput across tenants that
	// submitted (1.0 is perfectly fair; 0 when fewer than two tenants).
	FairnessRatio float64 `json:"fairness_ratio,omitempty"`
	Hedges        int     `json:"hedges,omitempty"`
	HedgeWins     int     `json:"hedge_wins,omitempty"`
	Sheds         int     `json:"sheds"`
	QuotaSheds    int     `json:"quota_sheds"`
	Degraded      int     `json:"degraded"`
	Reorgs        int     `json:"reorgs"`
	LimitDecs     int     `json:"limit_decreases"`
	Pass          bool    `json:"pass"`
	Notes         string  `json:"notes,omitempty"`
}

// ScenarioReport is the machine-readable matrix report
// (BENCH_scenarios.json).
type ScenarioReport struct {
	GOOS          string           `json:"goos"`
	GOARCH        string           `json:"goarch"`
	NumCPU        int              `json:"num_cpu"`
	Scale         string           `json:"scale"`
	CalibratedQPS float64          `json:"calibrated_qps"`
	Scenarios     []ScenarioResult `json:"scenarios"`
}

// WriteJSON renders the report as indented JSON.
func (r *ScenarioReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a plain-text table.
func (r *ScenarioReport) WriteText(w io.Writer) {
	fprintf(w, "overload scenario matrix (%s/%s, %d CPU, scale=%s, calibrated %.1f q/s)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.Scale, r.CalibratedQPS)
	for _, s := range r.Scenarios {
		verdict := "PASS"
		if !s.Pass {
			verdict = "FAIL"
		}
		fprintf(w, "\n%s [%s] — %s\n", s.Name, verdict, s.Description)
		fprintf(w, "  %-12s %9s %6s %6s %6s %9s %9s %9s\n",
			"phase", "offered", "sub", "served", "shed", "goodput", "p50", "p99")
		for _, p := range s.Phases {
			fprintf(w, "  %-12s %7.1f/s %6d %6d %6d %7.1f/s %7.1fms %7.1fms\n",
				p.Name, p.OfferedQPS, p.Submitted, p.Served, p.Shed, p.GoodputQPS, p.P50Ms, p.P99Ms)
		}
		for _, t := range s.Tenants {
			fprintf(w, "  tenant %-8s submitted %4d served %4d shed %4d (%.1f q/s)\n",
				t.Tenant, t.Submitted, t.Served, t.Shed, t.GoodputQPS)
		}
		if s.Hedges > 0 || s.HedgeWins > 0 {
			fprintf(w, "  hedges %d (wins %d)\n", s.Hedges, s.HedgeWins)
		}
		fprintf(w, "  sheds %d (quota %d), degraded %d, reorgs %d, limit decreases %d\n",
			s.Sheds, s.QuotaSheds, s.Degraded, s.Reorgs, s.LimitDecs)
		if s.Notes != "" {
			fprintf(w, "  %s\n", s.Notes)
		}
	}
}

// Passed reports whether every scenario met its criteria.
func (r *ScenarioReport) Passed() bool {
	for _, s := range r.Scenarios {
		if !s.Pass {
			return false
		}
	}
	return true
}

// phaseSpec is one phase of offered load: per-tenant rates in queries per
// second for PhaseDur, optionally preceded by an online reorganization or
// accompanied by an ETL append storm.
type phaseSpec struct {
	name     string
	rates    map[string]float64
	reorg    bool
	etlStorm bool
	// sqlOffset rotates which part of the 32-query workload this phase
	// draws from (drift: a new phase asks different queries).
	sqlOffset int
}

// newScenarioSystem builds a fresh backend, letting the scenario mutate
// the multistore config (fault profile, hedging, retry budget) first.
func (c ScenarioConfig) newScenarioSystem(mut func(*multistore.Config)) (*multistore.System, error) {
	cat, err := data.Generate(c.Data)
	if err != nil {
		return nil, err
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, c.BudgetMultiple, c.TransferBudget)
	cfg.Faults = faults.Uniform(c.FaultRate)
	cfg.FaultSeed = c.FaultSeed
	cfg.Tuner.TuneWorkers = c.TuneWorkers
	cfg.ExecWorkers = c.ExecWorkers
	if mut != nil {
		mut(&cfg)
	}
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		return nil, err
	}
	return sys, nil
}

// calibrate measures the backend's serial query throughput (the backend
// executes one query at a time, so offered rates are set relative to
// 1/meanLatency regardless of worker count).
func calibrate(sys *multistore.System, n int) (float64, error) {
	sqls := workload.SQLs()
	if n <= 0 || n > len(sqls) {
		n = 8
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := sys.Run(sqls[i%len(sqls)]); err != nil {
			return 0, fmt.Errorf("experiments: calibration query %d: %w", i, err)
		}
	}
	mean := time.Since(start) / time.Duration(n)
	if mean <= 0 {
		mean = time.Millisecond
	}
	return float64(time.Second) / float64(mean), nil
}

// phaseRunner drives one scenario's phases against a server, open-loop:
// every tenant submits at its phase rate from its own ticker goroutine,
// without waiting for responses (responses resolve in their own
// goroutines, bounded by a semaphore). Outcomes are attributed to the
// submitting phase.
type phaseRunner struct {
	srv  *serve.Server
	sys  *multistore.System
	sqls []string
	dur  time.Duration

	mu      sync.Mutex
	hardErr error
}

func (pr *phaseRunner) fail(err error) {
	pr.mu.Lock()
	if pr.hardErr == nil {
		pr.hardErr = err
	}
	pr.mu.Unlock()
}

// phaseAcc accumulates one phase's outcomes across submitter and
// resolver goroutines.
type phaseAcc struct {
	mu           sync.Mutex
	latencies    []time.Duration
	submitted    int
	served       int
	shed         int
	failed       int
	tenantServed map[string]int
	tenantShed   map[string]int
}

// submit dispatches one query asynchronously, classifying its outcome
// into the accumulator when it resolves.
func (pr *phaseRunner) submit(tenant, sql string, acc *phaseAcc, all *sync.WaitGroup, sem chan struct{}) {
	acc.mu.Lock()
	acc.submitted++
	acc.mu.Unlock()
	all.Add(1)
	sem <- struct{}{}
	go func() {
		defer all.Done()
		defer func() { <-sem }()
		t0 := time.Now()
		_, err := pr.srv.DoAs(context.Background(), tenant, sql)
		lat := time.Since(t0)
		acc.mu.Lock()
		defer acc.mu.Unlock()
		switch {
		case err == nil:
			acc.served++
			acc.tenantServed[tenant]++
			acc.latencies = append(acc.latencies, lat)
		case errors.Is(err, serve.ErrShed):
			acc.shed++
			acc.tenantShed[tenant]++
		case errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled),
			errors.Is(err, govern.ErrMemLimit),
			errors.Is(err, govern.ErrInternal):
			acc.failed++
		default:
			acc.failed++
			pr.fail(fmt.Errorf("experiments: scenario tenant %s: %w", tenant, err))
		}
	}()
}

// run executes the phases sequentially and returns per-phase results.
func (pr *phaseRunner) run(phases []phaseSpec) ([]PhaseResult, error) {
	sem := make(chan struct{}, 512)
	var all sync.WaitGroup
	results := make([]PhaseResult, len(phases))

	for pi, ph := range phases {
		if ph.reorg {
			if err := pr.srv.Reorganize(); err != nil {
				return nil, fmt.Errorf("experiments: scenario reorg before %s: %w", ph.name, err)
			}
		}
		stopStorm := make(chan struct{})
		var stormWG sync.WaitGroup
		if ph.etlStorm {
			stormWG.Add(1)
			go pr.etlStorm(stopStorm, &stormWG)
		}

		acc := &phaseAcc{tenantServed: map[string]int{}, tenantShed: map[string]int{}}
		offered := 0.0
		for _, r := range ph.rates {
			offered += r
		}

		var phaseWG sync.WaitGroup // submitter pacers only
		deadline := time.Now().Add(pr.dur)
		for tenant, rate := range ph.rates {
			if rate <= 0 {
				continue
			}
			phaseWG.Add(1)
			go func(tenant string, rate float64) {
				defer phaseWG.Done()
				// Pace by target count, not per-tick: want = rate×elapsed
				// keeps the offered load honest even when the scheduler
				// starves this goroutine and the ticker coalesces (a
				// saturated 1-CPU box must still see true overload).
				interval := time.Duration(float64(time.Second) / rate)
				if interval > 5*time.Millisecond {
					interval = 5 * time.Millisecond
				}
				tick := time.NewTicker(interval)
				defer tick.Stop()
				phaseStart := time.Now()
				i := 0
				for time.Now().Before(deadline) {
					want := int(rate * time.Since(phaseStart).Seconds())
					for ; i < want; i++ {
						sql := pr.sqls[(ph.sqlOffset+i)%len(pr.sqls)]
						pr.submit(tenant, sql, acc, &all, sem)
					}
					<-tick.C
				}
			}(tenant, rate)
		}
		phaseWG.Wait()
		// The phase's submissions are in; let them resolve before
		// measuring so goodput counts everything the phase offered.
		all.Wait()
		close(stopStorm)
		stormWG.Wait()

		acc.mu.Lock()
		res := PhaseResult{
			Name: ph.name, OfferedQPS: offered,
			Submitted: acc.submitted, Served: acc.served, Shed: acc.shed, Failed: acc.failed,
			TenantServed: acc.tenantServed, TenantShed: acc.tenantShed,
		}
		res.GoodputQPS = float64(acc.served) / pr.dur.Seconds()
		latencies := acc.latencies
		acc.mu.Unlock()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		if n := len(latencies); n > 0 {
			res.P50Ms = float64(latencies[n/2]) / float64(time.Millisecond)
			res.P99Ms = float64(latencies[n*99/100]) / float64(time.Millisecond)
		}
		results[pi] = res

		pr.mu.Lock()
		err := pr.hardErr
		pr.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// etlStorm appends records to the tweets log in a tight loop until
// stopped — the update path racing live queries through the backend's
// serialization.
func (pr *phaseRunner) etlStorm(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	id := int64(10_000_000)
	for {
		select {
		case <-stop:
			return
		default:
		}
		lines := make([]string, 0, 4)
		for i := 0; i < 4; i++ {
			id++
			lines = append(lines, fmt.Sprintf(
				`{"tweet_id":%d,"user_id":1,"ts":1357000000,"text":"storm #etl","hashtag":"etl","lang":"en","retweets":1,"followers":10}`, id))
		}
		if _, err := pr.sys.AppendToLog(data.TweetsLog, lines); err != nil {
			pr.fail(fmt.Errorf("experiments: etl storm append: %w", err))
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tenantOutcomes converts the server's tenant ledgers, computing goodput
// over the scenario's total duration and the max/min fairness ratio.
func tenantOutcomes(srv *serve.Server, total time.Duration) ([]TenantOutcome, float64) {
	stats := srv.TenantStats()
	out := make([]TenantOutcome, 0, len(stats))
	minG, maxG := math.Inf(1), 0.0
	for _, t := range stats {
		g := float64(t.Served) / total.Seconds()
		out = append(out, TenantOutcome{
			Tenant: t.Tenant, Submitted: t.Submitted, Served: t.Served,
			Shed: t.Shed, GoodputQPS: g,
		})
		if g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
	}
	if len(out) < 2 || minG <= 0 {
		return out, 0
	}
	return out, maxG / minG
}

// zipfRates distributes total QPS across n tenants by a Zipf law with the
// given exponent (rank-1 hottest). Exponent 0 is uniform.
func zipfRates(n int, total, exponent float64) map[string]float64 {
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), exponent)
		sum += weights[i]
	}
	rates := make(map[string]float64, n)
	for i, w := range weights {
		rates[fmt.Sprintf("t%d", i)] = total * w / sum
	}
	return rates
}

// RunScenarios executes the full matrix and assembles the report.
func RunScenarios(cfg ScenarioConfig) (*ScenarioReport, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	if cfg.PhaseDur <= 0 {
		cfg.PhaseDur = 2 * time.Second
	}

	// Calibrate once on a throwaway system: offered rates for every
	// scenario are multiples of the backend's serial capacity.
	calSys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	capQPS, err := calibrate(calSys, 8)
	if err != nil {
		return nil, err
	}

	report := &ScenarioReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Scale: fmt.Sprintf("%d tweets", cfg.Data.NumTweets), CalibratedQPS: capQPS,
	}

	type scenario struct {
		name, desc string
		run        func() (*ScenarioResult, error)
	}
	scenarios := []scenario{
		{"flash-crowd", "4x offered overload absorbed as sheds, goodput holds", func() (*ScenarioResult, error) {
			return cfg.runFlashCrowd(capQPS)
		}},
		{"zipf-skew", "hot tenant sheds against its own quota, cold tenants unharmed", func() (*ScenarioResult, error) {
			return cfg.runZipfSkew(capQPS)
		}},
		{"diurnal", "sinusoidal offered load under the adaptive limit", func() (*ScenarioResult, error) {
			return cfg.runDiurnal(capQPS)
		}},
		{"drift-burst", "query-mix drift with reorganization churn between phases", func() (*ScenarioResult, error) {
			return cfg.runDriftBurst(capQPS)
		}},
		{"etl-storm", "append storm racing live queries", func() (*ScenarioResult, error) {
			return cfg.runETLStorm(capQPS)
		}},
		{"dw-brownout", "DW fault storm with hedged HV execution", func() (*ScenarioResult, error) {
			return cfg.runDWBrownout(capQPS)
		}},
	}
	for _, sc := range scenarios {
		res, err := sc.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", sc.name, err)
		}
		res.Name = sc.name
		res.Description = sc.desc
		report.Scenarios = append(report.Scenarios, *res)
	}
	return report, nil
}

// finishScenario closes the server, checks invariants, and fills the
// shared counters into the result.
func finishScenario(srv *serve.Server, sys *multistore.System, phases []PhaseResult, total time.Duration) (*ScenarioResult, error) {
	srv.Close()
	m := srv.Metrics()
	if err := m.Check(); err != nil {
		return nil, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("invariants: %w", err)
	}
	tenants, fairness := tenantOutcomes(srv, total)
	sm := sys.Metrics()
	return &ScenarioResult{
		Phases: phases, Tenants: tenants, FairnessRatio: fairness,
		Hedges: sm.Hedges, HedgeWins: sm.HedgeWins,
		Sheds: m.Sheds, QuotaSheds: m.QuotaSheds, Degraded: m.Degraded,
		Reorgs: m.Reorgs, LimitDecs: m.LimitDecreases,
	}, nil
}

func (cfg ScenarioConfig) runFlashCrowd(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
	}, sys)
	warm := 0.5 * capQPS
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	phases, err := pr.run([]phaseSpec{
		{name: "warm", rates: map[string]float64{"crowd": warm}},
		{name: "crowd-4x", rates: map[string]float64{"crowd": 4 * capQPS}},
		{name: "recover", rates: map[string]float64{"crowd": warm}, sqlOffset: 8},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, 3*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// No congestion collapse: overload goodput holds at >= 80% of warm
	// goodput, overload is absorbed as explicit sheds, and the p99 of
	// served queries stays under the deadline (timeouts count as Failed,
	// not Served).
	warmG, crowdG := phases[0].GoodputQPS, phases[1].GoodputQPS
	res.Pass = crowdG >= 0.8*warmG && phases[1].Shed > 0
	res.Notes = fmt.Sprintf("crowd goodput %.1f/s vs warm %.1f/s (need >= 80%%), %d sheds during crowd",
		crowdG, warmG, phases[1].Shed)
	return res, nil
}

func (cfg ScenarioConfig) runZipfSkew(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	const tenants = 4
	// Equal-weight quotas sized so cold tenants never touch their
	// buckets while the hot tenant's surge drains only its own.
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
		Quota: serve.QuotaConfig{RatePerSec: 0.8 * capQPS, Burst: 4},
	}, sys)
	perCold := 0.1 * capQPS
	base := map[string]float64{}
	for i := 0; i < tenants; i++ {
		base[fmt.Sprintf("t%d", i)] = perCold
	}
	skew := zipfRates(tenants, 2.5*capQPS, 1.5)
	// Keep the cold tenants' offered rate identical across phases so
	// their goodput comparison isolates the hot tenant's effect.
	hot := skew["t0"]
	skewed := map[string]float64{"t0": hot}
	for t, r := range base {
		if t != "t0" {
			skewed[t] = r
		}
	}
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	phases, err := pr.run([]phaseSpec{
		{name: "baseline", rates: base},
		{name: "skew", rates: skewed},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, 2*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// Cold tenants' served counts may drop at most 10% from baseline to
	// skew, while the hot tenant sheds against its own bucket.
	coldBase, coldSkew := 0, 0
	for t, n := range phases[0].TenantServed {
		if t != "t0" {
			coldBase += n
		}
	}
	for t, n := range phases[1].TenantServed {
		if t != "t0" {
			coldSkew += n
		}
	}
	hotShed := phases[1].TenantShed["t0"]
	res.Pass = hotShed > 0 && float64(coldSkew) >= 0.9*float64(coldBase)
	res.Notes = fmt.Sprintf("cold served %d baseline -> %d under skew (need >= 90%%), hot shed %d",
		coldBase, coldSkew, hotShed)
	return res, nil
}

func (cfg ScenarioConfig) runDiurnal(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
		Adaptive: serve.AdaptiveConfig{TargetP99: 5 * time.Second, Window: 16},
	}, sys)
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	var specs []phaseSpec
	for i, frac := range []float64{0.3, 0.9, 1.4, 0.9, 0.3} {
		specs = append(specs, phaseSpec{
			name:      fmt.Sprintf("hour-%d", i),
			rates:     map[string]float64{"diurnal": frac * capQPS},
			sqlOffset: 4 * i,
		})
	}
	phases, err := pr.run(specs)
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, time.Duration(len(phases))*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// The trough after the peak recovers: final-phase goodput within 50%
	// of the first trough's, and nothing hard-failed along the curve.
	first, last := phases[0].GoodputQPS, phases[len(phases)-1].GoodputQPS
	res.Pass = first > 0 && last >= 0.5*first
	res.Notes = fmt.Sprintf("trough goodput %.1f/s -> %.1f/s through the peak", first, last)
	return res, nil
}

func (cfg ScenarioConfig) runDriftBurst(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
		DrainTimeout: 2 * time.Second,
	}, sys)
	rate := 0.5 * capQPS
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	phases, err := pr.run([]phaseSpec{
		{name: "mix-a", rates: map[string]float64{"drift": rate}},
		{name: "drift-1", rates: map[string]float64{"drift": rate}, sqlOffset: 11, reorg: true},
		{name: "drift-2", rates: map[string]float64{"drift": rate}, sqlOffset: 22, reorg: true},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, 3*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// Reorg churn between drifted mixes must not wedge the plane:
	// both reorgs complete and the drifted phases keep serving.
	res.Pass = res.Reorgs >= 2 && phases[1].Served > 0 && phases[2].Served > 0
	res.Notes = fmt.Sprintf("%d reorgs; served %d/%d/%d across drift phases",
		res.Reorgs, phases[0].Served, phases[1].Served, phases[2].Served)
	return res, nil
}

func (cfg ScenarioConfig) runETLStorm(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(nil)
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
	}, sys)
	rate := 0.5 * capQPS
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	phases, err := pr.run([]phaseSpec{
		{name: "calm", rates: map[string]float64{"etl": rate}},
		{name: "storm", rates: map[string]float64{"etl": rate}, etlStorm: true},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, 2*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// Appends invalidate views and race queries through the backend's
	// serialization; the plane must keep serving with invariants intact.
	res.Pass = phases[1].Served > 0
	res.Notes = fmt.Sprintf("storm-phase served %d of %d offered", phases[1].Served, phases[1].Submitted)
	return res, nil
}

func (cfg ScenarioConfig) runDWBrownout(capQPS float64) (*ScenarioResult, error) {
	sys, err := cfg.newScenarioSystem(func(mc *multistore.Config) {
		// DW-side faults force retry exhaustion on a fraction of split
		// plans; hedging (aggressive threshold so every DW phase races a
		// shadow) converts those fallbacks into committed shadows.
		mc.Faults = faults.Profile{}.With(faults.SiteDWQuery, 0.45)
		mc.FaultSeed = cfg.Seed
		mc.Retry = faults.RetryPolicy{MaxAttempts: 2, BaseBackoff: 1, BackoffFactor: 2, MaxBackoff: 4}
		mc.Hedge = multistore.HedgeConfig{Enabled: true, Multiplier: 0.001, MinDelay: time.Nanosecond}
	})
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		Workers: cfg.Workers, QueueDepth: cfg.Queue, QueryTimeout: 10 * time.Second,
	}, sys)
	rate := 0.5 * capQPS
	pr := &phaseRunner{srv: srv, sys: sys, sqls: workload.SQLs(), dur: cfg.PhaseDur}
	phases, err := pr.run([]phaseSpec{
		{name: "brownout", rates: map[string]float64{"brown": rate}},
		{name: "brownout-2", rates: map[string]float64{"brown": rate}, sqlOffset: 16},
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	res, err := finishScenario(srv, sys, phases, 2*cfg.PhaseDur)
	if err != nil {
		return nil, err
	}
	// The brownout keeps serving, and at least one exhausted DW query
	// completed from its hedge shadow instead of a serial re-execution.
	res.Pass = phases[0].Served+phases[1].Served > 0 && res.HedgeWins >= 1
	res.Notes = fmt.Sprintf("hedges %d, wins %d under DW fault storm", res.Hedges, res.HedgeWins)
	return res, nil
}

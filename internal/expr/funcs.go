package expr

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"miso/internal/storage"
)

// FuncImpl is the runtime implementation and type signature of a scalar
// function.
type FuncImpl struct {
	Name    string
	RetType storage.Kind
	MinArgs int
	MaxArgs int
	Eval    func(args []storage.Value) storage.Value
	// HVOnly marks user-defined functions that can only execute in the
	// big data store (arbitrary user code, per the paper): any plan node
	// using one is pinned to HV by the multistore optimizer.
	HVOnly bool
}

var builtins = map[string]*FuncImpl{}
var udfs = map[string]*FuncImpl{}

func registerBuiltin(f *FuncImpl) { builtins[f.Name] = f }

// RegisterUDF installs a user-defined function. UDFs are always HV-only.
func RegisterUDF(f *FuncImpl) {
	f.HVOnly = true
	udfs[f.Name] = f
}

// LookupFunc finds a builtin or UDF by upper-case name.
func LookupFunc(name string) (*FuncImpl, bool) {
	if f, ok := builtins[name]; ok {
		return f, true
	}
	f, ok := udfs[name]
	return f, ok
}

// UDFNames returns the sorted names of registered UDFs.
func UDFNames() []string {
	out := make([]string, 0, len(udfs))
	for n := range udfs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsAggregateName reports whether the name is one of the aggregate
// functions, which are handled by the Aggregate operator rather than the
// scalar evaluator.
func IsAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}

func argFloat(v storage.Value) float64 {
	f, _ := v.AsFloat()
	return f
}

func init() {
	registerBuiltin(&FuncImpl{
		Name: "UPPER", RetType: storage.KindString, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			return storage.StringValue(strings.ToUpper(a[0].String()))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "LOWER", RetType: storage.KindString, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			return storage.StringValue(strings.ToLower(a[0].String()))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "LENGTH", RetType: storage.KindInt, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			return storage.IntValue(int64(len(a[0].String())))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "SUBSTR", RetType: storage.KindString, MinArgs: 2, MaxArgs: 3,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			s := a[0].String()
			start, _ := a[1].AsInt()
			if start < 1 {
				start = 1
			}
			if int(start) > len(s) {
				return storage.StringValue("")
			}
			out := s[start-1:]
			if len(a) == 3 {
				n, _ := a[2].AsInt()
				if n < 0 {
					n = 0
				}
				if int(n) < len(out) {
					out = out[:n]
				}
			}
			return storage.StringValue(out)
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "ABS", RetType: storage.KindFloat, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			f := argFloat(a[0])
			if f < 0 {
				f = -f
			}
			if a[0].Kind == storage.KindInt {
				return storage.IntValue(int64(f))
			}
			return storage.FloatValue(f)
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "ROUND", RetType: storage.KindInt, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			f := argFloat(a[0])
			if f >= 0 {
				return storage.IntValue(int64(f + 0.5))
			}
			return storage.IntValue(int64(f - 0.5))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "YEAR", RetType: storage.KindInt, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			ts, ok := a[0].AsInt()
			if !ok {
				return storage.Null
			}
			return storage.IntValue(int64(time.Unix(ts, 0).UTC().Year()))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "MONTH", RetType: storage.KindInt, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			ts, ok := a[0].AsInt()
			if !ok {
				return storage.Null
			}
			return storage.IntValue(int64(time.Unix(ts, 0).UTC().Month()))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "DAYOFWEEK", RetType: storage.KindInt, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			ts, ok := a[0].AsInt()
			if !ok {
				return storage.Null
			}
			return storage.IntValue(int64(time.Unix(ts, 0).UTC().Weekday()))
		},
	})
	registerBuiltin(&FuncImpl{
		Name: "CONCAT", RetType: storage.KindString, MinArgs: 1, MaxArgs: 8,
		Eval: func(a []storage.Value) storage.Value {
			var b strings.Builder
			for _, v := range a {
				if !v.IsNull() {
					b.WriteString(v.String())
				}
			}
			return storage.StringValue(b.String())
		},
	})

	// The workload's UDFs. These model the paper's arbitrary user code
	// (Perl/Python streaming scripts): opaque to DW and therefore pinned
	// to HV. Their implementations are simple deterministic functions so
	// experiments are reproducible.
	RegisterUDF(&FuncImpl{
		Name: "SENTIMENT", RetType: storage.KindFloat, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			text := strings.ToLower(a[0].String())
			score := 0.0
			for _, w := range []string{"amazing", "best", "love", "great", "happy", "recommend"} {
				if strings.Contains(text, w) {
					score++
				}
			}
			for _, w := range []string{"terrible", "worst", "hate", "avoid", "fail"} {
				if strings.Contains(text, w) {
					score--
				}
			}
			return storage.FloatValue(score)
		},
	})
	RegisterUDF(&FuncImpl{
		Name: "TOPIC", RetType: storage.KindString, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			if a[0].IsNull() {
				return storage.Null
			}
			text := strings.ToLower(a[0].String())
			switch {
			case strings.Contains(text, "pizza") || strings.Contains(text, "burger") ||
				strings.Contains(text, "sushi") || strings.Contains(text, "food") ||
				strings.Contains(text, "brunch") || strings.Contains(text, "vegan"):
				return storage.StringValue("dining")
			case strings.Contains(text, "coffee"):
				return storage.StringValue("coffee")
			case strings.Contains(text, "travel"):
				return storage.StringValue("travel")
			case strings.Contains(text, "deal") || strings.Contains(text, "launch"):
				return storage.StringValue("commerce")
			default:
				return storage.StringValue("other")
			}
		},
	})
	RegisterUDF(&FuncImpl{
		Name: "GEO_CELL", RetType: storage.KindString, MinArgs: 2, MaxArgs: 2,
		Eval: func(a []storage.Value) storage.Value {
			lat, ok1 := a[0].AsFloat()
			lon, ok2 := a[1].AsFloat()
			if !ok1 || !ok2 {
				return storage.Null
			}
			return storage.StringValue(fmt.Sprintf("cell_%d_%d", int(lat), int(-lon)))
		},
	})
	RegisterUDF(&FuncImpl{
		Name: "INFLUENCE", RetType: storage.KindFloat, MinArgs: 2, MaxArgs: 2,
		Eval: func(a []storage.Value) storage.Value {
			rts, ok1 := a[0].AsFloat()
			fol, ok2 := a[1].AsFloat()
			if !ok1 || !ok2 {
				return storage.Null
			}
			return storage.FloatValue(rts*10 + fol/1000)
		},
	})
	RegisterUDF(&FuncImpl{
		Name: "IS_WEEKEND", RetType: storage.KindBool, MinArgs: 1, MaxArgs: 1,
		Eval: func(a []storage.Value) storage.Value {
			ts, ok := a[0].AsInt()
			if !ok {
				return storage.Null
			}
			wd := time.Unix(ts, 0).UTC().Weekday()
			return storage.BoolValue(wd == time.Saturday || wd == time.Sunday)
		},
	})
}

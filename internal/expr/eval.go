package expr

import (
	"fmt"
	"strings"

	"miso/internal/storage"
)

// Compiled is an expression bound to a schema: it evaluates against one row.
//
// A Compiled evaluator is single-goroutine: function calls reuse a scratch
// argument buffer between rows, so concurrent executors must compile one
// evaluator per worker (compilation is a cheap AST walk; evaluation is the
// hot path). Evaluators compiled from the same expression and schema are
// interchangeable — they compute identical values.
type Compiled func(row storage.Row) storage.Value

// TypeOf infers the result kind of e against the given input schema.
func TypeOf(e Expr, schema *storage.Schema) (storage.Kind, error) {
	switch v := e.(type) {
	case *ColRef:
		i := schema.Index(v.Name)
		if i < 0 {
			return 0, fmt.Errorf("expr: unknown column %q in schema %s", v.Name, schema)
		}
		return schema.Columns[i].Type, nil
	case *Const:
		return v.Val.Kind, nil
	case *BinOp:
		switch v.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "LIKE":
			return storage.KindBool, nil
		case "+", "-", "*", "/", "%":
			lt, err := TypeOf(v.L, schema)
			if err != nil {
				return 0, err
			}
			rt, err := TypeOf(v.R, schema)
			if err != nil {
				return 0, err
			}
			if lt == storage.KindFloat || rt == storage.KindFloat || v.Op == "/" {
				return storage.KindFloat, nil
			}
			return storage.KindInt, nil
		default:
			return 0, fmt.Errorf("expr: unknown operator %q", v.Op)
		}
	case *Not, *IsNull, *In:
		return storage.KindBool, nil
	case *Neg:
		return TypeOf(v.E, schema)
	case *Func:
		impl, ok := LookupFunc(v.Name)
		if !ok {
			return 0, fmt.Errorf("expr: unknown function %q", v.Name)
		}
		if len(v.Args) < impl.MinArgs || len(v.Args) > impl.MaxArgs {
			return 0, fmt.Errorf("expr: %s takes %d..%d args, got %d",
				v.Name, impl.MinArgs, impl.MaxArgs, len(v.Args))
		}
		for _, a := range v.Args {
			if _, err := TypeOf(a, schema); err != nil {
				return 0, err
			}
		}
		return impl.RetType, nil
	default:
		return 0, fmt.Errorf("expr: unknown expression %T", e)
	}
}

// Compile binds e to the schema and returns an evaluator. Compilation
// resolves all column indices up front so evaluation is index-based, and
// folds row-independent subtrees (no column references, no function calls)
// to a single precomputed value.
func Compile(e Expr, schema *storage.Schema) (Compiled, error) {
	c, err := compileNode(e, schema)
	if err != nil {
		return nil, err
	}
	if _, already := e.(*Const); !already && isConstExpr(e) {
		v := c(nil)
		return func(storage.Row) storage.Value { return v }, nil
	}
	return c, nil
}

// isConstExpr reports whether e evaluates to the same value for every row.
// Function calls are deliberately never folded so a future non-pure builtin
// cannot be miscompiled.
func isConstExpr(e Expr) bool {
	switch v := e.(type) {
	case *Const:
		return true
	case *BinOp:
		return isConstExpr(v.L) && isConstExpr(v.R)
	case *Not:
		return isConstExpr(v.E)
	case *Neg:
		return isConstExpr(v.E)
	case *IsNull:
		return isConstExpr(v.E)
	case *In:
		if !isConstExpr(v.E) {
			return false
		}
		for _, it := range v.Items {
			if !isConstExpr(it) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func compileNode(e Expr, schema *storage.Schema) (Compiled, error) {
	switch v := e.(type) {
	case *ColRef:
		i := schema.Index(v.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in schema %s", v.Name, schema)
		}
		return func(row storage.Row) storage.Value { return row[i] }, nil
	case *Const:
		val := v.Val
		return func(storage.Row) storage.Value { return val }, nil
	case *BinOp:
		l, err := Compile(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(v.R, schema)
		if err != nil {
			return nil, err
		}
		return compileBinOp(v.Op, l, r)
	case *Not:
		in, err := Compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return func(row storage.Row) storage.Value {
			x := in(row)
			if x.IsNull() {
				return storage.Null
			}
			return storage.BoolValue(!x.Bool())
		}, nil
	case *Neg:
		in, err := Compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return func(row storage.Row) storage.Value {
			x := in(row)
			switch x.Kind {
			case storage.KindInt:
				return storage.IntValue(-x.I)
			case storage.KindFloat:
				return storage.FloatValue(-x.F)
			default:
				return storage.Null
			}
		}, nil
	case *IsNull:
		in, err := Compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		neg := v.Neg
		return func(row storage.Row) storage.Value {
			isNull := in(row).IsNull()
			if neg {
				isNull = !isNull
			}
			return storage.BoolValue(isNull)
		}, nil
	case *In:
		in, err := Compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		items := make([]Compiled, len(v.Items))
		for i, it := range v.Items {
			c, err := Compile(it, schema)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		neg := v.Neg
		return func(row storage.Row) storage.Value {
			x := in(row)
			if x.IsNull() {
				return storage.Null
			}
			found := false
			for _, it := range items {
				if storage.Equal(x, it(row)) {
					found = true
					break
				}
			}
			if neg {
				found = !found
			}
			return storage.BoolValue(found)
		}, nil
	case *Func:
		impl, ok := LookupFunc(v.Name)
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", v.Name)
		}
		if len(v.Args) < impl.MinArgs || len(v.Args) > impl.MaxArgs {
			return nil, fmt.Errorf("expr: %s takes %d..%d args, got %d",
				v.Name, impl.MinArgs, impl.MaxArgs, len(v.Args))
		}
		args := make([]Compiled, len(v.Args))
		for i, a := range v.Args {
			c, err := Compile(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		fn := impl.Eval
		// Scratch argument buffer reused across rows; this is what makes a
		// Compiled evaluator single-goroutine (see the Compiled doc).
		vals := make([]storage.Value, len(args))
		return func(row storage.Row) storage.Value {
			for i, a := range args {
				vals[i] = a(row)
			}
			return fn(vals)
		}, nil
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

func compileBinOp(op string, l, r Compiled) (Compiled, error) {
	switch op {
	case "AND":
		return func(row storage.Row) storage.Value {
			lv := l(row)
			if !lv.IsNull() && !lv.Bool() {
				return storage.BoolValue(false)
			}
			rv := r(row)
			if !rv.IsNull() && !rv.Bool() {
				return storage.BoolValue(false)
			}
			if lv.IsNull() || rv.IsNull() {
				return storage.Null
			}
			return storage.BoolValue(true)
		}, nil
	case "OR":
		return func(row storage.Row) storage.Value {
			lv := l(row)
			if !lv.IsNull() && lv.Bool() {
				return storage.BoolValue(true)
			}
			rv := r(row)
			if !rv.IsNull() && rv.Bool() {
				return storage.BoolValue(true)
			}
			if lv.IsNull() || rv.IsNull() {
				return storage.Null
			}
			return storage.BoolValue(false)
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(row storage.Row) storage.Value {
			lv, rv := l(row), r(row)
			if lv.IsNull() || rv.IsNull() {
				return storage.Null
			}
			c := storage.Compare(lv, rv)
			var out bool
			switch op {
			case "=":
				out = c == 0
			case "!=":
				out = c != 0
			case "<":
				out = c < 0
			case "<=":
				out = c <= 0
			case ">":
				out = c > 0
			case ">=":
				out = c >= 0
			}
			return storage.BoolValue(out)
		}, nil
	case "LIKE":
		return func(row storage.Row) storage.Value {
			lv, rv := l(row), r(row)
			if lv.IsNull() || rv.IsNull() {
				return storage.Null
			}
			return storage.BoolValue(likeMatch(lv.String(), rv.String()))
		}, nil
	case "+", "-", "*", "/", "%":
		return func(row storage.Row) storage.Value {
			lv, rv := l(row), r(row)
			if lv.IsNull() || rv.IsNull() {
				return storage.Null
			}
			return arith(op, lv, rv)
		}, nil
	default:
		return nil, fmt.Errorf("expr: unknown operator %q", op)
	}
}

func arith(op string, a, b storage.Value) storage.Value {
	if a.Kind == storage.KindInt && b.Kind == storage.KindInt && op != "/" {
		switch op {
		case "+":
			return storage.IntValue(a.I + b.I)
		case "-":
			return storage.IntValue(a.I - b.I)
		case "*":
			return storage.IntValue(a.I * b.I)
		case "%":
			if b.I == 0 {
				return storage.Null
			}
			return storage.IntValue(a.I % b.I)
		}
	}
	af, ok1 := a.AsFloat()
	bf, ok2 := b.AsFloat()
	if !ok1 || !ok2 {
		return storage.Null
	}
	switch op {
	case "+":
		return storage.FloatValue(af + bf)
	case "-":
		return storage.FloatValue(af - bf)
	case "*":
		return storage.FloatValue(af * bf)
	case "/":
		if bf == 0 {
			return storage.Null
		}
		return storage.FloatValue(af / bf)
	case "%":
		if bf == 0 {
			return storage.Null
		}
		return storage.FloatValue(float64(int64(af) % int64(bf)))
	default:
		return storage.Null
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern segments split on %.
	segs := strings.Split(pattern, "%")
	if len(segs) == 1 {
		return underscoreMatch(s, pattern)
	}
	// First segment must anchor at the start.
	first := segs[0]
	if len(s) < len(first) || !underscoreMatch(s[:len(first)], first) {
		return false
	}
	s = s[len(first):]
	// Last segment must anchor at the end.
	last := segs[len(segs)-1]
	if len(s) < len(last) || !underscoreMatch(s[len(s)-len(last):], last) {
		return false
	}
	s = s[:len(s)-len(last)]
	// Middle segments must appear in order.
	for _, seg := range segs[1 : len(segs)-1] {
		if seg == "" {
			continue
		}
		idx := indexUnderscore(s, seg)
		if idx < 0 {
			return false
		}
		s = s[idx+len(seg):]
	}
	return true
}

func underscoreMatch(s, pattern string) bool {
	if len(s) != len(pattern) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if pattern[i] != '_' && pattern[i] != s[i] {
			return false
		}
	}
	return true
}

func indexUnderscore(s, seg string) int {
	for i := 0; i+len(seg) <= len(s); i++ {
		if underscoreMatch(s[i:i+len(seg)], seg) {
			return i
		}
	}
	return -1
}

package expr

import (
	"math"
	"math/rand"
	"testing"

	"miso/internal/storage"
)

// batchTestSchema declares one column per kind plus a second int column so
// vec-vec kernels get exercised. Columns deliberately hold occasional
// off-kind values (via the mixed generator) to hit the generic paths.
func batchTestSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s, err := storage.NewSchema(
		storage.Column{Name: "i", Type: storage.KindInt},
		storage.Column{Name: "j", Type: storage.KindInt},
		storage.Column{Name: "f", Type: storage.KindFloat},
		storage.Column{Name: "s", Type: storage.KindString},
		storage.Column{Name: "b", Type: storage.KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randBatchRows(rng *rand.Rand, n int, mixed bool) []storage.Row {
	rows := make([]storage.Row, n)
	strs := []string{"", "en", "es", "meta", "m_ta", "12.5", "-3", "zz"}
	for i := range rows {
		r := storage.Row{
			storage.IntValue(rng.Int63n(20) - 10),
			storage.IntValue(rng.Int63n(20) - 10),
			storage.FloatValue(rng.NormFloat64() * 5),
			storage.StringValue(strs[rng.Intn(len(strs))]),
			storage.BoolValue(rng.Intn(2) == 0),
		}
		for c := range r {
			switch {
			case rng.Intn(5) == 0:
				r[c] = storage.Null
			case mixed && rng.Intn(6) == 0:
				// Off-kind value: degrades the column vector to generic.
				r[c] = storage.StringValue("7")
			}
		}
		if rng.Intn(10) == 0 {
			r[2] = storage.FloatValue(math.Copysign(0, -1))
		}
		rows[i] = r
	}
	return rows
}

func batchTestExprs() map[string]Expr {
	col := func(n string) Expr { return &ColRef{Name: n} }
	ic := func(i int64) Expr { return &Const{Val: storage.IntValue(i)} }
	sc := func(s string) Expr { return &Const{Val: storage.StringValue(s)} }
	bin := func(op string, l, r Expr) Expr { return &BinOp{Op: op, L: l, R: r} }
	return map[string]Expr{
		"cmp_int_const":   bin(">", col("i"), ic(2)),
		"cmp_const_int":   bin("<=", ic(0), col("i")),
		"cmp_str_const":   bin("=", col("s"), sc("en")),
		"cmp_vec_vec":     bin("<", col("i"), col("j")),
		"cmp_int_float":   bin(">=", col("i"), col("f")),
		"cmp_mixed_kinds": bin("=", col("s"), col("i")),
		"arith_int_const": bin("+", col("i"), ic(3)),
		"arith_const_int": bin("-", ic(100), col("i")),
		"arith_mul":       bin("*", col("i"), col("j")),
		"arith_div":       bin("/", col("f"), col("i")),
		"arith_mod_int":   bin("%", col("i"), col("j")),
		"arith_mod_zero":  bin("%", col("i"), ic(0)),
		"arith_float_mod": bin("%", col("f"), col("j")),
		"arith_str_num":   bin("+", col("s"), ic(1)),
		"arith_bool":      bin("*", col("b"), col("i")),
		"and":             bin("AND", bin(">", col("i"), ic(0)), bin("<", col("j"), ic(5))),
		"or":              bin("OR", bin("=", col("s"), sc("en")), col("b")),
		"and_nonbool":     bin("AND", col("i"), col("s")),
		"not":             &Not{E: bin(">", col("f"), ic(0))},
		"neg_int":         &Neg{E: col("i")},
		"neg_float":       &Neg{E: col("f")},
		"neg_str":         &Neg{E: col("s")},
		"is_null":         &IsNull{E: col("f")},
		"is_not_null":     &IsNull{E: col("s"), Neg: true},
		"in_const":        &In{E: col("s"), Items: []Expr{sc("en"), sc("es")}},
		"in_dyn":          &In{E: col("i"), Items: []Expr{col("j"), ic(1)}},
		"not_in":          &In{E: col("i"), Items: []Expr{ic(1), ic(2)}, Neg: true},
		"like_const":      bin("LIKE", col("s"), sc("m%a")),
		"like_underscore": bin("LIKE", col("s"), sc("m_ta")),
		"like_vec":        bin("LIKE", col("s"), col("s")),
		"func_upper":      &Func{Name: "UPPER", Args: []Expr{col("s")}},
		"func_in_and":     bin("AND", bin(">", &Func{Name: "LENGTH", Args: []Expr{col("s")}}, ic(1)), col("b")),
		"func_in_cmp":     bin(">", &Func{Name: "SENTIMENT", Args: []Expr{col("s")}}, ic(0)),
		"const_fold":      bin("+", ic(2), ic(3)),
		"const_null_cmp":  bin("=", col("i"), &Const{Val: storage.Null}),
		"nested":          bin("AND", bin(">", bin("*", col("i"), ic(2)), col("j")), &IsNull{E: col("f"), Neg: true}),
	}
}

func valuesBitEqual(a, b storage.Value) bool {
	return a.Kind == b.Kind && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

// TestCompileBatchMatchesCompile is the core equivalence check: for every
// expression shape, the batch evaluator must return bit-identical values to
// the row evaluator, with and without a selection vector, on clean and
// mixed-kind (generic-degraded) inputs.
func TestCompileBatchMatchesCompile(t *testing.T) {
	schema := batchTestSchema(t)
	rng := rand.New(rand.NewSource(42))
	for name, e := range batchTestExprs() {
		for _, mixed := range []bool{false, true} {
			rows := randBatchRows(rng, 257, mixed)
			rowEval, err := Compile(e, schema)
			if err != nil {
				t.Fatalf("%s: Compile: %v", name, err)
			}
			batchEval, err := CompileBatch(e, schema)
			if err != nil {
				t.Fatalf("%s: CompileBatch: %v", name, err)
			}
			b := NewBatch(schema)
			b.Reset(rows)

			// Full batch.
			out := batchEval(b, nil)
			if out.Len() != len(rows) {
				t.Fatalf("%s mixed=%v: batch len %d want %d", name, mixed, out.Len(), len(rows))
			}
			for i, r := range rows {
				want := rowEval(r)
				if got := out.Value(i); !valuesBitEqual(got, want) {
					t.Fatalf("%s mixed=%v row %d: batch %#v row-eval %#v", name, mixed, i, got, want)
				}
			}

			// Random selection (possibly empty), evaluated densely.
			var sel []int32
			for i := range rows {
				if rng.Intn(3) == 0 {
					sel = append(sel, int32(i))
				}
			}
			out = batchEval(b, sel)
			if out.Len() != len(sel) {
				t.Fatalf("%s mixed=%v: sel len %d want %d", name, mixed, out.Len(), len(sel))
			}
			for j, i := range sel {
				want := rowEval(rows[i])
				if got := out.Value(j); !valuesBitEqual(got, want) {
					t.Fatalf("%s mixed=%v sel %d (row %d): batch %#v row-eval %#v", name, mixed, j, i, got, want)
				}
			}
		}
	}
}

// TestRefineSelection checks the predicate-chain helper: refining a dense
// predicate result keeps exactly the rows the row evaluator keeps.
func TestRefineSelection(t *testing.T) {
	schema := batchTestSchema(t)
	rng := rand.New(rand.NewSource(5))
	rows := randBatchRows(rng, 300, true)
	p1, err := CompileBatch(&BinOp{Op: ">", L: &ColRef{Name: "i"}, R: &Const{Val: storage.IntValue(0)}}, schema)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileBatch(&BinOp{Op: "<", L: &ColRef{Name: "j"}, R: &Const{Val: storage.IntValue(4)}}, schema)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := Compile(&BinOp{Op: ">", L: &ColRef{Name: "i"}, R: &Const{Val: storage.IntValue(0)}}, schema)
	r2, _ := Compile(&BinOp{Op: "<", L: &ColRef{Name: "j"}, R: &Const{Val: storage.IntValue(4)}}, schema)

	b := NewBatch(schema)
	b.Reset(rows)
	sel := p1(b, nil).TruesInto(nil, 0)
	sel = RefineSelection(sel, p2(b, sel))

	var want []int32
	for i, r := range rows {
		v1, v2 := r1(r), r2(r)
		if !v1.IsNull() && v1.Bool() && !v2.IsNull() && v2.Bool() {
			want = append(want, int32(i))
		}
	}
	if len(sel) != len(want) {
		t.Fatalf("refined sel len %d want %d", len(sel), len(want))
	}
	for i := range sel {
		if sel[i] != want[i] {
			t.Fatalf("sel[%d]=%d want %d", i, sel[i], want[i])
		}
	}
}

// TestBatchColLazyTranspose verifies columns transpose on first touch and
// reuse their storage across Reset.
func TestBatchColLazyTranspose(t *testing.T) {
	schema := batchTestSchema(t)
	rng := rand.New(rand.NewSource(9))
	rows := randBatchRows(rng, 64, false)
	b := NewBatch(schema)
	b.Reset(rows)
	c := b.Col(0)
	if c.Len() != len(rows) {
		t.Fatalf("col len %d want %d", c.Len(), len(rows))
	}
	if b.Col(0) != c {
		t.Fatal("second Col call rebuilt the vector")
	}
	b.Reset(rows[:10])
	if got := b.Col(0).Len(); got != 10 {
		t.Fatalf("after Reset col len %d want 10", got)
	}
}

package expr

import (
	"testing"
	"testing/quick"

	"miso/internal/storage"
)

func col(n string) Expr             { return &ColRef{Name: n} }
func ci(i int64) Expr               { return &Const{Val: storage.IntValue(i)} }
func cs(s string) Expr              { return &Const{Val: storage.StringValue(s)} }
func bin(op string, l, r Expr) Expr { return &BinOp{Op: op, L: l, R: r} }

var testSchema = storage.MustSchema(
	storage.Column{Name: "a", Type: storage.KindInt},
	storage.Column{Name: "b", Type: storage.KindInt},
	storage.Column{Name: "s", Type: storage.KindString},
	storage.Column{Name: "f", Type: storage.KindFloat},
)

func row(a, b int64, s string, f float64) storage.Row {
	return storage.Row{storage.IntValue(a), storage.IntValue(b), storage.StringValue(s), storage.FloatValue(f)}
}

func eval(t *testing.T, e Expr, r storage.Row) storage.Value {
	t.Helper()
	c, err := Compile(e, testSchema)
	if err != nil {
		t.Fatalf("compile %s: %v", e.Canon(), err)
	}
	return c(r)
}

func TestCanonCommutativity(t *testing.T) {
	pairs := [][2]Expr{
		{bin("=", col("a"), ci(1)), bin("=", ci(1), col("a"))},
		{bin("AND", col("a"), col("b")), bin("AND", col("b"), col("a"))},
		{bin("+", col("a"), col("b")), bin("+", col("b"), col("a"))},
		{bin(">", col("a"), col("b")), bin("<", col("b"), col("a"))},
		{bin(">=", col("a"), col("b")), bin("<=", col("b"), col("a"))},
	}
	for _, p := range pairs {
		if p[0].Canon() != p[1].Canon() {
			t.Errorf("canon mismatch: %q vs %q", p[0].Canon(), p[1].Canon())
		}
	}
	// Non-commutative ops must NOT collide.
	if bin("-", col("a"), col("b")).Canon() == bin("-", col("b"), col("a")).Canon() {
		t.Error("a-b and b-a collided")
	}
	if bin("LIKE", col("s"), cs("x")).Canon() == bin("LIKE", cs("x"), col("s")).Canon() {
		t.Error("LIKE canon commuted")
	}
}

func TestInCanonSortsItems(t *testing.T) {
	a := &In{E: col("a"), Items: []Expr{ci(2), ci(1)}}
	b := &In{E: col("a"), Items: []Expr{ci(1), ci(2)}}
	if a.Canon() != b.Canon() {
		t.Errorf("IN canon order-sensitive: %q vs %q", a.Canon(), b.Canon())
	}
}

func TestConjunctsRoundtrip(t *testing.T) {
	e := bin("AND", bin("AND", bin("=", col("a"), ci(1)), bin("<", col("b"), ci(5))),
		bin("LIKE", col("s"), cs("x%")))
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("conjuncts = %d", len(cj))
	}
	back := AndAll(cj)
	if back.Canon() != e.Canon() {
		t.Errorf("AndAll(Conjuncts(e)) = %q, want %q", back.Canon(), e.Canon())
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestColumnsAndRename(t *testing.T) {
	e := bin("AND", bin("=", col("a"), ci(1)),
		&Func{Name: "SENTIMENT", Args: []Expr{col("s")}})
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "s" {
		t.Errorf("Columns = %v", cols)
	}
	r := Rename(e, map[string]string{"a": "t.a"})
	rcols := Columns(r)
	if rcols[0] != "s" || rcols[1] != "t.a" {
		t.Errorf("renamed columns = %v", rcols)
	}
	// The original is unchanged.
	if Columns(e)[0] != "a" {
		t.Error("Rename mutated original")
	}
}

func TestUsesUDF(t *testing.T) {
	if UsesUDF(bin("=", col("a"), ci(1))) {
		t.Error("plain comparison flagged as UDF")
	}
	if !UsesUDF(&Func{Name: "SENTIMENT", Args: []Expr{col("s")}}) {
		t.Error("SENTIMENT not flagged")
	}
	if UsesUDF(&Func{Name: "UPPER", Args: []Expr{col("s")}}) {
		t.Error("builtin UPPER flagged as UDF")
	}
	// Nested.
	nested := bin("AND", ci(1), &Not{E: &Func{Name: "IS_WEEKEND", Args: []Expr{col("a")}}})
	if !UsesUDF(nested) {
		t.Error("nested UDF not found")
	}
}

func TestEvalComparisons(t *testing.T) {
	r := row(3, 5, "hello", 2.5)
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin("=", col("a"), ci(3)), true},
		{bin("!=", col("a"), ci(3)), false},
		{bin("<", col("a"), col("b")), true},
		{bin(">=", col("b"), ci(5)), true},
		{bin("LIKE", col("s"), cs("he%")), true},
		{bin("LIKE", col("s"), cs("%lo")), true},
		{bin("LIKE", col("s"), cs("h_llo")), true},
		{bin("LIKE", col("s"), cs("x%")), false},
		{&In{E: col("a"), Items: []Expr{ci(1), ci(3)}}, true},
		{&In{E: col("a"), Items: []Expr{ci(1)}, Neg: true}, true},
		{&IsNull{E: col("a")}, false},
		{&IsNull{E: col("a"), Neg: true}, true},
		{&Not{E: bin("=", col("a"), ci(3))}, false},
	}
	for _, c := range cases {
		got := eval(t, c.e, r)
		if got.Kind != storage.KindBool || got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.e.Canon(), got, c.want)
		}
	}
}

func TestEvalNullSemantics(t *testing.T) {
	r := storage.Row{storage.Null, storage.IntValue(1), storage.Null, storage.FloatValue(0)}
	// NULL = 1 is NULL.
	if got := eval(t, bin("=", col("a"), ci(1)), r); !got.IsNull() {
		t.Errorf("NULL = 1 -> %v", got)
	}
	// NULL AND FALSE is FALSE (three-valued logic short circuit).
	f := bin("=", col("b"), ci(2)) // false
	if got := eval(t, bin("AND", &IsNull{E: col("b")}, f), r); got.IsNull() || got.Bool() {
		t.Errorf("false AND x -> %v", got)
	}
	// NULL OR TRUE is TRUE.
	tr := bin("=", col("b"), ci(1))
	nullCmp := bin("=", col("a"), ci(1))
	if got := eval(t, bin("OR", nullCmp, tr), r); !got.Bool() {
		t.Errorf("NULL OR true -> %v", got)
	}
	// NULL arithmetic is NULL.
	if got := eval(t, bin("+", col("a"), ci(1)), r); !got.IsNull() {
		t.Errorf("NULL + 1 -> %v", got)
	}
}

func TestEvalArithmetic(t *testing.T) {
	r := row(7, 2, "", 1.5)
	cases := []struct {
		e    Expr
		want storage.Value
	}{
		{bin("+", col("a"), col("b")), storage.IntValue(9)},
		{bin("-", col("a"), col("b")), storage.IntValue(5)},
		{bin("*", col("a"), col("b")), storage.IntValue(14)},
		{bin("%", col("a"), col("b")), storage.IntValue(1)},
		{bin("/", col("a"), col("b")), storage.FloatValue(3.5)},
		{bin("+", col("a"), col("f")), storage.FloatValue(8.5)},
		{&Neg{E: col("a")}, storage.IntValue(-7)},
	}
	for _, c := range cases {
		got := eval(t, c.e, r)
		if !storage.Equal(got, c.want) || got.Kind != c.want.Kind {
			t.Errorf("%s = %v (%v), want %v (%v)", c.e.Canon(), got, got.Kind, c.want, c.want.Kind)
		}
	}
	// Division and modulo by zero yield NULL, not a panic.
	zero := bin("-", col("b"), col("b"))
	if got := eval(t, bin("/", col("a"), zero), r); !got.IsNull() {
		t.Errorf("x/0 -> %v", got)
	}
	if got := eval(t, bin("%", col("a"), zero), r); !got.IsNull() {
		t.Errorf("x%%0 -> %v", got)
	}
}

func TestBuiltins(t *testing.T) {
	r := row(1, 2, "Hello", 3.7)
	cases := []struct {
		name string
		args []Expr
		want storage.Value
	}{
		{"UPPER", []Expr{col("s")}, storage.StringValue("HELLO")},
		{"LOWER", []Expr{col("s")}, storage.StringValue("hello")},
		{"LENGTH", []Expr{col("s")}, storage.IntValue(5)},
		{"SUBSTR", []Expr{col("s"), ci(2), ci(3)}, storage.StringValue("ell")},
		{"ABS", []Expr{&Neg{E: col("b")}}, storage.IntValue(2)},
		{"ROUND", []Expr{col("f")}, storage.IntValue(4)},
		{"CONCAT", []Expr{col("s"), cs("!")}, storage.StringValue("Hello!")},
	}
	for _, c := range cases {
		got := eval(t, &Func{Name: c.name, Args: c.args}, r)
		if !storage.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTimeBuiltins(t *testing.T) {
	// 2013-01-05 was a Saturday.
	sat := int64(1357344000)
	r := storage.Row{storage.IntValue(sat), storage.IntValue(0), storage.Null, storage.Null}
	if got := eval(t, &Func{Name: "YEAR", Args: []Expr{col("a")}}, r); got.I != 2013 {
		t.Errorf("YEAR = %v", got)
	}
	if got := eval(t, &Func{Name: "MONTH", Args: []Expr{col("a")}}, r); got.I != 1 {
		t.Errorf("MONTH = %v", got)
	}
	if got := eval(t, &Func{Name: "IS_WEEKEND", Args: []Expr{col("a")}}, r); !got.Bool() {
		t.Errorf("IS_WEEKEND(saturday) = %v", got)
	}
}

func TestUDFImplementations(t *testing.T) {
	r := storage.Row{storage.IntValue(0), storage.IntValue(0),
		storage.StringValue("amazing pizza but terrible line"), storage.Null}
	got := eval(t, &Func{Name: "SENTIMENT", Args: []Expr{col("s")}}, r)
	if got.F != 0 { // amazing(+1) terrible(-1)
		t.Errorf("SENTIMENT = %v", got)
	}
	got = eval(t, &Func{Name: "TOPIC", Args: []Expr{col("s")}}, r)
	if got.S != "dining" {
		t.Errorf("TOPIC = %v", got)
	}
	inf := eval(t, &Func{Name: "INFLUENCE", Args: []Expr{ci(10), ci(2000)}}, r)
	if inf.F != 102 {
		t.Errorf("INFLUENCE = %v", inf)
	}
	cell := eval(t, &Func{Name: "GEO_CELL", Args: []Expr{&Const{Val: storage.FloatValue(37.7)}, &Const{Val: storage.FloatValue(-122.4)}}}, r)
	if cell.S != "cell_37_122" {
		t.Errorf("GEO_CELL = %v", cell)
	}
}

func TestTypeOf(t *testing.T) {
	cases := []struct {
		e    Expr
		want storage.Kind
	}{
		{col("a"), storage.KindInt},
		{col("s"), storage.KindString},
		{bin("=", col("a"), ci(1)), storage.KindBool},
		{bin("+", col("a"), col("b")), storage.KindInt},
		{bin("+", col("a"), col("f")), storage.KindFloat},
		{bin("/", col("a"), col("b")), storage.KindFloat},
		{&Func{Name: "LENGTH", Args: []Expr{col("s")}}, storage.KindInt},
		{&Func{Name: "SENTIMENT", Args: []Expr{col("s")}}, storage.KindFloat},
	}
	for _, c := range cases {
		got, err := TypeOf(c.e, testSchema)
		if err != nil {
			t.Fatalf("TypeOf(%s): %v", c.e.Canon(), err)
		}
		if got != c.want {
			t.Errorf("TypeOf(%s) = %v, want %v", c.e.Canon(), got, c.want)
		}
	}
	if _, err := TypeOf(col("nope"), testSchema); err == nil {
		t.Error("unknown column typed successfully")
	}
	if _, err := TypeOf(&Func{Name: "NOPE"}, testSchema); err == nil {
		t.Error("unknown function typed successfully")
	}
	if _, err := TypeOf(&Func{Name: "UPPER"}, testSchema); err == nil {
		t.Error("arity error not caught")
	}
}

// TestLikeMatchesReferenceImpl cross-checks the LIKE matcher against a
// simple recursive reference implementation on random inputs.
func TestLikeMatchesReferenceImpl(t *testing.T) {
	var ref func(s, p string) bool
	ref = func(s, p string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if ref(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && ref(s[1:], p[1:])
		default:
			return s != "" && s[0] == p[0] && ref(s[1:], p[1:])
		}
	}
	alphabet := []byte("ab%_")
	gen := func(seed uint64, n int) string {
		out := make([]byte, n)
		for i := range out {
			seed = seed*6364136223846793005 + 1442695040888963407
			out[i] = alphabet[seed>>60&3]
		}
		return string(out)
	}
	prop := func(seed uint64) bool {
		s := gen(seed, int(seed%6))
		// Strings contain only a/b; patterns may contain wildcards.
		s = replaceAll(s, '%', 'a')
		s = replaceAll(s, '_', 'b')
		p := gen(seed>>7, int(seed>>3%6))
		return likeMatch(s, p) == ref(s, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func replaceAll(s string, old, new byte) string {
	b := []byte(s)
	for i := range b {
		if b[i] == old {
			b[i] = new
		}
	}
	return string(b)
}

func TestRegisterAndLookup(t *testing.T) {
	if _, ok := LookupFunc("UPPER"); !ok {
		t.Error("UPPER missing")
	}
	if _, ok := LookupFunc("SENTIMENT"); !ok {
		t.Error("SENTIMENT missing")
	}
	names := UDFNames()
	if len(names) < 5 {
		t.Errorf("UDFs registered = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("UDFNames not sorted")
		}
	}
	if IsAggregateName("COUNT") != true || IsAggregateName("UPPER") != false {
		t.Error("IsAggregateName wrong")
	}
}

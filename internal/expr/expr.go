// Package expr defines the scalar expression language shared by the logical
// plan and the execution engines: typed expression trees with canonical
// string forms (used for view identity and subsumption), a compiler from
// trees to row-level evaluators, builtin scalar functions, and the UDF
// registry. UDFs are arbitrary user code that can only execute in the big
// data store (HV); the registry records that restriction so the multistore
// optimizer never places them in DW.
package expr

import (
	"sort"
	"strings"

	"miso/internal/storage"
)

// Expr is a scalar expression over named columns.
type Expr interface {
	// Canon returns a canonical string form: commutative operands are
	// sorted so semantically identical predicates written in different
	// orders collide, which is what view matching needs.
	Canon() string
	// Walk visits this node and all descendants.
	Walk(fn func(Expr))
}

// ColRef references a column of the input schema by its resolved name.
type ColRef struct {
	Name string
}

// Canon implements Expr.
func (e *ColRef) Canon() string { return e.Name }

// Walk implements Expr.
func (e *ColRef) Walk(fn func(Expr)) { fn(e) }

// Const is a literal value.
type Const struct {
	Val storage.Value
}

// Canon implements Expr.
func (e *Const) Canon() string {
	if e.Val.Kind == storage.KindString {
		return "'" + e.Val.S + "'"
	}
	return e.Val.String()
}

// Walk implements Expr.
func (e *Const) Walk(fn func(Expr)) { fn(e) }

// BinOp is a binary operation; Op ∈ {AND OR = != < <= > >= + - * / % LIKE}.
type BinOp struct {
	Op   string
	L, R Expr
}

// commutative ops whose operands are sorted in Canon.
var commutative = map[string]bool{"AND": true, "OR": true, "=": true, "!=": true, "+": true, "*": true}

// Canon implements Expr.
func (e *BinOp) Canon() string {
	l, r := e.L.Canon(), e.R.Canon()
	op := e.Op
	if commutative[op] && r < l {
		l, r = r, l
	}
	// Normalize flipped inequalities: a > b always becomes b < a, so the
	// two spellings of the same comparison share one canonical form.
	switch op {
	case ">":
		l, r, op = r, l, "<"
	case ">=":
		l, r, op = r, l, "<="
	}
	return "(" + l + " " + op + " " + r + ")"
}

// Walk implements Expr.
func (e *BinOp) Walk(fn func(Expr)) {
	fn(e)
	e.L.Walk(fn)
	e.R.Walk(fn)
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Canon implements Expr.
func (e *Not) Canon() string { return "(NOT " + e.E.Canon() + ")" }

// Walk implements Expr.
func (e *Not) Walk(fn func(Expr)) { fn(e); e.E.Walk(fn) }

// Neg is unary numeric negation.
type Neg struct {
	E Expr
}

// Canon implements Expr.
func (e *Neg) Canon() string { return "(- " + e.E.Canon() + ")" }

// Walk implements Expr.
func (e *Neg) Walk(fn func(Expr)) { fn(e); e.E.Walk(fn) }

// Func is a scalar function call: builtin or UDF.
type Func struct {
	Name string // upper case
	Args []Expr
}

// Canon implements Expr.
func (e *Func) Canon() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Canon()
	}
	return e.Name + "(" + strings.Join(args, ",") + ")"
}

// Walk implements Expr.
func (e *Func) Walk(fn func(Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.Walk(fn)
	}
}

// IsUDF reports whether the call names a registered user-defined function.
func (e *Func) IsUDF() bool {
	_, ok := udfs[e.Name]
	return ok
}

// IsNull tests for NULL.
type IsNull struct {
	E   Expr
	Neg bool
}

// Canon implements Expr.
func (e *IsNull) Canon() string {
	if e.Neg {
		return "(" + e.E.Canon() + " IS NOT NULL)"
	}
	return "(" + e.E.Canon() + " IS NULL)"
}

// Walk implements Expr.
func (e *IsNull) Walk(fn func(Expr)) { fn(e); e.E.Walk(fn) }

// In tests membership in a literal list.
type In struct {
	E     Expr
	Items []Expr
	Neg   bool
}

// Canon implements Expr.
func (e *In) Canon() string {
	items := make([]string, len(e.Items))
	for i, it := range e.Items {
		items[i] = it.Canon()
	}
	sort.Strings(items)
	neg := ""
	if e.Neg {
		neg = "NOT "
	}
	return "(" + e.E.Canon() + " " + neg + "IN [" + strings.Join(items, ",") + "])"
}

// Walk implements Expr.
func (e *In) Walk(fn func(Expr)) {
	fn(e)
	e.E.Walk(fn)
	for _, it := range e.Items {
		it.Walk(fn)
	}
}

// Columns returns the set of column names referenced by e, sorted.
func Columns(e Expr) []string {
	set := map[string]bool{}
	e.Walk(func(x Expr) {
		if c, ok := x.(*ColRef); ok {
			set[c.Name] = true
		}
	})
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// UsesUDF reports whether any function call in e is a registered UDF.
func UsesUDF(e Expr) bool {
	found := false
	e.Walk(func(x Expr) {
		if f, ok := x.(*Func); ok && f.IsUDF() {
			found = true
		}
	})
	return found
}

// Conjuncts splits a predicate on top-level ANDs into its conjuncts.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines conjuncts back into a predicate; nil for an empty list.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinOp{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// Rename returns a copy of e with column names mapped through ren; names
// absent from ren are kept.
func Rename(e Expr, ren map[string]string) Expr {
	switch v := e.(type) {
	case *ColRef:
		if n, ok := ren[v.Name]; ok {
			return &ColRef{Name: n}
		}
		return &ColRef{Name: v.Name}
	case *Const:
		return v
	case *BinOp:
		return &BinOp{Op: v.Op, L: Rename(v.L, ren), R: Rename(v.R, ren)}
	case *Not:
		return &Not{E: Rename(v.E, ren)}
	case *Neg:
		return &Neg{E: Rename(v.E, ren)}
	case *Func:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = Rename(a, ren)
		}
		return &Func{Name: v.Name, Args: args}
	case *IsNull:
		return &IsNull{E: Rename(v.E, ren), Neg: v.Neg}
	case *In:
		items := make([]Expr, len(v.Items))
		for i, it := range v.Items {
			items[i] = Rename(it, ren)
		}
		return &In{E: Rename(v.E, ren), Items: items, Neg: v.Neg}
	default:
		return e
	}
}

package expr

import (
	"fmt"

	"miso/internal/storage"
)

// Batch is a window of rows plus lazily-transposed column vectors, the unit
// the vectorized evaluators operate on. The executor resets one Batch per
// morsel; columns are transposed from the rows only when an evaluator first
// touches them, so expressions that read two of ten columns pay for two.
//
// Like Compiled, a Batch and every BatchCompiled bound to it are
// single-goroutine: evaluators reuse closure-owned scratch vectors between
// calls, so concurrent executors must compile one evaluator chain (and
// allocate one Batch) per worker. Evaluators compiled from the same
// expression and schema are interchangeable — they compute identical
// values.
type Batch struct {
	schema *storage.Schema
	rows   []storage.Row
	cols   []storage.Vector
	built  []bool
}

// NewBatch returns a Batch for rows of the given schema.
func NewBatch(schema *storage.Schema) *Batch {
	n := len(schema.Columns)
	return &Batch{schema: schema, cols: make([]storage.Vector, n), built: make([]bool, n)}
}

// Reset points the batch at a new window of rows, invalidating all column
// vectors (their capacity is kept). Vectors previously returned by
// evaluators bound to this batch are invalid after Reset.
func (b *Batch) Reset(rows []storage.Row) {
	b.rows = rows
	for i := range b.built {
		b.built[i] = false
	}
}

// Rows returns the current row window.
func (b *Batch) Rows() []storage.Row { return b.rows }

// Len returns the number of rows in the window.
func (b *Batch) Len() int { return len(b.rows) }

// Col returns column i as a vector, transposing it from the rows on first
// access since the last Reset. The vector is owned by the batch; callers
// must not modify it.
func (b *Batch) Col(i int) *storage.Vector {
	if !b.built[i] {
		b.cols[i].FromRows(b.rows, i, b.schema.Columns[i].Type)
		b.built[i] = true
	}
	return &b.cols[i]
}

// BatchCompiled evaluates an expression over a whole batch. With sel == nil
// it evaluates every row and returns a vector of Len elements; with a
// selection vector it evaluates only rows[sel[j]] and returns a dense
// vector of len(sel) elements in selection order. The returned vector is
// scratch owned by the evaluator (or by the batch, for bare column
// references): it is valid until the next call or the next Batch.Reset, and
// must not be modified.
//
// BatchCompiled inherits Compiled's single-goroutine contract: compile one
// evaluator per worker.
type BatchCompiled func(b *Batch, sel []int32) *storage.Vector

// CompileBatch binds e to the schema and returns a batch evaluator that
// computes, for every row, exactly the value Compile's row evaluator would.
// Comparisons, arithmetic, boolean connectives, LIKE, IN, IS NULL, negation
// and constants run as vectorized per-kind kernels; subtrees the compiler
// cannot vectorize — user-defined function calls, and connectives whose
// operands contain them (to preserve short-circuit evaluation around
// non-builtin code) — fall back to the row evaluator, batched over the
// selection.
func CompileBatch(e Expr, schema *storage.Schema) (BatchCompiled, error) {
	if _, already := e.(*Const); !already && isConstExpr(e) {
		c, err := Compile(e, schema)
		if err != nil {
			return nil, err
		}
		return broadcastKernel(c(nil)), nil
	}
	return compileBatchNode(e, schema)
}

// RefineSelection compacts sel to the entries whose corresponding element
// of v (dense over sel, as produced by evaluating a predicate with sel) is
// non-NULL and true. It writes in place and returns the shortened slice.
func RefineSelection(sel []int32, v *storage.Vector) []int32 {
	out := sel[:0]
	for j := range sel {
		if null, t := truthAt(v, j); !null && t {
			out = append(out, sel[j])
		}
	}
	return out
}

// HasFunc reports whether e contains a function call (builtin or UDF)
// anywhere in its tree. Such expressions cannot be fully vectorized —
// CompileBatch routes them through a row-at-a-time fallback — so operators
// that materialize per-row results anyway may prefer the plain Compile
// path for them and skip the vector round-trip.
func HasFunc(e Expr) bool { return containsFunc(e) }

func containsFunc(e Expr) bool {
	found := false
	e.Walk(func(x Expr) {
		if _, ok := x.(*Func); ok {
			found = true
		}
	})
	return found
}

// constValueOf folds a row-independent subtree to its value at compile
// time. It mirrors Compile's folding rule: function calls never fold.
func constValueOf(e Expr, schema *storage.Schema) (storage.Value, bool) {
	if !isConstExpr(e) {
		return storage.Null, false
	}
	c, err := Compile(e, schema)
	if err != nil {
		return storage.Null, false
	}
	return c(nil), true
}

func selLen(b *Batch, sel []int32) int {
	if sel == nil {
		return b.Len()
	}
	return len(sel)
}

// truthAt returns (isNull, truthy) for element i under Value.Bool
// semantics, without materializing a Value on typed vectors.
func truthAt(v *storage.Vector, i int) (bool, bool) {
	if v.Generic() {
		val := v.Vals[i]
		return val.IsNull(), val.Bool()
	}
	if v.NullAt(i) {
		return true, false
	}
	switch v.Kind() {
	case storage.KindInt, storage.KindBool:
		return false, v.Ints[i] != 0
	case storage.KindFloat:
		return false, v.Floats[i] != 0
	case storage.KindString:
		return false, v.Strs[i] != ""
	default:
		return true, false
	}
}

func isNumericKind(k storage.Kind) bool {
	switch k {
	case storage.KindInt, storage.KindFloat, storage.KindBool:
		return true
	default:
		return false
	}
}

// typedFloat reads the float64 image of a non-NULL element of a typed
// numeric vector — the same image Compare and HashInto use.
func typedFloat(v *storage.Vector, i int) float64 {
	if v.Kind() == storage.KindFloat {
		return v.Floats[i]
	}
	return float64(v.Ints[i])
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

func compileBatchNode(e Expr, schema *storage.Schema) (BatchCompiled, error) {
	switch v := e.(type) {
	case *ColRef:
		idx := schema.Index(v.Name)
		if idx < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in schema %s", v.Name, schema)
		}
		kind := schema.Columns[idx].Type
		out := &storage.Vector{}
		return func(b *Batch, sel []int32) *storage.Vector {
			if sel == nil {
				return b.Col(idx)
			}
			if b.built[idx] {
				out.Gather(&b.cols[idx], sel)
				return out
			}
			out.FromRowsSel(b.rows, idx, kind, sel)
			return out
		}, nil
	case *Const:
		return broadcastKernel(v.Val), nil
	case *BinOp:
		return compileBatchBinOp(v, schema)
	case *Not:
		in, err := compileBatchNode(v.E, schema)
		if err != nil {
			return nil, err
		}
		out := &storage.Vector{}
		return func(b *Batch, sel []int32) *storage.Vector {
			x := in(b, sel)
			n := x.Len()
			out.Reset(storage.KindBool)
			for i := 0; i < n; i++ {
				if null, t := truthAt(x, i); null {
					out.AppendNull()
				} else {
					out.AppendBool(!t)
				}
			}
			return out
		}, nil
	case *Neg:
		in, err := compileBatchNode(v.E, schema)
		if err != nil {
			return nil, err
		}
		out := &storage.Vector{}
		return func(b *Batch, sel []int32) *storage.Vector {
			x := in(b, sel)
			n := x.Len()
			if !x.Generic() {
				switch x.Kind() {
				case storage.KindInt:
					out.Reset(storage.KindInt)
					for i, xi := range x.Ints {
						if x.NullAt(i) {
							out.AppendNull()
						} else {
							out.AppendInt(-xi)
						}
					}
					return out
				case storage.KindFloat:
					out.Reset(storage.KindFloat)
					for i, xf := range x.Floats {
						if x.NullAt(i) {
							out.AppendNull()
						} else {
							out.AppendFloat(-xf)
						}
					}
					return out
				}
			}
			// Generic storage, or a kind whose negation is NULL.
			out.Reset(storage.KindNull)
			for i := 0; i < n; i++ {
				xv := x.Value(i)
				switch xv.Kind {
				case storage.KindInt:
					out.Append(storage.IntValue(-xv.I))
				case storage.KindFloat:
					out.Append(storage.FloatValue(-xv.F))
				default:
					out.AppendNull()
				}
			}
			return out
		}, nil
	case *IsNull:
		in, err := compileBatchNode(v.E, schema)
		if err != nil {
			return nil, err
		}
		neg := v.Neg
		out := &storage.Vector{}
		return func(b *Batch, sel []int32) *storage.Vector {
			x := in(b, sel)
			n := x.Len()
			out.Reset(storage.KindBool)
			for i := 0; i < n; i++ {
				isNull := x.NullAt(i)
				if neg {
					isNull = !isNull
				}
				out.AppendBool(isNull)
			}
			return out
		}, nil
	case *In:
		// The row evaluator probes items lazily, so function calls inside
		// the item list must keep their short-circuit behaviour.
		for _, it := range v.Items {
			if containsFunc(it) {
				return scalarFallback(e, schema)
			}
		}
		in, err := compileBatchNode(v.E, schema)
		if err != nil {
			return nil, err
		}
		var constItems []storage.Value
		var dynItems []BatchCompiled
		for _, it := range v.Items {
			if cv, ok := constValueOf(it, schema); ok {
				constItems = append(constItems, cv)
				continue
			}
			c, err := compileBatchNode(it, schema)
			if err != nil {
				return nil, err
			}
			dynItems = append(dynItems, c)
		}
		neg := v.Neg
		out := &storage.Vector{}
		dynVecs := make([]*storage.Vector, len(dynItems))
		return func(b *Batch, sel []int32) *storage.Vector {
			x := in(b, sel)
			n := x.Len()
			for k, it := range dynItems {
				dynVecs[k] = it(b, sel)
			}
			out.Reset(storage.KindBool)
			for i := 0; i < n; i++ {
				xv := x.Value(i)
				if xv.IsNull() {
					out.AppendNull()
					continue
				}
				found := false
				for _, cv := range constItems {
					if storage.Equal(xv, cv) {
						found = true
						break
					}
				}
				if !found {
					for _, dv := range dynVecs {
						if storage.Equal(xv, dv.Value(i)) {
							found = true
							break
						}
					}
				}
				if neg {
					found = !found
				}
				out.AppendBool(found)
			}
			return out
		}, nil
	case *Func:
		return scalarFallback(e, schema)
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

// broadcastKernel fills its scratch vector with one value per selected row.
func broadcastKernel(val storage.Value) BatchCompiled {
	out := &storage.Vector{}
	kind := val.Kind
	return func(b *Batch, sel []int32) *storage.Vector {
		n := selLen(b, sel)
		out.Reset(kind)
		for i := 0; i < n; i++ {
			out.Append(val)
		}
		return out
	}
}

// scalarFallback wraps the row evaluator for subtrees the vectorizer does
// not handle. The result vector declares the statically inferred kind and
// degrades to generic storage if runtime values disagree, so values
// round-trip exactly either way.
func scalarFallback(e Expr, schema *storage.Schema) (BatchCompiled, error) {
	row, err := Compile(e, schema)
	if err != nil {
		return nil, err
	}
	kind, kerr := TypeOf(e, schema)
	if kerr != nil {
		kind = storage.KindNull
	}
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		out.Reset(kind)
		if sel == nil {
			for _, r := range b.rows {
				out.Append(row(r))
			}
		} else {
			for _, i := range sel {
				out.Append(row(b.rows[i]))
			}
		}
		return out
	}, nil
}

func compileBatchBinOp(v *BinOp, schema *storage.Schema) (BatchCompiled, error) {
	switch v.Op {
	case "AND", "OR":
		// The row evaluator short-circuits, so a function call on either
		// side must not be batch-evaluated unconditionally.
		if containsFunc(v.L) || containsFunc(v.R) {
			return scalarFallback(v, schema)
		}
		l, err := compileBatchNode(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileBatchNode(v.R, schema)
		if err != nil {
			return nil, err
		}
		return logicKernel(v.Op, l, r), nil
	case "=", "!=", "<", "<=", ">", ">=":
		if cv, ok := constValueOf(v.R, schema); ok {
			l, err := compileBatchNode(v.L, schema)
			if err != nil {
				return nil, err
			}
			return compareConstKernel(v.Op, l, cv, false), nil
		}
		if cv, ok := constValueOf(v.L, schema); ok {
			r, err := compileBatchNode(v.R, schema)
			if err != nil {
				return nil, err
			}
			return compareConstKernel(v.Op, r, cv, true), nil
		}
		l, err := compileBatchNode(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileBatchNode(v.R, schema)
		if err != nil {
			return nil, err
		}
		return compareVecKernel(v.Op, l, r), nil
	case "LIKE":
		l, err := compileBatchNode(v.L, schema)
		if err != nil {
			return nil, err
		}
		if cv, ok := constValueOf(v.R, schema); ok {
			return likeConstKernel(l, cv), nil
		}
		r, err := compileBatchNode(v.R, schema)
		if err != nil {
			return nil, err
		}
		return likeVecKernel(l, r), nil
	case "+", "-", "*", "/", "%":
		if cv, ok := constValueOf(v.R, schema); ok {
			l, err := compileBatchNode(v.L, schema)
			if err != nil {
				return nil, err
			}
			return arithConstKernel(v.Op, l, cv, false), nil
		}
		if cv, ok := constValueOf(v.L, schema); ok {
			r, err := compileBatchNode(v.R, schema)
			if err != nil {
				return nil, err
			}
			return arithConstKernel(v.Op, r, cv, true), nil
		}
		l, err := compileBatchNode(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileBatchNode(v.R, schema)
		if err != nil {
			return nil, err
		}
		return arithVecKernel(v.Op, l, r), nil
	default:
		return nil, fmt.Errorf("expr: unknown operator %q", v.Op)
	}
}

// logicKernel evaluates AND/OR with the row evaluator's three-valued
// semantics. Both sides are evaluated for the whole batch — safe because
// function calls were excluded above and all remaining node kinds are pure.
func logicKernel(op string, l, r BatchCompiled) BatchCompiled {
	isAnd := op == "AND"
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		lv := l(b, sel)
		rv := r(b, sel)
		n := lv.Len()
		out.Reset(storage.KindBool)
		for i := 0; i < n; i++ {
			lnull, lt := truthAt(lv, i)
			rnull, rt := truthAt(rv, i)
			if isAnd {
				switch {
				case (!lnull && !lt) || (!rnull && !rt):
					out.AppendBool(false)
				case lnull || rnull:
					out.AppendNull()
				default:
					out.AppendBool(true)
				}
			} else {
				switch {
				case (!lnull && lt) || (!rnull && rt):
					out.AppendBool(true)
				case lnull || rnull:
					out.AppendNull()
				default:
					out.AppendBool(false)
				}
			}
		}
		return out
	}
}

func compareConstKernel(op string, child BatchCompiled, cv storage.Value, reversed bool) BatchCompiled {
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		x := child(b, sel)
		n := x.Len()
		out.Reset(storage.KindBool)
		if cv.IsNull() {
			for i := 0; i < n; i++ {
				out.AppendNull()
			}
			return out
		}
		if !x.Generic() {
			switch {
			case isNumericKind(x.Kind()) && isNumericKind(cv.Kind):
				cf, _ := cv.AsFloat()
				if x.Kind() == storage.KindFloat {
					for i, xf := range x.Floats {
						if x.NullAt(i) {
							out.AppendNull()
							continue
						}
						c := cmpFloat(xf, cf)
						if reversed {
							c = -c
						}
						out.AppendBool(cmpHolds(op, c))
					}
				} else {
					for i, xi := range x.Ints {
						if x.NullAt(i) {
							out.AppendNull()
							continue
						}
						c := cmpFloat(float64(xi), cf)
						if reversed {
							c = -c
						}
						out.AppendBool(cmpHolds(op, c))
					}
				}
				return out
			case x.Kind() == storage.KindString && cv.Kind == storage.KindString:
				cs := cv.S
				for i, s := range x.Strs {
					if x.NullAt(i) {
						out.AppendNull()
						continue
					}
					c := 0
					switch {
					case s < cs:
						c = -1
					case s > cs:
						c = 1
					}
					if reversed {
						c = -c
					}
					out.AppendBool(cmpHolds(op, c))
				}
				return out
			}
		}
		for i := 0; i < n; i++ {
			xv := x.Value(i)
			if xv.IsNull() {
				out.AppendNull()
				continue
			}
			var c int
			if reversed {
				c = storage.Compare(cv, xv)
			} else {
				c = storage.Compare(xv, cv)
			}
			out.AppendBool(cmpHolds(op, c))
		}
		return out
	}
}

func compareVecKernel(op string, l, r BatchCompiled) BatchCompiled {
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		lv := l(b, sel)
		rv := r(b, sel)
		n := lv.Len()
		out.Reset(storage.KindBool)
		if !lv.Generic() && !rv.Generic() &&
			isNumericKind(lv.Kind()) && isNumericKind(rv.Kind()) {
			for i := 0; i < n; i++ {
				if lv.NullAt(i) || rv.NullAt(i) {
					out.AppendNull()
					continue
				}
				out.AppendBool(cmpHolds(op, cmpFloat(typedFloat(lv, i), typedFloat(rv, i))))
			}
			return out
		}
		if !lv.Generic() && !rv.Generic() &&
			lv.Kind() == storage.KindString && rv.Kind() == storage.KindString {
			for i := 0; i < n; i++ {
				if lv.NullAt(i) || rv.NullAt(i) {
					out.AppendNull()
					continue
				}
				a, bs := lv.Strs[i], rv.Strs[i]
				c := 0
				switch {
				case a < bs:
					c = -1
				case a > bs:
					c = 1
				}
				out.AppendBool(cmpHolds(op, c))
			}
			return out
		}
		for i := 0; i < n; i++ {
			a, bv := lv.Value(i), rv.Value(i)
			if a.IsNull() || bv.IsNull() {
				out.AppendNull()
				continue
			}
			out.AppendBool(cmpHolds(op, storage.Compare(a, bv)))
		}
		return out
	}
}

func likeConstKernel(l BatchCompiled, cv storage.Value) BatchCompiled {
	out := &storage.Vector{}
	pattern := cv.String()
	constNull := cv.IsNull()
	return func(b *Batch, sel []int32) *storage.Vector {
		lv := l(b, sel)
		n := lv.Len()
		out.Reset(storage.KindBool)
		if constNull {
			for i := 0; i < n; i++ {
				out.AppendNull()
			}
			return out
		}
		if !lv.Generic() && lv.Kind() == storage.KindString {
			for i, s := range lv.Strs {
				if lv.NullAt(i) {
					out.AppendNull()
				} else {
					out.AppendBool(likeMatch(s, pattern))
				}
			}
			return out
		}
		for i := 0; i < n; i++ {
			xv := lv.Value(i)
			if xv.IsNull() {
				out.AppendNull()
			} else {
				out.AppendBool(likeMatch(xv.String(), pattern))
			}
		}
		return out
	}
}

func likeVecKernel(l, r BatchCompiled) BatchCompiled {
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		lv := l(b, sel)
		rv := r(b, sel)
		n := lv.Len()
		out.Reset(storage.KindBool)
		for i := 0; i < n; i++ {
			a, p := lv.Value(i), rv.Value(i)
			if a.IsNull() || p.IsNull() {
				out.AppendNull()
				continue
			}
			out.AppendBool(likeMatch(a.String(), p.String()))
		}
		return out
	}
}

// arithFloat applies a float-path arithmetic op with the row evaluator's
// zero-divide and modulo semantics. ok=false means NULL.
func arithFloat(op string, af, bf float64) (float64, bool) {
	switch op {
	case "+":
		return af + bf, true
	case "-":
		return af - bf, true
	case "*":
		return af * bf, true
	case "/":
		if bf == 0 {
			return 0, false
		}
		return af / bf, true
	case "%":
		if bf == 0 {
			return 0, false
		}
		return float64(int64(af) % int64(bf)), true
	default:
		return 0, false
	}
}

func arithConstKernel(op string, child BatchCompiled, cv storage.Value, reversed bool) BatchCompiled {
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		x := child(b, sel)
		n := x.Len()
		if cv.IsNull() {
			out.Reset(storage.KindNull)
			for i := 0; i < n; i++ {
				out.AppendNull()
			}
			return out
		}
		if !x.Generic() {
			// Int×int stays in int64 (wrapping), exactly like arith's fast
			// path; everything else numeric goes through the float image.
			if x.Kind() == storage.KindInt && cv.Kind == storage.KindInt && op != "/" {
				ci := cv.I
				out.Reset(storage.KindInt)
				for i, xi := range x.Ints {
					if x.NullAt(i) {
						out.AppendNull()
						continue
					}
					a, bi := xi, ci
					if reversed {
						a, bi = ci, xi
					}
					switch op {
					case "+":
						out.AppendInt(a + bi)
					case "-":
						out.AppendInt(a - bi)
					case "*":
						out.AppendInt(a * bi)
					case "%":
						if bi == 0 {
							out.AppendNull()
						} else {
							out.AppendInt(a % bi)
						}
					}
				}
				return out
			}
			if isNumericKind(x.Kind()) && isNumericKind(cv.Kind) {
				cf, _ := cv.AsFloat()
				out.Reset(storage.KindFloat)
				for i := 0; i < n; i++ {
					if x.NullAt(i) {
						out.AppendNull()
						continue
					}
					af, bf := typedFloat(x, i), cf
					if reversed {
						af, bf = cf, af
					}
					if f, ok := arithFloat(op, af, bf); ok {
						out.AppendFloat(f)
					} else {
						out.AppendNull()
					}
				}
				return out
			}
		}
		// Generic path (mixed kinds, strings that may parse as numbers).
		out.Reset(storage.KindNull)
		for i := 0; i < n; i++ {
			xv := x.Value(i)
			if xv.IsNull() {
				out.AppendNull()
				continue
			}
			a, bv := xv, cv
			if reversed {
				a, bv = cv, xv
			}
			out.Append(arith(op, a, bv))
		}
		return out
	}
}

func arithVecKernel(op string, l, r BatchCompiled) BatchCompiled {
	out := &storage.Vector{}
	return func(b *Batch, sel []int32) *storage.Vector {
		lv := l(b, sel)
		rv := r(b, sel)
		n := lv.Len()
		if !lv.Generic() && !rv.Generic() {
			if lv.Kind() == storage.KindInt && rv.Kind() == storage.KindInt && op != "/" {
				out.Reset(storage.KindInt)
				for i, a := range lv.Ints {
					if lv.NullAt(i) || rv.NullAt(i) {
						out.AppendNull()
						continue
					}
					bi := rv.Ints[i]
					switch op {
					case "+":
						out.AppendInt(a + bi)
					case "-":
						out.AppendInt(a - bi)
					case "*":
						out.AppendInt(a * bi)
					case "%":
						if bi == 0 {
							out.AppendNull()
						} else {
							out.AppendInt(a % bi)
						}
					}
				}
				return out
			}
			if isNumericKind(lv.Kind()) && isNumericKind(rv.Kind()) {
				out.Reset(storage.KindFloat)
				for i := 0; i < n; i++ {
					if lv.NullAt(i) || rv.NullAt(i) {
						out.AppendNull()
						continue
					}
					if f, ok := arithFloat(op, typedFloat(lv, i), typedFloat(rv, i)); ok {
						out.AppendFloat(f)
					} else {
						out.AppendNull()
					}
				}
				return out
			}
		}
		out.Reset(storage.KindNull)
		for i := 0; i < n; i++ {
			a, bv := lv.Value(i), rv.Value(i)
			if a.IsNull() || bv.IsNull() {
				out.AppendNull()
				continue
			}
			out.Append(arith(op, a, bv))
		}
		return out
	}
}

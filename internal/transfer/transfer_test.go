package transfer

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCostBreakdown(t *testing.T) {
	cfg := Config{DumpMBps: 100, NetMBps: 50, LoadMBps: 25}
	b := Cost(cfg, 100e6) // 100 MB
	if b.Dump != 1 || b.Network != 2 || b.Load != 4 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Total() != 7 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestCostToHVSkipsLoad(t *testing.T) {
	cfg := DefaultConfig()
	fwd := Cost(cfg, 1e9)
	back := CostToHV(cfg, 1e9)
	if back.Load != 0 {
		t.Error("reverse direction charged a DW load")
	}
	if back.Total() >= fwd.Total() {
		t.Error("reverse direction should be cheaper")
	}
}

func TestCostLinearInBytes(t *testing.T) {
	cfg := DefaultConfig()
	prop := func(mb uint16) bool {
		n := int64(mb) * 1e6
		a := Cost(cfg, n).Total()
		b := Cost(cfg, 2*n).Total()
		return b >= 2*a-1e-9 && b <= 2*a+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if b.Limit() != 100 || b.Remaining() != 100 || b.Used() != 0 {
		t.Fatal("fresh budget wrong")
	}
	if !b.Fits(100) || b.Fits(101) {
		t.Error("Fits wrong")
	}
	if err := b.Spend(60); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 40 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	if err := b.Spend(41); err == nil {
		t.Error("overspend accepted")
	}
	if b.Used() != 60 {
		t.Error("failed spend mutated budget")
	}
	if err := b.Spend(40); err != nil {
		t.Error("exact fill rejected")
	}
	if b.Remaining() != 0 {
		t.Error("remaining after fill")
	}
}

func TestBudgetSpendRefundFitsTable(t *testing.T) {
	const maxI64 = int64(^uint64(0) >> 1)
	tests := []struct {
		name   string
		limit  int64
		ops    func(b *Budget) error
		used   int64
		remain int64
	}{
		{
			name:  "zero limit rejects any spend",
			limit: 0,
			ops: func(b *Budget) error {
				if b.Fits(1) {
					return errWrap("Fits(1) on zero budget")
				}
				if err := b.Spend(1); err == nil {
					return errWrap("Spend(1) accepted on zero budget")
				}
				if !b.Fits(0) {
					return errWrap("Fits(0) rejected on zero budget")
				}
				return b.Spend(0)
			},
			used: 0, remain: 0,
		},
		{
			name:  "exact fit",
			limit: 100,
			ops: func(b *Budget) error {
				if !b.Fits(100) {
					return errWrap("exact fit rejected")
				}
				return b.Spend(100)
			},
			used: 100, remain: 0,
		},
		{
			name:  "overflow-sized spend does not wrap around",
			limit: 100,
			ops: func(b *Budget) error {
				if err := b.Spend(50); err != nil {
					return err
				}
				if b.Fits(maxI64) {
					return errWrap("Fits(MaxInt64) accepted")
				}
				if err := b.Spend(maxI64); err == nil {
					return errWrap("Spend(MaxInt64) accepted")
				}
				return nil
			},
			used: 50, remain: 50,
		},
		{
			name:  "negative spend rejected",
			limit: 100,
			ops: func(b *Budget) error {
				if err := b.Spend(-1); err == nil {
					return errWrap("negative spend accepted")
				}
				return nil
			},
			used: 0, remain: 100,
		},
		{
			name:  "refund restores budget",
			limit: 100,
			ops: func(b *Budget) error {
				if err := b.Spend(80); err != nil {
					return err
				}
				b.Refund(30)
				return b.Spend(50)
			},
			used: 100, remain: 0,
		},
		{
			name:  "refund floors at zero",
			limit: 100,
			ops: func(b *Budget) error {
				if err := b.Spend(10); err != nil {
					return err
				}
				b.Refund(10000)
				return nil
			},
			used: 0, remain: 100,
		},
		{
			name:  "negative refund is a no-op",
			limit: 100,
			ops: func(b *Budget) error {
				if err := b.Spend(40); err != nil {
					return err
				}
				b.Refund(-5)
				return nil
			},
			used: 40, remain: 60,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBudget(tc.limit)
			if err := tc.ops(b); err != nil {
				t.Fatal(err)
			}
			if b.Used() != tc.used {
				t.Errorf("used = %d, want %d", b.Used(), tc.used)
			}
			if b.Remaining() != tc.remain {
				t.Errorf("remaining = %d, want %d", b.Remaining(), tc.remain)
			}
		})
	}
}

func errWrap(msg string) error { return errors.New(msg) }

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestSpendErrorReportsRemaining(t *testing.T) {
	b := NewBudget(100)
	if err := b.Spend(60); err != nil {
		t.Fatal(err)
	}
	err := b.Spend(50)
	if err == nil {
		t.Fatal("overspend accepted")
	}
	for _, want := range []string{"remaining 40", "limit 100", "used 60"} {
		if !contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestCostToHVValues(t *testing.T) {
	cfg := Config{DumpMBps: 100, NetMBps: 50, LoadMBps: 25}
	b := CostToHV(cfg, 100e6)
	if b.Dump != 1 || b.Network != 2 || b.Load != 0 {
		t.Errorf("CostToHV breakdown = %+v", b)
	}
	if b.Total() != 3 {
		t.Errorf("CostToHV total = %v, want 3", b.Total())
	}
	if z := CostToHV(cfg, 0); z.Total() != 0 {
		t.Errorf("zero bytes total = %v", z.Total())
	}
}

func TestBreakdownTotalSumsAllPhases(t *testing.T) {
	b := Breakdown{Dump: 1.5, Network: 2.25, Load: 3.75}
	if b.Total() != 7.5 {
		t.Errorf("Total = %v, want 7.5", b.Total())
	}
	if (Breakdown{}).Total() != 0 {
		t.Error("empty breakdown total nonzero")
	}
}

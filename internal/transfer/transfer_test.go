package transfer

import (
	"testing"
	"testing/quick"
)

func TestCostBreakdown(t *testing.T) {
	cfg := Config{DumpMBps: 100, NetMBps: 50, LoadMBps: 25}
	b := Cost(cfg, 100e6) // 100 MB
	if b.Dump != 1 || b.Network != 2 || b.Load != 4 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Total() != 7 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestCostToHVSkipsLoad(t *testing.T) {
	cfg := DefaultConfig()
	fwd := Cost(cfg, 1e9)
	back := CostToHV(cfg, 1e9)
	if back.Load != 0 {
		t.Error("reverse direction charged a DW load")
	}
	if back.Total() >= fwd.Total() {
		t.Error("reverse direction should be cheaper")
	}
}

func TestCostLinearInBytes(t *testing.T) {
	cfg := DefaultConfig()
	prop := func(mb uint16) bool {
		n := int64(mb) * 1e6
		a := Cost(cfg, n).Total()
		b := Cost(cfg, 2*n).Total()
		return b >= 2*a-1e-9 && b <= 2*a+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(100)
	if b.Limit() != 100 || b.Remaining() != 100 || b.Used() != 0 {
		t.Fatal("fresh budget wrong")
	}
	if !b.Fits(100) || b.Fits(101) {
		t.Error("Fits wrong")
	}
	if err := b.Spend(60); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 40 {
		t.Errorf("remaining = %d", b.Remaining())
	}
	if err := b.Spend(41); err == nil {
		t.Error("overspend accepted")
	}
	if b.Used() != 60 {
		t.Error("failed spend mutated budget")
	}
	if err := b.Spend(40); err != nil {
		t.Error("exact fill rejected")
	}
	if b.Remaining() != 0 {
		t.Error("remaining after fill")
	}
}

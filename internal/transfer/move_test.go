package transfer

import (
	"errors"
	"testing"

	"miso/internal/faults"
)

func TestMoveNoInjectorMatchesCost(t *testing.T) {
	cfg := DefaultConfig()
	for _, bytes := range []int64{0, 1 << 20, 3 << 30} {
		res, err := Move(cfg, bytes, KindWorkingSet, nil, faults.RetryPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || res.Retries != 0 || res.RecoverySeconds != 0 {
			t.Fatalf("fault-free move not clean: %+v", res)
		}
		if res.Breakdown != Cost(cfg, bytes) {
			t.Errorf("breakdown %+v != Cost %+v", res.Breakdown, Cost(cfg, bytes))
		}
		back, err := Move(cfg, bytes, KindToHV, nil, faults.RetryPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if back.Breakdown != CostToHV(cfg, bytes) {
			t.Errorf("reverse breakdown %+v != CostToHV %+v", back.Breakdown, CostToHV(cfg, bytes))
		}
	}
}

func TestMoveDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	run := func() []MoveResult {
		inj := faults.NewInjector(faults.Uniform(0.3), 11)
		var out []MoveResult
		for i := 0; i < 20; i++ {
			res, _ := Move(cfg, 1<<30, KindPermanent, inj, faults.DefaultRetry())
			out = append(out, *res)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("move %d differs across identical seeded runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestMoveSurvivesFailuresWithRecovery(t *testing.T) {
	cfg := DefaultConfig()
	inj := faults.NewInjector(faults.Uniform(0.4), 7)
	var completed, aborted int
	var sawRecovery bool
	for i := 0; i < 50; i++ {
		res, err := Move(cfg, 2<<30, KindWorkingSet, inj, faults.DefaultRetry())
		if err != nil {
			aborted++
			if res.Completed {
				t.Fatal("error with Completed=true")
			}
			if !errors.Is(err, faults.ErrExhausted) {
				t.Fatalf("abort error not ErrExhausted: %v", err)
			}
			var f *faults.Fault
			if !errors.As(err, &f) {
				t.Fatalf("abort error carries no *Fault: %v", err)
			}
			if res.WastedSeconds() < res.RecoverySeconds {
				t.Error("aborted move wasted less than its recovery time")
			}
			continue
		}
		completed++
		// A completed move always delivers the full fault-free breakdown;
		// failures only add recovery on top.
		if res.Breakdown != Cost(cfg, 2<<30) {
			t.Fatalf("completed move breakdown %+v != ideal", res.Breakdown)
		}
		if res.Retries > 0 {
			sawRecovery = true
			if res.RecoverySeconds <= 0 {
				t.Error("retries without recovery time")
			}
		}
	}
	if completed == 0 {
		t.Error("no move completed at 40% failure rate")
	}
	if !sawRecovery {
		t.Error("no completed move recorded a survived retry")
	}
}

func TestMoveBackoffIsCharged(t *testing.T) {
	// Rate 1 at the dump site only: every dump attempt fails, the move
	// aborts after MaxAttempts with every backoff charged.
	cfg := DefaultConfig()
	inj := faults.NewInjector(faults.Profile{TransferDump: 1}, 3)
	retry := faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: 2, BackoffFactor: 2, MaxBackoff: 100}
	res, err := Move(cfg, 1<<30, KindWorkingSet, inj, retry)
	if err == nil {
		t.Fatal("move completed under certain dump failure")
	}
	if res.Retries != 3 {
		t.Errorf("retries = %d, want 3", res.Retries)
	}
	if want := 2.0 + 4.0 + 8.0; res.RecoverySeconds != want {
		t.Errorf("recovery = %v, want %v (sum of backoffs)", res.RecoverySeconds, want)
	}
}

func TestMoveLoadSiteDependsOnKind(t *testing.T) {
	cfg := DefaultConfig()
	// Working-set moves must not draw the permanent DW-load site.
	inj := faults.NewInjector(faults.Profile{DWLoad: 1}, 5)
	if _, err := Move(cfg, 1<<30, KindWorkingSet, inj, faults.DefaultRetry()); err != nil {
		t.Errorf("working-set move hit the permanent-load site: %v", err)
	}
	// Permanent moves must not draw the temp-load site.
	inj = faults.NewInjector(faults.Profile{TransferLoad: 1}, 5)
	if _, err := Move(cfg, 1<<30, KindPermanent, inj, faults.DefaultRetry()); err != nil {
		t.Errorf("permanent move hit the temp-load site: %v", err)
	}
	// Reverse moves have no load phase at all.
	inj = faults.NewInjector(faults.Profile{TransferLoad: 1, DWLoad: 1}, 5)
	if _, err := Move(cfg, 1<<30, KindToHV, inj, faults.DefaultRetry()); err != nil {
		t.Errorf("reverse move drew a load site: %v", err)
	}
}

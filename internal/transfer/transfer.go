// Package transfer models data movement between the stores: the
// dump-transfer-load pipeline a multistore execution pays when migrating a
// working set from HV to DW, and that reorganization phases pay when moving
// views. It also tracks the view transfer budget (Bt) consumed during a
// reorganization.
package transfer

import "fmt"

// Config calibrates the movement pipeline. The defaults reflect the paper's
// setup: staging-disk dump, a 1GbE inter-rack link, and DW bulk load.
type Config struct {
	// DumpMBps is the rate of dumping intermediate data out of HV.
	DumpMBps float64
	// NetMBps is the aggregate network transfer rate between clusters.
	NetMBps float64
	// LoadMBps is the DW bulk-load rate (including index build).
	LoadMBps float64
}

// DefaultConfig returns paper-calibrated rates.
func DefaultConfig() Config {
	return Config{DumpMBps: 100, NetMBps: 117, LoadMBps: 25}
}

// Breakdown is the simulated seconds spent in each phase of one movement.
type Breakdown struct {
	Dump    float64
	Network float64
	Load    float64
}

// Total returns the end-to-end seconds.
func (b Breakdown) Total() float64 { return b.Dump + b.Network + b.Load }

// Cost returns the time breakdown for moving the given logical bytes from
// HV into DW.
func Cost(cfg Config, bytes int64) Breakdown {
	return Breakdown{
		Dump:    float64(bytes) / (cfg.DumpMBps * 1e6),
		Network: float64(bytes) / (cfg.NetMBps * 1e6),
		Load:    float64(bytes) / (cfg.LoadMBps * 1e6),
	}
}

// CostToHV returns the time for the reverse direction (DW export to HDFS
// write); there is no DW load phase.
func CostToHV(cfg Config, bytes int64) Breakdown {
	return Breakdown{
		Dump:    float64(bytes) / (cfg.DumpMBps * 1e6),
		Network: float64(bytes) / (cfg.NetMBps * 1e6),
	}
}

// Budget tracks consumption of the per-reorganization view transfer budget.
type Budget struct {
	limit int64
	used  int64
}

// NewBudget creates a budget of limit bytes.
func NewBudget(limit int64) *Budget { return &Budget{limit: limit} }

// Limit returns the configured limit in bytes.
func (b *Budget) Limit() int64 { return b.limit }

// Used returns the bytes consumed so far.
func (b *Budget) Used() int64 { return b.used }

// Remaining returns the unconsumed budget.
func (b *Budget) Remaining() int64 {
	r := b.limit - b.used
	if r < 0 {
		return 0
	}
	return r
}

// Fits reports whether n more bytes fit. Written as a subtraction so a
// huge n cannot overflow b.used+n past MaxInt64 (used never exceeds limit).
func (b *Budget) Fits(n int64) bool { return n <= b.limit-b.used }

// Spend consumes n bytes, failing when the budget would be exceeded.
func (b *Budget) Spend(n int64) error {
	if n < 0 {
		return fmt.Errorf("transfer: cannot spend negative bytes (%d)", n)
	}
	if !b.Fits(n) {
		return fmt.Errorf("transfer: budget exceeded: spend of %d exceeds remaining %d (limit %d, used %d)",
			n, b.Remaining(), b.limit, b.used)
	}
	b.used += n
	return nil
}

// Refund returns n bytes to the budget — an aborted or rolled-back move
// does not consume Bt. Usage floors at zero: refunding more than was
// spent leaves a full budget rather than a negative one.
func (b *Budget) Refund(n int64) {
	if n <= 0 {
		return
	}
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
}

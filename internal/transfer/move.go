package transfer

import (
	"context"
	"fmt"

	"miso/internal/faults"
)

// Kind selects the pipeline shape and fault sites of one movement.
type Kind int

const (
	// KindWorkingSet is a query-time HV→DW migration into temp space.
	KindWorkingSet Kind = iota
	// KindPermanent is a reorganization move into DW permanent space
	// (bulk load plus index build).
	KindPermanent
	// KindToHV is the reverse direction, DW export to HDFS: dump and
	// network only, no DW load phase.
	KindToHV
)

// MoveResult reports one movement through the pipeline under fault
// injection.
type MoveResult struct {
	// Breakdown is the productive per-phase time: for a completed move it
	// equals the fault-free Cost/CostToHV breakdown exactly; for an
	// aborted move it covers only the work that finished before the abort.
	Breakdown Breakdown
	// RecoverySeconds is the extra simulated time lost to failures:
	// rolled-back partial loads plus every backoff wait.
	RecoverySeconds float64
	// Retries counts injected failures survived (and, for an aborted
	// move, the final fatal one).
	Retries int
	// Completed reports whether the bytes reached the destination.
	Completed bool
}

// WastedSeconds is the time an *aborted* move threw away: everything it
// paid, productive or not, since none of it delivered data. For a
// completed move it returns only the recovery overhead.
func (r *MoveResult) WastedSeconds() float64 {
	if r.Completed {
		return r.RecoverySeconds
	}
	return r.Breakdown.Total() + r.RecoverySeconds
}

// Move runs the resumable dump→network→load pipeline for the given bytes,
// drawing failures from the injector and recovering under the retry
// policy. The dump and network phases checkpoint progress, so a failure
// there re-pays nothing but the backoff wait — bytes already moved are not
// re-paid. Bulk loads are transactional per attempt: a failure rolls back
// the partial load and re-pays it after backoff. When a phase runs out of
// attempts the move aborts with an error wrapping faults.ErrExhausted and
// the fatal *faults.Fault; the caller refunds any budget it charged.
//
// With a nil injector the result is exactly the fault-free costing
// (Cost or CostToHV), bit for bit.
func Move(cfg Config, bytes int64, kind Kind, inj *faults.Injector, retry faults.RetryPolicy) (*MoveResult, error) {
	return MoveContext(context.Background(), cfg, bytes, kind, inj, retry, nil)
}

// MoveContext is Move under a caller deadline and a shared retry budget.
// Before paying another attempt each phase checks the context — a dead
// context aborts the move immediately (no retry can fit inside an expired
// deadline) — and consumes one retry from the budget, aborting with an
// error wrapping faults.ErrBudget (and therefore faults.ErrExhausted) when
// the budget runs dry. A background context and nil budget make it
// byte-identical to Move.
func MoveContext(ctx context.Context, cfg Config, bytes int64, kind Kind, inj *faults.Injector, retry faults.RetryPolicy, bud *faults.Budget) (*MoveResult, error) {
	retry = retry.OrDefault()
	ideal := Cost(cfg, bytes)
	if kind == KindToHV {
		ideal = CostToHV(cfg, bytes)
	}
	res := &MoveResult{}

	// giveUp decides, after an injected failure was drawn and charged,
	// whether the phase may pay another attempt: the per-phase policy, the
	// caller's deadline, and the shared budget all have to agree.
	giveUp := func(site faults.Site, attempt int, op string) error {
		f := &faults.Fault{Site: site, Op: op, Attempt: attempt}
		switch {
		case attempt >= retry.MaxAttempts:
			return faults.Exhausted(f)
		case ctx.Err() != nil:
			return fmt.Errorf("abandoned before retry: %w", ctx.Err())
		case !bud.Take():
			return faults.BudgetExhausted(f)
		}
		return nil
	}

	resumable := func(site faults.Site, sec float64, op string) (float64, error) {
		done := 0.0
		for attempt := 1; ; attempt++ {
			failed, frac := inj.Check(site)
			if !failed {
				return sec, nil
			}
			res.Retries++
			done += (1 - done) * frac
			res.RecoverySeconds += retry.Backoff(attempt)
			if err := giveUp(site, attempt, op); err != nil {
				return done * sec, fmt.Errorf("transfer: %s: %w", op, err)
			}
		}
	}
	transactional := func(site faults.Site, sec float64, op string) (float64, error) {
		for attempt := 1; ; attempt++ {
			failed, frac := inj.Check(site)
			if !failed {
				return sec, nil
			}
			res.Retries++
			res.RecoverySeconds += frac*sec + retry.Backoff(attempt)
			if err := giveUp(site, attempt, op); err != nil {
				return 0, fmt.Errorf("transfer: %s: %w", op, err)
			}
		}
	}

	op := func(phase string) string { return fmt.Sprintf("%s phase of %d-byte move", phase, bytes) }

	sec, err := resumable(faults.SiteTransferDump, ideal.Dump, op("dump"))
	res.Breakdown.Dump = sec
	if err != nil {
		return res, err
	}
	sec, err = resumable(faults.SiteTransferNet, ideal.Network, op("network"))
	res.Breakdown.Network = sec
	if err != nil {
		return res, err
	}
	if kind != KindToHV {
		site := faults.SiteTransferLoad
		if kind == KindPermanent {
			site = faults.SiteDWLoad
		}
		sec, err = transactional(site, ideal.Load, op("load"))
		res.Breakdown.Load = sec
		if err != nil {
			return res, err
		}
	}
	res.Completed = true
	return res, nil
}

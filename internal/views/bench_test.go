package views_test

import (
	"fmt"
	"testing"

	"miso/internal/views"
)

// BenchmarkBestMatch measures view matching against a populated design —
// the optimizer's hottest path (called for every node of every enumerated
// plan during what-if costing).
func BenchmarkBestMatch(b *testing.B) {
	f := newFixture(b)
	set := views.NewSet()
	for i := 0; i < 16; i++ {
		set.Add(f.makeView(b, fmt.Sprintf(
			"SELECT tweet_id FROM tweets WHERE retweets > %d", i*50)))
	}
	n := f.corePlan(b, "SELECT tweet_id FROM tweets WHERE retweets > 100 AND lang = 'en'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := set.BestMatch(n); !ok {
			b.Fatal("no match")
		}
	}
}

// BenchmarkMatchNodeExact measures the cheap path: signature equality.
func BenchmarkMatchNodeExact(b *testing.B) {
	f := newFixture(b)
	v := f.makeView(b, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	n := f.corePlan(b, "SELECT user_id FROM tweets WHERE lang = 'en'")
	n.Signature() // memoize, as the optimizer's reuse does
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m, ok := views.MatchNode(n, v); !ok || !m.Exact {
			b.Fatal("no exact match")
		}
	}
}

package views

// EvictLRU removes least-recently-used views from the set until its total
// size fits budgetBytes, returning the evicted views. Ties prefer evicting
// the larger view. This is the passive policy of the HV-OP and MS-LRU
// system variants.
func EvictLRU(s *Set, budgetBytes int64) []*View {
	var evicted []*View
	for s.TotalBytes() > budgetBytes {
		all := s.All()
		if len(all) == 0 {
			break
		}
		lru := all[0]
		for _, v := range all[1:] {
			if v.LastUsedSeq < lru.LastUsedSeq ||
				(v.LastUsedSeq == lru.LastUsedSeq && v.SizeBytes() > lru.SizeBytes()) {
				lru = v
			}
		}
		s.Remove(lru.Name)
		evicted = append(evicted, lru)
	}
	return evicted
}

package views

import "sort"

// EvictLRU removes least-recently-used views from the set until its total
// size fits budgetBytes, returning the evicted views. Ties prefer evicting
// the larger view; full ties (same LastUsedSeq and size) break by name, so
// the eviction order is fully deterministic. This is the passive policy of
// the HV-OP and MS-LRU system variants.
//
// The set is scanned once and sorted into eviction order, rather than
// rescanned per eviction: evicting k of n views costs O(n log n), not
// O(k·n). Removing a view never changes any other view's rank, so the
// single sorted pass evicts exactly the sequence the per-eviction rescan
// would have.
func EvictLRU(s *Set, budgetBytes int64) []*View {
	total := s.TotalBytes()
	if total <= budgetBytes {
		return nil
	}
	all := s.All()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.LastUsedSeq != b.LastUsedSeq {
			return a.LastUsedSeq < b.LastUsedSeq
		}
		if sa, sb := a.SizeBytes(), b.SizeBytes(); sa != sb {
			return sa > sb
		}
		return a.Name < b.Name
	})
	var evicted []*View
	for _, v := range all {
		if total <= budgetBytes {
			break
		}
		s.Remove(v.Name)
		total -= v.SizeBytes()
		evicted = append(evicted, v)
	}
	return evicted
}

// Package views implements opportunistic materialized views: the
// by-products of query processing that MISO places across the two stores.
// A view pairs a defining logical subtree (and its descriptor) with its
// materialized table. Matching supports two tiers: exact signature equality,
// and SPJ subsumption (same extract/join skeleton, view filters a subset of
// the node's, view columns a superset of what the node needs), in which case
// the node is rewritten as ViewScan -> residual Filter -> Project.
package views

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// View is one opportunistic materialized view.
type View struct {
	// Name is a stable identifier derived from the signature.
	Name string
	// Sig is the canonical signature of the defining subtree.
	Sig string
	// Def is the defining logical subtree (owned clone).
	Def *logical.Node
	// Desc is the subsumption descriptor of Def.
	Desc *logical.Descriptor
	// Table is the materialized result.
	Table *storage.Table
	// CreatedSeq is the workload sequence number at creation time; used
	// by LRU-style policies and by the benefit decay.
	CreatedSeq int
	// LastUsedSeq tracks the last query that used the view.
	LastUsedSeq int
	// ExactOnly restricts matching to exact signature equality. Passive
	// caches (MS-LRU) retain working sets syntactically: the cached
	// bytes answer only the identical subexpression, not a subsuming
	// rewrite.
	ExactOnly bool
	// Checksum is the FNV-64a content fingerprint of Table, stamped at
	// materialization. Verify recomputes it to detect corruption before
	// the view is matched or restored from a checkpoint.
	Checksum uint64
	// LogGens records, per base log scanned by Def, the log generation the
	// view was materialized from. A view whose recorded generation trails
	// the catalog's is stale and must be quarantined, not served.
	LogGens map[string]int
}

// NameForSig derives the stable view name for a signature.
func NameForSig(sig string) string {
	h := fnv.New64a()
	h.Write([]byte(sig))
	return fmt.Sprintf("v_%016x", h.Sum64())
}

// New creates a view from a defining subtree and its materialization,
// stamping the content checksum.
func New(def *logical.Node, table *storage.Table, seq int) *View {
	sig := def.Signature()
	return &View{
		Name:        NameForSig(sig),
		Sig:         sig,
		Def:         def.Clone(),
		Desc:        logical.Describe(def),
		Table:       table,
		CreatedSeq:  seq,
		LastUsedSeq: seq,
		Checksum:    storage.ChecksumTable(table),
	}
}

// BaseLogs returns the names of the base logs scanned by the view's
// defining subtree, in first-visit order.
func (v *View) BaseLogs() []string {
	var logs []string
	seen := map[string]bool{}
	var walk func(n *logical.Node)
	walk = func(n *logical.Node) {
		if n == nil {
			return
		}
		if n.Kind == logical.KindScan && !seen[n.LogName] {
			seen[n.LogName] = true
			logs = append(logs, n.LogName)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(v.Def)
	return logs
}

// StampGenerations records the current generation of every base log the
// view derives from. gen reports the generation for a log name (ok=false
// when the log is unknown, in which case no stamp is recorded for it).
func (v *View) StampGenerations(gen func(log string) (int, bool)) {
	logs := v.BaseLogs()
	if len(logs) == 0 {
		return
	}
	v.LogGens = make(map[string]int, len(logs))
	for _, name := range logs {
		if g, ok := gen(name); ok {
			v.LogGens[name] = g
		}
	}
}

// Stale reports whether any base log has advanced past the generation the
// view was materialized from. Views without stamps are never stale.
func (v *View) Stale(gen func(log string) (int, bool)) bool {
	for name, g := range v.LogGens {
		if cur, ok := gen(name); ok && cur > g {
			return true
		}
	}
	return false
}

// Verify recomputes the content checksum and compares it against the
// stamped value. Views stamped with a zero checksum and a nil table (not
// yet materialized) verify trivially.
func (v *View) Verify() bool {
	if v.Checksum == 0 && v.Table == nil {
		return true
	}
	return storage.ChecksumTable(v.Table) == v.Checksum
}

// SizeBytes returns the view's logical storage footprint.
func (v *View) SizeBytes() int64 {
	if v.Table == nil {
		return 0
	}
	return v.Table.LogicalBytes()
}

// Clone deep-copies the view: the definition and table are cloned, the
// generation stamps copied. The descriptor is shared — it is derived from
// the definition and immutable after creation.
func (v *View) Clone() *View {
	c := *v
	if v.Def != nil {
		c.Def = v.Def.Clone()
	}
	if v.Table != nil {
		c.Table = v.Table.Clone()
	}
	if v.LogGens != nil {
		c.LogGens = make(map[string]int, len(v.LogGens))
		for k, g := range v.LogGens {
			c.LogGens[k] = g
		}
	}
	return &c
}

// Match describes how a view can answer a plan node.
type Match struct {
	View *View
	// Exact means signatures are identical and the view replaces the node
	// as-is.
	Exact bool
	// Residual holds filter conjuncts to apply on top of the view.
	Residual []expr.Expr
	// OutCols is the column order the rewritten subtree must produce.
	OutCols []string
}

// MatchNode reports whether v can answer node n and how. It reads the node
// and view without mutating either, so it is safe to call concurrently once
// node signatures have been computed (Signature memoizes lazily; see
// logical.Node.PrewarmSignatures).
func MatchNode(n *logical.Node, v *View) (*Match, bool) {
	if n.Signature() == v.Sig {
		return &Match{View: v, Exact: true}, true
	}
	if v.ExactOnly {
		return nil, false
	}
	return MatchDescriptor(logical.Describe(n), v)
}

// MatchDescriptor matches a precomputed node descriptor against a view's
// subsumption descriptor. Callers that probe many views against the same
// node (the tuner's what-if loop) describe the node once and reuse the
// descriptor, instead of re-walking the plan per view. ExactOnly views and
// exact signature matches are the caller's to handle: this is subsumption
// only.
func MatchDescriptor(nd *logical.Descriptor, v *View) (*Match, bool) {
	if !nd.Simple || !v.Desc.Simple {
		return nil, false
	}
	if nd.SourceSig != v.Desc.SourceSig {
		return nil, false
	}
	if !v.Desc.ConjunctsSubsetOf(nd) {
		return nil, false
	}
	residual := nd.ResidualConjuncts(v.Desc)
	needed := make([]string, 0, len(nd.ColOrder))
	needed = append(needed, nd.ColOrder...)
	for _, r := range residual {
		needed = append(needed, expr.Columns(r)...)
	}
	if !v.Desc.HasAllColumns(needed) {
		return nil, false
	}
	return &Match{View: v, Residual: residual, OutCols: nd.ColOrder}, true
}

// Rewrite produces the replacement subtree for the matched node.
func (m *Match) Rewrite() (*logical.Node, error) {
	scan := logical.NewViewScan(m.View.Name, m.View.Table.Schema)
	if m.Exact {
		return scan, nil
	}
	node := scan
	if pred := expr.AndAll(m.Residual); pred != nil {
		f, err := logical.NewFilterNode(node, pred)
		if err != nil {
			return nil, fmt.Errorf("views: residual filter: %w", err)
		}
		node = f
	}
	// Project to the node's expected column order (and drop extras).
	same := len(m.OutCols) == node.Schema().Len()
	if same {
		for i, c := range m.OutCols {
			if node.Schema().Columns[i].Name != c {
				same = false
				break
			}
		}
	}
	if !same {
		projs := make([]logical.Proj, len(m.OutCols))
		for i, c := range m.OutCols {
			projs[i] = logical.Proj{Expr: &expr.ColRef{Name: c}, Name: c}
		}
		p, err := logical.NewProjectNode(node, projs)
		if err != nil {
			return nil, fmt.Errorf("views: reprojection: %w", err)
		}
		node = p
	}
	return node, nil
}

// MatchMemo caches MatchNode outcomes keyed by (node signature, view
// name). A node's signature fully determines its descriptor, and a view
// is immutable after creation, so the match outcome is a pure function of
// the key — the memo only avoids re-describing and re-checking, never
// changes a result. Safe for concurrent use (sync.Map); share one memo
// across every hypothetical design of a tuning phase so repeated probes
// of the same (subtree, view) pair match once.
type MatchMemo struct {
	m sync.Map // matchMemoKey -> *Match (nil = no match)
}

type matchMemoKey struct {
	sig  string
	view string
}

// NewMatchMemo returns an empty match memo.
func NewMatchMemo() *MatchMemo { return &MatchMemo{} }

func (mm *MatchMemo) match(n *logical.Node, v *View) (*Match, bool) {
	key := matchMemoKey{sig: n.Signature(), view: v.Name}
	if e, ok := mm.m.Load(key); ok {
		m := e.(*Match)
		return m, m != nil
	}
	m, ok := MatchNode(n, v)
	if !ok {
		m = nil
	}
	mm.m.Store(key, m)
	return m, ok
}

// Set is a named collection of views (one store's design). The zero value
// is not usable; use NewSet. The set's membership is internally locked, so
// concurrent observers (serving-layer metrics, soak probes) can read it
// while the owning store mutates it; compound read-modify-write sequences
// and mutation of the View structs themselves are still serialized by the
// multistore system's mutex (see DESIGN.md "Concurrency model").
type Set struct {
	mu     sync.RWMutex
	byName map[string]*View

	// memo, when installed with UseMemo, caches match outcomes across
	// BestMatch calls (and across sets sharing the memo).
	memo *MatchMemo
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{byName: map[string]*View{}} }

// Add inserts or replaces a view.
func (s *Set) Add(v *View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byName[v.Name] = v
}

// Remove deletes a view by name.
func (s *Set) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byName, name)
}

// Get fetches a view by name.
func (s *Set) Get(name string) (*View, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byName[name]
	return v, ok
}

// Has reports whether the named view is present.
func (s *Set) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byName[name]
	return ok
}

// Len returns the number of views.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName)
}

// TotalBytes sums the logical sizes of all views.
func (s *Set) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, v := range s.byName {
		n += v.SizeBytes()
	}
	return n
}

// All returns the views sorted by name for determinism.
func (s *Set) All() []*View {
	s.mu.RLock()
	out := make([]*View, 0, len(s.byName))
	for _, v := range s.byName {
		out = append(out, v)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clone returns a shallow copy of the set (views shared).
func (s *Set) Clone() *Set {
	c := NewSet()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.byName {
		c.byName[v.Name] = v
	}
	return c
}

// Reset empties the set in place. Unlike reassigning a store's Views field
// to a fresh Set, this keeps the Set pointer stable, so concurrent readers
// holding the store never observe a torn pointer swap.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byName = map[string]*View{}
}

// ReplaceAll swaps the set's contents for src's (views shared, src left
// unchanged). Like Reset, it mutates in place so the Set pointer held by
// concurrent readers stays valid across a design swap. ReplaceAll(s) is a
// no-op.
func (s *Set) ReplaceAll(src *Set) {
	if s == src {
		return
	}
	next := map[string]*View{}
	if src != nil {
		src.mu.RLock()
		for _, v := range src.byName {
			next[v.Name] = v
		}
		src.mu.RUnlock()
	}
	s.mu.Lock()
	s.byName = next
	s.mu.Unlock()
}

// UseMemo installs a shared match memo consulted by BestMatch. Install at
// construction time, before the set is visible to other goroutines; the
// tuner's what-if designs share one memo per tuning phase.
func (s *Set) UseMemo(mm *MatchMemo) { s.memo = mm }

// BestMatch finds the highest-value view in the set that answers n,
// preferring exact matches, then the smallest view (cheapest to read).
func (s *Set) BestMatch(n *logical.Node) (*Match, bool) {
	var best *Match
	for _, v := range s.All() {
		m, ok := s.matchNode(n, v)
		if !ok {
			continue
		}
		if best == nil || better(m, best) {
			best = m
		}
	}
	return best, best != nil
}

func (s *Set) matchNode(n *logical.Node, v *View) (*Match, bool) {
	if s.memo != nil {
		return s.memo.match(n, v)
	}
	return MatchNode(n, v)
}

func better(a, b *Match) bool {
	if a.Exact != b.Exact {
		return a.Exact
	}
	return a.View.SizeBytes() < b.View.SizeBytes()
}

package views_test

import (
	"strings"
	"testing"

	"miso/internal/storage"
	"miso/internal/views"
)

// sizedView builds a bare view whose size and recency are fully controlled:
// one string row padded to the requested byte count.
func sizedView(t *testing.T, name string, size int64, lastUsed int) *views.View {
	t.Helper()
	sch, err := storage.NewSchema(storage.Column{Name: "pad", Type: storage.KindString})
	if err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(name, sch)
	tbl.MustAppend(storage.Row{storage.StringValue(strings.Repeat("x", int(size)))})
	return &views.View{
		Name:        name,
		Table:       tbl,
		LastUsedSeq: lastUsed,
		Checksum:    storage.ChecksumTable(tbl),
	}
}

// naiveEvictLRU is the reference policy the optimized single-scan version
// must reproduce: rescan the whole set per eviction, always removing the
// least-recently-used view, preferring the larger on a recency tie and the
// lexicographically first name on a full tie.
func naiveEvictLRU(s *views.Set, budgetBytes int64) []*views.View {
	var evicted []*views.View
	for s.TotalBytes() > budgetBytes {
		var worst *views.View
		for _, v := range s.All() {
			switch {
			case worst == nil:
				worst = v
			case v.LastUsedSeq != worst.LastUsedSeq:
				if v.LastUsedSeq < worst.LastUsedSeq {
					worst = v
				}
			case v.SizeBytes() != worst.SizeBytes():
				if v.SizeBytes() > worst.SizeBytes() {
					worst = v
				}
			case v.Name < worst.Name:
				worst = v
			}
		}
		if worst == nil {
			break
		}
		s.Remove(worst.Name)
		evicted = append(evicted, worst)
	}
	return evicted
}

// evictFixture builds a set with deliberate recency and size ties.
func evictFixture(t *testing.T) *views.Set {
	t.Helper()
	s := views.NewSet()
	specs := []struct {
		name     string
		size     int64
		lastUsed int
	}{
		{"v_f", 100, 5},
		{"v_a", 300, 1}, // oldest, larger: evicted first
		{"v_b", 100, 1}, // oldest, smaller
		{"v_d", 200, 3}, // recency+size tie with v_c: name breaks it
		{"v_c", 200, 3},
		{"v_e", 50, 3},
		{"v_g", 400, 9}, // most recent, largest: evicted last
	}
	for _, sp := range specs {
		s.Add(sizedView(t, sp.name, sp.size, sp.lastUsed))
	}
	return s
}

func TestEvictLRUDeterministicOrder(t *testing.T) {
	s := evictFixture(t)
	evicted := views.EvictLRU(s, 0)
	var got []string
	for _, v := range evicted {
		got = append(got, v.Name)
	}
	want := []string{"v_a", "v_b", "v_c", "v_d", "v_e", "v_f", "v_g"}
	if len(got) != len(want) {
		t.Fatalf("evicted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eviction order %v, want %v", got, want)
		}
	}
}

// TestEvictLRUMatchesNaivePolicy sweeps every budget level: the single-scan
// implementation must evict exactly the views, in exactly the order, of the
// per-eviction rescan it replaced.
func TestEvictLRUMatchesNaivePolicy(t *testing.T) {
	total := evictFixture(t).TotalBytes()
	for budget := int64(0); budget <= total+10; budget += 25 {
		fast, slow := evictFixture(t), evictFixture(t)
		got := views.EvictLRU(fast, budget)
		want := naiveEvictLRU(slow, budget)
		if len(got) != len(want) {
			t.Fatalf("budget %d: evicted %d views, reference evicted %d", budget, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i].Name {
				t.Fatalf("budget %d: eviction %d = %s, reference %s", budget, i, got[i].Name, want[i].Name)
			}
		}
		if fast.TotalBytes() > budget {
			t.Fatalf("budget %d: set still over budget at %d bytes", budget, fast.TotalBytes())
		}
		if fast.Len() != slow.Len() {
			t.Fatalf("budget %d: survivor counts differ", budget)
		}
	}
}

func TestEvictLRUUnderBudgetIsNoop(t *testing.T) {
	s := evictFixture(t)
	n := s.Len()
	if evicted := views.EvictLRU(s, s.TotalBytes()); evicted != nil {
		t.Fatalf("under-budget eviction removed %d views", len(evicted))
	}
	if s.Len() != n {
		t.Error("under-budget eviction mutated the set")
	}
}

package views_test

import (
	"testing"

	"miso/internal/storage"
)

func TestVerifyDetectsCorruption(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	if v.Checksum == 0 {
		t.Fatal("materialized view not stamped with a checksum")
	}
	if !v.Verify() {
		t.Fatal("fresh view fails verification")
	}
	if v.Table.NumRows() == 0 {
		t.Fatal("fixture view is empty; corruption test needs rows")
	}
	v.Table.Rows[0][0] = storage.StringValue("tampered")
	if v.Verify() {
		t.Error("tampered view still verifies")
	}
}

func TestCloneIsolatesCorruption(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	v.LogGens = map[string]int{"tweets": 0}
	c := v.Clone()
	if c.Table == v.Table || c.Def == v.Def {
		t.Fatal("clone shares mutable structure")
	}
	c.Table.Rows[0][0] = storage.StringValue("tampered")
	c.LogGens["tweets"] = 9
	if !v.Verify() {
		t.Error("corrupting the clone damaged the original")
	}
	if v.LogGens["tweets"] != 0 {
		t.Error("clone shares generation stamps")
	}
	if c.Verify() {
		t.Error("tampered clone still verifies")
	}
}

func TestStampGenerationsAndStaleness(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	logs := v.BaseLogs()
	if len(logs) != 1 || logs[0] != "tweets" {
		t.Fatalf("BaseLogs = %v, want [tweets]", logs)
	}
	gen := func(g int) func(string) (int, bool) {
		return func(name string) (int, bool) {
			if name != "tweets" {
				return 0, false
			}
			return g, true
		}
	}
	v.StampGenerations(gen(2))
	if v.LogGens["tweets"] != 2 {
		t.Fatalf("stamped generations %v", v.LogGens)
	}
	if v.Stale(gen(2)) {
		t.Error("view stale at its own generation")
	}
	if !v.Stale(gen(3)) {
		t.Error("view not stale after the log advanced")
	}
	// Unknown logs contribute no stamp and never staleness.
	unknown := func(string) (int, bool) { return 0, false }
	if v.Stale(unknown) {
		t.Error("unknown log reported stale")
	}
	// A join view stamps every base log and goes stale if any advances.
	j := f.makeView(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id WHERE c.category = 'bar'`)
	if got := j.BaseLogs(); len(got) != 2 {
		t.Fatalf("join BaseLogs = %v", got)
	}
	j.StampGenerations(func(string) (int, bool) { return 0, true })
	if !j.Stale(func(name string) (int, bool) {
		if name == "landmarks" {
			return 1, true
		}
		return 0, true
	}) {
		t.Error("join view not stale after one base log advanced")
	}
}

func TestUnstampedViewsNeverStale(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets")
	if v.Stale(func(string) (int, bool) { return 99, true }) {
		t.Error("unstamped view reported stale")
	}
}

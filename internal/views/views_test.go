package views_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/logical"
	"miso/internal/storage"
	"miso/internal/views"
)

type fixture struct {
	cat *storage.Catalog
	b   *logical.Builder
	env *exec.Env
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{cat: cat, b: logical.NewBuilder(cat)}
	f.env = &exec.Env{
		ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) },
	}
	return f
}

// makeView materializes the SPJ core (below the final projection) of a
// query as a view.
func (f *fixture) makeView(t testing.TB, sql string) *views.View {
	t.Helper()
	plan, err := f.b.BuildSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	core := plan
	for core.Kind == logical.KindProject || core.Kind == logical.KindSort ||
		core.Kind == logical.KindLimit {
		core = core.Child(0)
	}
	table, err := exec.Run(core, f.env)
	if err != nil {
		t.Fatal(err)
	}
	return views.New(core, table, 0)
}

func (f *fixture) corePlan(t testing.TB, sql string) *logical.Node {
	t.Helper()
	plan, err := f.b.BuildSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	core := plan
	for core.Kind == logical.KindProject || core.Kind == logical.KindSort ||
		core.Kind == logical.KindLimit {
		core = core.Child(0)
	}
	return core
}

func TestExactMatch(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	n := f.corePlan(t, "SELECT user_id FROM tweets WHERE lang = 'en'")
	// Same filter, wide extract: the SPJ cores are identical.
	m, ok := views.MatchNode(n, v)
	if !ok || !m.Exact {
		t.Fatalf("expected exact match, got %+v ok=%v", m, ok)
	}
}

func TestSubsumptionMatchWithResidual(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	n := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
	m, ok := views.MatchNode(n, v)
	if !ok {
		t.Fatal("no match")
	}
	if m.Exact {
		t.Fatal("should be subsumption, not exact")
	}
	if len(m.Residual) != 1 {
		t.Fatalf("residual = %d conjuncts", len(m.Residual))
	}

	// The rewrite must compute the same relation as the original.
	rw, err := m.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	env := &exec.Env{
		ReadLog: f.env.ReadLog,
		ReadView: func(name string) (*storage.Table, error) {
			if name != v.Name {
				t.Fatalf("unexpected view %q", name)
			}
			return v.Table, nil
		},
	}
	got, err := exec.Run(rw, env)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(n, f.env)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Errorf("rewrite rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	if got.Schema.String() != want.Schema.String() {
		t.Errorf("rewrite schema %s, want %s", got.Schema, want.Schema)
	}
}

func TestNoMatchWhenViewStricter(t *testing.T) {
	f := newFixture(t)
	// View filters MORE than the query needs: cannot serve it.
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
	n := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	if _, ok := views.MatchNode(n, v); ok {
		t.Error("stricter view matched weaker query")
	}
}

func TestNoMatchAcrossDifferentSources(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT checkin_id FROM checkins WHERE category = 'bar'")
	n := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	if _, ok := views.MatchNode(n, v); ok {
		t.Error("checkins view matched tweets query")
	}
}

func TestJoinViewSubsumesRefinedJoin(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id WHERE c.category = 'bar'`)
	n := f.corePlan(t, `SELECT c.checkin_id FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE c.category = 'bar' AND l.rating >= 3.0`)
	m, ok := views.MatchNode(n, v)
	if !ok {
		t.Fatal("join view did not subsume refined join")
	}
	if m.Exact {
		t.Error("expected subsumption")
	}
}

func TestExactOnlyViewsSkipSubsumption(t *testing.T) {
	f := newFixture(t)
	v := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	v.ExactOnly = true
	n := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
	if _, ok := views.MatchNode(n, v); ok {
		t.Error("exact-only view matched via subsumption")
	}
	// Exact still works.
	same := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	if _, ok := views.MatchNode(same, v); !ok {
		t.Error("exact-only view failed exact match")
	}
}

func TestAggregateViewsMatchExactOnly(t *testing.T) {
	f := newFixture(t)
	plan, err := f.b.BuildSQL("SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang")
	if err != nil {
		t.Fatal(err)
	}
	agg := plan.Child(0) // aggregate below the projection
	table, err := exec.Run(agg, f.env)
	if err != nil {
		t.Fatal(err)
	}
	v := views.New(agg, table, 0)
	// Identical aggregate: exact.
	plan2, _ := f.b.BuildSQL("SELECT lang, COUNT(*) AS cnt FROM tweets GROUP BY lang")
	if m, ok := views.MatchNode(plan2.Child(0), v); !ok || !m.Exact {
		t.Error("identical aggregate should exact-match")
	}
	// Different grouping: no match.
	plan3, _ := f.b.BuildSQL("SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag")
	if _, ok := views.MatchNode(plan3.Child(0), v); ok {
		t.Error("different grouping matched")
	}
}

func TestSetOperations(t *testing.T) {
	f := newFixture(t)
	v1 := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	v2 := f.makeView(t, "SELECT checkin_id FROM checkins WHERE category = 'bar'")
	s := views.NewSet()
	s.Add(v1)
	s.Add(v2)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.TotalBytes() != v1.SizeBytes()+v2.SizeBytes() {
		t.Error("TotalBytes mismatch")
	}
	all := s.All()
	if len(all) != 2 || all[0].Name > all[1].Name {
		t.Error("All not sorted")
	}
	c := s.Clone()
	c.Remove(v1.Name)
	if !s.Has(v1.Name) || c.Has(v1.Name) {
		t.Error("clone not independent")
	}
}

func TestBestMatchPrefersExact(t *testing.T) {
	f := newFixture(t)
	broad := f.makeView(t, "SELECT tweet_id FROM tweets")
	exact := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	s := views.NewSet()
	s.Add(broad)
	s.Add(exact)
	n := f.corePlan(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	m, ok := s.BestMatch(n)
	if !ok {
		t.Fatal("no match")
	}
	if !m.Exact || m.View.Name != exact.Name {
		t.Errorf("best match = %s exact=%v, want the exact view", m.View.Name, m.Exact)
	}
}

func TestEvictLRU(t *testing.T) {
	f := newFixture(t)
	old := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	old.LastUsedSeq = 1
	recent := f.makeView(t, "SELECT tweet_id FROM tweets WHERE lang = 'es'")
	recent.LastUsedSeq = 9
	s := views.NewSet()
	s.Add(old)
	s.Add(recent)
	// Budget fits only one.
	evicted := views.EvictLRU(s, recent.SizeBytes()+old.SizeBytes()/2)
	if len(evicted) != 1 || evicted[0].Name != old.Name {
		t.Fatalf("evicted %v, want the older view", evicted)
	}
	if !s.Has(recent.Name) {
		t.Error("recent view evicted")
	}
	// Zero budget clears everything.
	views.EvictLRU(s, 0)
	if s.Len() != 0 {
		t.Error("zero budget left views behind")
	}
}

func TestNameForSigStable(t *testing.T) {
	a := views.NameForSig("some-signature")
	b := views.NameForSig("some-signature")
	c := views.NameForSig("other")
	if a != b || a == c {
		t.Error("NameForSig not a stable function of the signature")
	}
}

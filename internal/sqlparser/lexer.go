// Package sqlparser implements a lexer and recursive-descent parser for the
// HiveQL subset used by the multistore workload: SELECT queries with joins,
// WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, derived tables, scalar function
// calls (including HV-only UDFs), and the usual literal and operator forms.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol
)

// Token is one lexeme with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "ON": true, "AND": true,
	"OR": true, "NOT": true, "LIKE": true, "IN": true, "BETWEEN": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "NULL": true, "TRUE": true,
	"FALSE": true, "IS": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "UNION": true, "ALL": true,
}

// Lexer splits SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for unterminated strings and
// illegal characters.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{}, fmt.Errorf("sqlparser: unterminated string at offset %d", start)
	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "<>", "!=", "=="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokSymbol, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("(),*=<>+-/%.", rune(c)) {
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sqlparser: illegal character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize runs the lexer to completion, returning all tokens including the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

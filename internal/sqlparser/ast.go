package sqlparser

import (
	"fmt"
	"strings"
)

// Expr is the interface implemented by all expression AST nodes.
type Expr interface {
	exprNode()
	// SQL renders the expression back to SQL text (used for error
	// messages and canonical signatures downstream).
	SQL() string
}

// Ident is a possibly qualified column reference (table.col or col).
type Ident struct {
	Qualifier string
	Name      string
}

func (*Ident) exprNode() {}

// SQL implements Expr.
func (e *Ident) SQL() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// Literal is a typed constant: int64, float64, string, bool, or nil (NULL).
type Literal struct {
	Value any
}

func (*Literal) exprNode() {}

// SQL implements Expr.
func (e *Literal) SQL() string {
	switch v := e.Value.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case bool:
		if v {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Binary is a binary operation. Op is one of the SQL operators in upper
// case: AND OR = != < <= > >= + - * / % LIKE.
type Binary struct {
	Op          string
	Left, Right Expr
}

func (*Binary) exprNode() {}

// SQL implements Expr.
func (e *Binary) SQL() string {
	return "(" + e.Left.SQL() + " " + e.Op + " " + e.Right.SQL() + ")"
}

// Unary is NOT or unary minus.
type Unary struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (*Unary) exprNode() {}

// SQL implements Expr.
func (e *Unary) SQL() string { return "(" + e.Op + " " + e.Expr.SQL() + ")" }

// Call is a function call: builtin scalar, aggregate, or UDF. Star marks
// COUNT(*).
type Call struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*Call) exprNode() {}

// SQL implements Expr.
func (e *Call) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	Expr   Expr
	Negate bool
}

func (*IsNull) exprNode() {}

// SQL implements Expr.
func (e *IsNull) SQL() string {
	if e.Negate {
		return "(" + e.Expr.SQL() + " IS NOT NULL)"
	}
	return "(" + e.Expr.SQL() + " IS NULL)"
}

// InList is "expr [NOT] IN (v1, v2, ...)".
type InList struct {
	Expr   Expr
	Items  []Expr
	Negate bool
}

func (*InList) exprNode() {}

// SQL implements Expr.
func (e *InList) SQL() string {
	items := make([]string, len(e.Items))
	for i, it := range e.Items {
		items[i] = it.SQL()
	}
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return "(" + e.Expr.SQL() + " " + not + "IN (" + strings.Join(items, ", ") + "))"
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// JoinType distinguishes inner from left outer joins.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
)

func (t JoinType) String() string {
	if t == LeftJoin {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// TableRef is a FROM-clause item: either a named base log or a derived
// table (subquery) with a mandatory alias.
type TableRef struct {
	Name     string
	Alias    string
	Subquery *Query
}

// EffectiveName returns the name this table is referenced by in expressions.
func (t *TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON pairing in the FROM clause.
type JoinClause struct {
	Type  JoinType
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Query is the root AST node for a SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// WalkExprs calls fn for every expression in the query, excluding those in
// nested subqueries.
func (q *Query) WalkExprs(fn func(Expr)) {
	var walk func(Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch v := e.(type) {
		case *Binary:
			walk(v.Left)
			walk(v.Right)
		case *Unary:
			walk(v.Expr)
		case *Call:
			for _, a := range v.Args {
				walk(a)
			}
		case *IsNull:
			walk(v.Expr)
		case *InList:
			walk(v.Expr)
			for _, it := range v.Items {
				walk(it)
			}
		}
	}
	for _, s := range q.Select {
		walk(s.Expr)
	}
	for _, j := range q.Joins {
		walk(j.On)
	}
	walk(q.Where)
	for _, g := range q.GroupBy {
		walk(g)
	}
	walk(q.Having)
	for _, o := range q.OrderBy {
		walk(o.Expr)
	}
}

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

// next consumes and returns the current token; the trailing EOF token is
// never consumed, so errors reported after premature input end stay in
// range.
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) backup()     { p.pos-- }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *Parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	q.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q.From = from

	for {
		jt, ok := p.acceptJoin()
		if !ok {
			break
		}
		tbl, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, JoinClause{Type: jt, Table: tbl, On: on})
	}

	if p.acceptKeyword("WHERE") {
		q.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		q.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected number after LIMIT, found %s", t)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *Parser) acceptJoin() (JoinType, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return InnerJoin, true
	case p.acceptKeyword("INNER"):
		if p.acceptKeyword("JOIN") {
			return InnerJoin, true
		}
		p.backup()
		return 0, false
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		if p.acceptKeyword("JOIN") {
			return LeftJoin, true
		}
		p.backup()
		return 0, false
	default:
		return 0, false
	}
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent && t.Kind != TokString {
			return SelectItem{}, p.errorf("expected alias after AS, found %s", t)
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.acceptSymbol("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return TableRef{}, err
		}
		p.acceptKeyword("AS")
		t := p.next()
		if t.Kind != TokIdent {
			return TableRef{}, p.errorf("derived table requires an alias, found %s", t)
		}
		return TableRef{Subquery: sub, Alias: t.Text}, nil
	}
	t := p.next()
	if t.Kind != TokIdent {
		return TableRef{}, p.errorf("expected table name, found %s", t)
	}
	ref := TableRef{Name: t.Text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.Kind != TokIdent {
			return TableRef{}, p.errorf("expected alias after AS, found %s", a)
		}
		ref.Alias = a.Text
	} else if a := p.peek(); a.Kind == TokIdent {
		p.pos++
		ref.Alias = a.Text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
// OR -> AND -> NOT -> comparison (= != < <= > >= LIKE IN IS) -> additive ->
// multiplicative -> unary minus -> primary.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Expr: left, Negate: neg}, nil
	}
	if p.acceptKeyword("NOT") {
		if !p.acceptKeyword("IN") {
			return nil, p.errorf("expected IN after NOT, found %s", p.peek())
		}
		return p.parseInList(left, true)
	}
	if p.acceptKeyword("IN") {
		return p.parseInList(left, false)
	}
	if p.acceptKeyword("LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "LIKE", Left: left, Right: right}, nil
	}
	if t := p.peek(); t.Kind == TokSymbol {
		op := t.Text
		switch op {
		case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
			p.pos++
			if op == "==" {
				op = "="
			}
			if op == "<>" {
				op = "!="
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseInList(left Expr, negate bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var items []Expr
	for {
		it, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &InList{Expr: left, Items: items, Negate: negate}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "+", Left: left, Right: right}
		case p.acceptSymbol("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "*", Left: left, Right: right}
		case p.acceptSymbol("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "/", Left: left, Right: right}
		case p.acceptSymbol("%"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: "%", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch v := lit.Value.(type) {
			case int64:
				return &Literal{Value: -v}, nil
			case float64:
				return &Literal{Value: -v}, nil
			}
		}
		return &Unary{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokNumber:
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Value: n}, nil
	case TokString:
		return &Literal{Value: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			return &Literal{Value: nil}, nil
		case "TRUE":
			return &Literal{Value: true}, nil
		case "FALSE":
			return &Literal{Value: false}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TokSymbol:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case TokIdent:
		// Function call?
		if p.acceptSymbol("(") {
			call := &Call{Name: strings.ToUpper(t.Text)}
			if p.acceptSymbol("*") {
				call.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptSymbol(")") {
				return call, nil
			}
			call.Distinct = p.acceptKeyword("DISTINCT")
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified name?
		if p.acceptSymbol(".") {
			n := p.next()
			if n.Kind != TokIdent {
				return nil, p.errorf("expected column after %q., found %s", t.Text, n)
			}
			return &Ident{Qualifier: t.Text, Name: n.Text}, nil
		}
		return &Ident{Name: t.Text}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

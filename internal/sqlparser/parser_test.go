package sqlparser

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s' FROM t WHERE x >= 1.5 -- trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokString, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokNumber, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (kind %v), want kind %v", i, toks[i], toks[i].Kind, k)
		}
	}
	if toks[3].Text != "it's" {
		t.Errorf("escaped string = %q", toks[3].Text)
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Tokenize("SELECT a ; b"); err == nil {
		t.Error("illegal character accepted")
	}
}

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParse(t, "SELECT a, b AS bee, COUNT(*) n FROM t WHERE a = 1 LIMIT 3")
	if len(q.Select) != 3 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[1].Alias != "bee" || q.Select[2].Alias != "n" {
		t.Errorf("aliases = %q, %q", q.Select[1].Alias, q.Select[2].Alias)
	}
	call, ok := q.Select[2].Expr.(*Call)
	if !ok || !call.Star || call.Name != "COUNT" {
		t.Errorf("COUNT(*) parsed as %#v", q.Select[2].Expr)
	}
	if q.From.Name != "t" || q.Limit != 3 {
		t.Errorf("from=%q limit=%d", q.From.Name, q.Limit)
	}
	if q.Where == nil {
		t.Error("where missing")
	}
}

func TestParseJoins(t *testing.T) {
	q := mustParse(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y`)
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if q.Joins[0].Type != InnerJoin || q.Joins[1].Type != LeftJoin {
		t.Errorf("join types = %v %v", q.Joins[0].Type, q.Joins[1].Type)
	}
	on, ok := q.Joins[0].On.(*Binary)
	if !ok || on.Op != "=" {
		t.Fatalf("on expr = %#v", q.Joins[0].On)
	}
	l := on.Left.(*Ident)
	if l.Qualifier != "a" || l.Name != "x" {
		t.Errorf("qualified ident = %+v", l)
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := q.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %#v", q.Where)
	}
	and, ok := or.Right.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND should bind tighter: %#v", or.Right)
	}

	q = mustParse(t, "SELECT a + b * c FROM t")
	add, ok := q.Select[0].Expr.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("arith top = %#v", q.Select[0].Expr)
	}
	if mul, ok := add.Right.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("* should bind tighter: %#v", add.Right)
	}
}

func TestParseComparisonForms(t *testing.T) {
	q := mustParse(t, `SELECT a FROM t WHERE a <> 1 AND b == 2 AND c LIKE 'x%'
		AND d IS NOT NULL AND e IN (1, 2) AND f NOT IN (3) AND NOT g`)
	var ops []string
	q.WalkExprs(func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			ops = append(ops, v.Op)
		case *IsNull:
			if !v.Negate {
				t.Error("IS NOT NULL lost negation")
			}
		case *InList:
			if len(v.Items) == 1 && !v.Negate {
				t.Error("NOT IN lost negation")
			}
		case *Unary:
			if v.Op != "NOT" {
				t.Errorf("unary op %q", v.Op)
			}
		}
	})
	joined := strings.Join(ops, " ")
	if !strings.Contains(joined, "!=") {
		t.Errorf("<> not normalized to !=: %v", ops)
	}
	if !strings.Contains(joined, "LIKE") {
		t.Errorf("LIKE missing: %v", ops)
	}
	if strings.Contains(joined, "==") {
		t.Errorf("== not normalized to =: %v", ops)
	}
}

func TestParseGroupHavingOrder(t *testing.T) {
	q := mustParse(t, `SELECT a, COUNT(*) AS n FROM t GROUP BY a
		HAVING COUNT(*) > 5 ORDER BY n DESC, a ASC`)
	if len(q.GroupBy) != 1 || q.Having == nil {
		t.Fatal("group/having missing")
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("order items = %d", len(q.OrderBy))
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, `SELECT u.n FROM (SELECT a, COUNT(*) AS n FROM t GROUP BY a) u
		JOIN s ON u.a = s.a`)
	if q.From.Subquery == nil || q.From.Alias != "u" {
		t.Fatalf("derived table = %+v", q.From)
	}
	if len(q.From.Subquery.GroupBy) != 1 {
		t.Error("nested group by lost")
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustParse(t, "SELECT DISTINCT a FROM t")
	if !q.Distinct {
		t.Error("DISTINCT lost")
	}
	q = mustParse(t, "SELECT COUNT(DISTINCT a) FROM t")
	call := q.Select[0].Expr.(*Call)
	if !call.Distinct {
		t.Error("COUNT(DISTINCT) lost")
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT 1, -2, 3.5, 'x', TRUE, FALSE, NULL FROM t")
	want := []any{int64(1), int64(-2), 3.5, "x", true, false, nil}
	for i, w := range want {
		lit, ok := q.Select[i].Expr.(*Literal)
		if !ok {
			t.Fatalf("item %d = %#v", i, q.Select[i].Expr)
		}
		if lit.Value != w {
			t.Errorf("literal %d = %v (%T), want %v (%T)", i, lit.Value, lit.Value, w, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",                        // no FROM
		"SELECT a FROM",                   // no table
		"SELECT a FROM t WHERE",           // dangling where
		"SELECT a FROM t GROUP a",         // GROUP without BY
		"SELECT a FROM t LIMIT x",         // non-numeric limit
		"SELECT a FROM (SELECT b FROM t)", // derived table without alias
		"SELECT a FROM t JOIN s",          // join without ON
		"SELECT a FROM t extra garbage tokens (",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestExprSQLRoundtrips(t *testing.T) {
	// SQL() output of a parsed expression must re-parse to an equivalent
	// expression (same SQL rendering).
	exprs := []string{
		"(a = 1)", "((a = 1) AND (b < 2))", "(name LIKE 'x%')",
		"((a + b) * 2)", "(t.col IS NULL)", "(a IN (1, 2, 3))",
		"F(a, 'lit')", "(NOT (a = b))",
	}
	for _, e := range exprs {
		q1 := mustParse(t, "SELECT "+e+" FROM t")
		sql := q1.Select[0].Expr.SQL()
		q2 := mustParse(t, "SELECT "+sql+" FROM t")
		if q2.Select[0].Expr.SQL() != sql {
			t.Errorf("roundtrip %q -> %q -> %q", e, sql, q2.Select[0].Expr.SQL())
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select a from t where a = 1 group by a order by a limit 1")
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 1 || q.Limit != 1 {
		t.Error("lower-case keywords mishandled")
	}
}

package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser pseudo-random token soup built
// from its own vocabulary; any input must produce a query or an error, but
// never a panic or an out-of-range access.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
		"JOIN", "LEFT", "OUTER", "INNER", "ON", "AND", "OR", "NOT", "LIKE",
		"IN", "IS", "NULL", "AS", "DISTINCT", "COUNT", "SUM", "(", ")", ",",
		"*", "=", "<", ">", "<=", ">=", "!=", "+", "-", "/", "%", ".",
		"t", "a", "b", "1", "2.5", "'s'",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(20)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = vocab[rng.Intn(len(vocab))]
		}
		sql := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", sql, r)
				}
			}()
			_, _ = Parse(sql)
		}()
	}
}

// TestParserNeverPanicsOnRandomBytes does the same with raw byte noise
// (exercising the lexer's error paths).
func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(32 + rng.Intn(95))
		}
		sql := "SELECT " + string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", sql, r)
				}
			}()
			_, _ = Parse(sql)
		}()
	}
}

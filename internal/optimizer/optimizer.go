// Package optimizer implements the multistore query optimizer. Given a raw
// logical plan and a (real or hypothetical) placement of views across the
// stores, it enumerates split points — downward-closed cuts of the plan
// whose HV-side subtrees execute in the big data store and whose outputs
// migrate into DW temp space for the remainder — rewrites each side with
// the views available in that store, costs the alternatives with the
// stores' what-if interfaces plus the transfer model, and picks the
// cheapest. UDF-bearing operators are pinned to HV; raw-log extraction can
// only happen in HV, unless a DW-resident view already covers the subtree,
// in which case the query can bypass HV entirely.
package optimizer

import (
	"fmt"
	"strings"

	"miso/internal/dw"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/views"
)

// Design is a placement of views across the two stores — the multistore
// physical design M = <Vh, Vd> of the paper.
type Design struct {
	HV *views.Set
	DW *views.Set
}

// EmptyDesign returns a design with no views in either store.
func EmptyDesign() Design {
	return Design{HV: views.NewSet(), DW: views.NewSet()}
}

// Cut is one migrated subtree of a multistore plan.
type Cut struct {
	// Node is the raw subtree that ends in HV (before HV-side rewriting).
	Node *logical.Node
	// HVPlan is the subtree rewritten with the HV views, or nil when the
	// subtree is answered directly by a DW-resident view.
	HVPlan *logical.Node
	// DWView is the DW-side rewrite when a DW view covers the subtree
	// (no HV work, no transfer).
	DWView *logical.Node
	// TempName is the temp-space name the DW part reads the migrated
	// working set under.
	TempName string
	// EstBytes is the estimated size of the migrated working set.
	EstBytes int64
}

// MultiPlan is one complete multistore execution alternative.
type MultiPlan struct {
	// HVOnly is set when the entire query executes in HV.
	HVOnly bool
	// HVPlan is the full rewritten plan for HV-only execution.
	HVPlan *logical.Node
	// Cuts are the migrated subtrees for split execution.
	Cuts []Cut
	// DWPart is the remainder executed in DW, reading cut outputs via
	// ViewScans; nil for HV-only plans.
	DWPart *logical.Node

	// Estimated cost components in simulated seconds.
	EstHV, EstTransfer, EstDW float64
	// EstTransferBytes is the total estimated migrated bytes.
	EstTransferBytes int64
}

// EstTotal is the plan's total estimated cost.
func (p *MultiPlan) EstTotal() float64 { return p.EstHV + p.EstTransfer + p.EstDW }

// Explain renders the multistore plan for humans: where each part runs,
// what migrates, and the estimated cost breakdown.
func (p *MultiPlan) Explain() string {
	var b strings.Builder
	if p.HVOnly {
		fmt.Fprintf(&b, "HV-only plan (est %.1fs):\n", p.EstHV)
		b.WriteString(indent(p.HVPlan.String(), "  "))
		return b.String()
	}
	fmt.Fprintf(&b, "split plan (est %.1fs = HV %.1f + transfer %.1f + DW %.1f):\n",
		p.EstTotal(), p.EstHV, p.EstTransfer, p.EstDW)
	for i, cut := range p.Cuts {
		if cut.DWView != nil {
			fmt.Fprintf(&b, "cut %d: answered by a DW-resident view\n", i)
			b.WriteString(indent(cut.DWView.String(), "  "))
			continue
		}
		fmt.Fprintf(&b, "cut %d: executes in HV, migrates ~%.2f GB as %s\n",
			i, float64(cut.EstBytes)/1e9, cut.TempName)
		b.WriteString(indent(cut.HVPlan.String(), "  "))
	}
	b.WriteString("remainder executes in DW:\n")
	b.WriteString(indent(p.DWPart.String(), "  "))
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Optimizer plans queries across the two stores.
type Optimizer struct {
	hv   *hv.Store
	dw   *dw.Store
	est  *stats.Estimator
	tcfg transfer.Config

	// MaxPlans caps split enumeration per query.
	MaxPlans int
	// DisableSplits restricts planning to HV-only execution (used by the
	// HV-ONLY and HV-OP system variants).
	DisableSplits bool
}

// New creates an optimizer over the two stores.
func New(h *hv.Store, d *dw.Store, est *stats.Estimator, tcfg transfer.Config) *Optimizer {
	return &Optimizer{hv: h, dw: d, est: est, tcfg: tcfg, MaxPlans: 256}
}

// RewriteWithViews rewrites the plan greedily top-down, replacing each
// subtree by the best matching view in the set. It returns the (possibly
// unchanged) plan.
func RewriteWithViews(n *logical.Node, set *views.Set) *logical.Node {
	if set != nil && set.Len() > 0 {
		if m, ok := set.BestMatch(n); ok {
			if r, err := m.Rewrite(); err == nil {
				return r
			}
		}
	}
	if len(n.Children) == 0 {
		return n
	}
	c := n.Clone()
	changed := false
	for i := range c.Children {
		nc := RewriteWithViews(c.Children[i], set)
		if nc != c.Children[i] {
			changed = true
		}
		c.Children[i] = nc
	}
	if !changed {
		return n
	}
	return c
}

// enumerateCuts lists candidate frontiers: each frontier is a set of
// subtree roots that execute in HV (or resolve to DW views), with
// everything above running in DW. The frontier {root} (HV-only) is NOT
// included; it is handled separately.
func (o *Optimizer) enumerateCuts(n *logical.Node, limit int) [][]*logical.Node {
	options := [][]*logical.Node{{n}}
	if n.Kind == logical.KindExtract || n.Kind == logical.KindScan ||
		n.Kind == logical.KindViewScan || len(n.Children) == 0 {
		return options
	}
	// For n to run in DW, its own expressions must be UDF-free.
	if n.UsesUDFHere() {
		return options
	}
	combos := [][]*logical.Node{nil}
	for _, c := range n.Children {
		childOpts := o.enumerateCuts(c, limit)
		var next [][]*logical.Node
		for _, base := range combos {
			for _, co := range childOpts {
				merged := make([]*logical.Node, 0, len(base)+len(co))
				merged = append(merged, base...)
				merged = append(merged, co...)
				next = append(next, merged)
				if len(next) >= limit {
					break
				}
			}
			if len(next) >= limit {
				break
			}
		}
		combos = next
	}
	options = append(options, combos...)
	if len(options) > limit {
		options = options[:limit]
	}
	return options
}

// buildPlan assembles and costs the multistore plan for one frontier.
func (o *Optimizer) buildPlan(raw *logical.Node, frontier []*logical.Node, d Design) (*MultiPlan, error) {
	plan := &MultiPlan{}
	var totalBytes int64

	// Replace each frontier subtree in the DW part.
	replace := map[*logical.Node]*logical.Node{}
	for i, cutNode := range frontier {
		cut := Cut{Node: cutNode, TempName: fmt.Sprintf("ws_%d", i)}
		if d.DW != nil {
			if m, ok := d.DW.BestMatch(cutNode); ok {
				if r, err := m.Rewrite(); err == nil {
					cut.DWView = r
					replace[cutNode] = r
					plan.Cuts = append(plan.Cuts, cut)
					continue
				}
			}
		}
		cut.HVPlan = RewriteWithViews(cutNode, d.HV)
		st := o.est.Estimate(cutNode)
		cut.EstBytes = st.Bytes
		totalBytes += st.Bytes
		o.est.RecordView(cut.TempName, st)
		replace[cutNode] = logical.NewViewScan(cut.TempName, cutNode.Schema())
		plan.EstHV += o.hv.CostPlan(cut.HVPlan)
		plan.EstTransfer += transfer.Cost(o.tcfg, st.Bytes).Total()
		plan.Cuts = append(plan.Cuts, cut)
	}
	plan.EstTransferBytes = totalBytes

	dwPart, err := substitute(raw, replace)
	if err != nil {
		return nil, err
	}
	if dwPart.UsesUDF() {
		return nil, fmt.Errorf("optimizer: DW part contains a UDF")
	}
	plan.DWPart = dwPart
	plan.EstDW = o.dw.CostPlan(dwPart)
	return plan, nil
}

// substitute clones the tree, swapping replaced subtrees.
func substitute(n *logical.Node, replace map[*logical.Node]*logical.Node) (*logical.Node, error) {
	if r, ok := replace[n]; ok {
		return r, nil
	}
	if len(n.Children) == 0 {
		return nil, fmt.Errorf("optimizer: leaf %s not covered by any cut", n.Kind)
	}
	c := n.Clone()
	for i := range n.Children {
		nc, err := substitute(n.Children[i], replace)
		if err != nil {
			return nil, err
		}
		c.Children[i] = nc
	}
	return c, nil
}

// hvOnlyPlan builds and costs full-HV execution.
func (o *Optimizer) hvOnlyPlan(raw *logical.Node, d Design) *MultiPlan {
	p := RewriteWithViews(raw, d.HV)
	return &MultiPlan{HVOnly: true, HVPlan: p, EstHV: o.hv.CostPlan(p)}
}

// EnumeratePlans returns every candidate multistore plan with estimated
// costs: the HV-only plan first, then one plan per enumerated split.
func (o *Optimizer) EnumeratePlans(raw *logical.Node, d Design) []*MultiPlan {
	plans := []*MultiPlan{o.hvOnlyPlan(raw, d)}
	if o.DisableSplits {
		return plans
	}
	for _, frontier := range o.enumerateCuts(raw, o.MaxPlans) {
		if len(frontier) == 1 && frontier[0] == raw {
			continue // HV-only already covered
		}
		p, err := o.buildPlan(raw, frontier, d)
		if err != nil {
			continue // invalid split (UDF above the cut, etc.)
		}
		plans = append(plans, p)
	}
	return plans
}

// Choose returns the cheapest multistore plan for the query under the
// design.
func (o *Optimizer) Choose(raw *logical.Node, d Design) (*MultiPlan, error) {
	plans := o.EnumeratePlans(raw, d)
	if len(plans) == 0 {
		return nil, fmt.Errorf("optimizer: no feasible plan")
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.EstTotal() < best.EstTotal() {
			best = p
		}
	}
	return best, nil
}

// Cost is the what-if interface: the estimated cost of the query's best
// plan under a hypothetical design.
func (o *Optimizer) Cost(raw *logical.Node, d Design) float64 {
	best, err := o.Choose(raw, d)
	if err != nil {
		return 0
	}
	return best.EstTotal()
}

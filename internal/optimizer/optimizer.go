// Package optimizer implements the multistore query optimizer. Given a raw
// logical plan and a (real or hypothetical) placement of views across the
// stores, it enumerates split points — downward-closed cuts of the plan
// whose HV-side subtrees execute in the big data store and whose outputs
// migrate into DW temp space for the remainder — rewrites each side with
// the views available in that store, costs the alternatives with the
// stores' what-if interfaces plus the transfer model, and picks the
// cheapest. UDF-bearing operators are pinned to HV; raw-log extraction can
// only happen in HV, unless a DW-resident view already covers the subtree,
// in which case the query can bypass HV entirely.
package optimizer

import (
	"fmt"
	"strings"

	"miso/internal/dw"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/views"
)

// Design is a placement of views across the two stores — the multistore
// physical design M = <Vh, Vd> of the paper.
type Design struct {
	HV *views.Set
	DW *views.Set
}

// EmptyDesign returns a design with no views in either store.
func EmptyDesign() Design {
	return Design{HV: views.NewSet(), DW: views.NewSet()}
}

// Cut is one migrated subtree of a multistore plan.
type Cut struct {
	// Node is the raw subtree that ends in HV (before HV-side rewriting).
	Node *logical.Node
	// HVPlan is the subtree rewritten with the HV views, or nil when the
	// subtree is answered directly by a DW-resident view.
	HVPlan *logical.Node
	// DWView is the DW-side rewrite when a DW view covers the subtree
	// (no HV work, no transfer).
	DWView *logical.Node
	// TempName is the temp-space name the DW part reads the migrated
	// working set under.
	TempName string
	// EstBytes is the estimated size of the migrated working set.
	EstBytes int64
}

// MultiPlan is one complete multistore execution alternative.
type MultiPlan struct {
	// HVOnly is set when the entire query executes in HV.
	HVOnly bool
	// HVPlan is the full rewritten plan for HV-only execution.
	HVPlan *logical.Node
	// Cuts are the migrated subtrees for split execution.
	Cuts []Cut
	// DWPart is the remainder executed in DW, reading cut outputs via
	// ViewScans; nil for HV-only plans.
	DWPart *logical.Node

	// Estimated cost components in simulated seconds.
	EstHV, EstTransfer, EstDW float64
	// EstTransferBytes is the total estimated migrated bytes.
	EstTransferBytes int64
}

// EstTotal is the plan's total estimated cost.
func (p *MultiPlan) EstTotal() float64 { return p.EstHV + p.EstTransfer + p.EstDW }

// Explain renders the multistore plan for humans: where each part runs,
// what migrates, and the estimated cost breakdown.
func (p *MultiPlan) Explain() string {
	var b strings.Builder
	if p.HVOnly {
		fmt.Fprintf(&b, "HV-only plan (est %.1fs):\n", p.EstHV)
		b.WriteString(indent(p.HVPlan.String(), "  "))
		return b.String()
	}
	fmt.Fprintf(&b, "split plan (est %.1fs = HV %.1f + transfer %.1f + DW %.1f):\n",
		p.EstTotal(), p.EstHV, p.EstTransfer, p.EstDW)
	for i, cut := range p.Cuts {
		if cut.DWView != nil {
			fmt.Fprintf(&b, "cut %d: answered by a DW-resident view\n", i)
			b.WriteString(indent(cut.DWView.String(), "  "))
			continue
		}
		fmt.Fprintf(&b, "cut %d: executes in HV, migrates ~%.2f GB as %s\n",
			i, float64(cut.EstBytes)/1e9, cut.TempName)
		b.WriteString(indent(cut.HVPlan.String(), "  "))
	}
	b.WriteString("remainder executes in DW:\n")
	b.WriteString(indent(p.DWPart.String(), "  "))
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Optimizer plans queries across the two stores.
type Optimizer struct {
	hv   *hv.Store
	dw   *dw.Store
	est  *stats.Estimator
	tcfg transfer.Config

	// MaxPlans caps split enumeration per query.
	MaxPlans int
	// DisableSplits restricts planning to HV-only execution (used by the
	// HV-ONLY and HV-OP system variants).
	DisableSplits bool
	// ReuseProbe, when set, reports whether the cross-query reuse cache
	// holds the materialized subresult for a cut subtree; such a cut then
	// charges no HV execution cost, steering plan choice toward cached
	// work. The probe must be safe for concurrent calls (EnumeratePlans
	// runs under the tuner's parallel what-if workers) and must not
	// mutate optimizer state; costing with a nil probe is unchanged.
	ReuseProbe func(*logical.Node) bool
}

// New creates an optimizer over the two stores.
func New(h *hv.Store, d *dw.Store, est *stats.Estimator, tcfg transfer.Config) *Optimizer {
	return &Optimizer{hv: h, dw: d, est: est, tcfg: tcfg, MaxPlans: 256}
}

// RewriteWithViews rewrites the plan greedily top-down, replacing each
// subtree by the best matching view in the set. It returns the (possibly
// unchanged) plan.
func RewriteWithViews(n *logical.Node, set *views.Set) *logical.Node {
	// The rewrite overwrites every child slot, so only the node itself
	// needs copying; subtrees the rewrite leaves alone stay shared.
	return rewriteWithViews(n, set, (*logical.Node).CloneShallow)
}

func rewriteWithViews(n *logical.Node, set *views.Set, clone func(*logical.Node) *logical.Node) *logical.Node {
	if set != nil && set.Len() > 0 {
		if m, ok := set.BestMatch(n); ok {
			if r, err := m.Rewrite(); err == nil {
				return r
			}
		}
	}
	if len(n.Children) == 0 {
		return n
	}
	c := clone(n)
	changed := false
	for i := range c.Children {
		nc := rewriteWithViews(c.Children[i], set, clone)
		if nc != c.Children[i] {
			changed = true
		}
		c.Children[i] = nc
	}
	if !changed {
		return n
	}
	return c
}

// enumerateCuts lists candidate frontiers: each frontier is a set of
// subtree roots that execute in HV (or resolve to DW views), with
// everything above running in DW. The frontier {root} (HV-only) is NOT
// included; it is handled separately.
func (o *Optimizer) enumerateCuts(n *logical.Node, limit int) [][]*logical.Node {
	options := [][]*logical.Node{{n}}
	if n.Kind == logical.KindExtract || n.Kind == logical.KindScan ||
		n.Kind == logical.KindViewScan || len(n.Children) == 0 {
		return options
	}
	// For n to run in DW, its own expressions must be UDF-free.
	if n.UsesUDFHere() {
		return options
	}
	combos := [][]*logical.Node{nil}
	for _, c := range n.Children {
		childOpts := o.enumerateCuts(c, limit)
		var next [][]*logical.Node
		for _, base := range combos {
			for _, co := range childOpts {
				merged := make([]*logical.Node, 0, len(base)+len(co))
				merged = append(merged, base...)
				merged = append(merged, co...)
				next = append(next, merged)
				if len(next) >= limit {
					break
				}
			}
			if len(next) >= limit {
				break
			}
		}
		combos = next
	}
	options = append(options, combos...)
	if len(options) > limit {
		options = options[:limit]
	}
	return options
}

// cutEval memoizes the frontier-independent evaluation of one cut subtree
// within a single plan enumeration: its DW-view rewrite (when one covers
// it), or its HV rewrite, estimated output, HV cost and transfer cost.
// The same subtree appears in many enumerated frontiers; evaluating it
// once per EnumeratePlans call instead of once per frontier removes the
// dominant repeated work from the what-if path. Only the migrated working
// set's temp name differs per frontier (it is positional), so that stays
// in buildPlan. Every memoized value is a pure function of the node and
// the design, which EnumeratePlans holds fixed.
type cutEval struct {
	dwView *logical.Node // non-nil when a DW-resident view answers the cut
	hvPlan *logical.Node
	st     stats.Stat
	hvCost float64
	xfer   float64
}

func (o *Optimizer) evalCut(cutNode *logical.Node, d Design, memo map[*logical.Node]*cutEval) *cutEval {
	if memo != nil {
		if ce, ok := memo[cutNode]; ok {
			return ce
		}
	}
	ce := &cutEval{}
	if d.DW != nil {
		if m, ok := d.DW.BestMatch(cutNode); ok {
			if r, err := m.Rewrite(); err == nil {
				ce.dwView = r
				if memo != nil {
					memo[cutNode] = ce
				}
				return ce
			}
		}
	}
	ce.st = o.est.Estimate(cutNode)
	if memo != nil {
		ce.hvPlan = RewriteWithViews(cutNode, d.HV)
		ce.hvCost = o.hv.CostPlan(ce.hvPlan)
	} else {
		ce.hvPlan = rewriteWithViews(cutNode, d.HV, (*logical.Node).CloneDeep)
		ce.hvCost = o.hv.CostPlanBaseline(ce.hvPlan)
	}
	ce.xfer = transfer.Cost(o.tcfg, ce.st.Bytes).Total()
	if memo != nil {
		memo[cutNode] = ce
	}
	return ce
}

// buildPlan assembles and costs the multistore plan for one frontier.
// The what-if stats of the hypothetical migrated working sets live in a
// plan-local overlay rather than the shared estimator cache, so buildPlan
// never mutates shared state: concurrent costing calls reusing the same
// temp names (ws_0, ws_1, ...) cannot clobber each other.
func (o *Optimizer) buildPlan(raw *logical.Node, frontier []*logical.Node, d Design, memo map[*logical.Node]*cutEval) (*MultiPlan, error) {
	plan := &MultiPlan{}
	var totalBytes int64

	// Replace each frontier subtree in the DW part.
	replace := map[*logical.Node]*logical.Node{}
	var overlay map[string]stats.Stat
	for i, cutNode := range frontier {
		cut := Cut{Node: cutNode, TempName: fmt.Sprintf("ws_%d", i)}
		ce := o.evalCut(cutNode, d, memo)
		if ce.dwView != nil {
			cut.DWView = ce.dwView
			replace[cutNode] = ce.dwView
			plan.Cuts = append(plan.Cuts, cut)
			continue
		}
		cut.HVPlan = ce.hvPlan
		cut.EstBytes = ce.st.Bytes
		totalBytes += ce.st.Bytes
		if memo == nil {
			// Baseline path: publish the hypothetical working set's stat
			// to the shared estimator, as the original costing did.
			o.est.RecordView(cut.TempName, ce.st)
		} else {
			if overlay == nil {
				overlay = make(map[string]stats.Stat, len(frontier))
			}
			overlay["viewscan("+cut.TempName+")"] = ce.st
		}
		replace[cutNode] = logical.NewViewScan(cut.TempName, cutNode.Schema())
		if o.ReuseProbe == nil || !o.ReuseProbe(cutNode) {
			plan.EstHV += ce.hvCost
		}
		plan.EstTransfer += ce.xfer
		plan.Cuts = append(plan.Cuts, cut)
	}
	plan.EstTransferBytes = totalBytes

	clone := (*logical.Node).CloneShallow
	if memo == nil {
		clone = (*logical.Node).CloneDeep
	}
	dwPart, err := substitute(raw, replace, clone)
	if err != nil {
		return nil, err
	}
	if dwPart.UsesUDF() {
		return nil, fmt.Errorf("optimizer: DW part contains a UDF")
	}
	plan.DWPart = dwPart
	if memo != nil {
		plan.EstDW = o.dw.CostPlanWith(dwPart, overlay)
	} else {
		plan.EstDW = o.dw.CostPlanBaseline(dwPart, overlay)
	}
	return plan, nil
}

// substitute clones the tree, swapping replaced subtrees.
func substitute(n *logical.Node, replace map[*logical.Node]*logical.Node, clone func(*logical.Node) *logical.Node) (*logical.Node, error) {
	if r, ok := replace[n]; ok {
		return r, nil
	}
	if len(n.Children) == 0 {
		return nil, fmt.Errorf("optimizer: leaf %s not covered by any cut", n.Kind)
	}
	c := clone(n)
	for i := range n.Children {
		nc, err := substitute(n.Children[i], replace, clone)
		if err != nil {
			return nil, err
		}
		c.Children[i] = nc
	}
	return c, nil
}

// hvOnlyPlan builds and costs full-HV execution.
func (o *Optimizer) hvOnlyPlan(raw *logical.Node, d Design) *MultiPlan {
	p := RewriteWithViews(raw, d.HV)
	return &MultiPlan{HVOnly: true, HVPlan: p, EstHV: o.hv.CostPlan(p)}
}

// EnumeratePlans returns every candidate multistore plan with estimated
// costs: the HV-only plan first, then one plan per enumerated split.
//
// Concurrency contract: EnumeratePlans (and Choose/Cost above it) is a
// pure read of the stores, the estimator, and the design — it records no
// stats, stages no tables, and draws no faults — so any number of
// goroutines may cost plans concurrently, provided the raw plan's node
// signatures were prewarmed (logical.Node.PrewarmSignatures) and nothing
// concurrently mutates the design's view sets or the catalog.
func (o *Optimizer) EnumeratePlans(raw *logical.Node, d Design) []*MultiPlan {
	plans := []*MultiPlan{o.hvOnlyPlan(raw, d)}
	if o.DisableSplits {
		return plans
	}
	memo := map[*logical.Node]*cutEval{}
	for _, frontier := range o.enumerateCuts(raw, o.MaxPlans) {
		if len(frontier) == 1 && frontier[0] == raw {
			continue // HV-only already covered
		}
		p, err := o.buildPlan(raw, frontier, d, memo)
		if err != nil {
			continue // invalid split (UDF above the cut, etc.)
		}
		plans = append(plans, p)
	}
	return plans
}

// Choose returns the cheapest multistore plan for the query under the
// design.
func (o *Optimizer) Choose(raw *logical.Node, d Design) (*MultiPlan, error) {
	plans := o.EnumeratePlans(raw, d)
	if len(plans) == 0 {
		return nil, fmt.Errorf("optimizer: no feasible plan")
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.EstTotal() < best.EstTotal() {
			best = p
		}
	}
	return best, nil
}

// Cost is the what-if interface: the estimated cost of the query's best
// plan under a hypothetical design.
func (o *Optimizer) Cost(raw *logical.Node, d Design) float64 {
	best, err := o.Choose(raw, d)
	if err != nil {
		return 0
	}
	return best.EstTotal()
}

// CostBaseline is Cost without the per-enumeration cut memo, the stores'
// per-call size memos, or schema sharing in plan clones: every frontier
// deep-clones, re-rewrites, re-estimates, and re-costs its cut subtrees,
// as the original costing path did. The tuner's Config.BaselineCosting mode
// uses it so the benchmark pipeline can record the speedup baseline
// in-repo; both paths compute identical costs.
func (o *Optimizer) CostBaseline(raw *logical.Node, d Design) float64 {
	p := rewriteWithViews(raw, d.HV, (*logical.Node).CloneDeep)
	plans := []*MultiPlan{{HVOnly: true, HVPlan: p, EstHV: o.hv.CostPlanBaseline(p)}}
	if !o.DisableSplits {
		for _, frontier := range o.enumerateCuts(raw, o.MaxPlans) {
			if len(frontier) == 1 && frontier[0] == raw {
				continue
			}
			p, err := o.buildPlan(raw, frontier, d, nil)
			if err != nil {
				continue
			}
			plans = append(plans, p)
		}
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.EstTotal() < best.EstTotal() {
			best = p
		}
	}
	return best.EstTotal()
}

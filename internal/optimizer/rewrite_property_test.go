package optimizer_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"miso/internal/exec"
	"miso/internal/optimizer"
	"miso/internal/storage"
)

func fingerprint(t *storage.Table) string {
	rows := make([]string, 0, t.NumRows())
	for _, r := range t.Rows {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		rows = append(rows, sb.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestRewriteWithViewsPreservesSemantics is the view-rewriting soundness
// property: for randomly generated queries, executing the plan rewritten
// against a populated view set must return exactly the rows of the raw
// plan. Views are real materializations from earlier (randomly chosen)
// queries, so exact matches, subsumption matches with residual filters,
// and no-matches all occur.
func TestRewriteWithViewsPreservesSemantics(t *testing.T) {
	f := setup(t)
	rng := rand.New(rand.NewSource(17))

	// Populate the store with views by running a spread of queries.
	warm := []string{
		"SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > 100 GROUP BY lang",
		"SELECT lang, COUNT(*) AS n FROM tweets WHERE lang = 'en' GROUP BY lang",
		`SELECT l.city, COUNT(*) AS n FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id GROUP BY l.city`,
		`SELECT l.city, COUNT(*) AS n FROM checkins c
			JOIN landmarks l ON c.venue_id = l.venue_id
			WHERE c.category = 'bar' GROUP BY l.city`,
	}
	for i, sql := range warm {
		if _, err := f.hv.Execute(f.plan(t, sql), i); err != nil {
			t.Fatal(err)
		}
	}
	if f.hv.Views.Len() == 0 {
		t.Fatal("no views")
	}

	langs := []string{"en", "es", "ja"}
	thresholds := []int{50, 100, 200, 400}
	rewrites := 0
	for trial := 0; trial < 60; trial++ {
		var sql string
		switch rng.Intn(4) {
		case 0:
			sql = fmt.Sprintf("SELECT tweet_id FROM tweets WHERE retweets > %d",
				thresholds[rng.Intn(len(thresholds))])
		case 1:
			sql = fmt.Sprintf("SELECT tweet_id FROM tweets WHERE retweets > %d AND lang = '%s'",
				thresholds[rng.Intn(len(thresholds))], langs[rng.Intn(len(langs))])
		case 2:
			sql = fmt.Sprintf(`SELECT l.city, COUNT(*) AS n FROM checkins c
				JOIN landmarks l ON c.venue_id = l.venue_id
				WHERE c.category = '%s' GROUP BY l.city`,
				[]string{"bar", "cafe", "restaurant"}[rng.Intn(3)])
		default:
			sql = fmt.Sprintf("SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > %d GROUP BY lang",
				thresholds[rng.Intn(len(thresholds))])
		}
		raw := f.plan(t, sql)
		rewritten := optimizer.RewriteWithViews(raw, f.hv.Views)
		if rewritten != raw {
			rewrites++
		}
		env := f.hv.Env()
		want, err := exec.Run(raw, &exec.Env{ReadLog: env.ReadLog})
		if err != nil {
			t.Fatalf("raw %q: %v", sql, err)
		}
		got, err := exec.Run(rewritten, env)
		if err != nil {
			t.Fatalf("rewritten %q: %v", sql, err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("rewrite changed results for %q\nplan:\n%s", sql, rewritten)
		}
	}
	if rewrites == 0 {
		t.Error("no query was ever rewritten; property vacuous")
	}
	t.Logf("%d of 60 queries used views", rewrites)
}

// TestMaxPlansCapsEnumeration bounds the planner on a deep plan.
func TestMaxPlansCapsEnumeration(t *testing.T) {
	f := setup(t)
	f.opt.MaxPlans = 4
	p := f.plan(t, `SELECT l.city, COUNT(*) AS n FROM tweets t
		JOIN checkins c ON t.user_id = c.user_id
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE t.lang = 'en' GROUP BY l.city ORDER BY n DESC LIMIT 5`)
	plans := f.opt.EnumeratePlans(p, optimizer.EmptyDesign())
	if len(plans) > 5 { // HV-only + at most MaxPlans splits
		t.Errorf("enumerated %d plans with MaxPlans=4", len(plans))
	}
	if _, err := f.opt.Choose(p, optimizer.EmptyDesign()); err != nil {
		t.Fatal(err)
	}
}

package optimizer_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/exec"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/transfer"
	"miso/internal/views"
)

type fixture struct {
	cat *storage.Catalog
	b   *logical.Builder
	est *stats.Estimator
	hv  *hv.Store
	dw  *dw.Store
	opt *optimizer.Optimizer
}

func setup(t *testing.T) *fixture {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	return &fixture{
		cat: cat, b: logical.NewBuilder(cat), est: est, hv: h, dw: d,
		opt: optimizer.New(h, d, est, transfer.DefaultConfig()),
	}
}

func (f *fixture) plan(t *testing.T, sql string) *logical.Node {
	t.Helper()
	p, err := f.b.BuildSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const joinAgg = `SELECT l.city, COUNT(*) AS n FROM checkins c
	JOIN landmarks l ON c.venue_id = l.venue_id
	WHERE c.category = 'bar' GROUP BY l.city`

func TestEnumeratePlansIncludesHVOnlyAndSplits(t *testing.T) {
	f := setup(t)
	plans := f.opt.EnumeratePlans(f.plan(t, joinAgg), optimizer.EmptyDesign())
	if len(plans) < 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	if !plans[0].HVOnly {
		t.Error("first plan should be HV-only")
	}
	splits := 0
	for _, p := range plans[1:] {
		if p.HVOnly {
			t.Error("duplicate HV-only plan")
		}
		if p.DWPart == nil {
			t.Error("split plan without a DW part")
		}
		splits++
	}
	if splits == 0 {
		t.Error("no split plans enumerated")
	}
}

func TestSplitPlansKeepUDFsInHV(t *testing.T) {
	f := setup(t)
	p := f.plan(t, `SELECT lang, COUNT(*) AS n FROM tweets
		WHERE SENTIMENT(text) > 0 GROUP BY lang`)
	for _, mp := range f.opt.EnumeratePlans(p, optimizer.EmptyDesign()) {
		if mp.HVOnly {
			continue
		}
		if mp.DWPart.UsesUDF() {
			t.Fatal("a split plan put UDF work in DW")
		}
	}
}

func TestSplitExecutionMatchesHVOnly(t *testing.T) {
	f := setup(t)
	p := f.plan(t, joinAgg)
	hvRes, err := f.hv.Execute(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Execute every enumerated split for real and compare row counts.
	for i, mp := range f.opt.EnumeratePlans(p, optimizer.EmptyDesign()) {
		if mp.HVOnly {
			continue
		}
		for _, cut := range mp.Cuts {
			if cut.DWView != nil {
				continue
			}
			res, err := f.hv.Execute(cut.HVPlan, 0)
			if err != nil {
				t.Fatalf("plan %d cut: %v", i, err)
			}
			f.dw.StageTemp(cut.TempName, res.Table)
		}
		dwRes, err := f.dw.Execute(mp.DWPart)
		if err != nil {
			t.Fatalf("plan %d DW part: %v", i, err)
		}
		if dwRes.Table.NumRows() != hvRes.Table.NumRows() {
			t.Errorf("plan %d: %d rows, HV-only %d",
				i, dwRes.Table.NumRows(), hvRes.Table.NumRows())
		}
		f.dw.ClearTemp()
	}
}

func TestChoosePicksCheapest(t *testing.T) {
	f := setup(t)
	p := f.plan(t, joinAgg)
	d := optimizer.EmptyDesign()
	plans := f.opt.EnumeratePlans(p, d)
	best, err := f.opt.Choose(p, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, mp := range plans {
		if mp.EstTotal() < best.EstTotal() {
			t.Errorf("Choose returned %.1f, but a plan costs %.1f", best.EstTotal(), mp.EstTotal())
		}
	}
}

func TestDWResidentViewEnablesBypass(t *testing.T) {
	f := setup(t)
	p := f.plan(t, joinAgg)
	// Materialize the query's join core and place it in DW.
	core := p.Child(0).Child(0) // aggregate -> join chain
	for core.Kind == logical.KindFilter {
		core = core.Child(0)
	}
	if core.Kind != logical.KindJoin {
		// Walk down from the root to the join.
		p.Walk(func(n *logical.Node) {
			if n.Kind == logical.KindJoin {
				core = n
			}
		})
	}
	table, err := exec.Run(core, f.hv.Env())
	if err != nil {
		t.Fatal(err)
	}
	v := views.New(core, table, 0)
	f.dw.Views.Add(v)
	f.est.RecordView(v.Name, stats.Stat{Rows: int64(table.NumRows()), Bytes: table.LogicalBytes()})

	d := optimizer.Design{HV: views.NewSet(), DW: f.dw.Views}
	best, err := f.opt.Choose(p, d)
	if err != nil {
		t.Fatal(err)
	}
	if best.HVOnly {
		t.Fatal("optimizer ignored the DW view")
	}
	allFromDW := true
	for _, cut := range best.Cuts {
		if cut.DWView == nil {
			allFromDW = false
		}
	}
	if !allFromDW {
		t.Error("expected a full bypass via the DW-resident join view")
	}
	if best.EstHV != 0 || best.EstTransfer != 0 {
		t.Errorf("bypass should cost no HV/transfer time: hv=%.1f xfer=%.1f",
			best.EstHV, best.EstTransfer)
	}
}

func TestHVViewLowersHVCost(t *testing.T) {
	f := setup(t)
	p := f.plan(t, joinAgg)
	empty := optimizer.EmptyDesign()
	coldCost := f.opt.Cost(p, empty)

	// Execute once so opportunistic views exist in HV.
	if _, err := f.hv.Execute(p, 0); err != nil {
		t.Fatal(err)
	}
	warm := optimizer.Design{HV: f.hv.Views, DW: views.NewSet()}
	warmCost := f.opt.Cost(p, warm)
	if warmCost >= coldCost {
		t.Errorf("warm cost %.1f not below cold %.1f", warmCost, coldCost)
	}
}

func TestRewriteWithViewsIdentityWhenEmpty(t *testing.T) {
	f := setup(t)
	p := f.plan(t, joinAgg)
	if got := optimizer.RewriteWithViews(p, views.NewSet()); got != p {
		t.Error("empty set rewrite should return the plan unchanged")
	}
	if got := optimizer.RewriteWithViews(p, nil); got != p {
		t.Error("nil set rewrite should return the plan unchanged")
	}
}

func TestDisableSplitsRestrictsToHVOnly(t *testing.T) {
	f := setup(t)
	f.opt.DisableSplits = true
	plans := f.opt.EnumeratePlans(f.plan(t, joinAgg), optimizer.EmptyDesign())
	if len(plans) != 1 || !plans[0].HVOnly {
		t.Errorf("DisableSplits produced %d plans", len(plans))
	}
}

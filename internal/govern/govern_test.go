package govern

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNilGovernanceIsNoop(t *testing.T) {
	var l *Ledger
	if err := l.Reserve(1 << 30); err != nil {
		t.Fatalf("nil ledger Reserve: %v", err)
	}
	l.Release(1 << 30)
	l.ReleaseAll()
	if l.Used() != 0 || l.HighWater() != 0 {
		t.Fatal("nil ledger reports usage")
	}
	sc := l.NewScope()
	if sc != nil {
		t.Fatal("nil ledger produced a scope")
	}
	if err := sc.Reserve(1); err != nil {
		t.Fatalf("nil scope Reserve: %v", err)
	}
	sc.Release()
	if NewLedger(0, nil) != nil {
		t.Fatal("unlimited ledger should be nil")
	}
	if NewPool(0) != nil {
		t.Fatal("unlimited pool should be nil")
	}
}

func TestLedgerLimit(t *testing.T) {
	l := NewLedger(100, nil)
	if err := l.Reserve(60); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	err := l.Reserve(50)
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("over-limit reserve: got %v, want ErrMemLimit", err)
	}
	if l.Used() != 60 {
		t.Fatalf("failed reserve leaked: used=%d", l.Used())
	}
	if err := l.Reserve(40); err != nil {
		t.Fatalf("exact fill: %v", err)
	}
	if l.HighWater() != 100 {
		t.Fatalf("high water = %d, want 100", l.HighWater())
	}
	l.Release(100)
	if l.Used() != 0 {
		t.Fatalf("used after release = %d", l.Used())
	}
}

func TestPoolSharedAcrossLedgers(t *testing.T) {
	p := NewPool(100)
	a := NewLedger(0, p)
	b := NewLedger(0, p)
	if err := a.Reserve(70); err != nil {
		t.Fatalf("a: %v", err)
	}
	if err := b.Reserve(40); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("pool overflow: got %v, want ErrMemLimit", err)
	}
	if err := b.Reserve(30); err != nil {
		t.Fatalf("b within pool: %v", err)
	}
	a.ReleaseAll()
	if p.Used() != 30 {
		t.Fatalf("pool used = %d, want 30", p.Used())
	}
	b.ReleaseAll()
	if p.Used() != 0 {
		t.Fatalf("pool used after all released = %d", p.Used())
	}
}

func TestScopeReleasesEverything(t *testing.T) {
	l := NewLedger(1000, nil)
	sc := l.NewScope()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := sc.Reserve(10); err != nil {
					t.Errorf("reserve: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if l.Used() != 800 {
		t.Fatalf("used = %d, want 800", l.Used())
	}
	sc.Release()
	if l.Used() != 0 {
		t.Fatalf("used after scope release = %d", l.Used())
	}
}

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture("join", func() error { panic(fmt.Errorf("boom")) })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("got %v, want ErrInternal", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("not a *PanicError: %v", err)
	}
	if pe.Op != "join" || len(pe.Stack) == 0 {
		t.Fatalf("panic context missing: op=%q stack=%dB", pe.Op, len(pe.Stack))
	}
	if err := Capture("ok", func() error { return nil }); err != nil {
		t.Fatalf("clean fn: %v", err)
	}
}

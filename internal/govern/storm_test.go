package govern

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolStorm hammers a small shared pool from many goroutines, each
// cycling reserve → work → release through its own ledger the way
// concurrent queries share Config.MemPoolBytes. The storm must finish
// (no deadlock), every goroutine must complete all its cycles (the
// retry loop bounds starvation), the pool must never exceed capacity,
// and after the storm every byte must be back (no lost refunds) — run
// with -race.
func TestPoolStorm(t *testing.T) {
	const (
		capacity   = 1 << 10 // 1 KiB shared across everyone
		workers    = 32
		cycles     = 50
		perReserve = 256 // 4 concurrent holders max: heavy contention
	)
	pool := NewPool(capacity)
	var completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			led := NewLedger(0, pool)
			for c := 0; c < cycles; c++ {
				for {
					err := led.Reserve(perReserve)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrMemLimit) {
						t.Errorf("reserve failed with unexpected error: %v", err)
						return
					}
					runtime.Gosched() // pool exhausted: yield and retry
				}
				if u := pool.Used(); u > capacity {
					t.Errorf("pool over capacity: %d > %d", u, capacity)
					led.ReleaseAll()
					return
				}
				led.ReleaseAll()
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := completed.Load(); got != workers*cycles {
		t.Fatalf("%d cycles completed, want %d (a goroutine starved or died)", got, workers*cycles)
	}
	if u := pool.Used(); u != 0 {
		t.Fatalf("pool leaks %d bytes after all ledgers released", u)
	}
}

// TestPoolStormPartialReleases mixes per-allocation Release with
// ReleaseAll under contention: interleaved partial refunds must not
// corrupt the pool's accounting.
func TestPoolStormPartialReleases(t *testing.T) {
	pool := NewPool(4 << 10)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			led := NewLedger(0, pool)
			for c := 0; c < 100; c++ {
				if err := led.Reserve(64); err != nil {
					runtime.Gosched()
					continue
				}
				if err := led.Reserve(32); err == nil {
					led.Release(32)
				}
				led.ReleaseAll()
			}
		}()
	}
	wg.Wait()
	if u := pool.Used(); u != 0 {
		t.Fatalf("pool leaks %d bytes after mixed partial/full releases", u)
	}
}

// Package govern is the query-level resource-governance plane: per-query
// memory reservation ledgers drawing on a server-wide pool, and panic
// capture that converts a worker goroutine's panic into a typed error so
// one bad operator cannot kill the process or other in-flight queries.
//
// The package is a leaf: exec, hv, dw, multistore, serve, and the tuner
// all import it, so it must not import any of them. Every method is
// nil-receiver safe — a nil *Pool, *Ledger, or *Scope is the disabled
// governance plane and costs one branch per call.
package govern

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Typed sentinels callers match with errors.Is.
var (
	// ErrMemLimit marks a query aborted because a memory reservation
	// exceeded its per-query limit or exhausted the server-wide pool.
	ErrMemLimit = errors.New("govern: memory limit exceeded")
	// ErrInternal marks a query that failed because a worker goroutine
	// panicked; the panic was contained and converted to this error, so
	// the process and all other queries stay alive.
	ErrInternal = errors.New("govern: internal error (worker panic contained)")
)

// Pool is the server-wide memory pool shared by every in-flight query's
// ledger. A nil pool is unlimited.
type Pool struct {
	capacity int64
	used     atomic.Int64
}

// NewPool returns a pool with the given capacity in bytes, or nil
// (unlimited) when capacity <= 0.
func NewPool(capacity int64) *Pool {
	if capacity <= 0 {
		return nil
	}
	return &Pool{capacity: capacity}
}

// tryReserve attempts to take n bytes from the pool, returning false when
// the pool would overflow. Safe for concurrent use.
func (p *Pool) tryReserve(n int64) bool {
	if p == nil {
		return true
	}
	for {
		cur := p.used.Load()
		if cur+n > p.capacity {
			return false
		}
		if p.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// release returns n bytes to the pool.
func (p *Pool) release(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.used.Add(-n)
}

// Used reports the bytes currently reserved across all ledgers.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// Capacity reports the pool's capacity; 0 means unlimited (nil pool).
func (p *Pool) Capacity() int64 {
	if p == nil {
		return 0
	}
	return p.capacity
}

// Ledger is one query's memory reservation account. Reservations are
// charged as extract buffers, hash partitions, sort keys, and
// materialized intermediates grow; exceeding the per-query limit or the
// shared pool returns an error wrapping ErrMemLimit. A nil ledger
// disables accounting. Safe for concurrent use by morsel workers.
type Ledger struct {
	limit int64 // per-query cap; 0 = unlimited
	pool  *Pool
	used  atomic.Int64
	high  atomic.Int64
}

// NewLedger returns a ledger enforcing the per-query limit (0 =
// unlimited) against the shared pool (nil = unlimited). When both are
// unlimited it returns nil: governance fully disabled, zero overhead.
func NewLedger(limit int64, pool *Pool) *Ledger {
	if limit <= 0 && pool == nil {
		return nil
	}
	if limit < 0 {
		limit = 0
	}
	return &Ledger{limit: limit, pool: pool}
}

// Reserve charges n bytes to the query, or returns an error wrapping
// ErrMemLimit leaving the ledger unchanged. n <= 0 is a no-op.
func (l *Ledger) Reserve(n int64) error {
	if l == nil || n <= 0 {
		return nil
	}
	now := l.used.Add(n)
	if l.limit > 0 && now > l.limit {
		l.used.Add(-n)
		return fmt.Errorf("%w: query needs %d B over %d B in use, per-query limit %d B",
			ErrMemLimit, n, now-n, l.limit)
	}
	if !l.pool.tryReserve(n) {
		l.used.Add(-n)
		return fmt.Errorf("%w: query needs %d B but server pool has %d of %d B in use",
			ErrMemLimit, n, l.pool.Used(), l.pool.Capacity())
	}
	for {
		h := l.high.Load()
		if now <= h || l.high.CompareAndSwap(h, now) {
			return nil
		}
	}
}

// Release returns n bytes to the ledger (and pool).
func (l *Ledger) Release(n int64) {
	if l == nil || n <= 0 {
		return
	}
	l.used.Add(-n)
	l.pool.release(n)
}

// ReleaseAll returns every outstanding byte, ending the query's account.
func (l *Ledger) ReleaseAll() {
	if l == nil {
		return
	}
	n := l.used.Swap(0)
	l.pool.release(n)
}

// Used reports the bytes currently reserved.
func (l *Ledger) Used() int64 {
	if l == nil {
		return 0
	}
	return l.used.Load()
}

// HighWater reports the peak reservation over the ledger's lifetime.
func (l *Ledger) HighWater() int64 {
	if l == nil {
		return 0
	}
	return l.high.Load()
}

// NewScope opens a scoped sub-account for one operator's transient state
// (hash partitions, sort keys, chunk buffers): the operator reserves as
// its buffers grow and Release returns everything at once when the
// operator's output is materialized. Nil-safe.
func (l *Ledger) NewScope() *Scope {
	if l == nil {
		return nil
	}
	return &Scope{l: l}
}

// Scope tracks the reservations one operator made so they can be
// released together. Safe for concurrent use by morsel workers.
type Scope struct {
	l *Ledger
	n atomic.Int64
}

// Reserve charges n bytes to the scope's ledger.
func (s *Scope) Reserve(n int64) error {
	if s == nil || n <= 0 {
		return nil
	}
	if err := s.l.Reserve(n); err != nil {
		return err
	}
	s.n.Add(n)
	return nil
}

// Release returns every byte the scope reserved.
func (s *Scope) Release() {
	if s == nil {
		return
	}
	s.l.Release(s.n.Swap(0))
}

// PanicError is a worker panic converted to an error: the operator (or
// stage) that panicked, the recovered value, and the goroutine stack.
// It wraps ErrInternal, so errors.Is(err, govern.ErrInternal) matches.
type PanicError struct {
	// Op names the operator or worker that panicked ("join", "what-if").
	Op string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// NewPanicError builds a PanicError from a recovered value.
func NewPanicError(op string, value any, stack []byte) *PanicError {
	return &PanicError{Op: op, Value: value, Stack: stack}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("govern: panic in %s contained: %v", e.Op, e.Value)
}

// Unwrap makes errors.Is(err, ErrInternal) match.
func (e *PanicError) Unwrap() error { return ErrInternal }

// Capture runs fn, converting a panic into a *PanicError carrying op and
// the stack. Use it to wrap the body of every worker goroutine so a
// panicking operator fails only its own query.
func Capture(op string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = NewPanicError(op, v, debug.Stack())
		}
	}()
	return fn()
}

package core

import (
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/views"
	"miso/internal/workload"
)

// TestTunerInternals inspects benefits, interactions and knapsack items for
// the first analyst's session (informational; run with -v).
func TestTunerInternals(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	builder := logical.NewBuilder(cat)

	w := history.NewWindow(6, 3, 0.5)
	for i, name := range []string{"A1v1", "A1v2", "A1v3"} {
		q, _ := workload.ByName(name)
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := h.Execute(plan, i); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}

	cfg := DefaultConfig()
	base := cat.TotalLogicalBytes()
	cfg.Bh = 2 * base
	cfg.Bd = base / 5
	cfg.Bt = 10 << 30
	tuner := NewTuner(cfg, opt)

	cur := optimizer.Design{HV: h.Views, DW: d.Views}
	entries := w.Entries()
	weights := w.Weights()
	for _, v := range h.Views.All() {
		var bnD float64
		rel := 0
		for i, e := range entries {
			if !viewRelevant(e.Plan, v) {
				continue
			}
			rel++
			b := tuner.cost(e, nil, nil)
			bnD += weights[i] * max0(b-tuner.cost(e, nil, []*views.View{v}))
		}
		t.Logf("bnDW(%s kind=%v %.2fGB) = %.0f over %d relevant queries",
			v.Name, v.Def.Kind, float64(v.SizeBytes())/1e9, bnD, rel)
	}
	r, err := tuner.Tune(cur, w)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HV views before: %d (%.1fGB)", h.Views.Len(), float64(h.Views.TotalBytes())/1e9)
	for _, v := range h.Views.All() {
		t.Logf("  view %s %.2fGB rows=%d kind=%v", v.Name, float64(v.SizeBytes())/1e9,
			v.Table.NumRows(), v.Def.Kind)
	}
	t.Logf("new DW: %d views, moveToDW=%d, moveToHV=%d, dropped=%d",
		r.NewDW.Len(), len(r.MoveToDW), len(r.MoveToHV), len(r.DropHV))
	for _, v := range r.NewDW.All() {
		t.Logf("  DW <- %s %.2fGB kind=%v", v.Name, float64(v.SizeBytes())/1e9, v.Def.Kind)
	}
}

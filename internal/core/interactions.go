package core

import (
	"sort"

	"miso/internal/views"
)

// part is one interacting set of views.
type part struct {
	members []*views.View
}

// computeInteractingSets produces a stable partition of the view universe:
// views within a part interact strongly; views in different parts do not.
// An interaction is "strong" when its magnitude is a significant fraction
// (DoiThresholdFrac) of the weaker view's own predicted benefit — i.e. the
// presence of one view substantially changes what the other is worth.
// Parts are bounded by MaxPartSize: once a part is full, weaker edges that
// would grow it further are ignored, which keeps only the strongest
// interactions — the same effect as the paper's threshold choice.
func (t *Tuner) computeInteractingSets(universe []*views.View, doi map[[2]string]float64, bn map[string]float64) []*part {
	threshold := func(a, b string) float64 {
		lo := bn[a]
		if bn[b] < lo {
			lo = bn[b]
		}
		return lo * t.cfg.DoiThresholdFrac
	}

	// Union-find seeded with singletons.
	parent := map[string]string{}
	size := map[string]int{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, v := range universe {
		parent[v.Name] = v.Name
		size[v.Name] = 1
	}

	// Strongest edges first, so part-size capping keeps the strongest
	// interactions.
	type edge struct {
		a, b string
		d    float64
	}
	var edges []edge
	for k, d := range doi {
		if abs(d) > 0 && abs(d) >= threshold(k[0], k[1]) {
			edges = append(edges, edge{k[0], k[1], d})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if abs(edges[i].d) != abs(edges[j].d) {
			return abs(edges[i].d) > abs(edges[j].d)
		}
		return edges[i].a+edges[i].b < edges[j].a+edges[j].b
	})
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		if size[ra]+size[rb] > t.cfg.MaxPartSize {
			continue
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	byRoot := map[string]*part{}
	var order []string
	for _, v := range universe {
		r := find(v.Name)
		p, ok := byRoot[r]
		if !ok {
			p = &part{}
			byRoot[r] = p
			order = append(order, r)
		}
		p.members = append(p.members, v)
	}
	sort.Strings(order)
	out := make([]*part, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}

// sparsifySets turns each interacting set into independent knapsack items:
// positively interacting pairs are merged (recursively, strongest edge
// first) into single items whose benefit is the pair's combined benefit;
// among the remaining strongly negative alternatives only the best
// benefit-per-byte representative is kept.
func (t *Tuner) sparsifySets(parts []*part, doi map[[2]string]float64,
	bnDW, bnHV map[string]float64, inDW map[string]bool) []*Item {

	var items []*Item
	for _, p := range parts {
		// Start with one item per member view.
		cur := make([]*Item, 0, len(p.members))
		for _, v := range p.members {
			cur = append(cur, t.singleton(v, bnDW, bnHV, inDW))
		}
		// Merge positive pairs, strongest first, until none remain.
		for {
			bi, bj, best := -1, -1, 0.0
			for i := 0; i < len(cur); i++ {
				for j := i + 1; j < len(cur); j++ {
					d := itemDoi(cur[i], cur[j], doi)
					if d > best {
						bi, bj, best = i, j, d
					}
				}
			}
			if bi < 0 {
				break
			}
			merged := mergeItems(cur[bi], cur[bj], best)
			next := make([]*Item, 0, len(cur)-1)
			for k, it := range cur {
				if k != bi && k != bj {
					next = append(next, it)
				}
			}
			cur = append(next, merged)
		}
		// Negative interactions remain within the part: only the best
		// benefit-per-byte representative competes for placement. The
		// rest are demoted to retention-only candidates — they never
		// move, but HV keeps them while space remains, because a view
		// that is redundant under the current window costs nothing to
		// hold and may serve a later analyst revisiting the same slice.
		if len(cur) > 1 && hasNegativeEdge(cur, doi) {
			sort.Slice(cur, func(i, j int) bool {
				return perByte(cur[i]) > perByte(cur[j])
			})
			for _, it := range cur[1:] {
				it.BnDW = 0
				if it.MoveToHV == 0 {
					it.BnHV = 1e-9
				} else {
					it.BnHV = 0
				}
			}
		}
		items = append(items, cur...)
	}
	return items
}

func (t *Tuner) singleton(v *views.View, bnDW, bnHV map[string]float64, inDW map[string]bool) *Item {
	it := &Item{
		Views: []*views.View{v},
		Size:  v.SizeBytes(),
		BnDW:  bnDW[v.Name],
		BnHV:  bnHV[v.Name],
	}
	if inDW[v.Name] {
		it.MoveToHV = v.SizeBytes()
	} else {
		it.MoveToDW = v.SizeBytes()
	}
	// Net out the cost of realizing the placement: moving a view only
	// pays off when its predicted benefit exceeds the move time.
	it.BnDW -= float64(it.MoveToDW) * t.cfg.MovePenaltyPerByteDW
	it.BnHV -= float64(it.MoveToHV) * t.cfg.MovePenaltyPerByteHV
	if it.BnDW < 0 {
		it.BnDW = 0
	}
	if it.BnHV < 0 {
		it.BnHV = 0
	}
	// Retention: a view already sitting in HV costs nothing to keep, so
	// give it a vanishing benefit — the knapsack then retains it whenever
	// space remains after the genuinely beneficial views are packed.
	// Ad-hoc workloads revisit old slices (another analyst picking up the
	// same period), and dropping free storage would forfeit that.
	if it.MoveToHV == 0 && it.BnHV == 0 {
		it.BnHV = 1e-9
	}
	return it
}

// itemDoi sums the pairwise interactions across two items' views.
func itemDoi(a, b *Item, doi map[[2]string]float64) float64 {
	var sum float64
	for _, va := range a.Views {
		for _, vb := range b.Views {
			sum += doi[pairKey(va.Name, vb.Name)]
		}
	}
	return sum
}

func hasNegativeEdge(items []*Item, doi map[[2]string]float64) bool {
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if itemDoi(items[i], items[j], doi) < 0 {
				return true
			}
		}
	}
	return false
}

// mergeItems combines two positively interacting items: weight is the sum
// of sizes, benefit is the combined benefit (sum plus the interaction).
func mergeItems(a, b *Item, interaction float64) *Item {
	m := &Item{
		Views:    append(append([]*views.View{}, a.Views...), b.Views...),
		Size:     a.Size + b.Size,
		MoveToDW: a.MoveToDW + b.MoveToDW,
		MoveToHV: a.MoveToHV + b.MoveToHV,
		BnDW:     a.BnDW + b.BnDW + interaction,
		BnHV:     a.BnHV + b.BnHV + interaction*0.5,
	}
	if m.BnHV < 0 {
		m.BnHV = 0
	}
	return m
}

func perByte(it *Item) float64 {
	if it.Size <= 0 {
		return it.BnDW
	}
	return it.BnDW / float64(it.Size)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

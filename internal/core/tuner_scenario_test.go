package core

import (
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/workload"
)

// TestTunerAfterSplitExecution replicates the full system's state at the
// first reorganization (queries executed as split plans, not HV-only).
func TestTunerAfterSplitExecution(t *testing.T) {
	cat, _ := data.Generate(data.SmallConfig())
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	builder := logical.NewBuilder(cat)
	w := history.NewWindow(6, 3, 0.5)
	for i, name := range []string{"A1v1", "A1v2", "A1v3"} {
		q, _ := workload.ByName(name)
		plan, _ := builder.BuildSQL(q.SQL)
		mp, err := opt.Choose(plan, optimizer.Design{HV: h.Views, DW: d.Views})
		if err != nil {
			t.Fatal(err)
		}
		if mp.HVOnly {
			if _, err := h.Execute(mp.HVPlan, i); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, cut := range mp.Cuts {
				if cut.DWView != nil {
					continue
				}
				res, err := h.Execute(cut.HVPlan, i)
				if err != nil {
					t.Fatal(err)
				}
				d.StageTemp(cut.TempName, res.Table)
			}
			if _, err := d.Execute(mp.DWPart); err != nil {
				t.Fatal(err)
			}
			d.ClearTemp()
		}
		w.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}
	cfg := DefaultConfig()
	base := cat.TotalLogicalBytes()
	cfg.Bh, cfg.Bd, cfg.Bt = 2*base, 2*base/10, 10<<30
	tuner := NewTuner(cfg, opt)
	tuner.Debug = func(items, dwChosen, hvChosen []*Item) {
		for _, it := range items {
			t.Logf("item %v size=%.2fGB bnDW=%.0f bnHV=%.0f moveDW=%.2fGB",
				it.names(), float64(it.Size)/1e9, it.BnDW, it.BnHV, float64(it.MoveToDW)/1e9)
		}
		for _, it := range dwChosen {
			t.Logf("DW CHOSE %v (%.2fGB bn=%.0f)", it.names(), float64(it.Size)/1e9, it.BnDW)
		}
		t.Logf("dwChosen=%d hvChosen=%d", len(dwChosen), len(hvChosen))
	}
	if _, err := tuner.Tune(optimizer.Design{HV: h.Views, DW: d.Views}, w); err != nil {
		t.Fatal(err)
	}
	for _, v := range h.Views.All() {
		t.Logf("HV view %s kind=%v %.2fGB", v.Name, v.Def.Kind, float64(v.SizeBytes())/1e9)
	}
}

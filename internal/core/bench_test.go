package core

import (
	"fmt"
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/views"
	"miso/internal/workload"
)

// benchTunerSetup executes a 6-query evolving window in HV so its
// opportunistic views form a realistic candidate universe (33 views under
// data.SmallConfig), and returns everything a Tune call needs.
func benchTunerSetup(b testing.TB) (Config, *optimizer.Optimizer, *history.Window, optimizer.Design) {
	b.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	builder := logical.NewBuilder(cat)
	win := history.NewWindow(6, 3, 0.5)
	for i, q := range workload.Evolving()[:6] {
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Execute(plan, i); err != nil {
			b.Fatal(err)
		}
		win.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}
	cfg := DefaultConfig()
	base := cat.TotalLogicalBytes()
	cfg.Bh, cfg.Bd, cfg.Bt = 2*base, 2*base/10, 10<<30
	cur := optimizer.Design{HV: h.Views, DW: d.Views}
	return cfg, opt, win, cur
}

// BenchmarkTunerReorganization measures one full reorganization decision —
// benefits, interactions, sparsification, and both knapsacks — over a
// 6-query window with a realistic view universe. The paper's claim is that
// tuning is lightweight relative to query execution; this quantifies the
// computational side of that claim. The baseline sub-benchmark runs the
// original serial costing path (Config.BaselineCosting); the workers=N
// variants run the current path at that pool size.
func BenchmarkTunerReorganization(b *testing.B) {
	cfg, opt, win, cur := benchTunerSetup(b)
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh tuner per iteration: the cost cache is part of the
			// work being measured.
			tuner := NewTuner(cfg, opt)
			if _, err := tuner.Tune(cur, win); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cur.HV.Len()), "candidate-views")
	}
	b.Run("baseline", func(b *testing.B) {
		c := cfg
		c.BaselineCosting = true
		run(b, c)
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			c := cfg
			c.TuneWorkers = w
			run(b, c)
		})
	}
}

// BenchmarkTunerCostKey regresses the cost-cache hot path: a cache hit
// must build its fixed-size (seq, view-set hash) key without allocating.
// The companion TestTunerCostKeyZeroAllocOnHit asserts the 0 allocs/op
// this benchmark reports.
func BenchmarkTunerCostKey(b *testing.B) {
	cfg, opt, win, cur := benchTunerSetup(b)
	tuner := NewTuner(cfg, opt)
	e := win.Entries()[0]
	universe := cur.HV.All()
	if len(universe) < 2 {
		b.Fatalf("need >= 2 candidate views, have %d", len(universe))
	}
	pair := []*views.View{universe[0], universe[1]}
	// Warm the entries so every measured call is a hit.
	tuner.cost(e, nil, nil)
	tuner.cost(e, nil, pair[:1])
	tuner.cost(e, pair[:1], pair[1:])
	tuner.cost(e, nil, pair)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuner.cost(e, nil, nil)
		tuner.cost(e, nil, pair[:1])
		tuner.cost(e, pair[:1], pair[1:])
		tuner.cost(e, nil, pair)
	}
}

// BenchmarkKnapsackPacking isolates the DP itself at a realistic size.
func BenchmarkKnapsackPacking(b *testing.B) {
	gb := int64(1) << 30
	items := make([]*Item, 48)
	for i := range items {
		size := int64(i%13+1) * gb / 4
		items[i] = item(size, size, float64(100+i*7%91))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packKnapsack(items, 400*gb, 10*gb, 0, dwDims)
	}
}

package core

import (
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/workload"
)

// BenchmarkTunerReorganization measures one full reorganization decision —
// benefits, interactions, sparsification, and both knapsacks — over a
// 6-query window with a realistic view universe. The paper's claim is that
// tuning is lightweight relative to query execution; this quantifies the
// computational side of that claim.
func BenchmarkTunerReorganization(b *testing.B) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	builder := logical.NewBuilder(cat)
	win := history.NewWindow(6, 3, 0.5)
	for i, q := range workload.Evolving()[:6] {
		plan, err := builder.BuildSQL(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Execute(plan, i); err != nil {
			b.Fatal(err)
		}
		win.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}
	cfg := DefaultConfig()
	base := cat.TotalLogicalBytes()
	cfg.Bh, cfg.Bd, cfg.Bt = 2*base, 2*base/10, 10<<30
	cur := optimizer.Design{HV: h.Views, DW: d.Views}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh tuner per iteration: the cost cache is part of the
		// work being measured.
		tuner := NewTuner(cfg, opt)
		if _, err := tuner.Tune(cur, win); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.Views.Len()), "candidate-views")
}

// BenchmarkKnapsackPacking isolates the DP itself at a realistic size.
func BenchmarkKnapsackPacking(b *testing.B) {
	gb := int64(1) << 30
	items := make([]*Item, 48)
	for i := range items {
		size := int64(i%13+1) * gb / 4
		items[i] = item(size, size, float64(100+i*7%91))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packKnapsack(items, 400*gb, 10*gb, 0, dwDims)
	}
}

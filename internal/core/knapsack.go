package core

// packKnapsack solves the 0-1 multidimensional knapsack of the paper's
// M-KNAPSACK step via dynamic programming over discretized capacities. The
// two dimensions are the store's view storage budget and the reorganization
// transfer budget; dims returns an item's transfer consumption and benefit
// for the store being packed (Case 1 of the recurrence is an item with
// nonzero transfer need; Case 2 consumes storage only). Items that do not
// fit either dimension, or have no benefit, are skipped.
func packKnapsack(items []*Item, storageCap, xferCap, d int64,
	dims func(*Item) (int64, float64)) []*Item {

	// Discretization: an explicit d (the paper's 1 GB) applies to both
	// dimensions; otherwise each dimension picks a budget-relative unit
	// so small budgets keep enough resolution and huge budgets keep the
	// DP table small.
	da, db := d, d
	if d <= 0 {
		da = clampUnit(storageCap / 512)
		db = clampUnit(xferCap / 64)
	}
	ca := int(storageCap / da)
	cb := int(xferCap / db)
	if ca < 0 {
		ca = 0
	}
	if cb < 0 {
		cb = 0
	}
	width := cb + 1
	cells := (ca + 1) * width

	type weighted struct {
		item   *Item
		wa, wb int
		bn     float64
	}
	var cands []weighted
	for _, it := range items {
		move, bn := dims(it)
		if bn <= 0 {
			continue
		}
		w := weighted{item: it, wa: ceilDiv(it.Size, da), wb: ceilDiv(move, db), bn: bn}
		if w.wa > ca || w.wb > cb {
			continue
		}
		cands = append(cands, w)
	}
	if len(cands) == 0 {
		return nil
	}

	// Layered DP so the chosen set can be reconstructed exactly.
	layers := make([][]float64, len(cands)+1)
	layers[0] = make([]float64, cells)
	for i, w := range cands {
		prev := layers[i]
		cur := make([]float64, cells)
		copy(cur, prev)
		for a := w.wa; a <= ca; a++ {
			rowPrev := (a - w.wa) * width
			row := a * width
			for b := w.wb; b <= cb; b++ {
				if v := prev[rowPrev+b-w.wb] + w.bn; v > cur[row+b] {
					cur[row+b] = v
				}
			}
		}
		layers[i+1] = cur
	}

	// Reconstruct from the full-capacity cell.
	var chosen []*Item
	a, b := ca, cb
	for i := len(cands); i > 0; i-- {
		w := cands[i-1]
		if layers[i][a*width+b] != layers[i-1][a*width+b] {
			chosen = append(chosen, w.item)
			a -= w.wa
			b -= w.wb
		}
	}
	return chosen
}

func ceilDiv(n, d int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + d - 1) / d)
}

// clampUnit bounds a discretization unit to [1 MB, 1 GB].
func clampUnit(u int64) int64 {
	const mb, gb = 1 << 20, 1 << 30
	if u < mb {
		return mb
	}
	if u > gb {
		return gb
	}
	return u
}

// PackKnapsackDW packs items into the DW knapsack — dimensions (MoveToDW,
// BnDW) under the given storage, transfer, and discretization parameters.
// It is the benchmark pipeline's entry point to the DP; Tune itself calls
// the unexported form.
func PackKnapsackDW(items []*Item, storage, transfer, discretize int64) []*Item {
	return packKnapsack(items, storage, transfer, discretize,
		func(it *Item) (int64, float64) { return it.MoveToDW, it.BnDW })
}

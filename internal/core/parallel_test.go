package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"miso/internal/views"
)

// reorgFingerprint renders every decision a Reorg carries — both stores'
// final view sets, each movement list, and the transfer total — so two
// Tune outputs can be compared byte-for-byte.
func reorgFingerprint(r *Reorg) string {
	names := func(vs []*views.View) string {
		out := make([]string, len(vs))
		for i, v := range vs {
			out[i] = v.Name
		}
		sort.Strings(out)
		return strings.Join(out, ",")
	}
	return fmt.Sprintf("hv:[%s] dw:[%s] toDW:[%s] toHV:[%s] drop:[%s] xfer:%d",
		names(r.NewHV.All()), names(r.NewDW.All()),
		names(r.MoveToDW), names(r.MoveToHV), names(r.DropHV), r.TransferBytes)
}

// TestTuneDeterministicAcrossWorkerCounts regresses the tentpole
// determinism guarantee: the parallel what-if workers only warm a pure
// cost cache, and every accumulation runs serially in a fixed order, so
// Tune's output must be identical at any worker count — including the
// BaselineCosting path, which shares no caches with the parallel one.
func TestTuneDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg, opt, win, cur := benchTunerSetup(t)
	if n := cur.HV.Len(); n < 12 {
		t.Fatalf("universe has %d candidate views, want >= 12", n)
	}

	tune := func(c Config) string {
		r, err := NewTuner(c, opt).Tune(cur, win)
		if err != nil {
			t.Fatalf("tune (workers=%d baseline=%v): %v", c.TuneWorkers, c.BaselineCosting, err)
		}
		return reorgFingerprint(r)
	}

	want := tune(cfg) // TuneWorkers zero: fully serial
	for _, w := range []int{1, 2, 8} {
		c := cfg
		c.TuneWorkers = w
		if got := tune(c); got != want {
			t.Errorf("workers=%d diverged:\n got %s\nwant %s", w, got, want)
		}
	}
	c := cfg
	c.BaselineCosting = true
	if got := tune(c); got != want {
		t.Errorf("BaselineCosting diverged:\n got %s\nwant %s", got, want)
	}
}

// TestTunerCostKeyZeroAllocOnHit regresses the cost-cache key scheme: a
// hit must build its fixed-size (seq, hashed view set) key and look it up
// without allocating — the old string key allocated (and sorted) per
// probe.
func TestTunerCostKeyZeroAllocOnHit(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	cfg, opt, win, cur := benchTunerSetup(t)
	tuner := NewTuner(cfg, opt)
	e := win.Entries()[0]
	universe := cur.HV.All()
	if len(universe) < 2 {
		t.Fatalf("need >= 2 candidate views, have %d", len(universe))
	}
	pair := []*views.View{universe[0], universe[1]}
	// Warm every key the measured loop reads.
	tuner.cost(e, nil, nil)
	tuner.cost(e, nil, pair[:1])
	tuner.cost(e, pair[:1], pair[1:])
	tuner.cost(e, nil, pair)
	allocs := testing.AllocsPerRun(100, func() {
		tuner.cost(e, nil, nil)
		tuner.cost(e, nil, pair[:1])
		tuner.cost(e, pair[:1], pair[1:])
		tuner.cost(e, nil, pair)
	})
	if allocs != 0 {
		t.Fatalf("cache hits allocated %.1f times per run, want 0", allocs)
	}
}

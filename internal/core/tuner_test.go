package core

import (
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/transfer"
	"miso/internal/workload"
)

type tunerFixture struct {
	hv    *hv.Store
	dw    *dw.Store
	opt   *optimizer.Optimizer
	win   *history.Window
	base  int64
	tuner *Tuner
}

// newTunerFixture executes the first analyst's queries in HV so the store
// holds opportunistic views, then builds a tuner with the given budgets.
func newTunerFixture(t *testing.T, names []string, cfgEdit func(*Config)) *tunerFixture {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(hv.DefaultConfig(), cat, est)
	d := dw.NewStore(dw.DefaultConfig(), est)
	opt := optimizer.New(h, d, est, transfer.DefaultConfig())
	b := logical.NewBuilder(cat)
	win := history.NewWindow(6, 3, 0.5)
	for i, name := range names {
		q, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown query %s", name)
		}
		plan, err := b.BuildSQL(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Execute(plan, i); err != nil {
			t.Fatal(err)
		}
		win.Add(history.Entry{Seq: i, SQL: q.SQL, Plan: plan})
	}
	base := cat.TotalLogicalBytes()
	cfg := DefaultConfig()
	cfg.Bh = 2 * base
	cfg.Bd = 2 * base / 10
	cfg.Bt = 10 << 30
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	return &tunerFixture{
		hv: h, dw: d, opt: opt, win: win, base: base,
		tuner: NewTuner(cfg, opt),
	}
}

func TestTuneInvariants(t *testing.T) {
	f := newTunerFixture(t, []string{"A1v1", "A1v2", "A1v3"}, nil)
	cur := optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}
	r, err := f.tuner.Tune(cur, f.win)
	if err != nil {
		t.Fatal(err)
	}
	// Vh and Vd are disjoint.
	for _, v := range r.NewDW.All() {
		if r.NewHV.Has(v.Name) {
			t.Errorf("view %s in both stores", v.Name)
		}
	}
	// Storage budgets are respected.
	if r.NewDW.TotalBytes() > f.tuner.cfg.Bd {
		t.Errorf("DW design %d bytes exceeds Bd %d", r.NewDW.TotalBytes(), f.tuner.cfg.Bd)
	}
	if r.NewHV.TotalBytes() > f.tuner.cfg.Bh {
		t.Errorf("HV design %d bytes exceeds Bh", r.NewHV.TotalBytes())
	}
	// Every moved view was accounted against the transfer budget.
	var moved int64
	for _, v := range r.MoveToDW {
		moved += v.SizeBytes()
	}
	for _, v := range r.MoveToHV {
		moved += v.SizeBytes()
	}
	if moved != r.TransferBytes {
		t.Errorf("TransferBytes %d != sum of moves %d", r.TransferBytes, moved)
	}
	// New designs only contain views that already existed (opportunistic
	// tuning never creates views).
	for _, v := range append(r.NewDW.All(), r.NewHV.All()...) {
		if !cur.HV.Has(v.Name) && !cur.DW.Has(v.Name) {
			t.Errorf("tuner invented view %s", v.Name)
		}
	}
	// After a session of related queries, something beneficial moved to DW.
	if r.NewDW.Len() == 0 {
		t.Error("no views placed in DW despite an overlapping session")
	}
}

func TestTuneEmptyUniverse(t *testing.T) {
	f := newTunerFixture(t, nil, nil)
	r, err := f.tuner.Tune(optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}, f.win)
	if err != nil {
		t.Fatal(err)
	}
	if r.NewHV.Len() != 0 || r.NewDW.Len() != 0 || r.TransferBytes != 0 {
		t.Error("tuning an empty universe produced a design")
	}
}

func TestTuneRespectsTinyTransferBudget(t *testing.T) {
	f := newTunerFixture(t, []string{"A1v1", "A1v2"}, func(c *Config) {
		c.Bt = 1 << 20 // 1 MB: nothing sizable can move
	})
	r, err := f.tuner.Tune(optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}, f.win)
	if err != nil {
		t.Fatal(err)
	}
	var moved int64
	for _, v := range r.MoveToDW {
		moved += v.SizeBytes()
	}
	if moved > 1<<20 {
		t.Errorf("moved %d bytes with a 1MB transfer budget", moved)
	}
}

func TestTuneDWDesignStickyAcrossRounds(t *testing.T) {
	f := newTunerFixture(t, []string{"A1v1", "A1v2", "A1v3"}, nil)
	cur := optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}
	r1, err := f.tuner.Tune(cur, f.win)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NewDW.Len() == 0 {
		t.Skip("nothing placed; stickiness untestable")
	}
	// Re-tuning with the same window keeps the DW design (resident views
	// have no movement cost, so they dominate their own replacements).
	next := optimizer.Design{HV: r1.NewHV, DW: r1.NewDW}
	tuner2 := NewTuner(f.tuner.cfg, f.opt)
	r2, err := tuner2.Tune(next, f.win)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r1.NewDW.All() {
		if !r2.NewDW.Has(v.Name) {
			t.Errorf("resident DW view %s dropped on an unchanged window", v.Name)
		}
	}
	if len(r2.MoveToDW) != 0 {
		t.Errorf("re-tuning moved %d views on an unchanged window", len(r2.MoveToDW))
	}
}

func TestHVFirstAblationDiffers(t *testing.T) {
	runOrder := func(hvFirst bool) (*Reorg, *Tuner) {
		f := newTunerFixture(t, []string{"A1v1", "A1v2", "A1v3"}, func(c *Config) {
			c.HVFirst = hvFirst
		})
		r, err := f.tuner.Tune(optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}, f.win)
		if err != nil {
			t.Fatal(err)
		}
		return r, f.tuner
	}
	dwFirst, _ := runOrder(false)
	hvFirst, _ := runOrder(true)
	// Both orders produce valid disjoint designs; DW-first should give DW
	// at least as many views (it gets first pick).
	if dwFirst.NewDW.Len() < hvFirst.NewDW.Len() {
		t.Errorf("DW-first placed %d DW views, HV-first placed %d",
			dwFirst.NewDW.Len(), hvFirst.NewDW.Len())
	}
}

func TestSkipSparsifyStillValid(t *testing.T) {
	f := newTunerFixture(t, []string{"A1v1", "A1v2", "A1v3"}, func(c *Config) {
		c.SkipSparsify = true
	})
	r, err := f.tuner.Tune(optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}, f.win)
	if err != nil {
		t.Fatal(err)
	}
	if r.NewDW.TotalBytes() > f.tuner.cfg.Bd {
		t.Error("no-sparsify run broke the DW budget")
	}
}

func TestAllowReplicationPlacesBothStores(t *testing.T) {
	f := newTunerFixture(t, []string{"A1v1", "A1v2", "A1v3"}, func(c *Config) {
		c.AllowReplication = true
	})
	r, err := f.tuner.Tune(optimizer.Design{HV: f.hv.Views, DW: f.dw.Views}, f.win)
	if err != nil {
		t.Fatal(err)
	}
	// With replication allowed, a view MAY appear in both stores; the
	// designs must still respect their individual budgets.
	if r.NewDW.TotalBytes() > f.tuner.cfg.Bd || r.NewHV.TotalBytes() > f.tuner.cfg.Bh {
		t.Error("replication run broke a storage budget")
	}
}

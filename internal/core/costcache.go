// What-if cost cache for the tuner. The serial tuner keyed its cache with
// freshly built strings ("q12|h:v_a,|d:v_b,"), paying a strings.Builder
// allocation and a sort per probe even on hits. This cache is keyed by a
// cheap fixed-size struct — the query sequence number plus FNV-64a hashes
// of the name-sorted HV and DW view sets — and is lock-striped across a
// fixed number of shards so the tuner's parallel what-if workers contend
// only when they land on the same stripe.
package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"miso/internal/views"
)

const (
	costShards  = 16
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// costKey identifies one what-if probe: a query (by window sequence
// number) costed under a hypothetical design (by hashed sorted view-name
// set per store). Hashing trades a theoretical collision for allocation-
// free keys; FNV-64a over a universe of dozens of views makes the risk
// negligible.
type costKey struct {
	seq    int
	hv, dw uint64
}

type costShard struct {
	mu sync.Mutex
	m  map[costKey]float64
}

// costCache is the sharded, lock-striped what-if cost cache. Hit and miss
// counters are atomic so the benchmark pipeline can report hit rates
// without taking any stripe lock.
type costCache struct {
	shards       [costShards]costShard
	hits, misses atomic.Uint64
}

func newCostCache() *costCache {
	c := &costCache{}
	for i := range c.shards {
		c.shards[i].m = map[costKey]float64{}
	}
	return c
}

func (c *costCache) shard(k costKey) *costShard {
	h := chainHash(chainHash(chainHash(fnvOffset64, uint64(k.seq)), k.hv), k.dw)
	return &c.shards[h%costShards]
}

func (c *costCache) get(k costKey) (float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

func (c *costCache) put(k costKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (c *costCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// hashName is FNV-64a inlined so hashing never allocates (hash/fnv returns
// a heap-escaping hash.Hash64).
func hashName(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// chainHash folds a 64-bit value into a running FNV-64a state byte by
// byte, so chaining is order-sensitive and composes with hashName.
func chainHash(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// viewSetHash hashes a view set order-independently by chaining the
// per-name hashes in name-sorted order. The tuner only probes the empty
// set, singletons and pairs, which hash without allocating; larger sets
// take the general sorting path.
func viewSetHash(vs []*views.View) uint64 {
	switch len(vs) {
	case 0:
		return 0
	case 1:
		return chainHash(fnvOffset64, hashName(vs[0].Name))
	case 2:
		a, b := vs[0].Name, vs[1].Name
		if a > b {
			a, b = b, a
		}
		return chainHash(chainHash(fnvOffset64, hashName(a)), hashName(b))
	}
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	sort.Strings(names)
	h := uint64(fnvOffset64)
	for _, n := range names {
		h = chainHash(h, hashName(n))
	}
	return h
}

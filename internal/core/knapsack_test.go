package core

import (
	"math/rand"
	"testing"

	"miso/internal/views"
)

func item(size, move int64, bn float64) *Item {
	return &Item{
		Views:    []*views.View{{Name: "v"}},
		Size:     size,
		MoveToDW: move,
		BnDW:     bn,
	}
}

func dwDims(it *Item) (int64, float64) { return it.MoveToDW, it.BnDW }

func totalBenefit(chosen []*Item) float64 {
	var b float64
	for _, it := range chosen {
		b += it.BnDW
	}
	return b
}

// bruteForce finds the optimal 0-1 packing by enumeration.
func bruteForce(items []*Item, storageCap, xferCap int64) float64 {
	best := 0.0
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var size, move int64
		var bn float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += items[i].Size
				move += items[i].MoveToDW
				bn += items[i].BnDW
			}
		}
		if size <= storageCap && move <= xferCap && bn > best {
			best = bn
		}
	}
	return best
}

func TestKnapsackMatchesBruteForceExactUnits(t *testing.T) {
	// With d=1 and small integer weights the DP must be exactly optimal.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		items := make([]*Item, n)
		for i := range items {
			size := int64(1 + rng.Intn(10))
			move := size
			if rng.Intn(3) == 0 {
				move = 0 // already resident: consumes no transfer
			}
			items[i] = item(size, move, float64(rng.Intn(100)))
		}
		storageCap := int64(5 + rng.Intn(30))
		xferCap := int64(5 + rng.Intn(20))
		chosen := packKnapsack(items, storageCap, xferCap, 1, dwDims)
		got := totalBenefit(chosen)
		want := bruteForce(items, storageCap, xferCap)
		if got != want {
			t.Fatalf("trial %d: DP benefit %.0f, optimal %.0f", trial, got, want)
		}
		// The chosen set itself must respect both capacities.
		var size, move int64
		for _, it := range chosen {
			size += it.Size
			move += it.MoveToDW
		}
		if size > storageCap || move > xferCap {
			t.Fatalf("trial %d: chosen set violates capacities", trial)
		}
	}
}

func TestKnapsackSkipsUselessAndOversized(t *testing.T) {
	items := []*Item{
		item(5, 5, 0),    // no benefit
		item(100, 0, 50), // exceeds storage
		item(5, 100, 50), // exceeds transfer
		item(5, 5, 10),   // fits
	}
	chosen := packKnapsack(items, 10, 10, 1, dwDims)
	if len(chosen) != 1 || chosen[0] != items[3] {
		t.Fatalf("chosen = %v", chosen)
	}
}

func TestKnapsackZeroCapacity(t *testing.T) {
	items := []*Item{item(1, 1, 10)}
	if got := packKnapsack(items, 0, 10, 1, dwDims); len(got) != 0 {
		t.Error("packed into zero storage")
	}
	if got := packKnapsack(items, 10, 0, 1, dwDims); len(got) != 0 {
		t.Error("packed a mover into zero transfer budget")
	}
	// Zero transfer budget still admits already-resident items.
	resident := item(1, 0, 10)
	if got := packKnapsack([]*Item{resident}, 10, 0, 1, dwDims); len(got) != 1 {
		t.Error("resident item rejected under zero transfer budget")
	}
}

func TestKnapsackAutoDiscretization(t *testing.T) {
	// With auto units (d=0), large-byte items still pack correctly.
	gb := int64(1) << 30
	items := []*Item{
		item(5*gb, 5*gb, 100),
		item(7*gb, 7*gb, 120),
		item(3*gb, 3*gb, 80),
	}
	// Storage fits all; transfer fits ~11GB: best is 120+80 (the 5+7
	// pair busts the budget). Auto discretization rounds sizes up, so
	// the budget carries a little headroom.
	chosen := packKnapsack(items, 100*gb, 11*gb, 0, dwDims)
	if got := totalBenefit(chosen); got != 200 {
		t.Errorf("benefit = %.0f, want 200", got)
	}
	// The rounding never lets a choice exceed the true budget.
	var move int64
	for _, it := range chosen {
		move += it.MoveToDW
	}
	if move > 11*gb {
		t.Errorf("chosen moves %d exceed the transfer budget", move)
	}
}

func TestCeilDivAndClampUnit(t *testing.T) {
	if ceilDiv(0, 10) != 0 || ceilDiv(1, 10) != 1 || ceilDiv(10, 10) != 1 || ceilDiv(11, 10) != 2 {
		t.Error("ceilDiv wrong")
	}
	if clampUnit(0) != 1<<20 {
		t.Error("clamp floor")
	}
	if clampUnit(1<<40) != 1<<30 {
		t.Error("clamp ceiling")
	}
	if clampUnit(5<<20) != 5<<20 {
		t.Error("clamp identity")
	}
}

// Package core implements the MISO tuner (Algorithm 1 of the paper): at
// each reorganization phase it analyzes the recent query window, computes
// epoch-decayed predicted benefits for every opportunistic view, groups
// views into interacting sets via the signed degree of interaction (doi),
// sparsifies each set (merging strongly positive interactions into single
// knapsack items and keeping one representative among strongly negative
// ones), and then packs two multidimensional 0-1 knapsacks in sequence —
// DW first with dimensions (Bd, Bt), then HV with (Bh, remaining Bt) — to
// produce the new multistore design with Vh ∩ Vd = ∅.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"miso/internal/govern"
	"miso/internal/history"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/views"
)

// Config holds the tuner's constraints and knobs.
type Config struct {
	// Bh, Bd are the view storage budgets in (logical) bytes.
	Bh, Bd int64
	// Bt is the per-reorganization view transfer budget in bytes.
	Bt int64
	// DiscretizeBytes is the knapsack discretization factor d (1 GB in
	// the paper's complexity analysis).
	DiscretizeBytes int64
	// DoiThresholdFrac scales the interaction threshold: a pair of views
	// interacts only when |doi| is at least this fraction of the weaker
	// view's own predicted benefit.
	DoiThresholdFrac float64
	// MaxPartSize bounds interacting-set size (the paper keeps parts
	// small, around 4).
	MaxPartSize int
	// MovePenaltyPerByteDW / MovePenaltyPerByteHV charge each candidate
	// the time its placement would spend moving data (seconds per byte),
	// so a view is only placed when its predicted benefit exceeds the
	// cost of moving it. Zero disables netting.
	MovePenaltyPerByteDW float64
	MovePenaltyPerByteHV float64

	// Ablation knobs (all default off = the paper's design).

	// HVFirst reverses the knapsack order: pack HV before DW. The paper
	// packs DW first because it is the store whose design matters most.
	HVFirst bool
	// SkipSparsify disables interaction analysis: every view is an
	// independent knapsack item.
	SkipSparsify bool
	// AllowReplication relaxes Vh ∩ Vd = ∅: views placed in DW remain
	// candidates for HV.
	AllowReplication bool
	// ReserveReturnFrac reserves this fraction of Bt for the second
	// phase's transfers (the paper's §4.4 alternative to letting the
	// first phase consume the whole budget). Zero is the paper's default
	// heuristic.
	ReserveReturnFrac float64

	// TuneWorkers bounds the worker pool evaluating what-if cost probes
	// during Tune. Values <= 1 keep costing fully serial (the default).
	// Any worker count produces byte-identical designs: parallel probes
	// only warm the cost cache, and accumulation always runs serially in
	// a fixed (entry, pair) order, so float64 rounding never depends on
	// scheduling.
	TuneWorkers int

	// BaselineCosting restores the original serial costing path — a
	// string-keyed unsharded cost cache, per-view relevance plan walks,
	// and no match memoization — and ignores TuneWorkers. It exists so
	// the benchmark pipeline can record the speedup baseline in-repo;
	// designs are identical either way.
	BaselineCosting bool
}

// DefaultConfig returns paper-like tuning knobs (budgets must still be set
// by the caller).
func DefaultConfig() Config {
	return Config{
		DiscretizeBytes:  0, // auto: budget-relative per dimension
		DoiThresholdFrac: 0.5,
		MaxPartSize:      4,
	}
}

// Tuner computes new multistore designs.
type Tuner struct {
	cfg Config
	opt *optimizer.Optimizer

	cache  *costCache
	memo   *views.MatchMemo
	legacy map[string]float64 // BaselineCosting's string-keyed cache

	// Debug, when set, receives the knapsack candidates and the chosen
	// DW/HV items after each Tune call (used by tests and diagnostics).
	Debug func(items, dwChosen, hvChosen []*Item)
}

// NewTuner creates a tuner using the optimizer's what-if interface.
func NewTuner(cfg Config, opt *optimizer.Optimizer) *Tuner {
	if cfg.MaxPartSize <= 0 {
		cfg.MaxPartSize = 4
	}
	return &Tuner{
		cfg: cfg, opt: opt,
		cache:  newCostCache(),
		memo:   views.NewMatchMemo(),
		legacy: map[string]float64{},
	}
}

// CacheStats reports the what-if cost cache's cumulative hit and miss
// counters; the benchmark pipeline derives its hit rate from them.
func (t *Tuner) CacheStats() (hits, misses uint64) {
	return t.cache.stats()
}

// Item is one knapsack candidate: a single view or a merged group of
// positively interacting views.
type Item struct {
	Views []*views.View
	// Size is the total logical bytes of the item.
	Size int64
	// MoveToDW / MoveToHV are the bytes that would consume transfer
	// budget if the item is placed in DW / HV respectively (views already
	// resident in the target store move for free).
	MoveToDW, MoveToHV int64
	// BnDW, BnHV are the predicted future benefits of placing the item
	// in each store.
	BnDW, BnHV float64
}

func (it *Item) names() []string {
	out := make([]string, len(it.Views))
	for i, v := range it.Views {
		out[i] = v.Name
	}
	sort.Strings(out)
	return out
}

// Reorg is the tuner's output: the new design plus the movements needed to
// realize it from the current design.
type Reorg struct {
	NewHV, NewDW *views.Set
	// MoveToDW are views transferring HV -> DW (loaded into permanent
	// space, indexed).
	MoveToDW []*views.View
	// MoveToHV are views evicted from DW transferring back to HV.
	MoveToHV []*views.View
	// DropHV are views discarded from HV (outside the new design).
	DropHV []*views.View
	// TransferBytes is the total bytes moved (consumes Bt).
	TransferBytes int64
}

// Tune computes the new multistore design for the recent window.
func (t *Tuner) Tune(current optimizer.Design, w *history.Window) (*Reorg, error) {
	all := map[string]*views.View{}
	inDW := map[string]bool{}
	for _, v := range current.HV.All() {
		all[v.Name] = v
	}
	for _, v := range current.DW.All() {
		all[v.Name] = v
		inDW[v.Name] = true
	}
	if len(all) == 0 {
		return &Reorg{NewHV: views.NewSet(), NewDW: views.NewSet()}, nil
	}
	universe := make([]*views.View, 0, len(all))
	for _, v := range all {
		universe = append(universe, v)
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i].Name < universe[j].Name })

	entries := w.Entries()
	weights := w.Weights()
	workers := t.cfg.TuneWorkers
	if t.cfg.BaselineCosting {
		workers = 1
	}

	// Serially prewarm every window plan's node signatures: Signature
	// memoizes lazily into the node, a write that must not first happen
	// on two what-if workers at once.
	for _, e := range entries {
		e.Plan.PrewarmSignatures()
	}

	// Per-query relevant views: only those matching some plan node can
	// have benefit or interactions for that query. Each plan's node
	// signatures and subsumption descriptors are computed once here and
	// matched against every view, instead of re-walking (and
	// re-describing) the plan per view. Entries are independent, so the
	// matching fans out across the worker pool; each slot is written by
	// exactly one task and the per-entry view order follows the sorted
	// universe, keeping the result identical at any worker count.
	relevant := make([][]*views.View, len(entries))
	if t.cfg.BaselineCosting {
		for i, e := range entries {
			for _, v := range universe {
				if viewRelevant(e.Plan, v) {
					relevant[i] = append(relevant[i], v)
				}
			}
		}
	} else {
		if err := runParallel(workers, "tuner relevant-views", len(entries), func(i int) {
			relevant[i] = relevantViews(entries[i].Plan, universe)
		}); err != nil {
			return nil, err
		}
	}

	// Warm the cost cache by fanning every what-if probe — per-entry
	// base and benefit probes, per-pair doi probes — out across the
	// worker pool. The optimizer's cost path is a pure read (see
	// optimizer.EnumeratePlans), so every probe computes the same value
	// regardless of which worker runs it; the serial accumulation below
	// then reads each probe back as a cache hit in the original fixed
	// (entry, pair) order, making the float64 sums — and every design
	// decision downstream — byte-identical to the serial tuner.
	if workers > 1 {
		if err := t.warmProbes(entries, relevant, workers); err != nil {
			return nil, err
		}
	}

	// Predicted per-store benefits for each view.
	bnDW := map[string]float64{}
	bnHV := map[string]float64{}
	for i, e := range entries {
		if len(relevant[i]) == 0 {
			continue
		}
		base := t.cost(e, nil, nil)
		for _, v := range relevant[i] {
			bnDW[v.Name] += weights[i] * max0(base-t.cost(e, nil, []*views.View{v}))
			bnHV[v.Name] += weights[i] * max0(base-t.cost(e, []*views.View{v}, nil))
		}
	}

	// Signed degrees of interaction between co-relevant pairs, measured
	// in DW placement (where the benefit differences are largest).
	doi := map[[2]string]float64{}
	for i, e := range entries {
		rel := relevant[i]
		if len(rel) < 2 {
			continue
		}
		base := t.cost(e, nil, nil)
		for a := 0; a < len(rel); a++ {
			for b := a + 1; b < len(rel); b++ {
				va, vb := rel[a], rel[b]
				bA := max0(base - t.cost(e, nil, []*views.View{va}))
				bB := max0(base - t.cost(e, nil, []*views.View{vb}))
				bAB := max0(base - t.cost(e, nil, []*views.View{va, vb}))
				key := pairKey(va.Name, vb.Name)
				doi[key] += weights[i] * (bAB - bA - bB)
			}
		}
	}

	var items []*Item
	if t.cfg.SkipSparsify {
		for _, v := range universe {
			items = append(items, t.singleton(v, bnDW, bnHV, inDW))
		}
	} else {
		parts := t.computeInteractingSets(universe, doi, bnDW)
		items = t.sparsifySets(parts, doi, bnDW, bnHV, inDW)
	}

	dwDims := func(it *Item) (int64, float64) { return it.MoveToDW, it.BnDW }
	hvDims := func(it *Item) (int64, float64) { return it.MoveToHV, it.BnHV }

	var dwChosen, hvChosen []*Item
	if t.cfg.HVFirst {
		// Ablation: pack HV first, DW from the remainder.
		hvChosen = packKnapsack(items, t.cfg.Bh, t.cfg.Bt, t.cfg.DiscretizeBytes, hvDims)
		var used int64
		taken := map[*Item]bool{}
		for _, it := range hvChosen {
			taken[it] = true
			used += it.MoveToHV
		}
		rest := items
		if !t.cfg.AllowReplication {
			rest = nil
			for _, it := range items {
				if !taken[it] {
					rest = append(rest, it)
				}
			}
		}
		dwChosen = packKnapsack(rest, t.cfg.Bd, remainingBudget(t.cfg.Bt, used),
			t.cfg.DiscretizeBytes, dwDims)
	} else {
		// Phase 1: pack DW with dimensions (Bd, Bt) — the paper's order,
		// since DW offers the superior execution performance. An optional
		// fraction of Bt is held back for the HV phase's return moves.
		phase1Bt := t.cfg.Bt
		if f := t.cfg.ReserveReturnFrac; f > 0 && f < 1 {
			phase1Bt = int64(float64(phase1Bt) * (1 - f))
		}
		dwChosen = packKnapsack(items, t.cfg.Bd, phase1Bt, t.cfg.DiscretizeBytes, dwDims)
		var used int64
		taken := map[*Item]bool{}
		for _, it := range dwChosen {
			taken[it] = true
			used += it.MoveToDW
		}
		// Phase 2: pack HV with dimensions (Bh, remaining Bt).
		rest := items
		if !t.cfg.AllowReplication {
			rest = nil
			for _, it := range items {
				if !taken[it] {
					rest = append(rest, it)
				}
			}
		}
		hvChosen = packKnapsack(rest, t.cfg.Bh, remainingBudget(t.cfg.Bt, used),
			t.cfg.DiscretizeBytes, hvDims)
	}
	if t.Debug != nil {
		t.Debug(items, dwChosen, hvChosen)
	}
	newDW := views.NewSet()
	for _, it := range dwChosen {
		for _, v := range it.Views {
			newDW.Add(v)
		}
	}
	newHV := views.NewSet()
	for _, it := range hvChosen {
		for _, v := range it.Views {
			newHV.Add(v)
		}
	}
	if !t.cfg.AllowReplication {
		// Vh and Vd stay disjoint (a DW placement wins ties).
		for _, v := range newDW.All() {
			newHV.Remove(v.Name)
		}
	}

	reorg := &Reorg{NewHV: newHV, NewDW: newDW}
	for _, v := range newDW.All() {
		if !inDW[v.Name] {
			reorg.MoveToDW = append(reorg.MoveToDW, v)
			reorg.TransferBytes += v.SizeBytes()
		}
	}
	for _, v := range newHV.All() {
		if inDW[v.Name] {
			reorg.MoveToHV = append(reorg.MoveToHV, v)
			reorg.TransferBytes += v.SizeBytes()
		}
	}
	for _, v := range current.HV.All() {
		if !newHV.Has(v.Name) && !newDW.Has(v.Name) {
			reorg.DropHV = append(reorg.DropHV, v)
		}
	}
	return reorg, nil
}

// cost evaluates (with caching) the what-if cost of the entry's query under
// a hypothetical design of the given HV and DW views. Hits allocate
// nothing: the cache key is a fixed-size struct built from inline hashes,
// and the hypothetical Design is only assembled on a miss. Safe for
// concurrent use once the entry plans' signatures are prewarmed.
func (t *Tuner) cost(e history.Entry, hvViews, dwViews []*views.View) float64 {
	if t.cfg.BaselineCosting {
		return t.baselineCost(e, hvViews, dwViews)
	}
	key := costKey{seq: e.Seq, hv: viewSetHash(hvViews), dw: viewSetHash(dwViews)}
	if c, ok := t.cache.get(key); ok {
		return c
	}
	d := optimizer.EmptyDesign()
	// Every hypothetical design of this tuning phase shares one match
	// memo, so a (subtree, view) pair is described and checked once
	// across all probes instead of once per probe.
	d.HV.UseMemo(t.memo)
	d.DW.UseMemo(t.memo)
	for _, v := range hvViews {
		d.HV.Add(v)
	}
	for _, v := range dwViews {
		d.DW.Add(v)
	}
	c := t.opt.Cost(e.Plan, d)
	t.cache.put(key, c)
	return c
}

// baselineCost is the original costing path, kept for the benchmark
// pipeline's speedup baseline: a string key freshly built (and sorted) per
// probe, a single unsharded map, and no match memoization.
func (t *Tuner) baselineCost(e history.Entry, hvViews, dwViews []*views.View) float64 {
	var sb strings.Builder
	fmt.Fprintf(&sb, "q%d|h:", e.Seq)
	for _, v := range sortedByName(hvViews) {
		sb.WriteString(v.Name)
		sb.WriteByte(',')
	}
	sb.WriteString("|d:")
	for _, v := range sortedByName(dwViews) {
		sb.WriteString(v.Name)
		sb.WriteByte(',')
	}
	key := sb.String()
	if c, ok := t.legacy[key]; ok {
		return c
	}
	d := optimizer.EmptyDesign()
	for _, v := range hvViews {
		d.HV.Add(v)
	}
	for _, v := range dwViews {
		d.DW.Add(v)
	}
	c := t.opt.CostBaseline(e.Plan, d)
	t.legacy[key] = c
	return c
}

func sortedByName(vs []*views.View) []*views.View {
	out := append([]*views.View(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// probe is one independent what-if cost task.
type probe struct {
	e      history.Entry
	hv, dw []*views.View
}

// warmProbes lists every what-if probe Tune's accumulation loops will
// read — in their own right independent, pure cost tasks — and evaluates
// them across the worker pool, filling the cost cache. Two workers racing
// to the same key both compute the same pure value, so the final cached
// float is scheduling-independent.
func (t *Tuner) warmProbes(entries []history.Entry, relevant [][]*views.View, workers int) error {
	var tasks []probe
	for i, e := range entries {
		rel := relevant[i]
		if len(rel) == 0 {
			continue
		}
		tasks = append(tasks, probe{e: e})
		for _, v := range rel {
			tasks = append(tasks,
				probe{e: e, dw: []*views.View{v}},
				probe{e: e, hv: []*views.View{v}})
		}
		for a := 0; a < len(rel); a++ {
			for b := a + 1; b < len(rel); b++ {
				tasks = append(tasks, probe{e: e, dw: []*views.View{rel[a], rel[b]}})
			}
		}
	}
	return runParallel(workers, "tuner what-if", len(tasks), func(i int) {
		t.cost(tasks[i].e, tasks[i].hv, tasks[i].dw)
	})
}

// runParallel runs fn(0..n-1) across at most `workers` goroutines, pulling
// indices from an atomic counter so uneven task costs balance themselves.
// workers <= 1 (or a trivial n) degenerates to a plain serial loop on the
// calling goroutine. A panicking task — serial or pooled — is contained
// by govern.Capture and returned as a typed govern.ErrInternal carrying
// op, so a bad what-if probe fails one Tune call, not the process; the
// remaining workers stop claiming tasks once any task fails.
func runParallel(workers int, op string, n int, fn func(int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := govern.Capture(op, func() error { fn(i); return nil }); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := govern.Capture(op, func() error { fn(i); return nil }); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// relevantViews returns the subset of the (name-sorted) universe matching
// some node of the plan, in universe order. The plan is walked and
// described exactly once; each view then matches against the precomputed
// per-node signatures and descriptors (views.MatchDescriptor) instead of
// re-walking the plan.
func relevantViews(plan *logical.Node, universe []*views.View) []*views.View {
	nodes := plan.Nodes()
	sigs := make([]string, len(nodes))
	descs := make([]*logical.Descriptor, len(nodes))
	for i, n := range nodes {
		sigs[i] = n.Signature()
		descs[i] = logical.Describe(n)
	}
	var rel []*views.View
	for _, v := range universe {
		for i := range nodes {
			if sigs[i] == v.Sig {
				rel = append(rel, v)
				break
			}
			if v.ExactOnly {
				continue
			}
			if _, ok := views.MatchDescriptor(descs[i], v); ok {
				rel = append(rel, v)
				break
			}
		}
	}
	return rel
}

// viewRelevant reports whether v matches some node of the plan. Tune uses
// the batched relevantViews instead; this single-view form serves tests
// and diagnostics.
func viewRelevant(plan *logical.Node, v *views.View) bool {
	found := false
	plan.Walk(func(n *logical.Node) {
		if found {
			return
		}
		if _, ok := views.MatchNode(n, v); ok {
			found = true
		}
	})
	return found
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func remainingBudget(total, used int64) int64 {
	r := total - used
	if r < 0 {
		return 0
	}
	return r
}

func max0(f float64) float64 {
	if f < 0 {
		return 0
	}
	return f
}

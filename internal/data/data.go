// Package data generates the synthetic social-media logs used throughout the
// reproduction: a Twitter-like tweet stream, a Foursquare-like check-in
// stream, and a static Landmarks reference set. The generators are
// deterministic given a seed, share user ids across tweets and check-ins and
// venue ids across check-ins and landmarks (the join structure the paper's
// workload exploits), and emit JSON-lines records exactly as the paper's
// HDFS logs are stored.
package data

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"miso/internal/storage"
)

// Log names used by the workload queries.
const (
	TweetsLog    = "tweets"
	CheckinsLog  = "checkins"
	LandmarksLog = "landmarks"
)

// Config controls the size and shape of the generated data set.
type Config struct {
	Seed      int64
	NumTweets int
	NumCheck  int
	NumMarks  int
	NumUsers  int
	NumVenues int

	// ScaleFactor maps in-memory bytes to logical bytes for the cost
	// model: with the defaults, ~8 MB of generated logs stand in for the
	// paper's ~2 TB. See DESIGN.md section 6.
	ScaleFactor float64
}

// DefaultConfig returns a laptop-scale configuration whose logical size
// matches the paper's setup (~2 TB of logs).
func DefaultConfig() Config {
	return Config{
		Seed:        42,
		NumTweets:   20000,
		NumCheck:    20000,
		NumMarks:    1200,
		NumUsers:    2500,
		NumVenues:   800,
		ScaleFactor: 250000, // ~8 MB raw -> ~2 TB logical
	}
}

// SmallConfig returns a tiny configuration for unit tests.
func SmallConfig() Config {
	return Config{
		Seed:        7,
		NumTweets:   2400,
		NumCheck:    2400,
		NumMarks:    200,
		NumUsers:    150,
		NumVenues:   120,
		ScaleFactor: 60000,
	}
}

var (
	langs      = []string{"en", "en", "en", "es", "pt", "ja", "fr", "de"}
	hashtags   = []string{"food", "pizza", "coffee", "burger", "sushi", "travel", "deal", "launch", "fail", "love", "brunch", "vegan"}
	categories = []string{"restaurant", "cafe", "bar", "museum", "park", "hotel", "theater", "gym"}
	cities     = []string{"san_francisco", "new_york", "austin", "seattle", "chicago", "boston", "portland", "denver"}
	words      = []string{
		"just", "tried", "the", "new", "amazing", "terrible", "best", "worst",
		"place", "ever", "really", "love", "hate", "recommend", "avoid",
		"great", "service", "food", "line", "wait", "price", "happy", "again",
	}
)

// TweetFields is the registry of fields a SerDe may extract from the tweets
// log.
func TweetFields() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "tweet_id", Type: storage.KindInt},
		storage.Column{Name: "user_id", Type: storage.KindInt},
		storage.Column{Name: "ts", Type: storage.KindInt},
		storage.Column{Name: "text", Type: storage.KindString},
		storage.Column{Name: "hashtag", Type: storage.KindString},
		storage.Column{Name: "lang", Type: storage.KindString},
		storage.Column{Name: "retweets", Type: storage.KindInt},
		storage.Column{Name: "followers", Type: storage.KindInt},
	)
}

// CheckinFields is the field registry for the check-ins log.
func CheckinFields() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "checkin_id", Type: storage.KindInt},
		storage.Column{Name: "user_id", Type: storage.KindInt},
		storage.Column{Name: "ts", Type: storage.KindInt},
		storage.Column{Name: "venue_id", Type: storage.KindInt},
		storage.Column{Name: "lat", Type: storage.KindFloat},
		storage.Column{Name: "lon", Type: storage.KindFloat},
		storage.Column{Name: "category", Type: storage.KindString},
	)
}

// LandmarkFields is the field registry for the landmarks log.
func LandmarkFields() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "venue_id", Type: storage.KindInt},
		storage.Column{Name: "name", Type: storage.KindString},
		storage.Column{Name: "city", Type: storage.KindString},
		storage.Column{Name: "category", Type: storage.KindString},
		storage.Column{Name: "rating", Type: storage.KindFloat},
	)
}

const baseTime = 1356998400 // 2013-01-01T00:00:00Z, matching the paper's era

// Generate builds the three logs and registers them in a fresh catalog.
func Generate(cfg Config) (*storage.Catalog, error) {
	if cfg.NumUsers <= 0 || cfg.NumVenues <= 0 {
		return nil, fmt.Errorf("data: config needs positive NumUsers and NumVenues")
	}
	cat := storage.NewCatalog()
	rng := rand.New(rand.NewSource(cfg.Seed))

	tweets, err := generateTweets(rng, cfg)
	if err != nil {
		return nil, err
	}
	cat.AddLog(tweets)

	checkins, err := generateCheckins(rng, cfg)
	if err != nil {
		return nil, err
	}
	cat.AddLog(checkins)

	marks, err := generateLandmarks(rng, cfg)
	if err != nil {
		return nil, err
	}
	cat.AddLog(marks)
	return cat, nil
}

// zipfUser draws a user id with a skewed (power-law-ish) distribution so
// that heavy users exist, as in real social logs.
func zipfUser(rng *rand.Rand, n int) int64 {
	// Square a uniform draw: density concentrates near 0.
	u := rng.Float64()
	return int64(u * u * float64(n))
}

func tweetText(rng *rand.Rand, tag string) string {
	n := 4 + rng.Intn(6)
	out := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[rng.Intn(len(words))]...)
	}
	out = append(out, " #"...)
	out = append(out, tag...)
	return string(out)
}

func generateTweets(rng *rand.Rand, cfg Config) (*storage.LogFile, error) {
	l := storage.NewLogFile(TweetsLog, TweetFields())
	l.ScaleFactor = cfg.ScaleFactor
	for i := 0; i < cfg.NumTweets; i++ {
		tag := hashtags[rng.Intn(len(hashtags))]
		rec := map[string]any{
			"tweet_id":  int64(i),
			"user_id":   zipfUser(rng, cfg.NumUsers),
			"ts":        baseTime + int64(rng.Intn(90*24*3600)),
			"text":      tweetText(rng, tag),
			"hashtag":   tag,
			"lang":      langs[rng.Intn(len(langs))],
			"retweets":  int64(rng.Intn(500)),
			"followers": int64(rng.Intn(100000)),
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("data: marshal tweet: %w", err)
		}
		l.AppendLine(string(b))
	}
	return l, nil
}

func generateCheckins(rng *rand.Rand, cfg Config) (*storage.LogFile, error) {
	l := storage.NewLogFile(CheckinsLog, CheckinFields())
	l.ScaleFactor = cfg.ScaleFactor
	for i := 0; i < cfg.NumCheck; i++ {
		venue := rng.Intn(cfg.NumVenues)
		rec := map[string]any{
			"checkin_id": int64(i),
			"user_id":    zipfUser(rng, cfg.NumUsers),
			"ts":         baseTime + int64(rng.Intn(90*24*3600)),
			"venue_id":   int64(venue),
			"lat":        37.0 + rng.Float64()*10,
			"lon":        -122.0 + rng.Float64()*10,
			"category":   categories[venue%len(categories)],
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("data: marshal checkin: %w", err)
		}
		l.AppendLine(string(b))
	}
	return l, nil
}

func generateLandmarks(rng *rand.Rand, cfg Config) (*storage.LogFile, error) {
	l := storage.NewLogFile(LandmarksLog, LandmarkFields())
	// Landmarks are small static data (12 GB in the paper vs 1 TB logs);
	// scale them down by the same ratio.
	l.ScaleFactor = cfg.ScaleFactor / 16
	// Landmarks deliberately cover only 3/4 of the venues so that outer
	// joins against check-ins have unmatched rows.
	n := cfg.NumMarks
	if max := cfg.NumVenues * 3 / 4; n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		rec := map[string]any{
			"venue_id": int64(i),
			"name":     fmt.Sprintf("venue_%04d", i),
			"city":     cities[rng.Intn(len(cities))],
			"category": categories[i%len(categories)],
			"rating":   1.0 + rng.Float64()*4,
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("data: marshal landmark: %w", err)
		}
		l.AppendLine(string(b))
	}
	return l, nil
}

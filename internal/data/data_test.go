package data

import (
	"encoding/json"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.LogNames() {
		la, _ := a.Log(name)
		lb, _ := b.Log(name)
		if la.NumLines() != lb.NumLines() {
			t.Fatalf("%s: %d vs %d lines", name, la.NumLines(), lb.NumLines())
		}
		for i := range la.Lines {
			if la.Lines[i] != lb.Lines[i] {
				t.Fatalf("%s line %d differs", name, i)
			}
		}
	}
	// A different seed produces different data.
	cfg2 := cfg
	cfg2.Seed++
	c, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := c.Log(TweetsLog)
	la, _ := a.Log(TweetsLog)
	if lc.Lines[0] == la.Lines[0] {
		t.Error("different seeds produced identical first records")
	}
}

func TestRecordsAreValidJSONWithDeclaredFields(t *testing.T) {
	cat, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.LogNames() {
		log, _ := cat.Log(name)
		for i, line := range log.Lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("%s line %d: %v", name, i, err)
			}
			for _, c := range log.FieldTypes.Columns {
				if _, ok := rec[c.Name]; !ok {
					t.Fatalf("%s line %d missing field %q", name, i, c.Name)
				}
			}
			if i > 50 {
				break
			}
		}
	}
}

func TestKeySpacesOverlap(t *testing.T) {
	cat, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	users := func(name, field string) map[float64]bool {
		log, _ := cat.Log(name)
		out := map[float64]bool{}
		for _, line := range log.Lines {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatal(err)
			}
			if v, ok := rec[field].(float64); ok {
				out[v] = true
			}
		}
		return out
	}
	tweetUsers := users(TweetsLog, "user_id")
	checkinUsers := users(CheckinsLog, "user_id")
	shared := 0
	for u := range tweetUsers {
		if checkinUsers[u] {
			shared++
		}
	}
	if shared < len(tweetUsers)/4 {
		t.Errorf("only %d of %d tweet users also check in", shared, len(tweetUsers))
	}

	venues := users(CheckinsLog, "venue_id")
	markVenues := users(LandmarksLog, "venue_id")
	if len(markVenues) >= len(venues) {
		t.Error("landmarks should cover only a subset of venues (outer-join gaps)")
	}
	covered := 0
	for v := range markVenues {
		if venues[v] {
			covered++
		}
	}
	if covered == 0 {
		t.Error("no venue overlap at all")
	}
}

func TestScaleFactorApplied(t *testing.T) {
	cfg := SmallConfig()
	cat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tweets, _ := cat.Log(TweetsLog)
	if tweets.LogicalBytes() != int64(float64(tweets.RawBytes())*cfg.ScaleFactor) {
		t.Error("scale factor not applied to tweets")
	}
	marks, _ := cat.Log(LandmarksLog)
	if marks.ScaleFactor >= tweets.ScaleFactor {
		t.Error("landmarks should be scaled down relative to the streams")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := SmallConfig()
	bad.NumUsers = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero users accepted")
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cat, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := cat.TotalLogicalBytes()
	// Roughly 2 TB logical, the paper's setup (1 TB tweets + 1 TB
	// check-ins + small landmarks).
	if total < 1e12 || total > 4e12 {
		t.Errorf("paper-scale logical bytes = %.2f TB", float64(total)/1e12)
	}
}

package hv_test

import (
	"testing"

	"errors"
	"math"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
)

func setup(t *testing.T) (*storage.Catalog, *logical.Builder, *hv.Store) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	return cat, logical.NewBuilder(cat), hv.NewStore(hv.DefaultConfig(), cat, est)
}

func build(t *testing.T, b *logical.Builder, sql string) *logical.Node {
	t.Helper()
	n, err := b.BuildSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMaterializedNodesBoundaries(t *testing.T) {
	_, b, _ := setup(t)
	plan := build(t, b, `SELECT l.city, COUNT(*) AS n FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id
		WHERE c.category = 'bar' GROUP BY l.city ORDER BY n DESC`)
	mat := hv.MaterializedNodes(plan)
	// Root, sort, aggregate, join, and both join inputs are materialized.
	counts := map[logical.Kind]int{}
	for n := range mat {
		counts[n.Kind]++
	}
	if counts[logical.KindJoin] != 1 || counts[logical.KindAggregate] != 1 ||
		counts[logical.KindSort] != 1 {
		t.Errorf("boundary counts = %v", counts)
	}
	// The join's map-phase inputs materialize too.
	if counts[logical.KindFilter]+counts[logical.KindExtract] < 2 {
		t.Errorf("join inputs not materialized: %v", counts)
	}
}

func TestExecuteCreatesOpportunisticViews(t *testing.T) {
	_, b, store := setup(t)
	plan := build(t, b, `SELECT lang, COUNT(*) AS n FROM tweets
		WHERE retweets > 50 GROUP BY lang`)
	res, err := store.Execute(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Stages < 2 {
		t.Errorf("seconds=%.1f stages=%d", res.Seconds, res.Stages)
	}
	if len(res.NewViews) == 0 {
		t.Fatal("no opportunistic views created")
	}
	if store.Views.Len() != len(res.NewViews) {
		t.Errorf("store has %d views, result reports %d", store.Views.Len(), len(res.NewViews))
	}
	// Re-executing the identical plan creates nothing new.
	res2, err := store.Execute(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.NewViews) != 0 {
		t.Errorf("re-execution created %d views", len(res2.NewViews))
	}
}

func TestViewDefsAreRawAndNormalized(t *testing.T) {
	_, b, store := setup(t)
	plan := build(t, b, "SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > 50 GROUP BY lang")
	if _, err := store.Execute(plan, 1); err != nil {
		t.Fatal(err)
	}
	// Every view definition must be in base-data terms (no ViewScans) and
	// normalized (no stacked filters, no identity projections).
	for _, v := range store.Views.All() {
		v.Def.Walk(func(n *logical.Node) {
			if n.Kind == logical.KindViewScan {
				t.Errorf("view %s def contains a ViewScan", v.Name)
			}
			if n.Kind == logical.KindFilter && n.Child(0).Kind == logical.KindFilter {
				t.Errorf("view %s def has stacked filters", v.Name)
			}
		})
	}
}

func TestCostPlanTracksExecution(t *testing.T) {
	_, b, store := setup(t)
	cheap := build(t, b, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	costly := build(t, b, `SELECT t.lang, COUNT(*) AS n FROM tweets t
		JOIN checkins c ON t.user_id = c.user_id GROUP BY t.lang`)
	if store.CostPlan(cheap) >= store.CostPlan(costly) {
		t.Error("single-extract plan estimated costlier than the join plan")
	}
	// After execution, the estimate uses observed sizes and the real cost
	// equals the re-estimated cost for the same plan.
	res, err := store.Execute(cheap, 1)
	if err != nil {
		t.Fatal(err)
	}
	re := store.CostPlan(cheap)
	if diff := re - res.Seconds; diff > 1 || diff < -1 {
		t.Errorf("post-hoc estimate %.1f vs actual %.1f", re, res.Seconds)
	}
}

func TestExpandViewsRestoresRawDefinition(t *testing.T) {
	_, b, store := setup(t)
	// The aggregate's map-phase input (the wide filtered extract) is one
	// of the materialized stages, so it becomes a reusable view.
	v1 := build(t, b, "SELECT lang, COUNT(*) AS n FROM tweets WHERE lang = 'en' GROUP BY lang")
	if _, err := store.Execute(v1, 1); err != nil {
		t.Fatal(err)
	}
	// Rewrite a refined query against the store's views, then expand.
	refined := build(t, b, "SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 100")
	core := refined.Child(0)
	m, ok := store.Views.BestMatch(core)
	if !ok {
		t.Fatal("no view match")
	}
	rw, err := m.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	expanded := store.ExpandViews(rw)
	if expanded == nil {
		t.Fatal("expansion failed")
	}
	if expanded.Signature() != core.Signature() {
		t.Errorf("expanded signature differs:\n%s\n%s", expanded.Signature(), core.Signature())
	}
}

func TestEnforceBudgetEvictsLRU(t *testing.T) {
	_, b, store := setup(t)
	for i, sql := range []string{
		"SELECT tweet_id FROM tweets WHERE lang = 'en'",
		"SELECT tweet_id FROM tweets WHERE lang = 'es'",
	} {
		if _, err := store.Execute(build(t, b, sql), i); err != nil {
			t.Fatal(err)
		}
	}
	before := store.Views.Len()
	evicted := store.EnforceBudget(store.Views.TotalBytes() / 2)
	if len(evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	if store.Views.Len() != before-len(evicted) {
		t.Error("eviction accounting wrong")
	}
	// The survivors are the most recently used.
	for _, v := range store.Views.All() {
		for _, e := range evicted {
			if v.LastUsedSeq < e.LastUsedSeq {
				t.Errorf("kept %s (seq %d) but evicted %s (seq %d)",
					v.Name, v.LastUsedSeq, e.Name, e.LastUsedSeq)
			}
		}
	}
}

func TestCostScalesWithClusterSize(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := logical.NewBuilder(cat)
	plan := build(t, b, "SELECT tweet_id FROM tweets WHERE lang = 'en'")

	smallCfg := hv.DefaultConfig()
	smallCfg.Nodes = 5
	bigCfg := hv.DefaultConfig()
	bigCfg.Nodes = 50
	smallStore := hv.NewStore(smallCfg, cat, stats.NewEstimator(cat))
	bigStore := hv.NewStore(bigCfg, cat, stats.NewEstimator(cat))
	if smallStore.CostPlan(plan) <= bigStore.CostPlan(plan) {
		t.Error("more nodes should lower IO-bound cost")
	}
}

func TestExecuteFaultFreeWithInjectorArmedButZeroRate(t *testing.T) {
	_, b, store := setup(t)
	plan := build(t, b, `SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang`)
	base, err := store.Execute(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A zero-rate profile yields a nil injector: strictly additive plane.
	store.SetFaults(faults.NewInjector(faults.Profile{}, 1), faults.DefaultRetry())
	again, err := store.Execute(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Seconds is summed over a map range, so two executions can differ by
	// float association order; only ULP-level noise is acceptable.
	if d := math.Abs(again.Seconds - base.Seconds); d > 1e-9*base.Seconds {
		t.Errorf("zero-rate injector changed timing: base %v, again %v", base.Seconds, again.Seconds)
	}
	if again.RecoverySeconds != 0 || again.Retries != 0 {
		t.Errorf("zero-rate injector charged recovery: %+v", again)
	}
}

func TestExecuteRetriesChargeRecovery(t *testing.T) {
	_, b, store := setup(t)
	store.SetFaults(faults.NewInjector(faults.Profile{HVStage: 0.5, HDFSWrite: 0.3}, 42), faults.DefaultRetry())
	plan := build(t, b, `SELECT l.city, COUNT(*) AS n FROM checkins c
		JOIN landmarks l ON c.venue_id = l.venue_id GROUP BY l.city`)
	var sawRetry bool
	for seq := 1; seq <= 10; seq++ {
		res, err := store.Execute(plan, seq)
		if err != nil {
			// Exhaustion is possible at 50% rate; it must be typed.
			if !errors.Is(err, faults.ErrExhausted) {
				t.Fatalf("execution error not a typed fault: %v", err)
			}
			continue
		}
		if res.Retries > 0 {
			sawRetry = true
			if res.RecoverySeconds <= 0 {
				t.Error("retries charged no recovery time")
			}
			// Recovery restarts from the failed stage, never the whole
			// plan: each wasted attempt costs at most one stage plus
			// backoff, so recovery stays bounded by retries * (full
			// execution + max backoff).
			bound := float64(res.Retries) * (res.Seconds + 60)
			if res.RecoverySeconds > bound {
				t.Errorf("recovery %v exceeds per-stage bound %v", res.RecoverySeconds, bound)
			}
		}
	}
	if !sawRetry {
		t.Error("no execution recorded a survived retry at 50% stage failure rate")
	}
}

func TestExecuteFaultsDeterministic(t *testing.T) {
	run := func() []float64 {
		_, b, store := setup(t)
		store.SetFaults(faults.NewInjector(faults.Uniform(0.2), 7), faults.DefaultRetry())
		plan := build(t, b, `SELECT lang, COUNT(*) AS n FROM tweets WHERE retweets > 50 GROUP BY lang`)
		var out []float64
		for seq := 1; seq <= 5; seq++ {
			res, err := store.Execute(plan, seq)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.RecoverySeconds)
		}
		return out
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("run %d recovery differs: %v vs %v", i, a[i], bb[i])
		}
	}
}

func TestEnvViewMissingIsTyped(t *testing.T) {
	_, _, store := setup(t)
	_, err := store.Env().ReadView("nope")
	if !errors.Is(err, hv.ErrViewMissing) {
		t.Errorf("missing-view error not typed: %v", err)
	}
}

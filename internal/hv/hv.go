// Package hv simulates the big data store: a Hive-like engine that executes
// logical plans as a sequence of MapReduce-style jobs. Every job boundary
// (join, aggregate, distinct, sort — plus the map-phase outputs feeding
// them) materializes its result, exactly the fault-tolerance by-products the
// paper retains as opportunistic materialized views. Execution is real
// (actual tuples); wall-clock time is simulated from measured logical bytes
// through a calibrated cost model: high per-job startup and modest per-node
// scan/write throughput, with an extra SerDe penalty when parsing raw JSON
// logs.
package hv

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"miso/internal/exec"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/views"
)

// ErrViewMissing marks a ViewScan over a view this store does not hold;
// callers test for it with errors.Is.
var ErrViewMissing = errors.New("hv: view not in HV")

// Config calibrates the HV cluster and cost model.
type Config struct {
	// Nodes is the cluster size (15 in the paper).
	Nodes int
	// StageStartup is the fixed per-job scheduling overhead in seconds.
	StageStartup float64
	// ScanMBps is the per-node scan throughput for already-extracted data.
	ScanMBps float64
	// WriteMBps is the per-node HDFS write (materialization) throughput.
	WriteMBps float64
	// SerDeFactor divides scan throughput when parsing raw JSON logs.
	SerDeFactor float64
	// ExecWorkers selects the execution engine (exec.Env.Workers
	// semantics): 0 runs the morsel engine with GOMAXPROCS workers (the
	// default), n > 0 bounds the pool, and exec.SerialWorkers selects the
	// legacy serial engine. Results are byte-identical at every setting;
	// only real wall-clock changes (simulated cost is byte-based).
	ExecWorkers int
}

// DefaultConfig matches the paper's 15-node Hive cluster, calibrated to its
// observed query times (thousands of seconds per query over ~TB logs).
func DefaultConfig() Config {
	return Config{
		Nodes:        15,
		StageStartup: 90,
		ScanMBps:     90,
		WriteMBps:    60,
		SerDeFactor:  2.0,
	}
}

// Result reports one plan execution in HV.
type Result struct {
	Table *storage.Table
	// Seconds is the simulated fault-free execution time.
	Seconds float64
	// RecoverySeconds is extra simulated time spent surviving injected
	// stage failures: partially re-executed stages plus backoff waits.
	// Because every job boundary is materialized, recovery restarts from
	// the failed stage only, never from the start of the plan.
	RecoverySeconds float64
	// Retries counts injected stage and HDFS-write failures survived.
	Retries int
	// NewViews are opportunistic views created by this execution (stage
	// outputs not already present in the store).
	NewViews []*views.View
	// Stages is the number of jobs run.
	Stages int
}

// Store is the HV instance: it owns the raw logs (via the catalog) and the
// HV side of the multistore design.
type Store struct {
	cfg       Config
	cat       *storage.Catalog
	est       *stats.Estimator
	inj       *faults.Injector
	retry     faults.RetryPolicy
	execStats *exec.Stats
	execInj   *faults.Injector
	gov       *govern.Ledger
	budget    *faults.Budget
	// captureVeto, when set, suppresses opportunistic capture of views
	// whose name it reports true for (see SetCaptureVeto).
	captureVeto func(name string) bool

	// Views is the HV view set (the store's physical design).
	Views *views.Set
}

// NewStore creates an HV store over the catalog.
func NewStore(cfg Config, cat *storage.Catalog, est *stats.Estimator) *Store {
	return &Store{cfg: cfg, cat: cat, est: est, Views: views.NewSet()}
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// SetFaults arms the store with a fault injector and recovery policy. A
// nil injector disables injection entirely (the default).
func (s *Store) SetFaults(inj *faults.Injector, retry faults.RetryPolicy) {
	s.inj = inj
	s.retry = retry.OrDefault()
}

// SetExecStats attaches a per-operator timing collector to every Env this
// store hands out (nil detaches).
func (s *Store) SetExecStats(st *exec.Stats) { s.execStats = st }

// SetExecFaults arms the exec engine's fault sites (worker panics, memory
// pressure, slow morsels) with their own injector, separate from the
// store-level one so concurrent morsel draws never perturb the serialized
// stage/transfer draw sequence. Nil disables (the default).
func (s *Store) SetExecFaults(inj *faults.Injector) { s.execInj = inj }

// SetGovernor attaches the current query's memory ledger to every Env the
// store hands out; the multistore sets it per query and clears it after
// (queries are serialized, so there is never more than one). Nil detaches.
func (s *Store) SetGovernor(l *govern.Ledger) { s.gov = l }

// SetRetryBudget attaches the current query's shared retry budget,
// consulted by the stage-retry loops alongside the per-phase policy; the
// multistore sets it per query like the governor. Nil (the default) means
// unlimited, leaving the retry loops byte-identical to the un-budgeted
// ones.
func (s *Store) SetRetryBudget(b *faults.Budget) { s.budget = b }

// SetCaptureVeto installs a predicate consulted before an opportunistic
// view capture publishes a new view. The multistore uses it to preserve
// Vh ∩ Vd = ∅: an HV fallback that recomputes the definition of a
// DW-resident view (the tuner moved it there) must not re-capture it in
// HV. The veto runs during Commit, on the serialized query flow.
func (s *Store) SetCaptureVeto(veto func(name string) bool) { s.captureVeto = veto }

// Env returns the execution environment resolving logs and HV views.
func (s *Store) Env() *exec.Env {
	return &exec.Env{
		ReadLog: func(name string) (*storage.LogFile, error) { return s.cat.Log(name) },
		ReadView: func(name string) (*storage.Table, error) {
			v, ok := s.Views.Get(name)
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrViewMissing, name)
			}
			return v.Table, nil
		},
		Workers: s.cfg.ExecWorkers,
		Stats:   s.execStats,
		Mem:     s.gov,
		Inj:     s.execInj,
	}
}

var boundaryKind = map[logical.Kind]bool{
	logical.KindJoin:      true,
	logical.KindAggregate: true,
	logical.KindDistinct:  true,
	logical.KindSort:      true,
}

// MaterializedNodes returns the set of nodes whose outputs a Hive-style
// engine writes to HDFS: the root, every job boundary, and the map-phase
// outputs feeding each boundary.
func MaterializedNodes(root *logical.Node) map[*logical.Node]bool {
	mat := map[*logical.Node]bool{root: true}
	root.Walk(func(n *logical.Node) {
		if !boundaryKind[n.Kind] {
			return
		}
		mat[n] = true
		for _, c := range n.Children {
			if c.Kind != logical.KindViewScan && c.Kind != logical.KindScan {
				mat[c] = true
			}
		}
	})
	// A bare ViewScan or Scan root is not a job.
	if root.Kind == logical.KindViewScan || root.Kind == logical.KindScan {
		delete(mat, root)
	}
	return mat
}

// stageInput sums the bytes a job reads: materialized descendants' outputs
// and views at normal scan rate, raw logs at SerDe rate.
func stageInput(n *logical.Node, mat map[*logical.Node]bool, size func(*logical.Node) int64) (normal, serde int64) {
	for _, c := range n.Children {
		switch {
		case mat[c], c.Kind == logical.KindViewScan:
			normal += size(c)
		case c.Kind == logical.KindScan:
			serde += size(c)
		default:
			cn, cs := stageInput(c, mat, size)
			normal += cn
			serde += cs
		}
	}
	return normal, serde
}

// jobSeconds costs one job from its input/output byte sizes.
func (s *Store) jobSeconds(normal, serde, out int64) float64 {
	scan := s.cfg.ScanMBps * float64(s.cfg.Nodes) * 1e6
	write := s.cfg.WriteMBps * float64(s.cfg.Nodes) * 1e6
	sec := s.cfg.StageStartup
	sec += float64(normal) / scan
	sec += float64(serde) * s.cfg.SerDeFactor / scan
	sec += float64(out) / write
	return sec
}

// Execute runs the plan, materializing every stage, charging simulated time,
// recording observed statistics, and capturing new opportunistic views.
// seq is the workload sequence number (for view bookkeeping).
func (s *Store) Execute(plan *logical.Node, seq int) (*Result, error) {
	return s.ExecuteContext(context.Background(), plan, seq)
}

// ExecuteContext runs the plan like Execute but abandons it at the next
// stage boundary once ctx is done. An abandoned execution returns a nil
// Result and an error wrapping ctx.Err(); any simulated time the caller
// had already accrued for earlier phases is its to charge (the multistore
// books it under RECOVERY).
func (s *Store) ExecuteContext(ctx context.Context, plan *logical.Node, seq int) (*Result, error) {
	p, err := s.BeginExecute(ctx, plan)
	if err != nil {
		return nil, err
	}
	return p.Commit(ctx, seq)
}

// Pending is a plan execution whose data-path compute has finished but
// whose bookkeeping — statistics records, simulated-time costing, fault
// replay, opportunistic view capture — has not been performed. The hedging
// path uses it to race the real (wall-clock) compute of the HV fallback
// plan against the DW side without publishing any state: a Pending that is
// simply dropped leaves the store byte-identical to one that never ran.
type Pending struct {
	s      *Store
	plan   *logical.Node
	out    *storage.Table
	tables map[*logical.Node]*storage.Table
	mat    map[*logical.Node]bool
}

// Table returns the computed result table (available before Commit; the
// hedge verifies it byte-identical to the other racer's output).
func (p *Pending) Table() *storage.Table { return p.out }

// Plan returns the plan whose compute finished (the rewritten HV fallback
// plan; the commit path books its views from it).
func (p *Pending) Plan() *logical.Node { return p.plan }

// BeginExecute runs only the compute phase of the plan: real tuples
// through the exec engine, charged to the attached memory ledger, with
// cooperative cancellation at every stage boundary and morsel claim. It
// performs no injector draws and mutates no store state, so concurrent
// BeginExecute calls are safe alongside a serialized query stream and an
// abandoned Pending costs nothing.
func (s *Store) BeginExecute(ctx context.Context, plan *logical.Node) (*Pending, error) {
	env := s.Env()
	env.Ctx = ctx
	mat := MaterializedNodes(plan)
	tables := map[*logical.Node]*storage.Table{}

	var run func(n *logical.Node) (*storage.Table, error)
	run = func(n *logical.Node) (*storage.Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hv: abandoned: %w", err)
		}
		var inputs []*storage.Table
		switch n.Kind {
		case logical.KindExtract, logical.KindViewScan:
		default:
			for _, c := range n.Children {
				t, err := run(c)
				if err != nil {
					return nil, err
				}
				inputs = append(inputs, t)
			}
		}
		t, err := exec.RunNode(n, env, inputs)
		if err != nil {
			return nil, err
		}
		// Materialized intermediates are the query's working set: charge
		// their real (raw) bytes to the ledger. The multistore releases
		// the whole ledger when the query ends.
		if err := s.gov.Reserve(t.RawBytes()); err != nil {
			return nil, err
		}
		tables[n] = t
		return t, nil
	}
	out, err := run(plan)
	if err != nil {
		return nil, fmt.Errorf("hv: executing plan: %w", err)
	}
	return &Pending{s: s, plan: plan, out: out, tables: tables, mat: mat}, nil
}

// Commit performs the deferred bookkeeping of a computed execution, in the
// caller's serialized flow: statistics records, per-stage simulated-time
// costing, the deterministic fault replay (which consumes main-injector
// draws exactly where an undeferred execution would), and opportunistic
// view capture. ExecuteContext is BeginExecute + Commit, so committing a
// hedge shadow at the point the serial fallback would have executed yields
// byte-identical state.
func (p *Pending) Commit(ctx context.Context, seq int) (*Result, error) {
	s, tables, mat, out := p.s, p.tables, p.mat, p.out

	// Iterate every map in signature order: float accumulation and view
	// capture must not depend on Go's randomized map iteration, or two
	// identical runs drift by an ULP and the durable digest diverges.
	sortedNodes := func(m map[*logical.Node]*storage.Table) []*logical.Node {
		ns := make([]*logical.Node, 0, len(m))
		for n := range m {
			ns = append(ns, n)
		}
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Signature() < ns[j].Signature() })
		return ns
	}
	allNodes := sortedNodes(tables)
	matNodes := make([]*logical.Node, 0, len(mat))
	for _, n := range allNodes {
		if _, ok := mat[n]; ok {
			matNodes = append(matNodes, n)
		}
	}

	// Record truth for every computed subtree.
	for _, n := range allNodes {
		t := tables[n]
		s.est.Record(n.Signature(), stats.Stat{Rows: int64(t.NumRows()), Bytes: t.LogicalBytes()})
	}

	res := &Result{Table: out}
	size := func(n *logical.Node) int64 {
		if n.Kind == logical.KindScan {
			log, err := s.cat.Log(n.LogName)
			if err != nil {
				return 0
			}
			return log.LogicalBytes()
		}
		if t, ok := tables[n]; ok {
			return t.LogicalBytes()
		}
		if v, ok := s.Views.Get(n.ViewName); ok {
			return v.SizeBytes()
		}
		return 0
	}
	type stageCost struct {
		sig           string
		sec, writeSec float64
	}
	var stages []stageCost
	for _, n := range matNodes {
		normal, serde := stageInput(n, mat, size)
		outBytes := tables[n].LogicalBytes()
		sec := s.jobSeconds(normal, serde, outBytes)
		res.Seconds += sec
		res.Stages++
		if s.inj.Enabled() {
			write := s.cfg.WriteMBps * float64(s.cfg.Nodes) * 1e6
			stages = append(stages, stageCost{n.Signature(), sec, float64(outBytes) / write})
		}
	}

	// Fault plane: replay each stage against the injector in signature
	// order (stages is already sorted that way). A failed stage
	// re-executes from its materialized inputs — the last job boundary —
	// so only that stage's partial work plus backoff is lost, never the
	// whole plan. This is exactly the fault tolerance the paper's
	// by-product materializations buy.
	if s.inj.Enabled() {
		for i, st := range stages {
			if err := s.recoverPhase(ctx, faults.SiteHVStage, st.sec, res); err != nil {
				return nil, fmt.Errorf("hv: stage %d/%d: %w", i+1, len(stages), err)
			}
			if err := s.recoverPhase(ctx, faults.SiteHDFSWrite, st.writeSec, res); err != nil {
				return nil, fmt.Errorf("hv: materializing stage %d/%d: %w", i+1, len(stages), err)
			}
		}
	}

	// Capture opportunistic views from stage outputs. Definitions are
	// expanded to base-data terms so future raw plans match them.
	for _, n := range matNodes {
		if n.Kind == logical.KindViewScan {
			continue
		}
		def := s.ExpandViews(n)
		if def == nil {
			continue
		}
		name := views.NameForSig(def.Signature())
		if s.captureVeto != nil && s.captureVeto(name) {
			continue
		}
		if s.Views.Has(name) {
			if v, _ := s.Views.Get(name); v != nil {
				v.LastUsedSeq = seq
			}
			continue
		}
		v := views.New(def, tables[n], seq)
		v.StampGenerations(s.logGeneration)
		s.est.RecordView(v.Name, stats.Stat{
			Rows:  int64(tables[n].NumRows()),
			Bytes: tables[n].LogicalBytes(),
		})
		s.Views.Add(v)
		res.NewViews = append(res.NewViews, v)
	}
	return res, nil
}

// recoverPhase simulates one stage phase (execution or HDFS write) under
// the injector: each injected failure wastes the completed fraction of the
// phase plus a backoff wait, all charged to RecoverySeconds. Exhausting
// the retry policy — or the query's shared retry budget, or the caller's
// deadline (no retry fits inside an expired deadline) — fails the whole
// execution with a typed fault error.
func (s *Store) recoverPhase(ctx context.Context, site faults.Site, sec float64, res *Result) error {
	for attempt := 1; ; attempt++ {
		failed, frac := s.inj.Check(site)
		if !failed {
			return nil
		}
		res.Retries++
		res.RecoverySeconds += frac*sec + s.retry.Backoff(attempt)
		f := &faults.Fault{Site: site, Op: "hv job", Attempt: attempt}
		switch {
		case attempt >= s.retry.MaxAttempts:
			return faults.Exhausted(f)
		case ctx.Err() != nil:
			return fmt.Errorf("abandoned before retry: %w", ctx.Err())
		case !s.budget.Take():
			return faults.BudgetExhausted(f)
		}
	}
}

// ExpandViews rewrites ViewScan leaves back to their base-data definitions,
// producing a definition whose signature matches raw (unrewritten) plans.
// Returns nil when a referenced view is unknown to this store.
func (s *Store) ExpandViews(n *logical.Node) *logical.Node {
	if n.Kind == logical.KindViewScan {
		v, ok := s.Views.Get(n.ViewName)
		if !ok {
			return nil
		}
		return logical.Normalize(v.Def.Clone())
	}
	c := n.Clone()
	if s.expandInPlace(c) == nil {
		return nil
	}
	return logical.Normalize(c)
}

func (s *Store) expandInPlace(n *logical.Node) *logical.Node {
	for i, c := range n.Children {
		if c.Kind == logical.KindViewScan {
			v, ok := s.Views.Get(c.ViewName)
			if !ok {
				return nil
			}
			n.Children[i] = v.Def.Clone()
			continue
		}
		if s.expandInPlace(c) == nil {
			return nil
		}
	}
	return n
}

// CostPlan estimates the simulated execution time of the plan without
// running it, using the shared estimator (what-if mode). Hypothetical views
// must have recorded sizes (RecordView) for accurate costing. The stage
// sum runs in signature order so the float64 accumulation — and therefore
// every what-if cost — is deterministic regardless of map iteration order.
func (s *Store) CostPlan(plan *logical.Node) float64 {
	return s.costPlan(plan, true)
}

// CostPlanBaseline costs like CostPlan but re-estimates each subtree at
// every appearance instead of memoizing sizes per call — the original
// cost walk, kept so the benchmark pipeline can record the tuner's
// speedup baseline in-repo. Both variants compute identical costs.
func (s *Store) CostPlanBaseline(plan *logical.Node) float64 {
	return s.costPlan(plan, false)
}

func (s *Store) costPlan(plan *logical.Node, memoize bool) float64 {
	if plan.Kind == logical.KindViewScan || plan.Kind == logical.KindScan {
		return 0
	}
	mat := MaterializedNodes(plan)
	stages := make([]*logical.Node, 0, len(mat))
	for n := range mat {
		stages = append(stages, n)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].Signature() < stages[j].Signature() })
	size := func(n *logical.Node) int64 { return s.est.Estimate(n).Bytes }
	if memoize {
		sizes := map[*logical.Node]int64{}
		size = func(n *logical.Node) int64 {
			if b, ok := sizes[n]; ok {
				return b
			}
			b := s.est.Estimate(n).Bytes
			sizes[n] = b
			return b
		}
	}
	var sec float64
	for _, n := range stages {
		normal, serde := stageInput(n, mat, size)
		sec += s.jobSeconds(normal, serde, s.est.Estimate(n).Bytes)
	}
	return sec
}

// logGeneration reports the current generation of a catalog log, for
// stamping freshly materialized views.
func (s *Store) logGeneration(name string) (int, bool) {
	log, err := s.cat.Log(name)
	if err != nil {
		return 0, false
	}
	return log.Generation, true
}

// EnforceBudget evicts least-recently-used views until the set fits in
// budgetBytes. It returns the evicted views. This implements the simple LRU
// policy used by the HV-OP and MS-LRU variants and HV temporary-space
// trimming at reorganization time; the ordering is views.EvictLRU's.
func (s *Store) EnforceBudget(budgetBytes int64) []*views.View {
	return views.EvictLRU(s.Views, budgetBytes)
}

// Package storage provides the typed data model shared by both stores of the
// multistore system: values, schemas, relational tables, raw log files, and
// the catalog that tracks them. It deliberately contains no execution logic;
// the exec, hv and dw packages operate on these types.
package storage

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic types a Value may hold.
type Kind uint8

const (
	// KindNull is the absence of a value (missing JSON field, failed cast).
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union. The zero Value is NULL. Using a struct
// rather than interface{} keeps rows allocation-free on the hot execution
// paths and gives deterministic sizes for the byte accounting that drives
// the cost model.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null is the NULL value.
var Null = Value{}

// IntValue returns an int Value.
func IntValue(i int64) Value { return Value{Kind: KindInt, I: i} }

// FloatValue returns a float Value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, F: f} }

// StringValue returns a string Value.
func StringValue(s string) Value { return Value{Kind: KindString, S: s} }

// BoolValue returns a bool Value.
func BoolValue(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the boolean interpretation of v. NULL and zero values are
// false.
func (v Value) Bool() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat coerces v to a float64, returning false when no numeric
// interpretation exists.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	case KindBool:
		return float64(v.I), true
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsInt coerces v to an int64, returning false when no integer
// interpretation exists.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt, KindBool:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	case KindString:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0, false
		}
		return i, true
	default:
		return 0, false
	}
}

// String renders the value for display and for grouping keys.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare numerically across int/float/bool; strings compare
// lexicographically. Cross-kind comparisons between string and numeric fall
// back to kind ordering so Compare always yields a total order.
func Compare(a, b Value) int {
	// Same-kind fast paths for the two kinds that dominate join keys and
	// sort keys. Ints compare through their float64 image exactly like the
	// generic numeric path below, preserving its (documented) precision
	// limit beyond 2^53 so both paths yield identical orderings.
	if a.Kind == b.Kind {
		switch a.Kind {
		case KindInt:
			af, bf := float64(a.I), float64(b.I)
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		case KindString:
			switch {
			case a.S < b.S:
				return -1
			case a.S > b.S:
				return 1
			default:
				return 0
			}
		}
	}
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == KindString && b.Kind == KindString {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/numeric: order by kind to stay total.
	switch {
	case a.Kind < b.Kind:
		return -1
	case a.Kind > b.Kind:
		return 1
	default:
		return 0
	}
}

func isNumeric(k Kind) bool {
	switch k {
	case KindInt, KindFloat, KindBool:
		return true
	default:
		return false
	}
}

// Equal reports whether two values compare equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-64a parameters, inlined so the hot hashing paths need no hash.Hash
// object or write buffer.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashSeed is the initial state for HashInto chains; Hash is exactly
// HashInto(HashSeed).
const HashSeed uint64 = fnvOffset64

// Hash returns a hash of the value suitable for hash joins and hash
// aggregation. Compare-equal values hash identically: all numeric kinds
// hash through their float64 image, mirroring Compare's numeric semantics
// (including its precision limit beyond 2^53).
func (v Value) Hash() uint64 {
	return v.HashInto(fnvOffset64)
}

// HashInto folds the value into a running FNV-64a state and returns the new
// state, byte-for-byte equivalent to Hash's stream but with zero
// allocations — the executor's join build and probe call it once per key
// column per row. Chain key columns as h = v.HashInto(h) starting from any
// seed.
func (v Value) HashInto(h uint64) uint64 {
	// The three per-kind legs live in vector.go so Vector.HashChainInto
	// folds the exact same byte stream column-wise.
	switch v.Kind {
	case KindNull:
		h = hashNullInto(h)
	case KindInt, KindBool, KindFloat:
		f, _ := v.AsFloat()
		h = hashNumInto(h, f)
	case KindString:
		h = hashStrInto(h, v.S)
	}
	return h
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var buf [9]byte
	buf[0] = 1
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// EncodedSize estimates the serialized size of the value in bytes. It is the
// unit of the byte accounting used by the cost model and the view storage
// budgets.
func (v Value) EncodedSize() int64 {
	switch v.Kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return int64(len(v.S)) + 2
	default:
		return 1
	}
}

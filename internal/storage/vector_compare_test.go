package storage

import (
	"math"
	"math/rand"
	"testing"
)

// TestVectorCompareAtMatchesCompare is the digest-identity property behind
// the vectorized Sort comparator: for any column content — typed, with
// nulls, degraded to generic by mixed kinds, including NaN, -0, and ints
// beyond 2^53 — CompareAt(i, j) must equal Compare(Value(i), Value(j)).
func TestVectorCompareAtMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pools := map[string][]Value{
		"int": {
			IntValue(0), IntValue(1), IntValue(-5), IntValue(1 << 60),
			IntValue((1 << 60) + 1), // collapses onto 1<<60 in float64: must compare equal
			IntValue(math.MaxInt64), IntValue(math.MinInt64), Null,
		},
		"float": {
			FloatValue(0), FloatValue(math.Copysign(0, -1)), FloatValue(1.5),
			FloatValue(-2.25), FloatValue(math.NaN()), FloatValue(math.Inf(1)), Null,
		},
		"string": {
			StringValue(""), StringValue("a"), StringValue("ab"), StringValue("b"), Null,
		},
		"bool": {
			BoolValue(true), BoolValue(false), Null,
		},
		"mixed": {
			IntValue(3), FloatValue(3), FloatValue(2.5), StringValue("x"),
			BoolValue(true), Null,
		},
	}
	kinds := map[string]Kind{
		"int": KindInt, "float": KindFloat, "string": KindString,
		"bool": KindBool, "mixed": KindInt,
	}
	for name, pool := range pools {
		v := NewVector(kinds[name])
		const n = 64
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = pool[rng.Intn(len(pool))]
			v.Append(vals[i])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := Compare(vals[i], vals[j])
				if got := v.CompareAt(i, j); got != want {
					t.Fatalf("%s: CompareAt(%d,%d) over %v vs %v = %d, want %d (generic=%v)",
						name, i, j, vals[i], vals[j], got, want, v.Generic())
				}
				// CompareAt must also agree with reconstructed values.
				if got, want2 := v.CompareAt(i, j), Compare(v.Value(i), v.Value(j)); got != want2 {
					t.Fatalf("%s: CompareAt disagrees with Value reconstruction at (%d,%d)", name, i, j)
				}
			}
		}
	}
}

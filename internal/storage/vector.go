// Typed column vectors: the columnar counterpart of Row for the batch
// execution path. A Vector holds one column of a row batch in a typed
// slice (int64/float64/string, with bool packed into the int slice as 0/1)
// plus a null bitmap, so vectorized kernels can run tight per-kind loops
// instead of switching on Value.Kind per row. A column whose values do not
// all share the declared kind degrades to a generic []Value representation
// that round-trips every value exactly, so the columnar path can never
// change what a value is — only how fast it is scanned.
//
// Vectors are scratch state: they are Reset and refilled batch after batch
// by a single goroutine. Nothing here locks.
package storage

import "math"

// Vector is one column of a row batch. The zero Vector is an empty int
// vector; call Reset to choose the element kind. Exported slice fields give
// kernels direct access to the typed storage; use the Append*/Value
// accessors everywhere correctness matters more than the inner loop.
type Vector struct {
	// Ints holds KindInt elements, and KindBool elements as 0/1 — the
	// same packing Value uses for its I field.
	Ints []int64
	// Floats holds KindFloat elements bit-exactly (including -0 and NaN).
	Floats []float64
	// Strs holds KindString elements.
	Strs []string
	// Vals is the generic fallback storage, used when the column's values
	// do not all match the declared kind (see Generic).
	Vals []Value

	kind    Kind
	generic bool
	nulls   []uint64 // bitmap: bit i set = element i is NULL
	anyNull bool
	n       int
}

// NewVector returns an empty vector of the given element kind.
func NewVector(kind Kind) *Vector {
	v := &Vector{}
	v.Reset(kind)
	return v
}

// Reset empties the vector and sets its element kind, keeping the
// underlying capacity so a reused vector stops allocating after its first
// fill. KindNull selects the generic representation directly.
func (v *Vector) Reset(kind Kind) {
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Vals = v.Vals[:0]
	v.nulls = v.nulls[:0]
	v.kind = kind
	v.generic = kind == KindNull
	v.anyNull = false
	v.n = 0
}

// Len returns the element count.
func (v *Vector) Len() int { return v.n }

// Kind returns the declared element kind (meaningless when Generic).
func (v *Vector) Kind() Kind { return v.kind }

// Generic reports whether the vector degraded to generic []Value storage.
func (v *Vector) Generic() bool { return v.generic }

// AnyNull reports whether any element is NULL. Kernels use it to skip the
// bitmap entirely on fully-valid vectors.
func (v *Vector) AnyNull() bool { return v.anyNull }

// NullAt reports whether element i is NULL.
func (v *Vector) NullAt(i int) bool {
	if v.generic {
		return v.Vals[i].IsNull()
	}
	if !v.anyNull {
		return false
	}
	return v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

func (v *Vector) pushNullBit(isNull bool) {
	w := v.n >> 6
	for w >= len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	if isNull {
		v.nulls[w] |= 1 << (uint(v.n) & 63)
		v.anyNull = true
	} else {
		v.nulls[w] &^= 1 << (uint(v.n) & 63)
	}
}

// degrade switches a typed vector to the generic representation, copying
// the elements appended so far.
func (v *Vector) degrade() {
	if v.generic {
		return
	}
	vals := v.Vals[:0]
	for i := 0; i < v.n; i++ {
		vals = append(vals, v.Value(i))
	}
	v.Vals = vals
	v.generic = true
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
}

// Append adds one value. A non-NULL value whose kind differs from the
// declared kind degrades the vector to generic storage, preserving every
// element exactly.
func (v *Vector) Append(val Value) {
	if v.generic {
		v.Vals = append(v.Vals, val)
		v.n++
		return
	}
	switch {
	case val.Kind == KindNull:
		v.AppendNull()
		return
	case val.Kind != v.kind:
		v.degrade()
		v.Vals = append(v.Vals, val)
		v.n++
		return
	}
	v.pushNullBit(false)
	switch v.kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, val.I)
	case KindFloat:
		v.Floats = append(v.Floats, val.F)
	case KindString:
		v.Strs = append(v.Strs, val.S)
	}
	v.n++
}

// AppendNull adds a NULL element.
func (v *Vector) AppendNull() {
	if v.generic {
		v.Vals = append(v.Vals, Null)
		v.n++
		return
	}
	v.pushNullBit(true)
	switch v.kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, 0)
	case KindFloat:
		v.Floats = append(v.Floats, 0)
	case KindString:
		v.Strs = append(v.Strs, "")
	}
	v.n++
}

// AppendInt adds a non-NULL int element to an int vector.
func (v *Vector) AppendInt(i int64) {
	if v.generic || v.kind != KindInt {
		v.Append(IntValue(i))
		return
	}
	v.pushNullBit(false)
	v.Ints = append(v.Ints, i)
	v.n++
}

// AppendFloat adds a non-NULL float element to a float vector.
func (v *Vector) AppendFloat(f float64) {
	if v.generic || v.kind != KindFloat {
		v.Append(FloatValue(f))
		return
	}
	v.pushNullBit(false)
	v.Floats = append(v.Floats, f)
	v.n++
}

// AppendBool adds a non-NULL bool element to a bool vector.
func (v *Vector) AppendBool(b bool) {
	if v.generic || v.kind != KindBool {
		v.Append(BoolValue(b))
		return
	}
	v.pushNullBit(false)
	if b {
		v.Ints = append(v.Ints, 1)
	} else {
		v.Ints = append(v.Ints, 0)
	}
	v.n++
}

// AppendString adds a non-NULL string element to a string vector.
func (v *Vector) AppendString(s string) {
	if v.generic || v.kind != KindString {
		v.Append(StringValue(s))
		return
	}
	v.pushNullBit(false)
	v.Strs = append(v.Strs, s)
	v.n++
}

// Value reconstructs element i as a Value, exactly equal (including Kind)
// to the value that was appended.
func (v *Vector) Value(i int) Value {
	if v.generic {
		return v.Vals[i]
	}
	if v.NullAt(i) {
		return Null
	}
	switch v.kind {
	case KindInt:
		return Value{Kind: KindInt, I: v.Ints[i]}
	case KindFloat:
		return Value{Kind: KindFloat, F: v.Floats[i]}
	case KindString:
		return Value{Kind: KindString, S: v.Strs[i]}
	case KindBool:
		return Value{Kind: KindBool, I: v.Ints[i]}
	default:
		return Null
	}
}

// FromRows fills the vector with column col of each row, declaring the
// given element kind. Values of other kinds degrade the vector to generic
// storage; either way every value round-trips exactly.
func (v *Vector) FromRows(rows []Row, col int, kind Kind) {
	v.Reset(kind)
	for _, r := range rows {
		v.Append(r[col])
	}
}

// FromRowsSel fills the vector with column col of rows[sel[j]] for each
// selected index, in selection order.
func (v *Vector) FromRowsSel(rows []Row, col int, kind Kind, sel []int32) {
	v.Reset(kind)
	for _, i := range sel {
		v.Append(rows[i][col])
	}
}

// Gather fills the vector with src elements at the selected indices, in
// selection order.
func (v *Vector) Gather(src *Vector, sel []int32) {
	if src.generic {
		v.Reset(KindNull)
		for _, i := range sel {
			v.Vals = append(v.Vals, src.Vals[i])
		}
		v.n = len(sel)
		return
	}
	v.Reset(src.kind)
	if !src.anyNull {
		// Bulk per-kind gather with no bitmap maintenance: the bitmap only
		// exists once a null is appended, and none will be.
		switch src.kind {
		case KindInt, KindBool:
			for _, i := range sel {
				v.Ints = append(v.Ints, src.Ints[i])
			}
		case KindFloat:
			for _, i := range sel {
				v.Floats = append(v.Floats, src.Floats[i])
			}
		case KindString:
			for _, i := range sel {
				v.Strs = append(v.Strs, src.Strs[i])
			}
		}
		v.n = len(sel)
		return
	}
	for _, i := range sel {
		if src.NullAt(int(i)) {
			v.AppendNull()
			continue
		}
		switch src.kind {
		case KindInt, KindBool:
			v.pushNullBit(false)
			v.Ints = append(v.Ints, src.Ints[i])
			v.n++
		case KindFloat:
			v.pushNullBit(false)
			v.Floats = append(v.Floats, src.Floats[i])
			v.n++
		case KindString:
			v.pushNullBit(false)
			v.Strs = append(v.Strs, src.Strs[i])
			v.n++
		}
	}
}

// TruesInto appends to sel the indices of elements that are non-NULL and
// boolean-true under Value.Bool semantics (numeric non-zero, non-empty
// string), offset by base. It is the Filter operator's selection-vector
// kernel and allocates nothing when sel has capacity.
func (v *Vector) TruesInto(sel []int32, base int32) []int32 {
	if v.generic {
		for i, val := range v.Vals {
			if !val.IsNull() && val.Bool() {
				sel = append(sel, base+int32(i))
			}
		}
		return sel
	}
	switch v.kind {
	case KindInt, KindBool:
		for i, x := range v.Ints {
			if x != 0 && !v.NullAt(i) {
				sel = append(sel, base+int32(i))
			}
		}
	case KindFloat:
		for i, f := range v.Floats {
			if f != 0 && !v.NullAt(i) {
				sel = append(sel, base+int32(i))
			}
		}
	case KindString:
		for i, s := range v.Strs {
			if s != "" && !v.NullAt(i) {
				sel = append(sel, base+int32(i))
			}
		}
	}
	return sel
}

// hashNullInto, hashNumInto and hashStrInto are the three per-kind legs of
// Value.HashInto, shared with the vectorized chain so both paths fold the
// exact same byte stream.
func hashNullInto(h uint64) uint64 { return (h ^ 0) * fnvPrime64 }

func hashNumInto(h uint64, f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0
	}
	u := math.Float64bits(f)
	h = (h ^ 1) * fnvPrime64
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(u>>(8*i)))) * fnvPrime64
	}
	return h
}

func hashStrInto(h uint64, s string) uint64 {
	h = (h ^ 2) * fnvPrime64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// HashChainInto folds element i into hs[i] for every element, exactly as
// chaining Value.HashInto over the reconstructed values would — the
// columnar leg of the join/aggregate key-hash chain. hs must have at least
// Len entries. It allocates nothing.
func (v *Vector) HashChainInto(hs []uint64) {
	if v.generic {
		for i, val := range v.Vals {
			hs[i] = val.HashInto(hs[i])
		}
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		for i, x := range v.Ints {
			if v.NullAt(i) {
				hs[i] = hashNullInto(hs[i])
			} else {
				hs[i] = hashNumInto(hs[i], float64(x))
			}
		}
	case KindFloat:
		for i, f := range v.Floats {
			if v.NullAt(i) {
				hs[i] = hashNullInto(hs[i])
			} else {
				hs[i] = hashNumInto(hs[i], f)
			}
		}
	case KindString:
		for i, s := range v.Strs {
			if v.NullAt(i) {
				hs[i] = hashNullInto(hs[i])
			} else {
				hs[i] = hashStrInto(hs[i], s)
			}
		}
	}
}

// CompareAt orders elements i and j exactly as Compare(v.Value(i),
// v.Value(j)) would — NULL first, ints through their float64 image
// (preserving Compare's documented precision limit beyond 2^53), floats
// numerically, strings lexicographically — without reconstructing Values.
// It is the vectorized Sort comparator's per-column kernel; orderings are
// digest-identical to the serial row comparator by construction.
func (v *Vector) CompareAt(i, j int) int {
	if v.generic {
		return Compare(v.Vals[i], v.Vals[j])
	}
	if v.anyNull {
		ni, nj := v.NullAt(i), v.NullAt(j)
		switch {
		case ni && nj:
			return 0
		case ni:
			return -1
		case nj:
			return 1
		}
	}
	switch v.kind {
	case KindInt, KindBool:
		af, bf := float64(v.Ints[i]), float64(v.Ints[j])
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
	case KindFloat:
		switch {
		case v.Floats[i] < v.Floats[j]:
			return -1
		case v.Floats[i] > v.Floats[j]:
			return 1
		}
	case KindString:
		switch {
		case v.Strs[i] < v.Strs[j]:
			return -1
		case v.Strs[i] > v.Strs[j]:
			return 1
		}
	}
	return 0
}

// NullsInto clears ok[i] for every NULL element; non-NULL elements leave
// ok[i] untouched. The join hash phase uses it to mark rows whose key
// contains a NULL (NULL keys never match).
func (v *Vector) NullsInto(ok []bool) {
	if v.generic {
		for i, val := range v.Vals {
			if val.IsNull() {
				ok[i] = false
			}
		}
		return
	}
	if !v.anyNull {
		return
	}
	for i := 0; i < v.n; i++ {
		if v.NullAt(i) {
			ok[i] = false
		}
	}
}

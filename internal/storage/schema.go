package storage

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns. Column names are case-sensitive and
// unique within a schema.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns, validating uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error; intended for static schemas
// in generators and tests.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Project returns a new schema with only the named columns, in the given
// order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("storage: column %q not in schema %s", n, s)
		}
		cols = append(cols, s.Columns[i])
	}
	return NewSchema(cols...)
}

// Concat returns the concatenation of two schemas, renaming collisions on the
// right side with the given prefix (e.g. "r_" for join right inputs).
func (s *Schema) Concat(other *Schema, collisionPrefix string) (*Schema, error) {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	for _, c := range other.Columns {
		name := c.Name
		for i := 0; s.Has(name) || hasCol(cols[len(s.Columns):], name); i++ {
			name = collisionPrefix + c.Name
			if i > 0 {
				name = fmt.Sprintf("%s%s_%d", collisionPrefix, c.Name, i)
			}
		}
		cols = append(cols, Column{Name: name, Type: c.Type})
	}
	return NewSchema(cols...)
}

func hasCol(cols []Column, name string) bool {
	for _, c := range cols {
		if c.Name == name {
			return true
		}
	}
	return false
}

// String renders the schema as "(a int, b string)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

package storage

// LogFile is a raw, schemaless log stored in the big data store as JSON
// lines (the paper's HDFS flat files). Queries are posed directly over logs;
// the schema of interest is declared in the query and extracted at scan time
// by the SerDe (see the hv package's extract stage).
//
// FieldTypes records the types of the fields a SerDe may extract. It stands
// in for the per-query schema declaration: the query names the fields and
// the registry supplies their types.
type LogFile struct {
	Name        string
	Lines       []string
	FieldTypes  *Schema
	ScaleFactor float64

	// Generation counts how many times the log has been reset. A view
	// materialized from generation g is stale — and must be quarantined,
	// never silently served — once the log advances past g.
	Generation int

	bytes int64
}

// NewLogFile creates an empty log with the given extractable field registry.
func NewLogFile(name string, fields *Schema) *LogFile {
	return &LogFile{Name: name, FieldTypes: fields}
}

// AppendLine adds one raw JSON record.
func (l *LogFile) AppendLine(line string) {
	l.Lines = append(l.Lines, line)
	l.bytes += int64(len(line)) + 1 // +1 for the newline
}

// Reset drops all records (a new generation of the log replaces the old)
// and bumps the generation counter that stale-view quarantine keys on.
func (l *LogFile) Reset() {
	l.Lines = nil
	l.bytes = 0
	l.Generation++
}

// NumLines returns the record count.
func (l *LogFile) NumLines() int { return len(l.Lines) }

// RawBytes returns the measured in-memory size of the log.
func (l *LogFile) RawBytes() int64 { return l.bytes }

// LogicalBytes returns the scaled size used by the cost model.
func (l *LogFile) LogicalBytes() int64 {
	sf := l.ScaleFactor
	if sf <= 0 {
		sf = 1
	}
	return int64(float64(l.bytes) * sf)
}

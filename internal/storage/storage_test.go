package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{IntValue(42), KindInt, "42"},
		{IntValue(-7), KindInt, "-7"},
		{FloatValue(2.5), KindFloat, "2.5"},
		{StringValue("hi"), KindString, "hi"},
		{BoolValue(true), KindBool, "true"},
		{BoolValue(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if f, ok := IntValue(3).AsFloat(); !ok || f != 3 {
		t.Errorf("int->float = %v %v", f, ok)
	}
	if i, ok := FloatValue(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("float->int = %v %v", i, ok)
	}
	if i, ok := StringValue("17").AsInt(); !ok || i != 17 {
		t.Errorf("string->int = %v %v", i, ok)
	}
	if f, ok := StringValue("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("string->float = %v %v", f, ok)
	}
	if _, ok := StringValue("abc").AsInt(); ok {
		t.Error("non-numeric string coerced to int")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("NULL coerced to float")
	}
}

func TestValueBool(t *testing.T) {
	truthy := []Value{BoolValue(true), IntValue(1), FloatValue(0.5), StringValue("x")}
	falsy := []Value{BoolValue(false), IntValue(0), FloatValue(0), StringValue(""), Null}
	for _, v := range truthy {
		if !v.Bool() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Bool() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestCompareSemantics(t *testing.T) {
	if Compare(IntValue(1), FloatValue(1.0)) != 0 {
		t.Error("1 != 1.0")
	}
	if Compare(IntValue(1), IntValue(2)) >= 0 {
		t.Error("1 >= 2")
	}
	if Compare(StringValue("a"), StringValue("b")) >= 0 {
		t.Error("a >= b")
	}
	if Compare(Null, IntValue(0)) >= 0 {
		t.Error("NULL should sort first")
	}
	if Compare(Null, Null) != 0 {
		t.Error("NULL != NULL under Compare")
	}
}

// TestCompareTotalOrder checks antisymmetry and transitivity over random
// values: Compare must induce a total order or sorts would be unstable.
func TestCompareTotalOrder(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 4 {
		case 0:
			return IntValue(seed % 100)
		case 1:
			return FloatValue(float64(seed%100) / 3)
		case 2:
			return StringValue(string(rune('a' + seed%26)))
		default:
			return Null
		}
	}
	antisym := func(a, b int64) bool {
		x, y := gen(a), gen(b)
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(a, b, c int64) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// TestHashEqualConsistency: values equal under Compare must hash equal
// (numerically equal int/float included), else hash joins lose matches.
func TestHashEqualConsistency(t *testing.T) {
	pairs := [][2]Value{
		{IntValue(7), FloatValue(7.0)},
		{IntValue(0), BoolValue(false)},
		{StringValue("x"), StringValue("x")},
	}
	for _, p := range pairs {
		if Compare(p[0], p[1]) == 0 && p[0].Hash() != p[1].Hash() {
			t.Errorf("%v and %v equal but hash differently", p[0], p[1])
		}
	}
	prop := func(n int64) bool {
		return IntValue(n).Hash() == FloatValue(float64(n)).Hash() ||
			float64(n) != math.Trunc(float64(n))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("int/float hash: %v", err)
	}
}

func TestEncodedSize(t *testing.T) {
	if Null.EncodedSize() != 1 {
		t.Error("null size")
	}
	if IntValue(1).EncodedSize() != 8 {
		t.Error("int size")
	}
	if StringValue("abcd").EncodedSize() != 6 {
		t.Error("string size = len+2")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: KindInt}, Column{Name: "a", Type: KindInt}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	s := MustSchema(Column{Name: "a", Type: KindInt}, Column{Name: "b", Type: KindString})
	if s.Index("b") != 1 || s.Index("z") != -1 {
		t.Error("Index broken")
	}
	if !s.Has("a") || s.Has("c") {
		t.Error("Has broken")
	}
	if got := s.String(); got != "(a int, b string)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: KindInt}, Column{Name: "b", Type: KindString},
		Column{Name: "c", Type: KindFloat})
	p, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Columns[0].Name != "c" || p.Columns[1].Name != "a" {
		t.Errorf("Project = %s", p)
	}
	if _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("projecting missing column succeeded")
	}
}

func TestSchemaConcatRenamesCollisions(t *testing.T) {
	l := MustSchema(Column{Name: "id", Type: KindInt})
	r := MustSchema(Column{Name: "id", Type: KindInt}, Column{Name: "x", Type: KindInt})
	c, err := l.Concat(r, "r_")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("concat len = %d", c.Len())
	}
	if !c.Has("r_id") {
		t.Errorf("collision not renamed: %s", c)
	}
}

func TestTableAppendAndBytes(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: KindInt}, Column{Name: "s", Type: KindString})
	tb := NewTable("t", s)
	if err := tb.Append(Row{IntValue(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	tb.MustAppend(Row{IntValue(1), StringValue("xy")})
	tb.MustAppend(Row{IntValue(2), StringValue("z")})
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	want := int64(8+4) + int64(8+3)
	if tb.RawBytes() != want {
		t.Errorf("RawBytes = %d, want %d", tb.RawBytes(), want)
	}
	if tb.LogicalBytes() != want {
		t.Errorf("LogicalBytes with SF=0 should equal RawBytes")
	}
	tb.ScaleFactor = 10
	if tb.LogicalBytes() != want*10 {
		t.Errorf("LogicalBytes = %d, want %d", tb.LogicalBytes(), want*10)
	}
	if tb.AvgRowBytes() != want/2 {
		t.Errorf("AvgRowBytes = %d", tb.AvgRowBytes())
	}
}

func TestTableCloneIndependent(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: KindInt})
	tb := NewTable("t", s)
	tb.MustAppend(Row{IntValue(1)})
	c := tb.Clone()
	c.MustAppend(Row{IntValue(2)})
	if tb.NumRows() != 1 || c.NumRows() != 2 {
		t.Error("clone shares row slice")
	}
	tb.Truncate()
	if tb.NumRows() != 0 || tb.RawBytes() != 0 {
		t.Error("truncate incomplete")
	}
	if c.NumRows() != 2 {
		t.Error("truncate affected clone")
	}
}

func TestLogFileAccounting(t *testing.T) {
	l := NewLogFile("logx", MustSchema(Column{Name: "f", Type: KindInt}))
	l.AppendLine(`{"f":1}`)
	l.AppendLine(`{"f":22}`)
	if l.NumLines() != 2 {
		t.Fatalf("lines = %d", l.NumLines())
	}
	want := int64(len(`{"f":1}`) + 1 + len(`{"f":22}`) + 1)
	if l.RawBytes() != want {
		t.Errorf("RawBytes = %d, want %d", l.RawBytes(), want)
	}
	l.ScaleFactor = 1000
	if l.LogicalBytes() != want*1000 {
		t.Errorf("LogicalBytes = %d", l.LogicalBytes())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if c.HasLog("x") {
		t.Error("empty catalog has log")
	}
	if _, err := c.Log("x"); err == nil {
		t.Error("missing log returned without error")
	}
	la := NewLogFile("a", MustSchema(Column{Name: "f", Type: KindInt}))
	la.AppendLine(`{"f":1}`)
	lb := NewLogFile("b", MustSchema(Column{Name: "f", Type: KindInt}))
	lb.AppendLine(`{"f":1}`)
	lb.AppendLine(`{"f":2}`)
	c.AddLog(lb)
	c.AddLog(la)
	names := c.LogNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("LogNames = %v", names)
	}
	if c.TotalLogicalBytes() != la.LogicalBytes()+lb.LogicalBytes() {
		t.Error("TotalLogicalBytes mismatch")
	}
}

func TestRowEncodedSizeMatchesSum(t *testing.T) {
	r := Row{IntValue(1), StringValue("abc"), Null}
	want := IntValue(1).EncodedSize() + StringValue("abc").EncodedSize() + Null.EncodedSize()
	if r.EncodedSize() != want {
		t.Errorf("row size = %d, want %d", r.EncodedSize(), want)
	}
}

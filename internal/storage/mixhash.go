// Fast internal mix hash: the word-at-a-time counterpart of the FNV byte
// stream in Value.HashInto, for hot paths where the hash never leaves one
// operator run. Group-by and DISTINCT partition rows by kind-tagged key
// equality (appendTaggedKey semantics) and verify every collision value-
// wise, so their hash only has to satisfy one invariant — tagged-key-equal
// values hash equal — and can trade the HashInto contract for speed:
// integers and floats fold in one multiply instead of eight byte rounds,
// and strings go through hash/maphash's AES-accelerated string hash.
//
// Joins must NOT use this hash: join key matching follows storage.Equal,
// whose numeric coercion HashInto mirrors and MixInto deliberately does
// not.
package storage

import (
	"hash/maphash"
	"math"
)

// mixSeed keys the string leg. It is random per process, which is fine:
// the mix hash only partitions rows inside one operator run, and operator
// outputs never depend on partition assignment.
var mixSeed = maphash.MakeSeed()

// Kind tags for the mix hash — arbitrary odd 64-bit constants, one per
// kind, so values of different kinds rarely collide (callers verify
// collisions value-wise regardless).
const (
	mixPrime    = 0x9E3779B97F4A7C15
	mixNullTag  = 0x5BF03635AEDC1E77
	mixIntTag   = 0x7F4A7C159E3779B9
	mixBoolTag  = 0x94D049BB133111EB
	mixFloatTag = 0x2545F4914F6CDD1D
	mixStrTag   = 0xBF58476D1CE4E5B9
	mixNaN      = 0x8E8B5B1EE7A1C3D5
)

// mix64 folds x into h: one multiply plus a shift-xor, so both the high
// bits (map buckets) and the low bits (partition masks) are usable.
func mix64(h, x uint64) uint64 {
	h = (h ^ x) * mixPrime
	return h ^ h>>32
}

// The per-kind legs are shared between Value.MixInto and Vector.MixHashInto
// so the row-major and columnar paths hash identical values identically —
// required because one operator run may see the same key through a typed
// vector in one morsel and a degraded generic vector in another.
func mixIntLeg(h uint64, x int64) uint64  { return mix64(h^mixIntTag, uint64(x)) }
func mixBoolLeg(h uint64, x int64) uint64 { return mix64(h^mixBoolTag, uint64(x)) }
func mixStrLeg(h uint64, s string) uint64 { return mix64(h^mixStrTag, maphash.String(mixSeed, s)) }
func mixNullLeg(h uint64) uint64          { return mix64(h, mixNullTag) }

func mixFloatLeg(h uint64, f float64) uint64 {
	if math.IsNaN(f) {
		// Every NaN is one tagged key (they all format as "NaN").
		return mix64(h^mixFloatTag, mixNaN)
	}
	// By bit pattern: tagged keys use the exact decimal form, which
	// round-trips, so distinct bit patterns (including ±0) are distinct
	// keys and may hash apart.
	return mix64(h^mixFloatTag, math.Float64bits(f))
}

// MixInto folds v into h with the fast internal mix hash. Its only
// guarantee is the one group/distinct partitioning needs: values with
// equal kind-tagged keys hash equal. It does not match HashInto, does not
// coerce across numeric kinds, and is not stable across processes — never
// use it for anything persisted or order-affecting.
func (v Value) MixInto(h uint64) uint64 {
	switch v.Kind {
	case KindInt:
		return mixIntLeg(h, v.I)
	case KindBool:
		return mixBoolLeg(h, v.I)
	case KindFloat:
		return mixFloatLeg(h, v.F)
	case KindString:
		return mixStrLeg(h, v.S)
	default:
		return mixNullLeg(h)
	}
}

// MixHashInto folds element i into hs[i] for every element, exactly as
// chaining Value.MixInto over the reconstructed values would — the
// columnar leg of the group/distinct partition hash. hs must have at least
// Len entries. It allocates nothing.
func (v *Vector) MixHashInto(hs []uint64) {
	if v.generic {
		for i, val := range v.Vals {
			hs[i] = val.MixInto(hs[i])
		}
		return
	}
	switch v.kind {
	case KindInt:
		for i, x := range v.Ints {
			if v.NullAt(i) {
				hs[i] = mixNullLeg(hs[i])
			} else {
				hs[i] = mixIntLeg(hs[i], x)
			}
		}
	case KindBool:
		for i, x := range v.Ints {
			if v.NullAt(i) {
				hs[i] = mixNullLeg(hs[i])
			} else {
				hs[i] = mixBoolLeg(hs[i], x)
			}
		}
	case KindFloat:
		for i, f := range v.Floats {
			if v.NullAt(i) {
				hs[i] = mixNullLeg(hs[i])
			} else {
				hs[i] = mixFloatLeg(hs[i], f)
			}
		}
	case KindString:
		for i, s := range v.Strs {
			if v.NullAt(i) {
				hs[i] = mixNullLeg(hs[i])
			} else {
				hs[i] = mixStrLeg(hs[i], s)
			}
		}
	}
}

package storage

import (
	"strings"
	"testing"
)

func TestLogResetBumpsGeneration(t *testing.T) {
	l := NewLogFile("tweets", nil)
	l.AppendLine(`{"a":1}`)
	l.AppendLine(`{"a":2}`)
	if l.Generation != 0 {
		t.Fatalf("fresh log generation = %d", l.Generation)
	}
	l.Reset()
	if l.Generation != 1 || l.NumLines() != 0 || l.RawBytes() != 0 {
		t.Fatalf("after reset: gen=%d lines=%d bytes=%d", l.Generation, l.NumLines(), l.RawBytes())
	}
	l.AppendLine(`{"a":3}`)
	l.Reset()
	if l.Generation != 2 {
		t.Fatalf("second reset: gen=%d, want 2", l.Generation)
	}
	// Appending never bumps the generation: only wholesale replacement does.
	l.AppendLine(`{"a":4}`)
	if l.Generation != 2 {
		t.Error("append bumped the generation")
	}
}

func checksumFixture(t *testing.T) *Table {
	t.Helper()
	sch, err := NewSchema(
		Column{Name: "id", Type: KindInt},
		Column{Name: "score", Type: KindFloat},
		Column{Name: "tag", Type: KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("fixture", sch)
	tbl.MustAppend(Row{IntValue(1), FloatValue(0.5), StringValue("alpha")})
	tbl.MustAppend(Row{IntValue(2), FloatValue(1.5), StringValue("beta")})
	return tbl
}

func TestChecksumTableDetectsEveryFieldFlip(t *testing.T) {
	base := ChecksumTable(checksumFixture(t))
	if base != ChecksumTable(checksumFixture(t)) {
		t.Fatal("checksum not deterministic")
	}
	mutations := []func(*Table){
		func(tb *Table) { tb.Rows[0][0].I++ },
		func(tb *Table) { tb.Rows[1][1].F += 1 },
		func(tb *Table) { tb.Rows[0][2].S = "alphb" },
		func(tb *Table) { tb.Name = "other" },
		func(tb *Table) { tb.Rows[0], tb.Rows[1] = tb.Rows[1], tb.Rows[0] }, // order is content
	}
	for i, mutate := range mutations {
		tb := checksumFixture(t)
		mutate(tb)
		if ChecksumTable(tb) == base {
			t.Errorf("mutation %d invisible to checksum", i)
		}
	}
	if ChecksumTable(nil) != ChecksumTable(nil) {
		t.Error("nil checksum not stable")
	}
	if ChecksumTable(nil) == base {
		t.Error("nil table collides with fixture")
	}
}

func TestChecksumSeparatorsPreventSmearing(t *testing.T) {
	// "ab"+"c" and "a"+"bc" across adjacent string cells must differ.
	sch, err := NewSchema(
		Column{Name: "x", Type: KindString},
		Column{Name: "y", Type: KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a, b string) *Table {
		tb := NewTable("t", sch)
		tb.MustAppend(Row{StringValue(a), StringValue(b)})
		return tb
	}
	if ChecksumTable(mk("ab", "c")) == ChecksumTable(mk("a", "bc")) {
		t.Error("cell boundary smearing")
	}
	long := strings.Repeat("z", 100)
	if ChecksumTable(mk(long, "")) == ChecksumTable(mk("", long)) {
		t.Error("column position smearing")
	}
}

// TestChecksumDataIgnoresNameOnly: ChecksumData fingerprints the answer
// (schema + rows) independent of the physical-plan-derived table name,
// but remains exactly as sensitive as ChecksumTable to everything else.
func TestChecksumDataIgnoresNameOnly(t *testing.T) {
	a := checksumFixture(t)
	b := checksumFixture(t)
	b.Name = "renamed_by_a_different_plan"
	if ChecksumTable(a) == ChecksumTable(b) {
		t.Fatal("ChecksumTable must fold the name")
	}
	if ChecksumData(a) != ChecksumData(b) {
		t.Fatal("ChecksumData must not fold the name")
	}
	b.Rows[1][0] = IntValue(99)
	if ChecksumData(a) == ChecksumData(b) {
		t.Fatal("ChecksumData missed a data flip")
	}
	c := checksumFixture(t)
	c.Schema.Columns[0].Name = "idx"
	if ChecksumData(a) == ChecksumData(c) {
		t.Fatal("ChecksumData missed a schema change")
	}
	if ChecksumData(nil) != ChecksumData(nil) {
		t.Fatal("nil checksum not deterministic")
	}
}

package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog tracks the base data visible to the query layer: the raw logs in
// the big data store. Materialized views are tracked separately by each
// store's design (see the views, hv and dw packages); the catalog only knows
// about base data so that the "queries are posed on the base data in HDFS"
// role split of the paper is preserved.
type Catalog struct {
	mu   sync.RWMutex
	logs map[string]*LogFile
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{logs: make(map[string]*LogFile)}
}

// AddLog registers a log file. Re-registering a name replaces the previous
// log (logs are append-only in HDFS; replacement models a fresh generation).
func (c *Catalog) AddLog(l *LogFile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs[l.Name] = l
}

// Log returns the named log.
func (c *Catalog) Log(name string) (*LogFile, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	l, ok := c.logs[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown log %q", name)
	}
	return l, nil
}

// HasLog reports whether a log with this name exists.
func (c *Catalog) HasLog(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.logs[name]
	return ok
}

// LogNames returns the sorted names of all registered logs.
func (c *Catalog) LogNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.logs))
	for n := range c.logs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalLogicalBytes sums the logical size of all logs; this is the "base
// data size" against which view storage budgets are expressed (e.g. Bh=2x).
func (c *Catalog) TotalLogicalBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, l := range c.logs {
		n += l.LogicalBytes()
	}
	return n
}

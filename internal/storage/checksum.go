package storage

import (
	"hash/fnv"
	"math"
)

// ChecksumTable computes an FNV-64a content checksum over a table's schema
// and rows, in row order. It is the integrity fingerprint stamped on every
// materialized view and transferred working set: recomputing it at load or
// match time and comparing against the stamped value detects bit rot and
// torn writes. Row order is part of the content — tables are write-once, so
// a reordered copy is a different artifact.
func ChecksumTable(t *Table) uint64 {
	h := fnv.New64a()
	if t == nil {
		return h.Sum64()
	}
	h.Write([]byte(t.Name))
	h.Write([]byte{0})
	checksumBody(h, t)
	return h.Sum64()
}

// ChecksumData is ChecksumTable without the table name: a fingerprint of
// the answer itself (schema and rows) independent of the physical plan
// that produced it. Result-table names embed the chosen plan shape —
// which views were substituted — so two semantically identical answers
// computed before and after opportunistic view capture carry different
// names. The reuse plane keys correctness on what the user receives, so
// its digests use this form; artifact integrity (views, transfers) keeps
// using ChecksumTable, where the name is part of the artifact.
func ChecksumData(t *Table) uint64 {
	h := fnv.New64a()
	if t == nil {
		return h.Sum64()
	}
	checksumBody(h, t)
	return h.Sum64()
}

func checksumBody(h interface{ Write([]byte) (int, error) }, t *Table) {
	if t.Schema != nil {
		for _, col := range t.Schema.Columns {
			h.Write([]byte(col.Name))
			h.Write([]byte{byte(col.Type), 0})
		}
	}
	h.Write([]byte{0xff})
	for _, r := range t.Rows {
		for _, v := range r {
			writeChecksumValue(h, v)
		}
		h.Write([]byte{0xfe})
	}
}

func writeChecksumValue(h interface{ Write([]byte) (int, error) }, v Value) {
	h.Write([]byte{byte(v.Kind)})
	switch v.Kind {
	case KindInt, KindBool:
		writeUint64(h, uint64(v.I))
	case KindFloat:
		writeUint64(h, math.Float64bits(v.F))
	case KindString:
		h.Write([]byte(v.S))
		h.Write([]byte{0})
	}
}

package storage

import (
	"fmt"
)

// Row is one tuple. Its length always matches its table's schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// EncodedSize returns the estimated serialized size of the row.
func (r Row) EncodedSize() int64 {
	var n int64
	for _, v := range r {
		n += v.EncodedSize()
	}
	return n
}

// Table is an in-memory relation: a schema plus rows. Tables are the unit of
// materialization for views, transfers, and loads. ScaleFactor scales the
// measured in-memory byte size up to the "logical" size used by the cost
// model and the storage budgets, so that an MB-scale test dataset stands in
// for the paper's TB-scale logs.
//
// Tables are write-once: built by an operator or loader, then never
// mutated. That immutability is what lets snapshot accessors (for
// example multistore.System.Reports) share Table pointers across
// goroutines without copying or locking.
type Table struct {
	Name        string
	Schema      *Schema
	Rows        []Row
	ScaleFactor float64

	bytes int64 // accumulated EncodedSize of Rows
}

// NewTable creates an empty table with the given schema. A ScaleFactor of 0
// is treated as 1 by LogicalBytes.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Append adds a row, which must match the schema arity.
func (t *Table) Append(r Row) error {
	if len(r) != t.Schema.Len() {
		return fmt.Errorf("storage: row arity %d does not match schema %s of table %q",
			len(r), t.Schema, t.Name)
	}
	t.Rows = append(t.Rows, r)
	t.bytes += r.EncodedSize()
	return nil
}

// MustAppend is Append that panics on arity mismatch; used by generators
// whose arity is statically correct.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// AppendBlock bulk-appends rows whose total encoded size the caller has
// already computed — typically during a parallel materialization phase
// whose memory reservation needed the same per-row size walk. Arity is
// still validated; the size walk is not repeated. Passing a size that is
// not the sum of the rows' EncodedSize corrupts RawBytes, so callers must
// hand over exactly the bytes they reserved for these rows.
func (t *Table) AppendBlock(rows []Row, encodedBytes int64) {
	want := t.Schema.Len()
	for _, r := range rows {
		if len(r) != want {
			panic(fmt.Sprintf("storage: row arity %d does not match schema %s of table %q",
				len(r), t.Schema, t.Name))
		}
	}
	t.Rows = append(t.Rows, rows...)
	t.bytes += encodedBytes
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// RawBytes returns the measured in-memory serialized size.
func (t *Table) RawBytes() int64 { return t.bytes }

// LogicalBytes returns the scaled size used by the cost model: RawBytes
// multiplied by the table's ScaleFactor (default 1).
func (t *Table) LogicalBytes() int64 {
	sf := t.ScaleFactor
	if sf <= 0 {
		sf = 1
	}
	return int64(float64(t.bytes) * sf)
}

// AvgRowBytes returns the mean serialized row size, or 0 for empty tables.
func (t *Table) AvgRowBytes() int64 {
	if len(t.Rows) == 0 {
		return 0
	}
	return t.bytes / int64(len(t.Rows))
}

// Clone deep-copies the table (rows share Value structs, which are
// immutable).
func (t *Table) Clone() *Table {
	c := &Table{
		Name:        t.Name,
		Schema:      t.Schema.Clone(),
		Rows:        make([]Row, len(t.Rows)),
		ScaleFactor: t.ScaleFactor,
		bytes:       t.bytes,
	}
	for i, r := range t.Rows {
		c.Rows[i] = r.Clone()
	}
	return c
}

// Truncate drops all rows but keeps the schema.
func (t *Table) Truncate() {
	t.Rows = nil
	t.bytes = 0
}

package storage

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws a value of any kind, with deliberately nasty floats.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return IntValue(rng.Int63n(1000) - 500)
	case 2:
		switch rng.Intn(4) {
		case 0:
			return FloatValue(math.Copysign(0, -1)) // -0.0
		case 1:
			return FloatValue(math.NaN())
		default:
			return FloatValue(rng.NormFloat64() * 100)
		}
	case 3:
		return StringValue(string(rune('a' + rng.Intn(26))))
	case 4:
		return BoolValue(rng.Intn(2) == 0)
	default:
		return StringValue("")
	}
}

func sameValue(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	// Compare float payloads bit-exactly: NaN != NaN and -0.0 == 0.0 under
	// ==, but the checksum hashes Float64bits, so the vector must preserve
	// the exact bit pattern.
	return a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func TestVectorRoundTripTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []Kind{KindInt, KindFloat, KindString, KindBool}
	for _, k := range kinds {
		v := NewVector(k)
		var want []Value
		for i := 0; i < 200; i++ {
			var val Value
			if rng.Intn(4) == 0 {
				val = Null
			} else {
				switch k {
				case KindInt:
					val = IntValue(rng.Int63n(100) - 50)
				case KindFloat:
					if rng.Intn(3) == 0 {
						val = FloatValue(math.Copysign(0, -1))
					} else {
						val = FloatValue(rng.NormFloat64())
					}
				case KindString:
					val = StringValue(string(rune('a' + rng.Intn(26))))
				case KindBool:
					val = BoolValue(rng.Intn(2) == 0)
				}
			}
			v.Append(val)
			want = append(want, val)
		}
		if v.Generic() {
			t.Fatalf("kind %v: vector degraded on homogeneous input", k)
		}
		if v.Len() != len(want) {
			t.Fatalf("kind %v: len %d want %d", k, v.Len(), len(want))
		}
		for i, w := range want {
			if got := v.Value(i); !sameValue(got, w) {
				t.Fatalf("kind %v elem %d: got %#v want %#v", k, i, got, w)
			}
			if v.NullAt(i) != w.IsNull() {
				t.Fatalf("kind %v elem %d: NullAt mismatch", k, i)
			}
		}
	}
}

func TestVectorGenericDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := NewVector(KindInt)
	var want []Value
	for i := 0; i < 300; i++ {
		val := randValue(rng) // mixed kinds force degradation
		v.Append(val)
		want = append(want, val)
	}
	if !v.Generic() {
		t.Fatal("mixed-kind vector did not degrade to generic storage")
	}
	for i, w := range want {
		if got := v.Value(i); !sameValue(got, w) {
			t.Fatalf("elem %d: got %#v want %#v", i, got, w)
		}
	}
}

func TestVectorHashChainMatchesValueHashInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two key columns: chain hashes column-wise and compare against the
	// row-wise Value.HashInto chain, over typed and degraded vectors alike.
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(200)
		kinds := []Kind{KindInt, KindFloat, KindString, KindBool}
		c0 := NewVector(kinds[rng.Intn(len(kinds))])
		c1 := NewVector(kinds[rng.Intn(len(kinds))])
		rows := make([]Row, n)
		for i := range rows {
			var a, b Value
			if trial%2 == 0 {
				a, b = randValue(rng), randValue(rng) // degrade
			} else {
				switch c0.Kind() {
				case KindInt:
					a = IntValue(rng.Int63n(50))
				case KindFloat:
					a = FloatValue(rng.NormFloat64())
				case KindString:
					a = StringValue("k")
				case KindBool:
					a = BoolValue(true)
				}
				b = Null
			}
			rows[i] = Row{a, b}
			c0.Append(a)
			c1.Append(b)
		}
		hs := make([]uint64, n)
		for i := range hs {
			hs[i] = HashSeed
		}
		c0.HashChainInto(hs)
		c1.HashChainInto(hs)
		for i, r := range rows {
			want := HashSeed
			for _, v := range r {
				want = v.HashInto(want)
			}
			if hs[i] != want {
				t.Fatalf("trial %d row %d: vector hash %x want %x", trial, i, hs[i], want)
			}
		}
	}
}

func TestVectorTruesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(300)
		kind := []Kind{KindInt, KindFloat, KindString, KindBool, KindNull}[rng.Intn(5)]
		v := NewVector(kind)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = randValue(rng)
			if kind != KindNull && rng.Intn(2) == 0 {
				// Bias toward the declared kind so some trials stay typed.
				switch kind {
				case KindInt:
					vals[i] = IntValue(rng.Int63n(3) - 1)
				case KindFloat:
					vals[i] = FloatValue(float64(rng.Intn(3) - 1))
				case KindString:
					vals[i] = StringValue([]string{"", "x"}[rng.Intn(2)])
				case KindBool:
					vals[i] = BoolValue(rng.Intn(2) == 0)
				}
			}
			v.Append(vals[i])
		}
		const base = int32(1000)
		sel := v.TruesInto(nil, base)
		var want []int32
		for i, val := range vals {
			if !val.IsNull() && val.Bool() {
				want = append(want, base+int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("trial %d: sel len %d want %d", trial, len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("trial %d: sel[%d]=%d want %d", trial, i, sel[i], want[i])
			}
		}
	}
}

func TestVectorGatherAndFromRowsSel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(100)
		rows := make([]Row, n)
		src := NewVector(KindFloat)
		for i := range rows {
			var val Value
			switch rng.Intn(3) {
			case 0:
				val = Null
			case 1:
				val = FloatValue(rng.NormFloat64())
			default:
				if trial%2 == 0 {
					val = StringValue("mix") // force degraded source half the time
				} else {
					val = FloatValue(math.Copysign(0, -1))
				}
			}
			rows[i] = Row{val}
			src.Append(val)
		}
		var sel []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sel = append(sel, int32(i))
			}
		}
		var g, f Vector
		g.Gather(src, sel)
		f.FromRowsSel(rows, 0, KindFloat, sel)
		if g.Len() != len(sel) || f.Len() != len(sel) {
			t.Fatalf("trial %d: gather len %d fromRowsSel len %d want %d", trial, g.Len(), f.Len(), len(sel))
		}
		for j, i := range sel {
			want := rows[i][0]
			if got := g.Value(j); !sameValue(got, want) {
				t.Fatalf("trial %d: Gather[%d]=%#v want %#v", trial, j, got, want)
			}
			if got := f.Value(j); !sameValue(got, want) {
				t.Fatalf("trial %d: FromRowsSel[%d]=%#v want %#v", trial, j, got, want)
			}
		}
	}
}

func TestVectorNullsInto(t *testing.T) {
	v := NewVector(KindInt)
	v.Append(IntValue(1))
	v.Append(Null)
	v.Append(IntValue(3))
	ok := []bool{true, true, true}
	v.NullsInto(ok)
	if !ok[0] || ok[1] || !ok[2] {
		t.Fatalf("NullsInto: got %v want [true false true]", ok)
	}
	// Degraded path.
	v.Append(StringValue("x"))
	v.Append(Null)
	ok = []bool{true, true, true, true, true}
	v.NullsInto(ok)
	if !ok[0] || ok[1] || !ok[2] || !ok[3] || ok[4] {
		t.Fatalf("NullsInto generic: got %v", ok)
	}
}

func TestVectorResetReusesCapacity(t *testing.T) {
	v := NewVector(KindInt)
	for i := 0; i < 1024; i++ {
		v.AppendInt(int64(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		v.Reset(KindInt)
		for i := 0; i < 1024; i++ {
			v.AppendInt(int64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+AppendInt allocated %v per run, want 0", allocs)
	}
}

// Package stats provides cardinality and byte-size estimation for logical
// plans. Estimates feed the what-if cost models of both stores. A feedback
// cache keyed by canonical subtree signature records actual sizes observed
// during execution, so repeated subexpressions — the common case in the
// evolving-analyst workload — are costed from truth rather than heuristics.
package stats

import (
	"math"
	"sync"

	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/storage"
)

// Stat is the estimated (or observed) size of a relation.
type Stat struct {
	Rows  int64
	Bytes int64 // logical bytes (scaled)
}

// AvgRowBytes returns Bytes/Rows, guarding empty relations.
func (s Stat) AvgRowBytes() int64 {
	if s.Rows <= 0 {
		return 0
	}
	return s.Bytes / s.Rows
}

// Estimator estimates subtree output sizes. It is safe for concurrent
// use: the feedback cache sits behind an internal RWMutex, so the
// serving layer's workers may record observations while other
// goroutines estimate. Estimates are monotone in observation order but
// otherwise independent of interleaving — concurrent recording never
// corrupts a stat, it only decides which observation of the same
// signature lands last.
type Estimator struct {
	cat *storage.Catalog

	mu    sync.RWMutex
	cache map[string]Stat
}

// NewEstimator builds an estimator over the catalog's base data.
func NewEstimator(cat *storage.Catalog) *Estimator {
	return &Estimator{cat: cat, cache: map[string]Stat{}}
}

// Record stores the observed size for a subtree signature.
func (e *Estimator) Record(sig string, s Stat) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache[sig] = s
}

// RecordView stores the observed size of a materialized view under its
// viewscan signature so plans rewritten to use the view are costed
// accurately.
func (e *Estimator) RecordView(name string, s Stat) {
	e.Record("viewscan("+name+")", s)
}

// Lookup returns the recorded stat for a signature, if any.
func (e *Estimator) Lookup(sig string) (Stat, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.cache[sig]
	return s, ok
}

// Observed reports whether the signature has recorded truth.
func (e *Estimator) Observed(sig string) bool {
	_, ok := e.Lookup(sig)
	return ok
}

// InvalidateMatching drops every cached stat whose signature satisfies the
// predicate; used when base data changes and derived truths go stale.
func (e *Estimator) InvalidateMatching(pred func(sig string) bool) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for sig := range e.cache {
		if pred(sig) {
			delete(e.cache, sig)
			n++
		}
	}
	return n
}

// Estimate returns the estimated output size of the subtree, consulting the
// feedback cache first.
func (e *Estimator) Estimate(n *logical.Node) Stat {
	return e.EstimateWith(n, nil)
}

// EstimateWith estimates like Estimate but consults the local overlay map
// (signature -> stat) before the shared feedback cache, at every level of
// the recursion. The overlay lets a caller cost a plan against hypothetical
// relations — the optimizer's migrated working sets — without publishing
// their stats into the shared cache, which keeps the what-if cost path
// read-only and therefore safe for concurrent use: parallel costing calls
// reusing the same temp names (ws_0, ws_1, ...) can no longer clobber each
// other. A nil overlay makes EstimateWith identical to Estimate.
func (e *Estimator) EstimateWith(n *logical.Node, overlay map[string]Stat) Stat {
	if overlay != nil {
		if s, ok := overlay[n.Signature()]; ok {
			return s
		}
	}
	if s, ok := e.Lookup(n.Signature()); ok {
		return s
	}
	var s Stat
	switch n.Kind {
	case logical.KindScan:
		s = e.logStat(n.LogName)
	case logical.KindExtract:
		base := e.logStat(n.Children[0].LogName)
		// Extracted columns are a fraction of the raw record; JSON keys
		// and punctuation are shed, so roughly proportional to the
		// field count with a floor.
		total := 8
		if log, err := e.cat.Log(n.Children[0].LogName); err == nil {
			total = log.FieldTypes.Len()
		}
		frac := float64(len(n.Fields)) / float64(total)
		if frac > 1 {
			frac = 1
		}
		s = Stat{Rows: base.Rows, Bytes: int64(float64(base.Bytes) * (0.1 + 0.75*frac))}
	case logical.KindFilter:
		child := e.EstimateWith(n.Children[0], overlay)
		sel := Selectivity(n.Pred)
		s = scale(child, sel)
	case logical.KindProject:
		child := e.EstimateWith(n.Children[0], overlay)
		inCols := n.Children[0].Schema().Len()
		frac := float64(len(n.Projs)) / float64(maxInt(inCols, 1))
		if frac > 1.5 {
			frac = 1.5
		}
		s = Stat{Rows: child.Rows, Bytes: int64(float64(child.Bytes) * frac)}
	case logical.KindJoin:
		l := e.EstimateWith(n.Children[0], overlay)
		r := e.EstimateWith(n.Children[1], overlay)
		// Foreign-key style heuristic: output near the larger input.
		rows := maxInt64(l.Rows, r.Rows)
		if n.JoinType == logical.JoinLeft && l.Rows > rows {
			rows = l.Rows
		}
		width := l.AvgRowBytes() + r.AvgRowBytes()
		s = Stat{Rows: rows, Bytes: rows * maxInt64(width, 8)}
	case logical.KindAggregate:
		child := e.EstimateWith(n.Children[0], overlay)
		var rows int64 = 1
		if len(n.GroupBy) > 0 {
			// Group count grows sublinearly with input size.
			rows = int64(math.Pow(float64(maxInt64(child.Rows, 1)), 0.67))
			if rows > child.Rows {
				rows = child.Rows
			}
			if rows < 1 {
				rows = 1
			}
		}
		width := int64(16 * (len(n.GroupBy) + len(n.Aggs)))
		s = Stat{Rows: rows, Bytes: rows * width}
	case logical.KindDistinct:
		child := e.EstimateWith(n.Children[0], overlay)
		s = scale(child, 0.5)
	case logical.KindSort:
		s = e.EstimateWith(n.Children[0], overlay)
	case logical.KindLimit:
		child := e.EstimateWith(n.Children[0], overlay)
		rows := minInt64(int64(n.LimitN), child.Rows)
		s = Stat{Rows: rows, Bytes: rows * maxInt64(child.AvgRowBytes(), 8)}
	case logical.KindViewScan:
		// Unrecorded views (hypothetical) fall back to a token size.
		s = Stat{Rows: 1000, Bytes: 64 * 1000}
	}
	if s.Rows < 0 {
		s.Rows = 0
	}
	if s.Bytes < 0 {
		s.Bytes = 0
	}
	return s
}

func (e *Estimator) logStat(name string) Stat {
	log, err := e.cat.Log(name)
	if err != nil {
		return Stat{}
	}
	return Stat{Rows: int64(log.NumLines()), Bytes: log.LogicalBytes()}
}

func scale(s Stat, f float64) Stat {
	return Stat{
		Rows:  int64(float64(s.Rows) * f),
		Bytes: int64(float64(s.Bytes) * f),
	}
}

// Selectivity estimates the fraction of rows passing a predicate using
// textbook heuristics.
func Selectivity(p expr.Expr) float64 {
	switch v := p.(type) {
	case *expr.BinOp:
		switch v.Op {
		case "AND":
			return clamp(Selectivity(v.L) * Selectivity(v.R))
		case "OR":
			l, r := Selectivity(v.L), Selectivity(v.R)
			return clamp(l + r - l*r)
		case "=":
			return 0.1
		case "!=":
			return 0.9
		case "<", "<=", ">", ">=":
			return 0.33
		case "LIKE":
			return 0.25
		default:
			return 0.5
		}
	case *expr.Not:
		return clamp(1 - Selectivity(v.E))
	case *expr.In:
		s := 0.1 * float64(len(v.Items))
		if v.Neg {
			s = 1 - s
		}
		return clamp(s)
	case *expr.IsNull:
		if v.Neg {
			return 0.95
		}
		return 0.05
	case *expr.Func:
		// Boolean UDFs (e.g. IS_WEEKEND) pass a moderate fraction.
		return 0.4
	case *expr.Const:
		if v.Val.Bool() {
			return 1
		}
		return 0
	default:
		return 0.5
	}
}

func clamp(f float64) float64 {
	if f < 0.001 {
		return 0.001
	}
	if f > 1 {
		return 1
	}
	return f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

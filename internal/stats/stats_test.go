package stats_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/expr"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
)

func setup(t *testing.T) (*storage.Catalog, *logical.Builder, *stats.Estimator, *exec.Env) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := &exec.Env{ReadLog: func(name string) (*storage.LogFile, error) { return cat.Log(name) }}
	return cat, logical.NewBuilder(cat), stats.NewEstimator(cat), env
}

func TestEstimateBaseExtract(t *testing.T) {
	cat, b, est, _ := setup(t)
	plan, err := b.BuildSQL("SELECT tweet_id FROM tweets")
	if err != nil {
		t.Fatal(err)
	}
	var extract *logical.Node
	plan.Walk(func(n *logical.Node) {
		if n.Kind == logical.KindExtract {
			extract = n
		}
	})
	s := est.Estimate(extract)
	log, _ := cat.Log(data.TweetsLog)
	if s.Rows != int64(log.NumLines()) {
		t.Errorf("rows = %d, want %d", s.Rows, log.NumLines())
	}
	if s.Bytes <= 0 || s.Bytes > log.LogicalBytes() {
		t.Errorf("bytes = %d vs log %d", s.Bytes, log.LogicalBytes())
	}
}

func TestEstimateFilterShrinks(t *testing.T) {
	_, b, est, _ := setup(t)
	all, _ := b.BuildSQL("SELECT tweet_id FROM tweets")
	filtered, _ := b.BuildSQL("SELECT tweet_id FROM tweets WHERE lang = 'en' AND retweets > 10")
	sAll := est.Estimate(all)
	sF := est.Estimate(filtered)
	if sF.Rows >= sAll.Rows || sF.Bytes >= sAll.Bytes {
		t.Errorf("filter estimate did not shrink: %+v vs %+v", sF, sAll)
	}
}

func TestEstimateAggregateShrinks(t *testing.T) {
	_, b, est, _ := setup(t)
	plan, _ := b.BuildSQL("SELECT lang, COUNT(*) AS n FROM tweets GROUP BY lang")
	agg := plan.Child(0)
	sa := est.Estimate(agg)
	sc := est.Estimate(agg.Child(0))
	if sa.Rows >= sc.Rows {
		t.Errorf("aggregate rows %d not below input %d", sa.Rows, sc.Rows)
	}
	global, _ := b.BuildSQL("SELECT COUNT(*) AS n FROM tweets")
	if s := est.Estimate(global.Child(0)); s.Rows != 1 {
		t.Errorf("global aggregate rows = %d", s.Rows)
	}
}

func TestFeedbackOverridesHeuristics(t *testing.T) {
	_, b, est, env := setup(t)
	plan, _ := b.BuildSQL("SELECT tweet_id FROM tweets WHERE lang = 'ja'")
	before := est.Estimate(plan)
	table, err := exec.Run(plan, env)
	if err != nil {
		t.Fatal(err)
	}
	est.Record(plan.Signature(), stats.Stat{Rows: int64(table.NumRows()), Bytes: table.LogicalBytes()})
	after := est.Estimate(plan)
	if after.Rows != int64(table.NumRows()) {
		t.Errorf("recorded truth ignored: %d vs %d", after.Rows, table.NumRows())
	}
	if !est.Observed(plan.Signature()) {
		t.Error("Observed false after Record")
	}
	_ = before
}

func TestRecordView(t *testing.T) {
	_, _, est, _ := setup(t)
	est.RecordView("v_test", stats.Stat{Rows: 5, Bytes: 500})
	vs := logical.NewViewScan("v_test", storage.MustSchema(
		storage.Column{Name: "x", Type: storage.KindInt}))
	s := est.Estimate(vs)
	if s.Rows != 5 || s.Bytes != 500 {
		t.Errorf("viewscan estimate = %+v", s)
	}
}

func TestSelectivityHeuristics(t *testing.T) {
	a := &expr.ColRef{Name: "a"}
	one := &expr.Const{Val: storage.IntValue(1)}
	eq := &expr.BinOp{Op: "=", L: a, R: one}
	lt := &expr.BinOp{Op: "<", L: a, R: one}
	cases := []struct {
		e        expr.Expr
		min, max float64
	}{
		{eq, 0.05, 0.2},
		{lt, 0.2, 0.5},
		{&expr.BinOp{Op: "AND", L: eq, R: lt}, 0.01, 0.1},
		{&expr.BinOp{Op: "OR", L: eq, R: lt}, 0.3, 0.6},
		{&expr.Not{E: eq}, 0.8, 1.0},
		{&expr.In{E: a, Items: []expr.Expr{one, one}}, 0.1, 0.3},
		{&expr.IsNull{E: a}, 0.0, 0.1},
		{&expr.IsNull{E: a, Neg: true}, 0.9, 1.0},
	}
	for _, c := range cases {
		got := stats.Selectivity(c.e)
		if got < c.min || got > c.max {
			t.Errorf("Selectivity(%s) = %.3f outside [%.2f, %.2f]", c.e.Canon(), got, c.min, c.max)
		}
	}
	// AND of two must never exceed either side.
	and := &expr.BinOp{Op: "AND", L: eq, R: eq}
	if stats.Selectivity(and) > stats.Selectivity(eq) {
		t.Error("AND selectivity exceeds conjunct")
	}
}

func TestEstimateJoinNotBelowInputs(t *testing.T) {
	_, b, est, _ := setup(t)
	plan, _ := b.BuildSQL(`SELECT t.tweet_id FROM tweets t JOIN checkins c ON t.user_id = c.user_id`)
	var join *logical.Node
	plan.Walk(func(n *logical.Node) {
		if n.Kind == logical.KindJoin {
			join = n
		}
	})
	sj := est.Estimate(join)
	l := est.Estimate(join.Child(0))
	r := est.Estimate(join.Child(1))
	maxIn := l.Rows
	if r.Rows > maxIn {
		maxIn = r.Rows
	}
	if sj.Rows < maxIn {
		t.Errorf("join estimate %d below larger input %d (FK heuristic)", sj.Rows, maxIn)
	}
}

package multistore_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/exec"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// runWorkloadWithExecWorkers replays the full 32-query evolving workload
// on a fresh zero-fault MS-MISO system whose stores use the given
// execution engine setting, and returns the durable-state digest.
func runWorkloadWithExecWorkers(t *testing.T, workers int) uint64 {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.ExecWorkers = workers
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("execworkers=%d query %d: %v", workers, i, err)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("execworkers=%d invariants: %v", workers, err)
	}
	return sys.StateDigest()
}

// TestStateDigestIdenticalAcrossExecWorkers is the end-to-end determinism
// regression for the morsel execution engine: a full zero-fault workload
// run — every query result, every opportunistic view, every design the
// tuner picks from them — must leave byte-identical durable state whether
// the stores execute with the legacy serial engine or the morsel engine at
// eight workers.
func TestStateDigestIdenticalAcrossExecWorkers(t *testing.T) {
	serial := runWorkloadWithExecWorkers(t, exec.SerialWorkers)
	parallel := runWorkloadWithExecWorkers(t, 8)
	if serial != parallel {
		t.Fatalf("durable-state digest diverged: serial engine %x, morsel workers=8 %x", serial, parallel)
	}
}

package multistore_test

import (
	"testing"

	"miso/internal/multistore"
)

// TestFig4Shape asserts the paper's Figure 4 ordering at paper scale:
// MS-MISO < HV-OP < MS-BASIC < HV-ONLY < DW-ONLY.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	tti := map[multistore.Variant]float64{}
	for _, v := range []multistore.Variant{
		multistore.VariantHVOnly, multistore.VariantDWOnly, multistore.VariantMSBasic,
		multistore.VariantHVOp, multistore.VariantMSMiso,
	} {
		m := runSystemScale(t, v, false).Metrics()
		tti[v] = m.TTI()
		t.Logf("%-9s TTI=%8.0f  hv=%8.0f dw=%6.0f xfer=%6.0f tune=%6.0f etl=%8.0f",
			v, m.TTI(), m.HVExe, m.DWExe, m.Transfer, m.Tune, m.ETL)
	}
	order := []multistore.Variant{
		multistore.VariantMSMiso, multistore.VariantHVOp, multistore.VariantMSBasic,
		multistore.VariantHVOnly, multistore.VariantDWOnly,
	}
	for i := 1; i < len(order); i++ {
		if tti[order[i-1]] >= tti[order[i]] {
			t.Errorf("expected %s (%.0f) < %s (%.0f)",
				order[i-1], tti[order[i-1]], order[i], tti[order[i]])
		}
	}
	if sp := tti[multistore.VariantHVOnly] / tti[multistore.VariantMSMiso]; sp < 2.0 {
		t.Errorf("MS-MISO speedup over HV-ONLY = %.2fx, want >= 2x", sp)
	}
}

package multistore

import (
	"hash/fnv"
	"math"
	"sort"

	"miso/internal/durability"
	"miso/internal/history"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/views"
)

// This file is the multistore side of the durability plane: journaling of
// design mutations at operation boundaries, stale-view quarantine, the
// checkpoint snapshot, and the canonical state digest used to verify that
// clean-shutdown recovery is byte-identical to the live state.
//
// Journaling model: every public mutating operation (RunContext,
// RunDegraded, Reorganize, AppendToLog, RefreshLog) captures the design at
// entry (beginOp) and diffs it against the design at exit (endOp), emitting
// ViewEvict/ViewAdmit records in deterministic name order plus the
// operation's own record (QueryDone, LogGen, ReorgCommit inside reorg).
// Views materialized inside an operation that dies mid-flight were never
// journaled — they are uncommitted work and recovery does not resurrect
// them. "Committed" means: its admit record was durably appended.

// Durability returns the system's durability manager, or nil when
// CheckpointEvery is 0.
func (s *System) Durability() *durability.Manager { return s.dur }

// Checkpoint takes an immediate full-state checkpoint (e.g. at clean
// shutdown) and returns it. Nil when durability is disabled.
func (s *System) Checkpoint() *durability.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		return nil
	}
	return s.dur.Checkpoint(s.seq, s.snapshotLocked())
}

// beginOp captures the design at an operation boundary; endOp diffs
// against it. Callers hold s.mu.
func (s *System) beginOp() {
	if s.dur == nil {
		return
	}
	s.jbase = s.designMap()
}

// endOp journals the operation's design diff, its final record (nil for
// operations fully described by the diff), and counts it toward the
// checkpoint cadence. A torn WAL append surfaces as faults.ErrCrash.
func (s *System) endOp(final *durability.Record) error {
	if s.dur == nil {
		return nil
	}
	if err := s.journalDesignDiff(); err != nil {
		return err
	}
	if final != nil {
		if err := s.dur.WAL().Append(final); err != nil {
			return err
		}
	}
	s.dur.MaybeCheckpoint(s.seq, func() any { return s.snapshotLocked() })
	return nil
}

// designMap flattens the current design into view name -> store tag.
func (s *System) designMap() map[string]byte {
	m := make(map[string]byte, s.hv.Views.Len()+s.dw.Views.Len())
	for _, v := range s.hv.Views.All() {
		m[v.Name] = durability.StoreHV
	}
	for _, v := range s.dw.Views.All() {
		m[v.Name] = durability.StoreDW
	}
	return m
}

// journalDesignDiff emits evict/admit records for every view whose
// placement changed since jbase, in sorted name order (evicts before
// admits, so a moved view is journaled as evict-from-source then
// admit-to-destination), and advances jbase to the current design.
func (s *System) journalDesignDiff() error {
	cur := s.designMap()
	names := make([]string, 0, len(s.jbase)+len(cur))
	seen := map[string]bool{}
	for n := range s.jbase {
		names = append(names, n)
		seen[n] = true
	}
	for n := range cur {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	wal := s.dur.WAL()
	for _, name := range names {
		old, wasIn := s.jbase[name]
		now, isIn := cur[name]
		if wasIn && (!isIn || old != now) {
			rec := &durability.Record{Kind: durability.KindViewEvict, Store: old, Name: name, Seq: int64(s.seq)}
			if err := wal.Append(rec); err != nil {
				return err
			}
		}
		if isIn && (!wasIn || old != now) {
			v := s.lookupView(name, now)
			if v == nil {
				continue
			}
			wal.PutPayload(v)
			rec := &durability.Record{
				Kind:     durability.KindViewAdmit,
				Store:    now,
				Name:     name,
				Seq:      int64(s.seq),
				Bytes:    v.SizeBytes(),
				Checksum: v.Checksum,
			}
			if err := wal.Append(rec); err != nil {
				return err
			}
		}
	}
	s.jbase = cur
	return nil
}

func (s *System) lookupView(name string, store byte) *views.View {
	if store == durability.StoreHV {
		v, _ := s.hv.Views.Get(name)
		return v
	}
	v, _ := s.dw.Views.Get(name)
	return v
}

// queryDoneRecord journals one completed query: sequence, SQL (so replay
// can rebuild the workload window), and its TTI contribution.
func queryDoneRecord(rep *QueryReport) *durability.Record {
	var flags uint64
	if rep.FellBackToHV {
		flags |= durability.FlagFellBack
	}
	if rep.Degraded {
		flags |= durability.FlagDegraded
	}
	if rep.HVOnly {
		flags |= durability.FlagHVOnly
	}
	if rep.BypassedHV {
		flags |= durability.FlagBypassedHV
	}
	return &durability.Record{
		Kind:            durability.KindQueryDone,
		Name:            "",
		SQL:             rep.SQL,
		Seq:             int64(rep.Seq),
		Bytes:           rep.TransferBytes,
		HVSeconds:       rep.HVSeconds,
		TransferSeconds: rep.TransferSeconds,
		DWSeconds:       rep.DWSeconds,
		RecoverySeconds: rep.RecoverySeconds,
		Retries:         int64(rep.Retries),
		Flags:           flags,
	}
}

// quarantineStale drops views whose base-log generation has advanced past
// the one they were materialized from — a direct catalog Reset would
// otherwise let them silently answer queries over data that no longer
// exists. Callers hold s.mu.
func (s *System) quarantineStale() {
	gen := func(name string) (int, bool) {
		log, err := s.cat.Log(name)
		if err != nil {
			return 0, false
		}
		return log.Generation, true
	}
	quarantined := false
	for _, set := range []*views.Set{s.hv.Views, s.dw.Views} {
		for _, v := range set.All() {
			if v.Stale(gen) {
				set.Remove(v.Name)
				s.metrics.Quarantined++
				quarantined = true
			}
		}
	}
	if quarantined {
		// Results computed while the stale views were live may carry their
		// bytes: drop every cached entry.
		s.invalidateReuse()
	}
}

// snapshot is the checkpoint state: a deep-cloned image of everything a
// restart needs — design and view metadata, budgets travel in Config,
// sliding workload window, TTI accounting, variant progress flags, reorg
// history, and per-query reports. Result tables are shared, not cloned:
// they are write-once and immutable after execution.
type snapshot struct {
	Variant  Variant
	Seq      int
	Metrics  Metrics
	EtlDone  bool
	OffTuned bool
	OffHV    []string
	OffDW    []string
	HV       []*views.View
	DW       []*views.View
	Window   []snapEntry
	Future   []snapEntry
	ReorgLog []ReorgRecord
	Reports  []*QueryReport
}

type snapEntry struct {
	Seq int
	SQL string
}

// snapshotLocked deep-clones the system state. Callers hold s.mu.
func (s *System) snapshotLocked() *snapshot {
	sn := &snapshot{
		Variant:  s.cfg.Variant,
		Seq:      s.seq,
		Metrics:  s.metrics,
		EtlDone:  s.etlDone,
		OffTuned: s.offTuned,
		ReorgLog: append([]ReorgRecord(nil), s.reorgLog...),
	}
	for name := range s.offTargetHV {
		sn.OffHV = append(sn.OffHV, name)
	}
	for name := range s.offTargetDW {
		sn.OffDW = append(sn.OffDW, name)
	}
	sort.Strings(sn.OffHV)
	sort.Strings(sn.OffDW)
	for _, v := range s.hv.Views.All() {
		sn.HV = append(sn.HV, v.Clone())
	}
	for _, v := range s.dw.Views.All() {
		sn.DW = append(sn.DW, v.Clone())
	}
	for _, e := range s.window.Entries() {
		sn.Window = append(sn.Window, snapEntry{Seq: e.Seq, SQL: e.SQL})
	}
	for _, e := range s.future {
		sn.Future = append(sn.Future, snapEntry{Seq: e.Seq, SQL: e.SQL})
	}
	for _, r := range s.reports {
		cp := *r
		cp.UsedViews = append([]string(nil), r.UsedViews...)
		sn.Reports = append(sn.Reports, &cp)
	}
	return sn
}

// restoreSnapshot installs a checkpoint image into a freshly constructed
// system. View and report structures are cloned again on the way in, so
// the recovered system never shares mutable state with the checkpoint.
func (s *System) restoreSnapshot(sn *snapshot) error {
	s.seq = sn.Seq
	s.metrics = sn.Metrics
	s.etlDone = sn.EtlDone
	s.offTuned = sn.OffTuned
	if len(sn.OffHV) > 0 || len(sn.OffDW) > 0 {
		s.offTargetHV = map[string]bool{}
		s.offTargetDW = map[string]bool{}
		for _, n := range sn.OffHV {
			s.offTargetHV[n] = true
		}
		for _, n := range sn.OffDW {
			s.offTargetDW[n] = true
		}
	}
	s.reorgLog = append([]ReorgRecord(nil), sn.ReorgLog...)
	for _, v := range sn.HV {
		s.installView(v.Clone(), s.hv.Views)
	}
	for _, v := range sn.DW {
		s.installView(v.Clone(), s.dw.Views)
	}
	for _, e := range sn.Window {
		plan, err := s.builder.BuildSQL(e.SQL)
		if err != nil {
			return err
		}
		s.window.Add(history.Entry{Seq: e.Seq, SQL: e.SQL, Plan: plan})
	}
	for _, e := range sn.Future {
		plan, err := s.builder.BuildSQL(e.SQL)
		if err != nil {
			return err
		}
		s.future = append(s.future, history.Entry{Seq: e.Seq, SQL: e.SQL, Plan: plan})
	}
	for _, r := range sn.Reports {
		cp := *r
		cp.UsedViews = append([]string(nil), r.UsedViews...)
		s.reports = append(s.reports, &cp)
	}
	return nil
}

// installView adds a restored view to a store set and re-primes the
// estimator with its observed statistics so post-recovery planning costs
// it the way the live system did.
func (s *System) installView(v *views.View, set *views.Set) {
	set.Add(v)
	if v.Table != nil {
		st := stats.Stat{Rows: int64(v.Table.NumRows()), Bytes: v.Table.LogicalBytes()}
		s.est.RecordView(v.Name, st)
		s.est.Record(v.Sig, st)
	}
}

// StateDigest returns an FNV-64a digest of the system's durable state:
// variant, sequence counter, TTI accounting, both view sets (name,
// checksum, creation/use sequence, size), the workload window, the reorg
// history, and the per-query reports. Two systems with equal digests are
// byte-identical in every field the checkpoint promises to preserve; the
// clean-shutdown regression checks digest equality between a live system
// and its recovered twin.
func (s *System) StateDigest() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	w := func(parts ...uint64) {
		var buf [8]byte
		for _, p := range parts {
			for i := 0; i < 8; i++ {
				buf[i] = byte(p >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	ws := func(str string) {
		h.Write([]byte(str))
		h.Write([]byte{0})
	}
	f := math.Float64bits
	ws(string(s.cfg.Variant))
	w(uint64(s.seq))
	m := s.metrics
	w(f(m.HVExe), f(m.DWExe), f(m.Transfer), f(m.Tune), f(m.ETL), f(m.Recovery))
	w(uint64(m.Queries), uint64(m.Reorgs), uint64(m.Fallbacks), uint64(m.Retries),
		uint64(m.Canceled), uint64(m.Degraded), uint64(m.Quarantined))
	for _, set := range []struct {
		tag string
		vs  []*views.View
	}{{"hv", s.hv.Views.All()}, {"dw", s.dw.Views.All()}} {
		ws(set.tag)
		for _, v := range set.vs {
			ws(v.Name)
			ws(v.Sig)
			w(v.Checksum, uint64(v.CreatedSeq), uint64(v.LastUsedSeq), uint64(v.SizeBytes()))
			logs := make([]string, 0, len(v.LogGens))
			for name := range v.LogGens {
				logs = append(logs, name)
			}
			sort.Strings(logs)
			for _, name := range logs {
				ws(name)
				w(uint64(v.LogGens[name]))
			}
		}
	}
	ws("window")
	for _, e := range s.window.Entries() {
		w(uint64(e.Seq))
		ws(e.SQL)
	}
	ws("reorg")
	for _, r := range s.reorgLog {
		w(uint64(r.BeforeSeq), uint64(r.MovedToDW), uint64(r.MovedToHV), uint64(r.Dropped),
			uint64(r.Bytes), f(r.Seconds), uint64(r.FailedMoves), uint64(r.RefundedBytes),
			f(r.RecoverySeconds))
	}
	ws("reports")
	for _, r := range s.reports {
		w(uint64(r.Seq))
		ws(r.SQL)
		w(f(r.HVSeconds), f(r.TransferSeconds), f(r.DWSeconds), f(r.RecoverySeconds),
			uint64(r.TransferBytes), uint64(r.Retries), uint64(r.ResultRows))
		var flags uint64
		for i, b := range []bool{r.FellBackToHV, r.Degraded, r.HVOnly, r.BypassedHV} {
			if b {
				flags |= 1 << uint(i)
			}
		}
		w(flags)
		for _, u := range r.UsedViews {
			ws(u)
		}
		if r.Result != nil {
			w(storage.ChecksumTable(r.Result))
		} else {
			w(0)
		}
	}
	return h.Sum64()
}

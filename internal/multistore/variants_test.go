package multistore_test

import (
	"strings"
	"testing"

	"miso/internal/data"
	"miso/internal/logical"
	"miso/internal/multistore"
	"miso/internal/workload"
)

func newSystem(t *testing.T, v multistore.Variant) *multistore.System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDWOnlyETLBuildsPerLogViews(t *testing.T) {
	sys := newSystem(t, multistore.VariantDWOnly)
	q, _ := workload.ByName("A1v1")
	rep, err := sys.Run(q.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BypassedHV || rep.HVSeconds != 0 {
		t.Error("DW-ONLY query touched HV")
	}
	m := sys.Metrics()
	if m.ETL <= 0 {
		t.Fatal("no ETL cost charged")
	}
	// One permanent view per log touched by the workload.
	if sys.DW().Views.Len() != 3 {
		t.Errorf("ETL views = %d, want 3", sys.DW().Views.Len())
	}
	// The ETL views carry the workload's hoisted UDF columns as data.
	foundUDFCol := false
	for _, v := range sys.DW().Views.All() {
		for _, c := range v.Table.Schema.Columns {
			if strings.Contains(c.Name, ".__") {
				foundUDFCol = true
			}
		}
	}
	if !foundUDFCol {
		t.Error("ETL views lack precomputed UDF columns")
	}
	// HV retains nothing.
	if sys.HV().Views.Len() != 0 {
		t.Error("DW-ONLY left views in HV")
	}
	// The ETL is one-time: a second query adds no ETL cost.
	q2, _ := workload.ByName("A1v2")
	if _, err := sys.Run(q2.SQL); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().ETL != m.ETL {
		t.Error("ETL charged again")
	}
}

func TestDWOnlyRequiresFutureWorkload(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantDWOnly)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)
	q, _ := workload.ByName("A1v1")
	if _, err := sys.Run(q.SQL); err == nil {
		t.Error("DW-ONLY ran without a workload to scope the ETL")
	}
}

func TestReorgSchedule(t *testing.T) {
	sys := newSystem(t, multistore.VariantMSMiso)
	for i := 0; i < 7; i++ {
		if _, err := sys.Run(workload.SQLs()[i]); err != nil {
			t.Fatal(err)
		}
	}
	// ReorgEvery=3: reorganizations before queries 3 and 6.
	log := sys.ReorgLog()
	if len(log) != 2 {
		t.Fatalf("reorgs = %d, want 2", len(log))
	}
	if log[0].BeforeSeq != 3 || log[1].BeforeSeq != 6 {
		t.Errorf("reorg points = %d, %d", log[0].BeforeSeq, log[1].BeforeSeq)
	}
	if sys.Metrics().Reorgs != 2 {
		t.Error("metrics reorg count wrong")
	}
}

func TestManualReorganize(t *testing.T) {
	sys := newSystem(t, multistore.VariantMSMiso)
	if _, err := sys.Run(workload.SQLs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().Reorgs != 1 {
		t.Error("manual reorganization not recorded")
	}
	// No-op on untuned variants.
	basic := newSystem(t, multistore.VariantMSBasic)
	if err := basic.Reorganize(); err != nil {
		t.Fatal(err)
	}
	if basic.Metrics().Reorgs != 0 {
		t.Error("MS-BASIC reorganized")
	}
}

func TestMetricsIdentity(t *testing.T) {
	// TTI must equal the sum of per-query times plus tuning plus ETL —
	// the cumulative series reconstruction relies on it.
	for _, v := range []multistore.Variant{
		multistore.VariantMSMiso, multistore.VariantDWOnly, multistore.VariantHVOp,
	} {
		sys := newSystem(t, v)
		for i := 0; i < 8; i++ {
			if _, err := sys.Run(workload.SQLs()[i]); err != nil {
				t.Fatalf("%s: %v", v, err)
			}
		}
		var sum float64
		for _, rep := range sys.Reports() {
			sum += rep.Total()
		}
		m := sys.Metrics()
		sum += m.Tune + m.ETL
		if diff := sum - m.TTI(); diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: query+tune+etl = %.2f, TTI = %.2f", v, sum, m.TTI())
		}
	}
}

func TestMSOraUsesFuture(t *testing.T) {
	// MS-ORA must run without error and reorganize using the provided
	// future workload; with the future known, it is at least as good as
	// MS-MISO on total HV time is not guaranteed per-query, so just
	// validate it completes and tunes.
	sys := newSystem(t, multistore.VariantMSOra)
	for i := 0; i < 8; i++ {
		if _, err := sys.Run(workload.SQLs()[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Metrics().Reorgs == 0 {
		t.Error("MS-ORA never reorganized")
	}
}

func TestSetBudgetsScaling(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 42)
	base := cat.TotalLogicalBytes()
	if cfg.Tuner.Bh != 2*base {
		t.Errorf("Bh = %d, want %d", cfg.Tuner.Bh, 2*base)
	}
	if cfg.Tuner.Bd != 2*base/10 {
		t.Errorf("Bd = %d, want %d (DW base is 1/10 of the logs)", cfg.Tuner.Bd, 2*base/10)
	}
	if cfg.Tuner.Bt != 42 {
		t.Errorf("Bt = %d", cfg.Tuner.Bt)
	}
}

func TestInvalidSQLLeavesSystemConsistent(t *testing.T) {
	sys := newSystem(t, multistore.VariantMSMiso)
	if _, err := sys.Run("SELECT FROM nothing"); err == nil {
		t.Fatal("invalid SQL accepted")
	}
	if sys.Metrics().Queries != 0 || len(sys.Reports()) != 0 {
		t.Error("failed query mutated metrics")
	}
	// The system still works afterwards.
	if _, err := sys.Run(workload.SQLs()[0]); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().Queries != 1 {
		t.Error("sequence number advanced by the failed query")
	}
}

func TestDesignExposure(t *testing.T) {
	sys := newSystem(t, multistore.VariantMSMiso)
	if _, err := sys.Run(workload.SQLs()[0]); err != nil {
		t.Fatal(err)
	}
	d := sys.Design()
	if d.HV.Len() == 0 {
		t.Error("design does not expose HV views")
	}
	// Every view definition in the design is a well-formed plan.
	for _, v := range d.HV.All() {
		if v.Def == nil || v.Def.Schema() == nil {
			t.Errorf("view %s has no definition/schema", v.Name)
		}
		v.Def.Walk(func(n *logical.Node) {
			if n.Schema() == nil && n.Kind != logical.KindScan {
				t.Errorf("view %s def node %v lacks a schema", v.Name, n.Kind)
			}
		})
	}
}

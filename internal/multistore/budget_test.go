package multistore_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// runBudgetWorkload replays the workload on an MS-MISO system under an
// HV-side fault storm with the given per-query retry budget (0 =
// unlimited), returning the final metrics. Every query must still
// complete: an exhausted budget falls back, it never fails the query.
func runBudgetWorkload(t *testing.T, budget int) multistore.Metrics {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	// DW-side faults only: DW exhaustion falls back to HV, so the budget
	// changes how much retrying precedes the fallback, never whether the
	// query completes. (HV-stage exhaustion would fail the query outright —
	// there is no store below HV to fall back to.)
	cfg.Faults = faults.Profile{}.With(faults.SiteDWQuery, 0.5)
	cfg.FaultSeed = 11
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 4, BaseBackoff: 1, BackoffFactor: 2, MaxBackoff: 8}
	cfg.RetryBudget = budget
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("budget=%d query %d: %v", budget, i, err)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("budget=%d invariants: %v", budget, err)
	}
	return sys.Metrics()
}

// TestRetryBudgetCapsRecovery: under the same fault storm, a tight
// per-query retry budget pays strictly fewer retries than unlimited
// recovery while every query still completes (budget exhaustion degrades
// to the fallback path, never to a user-visible failure).
func TestRetryBudgetCapsRecovery(t *testing.T) {
	unlimited := runBudgetWorkload(t, 0)
	capped := runBudgetWorkload(t, 1)

	if unlimited.Retries == 0 {
		t.Fatal("fault storm produced no retries; the test exercises nothing")
	}
	if capped.Retries >= unlimited.Retries {
		t.Fatalf("budget of 1 paid %d retries, unlimited paid %d — the budget capped nothing",
			capped.Retries, unlimited.Retries)
	}
	// The budget converts retry time into earlier HV fallbacks: queries
	// that would have retried their way through DW give up sooner, so the
	// fallback count can only grow.
	if capped.Fallbacks < unlimited.Fallbacks {
		t.Fatalf("budget of 1 fell back %d times, unlimited %d — an exhausted budget must degrade, not retry",
			capped.Fallbacks, unlimited.Fallbacks)
	}
	t.Logf("retries: unlimited %d, budget-1 %d; recovery: %.1fs vs %.1fs; fallbacks: %d vs %d",
		unlimited.Retries, capped.Retries, unlimited.Recovery, capped.Recovery,
		unlimited.Fallbacks, capped.Fallbacks)
}

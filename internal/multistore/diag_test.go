package multistore_test

import (
	"testing"

	"miso/internal/multistore"
	"miso/internal/workload"
)

// TestDiagnostics prints view-size distributions and per-query store
// utilization for MS-MISO; informational only (run with -v).
func TestDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostics")
	}
	sys := runSystemScale(t, multistore.VariantMSMiso, false)
	names := workload.Evolving()
	bypass, split, hvOnly := 0, 0, 0
	for i, rep := range sys.Reports() {
		mode := "split"
		switch {
		case rep.HVOnly:
			mode = "hv-only"
			hvOnly++
		case rep.BypassedHV:
			mode = "BYPASS"
			bypass++
		default:
			split++
		}
		t.Logf("%-5s %-7s hv=%7.0f xfer=%6.0f dw=%6.0f xferGB=%5.1f used=%d new=%d",
			names[i].Name, mode, rep.HVSeconds, rep.TransferSeconds, rep.DWSeconds,
			float64(rep.TransferBytes)/1e9, len(rep.UsedViews), rep.NewViews)
	}
	t.Logf("modes: bypass=%d split=%d hvonly=%d", bypass, split, hvOnly)
	for _, r := range sys.ReorgLog() {
		t.Logf("reorg@%d: toDW=%d toHV=%d drop=%d bytesGB=%.1f sec=%.0f",
			r.BeforeSeq, r.MovedToDW, r.MovedToHV, r.Dropped, float64(r.Bytes)/1e9, r.Seconds)
	}
	t.Logf("HV views=%d totalGB=%.1f | DW views=%d totalGB=%.1f",
		sys.HV().Views.Len(), float64(sys.HV().Views.TotalBytes())/1e9,
		sys.DW().Views.Len(), float64(sys.DW().Views.TotalBytes())/1e9)
	for _, v := range sys.DW().Views.All() {
		t.Logf("DW view %s %.2fGB rows=%d", v.Name, float64(v.SizeBytes())/1e9, v.Table.NumRows())
	}
	sizes := map[string]float64{}
	for _, v := range sys.HV().Views.All() {
		sizes[v.Name] = float64(v.SizeBytes()) / 1e9
	}
	t.Logf("HV view sizes (GB): %v", sizes)
}

package multistore_test

import (
	"testing"

	"miso/internal/multistore"
	"miso/internal/workload"
)

func TestResultCardinalities(t *testing.T) {
	sys := runSystem(t, multistore.VariantHVOnly)
	zero := 0
	for i, rep := range sys.Reports() {
		if rep.ResultRows == 0 {
			zero++
			t.Logf("%s: 0 rows", workload.Evolving()[i].Name)
		}
	}
	t.Logf("%d of 32 queries return no rows", zero)
	if zero > 10 {
		t.Errorf("too many empty results (%d); workload predicates too strict for the small dataset", zero)
	}
}

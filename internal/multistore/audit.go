package multistore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"miso/internal/durability"
	"miso/internal/faults"
	"miso/internal/storage"
	"miso/internal/views"
)

// This file is the multistore side of the online integrity plane: the
// chunked per-view audit the background scrubber drives (internal/audit),
// the atomic system-invariant audit, the self-healing repair path, the
// quarantine tombstones that stop a quarantined name from resurrecting
// through opportunistic capture, and the SiteViewRot bit-rot hook.
//
// Every audit entry point takes s.mu, so one chunk observes the design
// either entirely before or entirely after any concurrent query or
// reorganization — never a torn mix. With no scrubber attached nothing
// here runs, no tombstone is allocated, and zero-rate rot draws no
// randomness, so audit-disabled runs stay byte-identical to a system with
// no audit plane at all.

// Audit invariant families (AuditViolation.Invariant).
const (
	// InvChecksum is a per-view FNV-64 content checksum mismatch against
	// the catalog's stamped value.
	InvChecksum = "checksum"
	// InvFreshness is a view whose base-log generation has advanced past
	// the one it was materialized from.
	InvFreshness = "freshness"
	// InvDisjoint is a violation of Vh ∩ Vd = ∅.
	InvDisjoint = "disjointness"
	// InvBudget is a storage- or transfer-budget conservation failure
	// (Bh/Bd overflow, or a reorg ledger entry outside [0, Bt] / negative
	// refunds).
	InvBudget = "budget"
	// InvAccounting is a negative TTI component or a query/report count
	// mismatch.
	InvAccounting = "accounting"
	// InvWAL is a WAL/state consistency failure: a torn tail, an open
	// reorganization window at an operation boundary, a durable view
	// payload that no longer matches its admit record, or a live placement
	// that contradicts the committed journal.
	InvWAL = "wal"
)

// AuditViolation is one detected integrity violation.
type AuditViolation struct {
	// Invariant is the violated family (Inv* constants).
	Invariant string
	// View names the offending view; empty for system-wide invariants.
	View string
	// Store tags where the view lived ("hv" or "dw"); empty otherwise.
	Store string
	// Detail describes the violation.
	Detail string
	// Repaired reports that the violation was self-healed online —
	// recomputed through the HV fallback path, re-journaled, or evicted
	// back under budget.
	Repaired bool
	// Quarantined reports that the view was removed from the design (and
	// tombstoned) because it could not be repaired.
	Quarantined bool
}

func (v AuditViolation) String() string {
	state := "detected"
	switch {
	case v.Repaired:
		state = "repaired"
	case v.Quarantined:
		state = "quarantined"
	}
	if v.View == "" {
		return fmt.Sprintf("%s: %s (%s)", v.Invariant, v.Detail, state)
	}
	return fmt.Sprintf("%s: view %s in %s: %s (%s)", v.Invariant, v.View, v.Store, v.Detail, state)
}

// AuditViews incrementally verifies the per-view invariants — content
// checksum and base-log freshness — over both stores' catalogs in sorted
// name order, resuming after cursor ("" starts a pass) and checking at
// most max views per call (<= 0 checks all). With repair set, a failing
// view is self-healed by recomputing its definition through the HV
// engine (the existing fallback path) with the estimated HV cost charged
// to RECOVERY; a view that cannot be recomputed is quarantined out of the
// design and tombstoned so opportunistic capture cannot resurrect the
// name before the next reorganization. The next cursor is "" once the
// walk has wrapped. The error return is reserved for a torn WAL append
// while journaling a repair (the process is then considered dead, as for
// any other torn append).
func (s *System) AuditViews(cursor string, max int, repair bool) ([]AuditViolation, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	type residency struct {
		set   *views.Set
		store byte
		tag   string
	}
	stores := []residency{
		{s.hv.Views, durability.StoreHV, "hv"},
		{s.dw.Views, durability.StoreDW, "dw"},
	}
	seen := map[string]bool{}
	names := make([]string, 0, s.hv.Views.Len()+s.dw.Views.Len())
	for _, st := range stores {
		for _, v := range st.set.All() {
			if !seen[v.Name] {
				seen[v.Name] = true
				names = append(names, v.Name)
			}
		}
	}
	sort.Strings(names)

	gen := s.catalogGen()
	var (
		viols       []AuditViolation
		next        string
		checked     int
		quarantined bool
	)
	for _, name := range names {
		if name <= cursor {
			continue
		}
		if max > 0 && checked >= max {
			next = cursor
			break
		}
		checked++
		cursor = name
		for _, st := range stores {
			v, ok := st.set.Get(name)
			if !ok {
				continue
			}
			var inv, detail string
			switch {
			case !v.Verify():
				inv, detail = InvChecksum, "content checksum mismatch"
			case v.Stale(gen):
				inv, detail = InvFreshness, "base log generation advanced"
			default:
				continue
			}
			viol := AuditViolation{Invariant: inv, View: name, Store: st.tag, Detail: detail}
			s.metrics.AuditViolations++
			if repair {
				rerr := s.repairView(v, st.set, st.store)
				switch {
				case rerr == nil:
					viol.Repaired = true
					s.metrics.AuditRepaired++
				case errors.Is(rerr, faults.ErrCrash):
					return append(viols, viol), cursor, rerr
				default:
					s.quarantineView(name, st.set)
					quarantined = true
					viol.Quarantined = true
					viol.Detail += "; " + rerr.Error()
					s.metrics.AuditUnrepaired++
				}
			}
			viols = append(viols, viol)
		}
	}
	if quarantined && s.dur != nil {
		// Quarantine is a placement change: persist the evictions now so a
		// crash cannot resurrect a quarantined view from the journal.
		if err := s.journalDesignDiff(); err != nil {
			return viols, next, err
		}
	}
	return viols, next, nil
}

// AuditInvariants verifies the system-wide invariants in one atomic
// critical section: Vh ∩ Vd disjointness, storage- and transfer-budget
// conservation, TTI accounting sanity, and WAL/state consistency. With
// repair set, a disjointness breach is healed by evicting the HV copy
// (the DW placement wins, matching the capture veto's semantics), a
// storage-budget overflow by LRU eviction back under budget, and a
// mismatched durable view payload by re-journaling the verified live
// copy; ledger and accounting violations are report-only. The error
// return is reserved for a torn WAL append while journaling a repair.
func (s *System) AuditInvariants(repair bool) ([]AuditViolation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var viols []AuditViolation
	add := func(v AuditViolation) {
		s.metrics.AuditViolations++
		if v.Repaired {
			s.metrics.AuditRepaired++
		} else {
			s.metrics.AuditUnrepaired++
		}
		viols = append(viols, v)
	}

	// Vh ∩ Vd = ∅.
	changed := false
	for _, v := range s.hv.Views.All() {
		if !s.dw.Views.Has(v.Name) {
			continue
		}
		viol := AuditViolation{Invariant: InvDisjoint, View: v.Name, Store: "hv",
			Detail: "view resident in both stores"}
		if repair {
			s.hv.Views.Remove(v.Name)
			changed = true
			viol.Repaired = true
			viol.Detail += "; evicted HV copy, DW placement wins"
		}
		add(viol)
	}

	// Storage budgets.
	for _, b := range []struct {
		set   *views.Set
		tag   string
		limit int64
	}{{s.hv.Views, "hv", s.cfg.Tuner.Bh}, {s.dw.Views, "dw", s.cfg.Tuner.Bd}} {
		got := b.set.TotalBytes()
		if got <= b.limit {
			continue
		}
		viol := AuditViolation{Invariant: InvBudget, Store: b.tag,
			Detail: fmt.Sprintf("%s views %d bytes exceed budget %d", b.tag, got, b.limit)}
		if repair {
			evicted := views.EvictLRU(b.set, b.limit)
			changed = changed || len(evicted) > 0
			viol.Repaired = true
			viol.Detail += fmt.Sprintf("; evicted %d views back under budget", len(evicted))
		}
		add(viol)
	}

	// Transfer-budget conservation over the reorganization ledger.
	for _, rec := range s.reorgLog {
		switch {
		case rec.Bytes < 0 || rec.RefundedBytes < 0:
			add(AuditViolation{Invariant: InvBudget,
				Detail: fmt.Sprintf("reorg before query %d has negative byte accounting", rec.BeforeSeq)})
		case rec.Bytes > s.cfg.Tuner.Bt:
			add(AuditViolation{Invariant: InvBudget,
				Detail: fmt.Sprintf("reorg before query %d moved %d bytes over transfer budget %d",
					rec.BeforeSeq, rec.Bytes, s.cfg.Tuner.Bt)})
		}
	}

	// TTI accounting.
	m := s.metrics
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"HVExe", m.HVExe}, {"DWExe", m.DWExe}, {"Transfer", m.Transfer},
		{"Tune", m.Tune}, {"ETL", m.ETL}, {"Recovery", m.Recovery},
	} {
		if c.v < 0 {
			add(AuditViolation{Invariant: InvAccounting,
				Detail: fmt.Sprintf("negative %s component %f", c.name, c.v)})
		}
	}
	if m.Queries != len(s.reports) {
		add(AuditViolation{Invariant: InvAccounting,
			Detail: fmt.Sprintf("%d queries counted but %d reports", m.Queries, len(s.reports))})
	}

	// WAL/state consistency.
	if s.dur != nil {
		wviols, err := s.auditWAL(repair)
		for _, v := range wviols {
			add(v)
		}
		if err != nil {
			return viols, err
		}
	}

	if changed && s.dur != nil {
		if err := s.journalDesignDiff(); err != nil {
			return viols, err
		}
	}
	return viols, nil
}

// auditWAL checks the journal against the live state: no torn tail past
// the latest checkpoint, no reorganization window left open at an
// operation boundary, every still-placed view's durable payload matching
// its last admit record, and — for views present in both the committed
// journal placement and the live design — agreeing store placement.
// Views present only on one side are legitimate (uncommitted captures
// are never journaled; quarantined views are evicted from the journal at
// the next boundary), so they raise nothing. Callers hold s.mu.
func (s *System) auditWAL(repair bool) ([]AuditViolation, error) {
	var viols []AuditViolation
	wal := s.dur.WAL()
	lsn := 0
	place := map[string]byte{}
	if ckpt := s.dur.Latest(); ckpt != nil {
		lsn = ckpt.LSN
		if sn, ok := ckpt.State.(*snapshot); ok {
			for _, v := range sn.HV {
				place[v.Name] = durability.StoreHV
			}
			for _, v := range sn.DW {
				place[v.Name] = durability.StoreDW
			}
		}
	}
	recs, torn := wal.Replay(lsn)
	if torn > 0 {
		viols = append(viols, AuditViolation{Invariant: InvWAL,
			Detail: fmt.Sprintf("torn WAL tail of %d bytes past the last checkpoint", torn)})
	}

	lastAdmit := map[string]*durability.Record{}
	apply := func(rec *durability.Record) {
		switch rec.Kind {
		case durability.KindViewAdmit:
			place[rec.Name] = rec.Store
			lastAdmit[rec.Name] = rec
		case durability.KindViewEvict:
			if place[rec.Name] == rec.Store {
				delete(place, rec.Name)
			}
		}
	}
	inReorg := false
	var buffered []*durability.Record
	for _, rec := range recs {
		switch rec.Kind {
		case durability.KindReorgBegin:
			inReorg = true
			buffered = buffered[:0]
		case durability.KindReorgCommit:
			for _, b := range buffered {
				apply(b)
			}
			buffered = buffered[:0]
			inReorg = false
		case durability.KindReorgAbort:
			buffered = buffered[:0]
			inReorg = false
		case durability.KindViewAdmit, durability.KindViewEvict:
			if inReorg {
				buffered = append(buffered, rec)
				continue
			}
			apply(rec)
		}
	}
	if inReorg {
		viols = append(viols, AuditViolation{Invariant: InvWAL,
			Detail: "reorganization window left open at an operation boundary"})
	}

	// Durable payload integrity for every still-placed admitted view.
	names := make([]string, 0, len(lastAdmit))
	for name := range lastAdmit {
		if _, ok := place[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rec := lastAdmit[name]
		p, ok := wal.Payload(name)
		if ok && p.Verify() && p.Checksum == rec.Checksum {
			continue
		}
		viol := AuditViolation{Invariant: InvWAL, View: name,
			Detail: "durable payload fails its admit-record checksum"}
		if repair {
			// Self-heal the durable copy from the verified live view.
			if live := s.lookupView(name, place[name]); live != nil && live.Verify() {
				wal.PutPayload(live)
				rec := &durability.Record{
					Kind: durability.KindViewAdmit, Store: place[name], Name: name,
					Seq: int64(s.seq), Bytes: live.SizeBytes(), Checksum: live.Checksum,
				}
				if err := wal.Append(rec); err != nil {
					return append(viols, viol), err
				}
				viol.Repaired = true
				viol.Detail += "; re-journaled from the live copy"
			}
		}
		viols = append(viols, viol)
	}

	// Placement agreement on the intersection of journal and live design.
	live := s.designMap()
	liveNames := make([]string, 0, len(live))
	for name := range live {
		liveNames = append(liveNames, name)
	}
	sort.Strings(liveNames)
	for _, name := range liveNames {
		if st, ok := place[name]; ok && st != live[name] {
			viols = append(viols, AuditViolation{Invariant: InvWAL, View: name,
				Detail: fmt.Sprintf("journal places view in %c, live design in %c", st, live[name])})
		}
	}
	return viols, nil
}

// repairView self-heals one corrupt or stale view in place: its base-data
// definition is recomputed through the HV engine — the same path an HV
// fallback takes, with no injector draws and no store mutation until the
// verified result is reinstalled — restamped with current log
// generations, and reinstalled under the same name in the same store.
// The estimated HV cost of the recomputation is charged to RECOVERY. The
// repair is journaled as an evict+admit pair (the placement did not
// change, so the boundary design diff would not notice a content
// repair). Callers hold s.mu.
func (s *System) repairView(v *views.View, set *views.Set, store byte) error {
	if v.Def == nil || v.Name != views.NameForSig(v.Sig) {
		// Hand-installed tables (the bgwork mart) are not recomputable
		// through the HV fallback path: their name is not derived from
		// their signature, so a recomputation would install a stranger.
		return fmt.Errorf("multistore: view %s is not recomputable from base data", v.Name)
	}
	cost := s.hv.CostPlan(v.Def)
	p, err := s.hv.BeginExecute(context.Background(), v.Def)
	if err != nil {
		return fmt.Errorf("multistore: recomputing view %s: %w", v.Name, err)
	}
	nv := views.New(v.Def, p.Table(), v.CreatedSeq)
	if nv.Name != v.Name {
		return fmt.Errorf("multistore: view %s definition drifted (recomputed name %s)", v.Name, nv.Name)
	}
	nv.LastUsedSeq = v.LastUsedSeq
	nv.ExactOnly = v.ExactOnly
	nv.StampGenerations(s.catalogGen())
	set.Remove(v.Name)
	s.installView(nv, set)
	delete(s.tomb, v.Name)
	s.metrics.Recovery += cost
	if s.dur != nil {
		wal := s.dur.WAL()
		if err := wal.Append(&durability.Record{
			Kind: durability.KindViewEvict, Store: store, Name: v.Name, Seq: int64(s.seq),
		}); err != nil {
			return err
		}
		wal.PutPayload(nv)
		if err := wal.Append(&durability.Record{
			Kind: durability.KindViewAdmit, Store: store, Name: v.Name,
			Seq: int64(s.seq), Bytes: nv.SizeBytes(), Checksum: nv.Checksum,
		}); err != nil {
			return err
		}
	}
	return nil
}

// quarantineView removes an unrepairable view from the design and
// tombstones its name so opportunistic capture (hv.Commit's by-product
// publication, MS-LRU's passive retention) cannot resurrect it before
// the next reorganization rebuilds the design. Callers hold s.mu.
func (s *System) quarantineView(name string, set *views.Set) {
	set.Remove(name)
	if s.tomb == nil {
		s.tomb = map[string]bool{}
	}
	s.tomb[name] = true
	s.metrics.Quarantined++
	// The quarantined view's bytes may back cached results computed while
	// it was live: drop every reuse-cache entry.
	s.invalidateReuse()
}

// tombstoned reports whether the name is quarantine-tombstoned. Called
// from the capture veto and MS-LRU retention, both on the serialized
// query flow under s.mu.
func (s *System) tombstoned(name string) bool { return s.tomb[name] }

// QuarantineTombstones returns the currently tombstoned view names in
// sorted order (empty between reorganizations when nothing was
// quarantined online).
func (s *System) QuarantineTombstones() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tomb))
	for name := range s.tomb {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// catalogGen returns the generation probe for the system's catalog.
// Callers hold s.mu.
func (s *System) catalogGen() func(name string) (int, bool) {
	return func(name string) (int, bool) {
		log, err := s.cat.Log(name)
		if err != nil {
			return 0, false
		}
		return log.Generation, true
	}
}

// maybeRot draws the SiteViewRot bit-rot site once per operation: when it
// fires, one resident recomputable view's table is silently replaced by a
// clone with a single value flipped (size-preserving) while its catalog
// checksum is left stale — damage no query path notices until a checksum
// audit re-verifies it. Victim choice is deterministic in the draw's
// fraction over the sorted resident view names. A zero rate draws no
// randomness. Callers hold s.mu.
func (s *System) maybeRot() {
	failed, frac := s.inj.Check(faults.SiteViewRot)
	if !failed {
		return
	}
	type victim struct {
		v   *views.View
		set *views.Set
	}
	var victims []victim
	for _, set := range []*views.Set{s.hv.Views, s.dw.Views} {
		for _, v := range set.All() {
			if v.Table != nil && len(v.Table.Rows) > 0 && v.Name == views.NameForSig(v.Sig) {
				victims = append(victims, victim{v, set})
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	idx := int(frac * float64(len(victims)))
	if idx >= len(victims) {
		idx = len(victims) - 1
	}
	v := victims[idx].v
	rotted := v.Table.Clone()
	rotTable(rotted, frac)
	v.Table = rotted
	s.rotLog = append(s.rotLog, v.Name)
}

// RotLog returns the names of views corrupted by SiteViewRot so far, in
// injection order (a name may repeat). The endurance harness checks that
// every rotted name was later detected and repaired.
func (s *System) RotLog() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.rotLog...)
}

// rotTable flips one value in the table, chosen by frac, without changing
// its encoded size — the same size-preserving damage the durability
// plane's payload corruption models, applied to the live in-memory copy.
func rotTable(t *storage.Table, frac float64) {
	if t == nil || len(t.Rows) == 0 {
		return
	}
	nvals := 0
	for _, r := range t.Rows {
		nvals += len(r)
	}
	if nvals == 0 {
		return
	}
	start := int(frac * float64(nvals))
	if start >= nvals {
		start = nvals - 1
	}
	for i := 0; i < nvals; i++ {
		idx := (start + i) % nvals
		row, col := rotLocate(t, idx)
		v := &t.Rows[row][col]
		switch v.Kind {
		case storage.KindInt:
			v.I++
			return
		case storage.KindFloat:
			v.F += 1
			return
		case storage.KindBool:
			v.I = 1 - v.I
			return
		case storage.KindString:
			if len(v.S) > 0 {
				b := []byte(v.S)
				b[0] ^= 0x01
				v.S = string(b)
				return
			}
		}
	}
}

func rotLocate(t *storage.Table, idx int) (row, col int) {
	for r := range t.Rows {
		if idx < len(t.Rows[r]) {
			return r, idx
		}
		idx -= len(t.Rows[r])
	}
	return 0, 0
}

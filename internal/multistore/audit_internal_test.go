package multistore

// White-box tests for the online integrity plane: the self-healing
// repair path, the quarantine tombstones that keep an evicted name from
// resurrecting through opportunistic capture or MS-LRU retention, the
// system-invariant audit, and the audit-disabled byte-identity
// guarantee. These need direct access to the stores' view sets to plant
// corruption, so they live inside the package.

import (
	"testing"

	"miso/internal/data"
	"miso/internal/views"
	"miso/internal/workload"
)

func newAuditSystem(t *testing.T, v Variant, mutate func(*Config)) *System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := DefaultConfig(v)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	if mutate != nil {
		mutate(&cfg)
	}
	sys := New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys
}

func runPrefix(t *testing.T, sys *System, n int) {
	t.Helper()
	sqls := workload.SQLs()
	if n > len(sqls) {
		n = len(sqls)
	}
	for i := 0; i < n; i++ {
		if _, err := sys.Run(sqls[i]); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// pickRecomputable returns a resident view the repair path can recompute
// from base data, and the set it lives in.
func pickRecomputable(sys *System) (*views.View, *views.Set) {
	sys.mu.Lock()
	defer sys.mu.Unlock()
	for _, set := range []*views.Set{sys.hv.Views, sys.dw.Views} {
		for _, v := range set.All() {
			if v.Def != nil && v.Name == views.NameForSig(v.Sig) &&
				v.Table != nil && len(v.Table.Rows) > 0 {
				return v, set
			}
		}
	}
	return nil, nil
}

// TestAuditRepairsCorruptView corrupts a resident recomputable view the
// way SiteViewRot does and checks that a repair-mode audit pass detects
// the checksum mismatch, recomputes the view through the HV fallback
// path (charged to RECOVERY), and leaves a verifying copy under the same
// name in the same store.
func TestAuditRepairsCorruptView(t *testing.T) {
	sys := newAuditSystem(t, VariantMSMiso, nil)
	runPrefix(t, sys, 6)

	victim, set := pickRecomputable(sys)
	if victim == nil {
		t.Fatal("no recomputable view materialized")
	}
	rotted := victim.Table.Clone()
	rotTable(rotted, 0.5)
	victim.Table = rotted
	if victim.Verify() {
		t.Fatal("rot did not break the content checksum")
	}
	recoveryBefore := sys.Metrics().Recovery

	viols, next, err := sys.AuditViews("", 0, true)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if next != "" {
		t.Fatalf("full walk did not wrap (next %q)", next)
	}
	var found bool
	for _, v := range viols {
		if v.View == victim.Name {
			found = true
			if v.Invariant != InvChecksum {
				t.Fatalf("violation family %q, want %q", v.Invariant, InvChecksum)
			}
			if !v.Repaired || v.Quarantined {
				t.Fatalf("view not repaired: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("corrupt view %s not detected in %v", victim.Name, viols)
	}

	repaired, ok := set.Get(victim.Name)
	if !ok {
		t.Fatalf("repaired view %s missing from its store", victim.Name)
	}
	if !repaired.Verify() {
		t.Fatalf("repaired view %s still fails verification", victim.Name)
	}
	if got := sys.Metrics(); got.Recovery <= recoveryBefore {
		t.Fatalf("repair charged no recovery time (%.3f -> %.3f)", recoveryBefore, got.Recovery)
	} else if got.AuditViolations == 0 || got.AuditRepaired == 0 {
		t.Fatalf("audit counters not bumped: %+v", got)
	}

	clean, _, err := sys.AuditViews("", 0, true)
	if err != nil {
		t.Fatalf("second audit: %v", err)
	}
	if len(clean) != 0 {
		t.Fatalf("second pass still dirty: %v", clean)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
}

// TestQuarantineTombstoneBlocksCapture is the resurrection regression:
// once a view name is quarantined out of the design, replaying the very
// queries that created it must not resurrect the name through
// opportunistic capture until a reorganization rebuilds the design and
// clears the tombstones.
func TestQuarantineTombstoneBlocksCapture(t *testing.T) {
	sys := newAuditSystem(t, VariantMSMiso, func(c *Config) { c.ReorgEvery = 0 })
	runPrefix(t, sys, 5)

	sys.mu.Lock()
	for _, set := range []*views.Set{sys.hv.Views, sys.dw.Views} {
		for _, v := range set.All() {
			sys.quarantineView(v.Name, set)
		}
	}
	sys.mu.Unlock()
	tombs := sys.QuarantineTombstones()
	if len(tombs) == 0 {
		t.Fatal("nothing was quarantined; workload produced no views")
	}

	runPrefix(t, sys, 5)
	for _, name := range tombs {
		if sys.hv.Views.Has(name) || sys.dw.Views.Has(name) {
			t.Fatalf("quarantined view %s resurrected by opportunistic capture", name)
		}
	}

	if err := sys.Reorganize(); err != nil {
		t.Fatalf("reorganize: %v", err)
	}
	if left := sys.QuarantineTombstones(); len(left) != 0 {
		t.Fatalf("tombstones survived reorganization: %v", left)
	}
	runPrefix(t, sys, 5)
	if sys.hv.Views.Len()+sys.dw.Views.Len() == 0 {
		t.Fatal("capture still blocked after reorganization cleared the tombstones")
	}
}

// TestEvictThenQuarantineNoLRURetention covers the EvictLRU/quarantine
// interaction under MS-LRU: a name evicted under budget pressure and
// then quarantined must not be resurrected by the variant's passive
// retention when the same query transfers the same working set again.
func TestEvictThenQuarantineNoLRURetention(t *testing.T) {
	sys := newAuditSystem(t, VariantMSLru, nil)
	runPrefix(t, sys, 4)

	sys.mu.Lock()
	retained := sys.dw.Views.All()
	if len(retained) == 0 {
		sys.mu.Unlock()
		t.Skip("MS-LRU retained nothing on this prefix")
	}
	var names []string
	views.EvictLRU(sys.dw.Views, 0)
	for _, v := range retained {
		sys.quarantineView(v.Name, sys.dw.Views)
		names = append(names, v.Name)
	}
	sys.mu.Unlock()

	runPrefix(t, sys, 4)
	for _, name := range names {
		if sys.dw.Views.Has(name) {
			t.Fatalf("evicted-then-quarantined view %s resurrected by MS-LRU retention", name)
		}
	}
}

// TestAuditInvariantsRepairsDisjointness plants a Vh ∩ Vd breach and
// checks the invariant audit detects it and heals it by evicting the HV
// copy (DW placement wins), converging to a clean second pass.
func TestAuditInvariantsRepairsDisjointness(t *testing.T) {
	sys := newAuditSystem(t, VariantMSMiso, nil)
	runPrefix(t, sys, 6)

	sys.mu.Lock()
	all := sys.hv.Views.All()
	if len(all) == 0 {
		sys.mu.Unlock()
		t.Fatal("no HV views materialized")
	}
	planted := all[0]
	sys.dw.Views.Add(planted.Clone())
	sys.mu.Unlock()

	viols, err := sys.AuditInvariants(true)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	var found bool
	for _, v := range viols {
		if v.Invariant == InvDisjoint && v.View == planted.Name {
			found = true
			if !v.Repaired {
				t.Fatalf("disjointness breach not repaired: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("planted disjointness breach on %s not detected: %v", planted.Name, viols)
	}
	if sys.hv.Views.Has(planted.Name) {
		t.Fatal("HV copy survived the disjointness repair")
	}
	if !sys.dw.Views.Has(planted.Name) {
		t.Fatal("DW copy was evicted; the repair must keep the DW placement")
	}
	clean, err := sys.AuditInvariants(true)
	if err != nil {
		t.Fatalf("second audit: %v", err)
	}
	if len(clean) != 0 {
		t.Fatalf("second pass still dirty: %v", clean)
	}
}

// TestAuditCleanRunByteIdentity is the byte-identity guarantee: on a
// clean system, repair-mode audit passes after every query must leave
// the durable state digest identical to a run that never audits at all.
func TestAuditCleanRunByteIdentity(t *testing.T) {
	mutate := func(c *Config) { c.CheckpointEvery = 4 }
	plain := newAuditSystem(t, VariantMSMiso, mutate)
	audited := newAuditSystem(t, VariantMSMiso, mutate)

	for i, sql := range workload.SQLs() {
		if _, err := plain.Run(sql); err != nil {
			t.Fatalf("plain query %d: %v", i, err)
		}
		if _, err := audited.Run(sql); err != nil {
			t.Fatalf("audited query %d: %v", i, err)
		}
		viols, _, err := audited.AuditViews("", 0, true)
		if err != nil {
			t.Fatalf("audit views after query %d: %v", i, err)
		}
		iviols, err := audited.AuditInvariants(true)
		if err != nil {
			t.Fatalf("audit invariants after query %d: %v", i, err)
		}
		if len(viols)+len(iviols) != 0 {
			t.Fatalf("clean run reported violations after query %d: %v %v", i, viols, iviols)
		}
	}
	if a, b := plain.StateDigest(), audited.StateDigest(); a != b {
		t.Fatalf("auditing a clean run changed the state digest: %016x != %016x", a, b)
	}
}

package multistore_test

import (
	"testing"

	"miso/internal/multistore"
	"miso/internal/workload"
)

func TestCompareMisoHvop(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale comparison")
	}
	miso := runSystemScale(t, multistore.VariantMSMiso, false)
	hvop := runSystemScale(t, multistore.VariantHVOp, false)
	names := workload.Evolving()
	for i := range miso.Reports() {
		m, h := miso.Reports()[i], hvop.Reports()[i]
		flag := ""
		if m.Total() > h.Total()*1.05 {
			flag = "  <-- MISO WORSE"
		}
		t.Logf("%-5s miso(hv=%6.0f xf=%5.0f dw=%4.0f) hvop(hv=%6.0f)%s",
			names[i].Name, m.HVSeconds, m.TransferSeconds, m.DWSeconds, h.HVSeconds, flag)
	}
}

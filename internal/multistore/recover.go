package multistore

import (
	"fmt"

	"miso/internal/durability"
	"miso/internal/history"
	"miso/internal/storage"
	"miso/internal/views"
)

// Recover rebuilds a System after a simulated process crash: it restores
// the last checkpoint, replays every WAL record past the checkpoint's LSN
// (stopping cleanly at a torn tail), resolves in-flight work — committed
// reorgs and transfers are kept, uncommitted ones rolled back — verifies
// the content checksum and base-log generation of every restored view, and
// quarantines the failures out of the design rather than serving them. All
// recovery work (replay plus the integrity scan over restored view bytes)
// is charged to the RECOVERY TTI component of the recovered system. The
// returned System is fully operational: serve.Server can resume on it, and
// the crash harness resubmits the query that died.
//
// The recovered system journals into a fresh WAL (created by New) and
// takes an immediate post-recovery checkpoint, exactly as a restarted
// process would truncate its log. Its fault injector is re-seeded from the
// dead WAL's length so a restart does not deterministically replay the
// crash that killed it.
func Recover(cfg Config, cat *storage.Catalog, ckpt *durability.Checkpoint, wal *durability.WAL) (*System, *durability.RecoveryReport, error) {
	if wal == nil {
		return nil, nil, fmt.Errorf("multistore: recover requires a WAL")
	}
	cfg.FaultSeed = cfg.FaultSeed*31 + int64(wal.LSN()) + 1
	s := New(cfg, cat)
	s.mu.Lock()
	defer s.mu.Unlock()
	report := &durability.RecoveryReport{}

	lsn := 0
	if ckpt != nil {
		lsn = ckpt.LSN
		sn, ok := ckpt.State.(*snapshot)
		if !ok {
			return nil, nil, fmt.Errorf("multistore: checkpoint state has unexpected type %T", ckpt.State)
		}
		if err := s.restoreSnapshot(sn); err != nil {
			return nil, nil, fmt.Errorf("multistore: restoring checkpoint: %w", err)
		}
	}

	recs, torn := wal.Replay(lsn)
	report.TornBytes = torn
	if err := s.applyWAL(wal, recs, report); err != nil {
		return nil, nil, err
	}

	s.verifyDesign(report)
	report.RestoredViews = s.hv.Views.Len() + s.dw.Views.Len()

	// Charge recovery: a fixed per-record replay cost plus the integrity
	// scan that re-reads every restored view at HV scan throughput. A clean
	// shutdown — checkpoint current, nothing to replay, no torn tail —
	// charges nothing, which is what makes clean-shutdown recovery
	// byte-identical (StateDigest) to the checkpointed live state.
	if report.ReplayedRecords > 0 || report.TornBytes > 0 {
		scan := s.cfg.HV.ScanMBps * float64(s.cfg.HV.Nodes) * 1e6
		bytes := s.hv.Views.TotalBytes() + s.dw.Views.TotalBytes()
		report.Seconds = 0.01*float64(report.ReplayedRecords) + float64(bytes)/scan
		s.metrics.Recovery += report.Seconds
	}
	s.metrics.Quarantined += len(report.Quarantined)

	if s.dur != nil {
		s.dur.Checkpoint(s.seq, s.snapshotLocked())
		s.jbase = s.designMap()
	}
	return s, report, nil
}

// applyWAL replays decoded records over the restored checkpoint. Records
// inside a reorg window (begin..commit) are buffered and applied only when
// the commit is durable; a begin with no commit by end-of-log is an
// in-flight reorganization that recovery rolls back by discarding the
// buffer. Transfers likewise: a begin with no commit or abort means the
// temp load was in flight, and DW temp space is per-query, so rollback is
// simply not restoring it.
func (s *System) applyWAL(wal *durability.WAL, recs []*durability.Record, report *durability.RecoveryReport) error {
	var inReorg bool
	var buffered []*durability.Record
	pendingTransfers := map[string]*durability.Record{}

	apply := func(rec *durability.Record) error {
		switch rec.Kind {
		case durability.KindViewAdmit:
			s.replayAdmit(wal, rec, report)
		case durability.KindViewEvict:
			s.hv.Views.Remove(rec.Name)
			s.dw.Views.Remove(rec.Name)
		case durability.KindQueryDone:
			if err := s.replayQueryDone(rec); err != nil {
				return err
			}
			report.ReplayedQueries++
		case durability.KindReorgCommit:
			s.reorgLog = append(s.reorgLog, ReorgRecord{
				BeforeSeq:       int(rec.Seq),
				MovedToDW:       int(rec.MovedToDW),
				MovedToHV:       int(rec.MovedToHV),
				Dropped:         int(rec.Dropped),
				Bytes:           rec.Bytes,
				Seconds:         rec.Seconds,
				FailedMoves:     int(rec.FailedMoves),
				RefundedBytes:   rec.RefundedBytes,
				RecoverySeconds: rec.RecoverySeconds,
			})
			s.metrics.Tune += rec.Seconds
			s.metrics.Recovery += rec.RecoverySeconds
			s.metrics.Retries += int(rec.Retries)
			s.metrics.Reorgs++
		case durability.KindTransferCommit, durability.KindTransferAbort:
			delete(pendingTransfers, rec.Name)
		case durability.KindLogGen:
			// The catalog survives the process; nothing to re-apply. The
			// post-replay verifyDesign pass re-quarantines stale views.
		}
		return nil
	}

	for _, rec := range recs {
		report.ReplayedRecords++
		switch rec.Kind {
		case durability.KindReorgBegin:
			inReorg = true
			buffered = buffered[:0]
		case durability.KindReorgCommit:
			for _, b := range buffered {
				if err := apply(b); err != nil {
					return err
				}
			}
			buffered = buffered[:0]
			inReorg = false
			if err := apply(rec); err != nil {
				return err
			}
		case durability.KindReorgAbort:
			buffered = buffered[:0]
			inReorg = false
		case durability.KindTransferBegin:
			pendingTransfers[rec.Name] = rec
		case durability.KindViewAdmit, durability.KindViewEvict:
			if inReorg {
				buffered = append(buffered, rec)
				continue
			}
			if err := apply(rec); err != nil {
				return err
			}
		default:
			if err := apply(rec); err != nil {
				return err
			}
		}
	}
	if inReorg {
		report.RolledBackReorgs++
	}
	for _, rec := range pendingTransfers {
		report.RolledBackTransfers++
		report.RefundedTransferBytes += rec.Bytes
	}
	return nil
}

// replayAdmit restores one journaled view admission from the WAL's durable
// payload space, verifying its content against the admit record's checksum
// before it may rejoin the design.
func (s *System) replayAdmit(wal *durability.WAL, rec *durability.Record, report *durability.RecoveryReport) {
	payload, ok := wal.Payload(rec.Name)
	if !ok {
		report.Quarantined = append(report.Quarantined, rec.Name)
		report.CorruptViews++
		return
	}
	v := payload.Clone()
	if !v.Verify() || v.Checksum != rec.Checksum {
		report.Quarantined = append(report.Quarantined, rec.Name)
		report.CorruptViews++
		return
	}
	// An admit replaces any previous placement (a moved view is journaled
	// as evict+admit, but be defensive about either ordering).
	s.hv.Views.Remove(rec.Name)
	s.dw.Views.Remove(rec.Name)
	if rec.Store == durability.StoreHV {
		s.installView(v, s.hv.Views)
	} else {
		s.installView(v, s.dw.Views)
	}
}

// replayQueryDone re-applies a completed query's bookkeeping: workload
// window entry, sequence counter, query count, TTI contribution, and a
// reconstructed report (result data itself is not journaled).
func (s *System) replayQueryDone(rec *durability.Record) error {
	plan, err := s.builder.BuildSQL(rec.SQL)
	if err != nil {
		return fmt.Errorf("multistore: replaying query %d: %w", rec.Seq, err)
	}
	s.window.Add(history.Entry{Seq: int(rec.Seq), SQL: rec.SQL, Plan: plan})
	s.seq = int(rec.Seq) + 1
	s.metrics.Queries++
	s.metrics.HVExe += rec.HVSeconds
	s.metrics.Transfer += rec.TransferSeconds
	s.metrics.DWExe += rec.DWSeconds
	s.metrics.Recovery += rec.RecoverySeconds
	s.metrics.Retries += int(rec.Retries)
	rep := &QueryReport{
		Seq:             int(rec.Seq),
		SQL:             rec.SQL,
		HVSeconds:       rec.HVSeconds,
		TransferSeconds: rec.TransferSeconds,
		DWSeconds:       rec.DWSeconds,
		RecoverySeconds: rec.RecoverySeconds,
		TransferBytes:   rec.Bytes,
		Retries:         int(rec.Retries),
		FellBackToHV:    rec.Flags&durability.FlagFellBack != 0,
		Degraded:        rec.Flags&durability.FlagDegraded != 0,
		HVOnly:          rec.Flags&durability.FlagHVOnly != 0,
		BypassedHV:      rec.Flags&durability.FlagBypassedHV != 0,
	}
	if rep.FellBackToHV {
		s.metrics.Fallbacks++
	}
	if rep.Degraded {
		s.metrics.Degraded++
	}
	s.reports = append(s.reports, rep)
	return nil
}

// verifyDesign runs the post-replay integrity pass: every view in the
// recovered design must pass its content checksum and be no older than its
// base logs' current generation; failures are quarantined out.
func (s *System) verifyDesign(report *durability.RecoveryReport) {
	gen := func(name string) (int, bool) {
		log, err := s.cat.Log(name)
		if err != nil {
			return 0, false
		}
		return log.Generation, true
	}
	for _, set := range []*views.Set{s.hv.Views, s.dw.Views} {
		for _, v := range set.All() {
			switch {
			case !v.Verify():
				set.Remove(v.Name)
				report.Quarantined = append(report.Quarantined, v.Name)
				report.CorruptViews++
			case v.Stale(gen):
				set.Remove(v.Name)
				report.Quarantined = append(report.Quarantined, v.Name)
				report.StaleViews++
			}
		}
	}
}
